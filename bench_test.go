// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md calls
// out. Each bench runs the same harness as cmd/hsgd-experiments at a
// reduced scale and reports domain metrics (virtual seconds, speedups,
// throughputs) via b.ReportMetric, so `go test -bench=.` regenerates the
// paper's result shapes from scratch.
package hsgd

import (
	"context"
	"testing"

	"hsgd/internal/core"
	"hsgd/internal/experiments"
	"hsgd/internal/gpu"
	"hsgd/internal/sgd"
)

// benchConfig is the reduced-scale configuration shared by the experiment
// benches: ~1/40 of the DESIGN.md dataset sizes with k=32.
func benchConfig() experiments.Config {
	c := experiments.DefaultConfig()
	c.Scale = 0.025
	c.K = 32
	c.Iters = 10
	return c
}

// BenchmarkFig3aGPUThroughput regenerates Figure 3a: simulated GPU update
// speed on blocks of growing size (rising, then saturating).
func BenchmarkFig3aGPUThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := experiments.Fig3(128)
		b.ReportMetric(g.Y[0], "Mupd/s@250K")
		b.ReportMetric(g.Y[len(g.Y)-1], "Mupd/s@2.5M")
	}
}

// BenchmarkFig3bCPUThroughput regenerates Figure 3b: flat per-thread CPU
// update speed.
func BenchmarkFig3bCPUThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, c := experiments.Fig3(128)
		b.ReportMetric(c.Y[0], "Mupd/s@50K")
		b.ReportMetric(c.Y[len(c.Y)-1], "Mupd/s@400K")
	}
}

// BenchmarkFig6TransferSpeed regenerates Figure 6: PCIe transfer speed vs
// size in both directions.
func BenchmarkFig6TransferSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h2d, d2h := experiments.Fig6()
		b.ReportMetric(h2d.Y[0], "GB/s@64KB")
		b.ReportMetric(h2d.Y[len(h2d.Y)-1], "GB/s@256MB")
		b.ReportMetric(d2h.Y[len(d2h.Y)-1], "GB/s-d2h@256MB")
	}
}

// BenchmarkFig7KernelThroughput regenerates Figure 7: kernel-only
// throughput vs block size.
func BenchmarkFig7KernelThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig7(128)
		b.ReportMetric(s.Y[0], "Mupd/s@250K")
		b.ReportMetric(s.Y[len(s.Y)-1], "Mupd/s@2.5M")
	}
}

// BenchmarkFig10VaryGPUWorkers regenerates Figure 10 on the MovieLens-shaped
// dataset: time-to-target for 32 vs 512 GPU parallel workers.
func BenchmarkFig10VaryGPUWorkers(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(c)
		if err != nil {
			b.Fatal(err)
		}
		ml := res[0]
		gpuSeries := ml.Series[1]
		b.ReportMetric(gpuSeries.Y[0]*1e3, "ms-gpuonly@32w")
		b.ReportMetric(gpuSeries.Y[len(gpuSeries.Y)-1]*1e3, "ms-gpuonly@512w")
		star := ml.Series[2]
		b.ReportMetric(star.Y[len(star.Y)-1]*1e3, "ms-hsgd*@512w")
	}
}

// BenchmarkFig11VaryCPUThreads regenerates Figure 11 on the MovieLens-shaped
// dataset: time-to-target for 4 vs 16 CPU threads.
func BenchmarkFig11VaryCPUThreads(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(c)
		if err != nil {
			b.Fatal(err)
		}
		ml := res[0]
		cpuSeries := ml.Series[0]
		b.ReportMetric(cpuSeries.Y[0]*1e3, "ms-cpuonly@4thr")
		b.ReportMetric(cpuSeries.Y[len(cpuSeries.Y)-1]*1e3, "ms-cpuonly@16thr")
	}
}

// BenchmarkFig12RMSEOverTime regenerates Figure 12 on the MovieLens-shaped
// dataset and reports the final RMSE of each pipeline.
func BenchmarkFig12RMSEOverTime(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res[0].Series {
			b.ReportMetric(s.Y[len(s.Y)-1], "rmse-"+s.Name)
		}
	}
}

// BenchmarkFig13HSGDvsHSGDStar regenerates Figure 13 on the MovieLens-shaped
// dataset: the uniform-division HSGD baseline against HSGD*.
func BenchmarkFig13HSGDvsHSGDStar(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(c)
		if err != nil {
			b.Fatal(err)
		}
		hsgdSeries := res[0].Series[0]
		star := res[0].Series[1]
		b.ReportMetric(hsgdSeries.X[len(hsgdSeries.X)-1]*1e3, "ms-hsgd")
		b.ReportMetric(star.X[len(star.X)-1]*1e3, "ms-hsgd*")
	}
}

// BenchmarkTable2CostModels regenerates Table II: Qilin vs the Section V
// cost model (no dynamic scheduling), reporting the Yahoo-shaped row.
func BenchmarkTable2CostModels(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Data(c)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.QSeconds*1e3, "ms-hsgd*-q")
		b.ReportMetric(last.MSeconds*1e3, "ms-hsgd*-m")
		b.ReportMetric(100*last.MGPUShare, "gpu%-m")
	}
}

// BenchmarkTable3DynamicScheduling regenerates Table III: HSGD*-M vs HSGD*
// (dynamic scheduling), reporting the Yahoo-shaped row.
func BenchmarkTable3DynamicScheduling(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3Data(c)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.MSeconds*1e3, "ms-hsgd*-m")
		b.ReportMetric(last.StarSeconds*1e3, "ms-hsgd*")
	}
}

// --- Ablations -----------------------------------------------------------

// benchTrain runs one simulated pipeline on a small MovieLens-shaped
// dataset and returns the report.
func benchTrain(b *testing.B, alg core.Algorithm, mutate func(*core.Options)) *core.Report {
	b.Helper()
	c := benchConfig()
	spec := c.Specs()[0]
	train, test, err := experiments.Dataset(spec, c.Seed)
	if err != nil {
		b.Fatal(err)
	}
	p := spec.Params()
	p.Iters = c.Iters
	opt := core.Options{
		Algorithm:  alg,
		CPUThreads: 16,
		GPUs:       1,
		Params:     p,
		GPU:        gpu.DefaultConfig().Scaled(0.01 * c.Scale),
		CPU:        core.DefaultCPUConfig().Scaled(0.01 * c.Scale),
		Seed:       c.Seed,
	}
	if mutate != nil {
		mutate(&opt)
	}
	rep, _, err := core.Train(context.Background(), train, test, opt)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblationDivisionRule compares the Rule 1 grid against an
// undersized grid: with fewer than (nc+ng+1)×(nc+ng) blocks workers starve
// and update counts skew (the rationale of Section IV-A).
func BenchmarkAblationDivisionRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchTrain(b, core.HSGD, nil)
		b.ReportMetric(float64(rep.UpdateStats.Max)-float64(rep.UpdateStats.Min), "updspread-rule1")
		b.ReportMetric(rep.VirtualSeconds*1e3, "ms-rule1")
	}
}

// BenchmarkAblationStreamOverlap validates Equation 9: the same GPU-Only
// workload with and without CUDA-stream overlap (max vs sum).
func BenchmarkAblationStreamOverlap(b *testing.B) {
	cfg := gpu.DefaultConfig()
	for i := 0; i < b.N; i++ {
		over := gpu.NewPipeline()
		serial := &gpu.Pipeline{Overlap: false}
		blocks := 200
		n := 500_000
		h2d := cfg.TransferTime(n*12, gpu.HostToDevice)
		kernel := cfg.KernelTime(n, true)
		d2h := cfg.TransferTime(n*4, gpu.DeviceToHost)
		var tOver, tSerial float64
		now := 0.0
		for j := 0; j < blocks; j++ {
			c := over.Submit(now, h2d, kernel, d2h)
			now = c.H2DDone
			tOver = c.D2HDone
		}
		now = 0
		for j := 0; j < blocks; j++ {
			c := serial.Submit(now, h2d, kernel, d2h)
			now = c.H2DDone
			tSerial = c.D2HDone
		}
		b.ReportMetric(tOver, "s-overlapped")
		b.ReportMetric(tSerial, "s-serial")
		b.ReportMetric(tSerial/tOver, "overlap-speedup")
	}
}

// BenchmarkAblationCostModelForms compares the fit quality of the paper's
// functional forms (linear / log-speed / sqrt-log-speed) on the simulated
// kernel curve — the reason Section V rejects Qilin's linear model.
func BenchmarkAblationCostModelForms(b *testing.B) {
	p, err := core.BuildProfile(1_000_000, gpu.DefaultConfig().Scaled(0.01), core.DefaultCPUConfig().Scaled(0.01), 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// Relative misestimate of each model at a quarter of the dataset.
		n := 250_000.0
		truth := gpu.DefaultConfig().Scaled(0.01).KernelTime(int(n), false)
		our := p.GPU.Kernel.Time(n)
		qilin := p.QilinGPU.Time(n)
		b.ReportMetric(100*abs(our-truth)/truth, "our-err%")
		b.ReportMetric(100*abs(qilin-truth)/truth, "qilin-err%")
	}
}

// BenchmarkAblationLRSchedules compares learning-rate schedules (extension
// beyond the paper, which uses fixed γ; reference [43] motivates decay).
func BenchmarkAblationLRSchedules(b *testing.B) {
	schedules := map[string]sgd.Schedule{
		"fixed":  sgd.FixedSchedule(0.005),
		"decay":  sgd.InverseDecay{Gamma0: 0.01, Beta: 0.3},
		"chin43": sgd.ChinSchedule{Gamma0: 0.01, Alpha: 20},
	}
	for i := 0; i < b.N; i++ {
		for name, s := range schedules {
			s := s
			rep := benchTrain(b, core.HSGDStar, func(o *core.Options) { o.Schedule = s })
			b.ReportMetric(rep.FinalRMSE, "rmse-"+name)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

module hsgd

go 1.24

// Package hsgd is the public API of this repository: an SGD-based matrix
// factorization library for heterogeneous CPU-GPU systems, reproducing
// Yu et al., "Efficient Matrix Factorization on Heterogeneous CPU-GPU
// Systems" (ICDE 2021, arXiv:2006.15980).
//
// Three ways to use it:
//
//   - Trainer (NewTrainer) is the unified training API: "fpsgd" (the
//     lock-striped parallel SGD engine in internal/engine — the default),
//     "hogwild", "als" and "cd" all sit behind one entry point with shared
//     TrainOptions and TrainReport types. The FPSGD engine additionally
//     supports learning-rate schedules (NewSchedule), early stopping on a
//     target RMSE, atomic mid-train checkpoints, and resume-from-checkpoint
//     (LoadFactors + TrainOptions.Resume).
//
//   - TrainParallel is the convenience wrapper around the FPSGD engine for
//     applications that just want fast matrix factorization on a multi-core
//     CPU.
//
//   - Train runs the paper's heterogeneous pipelines (CPU-Only, GPU-Only,
//     HSGD, HSGD* and its ablations) on a simulated CPU+GPU system with a
//     deterministic virtual clock. The SGD arithmetic is executed for real;
//     only durations are simulated. This is the experimentation surface
//     that regenerates the paper's figures and tables (see bench_test.go
//     and cmd/hsgd-experiments).
//
// Trained factors feed the online serving subsystem (internal/serve,
// cmd/hsgd-serve): sharded top-K retrieval, hot-swappable snapshots, and
// cold-start fold-in behind an HTTP JSON API. Mid-train checkpoints are
// written atomically in the same snapshot format, so a serve process
// watching the checkpoint path hot-swaps models while training is still
// running — see README.md for the train → checkpoint → hot-swap → serve
// pipeline.
//
// Quick start:
//
//	train, _ := hsgd.LoadMatrix("ratings.txt")
//	trainer, _ := hsgd.NewTrainer("fpsgd")
//	report, factors, err := trainer.Train(train, hsgd.TrainOptions{
//	    Threads:        8,
//	    Params:         hsgd.DefaultParams(),
//	    CheckpointPath: "model.hfac", // hot-swapped live by hsgd-serve
//	})
//	score := factors.Predict(user, item)
package hsgd

import (
	"hsgd/internal/core"
	"hsgd/internal/cost"
	"hsgd/internal/dataset"
	"hsgd/internal/gpu"
	"hsgd/internal/model"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

// Core data types.
type (
	// Rating is one observed matrix entry (row, column, value).
	Rating = sparse.Rating
	// Matrix is a sparse rating matrix in coordinate form.
	Matrix = sparse.Matrix
	// Factors is a trained model: dense matrices P (m×k) and Q (k×n).
	Factors = model.Factors
	// Params are the SGD hyperparameters of Algorithm 1.
	Params = sgd.Params
	// Schedule produces the learning rate per iteration.
	Schedule = sgd.Schedule
)

// Simulated heterogeneous training types.
type (
	// Algorithm selects one of the paper's pipelines.
	Algorithm = core.Algorithm
	// Options configures a simulated heterogeneous run.
	Options = core.Options
	// Report summarises a simulated run.
	Report = core.Report
	// EvalPoint is one (virtual time, epoch, RMSE) measurement.
	EvalPoint = core.EvalPoint
	// GPUConfig describes the simulated GPU device.
	GPUConfig = gpu.Config
	// CPUConfig describes one simulated CPU worker thread.
	CPUConfig = core.CPUConfig
	// CostProfile is the offline-fitted machine profile (Section V).
	CostProfile = cost.Profile
	// DatasetSpec describes one synthetic benchmark dataset.
	DatasetSpec = dataset.Spec
)

// Real-mode (wall-clock) training types.
type (
	// ParallelOptions configures TrainParallel.
	ParallelOptions = core.RealOptions
	// ParallelReport summarises a TrainParallel run.
	ParallelReport = core.RealReport
)

// The algorithms evaluated in the paper.
const (
	CPUOnly   = core.CPUOnly
	GPUOnly   = core.GPUOnly
	HSGD      = core.HSGD
	HSGDStar  = core.HSGDStar
	HSGDStarM = core.HSGDStarM
	HSGDStarQ = core.HSGDStarQ
)

// DefaultParams returns the paper's default hyperparameters (k=128,
// λ=0.05, γ=0.005, 20 iterations).
func DefaultParams() Params { return sgd.DefaultParams() }

// DefaultGPU returns the simulated GPU calibrated to the paper's testbed
// shapes (see internal/gpu).
func DefaultGPU() GPUConfig { return gpu.DefaultConfig() }

// DefaultCPU returns the simulated CPU worker model (~5M updates/s/thread).
func DefaultCPU() CPUConfig { return core.DefaultCPUConfig() }

// Train runs one of the paper's pipelines on the simulated heterogeneous
// system. test may be nil (no RMSE evaluation). The returned factors are
// genuinely trained; the report's times are virtual seconds.
func Train(train, test *Matrix, opt Options) (*Report, *Factors, error) {
	return core.Train(train, test, opt)
}

// TrainParallel runs FPSGD (Zhuang et al. [9]) on real goroutines and
// returns wall-clock timings. This is the trainer to use in applications.
func TrainParallel(train *Matrix, opt ParallelOptions) (*ParallelReport, *Factors, error) {
	return core.TrainReal(train, opt)
}

// TrainSerial runs the reference single-threaded SGD of Algorithm 1 on the
// given pre-initialised factors.
func TrainSerial(train *Matrix, f *Factors, p Params) {
	sgd.TrainSerial(train, f, p)
}

// RMSE evaluates the model's root-mean-square error on a rating set.
func RMSE(f *Factors, test *Matrix) float64 { return model.RMSE(f, test) }

// ProfileMachine runs the offline phase of Algorithm 2 against the given
// simulated devices and returns the fitted cost profile; pass it via
// Options.Profile to skip re-profiling on every run.
func ProfileMachine(nnz int, g GPUConfig, c CPUConfig, seed int64) (*CostProfile, error) {
	return core.BuildProfile(nnz, g, c, seed)
}

// LoadMatrix reads a rating matrix from a file (text format, or binary for
// ".bin" paths).
func LoadMatrix(path string) (*Matrix, error) { return sparse.LoadFile(path) }

// BenchmarkDatasets returns the four synthetic benchmark dataset specs in
// Table I order (MovieLens, Netflix, R1, Yahoo!Music shapes).
func BenchmarkDatasets() []DatasetSpec { return dataset.Benchmarks() }

// GenerateDataset materialises a synthetic dataset: disjoint train and test
// samples of a planted low-rank matrix.
func GenerateDataset(spec DatasetSpec, seed int64) (train, test *Matrix, err error) {
	return dataset.Generate(spec, seed)
}

// Package hsgd is the public API of this repository: an SGD-based matrix
// factorization library for heterogeneous CPU-GPU systems, reproducing
// Yu et al., "Efficient Matrix Factorization on Heterogeneous CPU-GPU
// Systems" (ICDE 2021, arXiv:2006.15980).
//
// # Training sessions (API v2)
//
// Training is an interruptible, observable session behind one entry point:
// NewTrainer returns a Trainer ("fpsgd" — the lock-striped parallel SGD
// engine and the default — "hetero", the paper's HSGD* on real hardware
// with CPU and batched executor classes over the nonuniform two-region
// layout (TrainOptions.Hetero), "hogwild", "als", "cd", or "sim", the
// paper's heterogeneous CPU+GPU pipelines on a simulated machine), and
// Trainer.Train takes a context.Context:
//
//   - Cancellation/deadline is observed at safe boundaries (block claims in
//     the engine, passes/iterations in the baselines, task releases in the
//     simulator). An interrupted run is not abandoned work: Train returns
//     the best-so-far *Factors, a partial TrainReport (Interrupted=true),
//     and one final atomic checkpoint when checkpointing is on — together
//     with the context error, so errors.Is(err, context.Canceled) tells an
//     interruption apart from a hard failure.
//
//   - TrainOptions.Progress streams per-epoch ProgressEvent values (epoch,
//     RMSE, updates/sec, checkpoint writes) from points where the factors
//     are quiescent — the live progress line in cmd/hsgd-train, the bench
//     reporter, and the serving layer's /statsz training block all consume
//     the same stream.
//
//   - Trainer.Capabilities declares which options an algorithm honors
//     (schedules, checkpoint/resume, early-stop, split regularisation,
//     inner sweeps, simulation). Options a trainer cannot honor fail with
//     a typed *UnsupportedError wrapping ErrUnsupported instead of being
//     silently dropped.
//
// Quick start:
//
//	train, _ := hsgd.LoadMatrix("ratings.txt")
//	trainer, _ := hsgd.NewTrainer("fpsgd")
//	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
//	defer stop()
//	report, factors, err := trainer.Train(ctx, train, hsgd.TrainOptions{
//	    Threads:        8,
//	    Params:         hsgd.DefaultParams(),
//	    CheckpointPath: "model.hfac", // hot-swapped live by hsgd-serve
//	    Progress: func(e hsgd.ProgressEvent) {
//	        log.Printf("epoch %d/%d rmse=%.4f", e.Epoch, e.TotalEpochs, e.RMSE)
//	    },
//	})
//	if err != nil && report == nil {
//	    log.Fatal(err) // hard failure; an interruption still yields a model
//	}
//	score := factors.Predict(user, item)
//
// The FPSGD engine additionally supports learning-rate schedules
// (NewSchedule), early stopping on a target RMSE, atomic mid-train
// checkpoints, and resume-from-checkpoint (LoadFactors +
// TrainOptions.Resume).
//
// Trained factors feed the online serving subsystem (internal/serve,
// cmd/hsgd-serve): sharded top-K retrieval, hot-swappable snapshots, and
// cold-start fold-in behind an HTTP JSON API. Mid-train checkpoints are
// written atomically in the same snapshot format, so a serve process
// watching the checkpoint path hot-swaps models while training is still
// running — see README.md for the train → checkpoint → hot-swap → serve
// pipeline.
//
// The simulated heterogeneous experimentation surface (the paper's
// CPU-Only, GPU-Only, HSGD, HSGD* pipelines with a deterministic virtual
// clock) is the "sim" trainer; the SGD arithmetic is executed for real and
// only durations are simulated. It regenerates the paper's figures and
// tables (see bench_test.go and cmd/hsgd-experiments).
package hsgd

import (
	"context"

	"hsgd/internal/core"
	"hsgd/internal/cost"
	"hsgd/internal/dataset"
	"hsgd/internal/gpu"
	"hsgd/internal/model"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

// Core data types.
type (
	// Rating is one observed matrix entry (row, column, value).
	Rating = sparse.Rating
	// Matrix is a sparse rating matrix in coordinate form.
	Matrix = sparse.Matrix
	// Factors is a trained model: dense matrices P (m×k) and Q (k×n).
	Factors = model.Factors
	// Params are the SGD hyperparameters of Algorithm 1.
	Params = sgd.Params
	// Schedule produces the learning rate per iteration.
	Schedule = sgd.Schedule
)

// Simulated heterogeneous training types.
type (
	// Algorithm selects one of the paper's pipelines.
	Algorithm = core.Algorithm
	// Options configures a simulated heterogeneous run (the deprecated
	// Train entry point; new code passes TrainOptions.Sim to the "sim"
	// trainer).
	Options = core.Options
	// Report summarises a simulated run.
	Report = core.Report
	// EvalPoint is one (time, epoch, RMSE) measurement.
	EvalPoint = core.EvalPoint
	// GPUConfig describes the simulated GPU device.
	GPUConfig = gpu.Config
	// CPUConfig describes one simulated CPU worker thread.
	CPUConfig = core.CPUConfig
	// CostProfile is the offline-fitted machine profile (Section V).
	CostProfile = cost.Profile
	// DatasetSpec describes one synthetic benchmark dataset.
	DatasetSpec = dataset.Spec
)

// Real-mode (wall-clock) training types.
type (
	// ParallelOptions configures the deprecated TrainParallel shim.
	ParallelOptions = core.RealOptions
	// ParallelReport summarises a TrainParallel run.
	ParallelReport = core.RealReport
)

// The algorithms evaluated in the paper.
const (
	CPUOnly   = core.CPUOnly
	GPUOnly   = core.GPUOnly
	HSGD      = core.HSGD
	HSGDStar  = core.HSGDStar
	HSGDStarM = core.HSGDStarM
	HSGDStarQ = core.HSGDStarQ
)

// DefaultParams returns the paper's default hyperparameters (k=128,
// λ=0.05, γ=0.005, 20 iterations).
func DefaultParams() Params { return sgd.DefaultParams() }

// DefaultGPU returns the simulated GPU calibrated to the paper's testbed
// shapes (see internal/gpu).
func DefaultGPU() GPUConfig { return gpu.DefaultConfig() }

// DefaultCPU returns the simulated CPU worker model (~5M updates/s/thread).
func DefaultCPU() CPUConfig { return core.DefaultCPUConfig() }

// Train runs one of the paper's pipelines on the simulated heterogeneous
// system. test may be nil (no RMSE evaluation). The returned factors are
// genuinely trained; the report's times are virtual seconds. Cancellation
// follows the Trainer convention: an interrupted run returns the partial
// report and factors together with the context error.
//
// Deprecated: use NewTrainer("sim") with TrainOptions.Sim — the unified
// session API with progress streaming and capability introspection. This
// shim delegates to the same implementation.
func Train(ctx context.Context, train, test *Matrix, opt Options) (*Report, *Factors, error) {
	return core.Train(ctx, train, test, opt)
}

// TrainParallel runs FPSGD (Zhuang et al. [9]) on real goroutines and
// returns wall-clock timings. Cancellation follows the Trainer convention:
// an interrupted run returns the partial report and best-so-far factors
// together with the context error.
//
// Deprecated: use NewTrainer("fpsgd") — the unified session API with
// checkpointing, resume, progress streaming, and capability introspection.
// This shim delegates to the same engine.
func TrainParallel(ctx context.Context, train *Matrix, opt ParallelOptions) (*ParallelReport, *Factors, error) {
	return core.TrainReal(ctx, train, opt)
}

// TrainSerial runs the reference single-threaded SGD of Algorithm 1 on the
// given pre-initialised factors, observing ctx between passes: an
// interrupted run returns the context error with the factors left at the
// last completed pass.
func TrainSerial(ctx context.Context, train *Matrix, f *Factors, p Params) error {
	if ctx == nil {
		ctx = context.Background()
	}
	onePass := p
	onePass.Iters = 1
	for it := 0; it < p.Iters; it++ {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		sgd.TrainSerial(train, f, onePass)
	}
	return nil
}

// RMSE evaluates the model's root-mean-square error on a rating set.
func RMSE(f *Factors, test *Matrix) float64 { return model.RMSE(f, test) }

// ProfileMachine runs the offline phase of Algorithm 2 against the given
// simulated devices and returns the fitted cost profile; pass it via
// Options.Profile to skip re-profiling on every run.
func ProfileMachine(nnz int, g GPUConfig, c CPUConfig, seed int64) (*CostProfile, error) {
	return core.BuildProfile(nnz, g, c, seed)
}

// LoadMatrix reads a rating matrix from a file (text format, or binary for
// ".bin" paths).
func LoadMatrix(path string) (*Matrix, error) { return sparse.LoadFile(path) }

// BenchmarkDatasets returns the four synthetic benchmark dataset specs in
// Table I order (MovieLens, Netflix, R1, Yahoo!Music shapes).
func BenchmarkDatasets() []DatasetSpec { return dataset.Benchmarks() }

// GenerateDataset materialises a synthetic dataset: disjoint train and test
// samples of a planted low-rank matrix.
func GenerateDataset(spec DatasetSpec, seed int64) (train, test *Matrix, err error) {
	return dataset.Generate(spec, seed)
}

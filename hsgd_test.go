package hsgd

import (
	"math"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.05)
	train, test, err := GenerateDataset(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 16
	params.Iters = 5

	// Real-mode training.
	rep, f, err := TrainParallel(train, ParallelOptions{Threads: 4, Params: params, Seed: 1, Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRMSE <= 0 || math.IsNaN(rep.FinalRMSE) {
		t.Fatalf("real RMSE %v", rep.FinalRMSE)
	}
	if got := RMSE(f, test); math.Abs(got-rep.FinalRMSE) > 1e-9 {
		t.Fatalf("RMSE helper %v != report %v", got, rep.FinalRMSE)
	}

	// Simulated heterogeneous training.
	simRep, simF, err := Train(train, test, Options{
		Algorithm:  HSGDStar,
		CPUThreads: 8,
		GPUs:       1,
		Params:     params,
		GPU:        DefaultGPU().Scaled(0.0005),
		CPU:        DefaultCPU().Scaled(0.0005),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if simRep.VirtualSeconds <= 0 || simRep.Alpha <= 0 {
		t.Fatalf("sim report %+v", simRep)
	}
	if simF.Predict(0, 0) == 0 && simF.Predict(1, 1) == 0 {
		t.Fatal("sim factors look untrained")
	}

	// Serial reference.
	TrainSerial(train, f, params)

	// Machine profiling.
	p, err := ProfileMachine(train.NNZ(), DefaultGPU().Scaled(0.0005), DefaultCPU().Scaled(0.0005), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPU.A <= 0 {
		t.Fatal("profile CPU slope not positive")
	}
}

func TestMatrixFileHelpers(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.01)
	train, _, err := GenerateDataset(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/r.bin"
	if err := train.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != train.NNZ() {
		t.Fatal("file round trip changed size")
	}
}

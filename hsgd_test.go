package hsgd

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	spec := BenchmarkDatasets()[0].Scale(0.05)
	train, test, err := GenerateDataset(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 16
	params.Iters = 5

	// Real-mode training through the deprecated convenience shim.
	rep, f, err := TrainParallel(ctx, train, ParallelOptions{Threads: 4, Params: params, Seed: 1, Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRMSE <= 0 || math.IsNaN(rep.FinalRMSE) {
		t.Fatalf("real RMSE %v", rep.FinalRMSE)
	}
	if got := RMSE(f, test); math.Abs(got-rep.FinalRMSE) > 1e-9 {
		t.Fatalf("RMSE helper %v != report %v", got, rep.FinalRMSE)
	}

	// Simulated heterogeneous training through the deprecated shim.
	simRep, simF, err := Train(ctx, train, test, Options{
		Algorithm:  HSGDStar,
		CPUThreads: 8,
		GPUs:       1,
		Params:     params,
		GPU:        DefaultGPU().Scaled(0.0005),
		CPU:        DefaultCPU().Scaled(0.0005),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if simRep.VirtualSeconds <= 0 || simRep.Alpha <= 0 {
		t.Fatalf("sim report %+v", simRep)
	}
	if simF.Predict(0, 0) == 0 && simF.Predict(1, 1) == 0 {
		t.Fatal("sim factors look untrained")
	}

	// Serial reference.
	if err := TrainSerial(ctx, train, f, params); err != nil {
		t.Fatal(err)
	}

	// Machine profiling.
	p, err := ProfileMachine(train.NNZ(), DefaultGPU().Scaled(0.0005), DefaultCPU().Scaled(0.0005), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPU.A <= 0 {
		t.Fatal("profile CPU slope not positive")
	}
}

func TestMatrixFileHelpers(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.01)
	train, _, err := GenerateDataset(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/r.bin"
	if err := train.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != train.NNZ() {
		t.Fatal("file round trip changed size")
	}
}

// TestTrainerAPI drives every algorithm behind the unified Trainer interface
// on one small dataset: report shape, per-epoch history, actual work
// counts, and the FPSGD-only checkpoint/resume path.
func TestTrainerAPI(t *testing.T) {
	ctx := context.Background()
	spec := BenchmarkDatasets()[0].Scale(0.03)
	train, test, err := GenerateDataset(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 8
	params.Iters = 3

	for _, name := range TrainerNames() {
		trainer, err := NewTrainer(name)
		if err != nil {
			t.Fatal(err)
		}
		if trainer.Name() != name {
			t.Fatalf("Name() = %q, want %q", trainer.Name(), name)
		}
		if caps := trainer.Capabilities(); caps.Algorithm != name {
			t.Fatalf("Capabilities().Algorithm = %q, want %q", caps.Algorithm, name)
		}
		threads := 2
		if name == "hogwild" {
			// Hogwild's lock-free updates are data races by design; keep it
			// single-worker so `go test -race ./...` stays clean.
			threads = 1
		}
		var epochEvents int
		rep, f, err := trainer.Train(ctx, train, TrainOptions{
			Threads: threads, Params: params, Seed: 3, Test: test,
			Progress: func(e ProgressEvent) {
				if e.Kind == ProgressEpoch {
					epochEvents++
					if e.Algorithm != name {
						t.Errorf("%s: event algorithm %q", name, e.Algorithm)
					}
				}
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Algorithm != name || rep.Seconds <= 0 || rep.Epochs != params.Iters {
			t.Fatalf("%s: report %+v", name, rep)
		}
		if rep.FinalRMSE <= 0 || math.IsNaN(rep.FinalRMSE) {
			t.Fatalf("%s: RMSE %v", name, rep.FinalRMSE)
		}
		// Every trainer now reports its actual work (satellite: als/cd used
		// to report 0) and fills the per-epoch trajectory (satellite:
		// hogwild used to leave History empty).
		if rep.TotalUpdates <= 0 {
			t.Fatalf("%s: TotalUpdates = %d, want > 0", name, rep.TotalUpdates)
		}
		if len(rep.History) != params.Iters {
			t.Fatalf("%s: history has %d points, want %d", name, len(rep.History), params.Iters)
		}
		if epochEvents != params.Iters {
			t.Fatalf("%s: saw %d epoch events, want %d", name, epochEvents, params.Iters)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	if _, err := NewTrainer("nope"); err == nil {
		t.Fatal("unknown trainer accepted")
	}

	// Checkpoint + resume through the public surface.
	ckpt := t.TempDir() + "/ckpt.hfac"
	fpsgd, _ := NewTrainer("fpsgd")
	short := params
	short.Iters = 2
	if _, _, err := fpsgd.Train(ctx, train, TrainOptions{Threads: 2, Params: short, Seed: 3, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFactors(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := fpsgd.Train(ctx, train, TrainOptions{
		Threads: 2, Params: params, Seed: 3, Test: test,
		Resume: loaded, StartEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != params.Iters {
		t.Fatalf("resumed epochs = %d, want %d", rep.Epochs, params.Iters)
	}

	// Schedules by name.
	for _, name := range []string{"fixed", "inverse", "chin", "bold"} {
		s, err := NewSchedule(name, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if r := s.Rate(0); r <= 0 {
			t.Fatalf("schedule %s rate %v", name, r)
		}
	}
	if _, err := NewSchedule("nope", 0.01); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

// TestCapabilityMatrix is the table-driven replacement for the scattered
// per-guard rejection tests: every (trainer × option) pair must either
// train successfully (capability declared) or fail with the typed
// ErrUnsupported (capability absent) — options are never silently dropped.
func TestCapabilityMatrix(t *testing.T) {
	ctx := context.Background()
	spec := BenchmarkDatasets()[0].Scale(0.02)
	train, test, err := GenerateDataset(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 4
	params.Iters = 2
	bold, _ := NewSchedule("bold", 0.01)
	fixed, _ := NewSchedule("fixed", 0.01)

	// A shape-matched warm start for the Resume mutation.
	fpsgd, _ := NewTrainer("fpsgd")
	warmIters := params
	warmIters.Iters = 1
	_, warm, err := fpsgd.Train(ctx, train, TrainOptions{Threads: 2, Params: warmIters, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	mutations := []struct {
		option  string
		mutate  func(*TrainOptions)
		capable func(Capabilities) bool
	}{
		{"Schedule", func(o *TrainOptions) { o.Schedule = bold },
			func(c Capabilities) bool { return c.Schedules }},
		{"TargetRMSE", func(o *TrainOptions) { o.TargetRMSE = 1e-9; o.Test = test },
			func(c Capabilities) bool { return c.EarlyStop }},
		{"CheckpointPath", func(o *TrainOptions) { o.CheckpointPath = filepath.Join(ckptDir, "m.hfac") },
			func(c Capabilities) bool { return c.Checkpoint }},
		{"Resume", func(o *TrainOptions) { o.Resume = warm; o.StartEpoch = 1 },
			func(c Capabilities) bool { return c.Resume }},
		{"SplitLambda", func(o *TrainOptions) { o.Params.LambdaQ = o.Params.LambdaP * 2 },
			func(c Capabilities) bool { return c.SplitLambda }},
		{"InnerSweeps", func(o *TrainOptions) { o.InnerSweeps = 2 },
			func(c Capabilities) bool { return c.InnerSweeps }},
		{"Sim", func(o *TrainOptions) { o.Sim = &SimConfig{DeviceScale: 0.0005} },
			func(c Capabilities) bool { return c.Simulated }},
		{"Hetero", func(o *TrainOptions) { o.Hetero = &HeteroConfig{BatchedWorkers: 1, Alpha: 0.5} },
			func(c Capabilities) bool { return c.Heterogeneous }},
	}

	for _, name := range TrainerNames() {
		tr, err := NewTrainer(name)
		if err != nil {
			t.Fatal(err)
		}
		caps := tr.Capabilities()
		for _, m := range mutations {
			opt := TrainOptions{Threads: 1, Params: params, Seed: 4}
			if name == "sim" {
				opt.Sim = &SimConfig{DeviceScale: 0.0005}
			}
			m.mutate(&opt)
			_, _, err := tr.Train(ctx, train, opt)
			if m.capable(caps) {
				if err != nil {
					t.Errorf("%s × %s: capability declared but Train failed: %v", name, m.option, err)
				}
			} else {
				if !errors.Is(err, ErrUnsupported) {
					t.Errorf("%s × %s: want ErrUnsupported, got %v", name, m.option, err)
				}
				var ue *UnsupportedError
				if !errors.As(err, &ue) || ue.Trainer != name {
					t.Errorf("%s × %s: error not a typed *UnsupportedError for this trainer: %v", name, m.option, err)
				}
			}
		}
		// The constant schedule carries no behavior to lose and stays legal
		// on every trainer (it is what cmd/hsgd-train passes by default).
		opt := TrainOptions{Threads: 1, Params: params, Seed: 4, Schedule: fixed}
		if name == "sim" {
			opt.Sim = &SimConfig{DeviceScale: 0.0005}
		}
		if _, _, err := tr.Train(ctx, train, opt); err != nil {
			t.Errorf("%s rejected the fixed schedule: %v", name, err)
		}
	}
}

// TestTrainerCancellation: every trainer must honor context cancellation —
// returning promptly with usable factors, a partial report flagged
// Interrupted, and the context error.
func TestTrainerCancellation(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.05)
	train, _, err := GenerateDataset(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 16
	params.Iters = 1 << 20 // far beyond any deadline

	for _, name := range []string{"fpsgd", "hetero", "hogwild", "nomad", "als", "cd", "sim"} {
		t.Run(name, func(t *testing.T) {
			tr, _ := NewTrainer(name)
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			opt := TrainOptions{Threads: 1, Params: params, Seed: 5}
			if name == "sim" {
				opt.Sim = &SimConfig{DeviceScale: 0.0005}
			}
			start := time.Now()
			rep, f, err := tr.Train(ctx, train, opt)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			if rep == nil || !rep.Interrupted {
				t.Fatalf("report %+v, want non-nil with Interrupted", rep)
			}
			if f == nil {
				t.Fatal("no factors returned from interrupted run")
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("interrupted factors invalid: %v", err)
			}
			// "Within one epoch boundary": generous bound to keep slow CI
			// honest while still catching a run that ignores the context.
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Fatalf("cancellation took %v", elapsed)
			}
		})
	}
}

// TestTrainerCancellationPreCancelled: a context that is already dead must
// not start work, and still follows the interruption convention.
func TestTrainerCancellationPreCancelled(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.02)
	train, _, err := GenerateDataset(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 4
	params.Iters = 10
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, _ := NewTrainer("fpsgd")
	rep, f, err := tr.Train(ctx, train, TrainOptions{Threads: 2, Params: params, Seed: 6})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if rep == nil || !rep.Interrupted || rep.Epochs != 0 {
		t.Fatalf("report %+v, want Interrupted with 0 epochs", rep)
	}
	if f == nil {
		t.Fatal("no factors returned")
	}
}

// TestProgressStream pins the event protocol on the engine: one epoch event
// per epoch, checkpoint events for every snapshot, and a final done event,
// in order.
func TestProgressStream(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.02)
	train, test, err := GenerateDataset(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 4
	params.Iters = 3
	ckpt := t.TempDir() + "/m.hfac"
	var kinds []ProgressKind
	var lastEpoch int
	tr, _ := NewTrainer("fpsgd")
	rep, _, err := tr.Train(context.Background(), train, TrainOptions{
		Threads: 2, Params: params, Seed: 7, Test: test,
		CheckpointPath: ckpt,
		Progress: func(e ProgressEvent) {
			kinds = append(kinds, e.Kind)
			if e.Kind == ProgressEpoch {
				lastEpoch = e.Epoch
				if e.TotalEpochs != params.Iters {
					t.Errorf("TotalEpochs = %d", e.TotalEpochs)
				}
				if e.RMSE <= 0 {
					t.Errorf("epoch %d event has no RMSE", e.Epoch)
				}
			}
			if e.Kind == ProgressCheckpoint && e.CheckpointPath != ckpt {
				t.Errorf("checkpoint event path %q", e.CheckpointPath)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var epochs, ckpts, dones int
	for _, k := range kinds {
		switch k {
		case ProgressEpoch:
			epochs++
		case ProgressCheckpoint:
			ckpts++
		case ProgressDone:
			dones++
		}
	}
	if epochs != params.Iters || ckpts != rep.Checkpoints || dones != 1 {
		t.Fatalf("events epochs=%d ckpts=%d dones=%d (report %+v)", epochs, ckpts, dones, rep)
	}
	if lastEpoch != params.Iters {
		t.Fatalf("last epoch event = %d, want %d", lastEpoch, params.Iters)
	}
	if kinds[len(kinds)-1] != ProgressDone {
		t.Fatalf("final event %q, want done", kinds[len(kinds)-1])
	}
}

// TestSimObservesAdaptiveSchedule: the sim trainer declares the Schedules
// capability, so a bold driver must actually be fed a loss per epoch — with
// or without a test set — not silently left at its initial gamma.
func TestSimObservesAdaptiveSchedule(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.02)
	train, test, err := GenerateDataset(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 4
	params.Iters = 4
	for _, withTest := range []bool{true, false} {
		bold, _ := NewSchedule("bold", 0.01)
		tr, _ := NewTrainer("sim")
		opt := TrainOptions{
			Threads: 2, Params: params, Seed: 9, Schedule: bold,
			Sim: &SimConfig{DeviceScale: 0.0005},
		}
		if withTest {
			opt.Test = test
		}
		if _, _, err := tr.Train(context.Background(), train, opt); err != nil {
			t.Fatalf("withTest=%v: %v", withTest, err)
		}
		if bold.Rate(0) == 0.01 {
			t.Fatalf("withTest=%v: bold driver rate unchanged — Observe not wired", withTest)
		}
	}
}

// TestAlsCdWorkCounts: the satellite fix — als reports ridge solves and cd
// reports coordinate updates, scaling with the iteration count.
func TestAlsCdWorkCounts(t *testing.T) {
	ctx := context.Background()
	spec := BenchmarkDatasets()[0].Scale(0.02)
	train, _, err := GenerateDataset(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 4
	for _, name := range []string{"als", "cd"} {
		tr, _ := NewTrainer(name)
		params.Iters = 1
		one, _, err := tr.Train(ctx, train, TrainOptions{Threads: 2, Params: params, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		params.Iters = 3
		three, _, err := tr.Train(ctx, train, TrainOptions{Threads: 2, Params: params, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if one.TotalUpdates <= 0 || three.TotalUpdates != 3*one.TotalUpdates {
			t.Fatalf("%s: updates %d (1 iter) vs %d (3 iters), want exact 3x scaling",
				name, one.TotalUpdates, three.TotalUpdates)
		}
	}
}

package hsgd

import (
	"math"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.05)
	train, test, err := GenerateDataset(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 16
	params.Iters = 5

	// Real-mode training.
	rep, f, err := TrainParallel(train, ParallelOptions{Threads: 4, Params: params, Seed: 1, Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRMSE <= 0 || math.IsNaN(rep.FinalRMSE) {
		t.Fatalf("real RMSE %v", rep.FinalRMSE)
	}
	if got := RMSE(f, test); math.Abs(got-rep.FinalRMSE) > 1e-9 {
		t.Fatalf("RMSE helper %v != report %v", got, rep.FinalRMSE)
	}

	// Simulated heterogeneous training.
	simRep, simF, err := Train(train, test, Options{
		Algorithm:  HSGDStar,
		CPUThreads: 8,
		GPUs:       1,
		Params:     params,
		GPU:        DefaultGPU().Scaled(0.0005),
		CPU:        DefaultCPU().Scaled(0.0005),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if simRep.VirtualSeconds <= 0 || simRep.Alpha <= 0 {
		t.Fatalf("sim report %+v", simRep)
	}
	if simF.Predict(0, 0) == 0 && simF.Predict(1, 1) == 0 {
		t.Fatal("sim factors look untrained")
	}

	// Serial reference.
	TrainSerial(train, f, params)

	// Machine profiling.
	p, err := ProfileMachine(train.NNZ(), DefaultGPU().Scaled(0.0005), DefaultCPU().Scaled(0.0005), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPU.A <= 0 {
		t.Fatal("profile CPU slope not positive")
	}
}

func TestMatrixFileHelpers(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.01)
	train, _, err := GenerateDataset(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/r.bin"
	if err := train.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != train.NNZ() {
		t.Fatal("file round trip changed size")
	}
}

// TestTrainerAPI drives every algorithm behind the unified Trainer interface
// on one small dataset, plus the FPSGD-only checkpoint/resume path and the
// option rejection on trainers that cannot honor it.
func TestTrainerAPI(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.03)
	train, test, err := GenerateDataset(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 8
	params.Iters = 3

	for _, name := range []string{"fpsgd", "hogwild", "als", "cd"} {
		trainer, err := NewTrainer(name)
		if err != nil {
			t.Fatal(err)
		}
		if trainer.Name() != name {
			t.Fatalf("Name() = %q, want %q", trainer.Name(), name)
		}
		threads := 2
		if name == "hogwild" {
			// Hogwild's lock-free updates are data races by design; keep it
			// single-worker so `go test -race ./...` stays clean.
			threads = 1
		}
		rep, f, err := trainer.Train(train, TrainOptions{Threads: threads, Params: params, Seed: 3, Test: test})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Algorithm != name || rep.Seconds <= 0 || rep.Epochs != params.Iters {
			t.Fatalf("%s: report %+v", name, rep)
		}
		if rep.FinalRMSE <= 0 || math.IsNaN(rep.FinalRMSE) {
			t.Fatalf("%s: RMSE %v", name, rep.FinalRMSE)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	if _, err := NewTrainer("nope"); err == nil {
		t.Fatal("unknown trainer accepted")
	}

	// Checkpoint + resume through the public surface.
	ckpt := t.TempDir() + "/ckpt.hfac"
	fpsgd, _ := NewTrainer("fpsgd")
	short := params
	short.Iters = 2
	if _, _, err := fpsgd.Train(train, TrainOptions{Threads: 2, Params: short, Seed: 3, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFactors(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := fpsgd.Train(train, TrainOptions{
		Threads: 2, Params: params, Seed: 3, Test: test,
		Resume: loaded, StartEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != params.Iters {
		t.Fatalf("resumed epochs = %d, want %d", rep.Epochs, params.Iters)
	}

	// Engine-only options must be rejected elsewhere, not dropped.
	hog, _ := NewTrainer("hogwild")
	if _, _, err := hog.Train(train, TrainOptions{Threads: 2, Params: params, CheckpointPath: ckpt}); err == nil {
		t.Fatal("hogwild accepted a checkpoint path")
	}

	// Schedules by name.
	for _, name := range []string{"fixed", "inverse", "chin", "bold"} {
		s, err := NewSchedule(name, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if r := s.Rate(0); r <= 0 {
			t.Fatalf("schedule %s rate %v", name, r)
		}
	}
	if _, err := NewSchedule("nope", 0.01); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

// TestTrainerRejectsSplitLambda: ALS and CD take a single regulariser, so a
// differing LambdaQ must be an error, not silently collapsed to LambdaP.
func TestTrainerRejectsSplitLambda(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.02)
	train, _, err := GenerateDataset(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 4
	params.Iters = 1
	params.LambdaQ = params.LambdaP * 2
	for _, name := range []string{"als", "cd"} {
		tr, _ := NewTrainer(name)
		if _, _, err := tr.Train(train, TrainOptions{Threads: 1, Params: params}); err == nil {
			t.Fatalf("%s accepted LambdaP != LambdaQ", name)
		}
	}
}

// TestTrainerRejectsUnsupportedOptions: options a trainer cannot honor must
// error, not silently do nothing.
func TestTrainerRejectsUnsupportedOptions(t *testing.T) {
	spec := BenchmarkDatasets()[0].Scale(0.02)
	train, _, err := GenerateDataset(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.K = 4
	params.Iters = 1
	bold, _ := NewSchedule("bold", 0.01)
	fixed, _ := NewSchedule("fixed", 0.01)
	for _, name := range []string{"hogwild", "als", "cd"} {
		tr, _ := NewTrainer(name)
		if _, _, err := tr.Train(train, TrainOptions{Threads: 1, Params: params, TargetRMSE: 0.5}); err == nil {
			t.Fatalf("%s accepted TargetRMSE", name)
		}
	}
	for _, name := range []string{"fpsgd", "hogwild", "als"} {
		tr, _ := NewTrainer(name)
		if _, _, err := tr.Train(train, TrainOptions{Threads: 1, Params: params, InnerSweeps: 3}); err == nil {
			t.Fatalf("%s accepted InnerSweeps", name)
		}
	}
	for _, name := range []string{"als", "cd"} {
		tr, _ := NewTrainer(name)
		if _, _, err := tr.Train(train, TrainOptions{Threads: 1, Params: params, Schedule: bold}); err == nil {
			t.Fatalf("%s accepted an adaptive schedule", name)
		}
		// The constant schedule carries no behavior to lose and stays legal
		// (it is what cmd/hsgd-train passes by default).
		if _, _, err := tr.Train(train, TrainOptions{Threads: 1, Params: params, Schedule: fixed}); err != nil {
			t.Fatalf("%s rejected the fixed schedule: %v", name, err)
		}
	}
}

package experiments

import (
	"context"
	"fmt"

	"hsgd/internal/core"
)

// Table1 reproduces Table I: statistics and hyperparameters of the four
// (synthetic) benchmark datasets at the configured scale.
func Table1(c Config) (Table, error) {
	t := Table{
		Title:  "Table I: dataset statistics and parameter settings (synthetic, scaled)",
		Header: []string{"Dataset", "m", "n", "#Training", "#Test", "k", "lambdaP", "lambdaQ", "gamma", "targetRMSE"},
	}
	for _, spec := range c.specs() {
		train, test, err := genCached(spec, c.Seed)
		if err != nil {
			return Table{}, err
		}
		stats := train.ComputeStats()
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", stats.Rows),
			fmt.Sprintf("%d", stats.Cols),
			fmt.Sprintf("%d", stats.NNZ),
			fmt.Sprintf("%d", test.NNZ()),
			fmt.Sprintf("%d", spec.K),
			fmt.Sprintf("%g", spec.LambdaP),
			fmt.Sprintf("%g", spec.LambdaQ),
			fmt.Sprintf("%g", spec.Gamma),
			fmt.Sprintf("%g", spec.TargetRMSE),
		})
	}
	return t, nil
}

// Table2Row is one dataset's comparison of the two cost models (Table II):
// workload proportions and fixed-iteration running times for HSGD*-Q
// (Qilin) and HSGD*-M (the Section V model), both without dynamic
// scheduling.
type Table2Row struct {
	Dataset              string
	QCPUShare, QGPUShare float64
	MCPUShare, MGPUShare float64
	QSeconds, MSeconds   float64
}

// Table2Data runs the Table II comparison and returns the raw rows.
func Table2Data(c Config) ([]Table2Row, error) {
	var rows []Table2Row
	for _, spec := range c.specs() {
		train, test, err := genCached(spec, c.Seed)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Dataset: spec.Name}
		repQ, _, err := core.Train(context.Background(), train, test, c.options(core.HSGDStarQ, spec))
		if err != nil {
			return nil, fmt.Errorf("table2 %s hsgd*-q: %w", spec.Name, err)
		}
		repM, _, err := core.Train(context.Background(), train, test, c.options(core.HSGDStarM, spec))
		if err != nil {
			return nil, fmt.Errorf("table2 %s hsgd*-m: %w", spec.Name, err)
		}
		row.QCPUShare, row.QGPUShare = repQ.CPUShare, repQ.GPUShare
		row.MCPUShare, row.MGPUShare = repM.CPUShare, repM.GPUShare
		row.QSeconds, row.MSeconds = repQ.VirtualSeconds, repM.VirtualSeconds
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 formats Table2Data in the paper's layout.
func Table2(c Config) (Table, error) {
	rows, err := Table2Data(c)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: fmt.Sprintf("Table II: comparison of cost models (%d iterations, no dynamic scheduling)", c.Iters),
		Header: []string{"Dataset", "Q-CPU%", "Q-GPU%", "M-CPU%", "M-GPU%",
			"HSGD*-Q time", "HSGD*-M time"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%.2f%%", 100*r.QCPUShare),
			fmt.Sprintf("%.2f%%", 100*r.QGPUShare),
			fmt.Sprintf("%.2f%%", 100*r.MCPUShare),
			fmt.Sprintf("%.2f%%", 100*r.MGPUShare),
			fmt.Sprintf("%.4gs", r.QSeconds),
			fmt.Sprintf("%.4gs", r.MSeconds),
		})
	}
	return t, nil
}

// Table3Row is one dataset's comparison of dynamic scheduling (Table III):
// fixed-iteration running time without (HSGD*-M) and with (HSGD*) the
// dynamic phase.
type Table3Row struct {
	Dataset     string
	MSeconds    float64
	StarSeconds float64
	StolenByCPU int64
	StolenByGPU int64
}

// Table3Data runs the Table III comparison and returns the raw rows.
func Table3Data(c Config) ([]Table3Row, error) {
	var rows []Table3Row
	for _, spec := range c.specs() {
		train, test, err := genCached(spec, c.Seed)
		if err != nil {
			return nil, err
		}
		repM, _, err := core.Train(context.Background(), train, test, c.options(core.HSGDStarM, spec))
		if err != nil {
			return nil, fmt.Errorf("table3 %s hsgd*-m: %w", spec.Name, err)
		}
		repS, _, err := core.Train(context.Background(), train, test, c.options(core.HSGDStar, spec))
		if err != nil {
			return nil, fmt.Errorf("table3 %s hsgd*: %w", spec.Name, err)
		}
		rows = append(rows, Table3Row{
			Dataset:     spec.Name,
			MSeconds:    repM.VirtualSeconds,
			StarSeconds: repS.VirtualSeconds,
			StolenByCPU: repS.StolenByCPU,
			StolenByGPU: repS.StolenByGPU,
		})
	}
	return rows, nil
}

// Table3 formats Table3Data in the paper's layout.
func Table3(c Config) (Table, error) {
	rows, err := Table3Data(c)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("Table III: effectiveness of dynamic scheduling (%d iterations)", c.Iters),
		Header: []string{"Dataset", "HSGD*-M", "HSGD*", "stolen by CPU", "stolen by GPU"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%.4gs", r.MSeconds),
			fmt.Sprintf("%.4gs", r.StarSeconds),
			fmt.Sprintf("%d", r.StolenByCPU),
			fmt.Sprintf("%d", r.StolenByGPU),
		})
	}
	return t, nil
}

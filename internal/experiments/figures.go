package experiments

import (
	"context"
	"fmt"

	"hsgd/internal/core"
	"hsgd/internal/dataset"
	"hsgd/internal/gpu"
	"hsgd/internal/sparse"
)

// Fig3 reproduces Figure 3: processing speed of (a) the GPU and (b) one CPU
// thread on blocks of different sizes. The GPU probe is an end-to-end
// single-block launch (transfer + cold kernel), which is what the paper's
// microbenchmark measures; the CPU probe is flat by construction
// (Observation 2). Block sizes are the paper's (thousands of ratings) and
// the device is unscaled — this measures the device model itself.
func Fig3(workers int) (gpuSeries, cpuSeries Series) {
	cfg := gpu.DefaultConfig().WithWorkers(workers)
	gpuSeries.Name = fmt.Sprintf("GPU-%dw (Mupd/s)", workers)
	for n := 250_000; n <= 2_500_000; n += 250_000 {
		h2d := cfg.TransferTime(n*12, gpu.HostToDevice)
		t := h2d + cfg.KernelTime(n, false)
		gpuSeries.X = append(gpuSeries.X, float64(n)/1000)
		gpuSeries.Y = append(gpuSeries.Y, float64(n)/t/1e6)
	}
	ccfg := core.DefaultCPUConfig()
	cpuSeries.Name = "CPU-1thr (Mupd/s)"
	for n := 50_000; n <= 400_000; n += 50_000 {
		t := ccfg.BlockTime(n)
		cpuSeries.X = append(cpuSeries.X, float64(n)/1000)
		cpuSeries.Y = append(cpuSeries.Y, float64(n)/t/1e6)
	}
	return gpuSeries, cpuSeries
}

// Fig6 reproduces Figure 6: PCIe transfer speed against data size, both
// directions, on the unscaled device.
func Fig6() (h2d, d2h Series) {
	cfg := gpu.DefaultConfig()
	h2d.Name = "CPU to GPU (GB/s)"
	d2h.Name = "GPU to CPU (GB/s)"
	for b := 64 << 10; b <= 256<<20; b <<= 1 {
		h2d.X = append(h2d.X, float64(b))
		h2d.Y = append(h2d.Y, cfg.TransferSpeed(b, gpu.HostToDevice)/1e9)
		d2h.X = append(d2h.X, float64(b))
		d2h.Y = append(d2h.Y, cfg.TransferSpeed(b, gpu.DeviceToHost)/1e9)
	}
	return h2d, d2h
}

// Fig7 reproduces Figure 7: kernel-only execution throughput against block
// size (no transfers), on the unscaled device.
func Fig7(workers int) Series {
	cfg := gpu.DefaultConfig().WithWorkers(workers)
	s := Series{Name: fmt.Sprintf("kernel-%dw (Mupd/s)", workers)}
	for n := 250_000; n <= 2_500_000; n += 250_000 {
		s.X = append(s.X, float64(n)/1000)
		s.Y = append(s.Y, cfg.KernelThroughput(n)/1e6)
	}
	return s
}

// FigResult is one dataset's worth of curves for Figures 10–13.
type FigResult struct {
	Dataset string
	Series  []Series
}

// timeToTarget runs one configuration to its dataset's target RMSE and
// returns the virtual time needed (or the full-run time if the target was
// not reached within the epoch budget).
func timeToTarget(c Config, alg core.Algorithm, spec dataset.Spec,
	train, test *sparse.Matrix) (float64, error) {
	opt := c.options(alg, spec)
	opt.TargetRMSE = spec.TargetRMSE
	rep, _, err := core.Train(context.Background(), train, test, opt)
	if err != nil {
		return 0, err
	}
	if rep.TargetReached {
		return rep.TimeToTarget, nil
	}
	return rep.VirtualSeconds, nil
}

// Fig10 reproduces Figure 10: running time to the target RMSE as the GPU
// parallel workers vary (32–512), per dataset, for CPU-Only / GPU-Only /
// HSGD*. CPU-Only does not use the GPU, so its curve is flat by
// construction and measured once.
func Fig10(c Config) ([]FigResult, error) {
	workerSteps := []int{32, 64, 128, 256, 512}
	var out []FigResult
	for _, spec := range c.specs() {
		train, test, err := genCached(spec, c.Seed)
		if err != nil {
			return nil, err
		}
		cpuTime, err := timeToTarget(c, core.CPUOnly, spec, train, test)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s cpu-only: %w", spec.Name, err)
		}
		res := FigResult{Dataset: spec.Name, Series: []Series{
			{Name: "CPU-Only"}, {Name: "GPU-Only"}, {Name: "HSGD*"},
		}}
		for _, w := range workerSteps {
			cw := c
			cw.GPUWorkers = w
			gpuTime, err := timeToTarget(cw, core.GPUOnly, spec, train, test)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s gpu-only w=%d: %w", spec.Name, w, err)
			}
			starTime, err := timeToTarget(cw, core.HSGDStar, spec, train, test)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s hsgd* w=%d: %w", spec.Name, w, err)
			}
			x := float64(w)
			res.Series[0].X = append(res.Series[0].X, x)
			res.Series[0].Y = append(res.Series[0].Y, cpuTime)
			res.Series[1].X = append(res.Series[1].X, x)
			res.Series[1].Y = append(res.Series[1].Y, gpuTime)
			res.Series[2].X = append(res.Series[2].X, x)
			res.Series[2].Y = append(res.Series[2].Y, starTime)
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig11 reproduces Figure 11: running time to the target RMSE as the CPU
// thread count varies (4–16), per dataset. GPU-Only does not use CPU
// threads, so its curve is flat and measured once.
func Fig11(c Config) ([]FigResult, error) {
	threadSteps := []int{4, 8, 12, 16}
	var out []FigResult
	for _, spec := range c.specs() {
		train, test, err := genCached(spec, c.Seed)
		if err != nil {
			return nil, err
		}
		gpuTime, err := timeToTarget(c, core.GPUOnly, spec, train, test)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s gpu-only: %w", spec.Name, err)
		}
		res := FigResult{Dataset: spec.Name, Series: []Series{
			{Name: "CPU-Only"}, {Name: "GPU-Only"}, {Name: "HSGD*"},
		}}
		for _, nc := range threadSteps {
			ct := c
			ct.CPUThreads = nc
			cpuTime, err := timeToTarget(ct, core.CPUOnly, spec, train, test)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s cpu-only nc=%d: %w", spec.Name, nc, err)
			}
			starTime, err := timeToTarget(ct, core.HSGDStar, spec, train, test)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s hsgd* nc=%d: %w", spec.Name, nc, err)
			}
			x := float64(nc)
			res.Series[0].X = append(res.Series[0].X, x)
			res.Series[0].Y = append(res.Series[0].Y, cpuTime)
			res.Series[1].X = append(res.Series[1].X, x)
			res.Series[1].Y = append(res.Series[1].Y, gpuTime)
			res.Series[2].X = append(res.Series[2].X, x)
			res.Series[2].Y = append(res.Series[2].Y, starTime)
		}
		out = append(out, res)
	}
	return out, nil
}

// rmseCurves runs the given algorithms with no target and returns their
// (time, test RMSE) histories.
func rmseCurves(c Config, spec dataset.Spec, algs []core.Algorithm) (FigResult, error) {
	train, test, err := genCached(spec, c.Seed)
	if err != nil {
		return FigResult{}, err
	}
	res := FigResult{Dataset: spec.Name}
	for _, alg := range algs {
		opt := c.options(alg, spec)
		rep, _, err := core.Train(context.Background(), train, test, opt)
		if err != nil {
			return FigResult{}, fmt.Errorf("%s on %s: %w", alg, spec.Name, err)
		}
		s := Series{Name: string(alg)}
		for _, ep := range rep.History {
			s.X = append(s.X, ep.Time)
			s.Y = append(s.Y, ep.RMSE)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig12 reproduces Figure 12: test RMSE over training time for CPU-Only,
// GPU-Only and HSGD* on each dataset.
func Fig12(c Config) ([]FigResult, error) {
	var out []FigResult
	for _, spec := range c.specs() {
		res, err := rmseCurves(c, spec, []core.Algorithm{core.CPUOnly, core.GPUOnly, core.HSGDStar})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig13 reproduces Figure 13: test RMSE over training time for HSGD versus
// HSGD* — the matrix-division-strategy comparison.
func Fig13(c Config) ([]FigResult, error) {
	var out []FigResult
	for _, spec := range c.specs() {
		res, err := rmseCurves(c, spec, []core.Algorithm{core.HSGD, core.HSGDStar})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

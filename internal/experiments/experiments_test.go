package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.02
	c.K = 8
	c.Iters = 3
	return c
}

func TestFig3Shapes(t *testing.T) {
	g, c := Fig3(128)
	if len(g.X) == 0 || len(c.X) == 0 {
		t.Fatal("empty series")
	}
	for i := 1; i < len(g.Y); i++ {
		if g.Y[i] <= g.Y[i-1] {
			t.Fatalf("GPU throughput not rising at point %d", i)
		}
	}
	// CPU flat: spread under 2%.
	min, max := c.Y[0], c.Y[0]
	for _, y := range c.Y {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if (max-min)/min > 0.02 {
		t.Fatalf("CPU throughput not flat: [%v, %v]", min, max)
	}
}

func TestFig6Shapes(t *testing.T) {
	h2d, d2h := Fig6()
	for _, s := range []Series{h2d, d2h} {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("%s speed not rising", s.Name)
			}
		}
		// Saturation: last two points within 2%.
		last := s.Y[len(s.Y)-1]
		prev := s.Y[len(s.Y)-2]
		if (last-prev)/prev > 0.02 {
			t.Fatalf("%s not saturated at 256MB", s.Name)
		}
	}
}

func TestFig7MoreWorkersFaster(t *testing.T) {
	s128 := Fig7(128)
	s512 := Fig7(512)
	for i := range s128.Y {
		if s512.Y[i] <= s128.Y[i] {
			t.Fatalf("512 workers not faster at point %d", i)
		}
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, name := range []string{"MovieLens", "Netflix", "R1", "Yahoo!Music"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s in output:\n%s", name, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2Data(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.QSeconds <= 0 || r.MSeconds <= 0 {
			t.Fatalf("%s: non-positive times", r.Dataset)
		}
		if r.QCPUShare+r.QGPUShare < 0.99 || r.MCPUShare+r.MGPUShare < 0.99 {
			t.Fatalf("%s: shares do not sum to 1", r.Dataset)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3Data(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MSeconds <= 0 || r.StarSeconds <= 0 {
			t.Fatalf("%s: non-positive times", r.Dataset)
		}
		// Dynamic scheduling should never be dramatically worse.
		if r.StarSeconds > r.MSeconds*1.15 {
			t.Fatalf("%s: HSGD* %vs much worse than HSGD*-M %vs",
				r.Dataset, r.StarSeconds, r.MSeconds)
		}
	}
}

func TestFig12Histories(t *testing.T) {
	c := tinyConfig()
	res, err := Fig12(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d datasets", len(res))
	}
	for _, r := range res {
		if len(r.Series) != 3 {
			t.Fatalf("%s: %d series", r.Dataset, len(r.Series))
		}
		for _, s := range r.Series {
			if len(s.X) != c.Iters {
				t.Fatalf("%s/%s: %d eval points, want %d", r.Dataset, s.Name, len(s.X), c.Iters)
			}
			// RMSE must not blow up; with a tiny iteration budget the
			// first recorded point already includes most of the gain, so
			// only guard against divergence.
			if s.Y[len(s.Y)-1] > s.Y[0]*1.05 {
				t.Fatalf("%s/%s diverged: %v -> %v", r.Dataset, s.Name, s.Y[0], s.Y[len(s.Y)-1])
			}
		}
	}
}

func TestFprintSeries(t *testing.T) {
	var buf bytes.Buffer
	FprintSeries(&buf, "title", "x", Series{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}})
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "a") || !strings.Contains(out, "3") {
		t.Fatalf("output:\n%s", out)
	}
}

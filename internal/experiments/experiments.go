// Package experiments regenerates every measured table and figure of the
// paper's evaluation (Section VII) plus the motivation figures of
// Sections IV–V. Each experiment is one function returning plain data
// (Series for figures, Table for tables) so the same code backs the
// cmd/hsgd-experiments CLI, the root-level benchmarks, and EXPERIMENTS.md.
//
// Absolute numbers come from the simulated devices, so they will not match
// the authors' testbed; the shapes — who wins, by what factor, where
// crossovers fall — are the reproduction target (see DESIGN.md).
package experiments

import (
	"fmt"
	"io"
	"strings"

	"hsgd/internal/core"
	"hsgd/internal/dataset"
	"hsgd/internal/gpu"
)

// Config scales and seeds an experiment run. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Scale multiplies the default dataset sizes (1.0 = the DESIGN.md sizes,
	// which are 1/100 of the paper's). Benches use smaller scales.
	Scale float64
	// K overrides the latent factor count (0 keeps each spec's k=128).
	K int
	// Iters is the epoch budget per run.
	Iters int
	// CPUThreads and GPUs are the default worker counts (the paper's
	// defaults are 16 threads, 1 GPU, 128 GPU parallel workers).
	CPUThreads int
	GPUs       int
	GPUWorkers int
	Seed       int64
	// PerfVariation overrides the run-time device-speed deviation from the
	// offline profile (0 keeps the trainer default; negative disables).
	// Larger values are the regime where dynamic scheduling (Table III)
	// visibly engages.
	PerfVariation float64
}

// DefaultConfig mirrors the paper's experimental defaults.
func DefaultConfig() Config {
	return Config{
		Scale:      1.0,
		Iters:      20,
		CPUThreads: 16,
		GPUs:       1,
		GPUWorkers: 128,
		Seed:       42,
	}
}

// deviceScale converts the dataset scale into the device-constant scale:
// the default specs are 1/100 of the paper's rating counts, so device
// size-dependent constants shrink by 0.01·Scale to keep every block in the
// same regime of the throughput curves as the paper's full-size blocks.
func (c Config) deviceScale() float64 { return 0.01 * c.Scale }

// gpuConfig returns the simulated device for this config.
func (c Config) gpuConfig() gpu.Config {
	return gpu.DefaultConfig().WithWorkers(c.GPUWorkers).Scaled(c.deviceScale())
}

// cpuConfig returns the CPU worker model for this config.
func (c Config) cpuConfig() core.CPUConfig {
	return core.DefaultCPUConfig().Scaled(c.deviceScale())
}

// specs returns the four benchmark datasets at the configured scale.
func (c Config) specs() []dataset.Spec {
	specs := dataset.Benchmarks()
	for i := range specs {
		specs[i] = specs[i].Scale(c.Scale)
		if c.K > 0 {
			specs[i].K = c.K
		}
	}
	return specs
}

// options assembles trainer options for one run.
func (c Config) options(alg core.Algorithm, spec dataset.Spec) core.Options {
	p := spec.Params()
	p.Iters = c.Iters
	return core.Options{
		Algorithm:     alg,
		CPUThreads:    c.CPUThreads,
		GPUs:          c.GPUs,
		Params:        p,
		GPU:           c.gpuConfig(),
		CPU:           c.cpuConfig(),
		Seed:          c.Seed,
		PerfVariation: c.PerfVariation,
	}
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is one formatted result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint writes the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	line := make([]string, len(t.Header))
	for i, h := range t.Header {
		line[i] = pad(h, widths[i])
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(line, "  "))
	for _, row := range t.Rows {
		for i, cell := range row {
			line[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(line[:len(row)], "  "))
	}
}

// FprintSeries writes one or more series as aligned x/y columns.
func FprintSeries(w io.Writer, title, xlabel string, series ...Series) {
	fmt.Fprintf(w, "%s\n", title)
	header := []string{pad(xlabel, 14)}
	for _, s := range series {
		header = append(header, pad(s.Name, 14))
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(header, "  "))
	n := 0
	for _, s := range series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		x := ""
		for _, s := range series {
			if i < len(s.X) {
				x = fmt.Sprintf("%.6g", s.X[i])
				break
			}
		}
		row = append(row, pad(x, 14))
		for _, s := range series {
			cell := ""
			if i < len(s.Y) {
				cell = fmt.Sprintf("%.6g", s.Y[i])
			}
			row = append(row, pad(cell, 14))
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(row, "  "))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

package experiments

import (
	"fmt"
	"sync"

	"hsgd/internal/dataset"
	"hsgd/internal/sparse"
)

// genCache memoises generated datasets: the large specs take seconds to
// sample and every figure reuses them.
var genCache sync.Map // key string -> *genPair

type genPair struct {
	once  sync.Once
	train *sparse.Matrix
	test  *sparse.Matrix
	err   error
}

// Dataset returns the (memoised) train/test matrices for a spec — the same
// instances the figure and table functions train on, exported for the
// root-level benchmarks.
func Dataset(spec dataset.Spec, seed int64) (*sparse.Matrix, *sparse.Matrix, error) {
	return genCached(spec, seed)
}

// Specs returns the four benchmark dataset specs at the configured scale.
func (c Config) Specs() []dataset.Spec { return c.specs() }

func genCached(spec dataset.Spec, seed int64) (*sparse.Matrix, *sparse.Matrix, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", spec.Name, spec.Rows, spec.Cols, spec.TrainRatings, seed)
	v, _ := genCache.LoadOrStore(key, &genPair{})
	p := v.(*genPair)
	p.once.Do(func() {
		p.train, p.test, p.err = dataset.Generate(spec, seed)
	})
	return p.train, p.test, p.err
}

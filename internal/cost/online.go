package cost

import (
	"math"
	"sort"
	"sync"
)

// OnlineSamples accumulates (size, seconds) cost measurements from a live
// training run — the online counterpart of Algorithm 3's offline probes.
// Executors report one sample per processed task; repeated sizes are
// averaged, mirroring the paper's "measured multiple times to eliminate
// noise". It is safe for concurrent use.
type OnlineSamples struct {
	mu     sync.Mutex
	bySize map[int]*onlineAgg
	totalN float64
	totalT float64
}

type onlineAgg struct {
	sum   float64
	count int
}

// NewOnlineSamples returns an empty accumulator.
func NewOnlineSamples() *OnlineSamples {
	return &OnlineSamples{bySize: make(map[int]*onlineAgg)}
}

// Observe records one task: n ratings processed in secs seconds.
func (s *OnlineSamples) Observe(n int, secs float64) {
	if n <= 0 || secs <= 0 {
		return
	}
	s.mu.Lock()
	a := s.bySize[n]
	if a == nil {
		a = &onlineAgg{}
		s.bySize[n] = a
	}
	a.sum += secs
	a.count++
	s.totalN += float64(n)
	s.totalT += secs
	s.mu.Unlock()
}

// DistinctSizes reports how many distinct task sizes have been observed —
// the degrees of freedom available to the fits.
func (s *OnlineSamples) DistinctSizes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bySize)
}

// OnlineModel is a cost model fitted from live measurements. Form records
// which fit the data supported: "piecewise" (the paper's two-stage model
// with a detected τ), "linear" (the Qilin-style A·n+B fallback), or
// "throughput" (a single measured rate — always available once any sample
// exists). Tau is zero unless Form is "piecewise".
type OnlineModel struct {
	Form string
	Tau  float64
	time TimeFunc
}

// Time estimates seconds for one device to process n ratings.
func (m OnlineModel) Time(n float64) float64 { return m.time(n) }

// Fit builds the best cost model the accumulated samples support,
// degrading gracefully: the piecewise kernel model of Section V-B needs at
// least 4 distinct sizes (τ detection), the linear model at least 2, and a
// bare throughput estimate just one. Block-balanced grids often emit
// near-uniform task sizes, so the fallbacks are the common case early in a
// run; SolveAlpha only needs a monotone TimeFunc, which all three forms
// provide. Fit reports false until at least one sample was observed.
func (s *OnlineSamples) Fit(kind Kind) (OnlineModel, bool) {
	s.mu.Lock()
	sizes := make([]float64, 0, len(s.bySize))
	for n := range s.bySize {
		sizes = append(sizes, float64(n))
	}
	sort.Float64s(sizes)
	times := make([]float64, len(sizes))
	for i, n := range sizes {
		a := s.bySize[int(n)]
		times[i] = a.sum / float64(a.count)
	}
	totalN, totalT := s.totalN, s.totalT
	s.mu.Unlock()

	if totalN <= 0 || totalT <= 0 {
		return OnlineModel{}, false
	}
	if len(sizes) >= 4 {
		if pm, err := FitPiecewise(kind, sizes, times); err == nil && monotone(pm.Time, sizes) {
			return OnlineModel{Form: "piecewise", Tau: pm.Tau, time: pm.Time}, true
		}
	}
	if len(sizes) >= 2 {
		if a, b, _, err := FitLinear(sizes, times); err == nil && a > 0 {
			m := CPUModel{A: a, B: math.Max(b, 0)}
			return OnlineModel{Form: "linear", time: m.Time}, true
		}
	}
	rate := totalN / totalT
	return OnlineModel{Form: "throughput", time: func(n float64) float64 { return n / rate }}, true
}

// monotone rejects fits that decrease anywhere over the observed size
// range — SolveAlpha's binary search assumes non-decreasing estimates, and
// a noisy piecewise fit on few samples can invert.
func monotone(f TimeFunc, sizes []float64) bool {
	prev := f(sizes[0])
	for _, x := range sizes[1:] {
		t := f(x)
		if t < prev {
			return false
		}
		prev = t
	}
	return true
}

// BreakEven returns the smallest workload (in ratings, probed on a doubling
// grid up to max) at which the first model becomes at least as fast as the
// second — the cost-model-derived floor for cross-class work stealing: a
// batched executor should not steal a CPU-region block smaller than
// BreakEven(batched, cpu, ...) because below it the pipeline's staging
// overhead outweighs the saved CPU time. Returns max+1 when the first
// model never catches up within the probed range.
func BreakEven(fast, slow TimeFunc, max int) int {
	if max < 1 {
		return 1
	}
	for n := 1; n <= max; n *= 2 {
		if fast(float64(n)) <= slow(float64(n)) {
			return n
		}
	}
	return max + 1
}

package cost

import (
	"fmt"
	"math"
)

// Kind selects the pre-saturation speed transform of a piecewise model.
type Kind string

// Model kinds.
const (
	KindTransfer Kind = "transfer" // speed ≈ a·√(log x) + b below τ
	KindKernel   Kind = "kernel"   // speed ≈ a·log x + b below τ
)

func (k Kind) transform() func(float64) float64 {
	if k == KindTransfer {
		return SqrtLog
	}
	return Log
}

// CPUModel is the linear per-thread cost model of Section V-A (adopted from
// Qilin): a single CPU thread takes A·n + B seconds to process n ratings.
type CPUModel struct {
	A, B float64
	RMSE float64 // fit residual, for reporting
}

// Time returns the estimated seconds for one thread to process n ratings.
func (m CPUModel) Time(n float64) float64 {
	t := m.A*n + m.B
	if t < 0 {
		return 0
	}
	return t
}

// FitCPUModel fits the linear model to profiled (size, seconds) samples.
func FitCPUModel(sizes, times []float64) (CPUModel, error) {
	a, b, rmse, err := FitLinear(sizes, times)
	if err != nil {
		return CPUModel{}, err
	}
	return CPUModel{A: a, B: b, RMSE: rmse}, nil
}

// PiecewiseModel is the paper's two-stage GPU-side model (Section V-B):
//
//	time(x) = x / (A1·g(x) + B1)   if x ≤ Tau   (g per Kind)
//	time(x) = A2·x + B2            otherwise
//
// where x is bytes for transfers and elements for the kernel.
type PiecewiseModel struct {
	Kind   Kind
	Tau    float64
	A1, B1 float64 // speed coefficients below Tau
	A2, B2 float64 // time coefficients above Tau
	RMSE   float64 // worst residual of the two stages (on speed resp. time)
}

// Time returns estimated seconds for input size x.
func (m PiecewiseModel) Time(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x <= m.Tau {
		speed := m.A1*m.Kind.transform()(x) + m.B1
		if speed <= 0 {
			// Degenerate fit below the smallest profiled size; fall back to
			// the linear stage so estimates stay finite and monotonic.
			return m.A2*x + m.B2
		}
		return x / speed
	}
	t := m.A2*x + m.B2
	if t < 0 {
		return 0
	}
	return t
}

// Speed returns the estimated throughput (x per second) at size x.
func (m PiecewiseModel) Speed(x float64) float64 {
	t := m.Time(x)
	if t <= 0 {
		return 0
	}
	return x / t
}

// FitPiecewise fits the two-stage model to profiled (size, seconds) samples
// ordered by increasing size. τ is detected with the 2% stability rule; the
// pre-τ stage is fitted on speeds with the Kind's transform, the post-τ
// stage on times with a plain linear fit. When fewer than two samples land
// on one side of τ, that side borrows the nearest two samples so both
// stages stay defined.
func FitPiecewise(kind Kind, sizes, times []float64) (PiecewiseModel, error) {
	if len(sizes) != len(times) {
		return PiecewiseModel{}, fmt.Errorf("cost: len(sizes)=%d len(times)=%d", len(sizes), len(times))
	}
	if len(sizes) < 4 {
		return PiecewiseModel{}, fmt.Errorf("cost: need >=4 samples for a piecewise fit, got %d", len(sizes))
	}
	speeds := make([]float64, len(sizes))
	for i := range sizes {
		if times[i] <= 0 {
			return PiecewiseModel{}, fmt.Errorf("cost: non-positive time %v at size %v", times[i], sizes[i])
		}
		speeds[i] = sizes[i] / times[i]
	}
	tau, err := DetectTau(sizes, speeds, 0.02)
	if err != nil {
		return PiecewiseModel{}, err
	}
	split := len(sizes)
	for i, s := range sizes {
		if s > tau {
			split = i
			break
		}
	}
	if split < 2 {
		split = 2
	}
	if len(sizes)-split < 2 {
		split = len(sizes) - 2
	}
	m := PiecewiseModel{Kind: kind, Tau: tau}
	var r1, r2 float64
	m.A1, m.B1, r1, err = FitTransformed(sizes[:split], speeds[:split], kind.transform())
	if err != nil {
		return PiecewiseModel{}, fmt.Errorf("cost: pre-tau stage: %w", err)
	}
	m.A2, m.B2, r2, err = FitLinear(sizes[split:], times[split:])
	if err != nil {
		return PiecewiseModel{}, fmt.Errorf("cost: post-tau stage: %w", err)
	}
	m.RMSE = math.Max(r1, r2)
	return m, nil
}

// GPUModel is the overall GPU cost model of Equation 9: the estimated time
// for n ratings is the maximum of the H2D transfer estimate and the kernel
// estimate, because the CUDA-stream pipeline overlaps them (Figure 8). The
// D2H stage is retained for reporting but, as the paper notes, it is always
// dominated ("f_g⇒c is always smaller than f_c⇒g").
type GPUModel struct {
	Kernel PiecewiseModel
	H2D    PiecewiseModel
	D2H    PiecewiseModel
	// H2DBytesPerElement/D2HBytesPerElement translate a workload of n
	// ratings into transferred bytes (ratings payload plus amortised factor
	// segments), measured during profiling.
	H2DBytesPerElement float64
	D2HBytesPerElement float64
}

// Time estimates seconds for the GPU to process n ratings (Equation 9).
func (m GPUModel) Time(n float64) float64 {
	kernel := m.Kernel.Time(n)
	h2d := m.H2D.Time(n * m.H2DBytesPerElement)
	return math.Max(kernel, h2d)
}

// Breakdown returns the per-stream estimates for n ratings, for reporting.
func (m GPUModel) Breakdown(n float64) (kernel, h2d, d2h float64) {
	return m.Kernel.Time(n), m.H2D.Time(n * m.H2DBytesPerElement), m.D2H.Time(n * m.D2HBytesPerElement)
}

// QilinModel is the baseline cost model of Luk et al. [11] used by the
// HSGD*-Q comparison in Table II: a single linear fit of end-to-end time
// against input size, for both devices.
type QilinModel struct {
	A, B float64
	RMSE float64
}

// Time returns the estimated seconds for n ratings.
func (m QilinModel) Time(n float64) float64 {
	t := m.A*n + m.B
	if t < 0 {
		return 0
	}
	return t
}

// FitQilin fits the linear end-to-end model to profiled samples.
func FitQilin(sizes, times []float64) (QilinModel, error) {
	a, b, rmse, err := FitLinear(sizes, times)
	if err != nil {
		return QilinModel{}, err
	}
	return QilinModel{A: a, B: b, RMSE: rmse}, nil
}

// Package cost implements the paper's Section V: cost models that estimate
// how long a CPU thread or a GPU takes to process a given share of the
// rating matrix, the curve-fitting machinery behind them (ordinary least
// squares over transformed features), the saturation-threshold (τ)
// detector, the Qilin-style linear baseline, and the workload-split solver
// for α (Equations 7–8).
package cost

import (
	"fmt"
	"math"
)

// FitLinear fits y ≈ a·x + b by ordinary least squares and returns the
// coefficients and the root-mean-square residual.
func FitLinear(x, y []float64) (a, b, rmse float64, err error) {
	return FitTransformed(x, y, func(v float64) float64 { return v })
}

// FitTransformed fits y ≈ a·g(x) + b by ordinary least squares on the
// transformed feature g(x). This is the single fitting primitive behind the
// linear CPU model (g = identity), the transfer-speed model (g = √log) and
// the kernel-speed model (g = log).
func FitTransformed(x, y []float64, g func(float64) float64) (a, b, rmse float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, fmt.Errorf("cost: len(x)=%d len(y)=%d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, 0, 0, fmt.Errorf("cost: need at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		gx := g(x[i])
		sx += gx
		sy += y[i]
		sxx += gx * gx
		sxy += gx * y[i]
	}
	det := n*sxx - sx*sx
	if math.Abs(det) < 1e-12 {
		return 0, 0, 0, fmt.Errorf("cost: degenerate fit (all g(x) equal)")
	}
	a = (n*sxy - sx*sy) / det
	b = (sy - a*sx) / n
	var se float64
	for i := range x {
		r := y[i] - (a*g(x[i]) + b)
		se += r * r
	}
	rmse = math.Sqrt(se / n)
	return a, b, rmse, nil
}

// SqrtLog is the √log transform the paper fits transfer speed with
// (Section V-B: "we use the function a·√(log|R|)+b to model the curve of
// the first stage").
func SqrtLog(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Sqrt(math.Log(x))
}

// Log is the logarithmic transform the paper fits kernel speed with ("the
// growth trend of the logarithmic function can be slower than the power
// function, which is more consistent with the trend in Figure 7").
func Log(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x)
}

package cost

import (
	"math"
	"sync"
	"testing"
)

// TestOnlineFitDegradesGracefully: the fit picks the richest model the
// sample diversity supports — throughput with one size, linear with a few,
// piecewise (with a detected τ) once the curve is well sampled.
func TestOnlineFitDegradesGracefully(t *testing.T) {
	s := NewOnlineSamples()
	if _, ok := s.Fit(KindKernel); ok {
		t.Fatal("fit succeeded with no samples")
	}

	s.Observe(1000, 0.010)
	m, ok := s.Fit(KindKernel)
	if !ok || m.Form != "throughput" {
		t.Fatalf("one size: form %q ok=%v, want throughput", m.Form, ok)
	}
	// 1000 ratings in 10ms → 2000 in 20ms.
	if got := m.Time(2000); math.Abs(got-0.020) > 1e-9 {
		t.Fatalf("throughput Time(2000) = %v, want 0.020", got)
	}

	s.Observe(2000, 0.019)
	m, ok = s.Fit(KindKernel)
	if !ok || m.Form != "linear" {
		t.Fatalf("two sizes: form %q ok=%v, want linear", m.Form, ok)
	}

	// A saturating speed curve over many sizes: speed = min(n, 4000)-ish.
	s2 := NewOnlineSamples()
	for n := 500; n <= 64000; n *= 2 {
		speed := 4000 * (1 - math.Exp(-float64(n)/2000))
		s2.Observe(n, float64(n)/speed)
	}
	m2, ok := s2.Fit(KindKernel)
	if !ok {
		t.Fatal("piecewise-shaped samples did not fit")
	}
	if m2.Form == "piecewise" && m2.Tau <= 0 {
		t.Fatalf("piecewise fit with tau %v", m2.Tau)
	}
	// Whatever the form, estimates must be positive and monotone.
	prev := 0.0
	for n := 500.0; n <= 128000; n *= 2 {
		est := m2.Time(n)
		if est <= 0 || est < prev {
			t.Fatalf("estimate not positive/monotone at %v: %v (prev %v)", n, est, prev)
		}
		prev = est
	}
}

// TestOnlineSamplesAveragesAndConcurrency: repeated sizes average, and
// concurrent Observe calls (the executors' sink) are safe.
func TestOnlineSamplesAveragesAndConcurrency(t *testing.T) {
	s := NewOnlineSamples()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Observe(1000, 0.008)
				s.Observe(1000, 0.012)
			}
		}()
	}
	wg.Wait()
	if s.DistinctSizes() != 1 {
		t.Fatalf("distinct sizes %d, want 1", s.DistinctSizes())
	}
	m, ok := s.Fit(KindKernel)
	if !ok {
		t.Fatal("fit failed")
	}
	if got := m.Time(1000); math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("averaged Time(1000) = %v, want 0.010", got)
	}
	// Zero/negative samples are dropped, not poison.
	s.Observe(0, 1)
	s.Observe(100, 0)
	if s.DistinctSizes() != 1 {
		t.Fatal("degenerate samples were recorded")
	}
}

// TestBreakEven: the steal-threshold search finds the crossing of two cost
// curves and saturates past the probe range.
func TestBreakEven(t *testing.T) {
	cpu := func(n float64) float64 { return n / 1000 }       // 1k ratings/s
	bat := func(n float64) float64 { return 0.05 + n/10000 } // fast but 50ms setup
	be := BreakEven(bat, cpu, 1<<20)
	// Crossing: 0.05 + n/10000 <= n/1000 → n >= 55.55… → first power of two is 64.
	if be != 64 {
		t.Fatalf("break-even %d, want 64", be)
	}
	never := func(n float64) float64 { return n } // always slower
	if be := BreakEven(never, cpu, 1024); be != 1025 {
		t.Fatalf("never-faster break-even %d, want max+1", be)
	}
	if be := BreakEven(cpu, never, 0); be != 1 {
		t.Fatalf("degenerate max break-even %d, want 1", be)
	}
}

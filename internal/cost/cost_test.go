package cost

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	a, b, rmse, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-9 || math.Abs(b-1) > 1e-9 || rmse > 1e-9 {
		t.Fatalf("fit a=%v b=%v rmse=%v", a, b, rmse)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, _, _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitTransformedRecovers(t *testing.T) {
	// y = 4·log(x) + 2 exactly.
	x := []float64{10, 100, 1000, 10000, 100000}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 4*math.Log(x[i]) + 2
	}
	a, b, rmse, err := FitTransformed(x, y, Log)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-4) > 1e-6 || math.Abs(b-2) > 1e-6 || rmse > 1e-6 {
		t.Fatalf("fit a=%v b=%v rmse=%v", a, b, rmse)
	}
}

// Property: OLS residual RMSE never exceeds the residual of the zero-slope
// model (fitting can only help).
func TestQuickFitBeatsConstant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i + 1)
			y[i] = rng.Float64()*10 - 5
		}
		a, b, rmse, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		_ = a
		_ = b
		var mean float64
		for _, v := range y {
			mean += v
		}
		mean /= float64(n)
		var se float64
		for _, v := range y {
			se += (v - mean) * (v - mean)
		}
		constRMSE := math.Sqrt(se / float64(n))
		return rmse <= constRMSE+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectTau(t *testing.T) {
	// Speed rises then plateaus from x=32 on: every consecutive variation
	// from 16→32 onward stays below 2%.
	sizes := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	speeds := []float64{10, 30, 60, 85, 97, 98.5, 99.2, 99.6}
	tau, err := DetectTau(sizes, speeds, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 32 {
		t.Fatalf("tau = %v, want 32", tau)
	}
}

func TestDetectTauNeverStable(t *testing.T) {
	sizes := []float64{1, 2, 4, 8}
	speeds := []float64{1, 2, 4, 8} // doubling forever
	tau, err := DetectTau(sizes, speeds, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 8 {
		t.Fatalf("tau = %v, want last size", tau)
	}
}

func TestDetectTauErrors(t *testing.T) {
	if _, err := DetectTau([]float64{1}, []float64{1}, 0.02); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := DetectTau([]float64{2, 1}, []float64{1, 1}, 0.02); err == nil {
		t.Fatal("unsorted sizes accepted")
	}
	if _, err := DetectTau([]float64{1, 2}, []float64{1}, 0.02); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCPUModel(t *testing.T) {
	sizes := []float64{1000, 2000, 3000, 4000}
	times := make([]float64, len(sizes))
	for i, n := range sizes {
		times[i] = n/5e6 + 1e-5
	}
	m, err := FitCPUModel(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Time(2500); math.Abs(got-(2500/5e6+1e-5)) > 1e-9 {
		t.Fatalf("Time(2500) = %v", got)
	}
	if m.Time(-100) != 0 {
		t.Fatal("negative workload should clamp to 0")
	}
}

// syntheticCurve produces a latency+bandwidth curve like the simulator's:
// time = lat + x/peak.
func syntheticCurve(lat, peak float64, sizes []float64) []float64 {
	times := make([]float64, len(sizes))
	for i, x := range sizes {
		times[i] = lat + x/peak
	}
	return times
}

func TestFitPiecewiseTransfer(t *testing.T) {
	var sizes []float64
	for b := 64 << 10; b <= 256<<20; b <<= 1 {
		sizes = append(sizes, float64(b))
	}
	times := syntheticCurve(25e-6, 12.5e9, sizes)
	m, err := FitPiecewise(KindTransfer, sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tau <= sizes[0] || m.Tau > sizes[len(sizes)-1] {
		t.Fatalf("tau = %v outside range", m.Tau)
	}
	// Estimates should track the truth within 25% across the range
	// (the √log form is an approximation, which is the paper's point).
	for i, x := range sizes {
		got := m.Time(x)
		if got <= 0 {
			t.Fatalf("non-positive estimate at %v", x)
		}
		rel := math.Abs(got-times[i]) / times[i]
		if rel > 0.25 {
			t.Fatalf("estimate at %v off by %v", x, rel)
		}
	}
	// Speeds must be roughly increasing below tau.
	if m.Speed(sizes[0]) >= m.Speed(m.Tau) {
		t.Fatal("fitted speed not rising toward tau")
	}
}

func TestFitPiecewiseErrors(t *testing.T) {
	if _, err := FitPiecewise(KindKernel, []float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("3 samples accepted")
	}
	if _, err := FitPiecewise(KindKernel, []float64{1, 2, 3, 4}, []float64{1, 2, 0, 4}); err == nil {
		t.Fatal("non-positive time accepted")
	}
}

func TestGPUModelMax(t *testing.T) {
	kernel := PiecewiseModel{Kind: KindKernel, Tau: 1, A2: 2, B2: 0} // time = 2n above tau
	h2d := PiecewiseModel{Kind: KindTransfer, Tau: 1, A2: 1, B2: 0}  // time = bytes
	m := GPUModel{Kernel: kernel, H2D: h2d, H2DBytesPerElement: 1}
	// kernel 2n vs transfer n → kernel dominates (Equation 9).
	if got := m.Time(100); got != 200 {
		t.Fatalf("Time = %v, want 200", got)
	}
	m.H2DBytesPerElement = 5 // transfer 5n now dominates
	if got := m.Time(100); got != 500 {
		t.Fatalf("Time = %v, want 500", got)
	}
	k, h, _ := m.Breakdown(100)
	if k != 200 || h != 500 {
		t.Fatalf("Breakdown = %v,%v", k, h)
	}
}

func TestSolveAlphaBalances(t *testing.T) {
	// GPU processes at 100 units/s (per device), CPU thread at 10; 4
	// threads. Balance: α/100 = (1−α)/40 → α = 5/7.
	tg := func(n float64) float64 { return n / 100 }
	tc := func(n float64) float64 { return n / 10 }
	alpha := SolveAlpha(tg, tc, 1000, 4, 1)
	if math.Abs(alpha-5.0/7.0) > 1e-6 {
		t.Fatalf("alpha = %v, want %v", alpha, 5.0/7.0)
	}
	// Makespan at the balance point is lower than at the extremes.
	mid := MakespanEstimate(tg, tc, 1000, 4, 1, alpha)
	lo := MakespanEstimate(tg, tc, 1000, 4, 1, 0.1)
	hi := MakespanEstimate(tg, tc, 1000, 4, 1, 0.95)
	if mid >= lo || mid >= hi {
		t.Fatalf("makespan %v not below extremes %v/%v", mid, lo, hi)
	}
}

func TestSolveAlphaExtremes(t *testing.T) {
	fast := func(n float64) float64 { return n / 1e12 }
	slow := func(n float64) float64 { return n }
	if alpha := SolveAlpha(slow, fast, 1000, 4, 1); alpha > 1e-6 {
		t.Fatalf("useless GPU got alpha %v", alpha)
	}
	if alpha := SolveAlpha(fast, slow, 1000, 4, 1); alpha < 1-1e-6 {
		t.Fatalf("useless CPU kept alpha %v", alpha)
	}
	if alpha := SolveAlpha(fast, slow, 0, 4, 1); alpha != 0 {
		t.Fatalf("empty workload alpha %v", alpha)
	}
	if alpha := SolveAlpha(fast, slow, 100, 0, 1); alpha != 1 {
		t.Fatalf("no CPUs alpha %v", alpha)
	}
	if alpha := SolveAlpha(fast, slow, 100, 4, 0); alpha != 0 {
		t.Fatalf("no GPUs alpha %v", alpha)
	}
}

// Property: SolveAlpha returns a value in [0,1] whose balance gap is within
// tolerance of zero for interior solutions.
func TestQuickSolveAlpha(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gr := 1 + rng.Float64()*100
		cr := 1 + rng.Float64()*100
		nc := 1 + rng.Intn(16)
		ng := 1 + rng.Intn(4)
		tg := func(n float64) float64 { return n / gr }
		tc := func(n float64) float64 { return n / cr }
		alpha := SolveAlpha(tg, tc, 1e6, nc, ng)
		if alpha < 0 || alpha > 1 {
			return false
		}
		if alpha > 0 && alpha < 1 {
			gap := tg(alpha*1e6)/float64(ng) - tc((1-alpha)*1e6)/float64(nc)
			if math.Abs(gap) > 1e-3*tg(1e6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitQilin(t *testing.T) {
	sizes := []float64{100, 200, 300}
	times := []float64{1.5, 2.5, 3.5} // 0.01n + 0.5
	m, err := FitQilin(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Time(400)-4.5) > 1e-9 {
		t.Fatalf("Time(400) = %v", m.Time(400))
	}
}

func TestBuildProfileAndRoundTrip(t *testing.T) {
	benches := Benches{
		CPUKernel:          func(n int) float64 { return float64(n) / 5e6 },
		GPUKernel:          func(n int) float64 { return (float64(n) + 1e5) / 7e7 },
		GPUE2E:             func(n int) float64 { return (float64(n)+1e5)/7e7 + float64(n)*12/12.5e9 },
		H2D:                func(b int) float64 { return 25e-6 + float64(b)/12.5e9 },
		D2H:                func(b int) float64 { return 25e-6 + float64(b)/12.8e9 },
		H2DBytesPerElement: 12,
		D2HBytesPerElement: 4,
	}
	p, err := BuildProfile(1_000_000, DefaultProfileOptions(), benches)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPU.A <= 0 {
		t.Fatalf("CPU slope %v", p.CPU.A)
	}
	// The fitted GPU model should be within 30% of truth at mid-range.
	n := 500_000.0
	truth := (n + 1e5) / 7e7
	if got := p.GPU.Kernel.Time(n); math.Abs(got-truth)/truth > 0.3 {
		t.Fatalf("kernel estimate %v vs truth %v", got, truth)
	}
	// JSON round trip.
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.CPU.A != p.CPU.A || back.GPU.Kernel.Tau != p.GPU.Kernel.Tau {
		t.Fatal("profile changed after JSON round trip")
	}
	// File round trip.
	path := t.TempDir() + "/profile.json"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfileFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestBuildProfileErrors(t *testing.T) {
	opts := DefaultProfileOptions()
	opts.Segments = 2
	if _, err := BuildProfile(1000, opts, Benches{}); err == nil {
		t.Fatal("too few segments accepted")
	}
	if _, err := BuildProfile(3, DefaultProfileOptions(), Benches{}); err == nil {
		t.Fatal("dataset smaller than segments accepted")
	}
}

func TestSamplesSpeeds(t *testing.T) {
	s := Samples{Sizes: []float64{10, 20}, Times: []float64{2, 4}}
	sp := s.Speeds()
	if sp[0] != 5 || sp[1] != 5 {
		t.Fatalf("speeds = %v", sp)
	}
}

package cost

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Bench measures the seconds a device needs for one input of the given size
// (ratings for kernels, bytes for transfers). Implementations run the real
// simulated device — the cost models are *fitted to measurements*, exactly
// as in Algorithm 3, so the gap between fit and truth is genuine and the
// dynamic scheduler has real work to do.
type Bench func(size int) float64

// ProfileOptions configures BuildProfile (Algorithm 3).
type ProfileOptions struct {
	Segments int // N: the dataset is split into N parts and prefixes S1, S1+S2, … are timed
	Repeats  int // measurements averaged per point "to eliminate noise"
	// Transfer probe sizes in bytes; defaults to 64 KB … 256 MB doublings
	// (the x-axis of Figure 6).
	TransferSizes []int
}

// DefaultProfileOptions mirrors the paper's setup.
func DefaultProfileOptions() ProfileOptions {
	sizes := make([]int, 0, 13)
	for b := 64 << 10; b <= 256<<20; b <<= 1 {
		sizes = append(sizes, b)
	}
	return ProfileOptions{Segments: 12, Repeats: 3, TransferSizes: sizes}
}

// Samples is one profiled curve, kept for reporting and figure generation.
type Samples struct {
	Sizes []float64
	Times []float64
}

// Speeds returns sizes[i]/times[i].
func (s Samples) Speeds() []float64 {
	out := make([]float64, len(s.Sizes))
	for i := range s.Sizes {
		if s.Times[i] > 0 {
			out[i] = s.Sizes[i] / s.Times[i]
		}
	}
	return out
}

// Profile is the output of the offline phase: every fitted model plus the
// raw measurements they came from. It is stored on disk once per machine
// and reused for any input matrix (Section IV-C).
type Profile struct {
	CPU      CPUModel   `json:"cpu"`
	GPU      GPUModel   `json:"gpu"`
	QilinGPU QilinModel `json:"qilin_gpu"` // the Table II baseline

	CPUSamples    Samples `json:"cpu_samples"`
	KernelSamples Samples `json:"kernel_samples"`
	H2DSamples    Samples `json:"h2d_samples"`
	D2HSamples    Samples `json:"d2h_samples"`
	GPUE2ESamples Samples `json:"gpu_e2e_samples"`
}

// Benches bundles the device measurement hooks BuildProfile drives.
type Benches struct {
	CPUKernel KernelOnDataset // time for 1 CPU thread over n ratings
	GPUE2E    KernelOnDataset // end-to-end GPU time (transfers + kernel, overlapped)
	GPUKernel KernelOnDataset // kernel-only time
	H2D       Bench           // bytes → seconds
	D2H       Bench           // bytes → seconds
	// Bytes moved per rating in each direction (ratings payload + amortised
	// factor segments), used to evaluate transfer models on rating counts.
	H2DBytesPerElement float64
	D2HBytesPerElement float64
}

// KernelOnDataset measures processing n ratings sampled from the input.
type KernelOnDataset func(n int) float64

// BuildProfile runs Algorithm 3: prefix-sized CPU and GPU kernel probes,
// transfer-speed probes, then model fitting and combination.
func BuildProfile(nnz int, opts ProfileOptions, b Benches) (*Profile, error) {
	if opts.Segments < 4 {
		return nil, fmt.Errorf("cost: need >=4 segments, got %d", opts.Segments)
	}
	if opts.Repeats < 1 {
		opts.Repeats = 1
	}
	if nnz < opts.Segments {
		return nil, fmt.Errorf("cost: dataset too small (%d ratings for %d segments)", nnz, opts.Segments)
	}
	p := &Profile{
		GPU: GPUModel{
			H2DBytesPerElement: b.H2DBytesPerElement,
			D2HBytesPerElement: b.D2HBytesPerElement,
		},
	}

	// Line 1-2: prefix datasets S1, S1+S2, … timed on a single CPU thread.
	prefixes := make([]int, opts.Segments)
	for i := range prefixes {
		prefixes[i] = nnz * (i + 1) / opts.Segments
	}
	p.CPUSamples = measure(prefixes, opts.Repeats, b.CPUKernel)

	// Line 3: linear CPU fit.
	var err error
	p.CPU, err = FitCPUModel(p.CPUSamples.Sizes, p.CPUSamples.Times)
	if err != nil {
		return nil, fmt.Errorf("cost: fitting CPU model: %w", err)
	}

	// Line 4: transfer probes in both directions.
	p.H2DSamples = measureBytes(opts.TransferSizes, opts.Repeats, b.H2D)
	p.GPU.H2D, err = FitPiecewise(KindTransfer, p.H2DSamples.Sizes, p.H2DSamples.Times)
	if err != nil {
		return nil, fmt.Errorf("cost: fitting H2D model: %w", err)
	}
	p.D2HSamples = measureBytes(opts.TransferSizes, opts.Repeats, b.D2H)
	p.GPU.D2H, err = FitPiecewise(KindTransfer, p.D2HSamples.Sizes, p.D2HSamples.Times)
	if err != nil {
		return nil, fmt.Errorf("cost: fitting D2H model: %w", err)
	}

	// Line 5-6: GPU kernel probes and the log-speed fit.
	p.KernelSamples = measure(prefixes, opts.Repeats, b.GPUKernel)
	p.GPU.Kernel, err = FitPiecewise(KindKernel, p.KernelSamples.Sizes, p.KernelSamples.Times)
	if err != nil {
		return nil, fmt.Errorf("cost: fitting kernel model: %w", err)
	}

	// The Qilin baseline fits end-to-end GPU time with a single line.
	p.GPUE2ESamples = measure(prefixes, opts.Repeats, b.GPUE2E)
	p.QilinGPU, err = FitQilin(p.GPUE2ESamples.Sizes, p.GPUE2ESamples.Times)
	if err != nil {
		return nil, fmt.Errorf("cost: fitting Qilin model: %w", err)
	}
	return p, nil
}

func measure(sizes []int, repeats int, bench KernelOnDataset) Samples {
	s := Samples{Sizes: make([]float64, len(sizes)), Times: make([]float64, len(sizes))}
	for i, n := range sizes {
		var sum float64
		for r := 0; r < repeats; r++ {
			sum += bench(n)
		}
		s.Sizes[i] = float64(n)
		s.Times[i] = sum / float64(repeats)
	}
	return s
}

func measureBytes(sizes []int, repeats int, bench Bench) Samples {
	s := Samples{Sizes: make([]float64, len(sizes)), Times: make([]float64, len(sizes))}
	for i, n := range sizes {
		var sum float64
		for r := 0; r < repeats; r++ {
			sum += bench(n)
		}
		s.Sizes[i] = float64(n)
		s.Times[i] = sum / float64(repeats)
	}
	return s
}

// Save writes the profile as JSON, the stored artefact of the offline phase.
func (p *Profile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadProfile reads a profile written by Save.
func LoadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("cost: decoding profile: %w", err)
	}
	return &p, nil
}

// SaveFile writes the profile to a file.
func (p *Profile) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Save(f)
}

// LoadProfileFile reads a profile from a file.
func LoadProfileFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadProfile(f)
}

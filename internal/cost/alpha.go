package cost

// TimeFunc estimates the seconds one device needs to process n ratings.
type TimeFunc func(n float64) float64

// SolveAlpha computes the workload split of Equation 8:
//
//	α = argmin | Tg(α·N)/ng − Tc((1−α)·N)/nc |
//
// where Tg is the per-GPU estimate, Tc the per-CPU-thread estimate, N the
// total number of ratings, and ng/nc the device counts. Both estimates are
// monotone non-decreasing in their workload, so the balance gap
// g(α) = Tg(α)/ng − Tc(1−α)/nc is monotone non-decreasing in α and a binary
// search finds the crossing.
//
// The result is clamped to [0, 1]; α=0 means everything runs on CPUs, α=1
// everything on GPUs.
func SolveAlpha(tg, tc TimeFunc, n float64, nc, ng int) float64 {
	if n <= 0 || ng <= 0 {
		return 0
	}
	if nc <= 0 {
		return 1
	}
	gap := func(alpha float64) float64 {
		return tg(alpha*n)/float64(ng) - tc((1-alpha)*n)/float64(nc)
	}
	lo, hi := 0.0, 1.0
	if gap(lo) >= 0 {
		return 0 // GPU slower than CPUs even on zero work: give it nothing.
	}
	if gap(hi) <= 0 {
		return 1 // GPU faster even taking everything.
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if gap(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MakespanEstimate returns the Equation 7 estimate
// max(Tg(α·N)/ng, Tc((1−α)·N)/nc) for a candidate split.
func MakespanEstimate(tg, tc TimeFunc, n float64, nc, ng int, alpha float64) float64 {
	g := tg(alpha*n) / float64(ng)
	c := tc((1-alpha)*n) / float64(nc)
	if g > c {
		return g
	}
	return c
}

package cost

import "fmt"

// DetectTau locates the saturation threshold τ of a speed curve: the paper
// considers the speed stable "when the variation of the transfer speed is
// less than 2% in a time unit" (Section V-B). Samples must be ordered by
// increasing size; speeds[i] is the measured speed at sizes[i].
//
// τ is the first size from which every subsequent consecutive relative
// variation stays below maxVariation (default 0.02 when <= 0). If the curve
// never stabilises, the largest size is returned so the piecewise models
// degrade to their pre-saturation branch.
func DetectTau(sizes, speeds []float64, maxVariation float64) (float64, error) {
	if len(sizes) != len(speeds) {
		return 0, fmt.Errorf("cost: len(sizes)=%d len(speeds)=%d", len(sizes), len(speeds))
	}
	if len(sizes) < 2 {
		return 0, fmt.Errorf("cost: need at least 2 samples to detect tau")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			return 0, fmt.Errorf("cost: sizes not strictly increasing at %d", i)
		}
	}
	if maxVariation <= 0 {
		maxVariation = 0.02
	}
	for start := 1; start < len(speeds); start++ {
		stable := true
		for i := start; i < len(speeds); i++ {
			prev := speeds[i-1]
			if prev == 0 {
				stable = false
				break
			}
			rel := (speeds[i] - prev) / prev
			if rel < 0 {
				rel = -rel
			}
			if rel >= maxVariation {
				stable = false
				break
			}
		}
		if stable {
			return sizes[start], nil
		}
	}
	return sizes[len(sizes)-1], nil
}

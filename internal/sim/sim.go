// Package sim is a minimal deterministic discrete-event simulation engine:
// a virtual clock plus an event queue ordered by (time, insertion sequence).
//
// The heterogeneous experiments in this repository replace the paper's
// wall-clock measurements with virtual time from this engine: every device
// (CPU thread, GPU stream) schedules its completion events here, so
// "running time" is a deterministic, hardware-independent quantity whose
// *ratios* between algorithms reproduce the paper's figures.
package sim

import "container/heap"

// Event is a scheduled callback.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine owns the virtual clock and the pending event queue. The zero value
// is ready to use; events fire in (time, schedule-order) order, which makes
// simulations fully deterministic.
type Engine struct {
	now    float64
	seq    int64
	queue  eventHeap
	halted bool
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay virtual seconds. A negative delay is clamped
// to zero (fires "now", after already-pending events at the current time).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// Run processes events until the queue drains or Halt is called. It returns
// the final virtual time.
func (e *Engine) Run() float64 {
	for len(e.queue) > 0 && !e.halted {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with time <= deadline (or until Halt), leaving
// later events pending, and returns the virtual time reached.
func (e *Engine) RunUntil(deadline float64) float64 {
	for len(e.queue) > 0 && !e.halted && e.queue[0].at <= deadline {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < deadline && !e.halted {
		e.now = deadline
	}
	return e.now
}

// Halt stops Run/RunUntil after the current event returns. Pending events
// stay queued; a subsequent Run resumes.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called since the last Resume.
func (e *Engine) Halted() bool { return e.halted }

// Resume clears the halted flag so Run can continue.
func (e *Engine) Resume() { e.halted = false }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

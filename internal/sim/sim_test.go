package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
}

func TestTiesBreakByScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(1, func() {
		got = append(got, "a")
		e.Schedule(1, func() { got = append(got, "c") })
	})
	e.Schedule(1.5, func() { got = append(got, "b") })
	end := e.Run()
	if end != 2 {
		t.Fatalf("end = %v", end)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order %v", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(5, func() {
		e.Schedule(-3, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("clamped event did not fire")
	}
	if e.Now() != 5 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := New()
	var at float64
	e.Schedule(2, func() {
		e.ScheduleAt(1, func() { at = e.Now() })
	})
	e.Run()
	if at != 2 {
		t.Fatalf("past event fired at %v", at)
	}
}

func TestHaltAndResume(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(1, func() { count++; e.Halt() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 || !e.Halted() {
		t.Fatalf("halt did not stop processing (count=%d)", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Resume()
	e.Run()
	if count != 2 {
		t.Fatal("resume did not continue")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	now := e.RunUntil(2.5)
	if now != 2.5 {
		t.Fatalf("RunUntil returned %v", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

// Property: any batch of events fires exactly once, in nondecreasing time
// order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		count := int(n%50) + 1
		delays := make([]float64, count)
		var fired []float64
		for i := range delays {
			delays[i] = rng.Float64() * 100
			d := delays[i]
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		e.Run()
		if len(fired) != count {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		sort.Float64s(delays)
		for i := range delays {
			if fired[i] != delays[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

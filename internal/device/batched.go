package device

import (
	"sync/atomic"
	"time"

	"hsgd/internal/model"
	"hsgd/internal/obs"
	"hsgd/internal/sched"
	"hsgd/internal/sgd"
)

// stage is one staging buffer of the double-buffered pipeline: a claimed
// task plus the contiguous copy of its blocks' SoA payloads. done is closed
// when the background pack finishes.
type stage struct {
	task *sched.Task
	rows []int32
	cols []int32
	vals []float32
	done chan struct{}
}

// Batched is the throughput-optimized executor class: the observable
// behaviour of a cuMF_SGD-style GPU worker reproduced on real hardware.
//
// Per task it claims a static-phase super-block (or, in the dynamic phase,
// a stolen row batch) non-exclusively, so the scheduler lets it pin its row
// band across two in-flight tasks — exactly the property a GPU's serial
// kernel stream has. "Transfer" is emulated by packing the task's per-block
// SoA slices into one contiguous staging buffer; the fused kernel then
// streams the staged copy in a single pass. Two buffers alternate: while
// the kernel runs over the current super-block, a background goroutine
// packs the next one, so the observed per-task cost is max(kernel, pack) —
// the Equation 9 overlap — rather than their sum.
//
// Factor updates are applied directly to the shared model (there is no
// device memory to copy back); conflict freedom is the scheduler's row- and
// column-band independence guarantee, which covers both held tasks because
// both were acquired before either is released.
type Batched struct {
	id   int
	sch  sched.Scheduler
	sink Sink

	cur   *stage // packed (or packing) task awaiting its kernel
	spare *stage // idle buffer recycled for the next pack

	// Tasks and Updates count this executor's processed work for tests and
	// diagnostics (no synchronization: one goroutine drives an executor).
	// The engine's authoritative per-class accounting lives in the
	// scheduler adapter (sched.HeteroScheduler.Stats), which also covers
	// the CPU class.
	Tasks   int64
	Updates int64

	// Pipeline timing, atomic because packs run on background goroutines
	// while the engine reads the totals at epoch boundaries. The overlap
	// ratio 1 − Stall/Pack measures how much of the "transfer" time the
	// double buffering hid behind kernels (Equation 9): StallNanos is the
	// residual pack wait left on the critical path, PackNanos the total
	// time packs spent copying, KernelNanos the fused-kernel time.
	PackNanos   atomic.Int64
	StallNanos  atomic.Int64
	KernelNanos atomic.Int64

	tr  *obs.Trace
	tid int
}

// NewBatched returns a Batched executor acquiring as the given owner id.
func NewBatched(id int, sch sched.Scheduler, sink Sink) *Batched {
	return &Batched{id: id, sch: sch, sink: sink}
}

// Class implements Executor.
func (b *Batched) Class() Class { return ClassBatched }

// SetTrace attaches a span recorder: kernels (and residual pack stalls)
// land on track tid, background packs on the companion track tid +
// PackTrackOffset so the overlap is visible as parallel slices. Call
// before training starts.
func (b *Batched) SetTrace(tr *obs.Trace, tid int) { b.tr, b.tid = tr, tid }

// PackTrackOffset separates a batched executor's background-pack track
// from its kernel track in the rendered timeline.
const PackTrackOffset = 1000

// Step implements Executor. Steady state: claim the next super-block, start
// packing it in the background, run the kernel over the previously staged
// one, release it. When the scheduler runs dry the pipeline flushes its
// held task instead, so Step only reports false when nothing is in flight.
func (b *Batched) Step(f *model.Factors, p Params) bool {
	task, ok := b.sch.Acquire(b.id, -1, false)
	if !ok {
		if b.cur != nil {
			b.flush(f, p)
			return true
		}
		return false
	}
	next := b.pack(task)
	if b.cur == nil {
		// Pipeline warm-up: prime the first buffer and come back for its
		// kernel on the next Step (by then a second task overlaps it).
		b.cur = next
		return true
	}
	cur := b.cur
	b.cur = next
	b.run(f, p, cur)
	return true
}

// Drain implements Executor: flush the held task, if any.
func (b *Batched) Drain(f *model.Factors, p Params) {
	if b.cur != nil {
		b.flush(f, p)
	}
}

// Held implements Executor: one while a staged task awaits its kernel.
func (b *Batched) Held() int {
	if b.cur != nil {
		return 1
	}
	return 0
}

func (b *Batched) flush(f *model.Factors, p Params) {
	cur := b.cur
	b.cur = nil
	b.run(f, p, cur)
}

// pack stages the task into the spare buffer and starts the background
// copy. The task's blocks are already locked by the scheduler and ratings
// are read-only, so the copy races nothing.
func (b *Batched) pack(t *sched.Task) *stage {
	st := b.spare
	b.spare = nil
	if st == nil {
		st = &stage{}
	}
	st.task = t
	st.rows = st.rows[:0]
	st.cols = st.cols[:0]
	st.vals = st.vals[:0]
	st.done = make(chan struct{})
	go func() {
		start := time.Now()
		for _, blk := range t.Blocks {
			st.rows = append(st.rows, blk.SOA.Rows...)
			st.cols = append(st.cols, blk.SOA.Cols...)
			st.vals = append(st.vals, blk.SOA.Vals...)
		}
		dur := time.Since(start)
		b.PackNanos.Add(dur.Nanoseconds())
		if b.tr != nil {
			b.tr.Span(b.tid+PackTrackOffset, "pack", start, dur, t.NNZ)
		}
		close(st.done)
	}()
	return st
}

// run waits for the stage's pack, streams the fused kernel over the staged
// copy, releases the task, and recycles the buffer. The measured span —
// residual pack wait plus kernel — is what the overlap leaves on the
// critical path, so the cost samples fed to the Sink realise the
// max(kernel, transfer) shape of Equation 9.
func (b *Batched) run(f *model.Factors, p Params, st *stage) {
	start := time.Now()
	<-st.done
	kstart := time.Now()
	stall := kstart.Sub(start)
	b.StallNanos.Add(stall.Nanoseconds())
	sgd.UpdateBlockSOA(f, st.rows, st.cols, st.vals, p.LambdaP, p.LambdaQ, p.Gamma)
	kdur := time.Since(kstart)
	b.KernelNanos.Add(kdur.Nanoseconds())
	b.sink.observe(ClassBatched, len(st.rows), time.Since(start).Seconds())
	if b.tr != nil {
		if stall > 0 {
			b.tr.Span(b.tid, "stall", start, stall, 0)
		}
		name := "kernel"
		if st.task.Stolen {
			name = "steal-kernel"
		}
		b.tr.Span(b.tid, name, kstart, kdur, len(st.rows))
	}
	b.Tasks++
	b.Updates += int64(len(st.rows))
	b.sch.Release(st.task)
	st.task = nil
	b.spare = st
}

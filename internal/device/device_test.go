package device

import (
	"math/rand"
	"testing"

	"hsgd/internal/grid"
	"hsgd/internal/model"
	"hsgd/internal/sched"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

func testHetero(t *testing.T, nc, ng int, alpha float64, nnz int, seed int64) (*grid.HeteroGrid, *sched.HeteroScheduler) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := sparse.New(400, 300)
	for i := 0; i < nnz; i++ {
		m.Add(int32(rng.Intn(m.Rows)), int32(rng.Intn(m.Cols)), rng.Float32())
	}
	l, err := grid.NewHeteroLayout(nc, ng, alpha)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := grid.PartitionHetero(m, l)
	if err != nil {
		t.Fatal(err)
	}
	hg.GPU.PackSOA()
	hg.CPU.PackSOA()
	return hg, sched.NewHeteroScheduler(sched.NewHetero(hg, true))
}

func testFactors(rows, cols, k int, seed int64) *model.Factors {
	return model.NewFactors(rows, cols, k, rand.New(rand.NewSource(seed)))
}

// TestBatchedKernelMatchesPerBlock: packing a super-block's blocks into one
// contiguous staged buffer and running the fused kernel once must be
// bitwise-identical to running the kernel block by block in task order —
// the staging pipeline may not change the arithmetic.
func TestBatchedKernelMatchesPerBlock(t *testing.T) {
	_, sch := testHetero(t, 2, 1, 0.6, 8000, 1)
	const k = 8
	fA := testFactors(400, 300, k, 42)
	fB := testFactors(400, 300, k, 42)
	p := Params{LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01}

	task, ok := sch.Acquire(0, -1, false)
	if !ok {
		t.Fatal("no super-block available")
	}
	// Reference: per-block fused kernel in task order on fB.
	for _, b := range task.Blocks {
		sgd.UpdateBlockSOA(fB, b.SOA.Rows, b.SOA.Cols, b.SOA.Vals, p.LambdaP, p.LambdaQ, p.Gamma)
	}
	sch.Release(task)

	// Same single task through the batched pipeline on fA: one Step primes
	// the pipeline (pack only), Drain flushes the kernel.
	_, sch2 := testHetero(t, 2, 1, 0.6, 8000, 1)
	b := NewBatched(0, sch2, nil)
	if !b.Step(fA, p) {
		t.Fatal("prime step found no work")
	}
	b.Drain(fA, p)
	if b.Tasks != 1 {
		t.Fatalf("batched processed %d tasks, want 1", b.Tasks)
	}
	for i := range fA.P {
		if fA.P[i] != fB.P[i] {
			t.Fatalf("P[%d] staged %v != per-block %v", i, fA.P[i], fB.P[i])
		}
	}
	for i := range fA.Q {
		if fA.Q[i] != fB.Q[i] {
			t.Fatalf("Q[%d] staged %v != per-block %v", i, fA.Q[i], fB.Q[i])
		}
	}
}

// TestBatchedPipelineDrains: stepping a batched executor to exhaustion
// processes every eligible super-block exactly once per quota, holds at
// most one staged task between steps, and leaves no scheduler locks behind.
func TestBatchedPipelineDrains(t *testing.T) {
	hg, sch := testHetero(t, 2, 1, 0.6, 8000, 2)
	f := testFactors(400, 300, 4, 7)
	p := Params{LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01}
	b := NewBatched(0, sch, nil)
	for b.Step(f, p) {
	}
	b.Drain(f, p)
	if sch.InFlight() != 0 {
		t.Fatalf("%d tasks still in flight after drain", sch.InFlight())
	}
	var want int64
	for _, blk := range hg.GPU.Blocks {
		want += 2 * int64(blk.Size()) // epoch 1 + one epoch of lookahead
	}
	if b.Updates < want {
		t.Fatalf("batched updates %d, want >= %d (GPU region, both lookahead epochs)", b.Updates, want)
	}
	if got := sch.Updates(); got != b.Updates {
		t.Fatalf("scheduler credited %d updates, executor did %d", got, b.Updates)
	}
}

// TestCPUExecutorStep: the latency class processes one block per step,
// prefers its last row band on ties, and reports cost samples to the sink.
func TestCPUExecutorStep(t *testing.T) {
	_, sch := testHetero(t, 2, 1, 0.4, 6000, 3)
	f := testFactors(400, 300, 4, 9)
	p := Params{LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01}
	var samples int
	var sampledNNZ int
	c := NewCPU(0, sch, func(cl Class, nnz int, secs float64) {
		if cl != ClassCPU {
			t.Errorf("sink class %q", cl)
		}
		if secs < 0 {
			t.Errorf("negative cost sample %v", secs)
		}
		samples++
		sampledNNZ += nnz
	})
	steps := 0
	for c.Step(f, p) {
		steps++
	}
	if steps == 0 {
		t.Fatal("CPU executor found no work")
	}
	if samples != steps {
		t.Fatalf("sink saw %d samples for %d steps", samples, steps)
	}
	if int64(sampledNNZ) != sch.Updates() {
		t.Fatalf("sampled %d ratings, scheduler credited %d", sampledNNZ, sch.Updates())
	}
	if sch.InFlight() != 0 {
		t.Fatalf("%d tasks in flight after CPU drain", sch.InFlight())
	}
}

// TestMixedClassesCompleteEpoch: both classes stepping together (serially
// here; the engine runs them on goroutines) settle a full epoch — every
// nonempty block in both regions reaches the quota, with stealing closing
// whatever the static split leaves.
func TestMixedClassesCompleteEpoch(t *testing.T) {
	hg, sch := testHetero(t, 2, 1, 0.5, 8000, 4)
	f := testFactors(400, 300, 4, 11)
	p := Params{LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01}
	execs := []Executor{NewCPU(0, sch, nil), NewCPU(1, sch, nil), NewBatched(0, sch, nil)}
	for progress := true; progress; {
		progress = false
		for _, ex := range execs {
			if ex.Step(f, p) {
				progress = true
			}
		}
	}
	for _, ex := range execs {
		ex.Drain(f, p)
	}
	if !sch.EpochComplete() {
		t.Fatal("epoch incomplete after both classes drained")
	}
	for _, b := range append(hg.CPU.Blocks, hg.GPU.Blocks...) {
		if b.Size() > 0 && b.Updates != 2 {
			t.Fatalf("block (%d,%d) updated %d times, want 2 (epoch + lookahead)", b.Band, b.Col, b.Updates)
		}
	}
}

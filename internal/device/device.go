// Package device is the executor abstraction of the real heterogeneous
// training engine: the paper's "device classes" (Section VI) realised as
// concrete worker types the engine dispatches scheduler tasks through.
//
// Two classes are provided. CPU is the latency-optimized per-core executor —
// it claims one small block at a time with exclusive row ownership and runs
// the fused kernel directly over the block's structure-of-arrays payload
// (the engine's original worker loop). Batched is the throughput-optimized
// executor standing in for a cuMF_SGD-style GPU worker (Tan et al.,
// "Faster and Cheaper: Parallelizing Large-Scale Matrix Factorization on
// GPUs") on hardware without one: it claims whole-band super-blocks,
// "transfers" them by packing the blocks' SoA payloads into a contiguous
// staging buffer, and streams the fused kernel over the staged copy — with
// the pack of the next super-block overlapping the kernel of the current
// one through a double-buffered pipeline, the CPU analogue of the paper's
// H2D/kernel stream overlap (Figure 8, Equation 9).
//
// Executors observe their own per-task cost through an optional Sink; the
// engine feeds those measurements to internal/cost to fit per-class cost
// models online and drive the nonuniform CPU/GPU split (α) from measured —
// not assumed — throughput.
package device

import (
	"time"

	"hsgd/internal/model"
	"hsgd/internal/obs"
	"hsgd/internal/sched"
	"hsgd/internal/sgd"
)

// Class identifies an executor's device class. The scheduler maps classes
// onto its (owner, exclusive) vocabulary: CPU executors acquire exclusively,
// Batched executors non-exclusively (their serial pipeline may pin a row
// band across two in-flight super-blocks, like a GPU kernel stream).
type Class string

// The executor classes.
const (
	ClassCPU     Class = "cpu"
	ClassBatched Class = "batched"
)

// Params is the kernel configuration one Step runs with. Gamma is read
// fresh from the engine every step so learning-rate schedules apply to
// pipelined work too.
type Params struct {
	LambdaP, LambdaQ, Gamma float32
}

// Sink receives one (class, ratings, seconds) cost sample per processed
// task — the online counterpart of Algorithm 3's profiling probes. A nil
// Sink is legal and means "no profiling".
type Sink func(c Class, nnz int, seconds float64)

func (s Sink) observe(c Class, nnz int, seconds float64) {
	if s != nil {
		s(c, nnz, seconds)
	}
}

// Executor is one worker the engine drives: Step claims the executor's next
// task from its scheduler and advances processing by one stage.
//
// Step returns false only when the scheduler had no eligible work AND the
// executor holds nothing it could flush — the engine's contract for parking
// the worker. An executor may retain claimed tasks across Steps
// (pipelining); the engine calls Drain before parking at a quiescence
// barrier or exiting, and executors must hold no scheduler locks once Drain
// returns.
type Executor interface {
	// Class reports the executor's device class.
	Class() Class
	// Step claims and/or processes work. It must leave the factors
	// untouched when it returns false.
	Step(f *model.Factors, p Params) bool
	// Drain processes and releases every task the executor still holds.
	Drain(f *model.Factors, p Params)
	// Held reports the tasks the executor retains between Steps. The
	// engine refuses to let a worker run the epoch quiescence barrier
	// while its own executor holds work — the barrier waits for zero
	// in-flight tasks, and a holder electing itself evaluator would wait
	// on itself forever.
	Held() int
}

// CPU is the latency-optimized executor: one small block per Step, claimed
// exclusively, processed in place over the block's SoA payload. It holds
// nothing between Steps.
type CPU struct {
	id     int
	sch    sched.Scheduler
	sink   Sink
	prefer int
	tr     *obs.Trace
	tid    int
}

// NewCPU returns a CPU executor acquiring as the given owner id.
func NewCPU(id int, sch sched.Scheduler, sink Sink) *CPU {
	return &CPU{id: id, sch: sch, sink: sink, prefer: -1}
}

// Class implements Executor.
func (c *CPU) Class() Class { return ClassCPU }

// SetTrace attaches a span recorder: every processed block becomes one
// "block" span on track tid. Call before training starts.
func (c *CPU) SetTrace(tr *obs.Trace, tid int) { c.tr, c.tid = tr, tid }

// Step implements Executor: acquire, fused kernel, release.
func (c *CPU) Step(f *model.Factors, p Params) bool {
	task, ok := c.sch.Acquire(c.id, c.prefer, true)
	if !ok {
		return false
	}
	c.prefer = task.RowBandKey
	start := time.Now()
	for _, b := range task.Blocks {
		sgd.UpdateBlockSOA(f, b.SOA.Rows, b.SOA.Cols, b.SOA.Vals, p.LambdaP, p.LambdaQ, p.Gamma)
	}
	dur := time.Since(start)
	c.sink.observe(ClassCPU, task.NNZ, dur.Seconds())
	if c.tr != nil {
		name := "block"
		if task.Stolen {
			name = "steal"
		}
		c.tr.Span(c.tid, name, start, dur, task.NNZ)
	}
	c.sch.Release(task)
	return true
}

// Drain implements Executor; a CPU executor never holds work across Steps.
func (c *CPU) Drain(*model.Factors, Params) {}

// Held implements Executor: always zero.
func (c *CPU) Held() int { return 0 }

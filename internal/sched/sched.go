// Package sched implements block scheduling: which worker updates which
// matrix block next, under the independence constraint that two blocks
// sharing a row band or a column band must never be processed concurrently
// (Section III-A).
//
// Three schedulers are provided. Uniform is the FPSGD policy used by
// CPU-Only, GPU-Only and the HSGD baseline: all workers draw from one grid,
// always taking the free block with the fewest updates. Striped is the same
// policy with internally-synchronized lock-striped acquisition for the
// wall-clock engine. Hetero is the HSGD* policy of Section VI: the grid is
// split into a CPU region and a GPU region sized by the cost model's α,
// workers draw from their own region under a per-epoch quota, and when a
// device class drains its region it enters the dynamic phase and steals
// from the other region (work stealing, Blumofe & Leiserson [14]). Hetero
// runs both under the simulator's virtual clock and — through the
// HeteroScheduler adapter — on the real engine's executor classes
// (internal/device).
package sched

import (
	"hsgd/internal/grid"
	"hsgd/internal/sparse"
)

// Scheduler is the block-scheduling policy abstraction the training engine
// runs against: hand out an independent task for a worker, take it back, and
// count the ratings processed so far. Uniform implements it for the FPSGD
// policy (callers serialize Acquire/Release externally); Striped implements
// it with internally-synchronized lock-striped acquisition so workers call
// it concurrently with no shared mutex; HeteroScheduler adapts Hetero's
// two-region policy — its device classes map onto (owner, exclusive):
// exclusive acquires are CPU-class workers, non-exclusive ones batched
// (GPU-class) executors — so the real engine runs HSGD* through the same
// interface.
type Scheduler interface {
	// Acquire returns an independent nonempty task for the given worker, or
	// false when every candidate is currently locked. preferBand biases ties
	// toward the worker's previous row band (-1 for no preference);
	// exclusive workers never share a row band.
	Acquire(owner, preferBand int, exclusive bool) (*Task, bool)
	// Release unlocks the task's bands and credits its updates.
	Release(t *Task)
	// Updates reports the total ratings processed over released tasks.
	Updates() int64
}

// Region identifies which side of the nonuniform division a task belongs to.
type Region int

// Regions of the hetero layout. Uniform schedulers always report RegionAll.
const (
	RegionAll Region = iota
	RegionCPU
	RegionGPU
)

// Task is a unit of work handed to a worker: one block (CPU workers,
// dynamic-phase GPU work) or a vertical stack of sub-row blocks forming a
// static-phase GPU super-block. The scheduler holds the row/column locks
// from Acquire until Release.
type Task struct {
	Blocks []*grid.Block
	Region Region // region the blocks came from
	Stolen bool   // true when acquired via the dynamic phase

	NNZ     int
	RowSpan int // number of matrix rows covered (for transfer sizing)
	ColSpan int // number of matrix columns covered

	// RowBandKey identifies the locked row band so the GPU actor can keep
	// its P segment pinned across consecutive tasks on the same band
	// (Section VI-A). Keys are unique across regions.
	RowBandKey int

	rows  []int // locked row indices in the owning lock table
	cols  []int // locked column band indices
	super int   // band index for static-phase super-blocks, else -1
	isGPU bool  // locked in the GPU lock table (hetero only)

	// owner/exclusive stamp who acquired the task, set by HeteroScheduler
	// for its per-owner steal tracking and per-class accounting.
	owner     int
	exclusive bool
}

// Ratings returns the concatenated rating slices of the task's blocks.
func (t *Task) Ratings() [][]sparse.Rating {
	out := make([][]sparse.Rating, len(t.Blocks))
	for i, b := range t.Blocks {
		out[i] = b.Ratings
	}
	return out
}

// span returns bounds[hi] - bounds[lo].
func span(bounds []int32, lo, hi int) int {
	return int(bounds[hi] - bounds[lo])
}

package sched

import (
	"sync/atomic"

	"hsgd/internal/grid"
)

// Striped is the lock-striped FPSGD scheduler used by the wall-clock
// training engine. It keeps the same policy as Uniform — least-updated free
// (row band, column band) block wins, ties biased toward the worker's
// current band — but replaces the caller-held global mutex with one atomic
// lock per row band and per column band, so workers acquire and release
// blocks concurrently with no shared critical section. The selection scan is
// optimistic: a worker reads the lock words and per-block update counts
// without synchronization, picks the best candidate, and then claims it with
// two CAS operations (row first, then column, backing out of the row on a
// column conflict so no lock ordering deadlock is possible). A lost race
// just retries against the next-best candidate.
//
// The per-block update counts are kept in an atomic array owned by the
// scheduler rather than in grid.Block.Updates, because the scan reads them
// while other workers' releases increment them; SyncStats copies them back
// into the blocks for reporting once workers are quiesced.
//
// Striped supports exclusive workers only (CPU threads): the owner-reentrant
// row sharing Uniform offers GPU stream pipelines is not needed on the
// engine's CPU path and would require per-band reference counts.
type Striped struct {
	Grid *grid.Grid

	rowOwner []atomic.Int32 // worker holding the row band, stripedFree when free
	colBusy  []atomic.Int32 // 1 while the column band is held
	updates  []atomic.Int64 // per-block update counts, indexed like Grid.Blocks
	total    atomic.Int64   // ratings processed over released tasks

	// notify wakes one blocked worker per release. Capacity 1: a missed send
	// only delays a waiter until the next release or its poll timeout, and
	// the channel never blocks a releasing worker.
	notify chan struct{}
}

const stripedFree = int32(-1)

// NewStriped wraps a grid in a fresh lock-striped scheduler.
func NewStriped(g *grid.Grid) *Striped {
	s := &Striped{
		Grid:     g,
		rowOwner: make([]atomic.Int32, g.RowBands),
		colBusy:  make([]atomic.Int32, g.ColBands),
		updates:  make([]atomic.Int64, len(g.Blocks)),
		notify:   make(chan struct{}, 1),
	}
	for i := range s.rowOwner {
		s.rowOwner[i].Store(stripedFree)
	}
	return s
}

// acquireAttempts bounds how many CAS races a single Acquire call absorbs
// before reporting contention back to the caller (which then blocks on
// Blocked instead of spinning).
const acquireAttempts = 4

// Acquire implements Scheduler. It is safe for concurrent use. Only
// exclusive acquisition is supported; exclusive=false behaves identically.
func (s *Striped) Acquire(owner, preferBand int, exclusive bool) (*Task, bool) {
	for attempt := 0; attempt < acquireAttempts; attempt++ {
		best := s.pick(preferBand)
		if best == nil {
			return nil, false
		}
		if !s.rowOwner[best.Band].CompareAndSwap(stripedFree, int32(owner)) {
			continue // lost the row race; rescan without it
		}
		if !s.colBusy[best.Col].CompareAndSwap(0, 1) {
			s.rowOwner[best.Band].Store(stripedFree)
			continue
		}
		return &Task{
			Blocks:     []*grid.Block{best},
			Region:     RegionAll,
			NNZ:        best.Size(),
			RowSpan:    span(s.Grid.RowBounds, best.Band, best.Band+1),
			ColSpan:    span(s.Grid.ColBounds, best.Col, best.Col+1),
			RowBandKey: best.Band,
			rows:       []int{best.Band},
			cols:       []int{best.Col},
			super:      -1,
		}, true
	}
	return nil, false
}

// pick scans for the least-updated nonempty block whose row and column both
// look free. The reads are racy by design: the caller validates the choice
// with CAS.
func (s *Striped) pick(preferBand int) *grid.Block {
	var best *grid.Block
	var bestUpd int64
	for r := 0; r < s.Grid.RowBands; r++ {
		if s.rowOwner[r].Load() != stripedFree {
			continue
		}
		for c := 0; c < s.Grid.ColBands; c++ {
			if s.colBusy[c].Load() != 0 {
				continue
			}
			b := s.Grid.Block(r, c)
			if b.Size() == 0 {
				continue
			}
			u := s.updates[r*s.Grid.ColBands+c].Load()
			if best == nil || stripedLess(b, u, best, bestUpd, preferBand) {
				best, bestUpd = b, u
			}
		}
	}
	return best
}

// stripedLess mirrors Uniform's ordering with explicit update counts:
// fewest updates, then the preferred band, then lowest (band, col).
func stripedLess(a *grid.Block, au int64, b *grid.Block, bu int64, preferBand int) bool {
	if au != bu {
		return au < bu
	}
	ap := a.Band == preferBand
	bp := b.Band == preferBand
	if ap != bp {
		return ap
	}
	if a.Band != b.Band {
		return a.Band < b.Band
	}
	return a.Col < b.Col
}

// Release implements Scheduler: credit the updates, free the bands, and wake
// one waiter.
func (s *Striped) Release(t *Task) {
	for _, b := range t.Blocks {
		s.updates[b.Band*s.Grid.ColBands+b.Col].Add(1)
		s.total.Add(int64(b.Size()))
	}
	for _, c := range t.cols {
		s.colBusy[c].Store(0)
	}
	for _, r := range t.rows {
		s.rowOwner[r].Store(stripedFree)
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Updates implements Scheduler.
func (s *Striped) Updates() int64 { return s.total.Load() }

// Blocked returns the channel a worker should wait on after a failed
// Acquire: it receives (at most) one token per Release. Waiters must pair it
// with a timeout — the capacity-1 channel coalesces bursts of releases, so a
// token can be consumed by another waiter.
func (s *Striped) Blocked() <-chan struct{} { return s.notify }

// InFlight counts the column bands currently held — zero exactly when no
// worker holds a block. The engine's quiescence barrier asserts this before
// touching the factors.
func (s *Striped) InFlight() int {
	n := 0
	for i := range s.colBusy {
		if s.colBusy[i].Load() != 0 {
			n++
		}
	}
	return n
}

// SyncStats copies the scheduler-owned update counts back into the blocks'
// Updates fields for reporting. Callers must quiesce workers first.
func (s *Striped) SyncStats() {
	for i := range s.updates {
		s.Grid.Blocks[i].Updates = s.updates[i].Load()
	}
}

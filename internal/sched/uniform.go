package sched

import (
	"hsgd/internal/grid"
)

// Uniform is the FPSGD scheduling policy over a single uniform grid: a
// worker that finishes a block receives an independent (free row band, free
// column band) nonempty block with the least updates. It is free-running —
// there is no per-epoch quota — which is exactly what lets the update skew
// of Example 3 develop when workers have very different speeds (the HSGD
// baseline).
//
// Row locks are owner-aware: a GPU may acquire a second block on the row
// band it already holds (different column), because its kernel stream
// serializes execution — that is cuMF_SGD's "multiple consecutive blocks at
// a time" pattern and what allows transfer/compute overlap. Among blocks
// with the minimum update count, the owner's current band is preferred so a
// streaming GPU stays warm on one band as long as possible.
type Uniform struct {
	Grid     *grid.Grid
	rowOwner []int // worker owning the row band's in-flight task(s), -1 free
	rowRef   []int // in-flight tasks per row band
	colBusy  []bool

	// TotalUpdates counts ratings processed, summed over released tasks;
	// trainers use it to delimit effective epochs.
	TotalUpdates int64
}

// NewUniform wraps a grid in a fresh scheduler.
func NewUniform(g *grid.Grid) *Uniform {
	s := &Uniform{
		Grid:     g,
		rowOwner: make([]int, g.RowBands),
		rowRef:   make([]int, g.RowBands),
		colBusy:  make([]bool, g.ColBands),
	}
	for i := range s.rowOwner {
		s.rowOwner[i] = free
	}
	return s
}

// Acquire returns the least-updated available nonempty block for the given
// worker, or false when every candidate is locked. preferBand biases ties
// toward the worker's current row band (-1 for no preference). exclusive
// workers (CPU threads) never share a row band; non-exclusive ones (GPU
// stream pipelines) may re-enter a band they already own.
func (s *Uniform) Acquire(owner, preferBand int, exclusive bool) (*Task, bool) {
	var best *grid.Block
	for r := 0; r < s.Grid.RowBands; r++ {
		switch {
		case s.rowOwner[r] == free:
		case !exclusive && s.rowOwner[r] == owner:
		default:
			continue
		}
		for c := 0; c < s.Grid.ColBands; c++ {
			if s.colBusy[c] {
				continue
			}
			b := s.Grid.Block(r, c)
			if b.Size() == 0 {
				continue
			}
			if best == nil || less(b, best, preferBand) {
				best = b
			}
		}
	}
	if best == nil {
		return nil, false
	}
	s.rowOwner[best.Band] = owner
	s.rowRef[best.Band]++
	s.colBusy[best.Col] = true
	return &Task{
		Blocks:     []*grid.Block{best},
		Region:     RegionAll,
		NNZ:        best.Size(),
		RowSpan:    span(s.Grid.RowBounds, best.Band, best.Band+1),
		ColSpan:    span(s.Grid.ColBounds, best.Col, best.Col+1),
		RowBandKey: best.Band,
		rows:       []int{best.Band},
		cols:       []int{best.Col},
		super:      -1,
	}, true
}

// less orders candidate blocks: fewest updates first, then the preferred
// band, then lowest (band, col) for determinism.
func less(a, b *grid.Block, preferBand int) bool {
	if a.Updates != b.Updates {
		return a.Updates < b.Updates
	}
	ap := a.Band == preferBand
	bp := b.Band == preferBand
	if ap != bp {
		return ap
	}
	if a.Band != b.Band {
		return a.Band < b.Band
	}
	return a.Col < b.Col
}

// Updates implements Scheduler.
func (s *Uniform) Updates() int64 { return s.TotalUpdates }

// Release unlocks the task's row and column bands and increments the update
// counters.
func (s *Uniform) Release(t *Task) {
	for _, b := range t.Blocks {
		b.Updates++
		s.TotalUpdates += int64(b.Size())
	}
	for _, r := range t.rows {
		s.rowRef[r]--
		if s.rowRef[r] == 0 {
			s.rowOwner[r] = free
		}
	}
	for _, c := range t.cols {
		s.colBusy[c] = false
	}
}

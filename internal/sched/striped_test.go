package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hsgd/internal/grid"
	"hsgd/internal/sparse"
)

// stripedGrid builds a small dense-ish grid for scheduler tests.
func stripedGrid(t testing.TB, rows, cols int) *grid.Grid {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := sparse.New(rows*20, cols*20)
	for i := 0; i < rows*cols*50; i++ {
		m.Add(int32(rng.Intn(m.Rows)), int32(rng.Intn(m.Cols)), 1)
	}
	g, err := grid.Uniform(m, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStripedIndependence hammers the scheduler from many goroutines and
// checks the FPSGD independence invariant: no two in-flight tasks ever share
// a row band or a column band. Run under -race this also proves the
// lock-striped bookkeeping itself is race-free.
func TestStripedIndependence(t *testing.T) {
	g := stripedGrid(t, 9, 8)
	s := NewStriped(g)

	var rowHeld, colHeld [32]atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			prefer := -1
			for i := 0; i < 2000; i++ {
				task, ok := s.Acquire(worker, prefer, true)
				if !ok {
					continue
				}
				b := task.Blocks[0]
				if rowHeld[b.Band].Add(1) != 1 || colHeld[b.Col].Add(1) != 1 {
					violations.Add(1)
				}
				prefer = task.RowBandKey
				rowHeld[b.Band].Add(-1)
				colHeld[b.Col].Add(-1)
				s.Release(task)
			}
		}(w)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d independence violations (two tasks shared a band)", v)
	}
	if s.InFlight() != 0 {
		t.Fatalf("InFlight=%d after all releases", s.InFlight())
	}
	if s.Updates() == 0 {
		t.Fatal("no updates credited")
	}
	s.SyncStats()
	var fromBlocks int64
	for _, b := range g.Blocks {
		fromBlocks += b.Updates * int64(b.Size())
	}
	if fromBlocks != s.Updates() {
		t.Fatalf("SyncStats total %d != Updates() %d", fromBlocks, s.Updates())
	}
}

// TestStripedLeastUpdatedBias checks the serial policy matches Uniform's:
// with one worker, repeated acquire/release cycles keep the per-block update
// counts within one of each other (the least-updated-first guarantee).
func TestStripedLeastUpdatedBias(t *testing.T) {
	g := stripedGrid(t, 5, 4)
	s := NewStriped(g)
	for i := 0; i < 200; i++ {
		task, ok := s.Acquire(0, -1, true)
		if !ok {
			t.Fatalf("serial acquire %d failed", i)
		}
		s.Release(task)
	}
	s.SyncStats()
	stats := grid.ComputeUpdateStats(g.Blocks)
	if stats.Max-stats.Min > 1 {
		t.Fatalf("update skew %d..%d under serial least-updated policy", stats.Min, stats.Max)
	}
}

// TestStripedSchedulerInterface pins both implementations to the Scheduler
// contract.
func TestStripedSchedulerInterface(t *testing.T) {
	g := stripedGrid(t, 3, 2)
	var _ Scheduler = NewStriped(g)
	var _ Scheduler = NewUniform(g)
}

package sched

import (
	"hsgd/internal/grid"
)

// cpuBandKeyBase offsets CPU-region row band keys so they never collide
// with GPU band keys (used for P-segment pinning decisions).
const cpuBandKeyBase = 1 << 20

// free marks an unowned band or sub-row lock.
const free = -1

// lookahead is how many epochs past the current quota a block stays
// eligible: devices that finish the current epoch stream into the next
// instead of stalling at a barrier, bounding update skew to one epoch.
const lookahead = 1

// Hetero is the HSGD* scheduler of Section VI. It serves two hosts: the
// simulator's virtual-clock pipelines drive it directly (core.Train), and
// the real wall-clock engine drives it through the HeteroScheduler adapter,
// with internal/device's batched executors playing the GPU role — "GPU"
// below means whichever throughput-class worker holds the non-exclusive
// side of the layout.
//
// Static phase: each GPU g owns GPU-region row band g and walks it column by
// column in whole-band super-blocks. Because its kernel stream serializes
// execution, the same GPU may hold two super-blocks of its band at once
// (different columns) — that is what lets the H2D transfer of the next block
// overlap the kernel of the current one (Figure 8), and why the layout has
// nc+2·ng+1 columns. CPU threads draw small blocks from the CPU region.
//
// Work proceeds in epochs with one epoch of lookahead: a block is eligible
// while its update count is below epoch+1, so every block is processed
// exactly once per epoch (the update skew of Example 3 cannot develop) but
// a device that finishes the current epoch's quota streams straight into
// the next instead of stalling at a barrier — the paper's free-running
// "calculation process continues until the number of iterations reaches
// the predefined value".
//
// Dynamic phase (Dynamic=true; HSGD*-M and HSGD*-Q disable it): a device
// class that exhausts its own region steals from the other. CPU threads take
// GPU-region *sub-row* blocks — the ⌈(nc+ng)/ng⌉-way split of each band
// exists precisely so they can join without conflicts — and GPUs take
// CPU-region blocks. A band degrades to sub-row granularity as soon as its
// super-blocks stop being fully eligible.
type Hetero struct {
	HG      *grid.HeteroGrid
	Dynamic bool

	// MinGPUSteal is the smallest CPU-region block (in ratings) worth
	// stealing by a GPU: below it, the cold-launch warm-up outweighs the
	// saved CPU time and the steal would lengthen the epoch tail. The
	// trainer derives it from the cost models (the break-even point of
	// fg(n) < fc(n)). Zero disables the filter.
	MinGPUSteal int

	// MinCPUStealRemaining guards the other direction: a CPU thread steals
	// a GPU-region sub-block only while the region's remaining eligible
	// work is at least this many ratings — if the warm GPU will drain its
	// queue before the CPU could finish even one sub-block, "helping" only
	// fragments the GPU's super-blocks and lengthens the epoch. The trainer
	// derives it from the cost models. Zero disables the filter.
	MinCPUStealRemaining int64

	// MinGPUStealRemaining: a GPU steals a CPU-region block only while the
	// CPU region's remaining eligible work exceeds this many ratings —
	// near the epoch tail the CPU threads drain their own queue faster
	// than the GPU's cold pipeline, and a steal would hold one of the
	// nc+ng row bands hostage. The trainer derives it from the cost
	// models. Zero disables the filter.
	MinGPUStealRemaining int64

	// MaxCPUThieves caps how many CPU threads may hold stolen GPU-region
	// sub-blocks at once. Every stolen sub-block locks one of the region's
	// nc+2·ng+1 columns for a CPU-speed processing time; unbounded thieves
	// would starve the (much faster) GPU of free columns in its own region.
	// Zero means no cap.
	MaxCPUThieves int

	cpuThieves int // CPU-held stolen sub-blocks currently in flight

	epoch int64
	// dynamicGPU is set for the rest of the epoch once the CPU region is
	// fully processed: the GPU stops taking whole-band super-blocks so its
	// band opens up at sub-row granularity and CPU threads can join
	// (Section VI-A's static→dynamic transition).
	dynamicGPU bool
	// cpuDone caches cpuRegionDone for the current epoch: the predicate is
	// monotone (update counts only grow), and caching it keeps the steal
	// path's per-miss cost from re-scanning the whole CPU region — which
	// matters on the engine, where misses poll under one adapter mutex.
	cpuDone bool
	colBusy []bool

	cpuRowBusy []bool
	// bandOwner/bandRef track in-flight super-blocks: a band is owned by one
	// GPU at a time, with a reference count for its pipelined tasks.
	bandOwner []int
	bandRef   []int
	// subOwner tracks in-flight sub-row tasks (dynamic phase).
	subOwner []int

	// Counters for reporting.
	TotalUpdates int64
	StolenByCPU  int64 // GPU-region sub-blocks processed by CPU threads
	StolenByGPU  int64 // CPU-region blocks processed by GPUs
	SuperTasks   int64 // static-phase super-blocks issued
	SubTasks     int64 // sub-row tasks issued (either device class)
}

// NewHetero wraps a partitioned hetero grid. The first epoch starts open.
func NewHetero(hg *grid.HeteroGrid, dynamic bool) *Hetero {
	l := hg.Layout
	s := &Hetero{
		HG:         hg,
		Dynamic:    dynamic,
		epoch:      1,
		colBusy:    make([]bool, l.Cols),
		cpuRowBusy: make([]bool, l.CPURows),
		bandOwner:  make([]int, l.GPURows),
		bandRef:    make([]int, l.GPURows),
		subOwner:   make([]int, l.GPURows*l.SubRows),
	}
	for i := range s.bandOwner {
		s.bandOwner[i] = free
	}
	for i := range s.subOwner {
		s.subOwner[i] = free
	}
	return s
}

// Epoch returns the current 1-based epoch.
func (s *Hetero) Epoch() int64 { return s.epoch }

// AcquireCPU hands a CPU thread its next block: the least-updated eligible
// block of the CPU region, or — in the dynamic phase — a stolen GPU-region
// sub-block.
func (s *Hetero) AcquireCPU(worker int) (*Task, bool) {
	if t, ok := s.acquireCPUBlock(); ok {
		return t, true
	}
	if s.Dynamic && s.cpuRegionDone() && s.gpuRemaining() >= s.MinCPUStealRemaining &&
		(s.MaxCPUThieves == 0 || s.cpuThieves < s.MaxCPUThieves) {
		s.dynamicGPU = true
		if t, ok := s.acquireGPUSub(cpuBandKeyBase + worker); ok {
			t.Stolen = true
			s.StolenByCPU++
			s.cpuThieves++
			return t, true
		}
	}
	return nil, false
}

// gpuRemaining returns the eligible (below-quota) ratings left in the GPU
// region this epoch.
func (s *Hetero) gpuRemaining() int64 {
	var n int64
	for _, b := range s.HG.GPU.Blocks {
		if b.Size() > 0 && b.Updates < s.epoch {
			n += int64(b.Size())
		}
	}
	return n
}

// cpuRegionDone reports whether the CPU region has no block below quota —
// the trigger for the dynamic phase ("one of them finishes its own tasks").
// Once true it stays true for the rest of the epoch, so the scan runs at
// most once per (miss, epoch) transition.
func (s *Hetero) cpuRegionDone() bool {
	if s.cpuDone {
		return true
	}
	for _, b := range s.HG.CPU.Blocks {
		if b.Size() > 0 && b.Updates < s.epoch {
			return false
		}
	}
	s.cpuDone = true
	return true
}

// AcquireGPU hands GPU gpuID its next task, preferring a static-phase
// super-block on its own band, then super-blocks on unowned bands, then
// sub-row granularity, then — in the dynamic phase, when allowSteal is set
// — a stolen CPU-region block. Callers must pass allowSteal=false while the
// GPU already holds a stolen block: the CPU region has only nc+ng row
// bands, so a GPU pipelining two stolen blocks would hold two of them and
// starve a CPU thread (Rule 1).
func (s *Hetero) AcquireGPU(gpuID int, allowSteal bool) (*Task, bool) {
	if !s.dynamicGPU {
		if t, ok := s.acquireSuperBlock(gpuID, gpuID); ok {
			return t, true
		}
		for band := 0; band < s.HG.Layout.GPURows; band++ {
			if band == gpuID {
				continue
			}
			if t, ok := s.acquireSuperBlock(gpuID, band); ok {
				return t, true
			}
		}
	}
	if t, ok := s.acquireGPUSub(gpuID); ok {
		return t, true
	}
	if s.Dynamic && allowSteal && s.cpuRemaining() >= s.MinGPUStealRemaining {
		if t, ok := s.acquireCPURowBatch(); ok {
			t.Stolen = true
			s.StolenByGPU++
			return t, true
		}
	}
	return nil, false
}

// gpuStealBatch is the maximum number of CPU-region column blocks a GPU
// steals as one batch — cuMF_SGD's "multiple consecutive blocks at a time"
// pattern, which amortises the cold-launch warm-up and the P-segment
// transfer over several blocks while leaving most columns free for the CPU
// threads.
const gpuStealBatch = 4

// acquireCPURowBatch steals up to gpuStealBatch eligible blocks of one CPU
// row band as a single task. All blocks share the row, so a single owner
// processing them serially (the GPU kernel stream) is conflict-free. The
// batch must total at least MinGPUSteal ratings to be worth a cold launch.
func (s *Hetero) acquireCPURowBatch() (*Task, bool) {
	g := s.HG.CPU
	bestRow := -1
	bestSize := 0
	for r := 0; r < g.RowBands; r++ {
		if s.cpuRowBusy[r] {
			continue
		}
		size := 0
		for c := 0; c < g.ColBands; c++ {
			if s.colBusy[c] {
				continue
			}
			if b := g.Block(r, c); b.Size() > 0 && b.Updates < s.epoch+lookahead {
				size += b.Size()
			}
		}
		if size > bestSize {
			bestRow, bestSize = r, size
		}
	}
	if bestRow < 0 || bestSize < s.MinGPUSteal {
		return nil, false
	}
	// Take the least-updated eligible free columns of that row.
	task := &Task{Region: RegionCPU, super: -1, RowBandKey: cpuBandKeyBase + bestRow}
	for len(task.Blocks) < gpuStealBatch {
		var best *grid.Block
		for c := 0; c < g.ColBands; c++ {
			if s.colBusy[c] || taskHasCol(task, c) {
				continue
			}
			b := g.Block(bestRow, c)
			if b.Size() == 0 || b.Updates >= s.epoch+lookahead {
				continue
			}
			if best == nil || b.Updates < best.Updates ||
				(b.Updates == best.Updates && b.Size() > best.Size()) {
				best = b
			}
		}
		if best == nil {
			break
		}
		task.Blocks = append(task.Blocks, best)
		task.cols = append(task.cols, best.Col)
		task.NNZ += best.Size()
		task.ColSpan += span(g.ColBounds, best.Col, best.Col+1)
	}
	if len(task.Blocks) == 0 || task.NNZ < s.MinGPUSteal {
		return nil, false
	}
	s.cpuRowBusy[bestRow] = true
	for _, c := range task.cols {
		s.colBusy[c] = true
	}
	task.rows = []int{bestRow}
	task.RowSpan = span(g.RowBounds, bestRow, bestRow+1)
	return task, true
}

func taskHasCol(t *Task, c int) bool {
	for _, tc := range t.cols {
		if tc == c {
			return true
		}
	}
	return false
}

// cpuRemaining returns the eligible (below-quota) ratings left in the CPU
// region this epoch.
func (s *Hetero) cpuRemaining() int64 {
	var n int64
	for _, b := range s.HG.CPU.Blocks {
		if b.Size() > 0 && b.Updates < s.epoch {
			n += int64(b.Size())
		}
	}
	return n
}

// acquireCPUBlock picks the least-updated eligible CPU-region block.
func (s *Hetero) acquireCPUBlock() (*Task, bool) { return s.acquireCPUBlockMin(0) }

// acquireCPUBlockMin is acquireCPUBlock restricted to blocks of at least
// minSize ratings (the GPU steal filter).
func (s *Hetero) acquireCPUBlockMin(minSize int) (*Task, bool) {
	g := s.HG.CPU
	var best *grid.Block
	for r := 0; r < g.RowBands; r++ {
		if s.cpuRowBusy[r] {
			continue
		}
		for c := 0; c < g.ColBands; c++ {
			if s.colBusy[c] {
				continue
			}
			b := g.Block(r, c)
			if b.Size() == 0 || b.Size() < minSize || b.Updates >= s.epoch+lookahead {
				continue
			}
			if best == nil || b.Updates < best.Updates {
				best = b
			}
		}
	}
	if best == nil {
		return nil, false
	}
	s.cpuRowBusy[best.Band] = true
	s.colBusy[best.Col] = true
	return &Task{
		Blocks:     []*grid.Block{best},
		Region:     RegionCPU,
		NNZ:        best.Size(),
		RowSpan:    span(g.RowBounds, best.Band, best.Band+1),
		ColSpan:    span(g.ColBounds, best.Col, best.Col+1),
		RowBandKey: cpuBandKeyBase + best.Band,
		rows:       []int{best.Band},
		cols:       []int{best.Col},
		super:      -1,
	}, true
}

// acquireSuperBlock tries to issue a static-phase super-block on the given
// band for gpuID. The band must be unowned or already owned by gpuID with
// no sub-level locks, the column free, and every nonempty sub-block below
// quota.
func (s *Hetero) acquireSuperBlock(gpuID, band int) (*Task, bool) {
	l := s.HG.Layout
	g := s.HG.GPU
	if s.bandOwner[band] != free && s.bandOwner[band] != gpuID {
		return nil, false
	}
	for sub := band * l.SubRows; sub < (band+1)*l.SubRows; sub++ {
		if s.subOwner[sub] != free {
			return nil, false
		}
	}
	bestCol := -1
	var bestScore int64 = -1
	for c := 0; c < l.Cols; c++ {
		if s.colBusy[c] {
			continue
		}
		score, ok := s.superScore(band, c)
		if !ok {
			continue
		}
		if bestCol < 0 || score < bestScore {
			bestCol, bestScore = c, score
		}
	}
	if bestCol < 0 {
		return nil, false
	}
	blocks := make([]*grid.Block, 0, l.SubRows)
	nnz := 0
	for sub := band * l.SubRows; sub < (band+1)*l.SubRows; sub++ {
		b := g.Block(sub, bestCol)
		blocks = append(blocks, b)
		nnz += b.Size()
	}
	s.bandOwner[band] = gpuID
	s.bandRef[band]++
	s.colBusy[bestCol] = true
	s.SuperTasks++
	return &Task{
		Blocks:     blocks,
		Region:     RegionGPU,
		NNZ:        nnz,
		RowSpan:    span(g.RowBounds, band*l.SubRows, (band+1)*l.SubRows),
		ColSpan:    span(g.ColBounds, bestCol, bestCol+1),
		RowBandKey: band,
		super:      band,
		cols:       []int{bestCol},
		isGPU:      true,
	}, true
}

// superScore returns the minimum update count over the nonempty sub-blocks
// of (band, col) and whether the super-block is fully eligible.
func (s *Hetero) superScore(band, col int) (int64, bool) {
	l := s.HG.Layout
	g := s.HG.GPU
	var score int64 = -1
	nonempty := false
	for sub := band * l.SubRows; sub < (band+1)*l.SubRows; sub++ {
		b := g.Block(sub, col)
		if b.Size() == 0 {
			continue
		}
		nonempty = true
		if b.Updates >= s.epoch+lookahead {
			return 0, false // partially over quota: use sub granularity instead
		}
		if score < 0 || b.Updates < score {
			score = b.Updates
		}
	}
	if !nonempty {
		return 0, false
	}
	return score, true
}

// acquireGPUSub picks the least-updated eligible GPU-region sub-block for
// the given owner token. Sub-rows inside a band with an in-flight
// super-block are unavailable.
func (s *Hetero) acquireGPUSub(owner int) (*Task, bool) {
	l := s.HG.Layout
	g := s.HG.GPU
	var best *grid.Block
	for sub := 0; sub < g.RowBands; sub++ {
		if s.subOwner[sub] != free || s.bandOwner[sub/l.SubRows] != free {
			continue
		}
		for c := 0; c < g.ColBands; c++ {
			if s.colBusy[c] {
				continue
			}
			b := g.Block(sub, c)
			if b.Size() == 0 || b.Updates >= s.epoch+lookahead {
				continue
			}
			if best == nil || b.Updates < best.Updates {
				best = b
			}
		}
	}
	if best == nil {
		return nil, false
	}
	s.subOwner[best.Band] = owner
	s.colBusy[best.Col] = true
	s.SubTasks++
	return &Task{
		Blocks:     []*grid.Block{best},
		Region:     RegionGPU,
		NNZ:        best.Size(),
		RowSpan:    span(g.RowBounds, best.Band, best.Band+1),
		ColSpan:    span(g.ColBounds, best.Col, best.Col+1),
		RowBandKey: best.Band / l.SubRows,
		rows:       []int{best.Band},
		cols:       []int{best.Col},
		super:      -1,
		isGPU:      true,
	}, true
}

// Release unlocks the task and increments its blocks' update counters.
func (s *Hetero) Release(t *Task) {
	for _, b := range t.Blocks {
		b.Updates++
		s.TotalUpdates += int64(b.Size())
	}
	switch {
	case t.super >= 0:
		s.bandRef[t.super]--
		if s.bandRef[t.super] == 0 {
			s.bandOwner[t.super] = free
		}
	case t.isGPU:
		for _, r := range t.rows {
			s.subOwner[r] = free
		}
		if t.Stolen {
			s.cpuThieves--
		}
	default:
		for _, r := range t.rows {
			s.cpuRowBusy[r] = false
		}
	}
	for _, c := range t.cols {
		s.colBusy[c] = false
	}
}

// EpochComplete reports whether every nonempty block in both regions has
// reached the current epoch's quota.
func (s *Hetero) EpochComplete() bool {
	for _, b := range s.HG.CPU.Blocks {
		if b.Size() > 0 && b.Updates < s.epoch {
			return false
		}
	}
	for _, b := range s.HG.GPU.Blocks {
		if b.Size() > 0 && b.Updates < s.epoch {
			return false
		}
	}
	return true
}

// AdvanceEpoch opens the next epoch's quota and returns to the static phase.
func (s *Hetero) AdvanceEpoch() {
	s.epoch++
	s.dynamicGPU = false
	s.cpuDone = false
}

// Blocks returns all nonempty blocks of both regions (for update-skew
// reporting).
func (s *Hetero) Blocks() []*grid.Block {
	out := make([]*grid.Block, 0, len(s.HG.CPU.Blocks)+len(s.HG.GPU.Blocks))
	for _, b := range s.HG.CPU.Blocks {
		if b.Size() > 0 {
			out = append(out, b)
		}
	}
	for _, b := range s.HG.GPU.Blocks {
		if b.Size() > 0 {
			out = append(out, b)
		}
	}
	return out
}

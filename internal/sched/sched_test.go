package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hsgd/internal/grid"
	"hsgd/internal/sparse"
)

func uniformGrid(t *testing.T, rows, cols, nnz int, seed int64) *grid.Grid {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := sparse.New(rows*10, cols*10)
	for i := 0; i < nnz; i++ {
		m.Add(int32(rng.Intn(m.Rows)), int32(rng.Intn(m.Cols)), rng.Float32())
	}
	g, err := grid.Uniform(m, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func heteroGrid(t *testing.T, nc, ng int, alpha float64, nnz int, seed int64) *grid.HeteroGrid {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := sparse.New(600, 500)
	for i := 0; i < nnz; i++ {
		m.Add(int32(rng.Intn(m.Rows)), int32(rng.Intn(m.Cols)), rng.Float32())
	}
	l, err := grid.NewHeteroLayout(nc, ng, alpha)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := grid.PartitionHetero(m, l)
	if err != nil {
		t.Fatal(err)
	}
	return hg
}

func TestUniformIndependence(t *testing.T) {
	g := uniformGrid(t, 5, 4, 2000, 1)
	s := NewUniform(g)
	t1, ok := s.Acquire(0, -1, true)
	if !ok {
		t.Fatal("no block available")
	}
	t2, ok := s.Acquire(1, -1, true)
	if !ok {
		t.Fatal("second worker starved on 5x4 grid")
	}
	if t1.Blocks[0].Band == t2.Blocks[0].Band || t1.Blocks[0].Col == t2.Blocks[0].Col {
		t.Fatal("concurrent tasks share a band")
	}
	s.Release(t1)
	s.Release(t2)
	if s.TotalUpdates != int64(t1.NNZ+t2.NNZ) {
		t.Fatalf("TotalUpdates = %d", s.TotalUpdates)
	}
}

func TestUniformLeastUpdatesFirst(t *testing.T) {
	g := uniformGrid(t, 3, 2, 600, 2)
	s := NewUniform(g)
	// Run one worker for a full sweep; every nonempty block must be hit
	// once before any is hit twice.
	seen := make(map[*grid.Block]int)
	nonempty := 0
	for _, b := range g.Blocks {
		if b.Size() > 0 {
			nonempty++
		}
	}
	for i := 0; i < nonempty; i++ {
		task, ok := s.Acquire(0, -1, true)
		if !ok {
			t.Fatalf("starved after %d acquisitions", i)
		}
		seen[task.Blocks[0]]++
		s.Release(task)
	}
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("block %d,%d acquired %d times in first sweep", b.Band, b.Col, n)
		}
	}
}

func TestUniformExclusiveVsOwnerReentrant(t *testing.T) {
	g := uniformGrid(t, 3, 3, 900, 3)
	s := NewUniform(g)
	t1, ok := s.Acquire(7, -1, false)
	if !ok {
		t.Fatal("no block")
	}
	// Same non-exclusive owner may re-enter its band on another column.
	t2, ok := s.Acquire(7, t1.Blocks[0].Band, false)
	if !ok {
		t.Fatal("owner could not prefetch")
	}
	if t2.Blocks[0].Band != t1.Blocks[0].Band {
		t.Fatalf("prefetch ignored band preference: got band %d, want %d",
			t2.Blocks[0].Band, t1.Blocks[0].Band)
	}
	if t2.Blocks[0].Col == t1.Blocks[0].Col {
		t.Fatal("prefetch shares the column")
	}
	// A different worker must not enter that band.
	t3, ok := s.Acquire(8, -1, true)
	if ok && t3.Blocks[0].Band == t1.Blocks[0].Band {
		t.Fatal("exclusive worker entered an owned band")
	}
	if ok {
		s.Release(t3)
	}
	s.Release(t1)
	// Band still owned by 7 until the last task releases.
	t4, ok := s.Acquire(8, -1, true)
	if ok && t4.Blocks[0].Band == t2.Blocks[0].Band {
		t.Fatal("band freed while owner still holds a task")
	}
	if ok {
		s.Release(t4)
	}
	s.Release(t2)
}

// Property: under random acquire/release traffic, no two in-flight tasks of
// different owners ever share a row band or a column band.
func TestQuickUniformNoConflicts(t *testing.T) {
	f := func(seed int64) bool {
		g := uniformGridQuick(seed)
		if g == nil {
			return true
		}
		s := NewUniform(g)
		rng := rand.New(rand.NewSource(seed))
		type holder struct {
			task  *Task
			owner int
		}
		var inflight []holder
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 || len(inflight) == 0 {
				owner := rng.Intn(6)
				task, ok := s.Acquire(owner, -1, true)
				if ok {
					// Check independence against all in-flight tasks.
					for _, h := range inflight {
						if h.task.Blocks[0].Band == task.Blocks[0].Band ||
							h.task.Blocks[0].Col == task.Blocks[0].Col {
							return false
						}
					}
					inflight = append(inflight, holder{task, owner})
				}
			} else {
				i := rng.Intn(len(inflight))
				s.Release(inflight[i].task)
				inflight = append(inflight[:i], inflight[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func uniformGridQuick(seed int64) *grid.Grid {
	rng := rand.New(rand.NewSource(seed))
	m := sparse.New(100, 100)
	for i := 0; i < 1000; i++ {
		m.Add(int32(rng.Intn(100)), int32(rng.Intn(100)), 1)
	}
	g, err := grid.Uniform(m, 4+rng.Intn(4), 3+rng.Intn(4))
	if err != nil {
		return nil
	}
	return g
}

func TestHeteroStaticSuperBlocks(t *testing.T) {
	hg := heteroGrid(t, 4, 1, 0.5, 10000, 4)
	s := NewHetero(hg, false)
	task, ok := s.AcquireGPU(0, true)
	if !ok {
		t.Fatal("GPU got no super-block")
	}
	if len(task.Blocks) != hg.Layout.SubRows {
		t.Fatalf("super-block has %d blocks, want %d", len(task.Blocks), hg.Layout.SubRows)
	}
	if task.Region != RegionGPU || task.Stolen {
		t.Fatalf("task = %+v", task)
	}
	// Same GPU may prefetch a second super-block of its band.
	task2, ok := s.AcquireGPU(0, true)
	if !ok {
		t.Fatal("GPU could not prefetch second super-block")
	}
	if task2.RowBandKey != task.RowBandKey {
		t.Fatal("prefetch left the pinned band")
	}
	if task2.cols[0] == task.cols[0] {
		t.Fatal("prefetch shares the column")
	}
	s.Release(task)
	s.Release(task2)
	if s.SuperTasks != 2 {
		t.Fatalf("SuperTasks = %d", s.SuperTasks)
	}
}

func TestHeteroCPUAndGPUIndependent(t *testing.T) {
	hg := heteroGrid(t, 4, 1, 0.5, 10000, 5)
	s := NewHetero(hg, false)
	gt, ok := s.AcquireGPU(0, true)
	if !ok {
		t.Fatal("no GPU task")
	}
	for w := 0; w < 4; w++ {
		ct, ok := s.AcquireCPU(w)
		if !ok {
			t.Fatalf("CPU worker %d starved", w)
		}
		if ct.Region != RegionCPU {
			t.Fatalf("CPU got region %v", ct.Region)
		}
		if ct.cols[0] == gt.cols[0] {
			t.Fatal("CPU task shares column with GPU super-block")
		}
	}
}

func TestHeteroEpochQuota(t *testing.T) {
	hg := heteroGrid(t, 2, 1, 0.5, 5000, 6)
	s := NewHetero(hg, false)
	if s.Epoch() != 1 {
		t.Fatalf("initial epoch %d", s.Epoch())
	}
	// Drain epochs 1 and 2 completely (lookahead allows both).
	for {
		task, ok := s.AcquireGPU(0, true)
		if !ok {
			task, ok = s.AcquireCPU(0)
		}
		if !ok {
			break
		}
		s.Release(task)
	}
	if !s.EpochComplete() {
		t.Fatal("epoch not complete after drain")
	}
	// Everything should be at exactly epoch+lookahead updates.
	for _, b := range s.Blocks() {
		if b.Updates != 2 {
			t.Fatalf("block updated %d times, want 2 (epoch+lookahead)", b.Updates)
		}
	}
	s.AdvanceEpoch()
	if s.Epoch() != 2 {
		t.Fatalf("epoch after advance %d", s.Epoch())
	}
	// New quota opens exactly one more epoch of eligibility.
	if _, ok := s.AcquireCPU(0); !ok {
		t.Fatal("no work after epoch advance")
	}
}

func TestHeteroDynamicStealing(t *testing.T) {
	hg := heteroGrid(t, 2, 1, 0.7, 8000, 7)
	s := NewHetero(hg, true)
	// Exhaust the CPU region (both lookahead epochs).
	for {
		task, ok := s.acquireCPUBlock()
		if !ok {
			break
		}
		s.Release(task)
	}
	// Now a CPU acquire must steal from the GPU region.
	task, ok := s.AcquireCPU(0)
	if !ok {
		t.Fatal("CPU did not steal despite eligible GPU work")
	}
	if !task.Stolen || task.Region != RegionGPU {
		t.Fatalf("stolen task = %+v", task)
	}
	if s.StolenByCPU != 1 {
		t.Fatalf("StolenByCPU = %d", s.StolenByCPU)
	}
	s.Release(task)
}

func TestHeteroNoStealingWhenDisabled(t *testing.T) {
	hg := heteroGrid(t, 2, 1, 0.7, 8000, 8)
	s := NewHetero(hg, false)
	for {
		task, ok := s.acquireCPUBlock()
		if !ok {
			break
		}
		s.Release(task)
	}
	if _, ok := s.AcquireCPU(0); ok {
		t.Fatal("HSGD*-M stole work")
	}
}

func TestHeteroGPUStealRowBatch(t *testing.T) {
	hg := heteroGrid(t, 4, 1, 0.2, 8000, 9)
	s := NewHetero(hg, true)
	s.MinGPUSteal = 1
	// Exhaust the GPU region so the GPU must steal.
	for {
		task, ok := s.AcquireGPU(0, false)
		if !ok {
			break
		}
		s.Release(task)
	}
	task, ok := s.AcquireGPU(0, true)
	if !ok {
		t.Fatal("GPU did not steal")
	}
	if !task.Stolen || task.Region != RegionCPU {
		t.Fatalf("stolen task = %+v", task)
	}
	if len(task.Blocks) < 1 || len(task.Blocks) > gpuStealBatch {
		t.Fatalf("batch size %d", len(task.Blocks))
	}
	// All blocks share the row band.
	if len(task.rows) != 1 {
		t.Fatalf("batch locks %d rows", len(task.rows))
	}
	// Columns are distinct.
	seen := map[int]bool{}
	for _, c := range task.cols {
		if seen[c] {
			t.Fatal("batch repeats a column")
		}
		seen[c] = true
	}
	s.Release(task)
	if s.StolenByGPU != 1 {
		t.Fatalf("StolenByGPU = %d", s.StolenByGPU)
	}
}

func TestHeteroMinGPUStealFilter(t *testing.T) {
	hg := heteroGrid(t, 4, 1, 0.2, 8000, 10)
	s := NewHetero(hg, true)
	s.MinGPUSteal = 1 << 30 // nothing is ever big enough
	for {
		task, ok := s.AcquireGPU(0, false)
		if !ok {
			break
		}
		s.Release(task)
	}
	if _, ok := s.AcquireGPU(0, true); ok {
		t.Fatal("GPU stole despite break-even filter")
	}
}

func TestHeteroMaxCPUThieves(t *testing.T) {
	hg := heteroGrid(t, 8, 1, 0.8, 20000, 11)
	s := NewHetero(hg, true)
	s.MaxCPUThieves = 2
	for {
		task, ok := s.acquireCPUBlock()
		if !ok {
			break
		}
		s.Release(task)
	}
	var held []*Task
	for w := 0; w < 8; w++ {
		if task, ok := s.AcquireCPU(w); ok {
			if !task.Stolen {
				t.Fatal("expected stolen task")
			}
			held = append(held, task)
		}
	}
	if len(held) != 2 {
		t.Fatalf("%d concurrent thieves, cap 2", len(held))
	}
	for _, task := range held {
		s.Release(task)
	}
}

// Property: hetero scheduling under random traffic never violates
// independence: in-flight tasks of different owners never share a matrix
// row range or a column band.
func TestQuickHeteroNoConflicts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := sparse.New(300, 300)
		for i := 0; i < 3000; i++ {
			m.Add(int32(rng.Intn(300)), int32(rng.Intn(300)), 1)
		}
		nc := 2 + rng.Intn(4)
		ng := 1 + rng.Intn(2)
		l, err := grid.NewHeteroLayout(nc, ng, 0.3+rng.Float64()*0.4)
		if err != nil {
			return false
		}
		hg, err := grid.PartitionHetero(m, l)
		if err != nil {
			return false
		}
		s := NewHetero(hg, true)
		type holder struct {
			task *Task
			gpu  bool
			id   int
		}
		var inflight []holder
		overlaps := func(a, b *Task) bool {
			for _, ca := range a.cols {
				for _, cb := range b.cols {
					if ca == cb {
						return true
					}
				}
			}
			// Row ranges conflict only within the same region table.
			if (a.Region == RegionGPU) != (b.Region == RegionGPU) {
				return false
			}
			for _, ra := range a.rows {
				for _, rb := range b.rows {
					if ra == rb {
						return true
					}
				}
			}
			return false
		}
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(inflight) == 0 {
				var task *Task
				var ok bool
				gpuSide := rng.Intn(2) == 0
				id := rng.Intn(nc)
				if gpuSide {
					id = rng.Intn(ng)
					task, ok = s.AcquireGPU(id, true)
				} else {
					task, ok = s.AcquireCPU(id)
				}
				if ok {
					for _, h := range inflight {
						// Same GPU may legitimately share its own band
						// across pipelined super-blocks.
						if gpuSide && h.gpu && h.id == id {
							continue
						}
						if overlaps(h.task, task) {
							return false
						}
					}
					inflight = append(inflight, holder{task, gpuSide, id})
				}
			} else {
				i := rng.Intn(len(inflight))
				s.Release(inflight[i].task)
				inflight = append(inflight[:i], inflight[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

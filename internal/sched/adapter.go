package sched

import (
	"sync"
	"sync/atomic"
)

// HeteroStats is a point-in-time snapshot of an adapted Hetero scheduler's
// per-class accounting, cumulative across repartition swaps.
type HeteroStats struct {
	CPUUpdates     int64 // ratings processed by exclusive (CPU-class) owners
	BatchedUpdates int64 // ratings processed by non-exclusive (batched-class) owners
	StolenByCPU    int64 // GPU-region sub-block tasks taken by CPU-class owners
	StolenByGPU    int64 // CPU-region row-batch tasks taken by batched-class owners
	SuperTasks     int64 // static-phase super-blocks issued
	SubTasks       int64 // sub-row tasks issued
	CPUTasks       int64 // tasks released by exclusive (CPU-class) owners
	BatchedTasks   int64 // tasks released by non-exclusive (batched-class) owners
}

// HeteroScheduler adapts the two-region Hetero policy behind the engine's
// Scheduler interface so the real wall-clock engine can run HSGD* on live
// hardware: device classes map onto the (owner, exclusive) vocabulary —
// exclusive acquires route to the CPU region (AcquireCPU), non-exclusive
// ones to the GPU-side path (AcquireGPU), with Rule 1's "no second steal
// while one is in flight" tracked per owner.
//
// Hetero itself is single-threaded by design (the simulator serializes
// events); the adapter serializes concurrent engine workers with one mutex.
// That is acceptable where Striped needs lock-free striping: the
// heterogeneous layout hands out far fewer, far larger tasks (whole-band
// super-blocks on the batched side), so the critical section is cold
// relative to kernel time.
//
// The adapter owns the epoch-quota lifecycle (AdvanceEpoch under the
// engine's quiescence barrier) and survives mid-run repartitioning: Swap
// replaces the inner Hetero (new grid, fresh quota) while Updates and the
// per-class counters carry across generations.
type HeteroScheduler struct {
	mu sync.Mutex
	h  *Hetero

	// stolenHeld tracks, per non-exclusive owner, the stolen CPU-region
	// tasks currently in flight — Rule 1 forbids a batched executor from
	// pipelining a second steal while one is unfinished.
	stolenHeld map[int]int

	inFlight atomic.Int64
	total    atomic.Int64 // ratings processed, cumulative across Swaps

	// Per-class totals and fold-in of swapped-out generations' counters.
	cpuUpd, batUpd                     atomic.Int64
	cpuTasks, batTasks                 atomic.Int64
	carriedCPUSteal, carriedGPUSteal   int64
	carriedSuperTasks, carriedSubTasks int64

	// notify wakes one blocked worker per release or quota change, like
	// Striped.Blocked: capacity 1, waiters pair it with a poll timeout.
	notify chan struct{}
}

// NewHeteroScheduler wraps a Hetero policy for concurrent engine use.
func NewHeteroScheduler(h *Hetero) *HeteroScheduler {
	return &HeteroScheduler{
		h:          h,
		stolenHeld: make(map[int]int),
		notify:     make(chan struct{}, 1),
	}
}

// Acquire implements Scheduler. Exclusive owners are CPU-class workers and
// draw from the CPU region (stealing GPU-region sub-blocks in the dynamic
// phase); non-exclusive owners are batched-class executors and draw
// super-blocks from the GPU region (stealing CPU-region row batches).
func (a *HeteroScheduler) Acquire(owner, preferBand int, exclusive bool) (*Task, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t *Task
	var ok bool
	if exclusive {
		t, ok = a.h.AcquireCPU(owner)
	} else {
		t, ok = a.h.AcquireGPU(owner, a.stolenHeld[owner] == 0)
		if ok && t.Stolen {
			a.stolenHeld[owner]++
		}
	}
	if !ok {
		return nil, false
	}
	t.owner = owner
	t.exclusive = exclusive
	a.inFlight.Add(1)
	return t, true
}

// Release implements Scheduler.
func (a *HeteroScheduler) Release(t *Task) {
	a.mu.Lock()
	a.h.Release(t)
	if !t.exclusive && t.Stolen {
		a.stolenHeld[t.owner]--
	}
	a.mu.Unlock()
	if t.exclusive {
		a.cpuUpd.Add(int64(t.NNZ))
		a.cpuTasks.Add(1)
	} else {
		a.batUpd.Add(int64(t.NNZ))
		a.batTasks.Add(1)
	}
	a.total.Add(int64(t.NNZ))
	a.inFlight.Add(-1)
	a.wake()
}

// Updates implements Scheduler: ratings processed over released tasks,
// cumulative across repartition swaps.
func (a *HeteroScheduler) Updates() int64 { return a.total.Load() }

// Blocked returns the channel a worker waits on after a failed Acquire; it
// coalesces wake-ups, so waiters must pair it with a timeout.
func (a *HeteroScheduler) Blocked() <-chan struct{} { return a.notify }

// InFlight counts tasks currently held — zero exactly when no worker holds
// scheduler locks. The engine's quiescence barrier drains on it.
func (a *HeteroScheduler) InFlight() int { return int(a.inFlight.Load()) }

// AdvanceEpoch opens the next epoch's quota. Callers quiesce workers first
// (the engine runs it under the epoch barrier).
func (a *HeteroScheduler) AdvanceEpoch() {
	a.mu.Lock()
	a.h.AdvanceEpoch()
	a.mu.Unlock()
	a.wake()
}

// EpochComplete reports whether every nonempty block reached the current
// epoch's quota.
func (a *HeteroScheduler) EpochComplete() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.h.EpochComplete()
}

// Swap replaces the inner Hetero with a freshly partitioned one (the
// engine's cost-model repartition at an epoch boundary). Callers must have
// quiesced every worker: nothing may be in flight. Cumulative counters
// carry over; the new scheduler starts at its own epoch 1 with a fresh
// quota.
func (a *HeteroScheduler) Swap(h *Hetero) {
	a.mu.Lock()
	a.carriedCPUSteal += a.h.StolenByCPU
	a.carriedGPUSteal += a.h.StolenByGPU
	a.carriedSuperTasks += a.h.SuperTasks
	a.carriedSubTasks += a.h.SubTasks
	a.h = h
	clear(a.stolenHeld)
	a.mu.Unlock()
	a.wake()
}

// Tune updates the dynamic-phase steal filters in place — the engine's
// cost-model refresh at epoch boundaries when the split itself has not
// moved. Callers quiesce workers first, so no stolen task is in flight
// while the thief cap changes.
func (a *HeteroScheduler) Tune(minGPUSteal int, minCPURemaining, minGPURemaining int64, maxCPUThieves int) {
	a.mu.Lock()
	a.h.MinGPUSteal = minGPUSteal
	a.h.MinCPUStealRemaining = minCPURemaining
	a.h.MinGPUStealRemaining = minGPURemaining
	a.h.MaxCPUThieves = maxCPUThieves
	a.mu.Unlock()
}

// Stats snapshots the per-class accounting.
func (a *HeteroScheduler) Stats() HeteroStats {
	a.mu.Lock()
	s := HeteroStats{
		StolenByCPU: a.carriedCPUSteal + a.h.StolenByCPU,
		StolenByGPU: a.carriedGPUSteal + a.h.StolenByGPU,
		SuperTasks:  a.carriedSuperTasks + a.h.SuperTasks,
		SubTasks:    a.carriedSubTasks + a.h.SubTasks,
	}
	a.mu.Unlock()
	s.CPUUpdates = a.cpuUpd.Load()
	s.BatchedUpdates = a.batUpd.Load()
	s.CPUTasks = a.cpuTasks.Load()
	s.BatchedTasks = a.batTasks.Load()
	return s
}

func (a *HeteroScheduler) wake() {
	select {
	case a.notify <- struct{}{}:
	default:
	}
}

package sched

import (
	"math/rand"
	"sync"
	"testing"

	"hsgd/internal/grid"
	"hsgd/internal/sparse"
)

// The scheduler conformance suite: every Scheduler implementation the
// engine can run against — Uniform, Striped, and the adapted Hetero — must
// satisfy the same contract:
//
//  1. exactly-once per epoch: each nonempty block is processed once per
//     epoch, with at most one epoch of lookahead skew while work is in
//     flight (the Hetero quota explicitly permits streaming one epoch
//     ahead; the least-updated-first policies never diverge past one);
//  2. independence: no two concurrently held tasks of different owners
//     share a column band, nor a row band within the same lock table
//     (same-owner non-exclusive row sharing is the GPU-stream pipelining
//     exception);
//  3. accounting: Updates() equals the ratings of released work.
//
// The concurrent cases run under -race in CI, which is what makes the
// internally synchronized schedulers' claims meaningful.

// conformOwner is one worker identity driving the scheduler.
type conformOwner struct {
	id        int
	exclusive bool
}

// conformTarget wraps one scheduler implementation for the suite.
type conformTarget struct {
	s      Scheduler
	blocks []*grid.Block // nonempty blocks of every region
	nnz    int64

	owners []conformOwner

	// lookahead is how many epochs past the settled count a drained
	// scheduler leaves its blocks (Hetero's free-running quota); 0 for the
	// policies with no quota, which the harness sweeps exactly.
	lookahead int64
	// advance opens the next epoch's quota (nil for free-running policies).
	advance func()
	// complete reports the current epoch fully settled (nil: by count).
	complete func() bool
	// sync copies scheduler-owned counters into the blocks (Striped keeps
	// them in atomics); called only while the harness holds no tasks.
	sync func()
	// serialize marks schedulers whose callers must hold a lock around
	// Acquire/Release (Uniform).
	serialize bool
}

func nonempty(gs ...*grid.Grid) []*grid.Block {
	var out []*grid.Block
	for _, g := range gs {
		for _, b := range g.Blocks {
			if b.Size() > 0 {
				out = append(out, b)
			}
		}
	}
	return out
}

func conformMatrix(seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := sparse.New(300, 250)
	for i := 0; i < 6000; i++ {
		m.Add(int32(rng.Intn(m.Rows)), int32(rng.Intn(m.Cols)), rng.Float32())
	}
	return m
}

func conformCases(t *testing.T, seed int64) map[string]func() conformTarget {
	t.Helper()
	return map[string]func() conformTarget{
		"uniform": func() conformTarget {
			g, err := grid.Uniform(conformMatrix(seed), 5, 4)
			if err != nil {
				t.Fatal(err)
			}
			owners := make([]conformOwner, 4)
			for i := range owners {
				owners[i] = conformOwner{id: i, exclusive: true}
			}
			return conformTarget{
				s: NewUniform(g), blocks: nonempty(g), nnz: int64(g.NNZ()),
				owners: owners, serialize: true,
			}
		},
		"striped": func() conformTarget {
			g, err := grid.Uniform(conformMatrix(seed), 7, 6)
			if err != nil {
				t.Fatal(err)
			}
			st := NewStriped(g)
			owners := make([]conformOwner, 6)
			for i := range owners {
				owners[i] = conformOwner{id: i, exclusive: true}
			}
			return conformTarget{
				s: st, blocks: nonempty(g), nnz: int64(g.NNZ()),
				owners: owners, sync: st.SyncStats,
			}
		},
		"hetero": func() conformTarget {
			l, err := grid.NewHeteroLayout(3, 1, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			hg, err := grid.PartitionHetero(conformMatrix(seed), l)
			if err != nil {
				t.Fatal(err)
			}
			a := NewHeteroScheduler(NewHetero(hg, true))
			return conformTarget{
				s: a, blocks: nonempty(hg.CPU, hg.GPU), nnz: int64(hg.CPUNNZ + hg.GPUNNZ),
				owners: []conformOwner{
					{id: 0, exclusive: true}, {id: 1, exclusive: true},
					{id: 2, exclusive: true}, {id: 0, exclusive: false},
				},
				lookahead: 1, advance: a.AdvanceEpoch, complete: a.EpochComplete,
			}
		},
	}
}

// TestConformanceExactlyOncePerEpoch drives each scheduler serially for
// several epochs and checks every nonempty block lands on exactly the
// epoch's update count (plus the declared lookahead for quota schedulers).
func TestConformanceExactlyOncePerEpoch(t *testing.T) {
	for name, build := range conformCases(t, 21) {
		t.Run(name, func(t *testing.T) {
			ct := build()
			const epochs = 3
			var released int64
			for e := int64(1); e <= epochs; e++ {
				if ct.advance == nil {
					// Free-running least-updated-first: one epoch is exactly
					// one task per nonempty block.
					for i := 0; i < len(ct.blocks); i++ {
						o := ct.owners[i%len(ct.owners)]
						task, ok := ct.s.Acquire(o.id, -1, o.exclusive)
						if !ok {
							t.Fatalf("epoch %d: starved after %d acquisitions", e, i)
						}
						released += int64(task.NNZ)
						ct.s.Release(task)
					}
				} else {
					// Quota scheduler: drain every owner until all refuse.
					for {
						progressed := false
						for _, o := range ct.owners {
							if task, ok := ct.s.Acquire(o.id, -1, o.exclusive); ok {
								released += int64(task.NNZ)
								ct.s.Release(task)
								progressed = true
							}
						}
						if !progressed {
							break
						}
					}
					if !ct.complete() {
						t.Fatalf("epoch %d: drain stopped with quota unmet", e)
					}
					if e < epochs {
						ct.advance()
					}
				}
				if ct.sync != nil {
					ct.sync()
				}
				want := e + func() int64 {
					if ct.advance != nil {
						return ct.lookahead
					}
					return 0
				}()
				for _, b := range ct.blocks {
					if b.Updates != want {
						t.Fatalf("epoch %d: block (%d,%d) at %d updates, want %d",
							e, b.Band, b.Col, b.Updates, want)
					}
				}
			}
			if got := ct.s.Updates(); got != released {
				t.Fatalf("Updates() = %d, released %d", got, released)
			}
		})
	}
}

// TestConformanceConcurrentIndependence hammers each scheduler from
// concurrent workers and verifies (under -race) that no two in-flight
// tasks conflict, that quota schedulers keep the update skew within one
// epoch of lookahead, and that Updates() matches the released ratings.
func TestConformanceConcurrentIndependence(t *testing.T) {
	for name, build := range conformCases(t, 22) {
		t.Run(name, func(t *testing.T) {
			ct := build()
			const epochs = 3
			var (
				trackMu  sync.Mutex
				inflight = make(map[*Task]conformOwner)
				released int64
				violated string
				advanced int64
				serial   sync.Mutex // external serialization where required
			)
			acquire := func(o conformOwner) (*Task, bool) {
				if ct.serialize {
					serial.Lock()
					defer serial.Unlock()
				}
				return ct.s.Acquire(o.id, -1, o.exclusive)
			}
			release := func(task *Task) {
				if ct.serialize {
					serial.Lock()
					defer serial.Unlock()
				}
				ct.s.Release(task)
			}
			target := int64(epochs) * ct.nnz

			var wg sync.WaitGroup
			for _, o := range ct.owners {
				wg.Add(1)
				go func(o conformOwner) {
					defer wg.Done()
					for {
						trackMu.Lock()
						done := released >= target || violated != ""
						trackMu.Unlock()
						if done {
							return
						}
						task, ok := acquire(o)
						if !ok {
							// Quota schedulers need the epoch advanced once
							// settled; free-running ones are just contended.
							if ct.advance != nil {
								trackMu.Lock()
								if len(inflight) == 0 && advanced < int64(epochs-1) && ct.complete() {
									ct.advance()
									advanced++
								}
								trackMu.Unlock()
							}
							continue
						}
						trackMu.Lock()
						for held, ho := range inflight {
							if msg := conflict(task, o, held, ho); msg != "" {
								violated = msg
							}
						}
						inflight[task] = o
						trackMu.Unlock()

						release(task)

						trackMu.Lock()
						delete(inflight, task)
						released += int64(task.NNZ)
						trackMu.Unlock()
					}
				}(o)
			}
			wg.Wait()
			if violated != "" {
				t.Fatal(violated)
			}
			if got := ct.s.Updates(); got < released {
				t.Fatalf("Updates() = %d below released %d", got, released)
			}
			if ct.sync != nil {
				ct.sync()
			}
			// Skew bound: quota schedulers hard-cap divergence at one epoch
			// of lookahead. The free-running least-updated-first policies
			// have no hard cap — transient skew under uneven workers is
			// exactly Example 3 — but with symmetric workers and ~E sweeps
			// released, anything past one in-flight sweep plus one epoch of
			// spread marks a broken least-updated ordering.
			minU, maxU := ct.blocks[0].Updates, ct.blocks[0].Updates
			for _, b := range ct.blocks {
				if b.Updates < minU {
					minU = b.Updates
				}
				if b.Updates > maxU {
					maxU = b.Updates
				}
			}
			if maxU-minU > 2+ct.lookahead {
				t.Fatalf("update skew %d (min %d max %d) beyond bound %d",
					maxU-minU, minU, maxU, 2+ct.lookahead)
			}
		})
	}
}

// conflict reports why two concurrently held tasks violate independence, or
// "" when they are compatible.
func conflict(a *Task, ao conformOwner, b *Task, bo conformOwner) string {
	for _, ca := range a.cols {
		for _, cb := range b.cols {
			if ca == cb {
				return "two in-flight tasks share a column band"
			}
		}
	}
	// Row locks live in per-region tables; only same-table rows conflict.
	if a.isGPU != b.isGPU {
		return ""
	}
	// Same non-exclusive owner may pipeline tasks on its own row band.
	if ao.id == bo.id && !ao.exclusive && !bo.exclusive {
		return ""
	}
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			if ra == rb {
				return "two in-flight tasks share a row band"
			}
		}
	}
	return ""
}

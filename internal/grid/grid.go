// Package grid implements matrix blocking: the division of a sparse rating
// matrix into sub-matrices ("blocks") such that blocks sharing no row band
// and no column band can be updated in parallel without write conflicts on
// P and Q (Section III-A of the paper).
//
// It provides the uniform grids used by FPSGD and the HSGD baseline, Rule 1
// (the minimum block-count rule), and the nonuniform two-region layout of
// Section VI used by HSGD*.
package grid

import (
	"fmt"
	"math"
	"sort"

	"hsgd/internal/sparse"
)

// Block is one sub-matrix of the rating matrix. Ratings are the entries
// falling inside the block's row and column bands. Updates counts how many
// times a worker has processed the block; the scheduler uses it to pick the
// least-updated independent block and the tests use its distribution to
// demonstrate the update skew of Example 3.
type Block struct {
	Band    int // row band index within its grid
	Col     int // column band index
	Ratings []sparse.Rating
	Updates int64

	// SOA is the structure-of-arrays view of Ratings, filled by
	// Grid.PackSOA. The training engine's fused kernel iterates it instead
	// of Ratings: three parallel streams prefetch better than a stream of
	// 12-byte structs, and the value stream stays hot while the id streams
	// feed the factor-row gathers.
	SOA BlockSOA
}

// BlockSOA holds one block's ratings as three parallel slices
// (rows[i], cols[i], vals[i] form one rating). The slices alias a
// grid-level arena so the whole grid's payload is three contiguous
// allocations.
type BlockSOA struct {
	Rows []int32
	Cols []int32
	Vals []float32
}

// Size returns the number of ratings in the block (from whichever layout
// currently holds them — PackSOA releases the AoS slice).
func (b *Block) Size() int {
	if b.Ratings != nil {
		return len(b.Ratings)
	}
	return len(b.SOA.Rows)
}

// Grid is a 2-D array of blocks covering one region of the matrix.
// RowBounds/ColBounds hold band boundaries in id space: band i covers ids
// [RowBounds[i], RowBounds[i+1]).
type Grid struct {
	RowBands  int
	ColBands  int
	RowBounds []int32 // len RowBands+1
	ColBounds []int32 // len ColBands+1
	Blocks    []*Block

	packed bool // PackSOA has run; Ratings slices are released
}

// Block returns the block at row band r, column band c.
func (g *Grid) Block(r, c int) *Block { return g.Blocks[r*g.ColBands+c] }

// NNZ returns the total number of ratings across all blocks (in either
// layout).
func (g *Grid) NNZ() int {
	total := 0
	for _, b := range g.Blocks {
		total += b.Size()
	}
	return total
}

// Rule1 returns the minimum grid dimensions (rows, cols) for nc CPU threads
// and ng GPUs: the paper's refined matrix-division rule requires at least
// (nc+ng+1) × (nc+ng) blocks so a finishing worker can always locate a spare
// row and column.
func Rule1(nc, ng int) (rows, cols int) {
	return nc + ng + 1, nc + ng
}

// BoundsUniform splits the id range [0, n) into parts equal-width bands.
func BoundsUniform(n, parts int) []int32 {
	bounds := make([]int32, parts+1)
	for i := 0; i <= parts; i++ {
		bounds[i] = int32(i * n / parts)
	}
	return bounds
}

// BoundsBalanced splits ids into parts bands with approximately equal total
// count, given per-id counts. FPSGD achieves the same effect by randomly
// permuting ids before uniform splitting; explicit balancing keeps blocks
// even under the Zipf skew of the synthetic datasets.
func BoundsBalanced(counts []int, parts int) []int32 {
	total := 0
	for _, c := range counts {
		total += c
	}
	bounds := make([]int32, parts+1)
	bounds[parts] = int32(len(counts))
	cum := 0
	band := 1
	for id, c := range counts {
		cum += c
		// Close band when its quota is met, keeping enough ids for the
		// remaining bands.
		for band < parts && cum >= band*total/parts && len(counts)-id-1 >= parts-band {
			bounds[band] = int32(id + 1)
			band++
		}
	}
	for ; band < parts; band++ {
		bounds[band] = bounds[parts]
	}
	return bounds
}

// locate returns the band containing id given bounds (len bands+1).
func locate(bounds []int32, id int32) int {
	// sort.Search for the first bound > id, minus one.
	return sort.Search(len(bounds)-1, func(i int) bool { return bounds[i+1] > id }) // first band whose upper bound exceeds id
}

// Partition buckets the ratings of m into a grid with the given band
// boundaries. Ratings outside the boundary range are rejected.
func Partition(m *sparse.Matrix, rowBounds, colBounds []int32) (*Grid, error) {
	rows := len(rowBounds) - 1
	cols := len(colBounds) - 1
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("grid: need at least 1x1 bands, got %dx%d", rows, cols)
	}
	g := &Grid{RowBands: rows, ColBands: cols, RowBounds: rowBounds, ColBounds: colBounds,
		Blocks: make([]*Block, rows*cols)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.Blocks[r*cols+c] = &Block{Band: r, Col: c}
		}
	}
	lo, hi := rowBounds[0], rowBounds[rows]
	clo, chi := colBounds[0], colBounds[cols]
	for _, rt := range m.Ratings {
		if rt.Row < lo || rt.Row >= hi || rt.Col < clo || rt.Col >= chi {
			return nil, fmt.Errorf("grid: rating (%d,%d) outside bands [%d,%d)x[%d,%d)",
				rt.Row, rt.Col, lo, hi, clo, chi)
		}
		b := g.Block(locate(rowBounds, rt.Row), locate(colBounds, rt.Col))
		b.Ratings = append(b.Ratings, rt)
	}
	return g, nil
}

// Uniform partitions the whole matrix into rows×cols blocks with
// count-balanced boundaries — the division used by FPSGD (CPU-Only) and the
// HSGD baseline.
func Uniform(m *sparse.Matrix, rows, cols int) (*Grid, error) {
	rb := BoundsBalanced(m.RowCounts(), rows)
	cb := BoundsBalanced(m.ColCounts(), cols)
	return Partition(m, rb, cb)
}

// PackSOA converts every block's ratings to the structure-of-arrays view.
// Blocks are laid out back to back in three shared arenas in block order, so
// a worker streaming through one block touches a single contiguous region of
// each arena. The AoS Ratings slices are released afterwards — keeping both
// layouts would double the payload's resident memory — so grids that still
// need rating structs (the legacy and simulated trainers) must not pack.
// Call once after partitioning, before training starts; a second call is a
// no-op.
func (g *Grid) PackSOA() {
	if g.packed {
		return
	}
	g.packed = true
	total := g.NNZ()
	rows := make([]int32, 0, total)
	cols := make([]int32, 0, total)
	vals := make([]float32, 0, total)
	for _, b := range g.Blocks {
		lo := len(rows)
		for _, rt := range b.Ratings {
			rows = append(rows, rt.Row)
			cols = append(cols, rt.Col)
			vals = append(vals, rt.Value)
		}
		hi := len(rows)
		b.SOA = BlockSOA{Rows: rows[lo:hi:hi], Cols: cols[lo:hi:hi], Vals: vals[lo:hi:hi]}
		b.Ratings = nil
	}
}

// UpdateStats summarises the distribution of Block.Updates across a set of
// blocks; the skew (Max/Mean) demonstrates Example 3's starvation.
type UpdateStats struct {
	Min, Max int64
	Mean     float64
	StdDev   float64
}

// ComputeUpdateStats aggregates over the given blocks (empty blocks are
// skipped — they are never scheduled).
func ComputeUpdateStats(blocks []*Block) UpdateStats {
	var s UpdateStats
	n := 0
	var sum, sumSq float64
	s.Min = math.MaxInt64
	for _, b := range blocks {
		if b.Size() == 0 {
			continue
		}
		n++
		u := b.Updates
		if u < s.Min {
			s.Min = u
		}
		if u > s.Max {
			s.Max = u
		}
		sum += float64(u)
		sumSq += float64(u) * float64(u)
	}
	if n == 0 {
		s.Min = 0
		return s
	}
	s.Mean = sum / float64(n)
	variance := sumSq/float64(n) - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	return s
}

package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hsgd/internal/sparse"
)

func randomMatrix(rows, cols, nnz int, seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := sparse.New(rows, cols)
	for i := 0; i < nnz; i++ {
		m.Add(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.Float32())
	}
	return m
}

func TestRule1(t *testing.T) {
	rows, cols := Rule1(16, 1)
	if rows != 18 || cols != 17 {
		t.Fatalf("Rule1(16,1) = %d,%d", rows, cols)
	}
	rows, cols = Rule1(4, 0)
	if rows != 5 || cols != 4 {
		t.Fatalf("Rule1(4,0) = %d,%d", rows, cols)
	}
}

func TestBoundsUniform(t *testing.T) {
	b := BoundsUniform(10, 4)
	want := []int32{0, 2, 5, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("BoundsUniform = %v", b)
		}
	}
}

func TestBoundsBalanced(t *testing.T) {
	counts := []int{10, 0, 0, 10, 10, 0, 10} // total 40, 4 parts of ~10
	b := BoundsBalanced(counts, 4)
	if b[0] != 0 || b[4] != 7 {
		t.Fatalf("outer bounds %v", b)
	}
	// Every band must be non-decreasing and cover the whole range.
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("bounds not monotone: %v", b)
		}
	}
	// Band counts should be near 10 each.
	for band := 0; band < 4; band++ {
		sum := 0
		for id := b[band]; id < b[band+1]; id++ {
			sum += counts[id]
		}
		if sum > 20 {
			t.Fatalf("band %d holds %d of 40", band, sum)
		}
	}
}

// Property: balanced bounds always form a valid partition of the id space.
func TestQuickBoundsBalancedValid(t *testing.T) {
	f := func(seed int64, parts8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		parts := 1 + int(parts8%16)
		if parts > n {
			parts = n
		}
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(20)
		}
		b := BoundsBalanced(counts, parts)
		if len(b) != parts+1 || b[0] != 0 || b[parts] != int32(n) {
			return false
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionPlacesEveryRating(t *testing.T) {
	m := randomMatrix(50, 40, 500, 1)
	g, err := Uniform(m, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NNZ() != m.NNZ() {
		t.Fatalf("grid holds %d of %d ratings", g.NNZ(), m.NNZ())
	}
	// Every rating must be inside its block's bands.
	for r := 0; r < g.RowBands; r++ {
		for c := 0; c < g.ColBands; c++ {
			b := g.Block(r, c)
			for _, rt := range b.Ratings {
				if rt.Row < g.RowBounds[r] || rt.Row >= g.RowBounds[r+1] {
					t.Fatalf("rating row %d outside band %d", rt.Row, r)
				}
				if rt.Col < g.ColBounds[c] || rt.Col >= g.ColBounds[c+1] {
					t.Fatalf("rating col %d outside band %d", rt.Col, c)
				}
			}
		}
	}
}

func TestPartitionRejectsOutOfRange(t *testing.T) {
	m := sparse.New(10, 10)
	m.Add(9, 9, 1)
	if _, err := Partition(m, []int32{0, 5}, []int32{0, 10}); err == nil {
		t.Fatal("rating outside row bounds accepted")
	}
	if _, err := Partition(m, []int32{0}, []int32{0, 10}); err == nil {
		t.Fatal("empty bands accepted")
	}
}

func TestUniformBalance(t *testing.T) {
	m := randomMatrix(200, 200, 20000, 2)
	g, err := Uniform(m, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Count-balanced bounds on uniform data: no block should be more than
	// 4x the average.
	avg := float64(m.NNZ()) / 100
	for _, b := range g.Blocks {
		if float64(b.Size()) > 4*avg {
			t.Fatalf("block %d,%d holds %d (avg %.0f)", b.Band, b.Col, b.Size(), avg)
		}
	}
}

func TestComputeUpdateStats(t *testing.T) {
	blocks := []*Block{
		{Ratings: make([]sparse.Rating, 1), Updates: 2},
		{Ratings: make([]sparse.Rating, 1), Updates: 4},
		{Updates: 99}, // empty: ignored
	}
	s := ComputeUpdateStats(blocks)
	if s.Min != 2 || s.Max != 4 || s.Mean != 3 {
		t.Fatalf("stats = %+v", s)
	}
	empty := ComputeUpdateStats(nil)
	if empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestNewHeteroLayout(t *testing.T) {
	l, err := NewHeteroLayout(16, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Cols != 19 || l.CPURows != 17 || l.GPURows != 1 || l.SubRows != 17 {
		t.Fatalf("layout = %+v", l)
	}
	// Example 5 of the paper: nc=4, ng=2 → 9 columns, 6 CPU rows, 2 GPU
	// rows with 3 sub-rows each.
	l, err = NewHeteroLayout(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Cols != 9 || l.CPURows != 6 || l.GPURows != 2 || l.SubRows != 3 {
		t.Fatalf("Example 5 layout = %+v", l)
	}
	if _, err := NewHeteroLayout(0, 1, 0.5); err == nil {
		t.Fatal("nc=0 accepted")
	}
	if _, err := NewHeteroLayout(4, 2, 1.5); err == nil {
		t.Fatal("alpha>1 accepted")
	}
}

func TestPartitionHetero(t *testing.T) {
	m := randomMatrix(400, 300, 30000, 3)
	l, err := NewHeteroLayout(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := PartitionHetero(m, l)
	if err != nil {
		t.Fatal(err)
	}
	if hg.GPUNNZ+hg.CPUNNZ != m.NNZ() {
		t.Fatalf("regions hold %d+%d of %d", hg.GPUNNZ, hg.CPUNNZ, m.NNZ())
	}
	share := float64(hg.GPUNNZ) / float64(m.NNZ())
	if share < 0.45 || share > 0.55 {
		t.Fatalf("GPU share %v, want ~0.5", share)
	}
	// GPU region rows all strictly below SplitRow, CPU at or above.
	for _, b := range hg.GPU.Blocks {
		for _, rt := range b.Ratings {
			if rt.Row >= hg.SplitRow {
				t.Fatalf("GPU-region rating at row %d >= split %d", rt.Row, hg.SplitRow)
			}
		}
	}
	for _, b := range hg.CPU.Blocks {
		for _, rt := range b.Ratings {
			if rt.Row < hg.SplitRow {
				t.Fatalf("CPU-region rating at row %d < split %d", rt.Row, hg.SplitRow)
			}
		}
	}
	// Shared column bounds.
	for i := range hg.GPU.ColBounds {
		if hg.GPU.ColBounds[i] != hg.CPU.ColBounds[i] {
			t.Fatal("regions disagree on column bounds")
		}
	}
	// Super block returns SubRows blocks in the same column.
	super := hg.SuperBlock(1, 3)
	if len(super) != l.SubRows {
		t.Fatalf("super block has %d sub-blocks", len(super))
	}
	for _, b := range super {
		if b.Col != 3 {
			t.Fatalf("super block crosses columns")
		}
	}
}

func TestPartitionHeteroExtremes(t *testing.T) {
	m := randomMatrix(100, 100, 5000, 4)
	for _, alpha := range []float64{0, 1} {
		l, err := NewHeteroLayout(4, 1, alpha)
		if err != nil {
			t.Fatal(err)
		}
		hg, err := PartitionHetero(m, l)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if hg.GPUNNZ+hg.CPUNNZ != m.NNZ() {
			t.Fatalf("alpha=%v loses ratings", alpha)
		}
	}
	if _, err := PartitionHetero(sparse.New(5, 5), mustLayout(t)); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func mustLayout(t *testing.T) HeteroLayout {
	t.Helper()
	l, err := NewHeteroLayout(2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Property: PartitionHetero conserves ratings for arbitrary shapes and
// alphas.
func TestQuickHeteroConservation(t *testing.T) {
	f := func(seed int64, a uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 50 + rng.Intn(100)
		cols := 50 + rng.Intn(100)
		m := randomMatrix(rows, cols, 2000, seed)
		alpha := float64(a%101) / 100
		l, err := NewHeteroLayout(1+rng.Intn(8), 1+rng.Intn(3), alpha)
		if err != nil {
			return false
		}
		hg, err := PartitionHetero(m, l)
		if err != nil {
			return false
		}
		return hg.GPUNNZ+hg.CPUNNZ == m.NNZ() &&
			hg.GPU.NNZ() == hg.GPUNNZ && hg.CPU.NNZ() == hg.CPUNNZ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPackSOA checks the structure-of-arrays view matches each block's
// ratings element for element, that the slices are capped (appending to one
// block's view cannot clobber the next block's arena region), and that the
// AoS payload is released after packing.
func TestPackSOA(t *testing.T) {
	m := randomMatrix(120, 90, 3000, 5)
	g, err := Uniform(m, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]sparse.Rating, len(g.Blocks))
	for i, b := range g.Blocks {
		want[i] = append([]sparse.Rating(nil), b.Ratings...)
	}
	g.PackSOA()
	g.PackSOA() // idempotent
	total := 0
	for bi, b := range g.Blocks {
		if b.Ratings != nil {
			t.Fatalf("block (%d,%d): AoS payload not released after PackSOA", b.Band, b.Col)
		}
		if b.Size() != len(want[bi]) {
			t.Fatalf("block (%d,%d): Size()=%d after pack, want %d", b.Band, b.Col, b.Size(), len(want[bi]))
		}
		if len(b.SOA.Rows) != b.Size() || len(b.SOA.Cols) != b.Size() || len(b.SOA.Vals) != b.Size() {
			t.Fatalf("block (%d,%d): SOA lengths %d/%d/%d, want %d",
				b.Band, b.Col, len(b.SOA.Rows), len(b.SOA.Cols), len(b.SOA.Vals), b.Size())
		}
		if cap(b.SOA.Rows) != len(b.SOA.Rows) {
			t.Fatalf("block (%d,%d): SOA view not capacity-capped", b.Band, b.Col)
		}
		for i, rt := range want[bi] {
			if b.SOA.Rows[i] != rt.Row || b.SOA.Cols[i] != rt.Col || b.SOA.Vals[i] != rt.Value {
				t.Fatalf("block (%d,%d) rating %d: SOA (%d,%d,%v) != (%d,%d,%v)",
					b.Band, b.Col, i, b.SOA.Rows[i], b.SOA.Cols[i], b.SOA.Vals[i], rt.Row, rt.Col, rt.Value)
			}
		}
		total += b.Size()
	}
	if total != m.NNZ() {
		t.Fatalf("SOA covers %d ratings, want %d", total, m.NNZ())
	}
}

package grid

import (
	"fmt"

	"hsgd/internal/sparse"
)

// HeteroLayout captures the final nonuniform division strategy of
// Section VI (Figure 9):
//
//   - the matrix has Cols = nc + 2·ng + 1 column bands, so a GPU can always
//     prefetch a second block (stream overlap) and a finishing worker always
//     finds a spare column;
//   - the CPU region Rc (the bottom 1−α of the rating mass) has
//     CPURows = nc + ng row bands, so GPUs can join it in the dynamic phase
//     without breaking Rule 1;
//   - the GPU region Rg (the top α) has GPURowBands = ng row bands — large
//     blocks that saturate the GPU — and each band is further divided into
//     SubRows = ⌈(nc+ng)/ng⌉ sub-rows that become visible in the dynamic
//     phase when CPU threads join.
type HeteroLayout struct {
	NC      int     // CPU worker threads
	NG      int     // GPUs
	Alpha   float64 // fraction of the rating mass assigned to GPUs
	Cols    int     // nc + 2·ng + 1
	CPURows int     // nc + ng
	GPURows int     // ng
	SubRows int     // ⌈(nc+ng)/ng⌉ sub-rows per GPU row band
}

// NewHeteroLayout validates the worker counts and derives the Section VI
// dimensions.
func NewHeteroLayout(nc, ng int, alpha float64) (HeteroLayout, error) {
	if nc < 1 || ng < 1 {
		return HeteroLayout{}, fmt.Errorf("grid: hetero layout needs nc>=1 and ng>=1, got nc=%d ng=%d", nc, ng)
	}
	if alpha < 0 || alpha > 1 {
		return HeteroLayout{}, fmt.Errorf("grid: alpha %v outside [0,1]", alpha)
	}
	return HeteroLayout{
		NC:      nc,
		NG:      ng,
		Alpha:   alpha,
		Cols:    nc + 2*ng + 1,
		CPURows: nc + ng,
		GPURows: ng,
		SubRows: (nc + ng + ng - 1) / ng, // ⌈(nc+ng)/ng⌉
	}, nil
}

// WithCols overrides the layout's column-band count — the super-block
// granularity knob of the real engine's batched executors: each
// static-phase super-block is one GPU row band × one column band, so more
// columns mean smaller staged batches (finer pipeline interleaving, less
// work discarded at repartition) at the price of more scheduling round
// trips. Values at or below the paper's nc+2·ng+1 floor are clamped to it,
// preserving the spare-column guarantee of Section VI.
func (l HeteroLayout) WithCols(cols int) HeteroLayout {
	if cols > l.Cols {
		l.Cols = cols
	}
	return l
}

// HeteroGrid is the partitioned matrix: a GPU grid at sub-row granularity
// and a CPU grid, sharing a single set of column boundaries so that
// cross-region conflicts remain detectable by column band index.
type HeteroGrid struct {
	Layout   HeteroLayout
	GPU      *Grid // (GPURows·SubRows) × Cols, sub-row granularity
	CPU      *Grid // CPURows × Cols
	SplitRow int32 // rows < SplitRow belong to the GPU region
	GPUNNZ   int
	CPUNNZ   int
}

// SuperBlock returns the SubRows blocks that form the static-phase GPU
// block (gpu row band g × column band c) — the paper assigns the whole band
// to one GPU in the static phase and only exposes the sub-rows when the
// dynamic phase begins.
func (h *HeteroGrid) SuperBlock(g, c int) []*Block {
	out := make([]*Block, h.Layout.SubRows)
	for s := 0; s < h.Layout.SubRows; s++ {
		out[s] = h.GPU.Block(g*h.Layout.SubRows+s, c)
	}
	return out
}

// PartitionHetero applies the Section VI division: the top rows holding
// ~alpha of the rating mass become the GPU region, the rest the CPU region.
// Row boundaries are count-balanced within each region; column boundaries
// are count-balanced over the whole matrix and shared by both regions.
func PartitionHetero(m *sparse.Matrix, layout HeteroLayout) (*HeteroGrid, error) {
	if m.NNZ() == 0 {
		return nil, sparse.ErrEmpty
	}
	rowCounts := m.RowCounts()
	total := m.NNZ()
	target := int(layout.Alpha * float64(total))

	// Find the row split: smallest prefix of rows holding >= target ratings.
	splitRow := 0
	cum := 0
	for ; splitRow < len(rowCounts) && cum < target; splitRow++ {
		cum += rowCounts[splitRow]
	}
	// Keep at least one row per band on each side when alpha is interior.
	minGPU := layout.GPURows * layout.SubRows
	if layout.Alpha > 0 && splitRow < minGPU {
		splitRow = min(minGPU, m.Rows-layout.CPURows)
	}
	if layout.Alpha < 1 && m.Rows-splitRow < layout.CPURows {
		splitRow = m.Rows - layout.CPURows
	}
	if splitRow < 0 {
		splitRow = 0
	}

	colBounds := BoundsBalanced(m.ColCounts(), layout.Cols)

	gpuRowBounds := boundsBalancedRange(rowCounts, 0, splitRow, layout.GPURows*layout.SubRows)
	cpuRowBounds := boundsBalancedRange(rowCounts, splitRow, m.Rows, layout.CPURows)

	gpuM, cpuM := splitByRow(m, int32(splitRow))
	gpuGrid, err := Partition(gpuM, gpuRowBounds, colBounds)
	if err != nil {
		return nil, fmt.Errorf("grid: GPU region: %w", err)
	}
	cpuGrid, err := Partition(cpuM, cpuRowBounds, colBounds)
	if err != nil {
		return nil, fmt.Errorf("grid: CPU region: %w", err)
	}
	return &HeteroGrid{
		Layout:   layout,
		GPU:      gpuGrid,
		CPU:      cpuGrid,
		SplitRow: int32(splitRow),
		GPUNNZ:   gpuM.NNZ(),
		CPUNNZ:   cpuM.NNZ(),
	}, nil
}

// boundsBalancedRange balances bands over the id sub-range [lo, hi).
func boundsBalancedRange(counts []int, lo, hi, parts int) []int32 {
	sub := BoundsBalanced(counts[lo:hi], parts)
	out := make([]int32, len(sub))
	for i, b := range sub {
		out[i] = b + int32(lo)
	}
	return out
}

// splitByRow partitions ratings into (rows < split) and (rows >= split)
// matrices sharing the original dimensions.
func splitByRow(m *sparse.Matrix, split int32) (top, bottom *sparse.Matrix) {
	top = &sparse.Matrix{Rows: m.Rows, Cols: m.Cols}
	bottom = &sparse.Matrix{Rows: m.Rows, Cols: m.Cols}
	for _, r := range m.Ratings {
		if r.Row < split {
			top.Ratings = append(top.Ratings, r)
		} else {
			bottom.Ratings = append(bottom.Ratings, r)
		}
	}
	return top, bottom
}

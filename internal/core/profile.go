package core

import (
	"math/rand"

	"hsgd/internal/cost"
	"hsgd/internal/gpu"
)

// ratingBytes is the PCIe payload of one rating triple (int32,int32,float32).
const ratingBytes = 12

// measurementNoise is the relative jitter applied to profiled durations.
// The paper averages repeated measurements "to eliminate noise"; the
// simulator injects comparable noise so the averaging and the fit residuals
// are meaningful.
const measurementNoise = 0.01

// BuildProfile runs the offline phase of Algorithm 2 / Algorithm 3 against
// the simulated devices: it measures prefix-sized workloads and transfer
// probes on the device models (with measurement noise) and fits the
// Section V cost models plus the Qilin baseline to the observations. The
// functional forms the paper fits (linear, √log, log) do not match the
// simulator's latency+bandwidth curves exactly, so the fitted models carry a
// genuine approximation error — the gap the dynamic scheduler exists to
// absorb.
func BuildProfile(nnz int, gcfg gpu.Config, ccfg CPUConfig, seed int64) (*cost.Profile, error) {
	rng := rand.New(rand.NewSource(seed))
	jitter := func(t float64) float64 {
		return t * (1 + measurementNoise*(2*rng.Float64()-1))
	}
	opts := cost.DefaultProfileOptions()
	// Transfer probes beyond the dataset payload are pointless; cap the probe
	// list at ~4x the full dataset so τ detection stays in a realistic range.
	maxBytes := 4 * nnz * ratingBytes
	sizes := opts.TransferSizes[:0]
	for _, b := range cost.DefaultProfileOptions().TransferSizes {
		if b <= maxBytes || len(sizes) < 4 {
			sizes = append(sizes, b)
		}
	}
	opts.TransferSizes = sizes

	benches := cost.Benches{
		CPUKernel: func(n int) float64 { return jitter(ccfg.BlockTime(n)) },
		GPUKernel: func(n int) float64 { return jitter(gcfg.KernelTime(n, false)) },
		GPUE2E: func(n int) float64 {
			// End-to-end on a single resident chunk: transfers cannot overlap
			// the kernel of the same chunk, so Qilin observes the serial sum.
			h2d := gcfg.TransferTime(n*ratingBytes, gpu.HostToDevice)
			d2h := gcfg.TransferTime(n*ratingBytes/3, gpu.DeviceToHost)
			return jitter(h2d + gcfg.KernelTime(n, false) + d2h)
		},
		H2D:                func(b int) float64 { return jitter(gcfg.TransferTime(b, gpu.HostToDevice)) },
		D2H:                func(b int) float64 { return jitter(gcfg.TransferTime(b, gpu.DeviceToHost)) },
		H2DBytesPerElement: ratingBytes,
		D2HBytesPerElement: ratingBytes / 3.0,
	}
	return cost.BuildProfile(nnz, opts, benches)
}

// Package core implements the paper's training pipelines on the simulated
// heterogeneous system: CPU-Only (FPSGD), GPU-Only (cuMF_SGD-style), the
// straightforward HSGD baseline of Section IV-A, and HSGD* with its
// cost-model-driven nonuniform division and dynamic scheduling (Algorithm 2),
// plus the ablated variants HSGD*-M and HSGD*-Q used in Tables II and III.
//
// Every pipeline executes the real SGD arithmetic — RMSE trajectories are
// genuine — while durations come from the device models on the
// discrete-event clock, so "running time" is deterministic virtual time.
// A real-clock, goroutine-parallel FPSGD trainer is also provided for
// library users who just want fast MF on their CPU (see TrainReal).
package core

import (
	"fmt"

	"hsgd/internal/cost"
	"hsgd/internal/gpu"
	"hsgd/internal/grid"
	"hsgd/internal/progress"
	"hsgd/internal/sgd"
)

// Algorithm selects a training pipeline.
type Algorithm string

// The algorithms evaluated in the paper (Section VII).
const (
	CPUOnly   Algorithm = "cpu-only" // FPSGD on nc simulated CPU threads
	GPUOnly   Algorithm = "gpu-only" // cuMF_SGD-style streaming on the simulated GPUs
	HSGD      Algorithm = "hsgd"     // uniform division, GPU treated as one more worker
	HSGDStar  Algorithm = "hsgd*"    // nonuniform division + our cost model + dynamic scheduling
	HSGDStarM Algorithm = "hsgd*-m"  // our cost model, no dynamic scheduling (Table II/III)
	HSGDStarQ Algorithm = "hsgd*-q"  // Qilin cost model, no dynamic scheduling (Table II)
)

// CPUConfig models one CPU worker thread. Per Observation 2 the throughput
// of a CPU thread is flat in block size, so the model is a rate plus a small
// per-block scheduling overhead.
type CPUConfig struct {
	UpdatesPerSec    float64 // SGD updates per second per thread
	PerBlockOverhead float64 // seconds of scheduling overhead per block
}

// DefaultCPUConfig calibrates a thread to ~5M updates/s, the plateau of
// Figure 3b.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{UpdatesPerSec: 5e6, PerBlockOverhead: 20e-6}
}

// Scaled shrinks the size-dependent constants by s, matching
// gpu.Config.Scaled for scaled-down datasets.
func (c CPUConfig) Scaled(s float64) CPUConfig {
	c.PerBlockOverhead *= s
	return c
}

// BlockTime returns the simulated seconds one thread spends on a block of n
// ratings.
func (c CPUConfig) BlockTime(n int) float64 {
	return c.PerBlockOverhead + float64(n)/c.UpdatesPerSec
}

// Options configures a simulated training run.
type Options struct {
	Algorithm  Algorithm
	CPUThreads int // nc
	GPUs       int // ng
	Params     sgd.Params
	Schedule   sgd.Schedule // optional; nil means fixed γ from Params

	GPU gpu.Config // device model (WithWorkers / Scaled applied by caller)
	CPU CPUConfig

	Seed int64

	// TargetRMSE, when > 0, stops the run at the first epoch whose test RMSE
	// is ≤ the target (the termination rule of Section VII-A). The run also
	// stops after Params.Iters epochs regardless.
	TargetRMSE float64

	// Profile supplies a precomputed offline cost profile; nil builds one
	// from the device models (the offline phase of Algorithm 2).
	Profile *cost.Profile

	// EvalEvery sets the epoch interval between RMSE evaluations (default 1).
	EvalEvery int

	// MaxVirtualSeconds aborts runaway simulations; 0 disables the guard.
	MaxVirtualSeconds float64

	// PerfVariation is the relative systematic deviation of actual device
	// speed from the offline-profiled speed, drawn once per run per device
	// class from the seed. Real machines deviate from their profiles —
	// "the estimation may still be hard to exactly reflect the computing
	// power of devices given a different dataset" (Section VI-A) — and this
	// deviation is the gap the dynamic scheduling phase absorbs. Negative
	// disables; zero uses DefaultPerfVariation.
	PerfVariation float64

	// Trace, when non-nil, receives one event per scheduled task. Intended
	// for debugging and the scheduling-visualisation example.
	Trace func(TraceEvent)

	// Progress, when non-nil, receives one KindEpoch event per effective
	// pass over the ratings plus a final KindDone/KindInterrupted. Event
	// times are virtual seconds (the simulation's clock), not wall clock.
	Progress progress.Func
}

// TraceEvent describes one task execution on the virtual clock.
type TraceEvent struct {
	Issue  float64 // virtual time the task was issued
	Done   float64 // virtual time its locks were released
	Device string  // "cpuN" or "gpuN"
	Region string  // "cpu", "gpu", or "all" (uniform grids)
	NNZ    int
	Blocks int
	Stolen bool
	Warm   bool // GPU continued on its pinned band
	Epoch  int64
}

// DefaultPerfVariation is the run-time speed deviation used when
// Options.PerfVariation is zero.
const DefaultPerfVariation = 0.15

// Validate fills defaults and rejects inconsistent settings.
func (o *Options) Validate() error {
	if o.Params.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", o.Params.K)
	}
	if o.Params.Iters <= 0 {
		return fmt.Errorf("core: Iters must be positive, got %d", o.Params.Iters)
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	switch o.Algorithm {
	case CPUOnly:
		if o.CPUThreads < 1 {
			return fmt.Errorf("core: %s needs CPUThreads >= 1", o.Algorithm)
		}
	case GPUOnly:
		if o.GPUs < 1 {
			return fmt.Errorf("core: %s needs GPUs >= 1", o.Algorithm)
		}
	case HSGD, HSGDStar, HSGDStarM, HSGDStarQ:
		if o.CPUThreads < 1 || o.GPUs < 1 {
			return fmt.Errorf("core: %s needs CPUThreads >= 1 and GPUs >= 1", o.Algorithm)
		}
	default:
		return fmt.Errorf("core: unknown algorithm %q", o.Algorithm)
	}
	if o.GPUs > 0 {
		if err := o.GPU.Validate(); err != nil {
			return err
		}
	}
	if o.CPUThreads > 0 && o.CPU.UpdatesPerSec <= 0 {
		return fmt.Errorf("core: CPU.UpdatesPerSec must be positive")
	}
	return nil
}

// EvalPoint is one RMSE measurement on the virtual clock.
type EvalPoint struct {
	Time  float64 // virtual seconds since training started
	Epoch int
	RMSE  float64
}

// Report summarises a simulated run.
type Report struct {
	Algorithm      Algorithm
	VirtualSeconds float64
	Epochs         int
	FinalRMSE      float64
	TargetReached  bool
	TimeToTarget   float64
	History        []EvalPoint
	Interrupted    bool // run was stopped by context cancellation/deadline

	// Workload split (HSGD* variants).
	Alpha    float64
	GPUShare float64 // fraction of ratings in the GPU region
	CPUShare float64

	// Scheduling detail.
	UpdateStats  grid.UpdateStats // distribution of per-block update counts
	StolenByCPU  int64
	StolenByGPU  int64
	TotalUpdates int64
}

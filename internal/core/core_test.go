package core

import (
	"context"
	"math"
	"testing"

	"hsgd/internal/dataset"
	"hsgd/internal/gpu"
)

// testSetup generates a small MovieLens-shaped dataset and matching device
// configs.
func testSetup(t *testing.T, scale float64) (spec dataset.Spec, opts func(Algorithm) Options) {
	t.Helper()
	spec = dataset.MovieLens().Scale(scale)
	spec.K = 16
	deviceScale := 0.01 * scale
	return spec, func(alg Algorithm) Options {
		p := spec.Params()
		p.K = 16
		p.Iters = 5
		return Options{
			Algorithm:  alg,
			CPUThreads: 16,
			GPUs:       1,
			Params:     p,
			GPU:        gpu.DefaultConfig().Scaled(deviceScale),
			CPU:        DefaultCPUConfig().Scaled(deviceScale),
			Seed:       7,
		}
	}
}

func TestTrainAllAlgorithmsRun(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.1)
	train, test, err := dataset.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{CPUOnly, GPUOnly, HSGD, HSGDStar, HSGDStarM, HSGDStarQ} {
		rep, f, err := Train(context.Background(), train, test, mkOpts(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.Epochs != 5 {
			t.Fatalf("%s ran %d epochs", alg, rep.Epochs)
		}
		if rep.VirtualSeconds <= 0 {
			t.Fatalf("%s virtual time %v", alg, rep.VirtualSeconds)
		}
		if math.IsNaN(rep.FinalRMSE) || rep.FinalRMSE <= 0 {
			t.Fatalf("%s RMSE %v", alg, rep.FinalRMSE)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s factors invalid: %v", alg, err)
		}
		// Total updates must equal epochs × nnz (every rating once per
		// epoch) — exactly for quota scheduling, approximately for
		// free-running.
		want := float64(5 * train.NNZ())
		got := float64(rep.TotalUpdates)
		if got < want*0.95 || got > want*1.3 {
			t.Fatalf("%s processed %v updates, want ~%v", alg, got, want)
		}
	}
}

func TestTrainingImprovesRMSE(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.1)
	train, test, err := dataset.Generate(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := mkOpts(HSGDStar)
	opt.Params.Iters = 10
	rep, _, err := Train(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.History) < 2 {
		t.Fatalf("history too short: %d", len(rep.History))
	}
	first := rep.History[0].RMSE
	last := rep.History[len(rep.History)-1].RMSE
	if last >= first {
		t.Fatalf("RMSE did not improve: %v -> %v", first, last)
	}
}

func TestDeterminism(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.05)
	train, test, err := dataset.Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	r1, f1, err := Train(context.Background(), train, test, mkOpts(HSGDStar))
	if err != nil {
		t.Fatal(err)
	}
	r2, f2, err := Train(context.Background(), train, test, mkOpts(HSGDStar))
	if err != nil {
		t.Fatal(err)
	}
	if r1.VirtualSeconds != r2.VirtualSeconds || r1.FinalRMSE != r2.FinalRMSE {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v",
			r1.VirtualSeconds, r1.FinalRMSE, r2.VirtualSeconds, r2.FinalRMSE)
	}
	for i := range f1.P {
		if f1.P[i] != f2.P[i] {
			t.Fatal("factors differ between identical runs")
		}
	}
}

func TestHSGDStarFastest(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.2)
	train, test, err := dataset.Generate(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	times := map[Algorithm]float64{}
	for _, alg := range []Algorithm{CPUOnly, GPUOnly, HSGDStar} {
		rep, _, err := Train(context.Background(), train, test, mkOpts(alg))
		if err != nil {
			t.Fatal(err)
		}
		times[alg] = rep.VirtualSeconds
	}
	if times[HSGDStar] >= times[CPUOnly] {
		t.Fatalf("HSGD* (%v) not faster than CPU-Only (%v)", times[HSGDStar], times[CPUOnly])
	}
	if times[HSGDStar] >= times[GPUOnly] {
		t.Fatalf("HSGD* (%v) not faster than GPU-Only (%v)", times[HSGDStar], times[GPUOnly])
	}
}

// Fig 10 shape: GPU-Only must speed up substantially from 32 to 512
// parallel workers, crossing CPU-Only somewhere in between.
func TestGPUWorkerScalingShape(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.2)
	train, test, err := dataset.Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _, err := Train(context.Background(), train, test, mkOpts(CPUOnly))
	if err != nil {
		t.Fatal(err)
	}
	gpuTime := map[int]float64{}
	for _, w := range []int{32, 512} {
		opt := mkOpts(GPUOnly)
		opt.GPU = opt.GPU.WithWorkers(w)
		rep, _, err := Train(context.Background(), train, test, opt)
		if err != nil {
			t.Fatal(err)
		}
		gpuTime[w] = rep.VirtualSeconds
	}
	if gpuTime[32] <= cpu.VirtualSeconds {
		t.Fatalf("GPU-Only@32 (%v) should lose to CPU-Only (%v)", gpuTime[32], cpu.VirtualSeconds)
	}
	if gpuTime[512] >= cpu.VirtualSeconds {
		t.Fatalf("GPU-Only@512 (%v) should beat CPU-Only (%v)", gpuTime[512], cpu.VirtualSeconds)
	}
	if gpuTime[512] >= gpuTime[32] {
		t.Fatal("more workers did not help")
	}
}

// Example 3 / Fig 13: the free-running HSGD baseline develops update skew
// that the quota-scheduled HSGD* avoids.
func TestHSGDUpdateSkewVsHSGDStar(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.2)
	train, test, err := dataset.Generate(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	repH, _, err := Train(context.Background(), train, test, mkOpts(HSGD))
	if err != nil {
		t.Fatal(err)
	}
	repS, _, err := Train(context.Background(), train, test, mkOpts(HSGDStar))
	if err != nil {
		t.Fatal(err)
	}
	skewH := float64(repH.UpdateStats.Max) - float64(repH.UpdateStats.Min)
	skewS := float64(repS.UpdateStats.Max) - float64(repS.UpdateStats.Min)
	if skewS > skewH {
		t.Fatalf("HSGD* skew (%v) exceeds HSGD skew (%v)", skewS, skewH)
	}
	// Quota scheduling bounds the spread to lookahead+1 (the run may halt
	// mid-quota); free-running HSGD has no such bound.
	if skewS > 2 {
		t.Fatalf("HSGD* update spread %v, want <= 2", skewS)
	}
}

func TestTargetRMSEStopsEarly(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.1)
	train, test, err := dataset.Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	// First find the RMSE after 2 epochs, then re-run targeting it.
	probe := mkOpts(CPUOnly)
	probe.Params.Iters = 2
	rep, _, err := Train(context.Background(), train, test, probe)
	if err != nil {
		t.Fatal(err)
	}
	opt := mkOpts(CPUOnly)
	opt.Params.Iters = 50
	opt.TargetRMSE = rep.FinalRMSE
	rep2, _, err := Train(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.TargetReached {
		t.Fatal("target never reached")
	}
	if rep2.Epochs > 3 {
		t.Fatalf("ran %d epochs for a 2-epoch target", rep2.Epochs)
	}
	if rep2.TimeToTarget <= 0 || rep2.TimeToTarget > rep2.VirtualSeconds {
		t.Fatalf("TimeToTarget = %v", rep2.TimeToTarget)
	}
}

func TestAlphaShares(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.1)
	train, test, err := dataset.Generate(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := Train(context.Background(), train, test, mkOpts(HSGDStarM))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alpha <= 0 || rep.Alpha >= 1 {
		t.Fatalf("alpha = %v", rep.Alpha)
	}
	if math.Abs(rep.GPUShare-rep.Alpha) > 0.05 {
		t.Fatalf("GPU share %v far from alpha %v", rep.GPUShare, rep.Alpha)
	}
	if math.Abs(rep.GPUShare+rep.CPUShare-1) > 1e-9 {
		t.Fatalf("shares do not sum to 1: %v + %v", rep.GPUShare, rep.CPUShare)
	}
}

func TestOptionsValidation(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.05)
	train, test, err := dataset.Generate(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	bad := mkOpts(HSGDStar)
	bad.GPUs = 0
	if _, _, err := Train(context.Background(), train, test, bad); err == nil {
		t.Fatal("HSGD* without GPUs accepted")
	}
	bad = mkOpts(CPUOnly)
	bad.Params.K = 0
	if _, _, err := Train(context.Background(), train, test, bad); err == nil {
		t.Fatal("K=0 accepted")
	}
	bad = mkOpts(CPUOnly)
	bad.Algorithm = "nope"
	if _, _, err := Train(context.Background(), train, test, bad); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	empty := mkOpts(CPUOnly)
	if _, _, err := Train(context.Background(), train.Clone(), test, empty); err != nil {
		t.Fatal(err)
	}
	trainEmpty := train.Clone()
	trainEmpty.Ratings = nil
	if _, _, err := Train(context.Background(), trainEmpty, test, mkOpts(CPUOnly)); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestNilTestSet(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.05)
	train, _, err := dataset.Generate(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := Train(context.Background(), train, nil, mkOpts(HSGDStar))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 5 {
		t.Fatalf("epochs = %d", rep.Epochs)
	}
}

func TestTraceHook(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.05)
	train, test, err := dataset.Generate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := mkOpts(HSGDStar)
	var events int
	var gpuEvents int
	opt.Trace = func(ev TraceEvent) {
		events++
		if ev.Device == "gpu0" {
			gpuEvents++
		}
		if ev.Done < ev.Issue {
			t.Fatalf("event travels back in time: %+v", ev)
		}
	}
	if _, _, err := Train(context.Background(), train, test, opt); err != nil {
		t.Fatal(err)
	}
	if events == 0 || gpuEvents == 0 {
		t.Fatalf("trace saw %d events (%d GPU)", events, gpuEvents)
	}
}

func TestBuildProfileFromDevices(t *testing.T) {
	// Device constants scaled to the dataset size, as Train does.
	p, err := BuildProfile(100_000, gpu.DefaultConfig().Scaled(0.001), DefaultCPUConfig().Scaled(0.001), 1)
	if err != nil {
		t.Fatal(err)
	}
	// CPU model slope should approximate 1/5e6 within noise.
	if got := p.CPU.A; math.Abs(got-2e-7)/2e-7 > 0.1 {
		t.Fatalf("CPU slope %v", got)
	}
	// The GPU model must predict more time for more work.
	if p.GPU.Time(10_000) >= p.GPU.Time(90_000) {
		t.Fatal("GPU model not monotone")
	}
}

func TestTrainParallelReal(t *testing.T) {
	spec, _ := testSetup(t, 0.1)
	train, test, err := dataset.Generate(spec, 12)
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Params()
	p.K = 16
	p.Iters = 5
	rep, f, err := TrainReal(context.Background(), train, RealOptions{
		Threads: 4,
		Params:  p,
		Seed:    7,
		Test:    test,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs < 5 {
		t.Fatalf("epochs = %d", rep.Epochs)
	}
	if rep.FinalRMSE <= 0 || math.IsNaN(rep.FinalRMSE) {
		t.Fatalf("RMSE = %v", rep.FinalRMSE)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.History) < 5 {
		t.Fatalf("history has %d points", len(rep.History))
	}
	// The wall-clock run must genuinely train.
	if rep.History[len(rep.History)-1].RMSE >= rep.History[0].RMSE {
		t.Fatal("real trainer did not improve RMSE")
	}
}

func TestTrainParallelRealValidation(t *testing.T) {
	spec, _ := testSetup(t, 0.05)
	train, _, err := dataset.Generate(spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TrainReal(context.Background(), train, RealOptions{Threads: 2}); err == nil {
		t.Fatal("zero params accepted")
	}
	empty := train.Clone()
	empty.Ratings = nil
	p := spec.Params()
	p.K = 4
	if _, _, err := TrainReal(context.Background(), empty, RealOptions{Threads: 2, Params: p}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

// Example 5 of the paper: 4 CPU threads and 2 GPUs — the multi-GPU layout
// (9 columns, 6 CPU rows, 2 GPU bands of 3 sub-rows) must train correctly.
func TestMultiGPU(t *testing.T) {
	spec, mkOpts := testSetup(t, 0.1)
	train, test, err := dataset.Generate(spec, 14)
	if err != nil {
		t.Fatal(err)
	}
	opt := mkOpts(HSGDStar)
	opt.CPUThreads = 4
	opt.GPUs = 2
	rep, f, err := Train(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 5 {
		t.Fatalf("epochs = %d", rep.Epochs)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two GPUs must beat one on the same workload.
	opt1 := mkOpts(HSGDStar)
	opt1.CPUThreads = 4
	opt1.GPUs = 1
	rep1, _, err := Train(context.Background(), train, test, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VirtualSeconds >= rep1.VirtualSeconds {
		t.Fatalf("2 GPUs (%v) not faster than 1 (%v)", rep.VirtualSeconds, rep1.VirtualSeconds)
	}
}

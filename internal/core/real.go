package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"hsgd/internal/grid"
	"hsgd/internal/model"
	"hsgd/internal/sched"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RealOptions configures TrainReal, the wall-clock goroutine-parallel FPSGD
// trainer for library users (no GPU, no simulation).
type RealOptions struct {
	Threads  int
	Params   sgd.Params
	Schedule sgd.Schedule // optional; nil means fixed γ
	Seed     int64

	// Test, when non-nil, is evaluated at every epoch boundary (workers are
	// quiesced first, so the evaluation is race-free).
	Test *sparse.Matrix
	// TargetRMSE stops training early once the test RMSE reaches it.
	TargetRMSE float64
}

// RealReport summarises a wall-clock run.
type RealReport struct {
	Seconds      float64
	Epochs       int
	FinalRMSE    float64
	History      []EvalPoint
	TotalUpdates int64
}

// realRun shares the scheduler and epoch state between worker goroutines.
type realRun struct {
	mu       sync.Mutex
	cond     *sync.Cond
	sched    *sched.Uniform
	epoch    int
	gamma    float32
	active   int  // workers currently processing a block
	evaluate bool // an epoch boundary is being evaluated; workers must wait
	done     bool
}

// TrainReal runs FPSGD on real goroutines: Rule 1 grid, least-updates block
// selection under a mutex, and per-epoch quiescent evaluation. It returns
// genuine wall-clock timings.
func TrainReal(train *sparse.Matrix, opt RealOptions) (*RealReport, *model.Factors, error) {
	if opt.Threads < 1 {
		opt.Threads = runtime.GOMAXPROCS(0)
	}
	if opt.Params.K <= 0 || opt.Params.Iters <= 0 {
		return nil, nil, fmt.Errorf("core: invalid params (k=%d iters=%d)", opt.Params.K, opt.Params.Iters)
	}
	if train.NNZ() == 0 {
		return nil, nil, sparse.ErrEmpty
	}
	schedule := opt.Schedule
	if schedule == nil {
		schedule = sgd.FixedSchedule(opt.Params.Gamma)
	}
	rows, cols := grid.Rule1(opt.Threads, 0)
	g, err := grid.Uniform(train, rows, cols)
	if err != nil {
		return nil, nil, err
	}
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, newRand(opt.Seed))

	run := &realRun{sched: sched.NewUniform(g), gamma: schedule.Rate(0)}
	run.cond = sync.NewCond(&run.mu)
	report := &RealReport{}
	nnz := int64(train.NNZ())
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < opt.Threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				run.mu.Lock()
				for run.evaluate && !run.done {
					run.cond.Wait()
				}
				if run.done {
					run.mu.Unlock()
					return
				}
				task, ok := run.sched.Acquire(worker, -1, true)
				gamma := run.gamma
				if ok {
					run.active++
				}
				run.mu.Unlock()
				if !ok {
					// Everything eligible is locked; yield and retry.
					runtime.Gosched()
					continue
				}
				for _, rs := range task.Ratings() {
					sgd.UpdateBlock(f, rs, opt.Params.LambdaP, opt.Params.LambdaQ, gamma)
				}
				run.mu.Lock()
				run.sched.Release(task)
				run.active--
				if run.sched.TotalUpdates >= int64(run.epoch+1)*nnz && !run.evaluate && !run.done {
					// This worker crossed the epoch boundary: quiesce and
					// evaluate.
					run.evaluate = true
					for run.active > 0 {
						run.cond.Wait()
					}
					run.epoch++
					run.gamma = schedule.Rate(run.epoch)
					if opt.Test != nil {
						rmse := model.RMSE(f, opt.Test)
						report.History = append(report.History, EvalPoint{
							Time:  time.Since(start).Seconds(),
							Epoch: run.epoch,
							RMSE:  rmse,
						})
						report.FinalRMSE = rmse
						if opt.TargetRMSE > 0 && rmse <= opt.TargetRMSE {
							run.done = true
						}
					}
					if run.epoch >= opt.Params.Iters {
						run.done = true
					}
					run.evaluate = false
					run.cond.Broadcast()
				} else {
					run.cond.Broadcast()
				}
				run.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	report.Seconds = time.Since(start).Seconds()
	report.Epochs = run.epoch
	report.TotalUpdates = run.sched.TotalUpdates
	if opt.Test != nil && len(report.History) == 0 {
		report.FinalRMSE = model.RMSE(f, opt.Test)
	}
	return report, f, nil
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"hsgd/internal/engine"
	"hsgd/internal/grid"
	"hsgd/internal/model"
	"hsgd/internal/sched"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RealOptions configures TrainReal, the wall-clock goroutine-parallel FPSGD
// trainer for library users (no GPU, no simulation).
type RealOptions struct {
	Threads  int
	Params   sgd.Params
	Schedule sgd.Schedule // optional; nil means fixed γ
	Seed     int64

	// Test, when non-nil, is evaluated at every epoch boundary (workers are
	// quiesced first, so the evaluation is race-free).
	Test *sparse.Matrix
	// TargetRMSE stops training early once the test RMSE reaches it.
	TargetRMSE float64
}

// RealReport summarises a wall-clock run.
type RealReport struct {
	Seconds      float64
	Epochs       int
	FinalRMSE    float64
	History      []EvalPoint
	TotalUpdates int64
	Interrupted  bool // run was stopped by context cancellation/deadline
}

// TrainReal runs wall-clock FPSGD on the lock-striped training engine
// (internal/engine): per-band atomic block acquisition, the fused SoA update
// kernel, and a quiescence barrier for per-epoch evaluation. It keeps the
// original mutex-scheduler API; new code that needs checkpointing,
// warm-start resume, or progress streaming should call engine.Train (or the
// public hsgd.Trainer) directly.
//
// Cancellation follows engine.Train's convention: an interrupted run
// returns the partial report and best-so-far factors together with the
// context error.
func TrainReal(ctx context.Context, train *sparse.Matrix, opt RealOptions) (*RealReport, *model.Factors, error) {
	rep, f, err := engine.Train(ctx, train, engine.Options{
		Threads:    opt.Threads,
		Params:     opt.Params,
		Schedule:   opt.Schedule,
		Seed:       opt.Seed,
		Test:       opt.Test,
		TargetRMSE: opt.TargetRMSE,
	})
	if rep == nil {
		return nil, nil, err
	}
	out := &RealReport{
		Seconds:      rep.Seconds,
		Epochs:       rep.Epochs,
		FinalRMSE:    rep.FinalRMSE,
		TotalUpdates: rep.TotalUpdates,
		Interrupted:  rep.Interrupted,
	}
	for _, p := range rep.History {
		out.History = append(out.History, EvalPoint{Time: p.Time, Epoch: p.Epoch, RMSE: p.RMSE})
	}
	return out, f, err
}

// legacyRun shares the scheduler and epoch state between worker goroutines.
type legacyRun struct {
	mu       sync.Mutex
	cond     *sync.Cond
	sched    *sched.Uniform
	epoch    int
	gamma    float32
	active   int  // workers currently processing a block
	evaluate bool // an epoch boundary is being evaluated; workers must wait
	done     bool
}

// TrainRealLegacy is the pre-engine wall-clock trainer: every block acquire
// and release serializes through one global mutex + condition variable, and
// a worker that finds all candidates locked busy-spins via runtime.Gosched.
// It is retained as the regression baseline the engine benchmarks against
// (BenchmarkEngineVsLegacy, cmd/hsgd-bench); applications should use
// TrainReal.
func TrainRealLegacy(train *sparse.Matrix, opt RealOptions) (*RealReport, *model.Factors, error) {
	if opt.Threads < 1 {
		opt.Threads = runtime.GOMAXPROCS(0)
	}
	if opt.Params.K <= 0 || opt.Params.Iters <= 0 {
		return nil, nil, fmt.Errorf("core: invalid params (k=%d iters=%d)", opt.Params.K, opt.Params.Iters)
	}
	if train.NNZ() == 0 {
		return nil, nil, sparse.ErrEmpty
	}
	schedule := opt.Schedule
	if schedule == nil {
		schedule = sgd.FixedSchedule(opt.Params.Gamma)
	}
	rows, cols := grid.Rule1(opt.Threads, 0)
	g, err := grid.Uniform(train, rows, cols)
	if err != nil {
		return nil, nil, err
	}
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, newRand(opt.Seed))

	run := &legacyRun{sched: sched.NewUniform(g), gamma: schedule.Rate(0)}
	run.cond = sync.NewCond(&run.mu)
	report := &RealReport{}
	nnz := int64(train.NNZ())
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < opt.Threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				run.mu.Lock()
				for run.evaluate && !run.done {
					run.cond.Wait()
				}
				if run.done {
					run.mu.Unlock()
					return
				}
				task, ok := run.sched.Acquire(worker, -1, true)
				gamma := run.gamma
				if ok {
					run.active++
				}
				run.mu.Unlock()
				if !ok {
					// Everything eligible is locked; yield and retry.
					runtime.Gosched()
					continue
				}
				for _, rs := range task.Ratings() {
					sgd.UpdateBlock(f, rs, opt.Params.LambdaP, opt.Params.LambdaQ, gamma)
				}
				run.mu.Lock()
				run.sched.Release(task)
				run.active--
				if run.sched.TotalUpdates >= int64(run.epoch+1)*nnz && !run.evaluate && !run.done {
					// This worker crossed the epoch boundary: quiesce and
					// evaluate.
					run.evaluate = true
					for run.active > 0 {
						run.cond.Wait()
					}
					run.epoch++
					run.gamma = schedule.Rate(run.epoch)
					if opt.Test != nil {
						rmse := model.RMSE(f, opt.Test)
						report.History = append(report.History, EvalPoint{
							Time:  time.Since(start).Seconds(),
							Epoch: run.epoch,
							RMSE:  rmse,
						})
						report.FinalRMSE = rmse
						if opt.TargetRMSE > 0 && rmse <= opt.TargetRMSE {
							run.done = true
						}
					}
					if run.epoch >= opt.Params.Iters {
						run.done = true
					}
					run.evaluate = false
					run.cond.Broadcast()
				} else {
					run.cond.Broadcast()
				}
				run.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	report.Seconds = time.Since(start).Seconds()
	report.Epochs = run.epoch
	report.TotalUpdates = run.sched.TotalUpdates
	if opt.Test != nil && len(report.History) == 0 {
		report.FinalRMSE = model.RMSE(f, opt.Test)
	}
	return report, f, nil
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"hsgd/internal/cost"
	"hsgd/internal/engine"
	"hsgd/internal/gpu"
	"hsgd/internal/grid"
	"hsgd/internal/model"
	"hsgd/internal/progress"
	"hsgd/internal/sched"
	"hsgd/internal/sgd"
	"hsgd/internal/sim"
	"hsgd/internal/sparse"
)

// Train runs the selected pipeline on the simulated heterogeneous system
// and returns the run report and the trained factors. The SGD arithmetic is
// executed for real in the virtual-time order the device models dictate, so
// the returned factors and every RMSE in the report are genuine.
//
// Cancellation is observed at task-release boundaries on the virtual clock:
// when ctx fires, the simulation halts, and Train returns the partial
// report (Interrupted=true) and the factors trained so far together with
// the context error.
func Train(ctx context.Context, train, test *sparse.Matrix, opt Options) (*Report, *model.Factors, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	if train.NNZ() == 0 {
		return nil, nil, sparse.ErrEmpty
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	var mean float64
	for _, r := range train.Ratings {
		mean += float64(r.Value)
	}
	mean /= float64(train.NNZ())
	f := model.NewFactorsMean(train.Rows, train.Cols, opt.Params.K, mean, rng)

	t := &trainer{
		ctx:      ctx,
		opt:      opt,
		eng:      sim.New(),
		f:        f,
		test:     test,
		nnz:      int64(train.NNZ()),
		schedule: opt.Schedule,
		gamma:    opt.Params.Gamma,
		report:   &Report{Algorithm: opt.Algorithm, CPUShare: 1},
	}
	if t.schedule == nil {
		t.schedule = sgd.FixedSchedule(opt.Params.Gamma)
	}
	t.gamma = t.schedule.Rate(0)
	// Adaptive schedules (bold driver) observe a loss at every epoch
	// boundary, mirroring the real engine: the test RMSE when a test set
	// exists, otherwise the RMSE over a fixed training sample.
	t.observer, _ = t.schedule.(engine.LossObserver)
	if t.observer != nil && test == nil {
		t.lossSample = engine.LossSample(train)
	}

	// Run-time device speeds deviate from the offline profile (systematic,
	// per device class) plus a little per-block jitter; see
	// Options.PerfVariation.
	v := opt.PerfVariation
	if v == 0 {
		v = DefaultPerfVariation
	}
	if v > 0 {
		perfRng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
		t.cpuFactor = 1 + v*(2*perfRng.Float64()-1)
		t.gpuFactor = 1 + v*(2*perfRng.Float64()-1)
		t.jitterRng = perfRng
	} else {
		t.cpuFactor, t.gpuFactor = 1, 1
	}

	if err := t.setup(train); err != nil {
		return nil, nil, err
	}
	if err := t.run(); err != nil {
		return nil, nil, err
	}
	if t.report.Interrupted {
		opt.Progress.Emit(t.progressEvent(progress.KindInterrupted))
		return t.report, f, context.Cause(ctx)
	}
	opt.Progress.Emit(t.progressEvent(progress.KindDone))
	return t.report, f, nil
}

// gpuActor is the per-GPU simulation state: its stream pipeline, the number
// of in-flight tasks (at most two: one transferring, one computing), and the
// row band whose P segment is resident on the device.
type gpuActor struct {
	id             int
	pipe           *gpu.Pipeline
	inflight       int
	stolenInflight int // in-flight blocks stolen from the CPU region
	pinned         int // RowBandKey of the resident P segment, -1 when none
	idle           bool
}

// maxInflight is the pipeline depth per GPU: the current block plus the one
// being prefetched ("the GPU can always know not only the current block but
// also the next block", Section VI-B).
const maxInflight = 2

type trainer struct {
	ctx        context.Context
	opt        Options
	eng        *sim.Engine
	f          *model.Factors
	test       *sparse.Matrix
	nnz        int64
	schedule   sgd.Schedule
	observer   engine.LossObserver
	lossSample *sparse.Matrix
	gamma      float32

	uni *sched.Uniform
	het *sched.Hetero

	gpus      []*gpuActor
	cpuIsIdle []bool

	epoch  int
	halted bool
	report *Report

	// Run-time deviation from the offline profile.
	cpuFactor float64
	gpuFactor float64
	jitterRng *rand.Rand
}

// jitter applies ±2% per-block noise on top of the systematic device factor.
func (t *trainer) jitter(d, factor float64) float64 {
	d /= factor
	if t.jitterRng != nil {
		d *= 1 + 0.02*(2*t.jitterRng.Float64()-1)
	}
	return d
}

// setup builds the grid and scheduler for the selected algorithm.
func (t *trainer) setup(train *sparse.Matrix) error {
	nc, ng := t.opt.CPUThreads, t.opt.GPUs
	switch t.opt.Algorithm {
	case CPUOnly:
		rows, cols := grid.Rule1(nc, 0)
		g, err := grid.Uniform(train, rows, cols)
		if err != nil {
			return err
		}
		t.uni = sched.NewUniform(g)
		ng = 0
	case GPUOnly:
		// GPU-Only "varies the number of rows and columns for the matrix
		// division and adopts the best one" (Section VII): with only GPUs
		// the best division is the coarsest that still permits stream
		// prefetching — big blocks saturate the device (Observation 1).
		g, err := grid.Uniform(train, ng+1, 2*ng+1)
		if err != nil {
			return err
		}
		t.uni = sched.NewUniform(g)
		nc = 0
	case HSGD:
		rows, cols := grid.Rule1(nc, ng)
		g, err := grid.Uniform(train, rows, cols)
		if err != nil {
			return err
		}
		t.uni = sched.NewUniform(g)
	case HSGDStar, HSGDStarM, HSGDStarQ:
		profile := t.opt.Profile
		if profile == nil {
			var err error
			profile, err = BuildProfile(train.NNZ(), t.opt.GPU, t.opt.CPU, t.opt.Seed)
			if err != nil {
				return fmt.Errorf("core: offline profiling: %w", err)
			}
		}
		tg := profile.GPU.Time
		if t.opt.Algorithm == HSGDStarQ {
			tg = profile.QilinGPU.Time
		}
		alpha := cost.SolveAlpha(tg, profile.CPU.Time, float64(t.nnz), nc, ng)
		layout, err := grid.NewHeteroLayout(nc, ng, alpha)
		if err != nil {
			return err
		}
		hg, err := grid.PartitionHetero(train, layout)
		if err != nil {
			return err
		}
		t.het = sched.NewHetero(hg, t.opt.Algorithm == HSGDStar)
		t.het.MinGPUSteal = gpuStealBreakEven(profile)
		t.het.MinCPUStealRemaining = cpuStealThreshold(profile, hg)
		t.het.MinGPUStealRemaining = gpuStealRemainingThreshold(profile, hg, nc)
		t.het.MaxCPUThieves = (nc + 7) / 8
		if !cpuStealProfitable(hg, t.opt.GPU, t.opt.Params.K) {
			// Once a CPU thread steals, the whole band degrades to sub-row
			// granularity and every sub-block re-transfers the Q segment
			// its band's super-block would have moved once. That extra
			// traffic hides under the kernel stream as long as sub-mode
			// stays compute-bound; when it would saturate the PCIe bus the
			// GPU's throughput collapses and thieves cost more than they
			// contribute — keep the dynamic phase GPU-sided only.
			t.het.MinCPUStealRemaining = 1 << 62
		}
		t.report.Alpha = alpha
		t.report.GPUShare = float64(hg.GPUNNZ) / float64(t.nnz)
		t.report.CPUShare = float64(hg.CPUNNZ) / float64(t.nnz)
	}
	t.cpuIsIdle = make([]bool, nc)
	t.gpus = make([]*gpuActor, ng)
	for i := range t.gpus {
		t.gpus[i] = &gpuActor{id: i, pipe: gpu.NewPipeline(), pinned: -1}
	}
	return nil
}

// run starts every worker and drives the event loop to completion.
func (t *trainer) run() error {
	for i := range t.cpuIsIdle {
		t.cpuTry(i)
	}
	for _, g := range t.gpus {
		t.gpuTry(g)
	}
	t.eng.Run()
	if !t.halted {
		return fmt.Errorf("core: %s stalled at epoch %d/%d (scheduler deadlock)",
			t.opt.Algorithm, t.epoch, t.opt.Params.Iters)
	}
	t.finish()
	return nil
}

// totalUpdates reads the live update counter of whichever scheduler runs.
func (t *trainer) totalUpdates() int64 {
	if t.uni != nil {
		return t.uni.TotalUpdates
	}
	return t.het.TotalUpdates
}

// progressEvent assembles a progress event from the simulation's state.
// Elapsed and UpdatesPerSec are in virtual time — the quantity the paper's
// figures plot — not wall clock.
func (t *trainer) progressEvent(kind progress.Kind) progress.Event {
	now := t.eng.Now()
	updates := t.totalUpdates()
	var rate float64
	if now > 0 {
		rate = float64(updates) / now
	}
	return progress.Event{
		Kind:          kind,
		Algorithm:     "sim",
		Time:          time.Now(),
		Epoch:         t.epoch,
		TotalEpochs:   t.opt.Params.Iters,
		RMSE:          t.report.FinalRMSE,
		TotalUpdates:  updates,
		UpdatesPerSec: rate,
		Elapsed:       time.Duration(now * float64(time.Second)),
	}
}

func (t *trainer) finish() {
	t.report.VirtualSeconds = t.eng.Now()
	t.report.Epochs = t.epoch
	if len(t.report.History) == 0 && t.test != nil {
		t.report.FinalRMSE = model.RMSE(t.f, t.test)
	}
	if t.uni != nil {
		t.report.UpdateStats = grid.ComputeUpdateStats(t.uni.Grid.Blocks)
		t.report.TotalUpdates = t.uni.TotalUpdates
	} else {
		t.report.UpdateStats = grid.ComputeUpdateStats(t.het.Blocks())
		t.report.TotalUpdates = t.het.TotalUpdates
		t.report.StolenByCPU = t.het.StolenByCPU
		t.report.StolenByGPU = t.het.StolenByGPU
	}
}

func (t *trainer) acquireCPU(worker int) (*sched.Task, bool) {
	if t.uni != nil {
		return t.uni.Acquire(worker, -1, true)
	}
	return t.het.AcquireCPU(worker)
}

// gpuOwnerBase keeps GPU owner tokens distinct from CPU worker indices in
// the uniform scheduler's owner-aware row locks.
const gpuOwnerBase = 1 << 16

// cpuStealProfitable reports whether CPU threads joining the GPU region can
// pay for the sub-granularity switch they force. Every sub-block moves its
// rating payload plus the band-column's Q segment over PCIe; if that demand
// exceeds ~80% of the H2D peak at the sub kernel's pace, sub-mode is
// transfer-bound and the GPU's own throughput collapses (measured at +46%
// GPU busy time on the MovieLens shape).
func cpuStealProfitable(hg *grid.HeteroGrid, cfg gpu.Config, k int) bool {
	blocks := 0
	for _, b := range hg.GPU.Blocks {
		if b.Size() > 0 {
			blocks++
		}
	}
	if blocks == 0 || hg.GPUNNZ == 0 {
		return false
	}
	avgSub := float64(hg.GPUNNZ) / float64(blocks)
	avgColSpan := float64(hg.GPU.ColBounds[len(hg.GPU.ColBounds)-1]-hg.GPU.ColBounds[0]) /
		float64(hg.GPU.ColBands)
	h2dBytesPerSub := 12*avgSub + 4*float64(k)*avgColSpan
	kernel := cfg.KernelTime(int(avgSub), true)
	if kernel <= 0 {
		return false
	}
	return h2dBytesPerSub/kernel <= 0.8*cfg.H2DPeakBytesPerSec
}

// cpuStealThreshold returns the minimum remaining GPU-region workload (in
// ratings) below which a CPU thread should not steal: while the thread
// processes one average sub-block, the GPU clears gpuRate/cpuRate times as
// much — if less than that (with a 2x safety margin) remains, the GPU
// finishes its queue first and the steal only fragments its super-blocks.
func cpuStealThreshold(p *cost.Profile, hg *grid.HeteroGrid) int64 {
	blocks := 0
	for _, b := range hg.GPU.Blocks {
		if b.Size() > 0 {
			blocks++
		}
	}
	if blocks == 0 || hg.GPUNNZ == 0 {
		return 0
	}
	avgSub := float64(hg.GPUNNZ) / float64(blocks)
	probe := float64(hg.GPUNNZ)
	gpuTime := p.GPU.Time(probe)
	cpuTime := p.CPU.Time(probe)
	if gpuTime <= 0 || cpuTime <= 0 {
		return 0
	}
	speedRatio := cpuTime / gpuTime // how many CPU-thread-seconds one GPU second replaces
	return int64(3 * avgSub * speedRatio)
}

// gpuStealRemainingThreshold returns the minimum remaining CPU-region
// workload for a GPU steal to pay off: while the GPU processes one average
// CPU block (cold), the nc CPU threads clear nc·(block/cpuTime(block))·
// gpuTime ratings on their own — with less than twice that remaining, the
// CPUs drain the queue first and the steal only blocks a row band.
func gpuStealRemainingThreshold(p *cost.Profile, hg *grid.HeteroGrid, nc int) int64 {
	blocks := 0
	for _, b := range hg.CPU.Blocks {
		if b.Size() > 0 {
			blocks++
		}
	}
	if blocks == 0 || hg.CPUNNZ == 0 {
		return 0
	}
	avgBlock := float64(hg.CPUNNZ) / float64(blocks)
	gpuTime := p.GPU.Time(avgBlock)
	cpuTime := p.CPU.Time(avgBlock)
	if gpuTime <= 0 || cpuTime <= 0 {
		return 0
	}
	cleared := float64(nc) * avgBlock / cpuTime * gpuTime
	return int64(2 * cleared)
}

// gpuStealBreakEven returns the smallest stolen batch (in ratings) for
// which a GPU steal shortens the makespan. A stolen batch is processed as a
// serial cold pipeline (H2D + kernel + D2H — no other block overlaps it)
// while holding one CPU-region row and several columns hostage, resources
// that would otherwise feed roughly gpuStealBatch+1 CPU threads. The steal
// pays only when
//
//	h2d(n) + kernel(n) + d2h(n)  <  fc(n) / (gpuStealBatch + 1)
//
// On calibrations where the GPU is only modestly faster than the CPU pool
// this is never satisfied and the GPU simply idles at region boundaries —
// stealing tiny blocks would slow everyone down.
func gpuStealBreakEven(p *cost.Profile) int {
	// Never extrapolate below the smallest profiled size: the pre-τ speed
	// fits are only trustworthy inside the sampled range, and stolen blocks
	// are far smaller than any profiling prefix.
	minProfiled := 0.0
	if len(p.KernelSamples.Sizes) > 0 {
		minProfiled = p.KernelSamples.Sizes[0]
	}
	serial := func(n float64) float64 {
		if n < minProfiled {
			n = minProfiled
		}
		kernel, h2d, d2h := p.GPU.Breakdown(n)
		return kernel + h2d + d2h
	}
	const resourceFactor = gpuStealBatchResources
	for n := 16; n <= 1<<26; n <<= 1 {
		if serial(float64(n)) < p.CPU.Time(float64(n))/resourceFactor {
			lo, hi := n/2, n
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if serial(float64(mid)) < p.CPU.Time(float64(mid))/resourceFactor {
					hi = mid
				} else {
					lo = mid
				}
			}
			return hi
		}
	}
	return 1 << 30 // never worthwhile on this machine profile
}

// gpuStealBatchResources is the CPU-thread-equivalents a stolen batch locks
// (its columns plus the row band).
const gpuStealBatchResources = 5

func (t *trainer) acquireGPU(g *gpuActor) (*sched.Task, bool) {
	if t.uni != nil {
		return t.uni.Acquire(gpuOwnerBase+g.id, g.pinned, false)
	}
	return t.het.AcquireGPU(g.id, g.stolenInflight == 0)
}

// cpuTry lets CPU worker i pull and process its next block.
func (t *trainer) cpuTry(i int) {
	if t.halted {
		return
	}
	task, ok := t.acquireCPU(i)
	if !ok {
		t.cpuIsIdle[i] = true
		return
	}
	t.cpuIsIdle[i] = false
	dur := t.jitter(t.opt.CPU.BlockTime(task.NNZ), t.cpuFactor)
	issued := t.eng.Now()
	t.eng.Schedule(dur, func() {
		if t.halted {
			return
		}
		t.apply(task)
		t.trace(task, issued, t.eng.Now(), fmt.Sprintf("cpu%d", i), false)
		t.release(task)
		t.cpuTry(i)
	})
}

// gpuTry lets a GPU issue its next block into the stream pipeline, keeping
// at most maxInflight blocks in flight.
func (t *trainer) gpuTry(g *gpuActor) {
	if t.halted || g.inflight >= maxInflight {
		return
	}
	task, ok := t.acquireGPU(g)
	if !ok {
		g.idle = true
		return
	}
	g.idle = false

	// P-segment pinning (Section VI-A): while the GPU stays on the same row
	// band, the P rows are already resident, caches are warm, and only Q
	// columns move. Switching bands is a cold launch and re-transfers P.
	warm := task.RowBandKey == g.pinned
	g.pinned = task.RowBandKey
	h2dBytes, d2hBytes := gpu.BlockBytes(task.NNZ, task.RowSpan, task.ColSpan, t.opt.Params.K, !warm)
	comp := g.pipe.Submit(t.eng.Now(),
		t.jitter(t.opt.GPU.TransferTime(h2dBytes, gpu.HostToDevice), t.gpuFactor),
		t.jitter(t.opt.GPU.KernelTime(task.NNZ, warm), t.gpuFactor),
		t.jitter(t.opt.GPU.TransferTime(d2hBytes, gpu.DeviceToHost), t.gpuFactor))
	g.inflight++
	if task.Stolen {
		g.stolenInflight++
	}
	issued := t.eng.Now()
	t.eng.ScheduleAt(comp.H2DDone, func() { t.gpuTry(g) })
	t.eng.ScheduleAt(comp.KernelDone, func() { t.apply(task) })
	t.eng.ScheduleAt(comp.D2HDone, func() {
		if t.halted {
			return
		}
		g.inflight--
		if task.Stolen {
			g.stolenInflight--
		}
		t.trace(task, issued, t.eng.Now(), fmt.Sprintf("gpu%d", g.id), warm)
		t.release(task)
		t.gpuTry(g)
	})
}

// trace reports a completed task to the Options.Trace hook.
func (t *trainer) trace(task *sched.Task, issued, done float64, device string, warm bool) {
	if t.opt.Trace == nil {
		return
	}
	region := "all"
	switch task.Region {
	case sched.RegionCPU:
		region = "cpu"
	case sched.RegionGPU:
		region = "gpu"
	}
	epoch := int64(t.epoch)
	if t.het != nil {
		epoch = t.het.Epoch()
	}
	t.opt.Trace(TraceEvent{
		Issue: issued, Done: done, Device: device, Region: region,
		NNZ: task.NNZ, Blocks: len(task.Blocks), Stolen: task.Stolen,
		Warm: warm, Epoch: epoch,
	})
}

// apply executes the task's SGD updates for real.
func (t *trainer) apply(task *sched.Task) {
	if t.halted {
		return
	}
	for _, rs := range task.Ratings() {
		sgd.UpdateBlock(t.f, rs, t.opt.Params.LambdaP, t.opt.Params.LambdaQ, t.gamma)
	}
}

// release returns the task to the scheduler, advances epochs, and wakes
// idle workers. Cancellation is observed here — the sim counterpart of the
// real engine's block-claim poll — so an interrupted run halts at a task
// boundary with the factors consistent.
func (t *trainer) release(task *sched.Task) {
	if !t.halted && t.ctx.Err() != nil {
		t.report.Interrupted = true
		t.halt()
		return
	}
	if t.uni != nil {
		t.uni.Release(task)
		for !t.halted && t.uni.TotalUpdates >= int64(t.epoch+1)*t.nnz {
			t.endEpoch()
		}
	} else {
		t.het.Release(task)
		// The scheduler's quota epoch advances when every block has been
		// processed once more; evaluation epochs are decoupled and fire on
		// update counts ("one effective pass over R"), the same clock the
		// uniform pipelines use, so time-to-target is comparable across
		// algorithms even though lookahead lets fast devices start the
		// next quota early.
		if t.het.EpochComplete() {
			t.het.AdvanceEpoch()
		}
		for !t.halted && t.het.TotalUpdates >= int64(t.epoch+1)*t.nnz {
			t.endEpoch()
		}
	}
	if !t.halted {
		t.wake()
	}
}

// endEpoch closes one effective pass over the ratings: evaluate, adjust the
// learning rate, and stop on target or exhaustion.
func (t *trainer) endEpoch() {
	t.epoch++
	t.gamma = t.schedule.Rate(t.epoch)
	evaluated := t.epoch%t.opt.EvalEvery == 0 || t.epoch >= t.opt.Params.Iters
	rmse := 0.0
	if evaluated {
		if t.test != nil {
			rmse = model.RMSE(t.f, t.test)
		}
		t.report.History = append(t.report.History,
			EvalPoint{Time: t.eng.Now(), Epoch: t.epoch, RMSE: rmse})
		t.report.FinalRMSE = rmse
	}
	// Adaptive schedules get a loss at every boundary (not just EvalEvery
	// strides): test RMSE when available, sampled training RMSE otherwise.
	if t.observer != nil {
		loss := rmse
		if t.test == nil {
			loss = model.RMSE(t.f, t.lossSample)
		} else if !evaluated {
			loss = model.RMSE(t.f, t.test)
		}
		t.observer.Observe(loss)
		t.gamma = t.schedule.Rate(t.epoch)
	}
	if evaluated && t.opt.TargetRMSE > 0 && t.test != nil && rmse <= t.opt.TargetRMSE {
		t.report.TargetReached = true
		t.report.TimeToTarget = t.eng.Now()
		t.opt.Progress.Emit(t.progressEvent(progress.KindEpoch))
		t.halt()
		return
	}
	t.opt.Progress.Emit(t.progressEvent(progress.KindEpoch))
	if t.epoch >= t.opt.Params.Iters {
		t.halt()
		return
	}
	if t.opt.MaxVirtualSeconds > 0 && t.eng.Now() > t.opt.MaxVirtualSeconds {
		t.halt()
	}
}

func (t *trainer) halt() {
	t.halted = true
	t.eng.Halt()
}

// wake retries every idle worker after a release or epoch advance.
func (t *trainer) wake() {
	for i, idle := range t.cpuIsIdle {
		if idle {
			t.cpuTry(i)
		}
	}
	for _, g := range t.gpus {
		if g.idle {
			t.gpuTry(g)
		}
	}
}

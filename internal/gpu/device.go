// Package gpu simulates the GPU device the paper runs cuMF_SGD on.
//
// Go has no mature CUDA path, so the Quadro P4000 of the paper's testbed is
// replaced by a calibrated performance model plus a faithful reimplementation
// of the *observable* behaviours the paper's scheduler depends on:
//
//   - kernel throughput that rises with block size and saturates
//     (Observation 1 / Figures 3a and 7), produced by a launch-overhead +
//     occupancy-ramp latency model;
//   - PCIe transfer speed that rises with transfer size and saturates
//     (Figure 6), produced by a latency + bandwidth model;
//   - a three-stream pipeline (H2D / kernel / D2H) with cross-stream
//     overlap, so total GPU time behaves like max(transfer, kernel) —
//     Equation 9 — rather than their sum (Figure 8);
//   - SIMT bookkeeping (warps, thread blocks, occupancy) for the kernel
//     launch geometry cuMF_SGD uses ("parallel workers" = ratings computed
//     simultaneously; each worker is one warp that holds a k-vector across
//     its 32 lanes).
//
// The SGD arithmetic itself is executed for real by the trainer when a
// simulated kernel completes; this package only supplies durations on the
// virtual clock.
package gpu

import (
	"fmt"
	"math"
)

// Direction of a PCIe transfer.
type Direction int

// Transfer directions.
const (
	HostToDevice Direction = iota // CPU → GPU
	DeviceToHost                  // GPU → CPU
)

func (d Direction) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// Config describes one simulated GPU. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Name string

	// SIMT geometry.
	WarpSize        int // threads per warp; 32 on every NVIDIA part
	SMCount         int // streaming multiprocessors
	ParallelWorkers int // the paper's knob: ratings processed simultaneously (each worker = 1 warp)
	ThreadsPerBlock int // CUDA block size used for launch geometry

	// Kernel time model:
	//
	//	time(n) = LaunchOverhead + (n + ramp)/peakRate
	//
	// where peakRate = PeakUpdateRate · (ParallelWorkers/128)^WorkerExponent
	// and ramp = RampElements on a cold launch (the device switched to a new
	// row band: P segment transfer, cache/TLB warm-up, occupancy ramp) and 0
	// on a warm one (consecutive blocks of the same band, the static-phase
	// streaming pattern of Section VI-A). Cold launches are what the paper's
	// Figure 3a/7 probes measure, and why small blocks cannot saturate the
	// device (Observation 1).
	LaunchOverhead float64 // seconds per kernel launch
	PeakUpdateRate float64 // updates/s at 128 workers, fully saturated
	RampElements   float64 // warm-up cost of a band switch, in elements
	WorkerExponent float64 // sublinear scaling of peak rate with workers

	// PCIe transfer model: time(b) = latency + b/peak  per direction.
	H2DPeakBytesPerSec float64
	D2HPeakBytesPerSec float64
	H2DLatency         float64 // seconds per transfer operation
	D2HLatency         float64

	GlobalMemBytes int64 // capacity check for resident blocks + factors
}

// DefaultConfig is calibrated so the simulated curves match the paper's
// measured shapes: ~47 M updates/s at 500 K-element blocks rising to
// ~108 M at 2.5 M (Fig 3a), transfer speed 2.5→12.5 GB/s between 64 KB and
// 64 MB (Fig 6), and a CPU/GPU crossover between 128 and 512 parallel
// workers (Fig 10).
func DefaultConfig() Config {
	return Config{
		Name:               "simulated-quadro-p4000",
		WarpSize:           32,
		SMCount:            14, // P4000 has 14 SMs
		ParallelWorkers:    128,
		ThreadsPerBlock:    256,
		LaunchOverhead:     20e-6,
		PeakUpdateRate:     70e6,
		RampElements:       1.2e6,
		WorkerExponent:     0.72,
		H2DPeakBytesPerSec: 12.5e9,
		D2HPeakBytesPerSec: 12.8e9,
		H2DLatency:         25e-6,
		D2HLatency:         25e-6,
		GlobalMemBytes:     8 << 30,
	}
}

// WithWorkers returns a copy with a different ParallelWorkers setting (the
// x-axis of Figure 10).
func (c Config) WithWorkers(w int) Config {
	c.ParallelWorkers = w
	return c
}

// Scaled returns a config whose size-dependent constants are multiplied by
// factor s. Experiments on datasets scaled down by s use Scaled(s) so every
// block lands in the same regime of the throughput curves as the paper's
// full-size blocks; all simulated durations then shrink uniformly by s,
// preserving every ratio the figures report.
func (c Config) Scaled(s float64) Config {
	c.RampElements *= s
	c.LaunchOverhead *= s
	c.H2DLatency *= s
	c.D2HLatency *= s
	return c
}

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	if c.WarpSize <= 0 || c.ParallelWorkers <= 0 || c.SMCount <= 0 {
		return fmt.Errorf("gpu: non-positive SIMT geometry (warp=%d workers=%d sm=%d)",
			c.WarpSize, c.ParallelWorkers, c.SMCount)
	}
	if c.PeakUpdateRate <= 0 || c.H2DPeakBytesPerSec <= 0 || c.D2HPeakBytesPerSec <= 0 {
		return fmt.Errorf("gpu: non-positive rate in config")
	}
	if c.LaunchOverhead < 0 || c.RampElements < 0 || c.H2DLatency < 0 || c.D2HLatency < 0 {
		return fmt.Errorf("gpu: negative latency in config")
	}
	return nil
}

// peakRate is the saturated update rate at the configured worker count.
func (c Config) peakRate() float64 {
	return c.PeakUpdateRate * math.Pow(float64(c.ParallelWorkers)/128.0, c.WorkerExponent)
}

// KernelTime returns the simulated execution time of the SGD kernel on a
// block with n ratings. warm indicates the device is continuing on the row
// band it already holds (P segment resident, caches hot); a cold launch
// additionally pays the RampElements warm-up. Cold throughput
// n/KernelTime(n, false) rises with n and saturates at peakRate,
// reproducing Figures 3a and 7.
func (c Config) KernelTime(n int, warm bool) float64 {
	if n <= 0 {
		return c.LaunchOverhead
	}
	work := float64(n)
	if !warm {
		work += c.RampElements
	}
	return c.LaunchOverhead + work/c.peakRate()
}

// KernelThroughput returns cold-launch updates/s for a block of n ratings —
// the quantity plotted in Figures 3a and 7.
func (c Config) KernelThroughput(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / c.KernelTime(n, false)
}

// TransferTime returns the simulated PCIe time to move b bytes in the given
// direction. Speed b/TransferTime(b) rises with b and saturates at the
// direction's peak bandwidth, reproducing Figure 6.
func (c Config) TransferTime(b int, dir Direction) float64 {
	if b <= 0 {
		return 0
	}
	if dir == HostToDevice {
		return c.H2DLatency + float64(b)/c.H2DPeakBytesPerSec
	}
	return c.D2HLatency + float64(b)/c.D2HPeakBytesPerSec
}

// TransferSpeed returns bytes/s achieved for a transfer of b bytes.
func (c Config) TransferSpeed(b int, dir Direction) float64 {
	if b <= 0 {
		return 0
	}
	return float64(b) / c.TransferTime(b, dir)
}

// BlockBytes returns the PCIe payload for processing one matrix block:
// nnz rating triples (12 bytes each) plus the P rows (rowSpan·k floats, only
// when the GPU does not already hold them — the static phase pins a P
// segment on-device, Section VI-A) and the Q columns (colSpan·k floats).
func BlockBytes(nnz, rowSpan, colSpan, k int, includeP bool) (h2d, d2h int) {
	pBytes := 0
	if includeP {
		pBytes = 4 * k * rowSpan
	}
	qBytes := 4 * k * colSpan
	h2d = 12*nnz + pBytes + qBytes
	// Only the updated factor segments return; the ratings stay host-side
	// ("we do not need to transfer blocks back to CPU", Section V-B).
	d2h = pBytes + qBytes
	return h2d, d2h
}

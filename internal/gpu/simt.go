package gpu

// Launch describes the SIMT geometry of one simulated kernel launch, the
// way cuMF_SGD configures it: each "parallel worker" is a warp whose 32
// lanes hold one k-dimensional factor pair (k/32 elements per lane, moved
// between lanes with warp shuffles), and workers are packed into CUDA
// thread blocks of ThreadsPerBlock threads.
type Launch struct {
	Workers         int // warps in flight (paper's "parallel workers")
	ThreadsPerBlock int
	WarpsPerBlock   int
	GridDim         int // number of CUDA thread blocks
	TotalThreads    int
	ElementsPerLane int // k/WarpSize factor elements each lane holds
}

// LaunchFor derives the launch geometry for a kernel over ratings with k
// latent factors.
func (c Config) LaunchFor(k int) Launch {
	warpsPerBlock := c.ThreadsPerBlock / c.WarpSize
	if warpsPerBlock < 1 {
		warpsPerBlock = 1
	}
	gridDim := (c.ParallelWorkers + warpsPerBlock - 1) / warpsPerBlock
	perLane := k / c.WarpSize
	if perLane < 1 {
		perLane = 1
	}
	return Launch{
		Workers:         c.ParallelWorkers,
		ThreadsPerBlock: c.ThreadsPerBlock,
		WarpsPerBlock:   warpsPerBlock,
		GridDim:         gridDim,
		TotalThreads:    gridDim * c.ThreadsPerBlock,
		ElementsPerLane: perLane,
	}
}

// Occupancy is the fraction of the device's warp slots a launch fills,
// assuming 64 resident warps per SM (Pascal). Low occupancy on small worker
// counts is one reason GPU-Only loses to CPU-Only at 32 workers in Fig 10.
func (c Config) Occupancy() float64 {
	capacity := float64(c.SMCount * 64)
	occ := float64(c.ParallelWorkers) / capacity
	if occ > 1 {
		occ = 1
	}
	return occ
}

// FitsInMemory reports whether a resident set of the given size (bytes) fits
// in global memory, leaving 10% headroom for the runtime.
func (c Config) FitsInMemory(bytes int64) bool {
	return float64(bytes) <= 0.9*float64(c.GlobalMemBytes)
}

package gpu

// Pipeline models the three CUDA streams cuMF_SGD uses (Figure 8):
// stream 1 moves blocks host→device, stream 2 runs the kernel, stream 3
// moves updated factors device→host. Commands within a stream serialize;
// commands in different streams overlap, subject to the per-block dependency
// H2D(B) → kernel(B) → D2H(B).
//
// The pipeline is pure virtual-time bookkeeping: it tracks when each stream
// becomes free and returns the completion times for a submitted block.
type Pipeline struct {
	// Overlap selects the stream semantics: true is the CUDA-stream
	// behaviour of the paper; false serializes all three phases on one
	// stream, the ablation that shows why Equation 9 is max() not sum().
	Overlap bool

	h2dFree    float64
	kernelFree float64
	d2hFree    float64
}

// NewPipeline returns a pipeline with all streams free at time zero and
// overlap enabled.
func NewPipeline() *Pipeline { return &Pipeline{Overlap: true} }

// Completion reports when each phase of a submitted block finishes.
type Completion struct {
	H2DDone    float64 // input data resident on device: next block may be requested
	KernelDone float64 // updates visible: apply them to P and Q
	D2HDone    float64 // factors back on host: row/column locks may be released
}

// Submit enqueues one block whose phases take h2d, kernel and d2h seconds,
// with the host ready to issue at time now.
func (p *Pipeline) Submit(now, h2d, kernel, d2h float64) Completion {
	if !p.Overlap {
		start := max(now, p.d2hFree)
		h2dDone := start + h2d
		kernelDone := h2dDone + kernel
		d2hDone := kernelDone + d2h
		p.h2dFree, p.kernelFree, p.d2hFree = d2hDone, d2hDone, d2hDone
		return Completion{H2DDone: h2dDone, KernelDone: kernelDone, D2HDone: d2hDone}
	}
	h2dStart := max(now, p.h2dFree)
	h2dDone := h2dStart + h2d
	p.h2dFree = h2dDone

	kStart := max(h2dDone, p.kernelFree)
	kernelDone := kStart + kernel
	p.kernelFree = kernelDone

	dStart := max(kernelDone, p.d2hFree)
	d2hDone := dStart + d2h
	p.d2hFree = d2hDone
	return Completion{H2DDone: h2dDone, KernelDone: kernelDone, D2HDone: d2hDone}
}

// NextIssueTime returns the earliest time a new H2D command could start if
// issued at now — the moment the GPU should request its next block so the
// transfer of block B' overlaps the kernel of block B (Example 4).
func (p *Pipeline) NextIssueTime(now float64) float64 {
	return max(now, p.h2dFree)
}

// KernelFreeAt returns when the kernel stream drains.
func (p *Pipeline) KernelFreeAt() float64 { return p.kernelFree }

// Reset returns all streams to free-at-zero.
func (p *Pipeline) Reset() { p.h2dFree, p.kernelFree, p.d2hFree = 0, 0, 0 }

package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.ParallelWorkers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero workers accepted")
	}
	bad = DefaultConfig()
	bad.PeakUpdateRate = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	bad = DefaultConfig()
	bad.H2DLatency = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}

// Observation 1: cold kernel throughput rises with block size and
// saturates (Figures 3a / 7).
func TestKernelThroughputShape(t *testing.T) {
	cfg := DefaultConfig()
	prev := 0.0
	for n := 250_000; n <= 2_500_000; n += 250_000 {
		cur := cfg.KernelThroughput(n)
		if cur <= prev {
			t.Fatalf("throughput not rising at %d: %v -> %v", n, prev, cur)
		}
		prev = cur
	}
	// Saturation: the relative gain over the last doubling must be small
	// compared to the first.
	gainSmall := cfg.KernelThroughput(500_000)/cfg.KernelThroughput(250_000) - 1
	gainLarge := cfg.KernelThroughput(64_000_000)/cfg.KernelThroughput(32_000_000) - 1
	if gainLarge > gainSmall/4 {
		t.Fatalf("no saturation: small gain %v, large gain %v", gainSmall, gainLarge)
	}
}

func TestWarmFasterThanCold(t *testing.T) {
	cfg := DefaultConfig()
	for _, n := range []int{1000, 100_000, 1_000_000} {
		if w, c := cfg.KernelTime(n, true), cfg.KernelTime(n, false); w >= c {
			t.Fatalf("warm %v >= cold %v at n=%d", w, c, n)
		}
	}
}

func TestKernelTimeMonotone(t *testing.T) {
	cfg := DefaultConfig()
	prev := 0.0
	for n := 0; n <= 1_000_000; n += 50_000 {
		cur := cfg.KernelTime(n, false)
		if cur < prev {
			t.Fatalf("kernel time decreased at %d", n)
		}
		prev = cur
	}
}

func TestWorkerScaling(t *testing.T) {
	base := DefaultConfig()
	t32 := base.WithWorkers(32).KernelTime(1_000_000, true)
	t128 := base.WithWorkers(128).KernelTime(1_000_000, true)
	t512 := base.WithWorkers(512).KernelTime(1_000_000, true)
	if !(t32 > t128 && t128 > t512) {
		t.Fatalf("kernel time not decreasing with workers: %v %v %v", t32, t128, t512)
	}
	// Sublinear: 16x workers must give less than 16x speedup.
	if t32/t512 >= 16 {
		t.Fatalf("worker scaling superlinear: %v", t32/t512)
	}
}

// Figure 6: transfer speed rises with size and saturates near the peak.
func TestTransferSpeedShape(t *testing.T) {
	cfg := DefaultConfig()
	for _, dir := range []Direction{HostToDevice, DeviceToHost} {
		prev := 0.0
		for b := 64 << 10; b <= 256<<20; b <<= 1 {
			cur := cfg.TransferSpeed(b, dir)
			if cur <= prev {
				t.Fatalf("%v speed not rising at %d bytes", dir, b)
			}
			prev = cur
		}
		peak := cfg.H2DPeakBytesPerSec
		if dir == DeviceToHost {
			peak = cfg.D2HPeakBytesPerSec
		}
		if prev < 0.95*peak {
			t.Fatalf("%v speed %v never approaches peak %v", dir, prev, peak)
		}
		small := cfg.TransferSpeed(64<<10, dir)
		if small > 0.5*peak {
			t.Fatalf("%v 64KB transfer already at %v of peak", dir, small/peak)
		}
	}
}

func TestTransferTimeZeroBytes(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TransferTime(0, HostToDevice) != 0 {
		t.Fatal("zero-byte transfer should be free")
	}
	if cfg.TransferSpeed(0, HostToDevice) != 0 {
		t.Fatal("zero-byte speed should be 0")
	}
}

func TestScaledPreservesRates(t *testing.T) {
	base := DefaultConfig()
	s := base.Scaled(0.01)
	if s.PeakUpdateRate != base.PeakUpdateRate {
		t.Fatal("Scaled changed peak rate")
	}
	if s.RampElements != base.RampElements*0.01 {
		t.Fatal("Scaled did not shrink ramp")
	}
	if s.H2DLatency != base.H2DLatency*0.01 {
		t.Fatal("Scaled did not shrink latency")
	}
}

func TestBlockBytes(t *testing.T) {
	h2d, d2h := BlockBytes(100, 10, 20, 8, true)
	wantH2D := 100*12 + 4*8*10 + 4*8*20
	wantD2H := 4*8*10 + 4*8*20
	if h2d != wantH2D || d2h != wantD2H {
		t.Fatalf("BlockBytes = %d,%d want %d,%d", h2d, d2h, wantH2D, wantD2H)
	}
	// Pinned P: only Q moves.
	h2d, d2h = BlockBytes(100, 10, 20, 8, false)
	if h2d != 100*12+4*8*20 || d2h != 4*8*20 {
		t.Fatalf("pinned BlockBytes = %d,%d", h2d, d2h)
	}
}

func TestLaunchFor(t *testing.T) {
	cfg := DefaultConfig() // 128 workers, 256 threads/block, warp 32
	l := cfg.LaunchFor(128)
	if l.WarpsPerBlock != 8 {
		t.Fatalf("warps/block = %d", l.WarpsPerBlock)
	}
	if l.GridDim != 16 {
		t.Fatalf("grid dim = %d", l.GridDim)
	}
	if l.TotalThreads != 4096 {
		t.Fatalf("total threads = %d", l.TotalThreads)
	}
	if l.ElementsPerLane != 4 {
		t.Fatalf("elements/lane = %d", l.ElementsPerLane)
	}
}

func TestOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	occ128 := cfg.Occupancy()
	occ512 := cfg.WithWorkers(512).Occupancy()
	if occ512 <= occ128 {
		t.Fatal("occupancy not rising with workers")
	}
	huge := cfg.WithWorkers(1 << 20)
	if huge.Occupancy() != 1 {
		t.Fatal("occupancy not capped at 1")
	}
}

func TestFitsInMemory(t *testing.T) {
	cfg := DefaultConfig() // 8 GB
	if !cfg.FitsInMemory(1 << 30) {
		t.Fatal("1GB should fit")
	}
	if cfg.FitsInMemory(9 << 30) {
		t.Fatal("9GB should not fit in 8GB")
	}
}

func TestPipelineOverlap(t *testing.T) {
	p := NewPipeline()
	// Block A: h2d 1s, kernel 2s, d2h 0.5s.
	a := p.Submit(0, 1, 2, 0.5)
	if a.H2DDone != 1 || a.KernelDone != 3 || a.D2HDone != 3.5 {
		t.Fatalf("A = %+v", a)
	}
	// Block B submitted at A's h2dDone: its transfer overlaps A's kernel.
	b := p.Submit(1, 1, 2, 0.5)
	if b.H2DDone != 2 {
		t.Fatalf("B h2d = %v, want 2 (overlapped)", b.H2DDone)
	}
	if b.KernelDone != 5 { // waits for A's kernel (3), then 2s
		t.Fatalf("B kernel = %v, want 5", b.KernelDone)
	}
	if b.D2HDone != 5.5 {
		t.Fatalf("B d2h = %v", b.D2HDone)
	}
}

// Equation 9: under stream overlap, the steady-state cost per block is
// max(transfer, kernel), not their sum.
func TestPipelineSteadyStateMax(t *testing.T) {
	p := NewPipeline()
	h2d, kernel, d2h := 3.0, 2.0, 1.0 // transfer-bound
	now := 0.0
	var last Completion
	for i := 0; i < 50; i++ {
		last = p.Submit(now, h2d, kernel, d2h)
		now = last.H2DDone
	}
	perBlock := last.KernelDone / 50
	if perBlock < 2.9 || perBlock > 3.2 {
		t.Fatalf("transfer-bound per-block %v, want ~3 (max)", perBlock)
	}

	p.Reset()
	h2d, kernel = 2.0, 3.0 // kernel-bound
	now = 0
	for i := 0; i < 50; i++ {
		last = p.Submit(now, h2d, kernel, d2h)
		now = last.H2DDone
	}
	perBlock = last.KernelDone / 50
	if perBlock < 2.9 || perBlock > 3.2 {
		t.Fatalf("kernel-bound per-block %v, want ~3 (max)", perBlock)
	}
}

// Ablation: without overlap the cost per block is the sum of the phases.
func TestPipelineNoOverlapSum(t *testing.T) {
	p := &Pipeline{Overlap: false}
	now := 0.0
	var last Completion
	for i := 0; i < 20; i++ {
		last = p.Submit(now, 1, 2, 0.5)
		now = last.H2DDone
	}
	perBlock := last.D2HDone / 20
	if perBlock < 3.4 || perBlock > 3.6 {
		t.Fatalf("serial per-block %v, want 3.5 (sum)", perBlock)
	}
}

// Property: completions are always ordered h2d <= kernel <= d2h, and
// successive submissions never travel back in time.
func TestQuickPipelineMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPipeline()
		now := 0.0
		prevKernel := 0.0
		for i := 0; i < 30; i++ {
			c := p.Submit(now, rng.Float64(), rng.Float64(), rng.Float64())
			if c.H2DDone < now || c.KernelDone < c.H2DDone || c.D2HDone < c.KernelDone {
				return false
			}
			if c.KernelDone < prevKernel {
				return false
			}
			prevKernel = c.KernelDone
			now = c.H2DDone
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

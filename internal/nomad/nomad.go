// Package nomad implements a NOMAD-style asynchronous matrix-factorization
// trainer (Yun et al. [10]; Section III-C of the paper): ownership of each
// *column* (item) circulates among workers; the worker holding a column
// updates it against its own *row* (user) partition, then passes the column
// on. Rows are statically partitioned, so p_u is only ever touched by its
// owner and q_v by the current holder — lock-free without conflicts, the
// property NOMAD gets "non-locking" from.
//
// This package is the single-process backend: goroutines as workers and
// channels as the network, surfaced as hsgd.NewTrainer("nomad"). The same
// protocol runs across real machines in internal/dist, where workers are
// separate processes, the network is a length-prefixed TCP transport, and a
// coordinator handles routing, fault tolerance, and checkpoint merging; one
// round here applies every rating exactly once, matching one distributed
// epoch there.
package nomad

import (
	"fmt"
	"math/rand"
	"sync"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

// Params configures NOMAD training.
type Params struct {
	K       int
	LambdaP float32
	LambdaQ float32
	Gamma   float32
	Workers int
	// Rounds is how many times each column circulates to every worker (the
	// effective epoch count).
	Rounds int
	Seed   int64
}

// colMsg hands ownership of column v (and its factor vector, conceptually)
// to the receiving worker. visits counts how many workers have processed it
// this round.
type colMsg struct {
	v      int32
	visits int
}

// Train runs the asynchronous column-circulation protocol on the given
// pre-initialised factors.
func Train(train *sparse.Matrix, f *model.Factors, p Params) error {
	if p.K != f.K {
		return fmt.Errorf("nomad: params K=%d but factors K=%d", p.K, f.K)
	}
	if train.NNZ() == 0 {
		return sparse.ErrEmpty
	}
	if p.Workers < 1 {
		p.Workers = 1
	}
	if p.Rounds < 1 {
		p.Rounds = 1
	}

	// Static row partition: worker w owns rows [w·m/W, (w+1)·m/W). Each
	// worker pre-indexes its ratings by column.
	w := p.Workers
	byWorkerCol := make([]map[int32][]sparse.Rating, w)
	for i := range byWorkerCol {
		byWorkerCol[i] = make(map[int32][]sparse.Rating)
	}
	ownerOf := func(row int32) int { return int(row) * w / train.Rows }
	for _, r := range train.Ratings {
		o := ownerOf(r.Row)
		byWorkerCol[o][r.Col] = append(byWorkerCol[o][r.Col], r)
	}

	queues := make([]chan colMsg, w)
	for i := range queues {
		queues[i] = make(chan colMsg, train.Cols+1)
	}
	// Seed every column at a worker, round-robin.
	totalHops := p.Rounds * w
	active := 0
	for v := 0; v < train.Cols; v++ {
		queues[v%w] <- colMsg{v: int32(v)}
		active++
	}

	var done sync.WaitGroup
	var remaining sync.WaitGroup
	remaining.Add(active)
	stop := make(chan struct{})

	for id := 0; id < w; id++ {
		done.Add(1)
		go func(id int) {
			defer done.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(id)))
			for {
				select {
				case <-stop:
					return
				case msg := <-queues[id]:
					for _, r := range byWorkerCol[id][msg.v] {
						updateOne(f, r, p)
					}
					msg.visits++
					if msg.visits >= totalHops {
						remaining.Done()
						continue
					}
					// Pass the column to a random peer (possibly self).
					next := rng.Intn(w)
					queues[next] <- msg
				}
			}
		}(id)
	}
	remaining.Wait()
	close(stop)
	done.Wait()
	return nil
}

// updateOne applies the SGD step. Row vectors are only touched by their
// owning worker and the column vector only by the current holder, so the
// update is conflict-free by construction.
func updateOne(f *model.Factors, r sparse.Rating, p Params) {
	pu := f.Row(r.Row)
	qv := f.Colvec(r.Col)
	e := r.Value - model.Dot(pu, qv)
	for i := range pu {
		pi := pu[i]
		qi := qv[i]
		pu[i] = pi + p.Gamma*(e*qi-p.LambdaP*pi)
		qv[i] = qi + p.Gamma*(e*pi-p.LambdaQ*qv[i])
	}
}

package nomad

import (
	"math/rand"
	"testing"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

func planted(m, n, nnz int, seed int64) (*sparse.Matrix, *sparse.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	const rank = 2
	p := make([]float32, m*rank)
	q := make([]float32, n*rank)
	for i := range p {
		p[i] = rng.Float32()
	}
	for i := range q {
		q[i] = rng.Float32()
	}
	gen := func(count int) *sparse.Matrix {
		out := sparse.New(m, n)
		for i := 0; i < count; i++ {
			u := rng.Intn(m)
			v := rng.Intn(n)
			var dot float32
			for j := 0; j < rank; j++ {
				dot += p[u*rank+j] * q[v*rank+j]
			}
			out.Add(int32(u), int32(v), dot+float32(rng.NormFloat64()*0.05))
		}
		return out
	}
	return gen(nnz), gen(nnz / 5)
}

func TestNOMADConverges(t *testing.T) {
	train, test := planted(60, 50, 3000, 1)
	f := model.NewFactors(60, 50, 8, rand.New(rand.NewSource(1)))
	before := model.RMSE(f, test)
	err := Train(train, f, Params{
		K: 8, LambdaP: 0.01, LambdaQ: 0.01, Gamma: 0.05,
		Workers: 4, Rounds: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := model.RMSE(f, test)
	if after >= before {
		t.Fatalf("RMSE did not improve: %v -> %v", before, after)
	}
	if after > 0.3 {
		t.Fatalf("NOMAD RMSE %v too high", after)
	}
}

func TestNOMADSingleWorker(t *testing.T) {
	train, test := planted(40, 40, 1500, 2)
	f := model.NewFactors(40, 40, 4, rand.New(rand.NewSource(2)))
	err := Train(train, f, Params{
		K: 4, LambdaP: 0.01, LambdaQ: 0.01, Gamma: 0.05,
		Workers: 1, Rounds: 15, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := model.RMSE(f, test); rmse > 0.4 {
		t.Fatalf("single-worker NOMAD RMSE %v", rmse)
	}
}

func TestNOMADErrors(t *testing.T) {
	train, _ := planted(10, 10, 100, 3)
	f := model.NewFactors(10, 10, 4, rand.New(rand.NewSource(3)))
	if err := Train(train, f, Params{K: 8, Gamma: 0.01, Workers: 2, Rounds: 1}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if err := Train(sparse.New(10, 10), f, Params{K: 4, Gamma: 0.01, Workers: 2, Rounds: 1}); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

// Package chaos is a deterministic fault-injection layer for net.Conn
// transports: a seeded harness wraps connections (directly, or via Dialer
// and net.Listener adapters) and injects latency, transient timeouts,
// mid-frame connection resets, and blackholes on a reproducible schedule.
//
// Determinism model: every wrapped connection draws its faults from two
// private PRNG streams (one per direction) seeded from the harness seed
// and the connection's admission order. For a fixed seed, the k-th
// connection's n-th read (or write) always lands on the same fault — the
// schedule does not depend on goroutine interleaving across connections,
// only on the order connections are created, which the caller controls.
// That is what makes a chaos soak replayable: a failing seed is a bug
// report, not a ghost.
//
// The injected faults are chosen to hit the seams a framed protocol
// actually has:
//
//   - latency: the op is delayed by a seeded duration before running —
//     exercises pipelining, heartbeat cadence, and stall detection.
//   - timeout: the op fails with a net.Error whose Timeout() is true,
//     without touching the wire — exercises bounded-retry send paths.
//   - reset: a read fails hard; a write delivers a prefix of the buffer
//     and then kills the connection — a mid-frame cut that poisons the
//     stream framing, exercising reconnect/rejoin paths.
//   - blackhole: the op hangs until its deadline (or the conn closes) —
//     the silent-peer case liveness windows exist for.
package chaos

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the per-operation fault schedule. Probabilities are per
// read/write call and independently drawn; all zero means the wrappers are
// transparent. The zero value of Seed is a valid (fixed) seed.
type Config struct {
	Seed int64

	// PLatency delays an op by a duration drawn uniformly from
	// [LatencyMin, LatencyMax] before performing it.
	PLatency               float64
	LatencyMin, LatencyMax time.Duration

	// PTimeout fails the op with a transient timeout error (net.Error,
	// Timeout() true) without performing it. The connection stays usable.
	PTimeout float64

	// PReset kills the connection mid-op: reads fail immediately, writes
	// deliver roughly half the buffer first so a frame is cut mid-body.
	PReset float64

	// PBlackhole makes the op hang until its deadline fires (or the
	// connection is closed). With no deadline set the op hangs until close.
	PBlackhole float64
}

// Stats counts the faults a harness has injected, by kind.
type Stats struct {
	Latencies, Timeouts, Resets, Blackholes uint64
}

// Harness mints deterministic fault schedules for the connections it
// wraps. Safe for concurrent use.
type Harness struct {
	cfg Config
	seq atomic.Uint64
	lat atomic.Uint64
	tmo atomic.Uint64
	rst atomic.Uint64
	bhl atomic.Uint64
}

// New returns a harness injecting faults per cfg.
func New(cfg Config) *Harness { return &Harness{cfg: cfg} }

// Stats reports the faults injected so far across all wrapped connections.
func (h *Harness) Stats() Stats {
	return Stats{
		Latencies:  h.lat.Load(),
		Timeouts:   h.tmo.Load(),
		Resets:     h.rst.Load(),
		Blackholes: h.bhl.Load(),
	}
}

// Wrap returns c with the harness's fault schedule applied to Read/Write.
func (h *Harness) Wrap(c net.Conn) net.Conn {
	id := h.seq.Add(1)
	return &conn{
		Conn:   c,
		h:      h,
		closed: make(chan struct{}),
		rd:     newSide(h.cfg.Seed, id, 0),
		wr:     newSide(h.cfg.Seed, id, 1),
	}
}

// Dialer is the outbound-connection seam this package wraps — structurally
// identical to dist.Dialer, declared here so chaos has no dependency on
// the packages it tests.
type Dialer interface {
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

type chaosDialer struct {
	h *Harness
	d Dialer
}

// Dialer wraps d so every dialed connection is fault-injected.
func (h *Harness) Dialer(d Dialer) Dialer { return &chaosDialer{h: h, d: d} }

func (cd *chaosDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	c, err := cd.d.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return cd.h.Wrap(c), nil
}

type chaosListener struct {
	net.Listener
	h *Harness
}

// Listener wraps ln so every accepted connection is fault-injected.
func (h *Harness) Listener(ln net.Listener) net.Listener {
	return &chaosListener{Listener: ln, h: h}
}

func (cl *chaosListener) Accept() (net.Conn, error) {
	c, err := cl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return cl.h.Wrap(c), nil
}

// --- the wrapped connection ---

type faultKind int

const (
	faultNone faultKind = iota
	faultLatency
	faultTimeout
	faultReset
	faultBlackhole
)

// side is one direction's deterministic fault stream plus its deadline
// mirror (blackholes must honor deadlines without the underlying conn's
// help, since a blackholed op never reaches it).
type side struct {
	mu       sync.Mutex
	rng      *rand.Rand
	deadline time.Time
}

// newSide seeds one direction's stream from (seed, connection id,
// direction). splitmix-style mixing keeps adjacent ids uncorrelated.
func newSide(seed int64, id uint64, dir uint64) *side {
	z := uint64(seed) ^ (id*2 + dir + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &side{rng: rand.New(rand.NewSource(int64(z)))}
}

// draw picks the next fault on this direction's schedule, plus a latency
// duration (meaningful only for faultLatency). One rng call per op keeps
// the schedule aligned with the op count even when most ops are clean.
func (s *side) draw(cfg *Config) (faultKind, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	x := s.rng.Float64()
	switch {
	case x < cfg.PReset:
		return faultReset, 0
	case x < cfg.PReset+cfg.PTimeout:
		return faultTimeout, 0
	case x < cfg.PReset+cfg.PTimeout+cfg.PBlackhole:
		return faultBlackhole, 0
	case x < cfg.PReset+cfg.PTimeout+cfg.PBlackhole+cfg.PLatency:
		span := cfg.LatencyMax - cfg.LatencyMin
		d := cfg.LatencyMin
		if span > 0 {
			d += time.Duration(s.rng.Int63n(int64(span) + 1))
		}
		return faultLatency, d
	}
	return faultNone, 0
}

func (s *side) setDeadline(t time.Time) {
	s.mu.Lock()
	s.deadline = t
	s.mu.Unlock()
}

func (s *side) getDeadline() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadline
}

type conn struct {
	net.Conn
	h      *Harness
	rd, wr *side

	closeOnce sync.Once
	closed    chan struct{}
}

// Error is the error injected faults return; it implements net.Error so
// retry ladders keyed on Timeout() see exactly what a kernel would give
// them.
type Error struct {
	Op        string
	IsTimeout bool
}

func (e *Error) Error() string {
	if e.IsTimeout {
		return "chaos: injected " + e.Op + " timeout"
	}
	return "chaos: injected " + e.Op + " reset"
}

func (e *Error) Timeout() bool   { return e.IsTimeout }
func (e *Error) Temporary() bool { return e.IsTimeout }

func (c *conn) Read(p []byte) (int, error) {
	switch kind, d := c.rd.draw(&c.h.cfg); kind {
	case faultLatency:
		c.h.lat.Add(1)
		if !c.sleep(d) {
			return 0, net.ErrClosed
		}
	case faultTimeout:
		c.h.tmo.Add(1)
		return 0, &Error{Op: "read", IsTimeout: true}
	case faultReset:
		c.h.rst.Add(1)
		c.Close()
		return 0, &Error{Op: "read"}
	case faultBlackhole:
		c.h.bhl.Add(1)
		return 0, c.blackhole("read", c.rd.getDeadline())
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	switch kind, d := c.wr.draw(&c.h.cfg); kind {
	case faultLatency:
		c.h.lat.Add(1)
		if !c.sleep(d) {
			return 0, net.ErrClosed
		}
	case faultTimeout:
		c.h.tmo.Add(1)
		return 0, &Error{Op: "write", IsTimeout: true}
	case faultReset:
		// Mid-frame cut: half the buffer reaches the peer, then the
		// connection dies. Callers see n > 0 with an error — unrecoverable
		// for length-prefixed framing, exactly like a real mid-write RST.
		c.h.rst.Add(1)
		n := 0
		if len(p) > 1 {
			n, _ = c.Conn.Write(p[:len(p)/2])
		}
		c.Close()
		return n, &Error{Op: "write"}
	case faultBlackhole:
		c.h.bhl.Add(1)
		return 0, c.blackhole("write", c.wr.getDeadline())
	}
	return c.Conn.Write(p)
}

// sleep waits d unless the connection closes first; reports whether the
// wait completed.
func (c *conn) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closed:
		return false
	}
}

// blackhole hangs until the direction's deadline (timeout error) or the
// connection closes (net.ErrClosed). With no deadline it waits for close.
func (c *conn) blackhole(op string, deadline time.Time) error {
	if deadline.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	wait := time.Until(deadline)
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.closed:
			return net.ErrClosed
		}
	}
	return &Error{Op: op, IsTimeout: true}
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	c.wr.setDeadline(t)
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.wr.setDeadline(t)
	return c.Conn.SetWriteDeadline(t)
}

package chaos

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// schedule replays the first n fault draws of one direction for a given
// (seed, conn id) — the determinism contract under test.
func schedule(cfg Config, id uint64, dir uint64, n int) []faultKind {
	s := newSide(cfg.Seed, id, dir)
	out := make([]faultKind, n)
	for i := range out {
		out[i], _ = s.draw(&cfg)
	}
	return out
}

func TestScheduleIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, PLatency: 0.2, LatencyMax: time.Millisecond, PTimeout: 0.1, PReset: 0.05, PBlackhole: 0.05}
	a := schedule(cfg, 3, 0, 200)
	b := schedule(cfg, 3, 0, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	// A different connection id must get a different stream (else every
	// conn fails in lockstep and the soak only explores one interleaving).
	c := schedule(cfg, 4, 0, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("conn 3 and conn 4 drew identical schedules")
	}
	// All probabilities zero: the schedule must be all clean ops.
	for i, k := range schedule(Config{Seed: 7}, 1, 0, 100) {
		if k != faultNone {
			t.Fatalf("zero-probability draw %d injected %v", i, k)
		}
	}
}

func pipePair(t *testing.T, h *Harness) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return h.Wrap(a), b
}

func TestTimeoutFaultIsTransientNetError(t *testing.T) {
	// PTimeout 1: every op fails with a timeout but the conn stays usable
	// once the fault rate drops — model that by flipping the config off.
	h := New(Config{Seed: 1, PTimeout: 1})
	c, peer := pipePair(t, h)
	_, err := c.Write([]byte("x"))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("timeout fault returned %v, want net.Error with Timeout()=true", err)
	}
	if h.Stats().Timeouts == 0 {
		t.Fatal("timeout not counted")
	}
	// The connection survived: a clean harness op still goes through.
	h.cfg.PTimeout = 0
	go func() {
		buf := make([]byte, 1)
		peer.Read(buf)
	}()
	if _, err := c.Write([]byte("y")); err != nil {
		t.Fatalf("conn unusable after a timeout fault: %v", err)
	}
}

func TestResetFaultCutsMidWrite(t *testing.T) {
	h := New(Config{Seed: 1, PReset: 1})
	c, peer := pipePair(t, h)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := peer.Read(buf)
		got <- buf[:n]
	}()
	payload := []byte("abcdefgh")
	n, err := c.Write(payload)
	if err == nil {
		t.Fatal("reset fault returned no error")
	}
	if n != len(payload)/2 {
		t.Fatalf("mid-frame reset wrote %d bytes, want %d", n, len(payload)/2)
	}
	if prefix := <-got; !bytes.Equal(prefix, payload[:n]) {
		t.Fatalf("peer saw %q, want the %d-byte prefix", prefix, n)
	}
	// The conn is dead: later ops fail.
	if _, err := c.Write([]byte("z")); err == nil {
		t.Fatal("write succeeded on a reset connection")
	}
	if h.Stats().Resets == 0 {
		t.Fatal("reset not counted")
	}
}

func TestBlackholeHonorsDeadline(t *testing.T) {
	h := New(Config{Seed: 1, PBlackhole: 1})
	c, _ := pipePair(t, h)
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("blackholed read returned %v, want timeout", err)
	}
	if took := time.Since(start); took < 20*time.Millisecond || took > 5*time.Second {
		t.Fatalf("blackholed read returned after %v, want ≈ the 30ms deadline", took)
	}
	if h.Stats().Blackholes == 0 {
		t.Fatal("blackhole not counted")
	}
}

func TestBlackholeUnblocksOnClose(t *testing.T) {
	h := New(Config{Seed: 1, PBlackhole: 1})
	c, _ := pipePair(t, h)
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1)) // no deadline: hangs until close
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("blackholed read after close returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blackholed read did not unblock on close")
	}
}

func TestLatencyDelaysButDelivers(t *testing.T) {
	h := New(Config{Seed: 1, PLatency: 1, LatencyMin: 20 * time.Millisecond, LatencyMax: 20 * time.Millisecond})
	c, peer := pipePair(t, h)
	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 5)
		_, err := peer.Read(buf)
		got <- err
	}()
	start := time.Now()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("latency fault failed the op: %v", err)
	}
	if took := time.Since(start); took < 15*time.Millisecond {
		t.Fatalf("latency fault injected only %v", took)
	}
	if err := <-got; err != nil {
		t.Fatalf("peer read failed: %v", err)
	}
	if h.Stats().Latencies == 0 {
		t.Fatal("latency not counted")
	}
}

type staticDialer struct{ c net.Conn }

func (d staticDialer) DialContext(context.Context, string) (net.Conn, error) { return d.c, nil }

func TestDialerAndListenerWrap(t *testing.T) {
	h := New(Config{Seed: 1, PTimeout: 1})
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wrapped, err := h.Dialer(staticDialer{c: a}).DialContext(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Write([]byte("x")); err == nil {
		t.Fatal("dialer-wrapped conn did not inject")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cl := h.Listener(ln)
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
			time.Sleep(50 * time.Millisecond)
		}
	}()
	conn, err := cl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("listener-wrapped conn did not inject")
	}
}

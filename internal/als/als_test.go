package als

import (
	"context"
	"math/rand"
	"testing"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

func planted(m, n, nnz int, seed int64) (*sparse.Matrix, *sparse.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	const rank = 3
	p := make([]float32, m*rank)
	q := make([]float32, n*rank)
	for i := range p {
		p[i] = rng.Float32()
	}
	for i := range q {
		q[i] = rng.Float32()
	}
	gen := func(count int) *sparse.Matrix {
		out := sparse.New(m, n)
		for i := 0; i < count; i++ {
			u := rng.Intn(m)
			v := rng.Intn(n)
			var dot float32
			for j := 0; j < rank; j++ {
				dot += p[u*rank+j] * q[v*rank+j]
			}
			out.Add(int32(u), int32(v), dot+float32(rng.NormFloat64()*0.02))
		}
		return out
	}
	return gen(nnz), gen(nnz / 5)
}

func TestALSConverges(t *testing.T) {
	train, test := planted(80, 60, 4000, 1)
	f := model.NewFactors(80, 60, 6, rand.New(rand.NewSource(1)))
	before := model.RMSE(f, test)
	if _, err := Train(context.Background(), train, f, Params{K: 6, Lambda: 0.05, Iters: 10, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	after := model.RMSE(f, test)
	if after >= before {
		t.Fatalf("RMSE did not improve: %v -> %v", before, after)
	}
	if after > 0.15 {
		t.Fatalf("ALS RMSE %v too high on planted rank-3 data", after)
	}
}

func TestALSMonotoneTrainingLoss(t *testing.T) {
	train, _ := planted(50, 50, 2500, 2)
	f := model.NewFactors(50, 50, 6, rand.New(rand.NewSource(2)))
	prev := model.Loss(f, train, 0.05, 0.05)
	for it := 0; it < 5; it++ {
		if _, err := Train(context.Background(), train, f, Params{K: 6, Lambda: 0.05, Iters: 1, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		cur := model.Loss(f, train, 0.05, 0.05)
		// ALS solves each subproblem exactly: the regularised objective
		// cannot increase.
		if cur > prev*1.0001 {
			t.Fatalf("ALS loss rose at iter %d: %v -> %v", it, prev, cur)
		}
		prev = cur
	}
}

func TestALSWorkerCountsAgree(t *testing.T) {
	train, test := planted(40, 40, 2000, 3)
	f1 := model.NewFactors(40, 40, 4, rand.New(rand.NewSource(3)))
	f4 := f1.Clone()
	if _, err := Train(context.Background(), train, f1, Params{K: 4, Lambda: 0.05, Iters: 3, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(context.Background(), train, f4, Params{K: 4, Lambda: 0.05, Iters: 3, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	// Row solves are independent, so worker count must not change results
	// beyond float noise.
	r1 := model.RMSE(f1, test)
	r4 := model.RMSE(f4, test)
	if diff := r1 - r4; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("worker count changed RMSE: %v vs %v", r1, r4)
	}
}

func TestALSErrors(t *testing.T) {
	train, _ := planted(10, 10, 100, 4)
	f := model.NewFactors(10, 10, 4, rand.New(rand.NewSource(4)))
	if _, err := Train(context.Background(), train, f, Params{K: 8, Lambda: 0.05, Iters: 1}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if _, err := Train(context.Background(), sparse.New(10, 10), f, Params{K: 4, Lambda: 0.05, Iters: 1}); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

// TestFoldInItemMatchesDenseReference checks the item fold-in against an
// independent dense solver: build A = Σ p puᵀ + λ|users|·I and b = Σ r·pu
// in plain float64 loops, solve with a from-scratch elimination, and demand
// agreement to float tolerance.
func TestFoldInItemMatchesDenseReference(t *testing.T) {
	const k = 5
	rng := rand.New(rand.NewSource(7))
	f := model.NewFactors(30, 20, k, rng)
	users := []int32{2, 11, 17, 23, 29}
	vals := make([]float32, len(users))
	for i := range vals {
		vals[i] = rng.Float32()*4 + 1
	}
	const lambda = 0.07

	got, err := FoldInItem(f, users, vals, lambda)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: explicit normal equations in float64.
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
		a[i][i] = lambda * float64(len(users))
	}
	b := make([]float64, k)
	for idx, u := range users {
		pu := f.Row(u)
		for i := 0; i < k; i++ {
			b[i] += float64(vals[idx]) * float64(pu[i])
			for j := 0; j < k; j++ {
				a[i][j] += float64(pu[i]) * float64(pu[j])
			}
		}
	}
	want := solveRef(a, b)

	for i := 0; i < k; i++ {
		if d := float64(got[i]) - want[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("q[%d] = %v, reference %v", i, got[i], want[i])
		}
	}
}

// solveRef is a deliberately independent Gaussian elimination (no pivot
// tricks shared with solveDense) for cross-checking fold-in solutions.
func solveRef(a [][]float64, b []float64) []float64 {
	k := len(b)
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if ar, ap := a[r][col], a[pivot][col]; ar*ar > ap*ap {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := 0; r < k; r++ {
			if r == col || a[col][col] == 0 {
				continue
			}
			factor := a[r][col] / a[col][col]
			for j := col; j < k; j++ {
				a[r][j] -= factor * a[col][j]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, k)
	for i := range x {
		if a[i][i] != 0 {
			x[i] = b[i] / a[i][i]
		}
	}
	return x
}

// TestFoldInItemMirrorsFoldInUser: transposing the problem (swap P/Q roles)
// must give the identical solution — the two fold-ins are the same solver
// against opposite frozen sides.
func TestFoldInItemMirrorsFoldInUser(t *testing.T) {
	const k = 4
	rng := rand.New(rand.NewSource(8))
	f := model.NewFactors(12, 9, k, rng)
	users := []int32{0, 3, 7, 11}
	vals := []float32{3.5, 2.0, 4.5, 1.0}
	const lambda = 0.1

	qv, err := FoldInItem(f, users, vals, lambda)
	if err != nil {
		t.Fatal(err)
	}

	// Transposed factors: P' = Q, Q' = P; item fold-in on f equals user
	// fold-in on the transpose.
	ft := &model.Factors{M: f.N, N: f.M, K: k, P: f.Q, Q: f.P}
	pu, err := FoldInUser(ft, users, vals, lambda)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qv {
		if qv[i] != pu[i] {
			t.Fatalf("fold-in mirror mismatch at %d: %v vs %v", i, qv[i], pu[i])
		}
	}
}

func TestFoldInItemErrors(t *testing.T) {
	f := model.NewFactors(10, 10, 4, rand.New(rand.NewSource(9)))
	if _, err := FoldInItem(f, nil, nil, 0.1); err == nil {
		t.Fatal("empty users accepted")
	}
	if _, err := FoldInItem(f, []int32{1}, []float32{1, 2}, 0.1); err == nil {
		t.Fatal("mismatched users/vals accepted")
	}
	if _, err := FoldInItem(f, []int32{10}, []float32{1}, 0.1); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if _, err := FoldInItem(f, []int32{1}, []float32{1}, 0); err == nil {
		t.Fatal("lambda=0 accepted")
	}
	if err := FoldInItemInto(make([]float32, 3), f, []int32{1}, []float32{1}, 0.1,
		make([]float64, 16), make([]float64, 4)); err == nil {
		t.Fatal("short output buffer accepted")
	}
}

func TestSolveDense(t *testing.T) {
	// 2x2 system: [2 1; 1 3] x = [5; 10] → x = (1, 3).
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	solveDense(a, b, 2)
	if d := b[0] - 1; d > 1e-9 || d < -1e-9 {
		t.Fatalf("x0 = %v", b[0])
	}
	if d := b[1] - 3; d > 1e-9 || d < -1e-9 {
		t.Fatalf("x1 = %v", b[1])
	}
}

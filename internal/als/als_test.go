package als

import (
	"context"
	"math/rand"
	"testing"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

func planted(m, n, nnz int, seed int64) (*sparse.Matrix, *sparse.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	const rank = 3
	p := make([]float32, m*rank)
	q := make([]float32, n*rank)
	for i := range p {
		p[i] = rng.Float32()
	}
	for i := range q {
		q[i] = rng.Float32()
	}
	gen := func(count int) *sparse.Matrix {
		out := sparse.New(m, n)
		for i := 0; i < count; i++ {
			u := rng.Intn(m)
			v := rng.Intn(n)
			var dot float32
			for j := 0; j < rank; j++ {
				dot += p[u*rank+j] * q[v*rank+j]
			}
			out.Add(int32(u), int32(v), dot+float32(rng.NormFloat64()*0.02))
		}
		return out
	}
	return gen(nnz), gen(nnz / 5)
}

func TestALSConverges(t *testing.T) {
	train, test := planted(80, 60, 4000, 1)
	f := model.NewFactors(80, 60, 6, rand.New(rand.NewSource(1)))
	before := model.RMSE(f, test)
	if _, err := Train(context.Background(), train, f, Params{K: 6, Lambda: 0.05, Iters: 10, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	after := model.RMSE(f, test)
	if after >= before {
		t.Fatalf("RMSE did not improve: %v -> %v", before, after)
	}
	if after > 0.15 {
		t.Fatalf("ALS RMSE %v too high on planted rank-3 data", after)
	}
}

func TestALSMonotoneTrainingLoss(t *testing.T) {
	train, _ := planted(50, 50, 2500, 2)
	f := model.NewFactors(50, 50, 6, rand.New(rand.NewSource(2)))
	prev := model.Loss(f, train, 0.05, 0.05)
	for it := 0; it < 5; it++ {
		if _, err := Train(context.Background(), train, f, Params{K: 6, Lambda: 0.05, Iters: 1, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		cur := model.Loss(f, train, 0.05, 0.05)
		// ALS solves each subproblem exactly: the regularised objective
		// cannot increase.
		if cur > prev*1.0001 {
			t.Fatalf("ALS loss rose at iter %d: %v -> %v", it, prev, cur)
		}
		prev = cur
	}
}

func TestALSWorkerCountsAgree(t *testing.T) {
	train, test := planted(40, 40, 2000, 3)
	f1 := model.NewFactors(40, 40, 4, rand.New(rand.NewSource(3)))
	f4 := f1.Clone()
	if _, err := Train(context.Background(), train, f1, Params{K: 4, Lambda: 0.05, Iters: 3, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(context.Background(), train, f4, Params{K: 4, Lambda: 0.05, Iters: 3, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	// Row solves are independent, so worker count must not change results
	// beyond float noise.
	r1 := model.RMSE(f1, test)
	r4 := model.RMSE(f4, test)
	if diff := r1 - r4; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("worker count changed RMSE: %v vs %v", r1, r4)
	}
}

func TestALSErrors(t *testing.T) {
	train, _ := planted(10, 10, 100, 4)
	f := model.NewFactors(10, 10, 4, rand.New(rand.NewSource(4)))
	if _, err := Train(context.Background(), train, f, Params{K: 8, Lambda: 0.05, Iters: 1}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if _, err := Train(context.Background(), sparse.New(10, 10), f, Params{K: 4, Lambda: 0.05, Iters: 1}); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestSolveDense(t *testing.T) {
	// 2x2 system: [2 1; 1 3] x = [5; 10] → x = (1, 3).
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	solveDense(a, b, 2)
	if d := b[0] - 1; d > 1e-9 || d < -1e-9 {
		t.Fatalf("x0 = %v", b[0])
	}
	if d := b[1] - 3; d > 1e-9 || d < -1e-9 {
		t.Fatalf("x1 = %v", b[1])
	}
}

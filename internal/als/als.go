// Package als implements the alternating-least-squares baseline for matrix
// factorization (Koren, Bell, Volinsky [16]; Section III-C of the paper):
// each iteration fixes Q and solves the regularised least-squares problem
// for every row of P exactly, then fixes P and solves for every column of
// Q. Updates within one half-iteration are embarrassingly parallel, which
// is why ALS is popular despite costing O(nnz·k² + (m+n)·k³) per iteration
// versus SGD's O(nnz·k).
package als

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

// Params configures ALS training.
type Params struct {
	K       int
	Lambda  float32 // ridge regularisation (λP = λQ)
	Iters   int
	Workers int // goroutines per half-iteration; <=0 means 1

	// Progress, when non-nil, is called after each completed iteration
	// (both half-solves finished, all workers joined, factors quiescent)
	// with the 1-based iteration and the cumulative ridge-solve count.
	Progress func(iter int, solves int64)
}

// Train runs ALS on the given pre-initialised factors and returns the
// number of k×k ridge systems solved — the algorithm's unit of work, the
// ALS counterpart of an SGD trainer's rating-update count.
//
// Cancellation is observed at iteration boundaries: when ctx fires, Train
// stops before the next iteration and returns the solves done so far
// together with the context error. The factors are left in the consistent
// state of the last completed iteration.
func Train(ctx context.Context, train *sparse.Matrix, f *model.Factors, p Params) (int64, error) {
	if p.K != f.K {
		return 0, fmt.Errorf("als: params K=%d but factors K=%d", p.K, f.K)
	}
	if train.NNZ() == 0 {
		return 0, sparse.ErrEmpty
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rows := train.ToCSR()
	cols := train.ToCSC()
	var solves int64
	for it := 0; it < p.Iters; it++ {
		if ctx.Err() != nil {
			return solves, context.Cause(ctx)
		}
		solves += solveSide(rows, f.P, f.Q, f.K, p.Lambda, p.Workers)
		solves += solveSide(cols, f.Q, f.P, f.K, p.Lambda, p.Workers)
		if p.Progress != nil {
			p.Progress(it+1, solves)
		}
	}
	return solves, nil
}

// FoldInUser solves the single-user ridge system against frozen item
// factors: min_p Σ_{v∈items} (vals_v − p·q_v)² + λ|items|·‖p‖², returning
// the k-vector p. This is exactly one row of the ALS P-step, exposed for
// the serving layer's cold-start fold-in: a user unseen at training time
// gets a factor vector from a handful of ratings without retraining.
func FoldInUser(f *model.Factors, items []int32, vals []float32, lambda float32) ([]float32, error) {
	k := f.K
	p := make([]float32, k)
	if err := FoldInUserInto(p, f, items, vals, lambda, make([]float64, k*k), make([]float64, k)); err != nil {
		return nil, err
	}
	return p, nil
}

// FoldInUserInto is FoldInUser with caller-owned buffers: the solved vector
// lands in p (len f.K), and a (len f.K²) / b (len f.K) hold the ridge
// normal-equation matrix and RHS. The serving layer pools them across
// cold-start requests — at k=64 the matrix alone is 32 KiB per solve, by
// far the biggest allocation on that path.
func FoldInUserInto(p []float32, f *model.Factors, items []int32, vals []float32, lambda float32, a, b []float64) error {
	if len(items) == 0 || len(items) != len(vals) {
		return fmt.Errorf("als: fold-in needs matching non-empty items/vals, got %d/%d", len(items), len(vals))
	}
	for _, v := range items {
		if v < 0 || int(v) >= f.N {
			return fmt.Errorf("als: fold-in item %d outside [0,%d)", v, f.N)
		}
	}
	if lambda <= 0 {
		return fmt.Errorf("als: fold-in requires lambda > 0, got %v", lambda)
	}
	k := f.K
	if len(p) != k || len(a) != k*k || len(b) != k {
		return fmt.Errorf("als: fold-in buffer sizes p=%d a=%d b=%d, want %d/%d/%d",
			len(p), len(a), len(b), k, k*k, k)
	}
	solveRow(p, f.Q, items, vals, k, lambda, a, b)
	return nil
}

// FoldInItem is the item-side mirror of FoldInUser: it solves the
// single-item ridge system against frozen user factors, min_q Σ_{u∈users}
// (vals_u − p_u·q)² + λ|users|·‖q‖², returning the k-vector q. One row of
// the ALS Q-step, exposed so a catalog item added after training (with a
// few early ratings) gets a servable factor vector without retraining —
// the item-side half of cold start, and the merge primitive a sharded
// serving tier needs for items that arrive between distributed snapshots.
func FoldInItem(f *model.Factors, users []int32, vals []float32, lambda float32) ([]float32, error) {
	k := f.K
	q := make([]float32, k)
	if err := FoldInItemInto(q, f, users, vals, lambda, make([]float64, k*k), make([]float64, k)); err != nil {
		return nil, err
	}
	return q, nil
}

// FoldInItemInto is FoldInItem with caller-owned buffers, mirroring
// FoldInUserInto: the solved vector lands in q (len f.K), and a (len f.K²) /
// b (len f.K) hold the ridge normal-equation matrix and RHS.
func FoldInItemInto(q []float32, f *model.Factors, users []int32, vals []float32, lambda float32, a, b []float64) error {
	if len(users) == 0 || len(users) != len(vals) {
		return fmt.Errorf("als: fold-in needs matching non-empty users/vals, got %d/%d", len(users), len(vals))
	}
	for _, u := range users {
		if u < 0 || int(u) >= f.M {
			return fmt.Errorf("als: fold-in user %d outside [0,%d)", u, f.M)
		}
	}
	if lambda <= 0 {
		return fmt.Errorf("als: fold-in requires lambda > 0, got %v", lambda)
	}
	k := f.K
	if len(q) != k || len(a) != k*k || len(b) != k {
		return fmt.Errorf("als: fold-in buffer sizes q=%d a=%d b=%d, want %d/%d/%d",
			len(q), len(a), len(b), k, k*k, k)
	}
	solveRow(q, f.P, users, vals, k, lambda, a, b)
	return nil
}

// solveSide solves min ||r_u − X_u·other|| + λ||x_u||² for every row u of
// the CSR view — one k×k ridge system per non-empty row — and returns the
// number of systems solved.
func solveSide(view *sparse.CSR, target, other []float32, k int, lambda float32, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	var solved atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := view.Rows * w / workers
		hi := view.Rows * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Scratch buffers reused across rows.
			a := make([]float64, k*k)
			b := make([]float64, k)
			n := int64(0)
			for u := lo; u < hi; u++ {
				cols, vals := view.Row(u)
				if len(cols) == 0 {
					continue
				}
				solveRow(target[u*k:(u+1)*k], other, cols, vals, k, lambda, a, b)
				n++
			}
			solved.Add(n)
		}(lo, hi)
	}
	wg.Wait()
	return solved.Load()
}

// solveRow builds A = Σ q qᵀ + λI, b = Σ r·q over the row's ratings and
// solves A x = b by Cholesky-free Gaussian elimination with partial
// pivoting (k is small).
func solveRow(x []float32, other []float32, cols []int32, vals []float32, k int, lambda float32, a, b []float64) {
	for i := range a {
		a[i] = 0
	}
	for i := range b {
		b[i] = 0
	}
	for i := 0; i < k; i++ {
		a[i*k+i] = float64(lambda) * float64(len(cols))
	}
	for idx, v := range cols {
		q := other[int(v)*k : (int(v)+1)*k]
		r := float64(vals[idx])
		for i := 0; i < k; i++ {
			qi := float64(q[i])
			b[i] += r * qi
			row := a[i*k:]
			for j := i; j < k; j++ {
				row[j] += qi * float64(q[j])
			}
		}
	}
	// Mirror the upper triangle.
	for i := 1; i < k; i++ {
		for j := 0; j < i; j++ {
			a[i*k+j] = a[j*k+i]
		}
	}
	solveDense(a, b, k)
	for i := 0; i < k; i++ {
		x[i] = float32(b[i])
	}
}

// solveDense solves the k×k system in place (a is destroyed, b becomes x).
func solveDense(a, b []float64, k int) {
	for col := 0; col < k; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < k; r++ {
			if abs(a[r*k+col]) > abs(a[pivot*k+col]) {
				pivot = r
			}
		}
		if pivot != col {
			for j := 0; j < k; j++ {
				a[col*k+j], a[pivot*k+j] = a[pivot*k+j], a[col*k+j]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		p := a[col*k+col]
		if p == 0 {
			continue // singular direction: leave x=0 there (ridge makes this rare)
		}
		for r := col + 1; r < k; r++ {
			factor := a[r*k+col] / p
			if factor == 0 {
				continue
			}
			for j := col; j < k; j++ {
				a[r*k+j] -= factor * a[col*k+j]
			}
			b[r] -= factor * b[col]
		}
	}
	for col := k - 1; col >= 0; col-- {
		p := a[col*k+col]
		if p == 0 {
			b[col] = 0
			continue
		}
		sum := b[col]
		for j := col + 1; j < k; j++ {
			sum -= a[col*k+j] * b[j]
		}
		b[col] = sum / p
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

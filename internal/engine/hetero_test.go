package engine

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hsgd/internal/device"
	"hsgd/internal/model"
	"hsgd/internal/progress"
)

// TestHeteroEngineConverges trains the small MovieLens-shaped dataset on
// the two-class executor engine: full epoch budget, per-epoch history,
// at least one epoch's worth of updates per epoch, and a final RMSE
// clearly better than the first.
func TestHeteroEngineConverges(t *testing.T) {
	train, test := testData(t, 0.05)
	rep, f, err := TrainHetero(context.Background(), train, HeteroOptions{
		Options: Options{Threads: 4, Params: testParams(6), Seed: 1, Test: test},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 6 || len(rep.History) != 6 {
		t.Fatalf("epochs=%d history=%d, want 6/6", rep.Epochs, len(rep.History))
	}
	if rep.TotalUpdates < int64(6*train.NNZ()) {
		t.Fatalf("updates %d < 6 epochs worth (%d)", rep.TotalUpdates, 6*train.NNZ())
	}
	first, last := rep.History[0].RMSE, rep.History[len(rep.History)-1].RMSE
	if math.IsNaN(last) || last <= 0 || last >= first {
		t.Fatalf("RMSE did not improve: first %v last %v", first, last)
	}
	if got := model.RMSE(f, test); math.Abs(got-rep.FinalRMSE) > 1e-9 {
		t.Fatalf("returned factors RMSE %v != report %v", got, rep.FinalRMSE)
	}
}

// TestHeteroEngineClassStats: the report and progress events break work
// down per executor class, both classes actually process ratings, and the
// split stays a valid fraction.
func TestHeteroEngineClassStats(t *testing.T) {
	train, test := testData(t, 0.05)
	var sawClasses bool
	rep, _, err := TrainHetero(context.Background(), train, HeteroOptions{
		Options: Options{
			Threads: 4, Params: testParams(5), Seed: 2, Test: test,
			Progress: func(e progress.Event) {
				if len(e.Classes) == 2 {
					sawClasses = true
					if e.Algorithm != "hetero" {
						t.Errorf("event algorithm %q", e.Algorithm)
					}
				}
			},
		},
		BatchedWorkers: 1,
		// Pin the split and keep stealing off so both classes verifiably
		// process their own regions on this tiny, milliseconds-long run
		// (with stealing on, the CPU class can legitimately drain the
		// whole GPU region before the batched pipeline wins an acquire).
		Alpha:      0.5,
		StaticOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawClasses {
		t.Fatal("no progress event carried per-class stats")
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("report has %d classes, want 2", len(rep.Classes))
	}
	var byClass = map[string]int64{}
	var sum int64
	for _, c := range rep.Classes {
		byClass[c.Class] = c.Updates
		sum += c.Updates
	}
	if byClass[string(device.ClassCPU)] <= 0 || byClass[string(device.ClassBatched)] <= 0 {
		t.Fatalf("a class did no work: %+v", rep.Classes)
	}
	if sum != rep.TotalUpdates {
		t.Fatalf("class updates sum %d != total %d", sum, rep.TotalUpdates)
	}
	if rep.SplitAlpha <= 0 || rep.SplitAlpha >= 1 {
		t.Fatalf("split alpha %v outside (0,1)", rep.SplitAlpha)
	}
}

// TestHeteroEngineFixedAlphaAndStaticOnly: a positive Alpha pins the split
// (no repartitioning), and StaticOnly keeps the steal counters at zero.
func TestHeteroEngineFixedAlphaAndStaticOnly(t *testing.T) {
	train, test := testData(t, 0.04)
	rep, _, err := TrainHetero(context.Background(), train, HeteroOptions{
		Options:    Options{Threads: 3, Params: testParams(4), Seed: 3, Test: test},
		Alpha:      0.5,
		StaticOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SplitAlpha != 0.5 {
		t.Fatalf("fixed alpha drifted to %v", rep.SplitAlpha)
	}
	for _, c := range rep.Classes {
		if c.Steals != 0 {
			t.Fatalf("static-only run stole work: %+v", c)
		}
	}
}

// TestHeteroEngineSuperblockOverride: a finer column layout still settles
// every epoch exactly.
func TestHeteroEngineSuperblockOverride(t *testing.T) {
	train, test := testData(t, 0.04)
	rep, _, err := TrainHetero(context.Background(), train, HeteroOptions{
		Options:    Options{Threads: 3, Params: testParams(3), Seed: 4, Test: test},
		Superblock: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 3 || len(rep.History) != 3 {
		t.Fatalf("epochs=%d history=%d, want 3/3", rep.Epochs, len(rep.History))
	}
}

// TestHeteroEngineInterrupted: cancellation follows the engine convention —
// partial report, usable factors, context error.
func TestHeteroEngineInterrupted(t *testing.T) {
	train, _ := testData(t, 0.05)
	p := testParams(1 << 20)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, f, err := TrainHetero(ctx, train, HeteroOptions{
		Options: Options{Threads: 2, Params: p, Seed: 5},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if rep == nil || !rep.Interrupted || f == nil {
		t.Fatalf("rep=%+v f=%v, want interrupted partials", rep, f != nil)
	}
}

// TestHeteroEngineRepartition pins the online profiling machinery end to
// end on a deliberately bad initial guess: with many CPU workers and a
// skewed fixed-free split the cost models must move α off the equal-speed
// prior within the profiling window (the exact landing point is
// hardware-dependent, so the assertion is only that adaptation happened
// and training still settled every epoch exactly).
func TestHeteroEngineRepartition(t *testing.T) {
	train, test := testData(t, 0.05)
	rep, _, err := TrainHetero(context.Background(), train, HeteroOptions{
		Options: Options{Threads: 4, Params: testParams(6), Seed: 6, Test: test},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 6 {
		t.Fatalf("epochs = %d, want 6", rep.Epochs)
	}
	// The equal-speed prior for 3 CPU + 1 batched worker is 0.25; any
	// profiling-driven move shows up as a different final split. A run
	// where the measured speeds genuinely match the prior keeps it — so
	// only assert the split is sane, and that a full epoch of updates
	// still separates consecutive boundaries after any repartition.
	if rep.SplitAlpha < alphaMin || rep.SplitAlpha > alphaMax {
		t.Fatalf("split alpha %v escaped [%v,%v]", rep.SplitAlpha, alphaMin, alphaMax)
	}
	if rep.TotalUpdates < int64(rep.Epochs*train.NNZ()) {
		t.Fatalf("updates %d below %d epochs worth", rep.TotalUpdates, rep.Epochs)
	}
}

package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hsgd/internal/obs"
)

// chromeTrace mirrors the JSON Object Format chrome://tracing and Perfetto
// load — the shape hsgd-train -trace-out must produce.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceCaptureWritesChromeJSON runs the hetero engine with a trace
// armed for epoch 2 and checks the recorded timeline is a loadable Chrome
// trace: thread-name metadata for the engine and every executor track,
// duration spans for worker blocks and the engine barrier, and timestamps
// confined to the one recorded epoch. This is the engine-level coverage
// for hsgd-train -trace-out, which just forwards the same Options.
func TestTraceCaptureWritesChromeJSON(t *testing.T) {
	train, test := testData(t, 0.05)
	tr := obs.NewTrace()
	rep, _, err := TrainHetero(context.Background(), train, HeteroOptions{
		Options: Options{
			Threads: 4, Params: testParams(3), Seed: 3, Test: test,
			Trace: tr, TraceEpoch: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 3 {
		t.Fatalf("epochs = %d, want 3", rep.Epochs)
	}
	if tr.Active() {
		t.Fatal("trace still armed after the target epoch finished")
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}

	path := filepath.Join(t.TempDir(), "epoch.trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want \"ms\"", ct.DisplayTimeUnit)
	}

	threads := map[int]string{}
	spans := 0
	names := map[string]int{}
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", e.Name)
			}
			threads[e.Tid], _ = e.Args["name"].(string)
		case "X":
			spans++
			names[e.Name]++
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("span %q has negative ts/dur: %v/%v", e.Name, e.Ts, e.Dur)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if spans == 0 {
		t.Fatal("no duration spans in trace file")
	}
	if threads[0] != "engine" {
		t.Fatalf("tid 0 named %q, want \"engine\"", threads[0])
	}
	if len(threads) < 2 {
		t.Fatalf("only %d named tracks, want engine plus executors", len(threads))
	}
	// Worker blocks and the quiescence barrier must both appear: a trace
	// with one but not the other means an epoch boundary leaked through.
	if names["block"]+names["steal"]+names["kernel"]+names["steal-kernel"] == 0 {
		t.Fatalf("no executor work spans recorded: %v", names)
	}
	if names["barrier"] == 0 {
		t.Fatalf("no engine barrier span recorded: %v", names)
	}
}

// TestTraceArmsOnlyTargetEpoch: spans from epochs other than TraceEpoch
// must not leak into the recording — the whole point of single-epoch
// capture is a bounded file. With the trace armed for the last epoch, the
// recorded span timestamps must all fall after the earlier epochs' eval
// spans would have been emitted (which is checked indirectly: exactly one
// eval span, the target epoch's own).
func TestTraceArmsOnlyTargetEpoch(t *testing.T) {
	train, test := testData(t, 0.03)
	tr := obs.NewTrace()
	_, _, err := TrainHetero(context.Background(), train, HeteroOptions{
		Options: Options{
			Threads: 2, Params: testParams(4), Seed: 4, Test: test,
			Trace: tr, TraceEpoch: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	evals := 0
	for _, e := range ct.TraceEvents {
		if e.Ph == "X" && e.Name == "eval" {
			evals++
		}
	}
	if evals != 1 {
		t.Fatalf("recorded %d eval spans, want exactly the target epoch's 1", evals)
	}
}

package engine_test

// Engine-vs-legacy training benchmark on the Netflix-shaped synthetic
// dataset at 8 threads — the acceptance benchmark for the lock-striped
// engine (and the one cmd/hsgd-bench runs in CI to emit BENCH_train.json).
// The legacy trainer is the pre-engine global-mutex FPSGD loop retained as
// core.TrainRealLegacy.

import (
	"context"
	"testing"

	"hsgd/internal/core"
	"hsgd/internal/dataset"
	"hsgd/internal/engine"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

const benchThreads = 8

func benchData(b *testing.B) (*sparse.Matrix, *sparse.Matrix) {
	b.Helper()
	train, test, err := dataset.Generate(dataset.Netflix().Scale(0.1), 42)
	if err != nil {
		b.Fatal(err)
	}
	return train, test
}

func benchParams() sgd.Params {
	// Ten epochs so the engine's one-time PackSOA cost amortises the way a
	// real training run (paper default: 20 iterations) amortises it.
	return sgd.Params{K: 32, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.005, Iters: 10}
}

// BenchmarkTrainEngine8 trains on the lock-striped engine.
func BenchmarkTrainEngine8(b *testing.B) {
	train, test := benchData(b)
	b.SetBytes(int64(train.NNZ()) * int64(benchParams().Iters))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _, err := engine.Train(context.Background(), train, engine.Options{
			Threads: benchThreads, Params: benchParams(), Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.TotalUpdates)/rep.Seconds/1e6, "Mupd/s")
	}
	b.StopTimer()
	rep, f, err := engine.Train(context.Background(), train, engine.Options{Threads: benchThreads, Params: benchParams(), Seed: 0, Test: test})
	if err != nil {
		b.Fatal(err)
	}
	_ = f
	b.ReportMetric(rep.FinalRMSE, "rmse")
}

// BenchmarkTrainLegacy8 trains on the pre-engine global-mutex loop.
func BenchmarkTrainLegacy8(b *testing.B) {
	train, test := benchData(b)
	b.SetBytes(int64(train.NNZ()) * int64(benchParams().Iters))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _, err := core.TrainRealLegacy(train, core.RealOptions{
			Threads: benchThreads, Params: benchParams(), Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.TotalUpdates)/rep.Seconds/1e6, "Mupd/s")
	}
	b.StopTimer()
	rep, _, err := core.TrainRealLegacy(train, core.RealOptions{Threads: benchThreads, Params: benchParams(), Seed: 0, Test: test})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.FinalRMSE, "rmse")
}

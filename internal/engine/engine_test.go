package engine

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hsgd/internal/dataset"
	"hsgd/internal/model"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

func testData(t testing.TB, scale float64) (*sparse.Matrix, *sparse.Matrix) {
	t.Helper()
	train, test, err := dataset.Generate(dataset.MovieLens().Scale(scale), 1)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func testParams(iters int) sgd.Params {
	return sgd.Params{K: 16, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01, Iters: iters}
}

// TestEngineConverges trains a small MovieLens-shaped dataset and checks the
// RMSE trajectory behaves: full epoch budget spent, monotone-ish improvement,
// and a final RMSE clearly better than the untrained model.
func TestEngineConverges(t *testing.T) {
	train, test := testData(t, 0.05)
	rep, f, err := Train(context.Background(), train, Options{Threads: 4, Params: testParams(6), Seed: 1, Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 6 {
		t.Fatalf("epochs = %d, want 6", rep.Epochs)
	}
	if len(rep.History) != 6 {
		t.Fatalf("history has %d points, want 6", len(rep.History))
	}
	if rep.TotalUpdates < int64(6*train.NNZ()) {
		t.Fatalf("updates %d < 6 epochs worth (%d)", rep.TotalUpdates, 6*train.NNZ())
	}
	first, last := rep.History[0].RMSE, rep.History[len(rep.History)-1].RMSE
	if math.IsNaN(last) || last <= 0 || last >= first {
		t.Fatalf("RMSE did not improve: first %v last %v", first, last)
	}
	if got := model.RMSE(f, test); math.Abs(got-rep.FinalRMSE) > 1e-9 {
		t.Fatalf("returned factors RMSE %v != report %v", got, rep.FinalRMSE)
	}
}

// TestEngineQuiescenceBarrier drives many short epochs with many workers —
// under -race this is the satellite test that the barrier never evaluates
// (reads the factors, writes checkpoints) while a worker holds a block. The
// engine also enforces the invariant itself: InFlight()!=0 at a boundary
// panics.
func TestEngineQuiescenceBarrier(t *testing.T) {
	train, test := testData(t, 0.03)
	dir := t.TempDir()
	rep, _, err := Train(context.Background(), train, Options{
		Threads:        8,
		Params:         testParams(8),
		Seed:           2,
		Test:           test,
		CheckpointPath: filepath.Join(dir, "model.hfac"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 8 || rep.Checkpoints != 8 {
		t.Fatalf("epochs=%d checkpoints=%d, want 8/8", rep.Epochs, rep.Checkpoints)
	}
}

// TestEngineCheckpointResume round-trips a mid-train snapshot through
// model.Save/Load and checks that resumed training lands within tolerance of
// the uninterrupted run's RMSE.
func TestEngineCheckpointResume(t *testing.T) {
	train, test := testData(t, 0.05)
	const total, cut = 8, 4
	p := testParams(total)

	// Uninterrupted reference.
	full, _, err := Train(context.Background(), train, Options{Threads: 4, Params: p, Seed: 3, Test: test})
	if err != nil {
		t.Fatal(err)
	}

	// First half, checkpointing every epoch.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.hfac")
	half := p
	half.Iters = cut
	firstRep, _, err := Train(context.Background(), train, Options{
		Threads: 4, Params: half, Seed: 3, Test: test,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if firstRep.Epochs != cut || firstRep.Checkpoints != cut {
		t.Fatalf("first half: epochs=%d checkpoints=%d", firstRep.Epochs, firstRep.Checkpoints)
	}

	// Resume from the snapshot on disk.
	loaded, err := model.LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, _, err := Train(context.Background(), train, Options{
		Threads: 4, Params: p, Seed: 3, Test: test,
		Init: loaded, StartEpoch: cut,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Epochs != total {
		t.Fatalf("resumed run stopped at epoch %d, want %d", resumed.Epochs, total)
	}
	if resumed.TotalUpdates < int64((total-cut)*train.NNZ()) {
		t.Fatalf("resumed run processed %d updates, want >= %d", resumed.TotalUpdates, (total-cut)*train.NNZ())
	}
	// Block scheduling is nondeterministic across runs, so the trajectories
	// differ in low-order digits; the resumed model must still land where
	// the uninterrupted one did.
	diff := math.Abs(resumed.FinalRMSE - full.FinalRMSE)
	if diff > 0.05*full.FinalRMSE {
		t.Fatalf("resumed RMSE %v vs uninterrupted %v (diff %v beyond 5%% tolerance)",
			resumed.FinalRMSE, full.FinalRMSE, diff)
	}
}

// TestEngineResumeValidation pins the error cases of warm-start options.
func TestEngineResumeValidation(t *testing.T) {
	train, _ := testData(t, 0.02)
	p := testParams(4)
	bad, _, err := Train(context.Background(), train, Options{Threads: 2, Params: p, Init: &model.Factors{M: 1, N: 1, K: 1, P: []float32{0}, Q: []float32{0}}})
	if err == nil || bad != nil {
		t.Fatal("mismatched Init factors accepted")
	}
	if _, _, err := Train(context.Background(), train, Options{Threads: 2, Params: p, StartEpoch: 4}); err == nil {
		t.Fatal("StartEpoch >= Iters accepted")
	}
	if _, _, err := Train(context.Background(), train, Options{Threads: 2, Params: p, StartEpoch: -1}); err == nil {
		t.Fatal("negative StartEpoch accepted")
	}
}

// countingSchedule records Observe calls, standing in for BoldDriver.
type countingSchedule struct {
	rate   float32
	losses []float64
}

func (s *countingSchedule) Rate(int) float32     { return s.rate }
func (s *countingSchedule) Observe(loss float64) { s.losses = append(s.losses, loss) }

// TestEngineObservesSchedule checks adaptive schedules get one loss per
// epoch — with a test set (test RMSE) and without (sampled training RMSE).
func TestEngineObservesSchedule(t *testing.T) {
	train, test := testData(t, 0.03)
	s := &countingSchedule{rate: 0.01}
	rep, _, err := Train(context.Background(), train, Options{Threads: 4, Params: testParams(5), Seed: 4, Test: test, Schedule: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.losses) != rep.Epochs {
		t.Fatalf("observer saw %d losses for %d epochs", len(s.losses), rep.Epochs)
	}
	for i, l := range s.losses {
		if l != rep.History[i].RMSE {
			t.Fatalf("loss %d = %v, want test RMSE %v", i, l, rep.History[i].RMSE)
		}
	}

	s2 := &countingSchedule{rate: 0.01}
	rep2, _, err := Train(context.Background(), train, Options{Threads: 4, Params: testParams(3), Seed: 4, Schedule: s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.losses) != rep2.Epochs {
		t.Fatalf("observer without test set saw %d losses for %d epochs", len(s2.losses), rep2.Epochs)
	}
	for i, l := range s2.losses {
		if math.IsNaN(l) || l <= 0 {
			t.Fatalf("sampled training loss %d = %v", i, l)
		}
	}

	// BoldDriver end to end: the engine's Observe calls must move gamma.
	bd := sgd.NewBoldDriver(0.01)
	if _, _, err := Train(context.Background(), train, Options{Threads: 4, Params: testParams(4), Seed: 4, Test: test, Schedule: bd}); err != nil {
		t.Fatal(err)
	}
	if bd.Rate(0) == 0.01 {
		t.Fatal("BoldDriver rate unchanged after training: Observe not wired")
	}
}

// TestEngineTargetRMSE checks early stopping.
func TestEngineTargetRMSE(t *testing.T) {
	train, test := testData(t, 0.05)
	rep, _, err := Train(context.Background(), train, Options{
		Threads: 4, Params: testParams(50), Seed: 5, Test: test, TargetRMSE: 999,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 1 {
		t.Fatalf("trivially-reachable target did not stop at first epoch (epochs=%d)", rep.Epochs)
	}
}

// TestEngineCheckpointError surfaces a checkpoint write failure instead of
// silently dropping snapshots.
func TestEngineCheckpointError(t *testing.T) {
	train, _ := testData(t, 0.02)
	dir := t.TempDir()
	_, _, err := Train(context.Background(), train, Options{
		Threads: 2, Params: testParams(3), Seed: 6,
		CheckpointPath: filepath.Join(dir, "missing-dir", "model.hfac"),
	})
	if err == nil {
		t.Fatal("unwritable checkpoint path did not error")
	}
	// The failed run must not leave anything behind (no stray snapshot or
	// temp file) in the directory it was pointed at.
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(entries) != 0 {
		t.Fatalf("failed checkpoint run left %d entries in %s (first: %s)", len(entries), dir, entries[0].Name())
	}
}

// TestEngineFinalCheckpoint: the last epoch is checkpointed even when it
// falls off the CheckpointEvery stride, so the file on disk never lags the
// returned model.
func TestEngineFinalCheckpoint(t *testing.T) {
	train, _ := testData(t, 0.03)
	ckpt := filepath.Join(t.TempDir(), "model.hfac")
	rep, f, err := Train(context.Background(), train, Options{
		Threads: 2, Params: testParams(5), Seed: 7,
		CheckpointPath: ckpt, CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stride hits epochs 2 and 4; the final epoch 5 must be written too.
	if rep.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3 (epochs 2, 4, final 5)", rep.Checkpoints)
	}
	onDisk, err := model.LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.P {
		if onDisk.P[i] != f.P[i] {
			t.Fatalf("checkpoint lags returned model at P[%d]", i)
		}
	}
}

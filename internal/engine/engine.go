// Package engine is the wall-clock parallel training engine: FPSGD over a
// lock-striped block scheduler, a fused structure-of-arrays update kernel,
// and a train-to-serve checkpoint publisher.
//
// It replaces the original TrainReal design, which funnelled every block
// acquire and release through one global mutex + condition variable and
// busy-spun with runtime.Gosched when blocked — a contention wall at high
// thread counts and the opposite of FPSGD's conflict-free-scheduling idea.
// Here workers claim blocks with per-band atomic locks (sched.Striped), run
// the register-blocked fused kernel (sgd.UpdateBlockSOA) over the grid's
// structure-of-arrays block payloads, and meet only at epoch boundaries,
// where a lightweight quiescence barrier drains in-flight blocks before the
// factors are read for evaluation and checkpointing.
//
// The engine dispatches all work through the executor classes of
// internal/device. Train is the homogeneous path: latency-optimized CPU
// executors over the uniform lock-striped grid. TrainHetero (hetero.go) is
// the paper's HSGD* on real hardware: CPU executors plus throughput-
// optimized batched executors over the nonuniform two-region layout, with
// the split driven by cost models fitted to live measurements.
//
// Checkpoints are written atomically in the internal/model HFAC format, so
// the serving side's snapshot watcher (internal/serve.Store.Watch) can
// hot-swap a model mid-train — the train → checkpoint → hot-swap → serve
// pipeline — and a later run can resume from one via Options.Init.
//
// Training is a cancellable, observable session: Train takes a
// context.Context that workers poll at block-claim boundaries (an
// interrupted run still returns the best-so-far factors plus a final
// atomic checkpoint), and Options.Progress streams per-epoch events
// (internal/progress) from under the quiescence barrier.
package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsgd/internal/device"
	"hsgd/internal/grid"
	"hsgd/internal/model"
	"hsgd/internal/obs"
	"hsgd/internal/progress"
	"hsgd/internal/sched"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

// Options configures a training run.
type Options struct {
	Threads  int          // worker goroutines; <1 means GOMAXPROCS
	Params   sgd.Params   // hyperparameters; Iters is the total epoch budget
	Schedule sgd.Schedule // learning-rate schedule; nil means fixed Params.Gamma
	Seed     int64

	// Test, when non-nil, is evaluated at every epoch boundary under the
	// quiescence barrier; the trajectory lands in Report.History.
	Test *sparse.Matrix
	// TargetRMSE stops training early once the test RMSE reaches it.
	TargetRMSE float64

	// Init warm-starts training from existing factors (e.g. a checkpoint
	// loaded with model.LoadFile) instead of random initialisation. The
	// factors are trained in place and returned. Dimensions must match the
	// training matrix and Params.K.
	Init *model.Factors
	// StartEpoch is the number of epochs already completed by Init — it
	// offsets the epoch counter and the learning-rate schedule, so a
	// resumed run continues epoch-indexed schedules (fixed, inverse, chin)
	// where the interrupted run left off. Stateful schedules (BoldDriver)
	// keep their adapted gamma only in memory: a resume with a freshly
	// constructed bold driver restarts its adaptation from gamma0.
	// Training runs until the absolute epoch count reaches Params.Iters.
	StartEpoch int

	// CheckpointPath, when set, makes the engine atomically write the
	// factors there (HFAC format, temp file + rename) every
	// CheckpointEvery epochs — the hand-off point to the serving layer's
	// snapshot watcher. The final epoch is always checkpointed regardless
	// of the stride, and so is an interrupted run (see Train's context
	// semantics). CheckpointEvery <= 0 defaults to every epoch.
	CheckpointPath  string
	CheckpointEvery int

	// Progress, when non-nil, receives one KindEpoch event per epoch
	// boundary (plus KindCheckpoint after each snapshot and one final
	// KindDone/KindInterrupted). Events fire under the quiescence barrier,
	// so the callback may read the factors race-free; a slow callback
	// pauses training.
	Progress progress.Func

	// Trace, when non-nil, records one epoch's block-schedule timeline:
	// every executor's processed tasks (CPU blocks, batched kernels and
	// their overlapped background packs, steals) plus the engine's barrier
	// waits, evaluations and checkpoint writes, as Chrome trace-event
	// spans. The recorder is armed exactly for the epoch selected by
	// TraceEpoch and disarmed at its boundary; dump it afterwards with
	// Trace.WriteFile.
	Trace *obs.Trace
	// TraceEpoch selects which epoch of this run to record, 1-based
	// relative to StartEpoch; values below 1 record the first epoch.
	TraceEpoch int
}

// EvalPoint is one wall-clock RMSE measurement.
type EvalPoint struct {
	Time  float64 // seconds since training started
	Epoch int
	RMSE  float64
}

// Report summarises a run.
type Report struct {
	Seconds      float64
	Epochs       int // absolute epochs completed (includes StartEpoch)
	FinalRMSE    float64
	History      []EvalPoint
	TotalUpdates int64 // ratings processed by this run
	Checkpoints  int   // snapshots written
	Interrupted  bool  // run was stopped by context cancellation/deadline

	// Classes and SplitAlpha describe a heterogeneous run's final
	// per-executor-class breakdown (nil/zero for the homogeneous engine).
	Classes    []progress.ClassStat
	SplitAlpha float64
}

// Scheduler is what the engine needs from a block scheduler beyond the
// policy interface: a release-notification channel for parked workers and
// the in-flight probe the quiescence barrier drains on. sched.Striped and
// sched.HeteroScheduler both implement it.
type Scheduler interface {
	sched.Scheduler
	Blocked() <-chan struct{}
	InFlight() int
}

// LossObserver is implemented by adaptive schedules (sgd.BoldDriver): the
// engine feeds it the epoch's loss — the test RMSE when a test set is
// supplied, otherwise the RMSE over a fixed sample of the training ratings —
// at every epoch boundary.
type LossObserver interface {
	Observe(loss float64)
}

// LossSampleMax caps the training ratings scanned for the observer's loss
// when no test set is available.
const LossSampleMax = 65536

// LossSample returns the fixed training prefix evaluated for an adaptive
// schedule's loss when no test set is supplied — shared with the other
// trainers (hogwild) so their bold-driver adaptation sees the same signal.
func LossSample(train *sparse.Matrix) *sparse.Matrix {
	n := min(train.NNZ(), LossSampleMax)
	return &sparse.Matrix{Rows: train.Rows, Cols: train.Cols, Ratings: train.Ratings[:n]}
}

// blockedPoll bounds how long a worker sleeps after a failed acquire before
// rechecking: the release-notification channel coalesces wake-ups, so a
// waiter can miss one and must poll eventually. It also bounds how long the
// quiescence barrier can be delayed by a starved worker.
const blockedPoll = 200 * time.Microsecond

// Train runs lock-striped FPSGD and returns wall-clock timings together with
// the trained factors.
//
// Training is interruptible: workers observe ctx at every block-claim
// boundary, and the quiescence barrier observes it between epochs. When ctx
// is cancelled (or its deadline passes) mid-run, Train stops promptly,
// writes one final atomic checkpoint (when CheckpointPath is set) so the
// file on disk never lags the returned model, and returns the best-so-far
// factors together with a partial Report (Interrupted=true) AND the context
// error — the one case where a non-nil error accompanies non-nil results.
// Check errors.Is(err, context.Canceled/DeadlineExceeded) to distinguish an
// interruption from a hard failure (nil report and factors).
func Train(ctx context.Context, train *sparse.Matrix, opt Options) (*Report, *model.Factors, error) {
	r, err := newRun(ctx, train, &opt)
	if err != nil {
		return nil, nil, err
	}
	rows, cols := grid.Rule1(opt.Threads, 0)
	g, err := grid.Uniform(train, rows, cols)
	if err != nil {
		return nil, nil, err
	}
	g.PackSOA()
	r.st = sched.NewStriped(g)
	execs := make([]device.Executor, opt.Threads)
	for w := range execs {
		execs[w] = device.NewCPU(w, r.st, nil)
	}
	return r.execute(execs)
}

// newRun validates the options and builds the shared run state (everything
// but the grid, scheduler and executor set, which the homogeneous and
// heterogeneous entry points construct differently).
func newRun(ctx context.Context, train *sparse.Matrix, opt *Options) (*run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Threads < 1 {
		opt.Threads = runtime.GOMAXPROCS(0)
	}
	if opt.Params.K <= 0 || opt.Params.Iters <= 0 {
		return nil, fmt.Errorf("engine: invalid params (k=%d iters=%d)", opt.Params.K, opt.Params.Iters)
	}
	if train.NNZ() == 0 {
		return nil, sparse.ErrEmpty
	}
	if opt.StartEpoch < 0 || opt.StartEpoch >= opt.Params.Iters {
		return nil, fmt.Errorf("engine: StartEpoch %d outside [0,%d)", opt.StartEpoch, opt.Params.Iters)
	}
	if opt.TargetRMSE > 0 && opt.Test == nil {
		return nil, fmt.Errorf("engine: TargetRMSE requires a Test set to evaluate against")
	}
	schedule := opt.Schedule
	if schedule == nil {
		schedule = sgd.FixedSchedule(opt.Params.Gamma)
	}
	f := opt.Init
	if f != nil {
		if f.M != train.Rows || f.N != train.Cols || f.K != opt.Params.K {
			return nil, fmt.Errorf("engine: Init factors %dx%d k=%d do not match train %dx%d k=%d",
				f.M, f.N, f.K, train.Rows, train.Cols, opt.Params.K)
		}
	} else {
		f = model.NewFactors(train.Rows, train.Cols, opt.Params.K, rand.New(rand.NewSource(opt.Seed)))
	}
	ckptEvery := 0
	if opt.CheckpointPath != "" {
		ckptEvery = opt.CheckpointEvery
		if ckptEvery <= 0 {
			ckptEvery = 1
		}
	}
	r := &run{
		ctx:       ctx,
		f:         f,
		opt:       *opt,
		schedule:  schedule,
		nnz:       int64(train.NNZ()),
		ckptEvery: ckptEvery,
		algorithm: "fpsgd",
		report:    &Report{},
	}
	r.observer, _ = schedule.(LossObserver)
	if r.observer != nil && opt.Test == nil {
		r.lossSample = LossSample(train)
	}
	r.cond = sync.NewCond(&r.evalMu)
	r.epoch.Store(int64(opt.StartEpoch))
	r.boundEpoch.Store(int64(opt.StartEpoch))
	r.setGamma(schedule.Rate(opt.StartEpoch))
	if opt.Trace != nil {
		rel := opt.TraceEpoch
		if rel < 1 {
			rel = 1
		}
		r.traceTarget = opt.StartEpoch + rel
	}
	return r, nil
}

// execute runs one goroutine per executor and seals the report. The
// training clock starts here — Report.Seconds covers worker time, not the
// grid partitioning and SoA packing the entry points do first.
func (r *run) execute(execs []device.Executor) (*Report, *model.Factors, error) {
	r.wireTrace(execs)
	r.start = time.Now()
	var wg sync.WaitGroup
	for _, ex := range execs {
		wg.Add(1)
		go func(ex device.Executor) {
			defer wg.Done()
			r.drive(ex)
		}(ex)
	}
	wg.Wait()

	r.report.Seconds = time.Since(r.start).Seconds()
	r.report.Epochs = int(r.epoch.Load())
	r.report.TotalUpdates = r.st.Updates()
	if r.classStats != nil {
		r.report.Classes, r.report.SplitAlpha = r.classStats(time.Since(r.start))
	}
	if r.err != nil {
		return nil, nil, fmt.Errorf("engine: checkpoint failed: %w", r.err)
	}
	if r.interrupted.Load() {
		r.report.Interrupted = true
		// Every worker has exited, so the factors are quiescent: publish
		// the best-so-far model (it may carry mid-epoch progress past the
		// last boundary checkpoint) before handing control back.
		if r.ckptEvery > 0 {
			if err := r.checkpoint(); err != nil {
				return nil, nil, fmt.Errorf("engine: final checkpoint after cancellation: %w", err)
			}
			r.report.Checkpoints++
			r.emit(progress.KindCheckpoint)
		}
		r.emit(progress.KindInterrupted)
		return r.report, r.f, context.Cause(r.ctx)
	}
	r.emit(progress.KindDone)
	return r.report, r.f, nil
}

// run is the state shared between worker goroutines. The hot path touches
// only atomics and the scheduler; evalMu/cond exist solely for the
// epoch-boundary quiescence barrier and are never contended while workers
// are streaming blocks.
type run struct {
	ctx        context.Context
	st         Scheduler
	f          *model.Factors
	opt        Options
	schedule   sgd.Schedule
	observer   LossObserver
	lossSample *sparse.Matrix
	nnz        int64
	ckptEvery  int
	algorithm  string // progress-event tag: "fpsgd" or "hetero"
	start      time.Time

	// traceTarget is the absolute epoch Options.Trace records (0 = no
	// trace); barrierNs/ckptNs accumulate the observability totals carried
	// on progress events. Atomic because emitRMSE may run on the final
	// teardown path while nothing else guards them.
	traceTarget int
	barrierNs   atomic.Int64
	ckptNs      atomic.Int64

	// epochHook, when set, runs under the quiescence barrier after each
	// settled epoch — the heterogeneous path advances the scheduler's
	// quota, refits its cost models, and repartitions here.
	epochHook func(ep int)
	// classStats, when set, supplies per-executor-class throughput for
	// progress events and the final report.
	classStats func(elapsed time.Duration) ([]progress.ClassStat, float64)

	// boundBase/boundEpoch anchor the epoch-boundary update count: a
	// repartition resets them so boundaries stay one nnz apart from the
	// swap point even though lookahead work done on the retired grid is
	// not carried into the new grid's quota. Atomic because workers read
	// them on the boundary fast path while the evaluator re-anchors.
	boundBase  atomic.Int64
	boundEpoch atomic.Int64

	gammaBits   atomic.Uint32
	epoch       atomic.Int64 // absolute completed epochs
	active      atomic.Int64 // workers between acquire-intent and release
	paused      atomic.Bool  // quiescence requested; workers must park
	evaluating  atomic.Bool  // elects the single epoch-boundary evaluator
	done        atomic.Bool
	interrupted atomic.Bool // done was forced by context cancellation

	evalMu sync.Mutex // guards cond waits and report/factors access at boundaries
	cond   *sync.Cond
	report *Report
	err    error // first checkpoint failure
}

func (r *run) gamma() float32     { return math.Float32frombits(r.gammaBits.Load()) }
func (r *run) setGamma(g float32) { r.gammaBits.Store(math.Float32bits(g)) }

func (r *run) kernelParams() device.Params {
	return device.Params{LambdaP: r.opt.Params.LambdaP, LambdaQ: r.opt.Params.LambdaQ, Gamma: r.gamma()}
}

// emit sends one progress event with the run's current totals. Callers
// ensure the factors are quiescent (epoch boundary or post-wait teardown).
func (r *run) emit(kind progress.Kind) { r.emitRMSE(kind, r.report.FinalRMSE) }

func (r *run) emitRMSE(kind progress.Kind, rmse float64) {
	if r.opt.Progress == nil {
		return
	}
	elapsed := time.Since(r.start)
	updates := r.st.Updates()
	var rate float64
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(updates) / secs
	}
	e := progress.Event{
		Kind:            kind,
		Algorithm:       r.algorithm,
		Time:            time.Now(),
		Epoch:           int(r.epoch.Load()),
		TotalEpochs:     r.opt.Params.Iters,
		RMSE:            rmse,
		TotalUpdates:    updates,
		UpdatesPerSec:   rate,
		Elapsed:         elapsed,
		Checkpoints:     r.report.Checkpoints,
		CheckpointPath:  r.ckptPathFor(kind),
		BarrierWait:     time.Duration(r.barrierNs.Load()),
		CheckpointWrite: time.Duration(r.ckptNs.Load()),
	}
	if r.classStats != nil {
		e.Classes, e.SplitAlpha = r.classStats(elapsed)
	}
	r.opt.Progress(e)
}

func (r *run) ckptPathFor(kind progress.Kind) string {
	if kind == progress.KindCheckpoint {
		return r.opt.CheckpointPath
	}
	return ""
}

// cancel force-stops the run on context cancellation: mark it interrupted,
// set done, and wake both parked workers (cond) and the evaluator. The CAS
// ensures a run that finished normally at the same instant is not
// misreported as interrupted.
func (r *run) cancel() {
	if r.done.CompareAndSwap(false, true) {
		r.interrupted.Store(true)
	}
	r.evalMu.Lock()
	r.cond.Broadcast()
	r.evalMu.Unlock()
}

// drive is the per-goroutine loop around one executor: step the executor
// (claim + process + release for CPU, one pipeline stage for batched), then
// check for an epoch boundary. No global lock anywhere on the path.
// Cancellation is polled at the step boundary, so a worker never abandons a
// half-updated block: it finishes (drains) what it holds and stops before
// taking more. Pipelined executors flush everything they hold before
// parking at a barrier, so the quiescence wait below always terminates.
func (r *run) drive(ex device.Executor) {
	for {
		if r.ctx.Err() != nil {
			r.cancel()
		}
		if r.done.Load() {
			r.finish(ex)
			return
		}
		if r.paused.Load() {
			r.finish(ex)
			r.waitResume()
			continue
		}
		// active must cover the whole step so the barrier cannot observe
		// zero while this worker is touching factors or scheduler locks.
		r.active.Add(1)
		if r.paused.Load() || r.done.Load() {
			r.exitActive()
			continue
		}
		ok := ex.Step(r.f, r.kernelParams())
		r.exitActive()
		if !ok {
			// No eligible work can mean a quota scheduler drained right at
			// an epoch boundary; try to settle it (Step returned false, so
			// this executor holds nothing) before parking.
			r.maybeEvaluate()
			r.awaitWork()
			continue
		}
		// Only an empty-handed worker may elect itself evaluator: the
		// barrier drains every in-flight task, and a pipelined executor
		// that still holds one would wait on itself. Someone else's next
		// release — or this executor's own flush once the scheduler runs
		// dry — crosses the boundary instead.
		if ex.Held() == 0 {
			r.maybeEvaluate()
		}
	}
}

// finish drains the executor's held work inside an active window, so the
// barrier (which waits for active==0 AND InFlight()==0) sees the drain
// complete and is woken by exitActive.
func (r *run) finish(ex device.Executor) {
	r.active.Add(1)
	ex.Drain(r.f, r.kernelParams())
	r.exitActive()
}

// exitActive decrements the in-flight count and, when a quiescence is
// pending and this was the last worker, wakes the evaluator. The lock is
// taken only in that (rare) case, so the hot path stays mutex-free.
func (r *run) exitActive() {
	if r.active.Add(-1) == 0 && r.paused.Load() {
		r.evalMu.Lock()
		r.cond.Broadcast()
		r.evalMu.Unlock()
	}
}

// awaitWork blocks until a release frees some band (or a short poll timeout,
// since the notification channel coalesces bursts) — replacing the old
// Gosched spin loop with a real wait.
func (r *run) awaitWork() {
	select {
	case <-r.st.Blocked():
	case <-time.After(blockedPoll):
	}
}

// waitResume parks the worker until the evaluator finishes the epoch
// boundary.
func (r *run) waitResume() {
	r.evalMu.Lock()
	for r.paused.Load() && !r.done.Load() {
		r.cond.Wait()
	}
	r.evalMu.Unlock()
}

// boundary returns the update count at which the next epoch completes,
// anchored at the last repartition point (boundBase/boundEpoch; a plain run
// anchors at zero and StartEpoch, so a resumed run starts from zero).
func (r *run) boundary() int64 {
	return r.boundBase.Load() + (r.epoch.Load()+1-r.boundEpoch.Load())*r.nnz
}

// maybeEvaluate runs the epoch boundary if a release crossed it: elect a
// single evaluator, quiesce every in-flight block, then evaluate, observe,
// checkpoint, and advance the schedule with exclusive access to the
// factors.
//
// The outer loop closes a lost-wakeup race: a worker whose crossing
// release arrives while the previous evaluator is past its settle loop but
// has not yet released the election loses the CAS and returns. Under the
// free-running striped scheduler a later release always retries, but a
// quota scheduler can run dry immediately after — so the winner re-checks
// the boundary after releasing the election and settles anything that
// slipped in.
func (r *run) maybeEvaluate() {
	for {
		if r.done.Load() || r.st.Updates() < r.boundary() {
			return
		}
		if !r.evaluating.CompareAndSwap(false, true) {
			return // another worker is on it (and re-checks after finishing)
		}
		r.paused.Store(true)
		waitStart := time.Now()
		r.evalMu.Lock()
		// Pipelined executors may hold claimed tasks between steps with no
		// active window open, so quiescence is active==0 AND nothing in
		// flight: every holder observes paused, drains inside an active
		// window, and its exitActive re-wakes this wait. A holder with no
		// active window is in its loop-control code and must start draining
		// within one step, so a long active==0/InFlight>0 stall can only be
		// a scheduler lock leak — keep that case a loud panic (the old
		// barrier assertion) instead of a silent hang.
		stall := 0
		for {
			a, held := r.active.Load(), r.st.InFlight()
			if a == 0 && held == 0 {
				break
			}
			if a > 0 {
				r.cond.Wait() // exitActive re-wakes when the count drains
				stall = 0
				continue
			}
			r.evalMu.Unlock()
			time.Sleep(blockedPoll)
			r.evalMu.Lock()
			if stall++; time.Duration(stall)*blockedPoll > 5*time.Second {
				panic(fmt.Sprintf("engine: quiescence barrier violated: %d tasks held with no active worker", held))
			}
		}
		wait := time.Since(waitStart)
		r.barrierNs.Add(wait.Nanoseconds())
		if r.opt.Trace != nil {
			r.opt.Trace.Span(0, "barrier", waitStart, wait, 0)
		}
		// The quiescence barrier observes cancellation too: a context that
		// fired while workers drained stops the run here instead of
		// settling further epochs.
		if r.ctx.Err() != nil {
			if r.done.CompareAndSwap(false, true) {
				r.interrupted.Store(true)
			}
		}
		// The boundary may have been crossed more than once by large
		// releases; settle every completed epoch before resuming.
		for !r.done.Load() && r.st.Updates() >= r.boundary() {
			r.finishEpoch()
		}
		r.paused.Store(false)
		r.cond.Broadcast()
		r.evalMu.Unlock()
		r.evaluating.Store(false)
	}
}

// finishEpoch runs one quiesced epoch boundary: evaluate, feed the observer,
// checkpoint, stop or advance the learning rate, then hand the boundary to
// the scheduler hook (quota advance, cost-model refit, repartition).
func (r *run) finishEpoch() {
	ep := int(r.epoch.Add(1))
	var rmse float64
	if r.opt.Test != nil {
		evalStart := time.Now()
		rmse = model.RMSE(r.f, r.opt.Test)
		if r.opt.Trace != nil {
			r.opt.Trace.Span(0, "eval", evalStart, time.Since(evalStart), 0)
		}
		r.report.History = append(r.report.History, EvalPoint{
			Time:  time.Since(r.start).Seconds(),
			Epoch: ep,
			RMSE:  rmse,
		})
		r.report.FinalRMSE = rmse
		if r.opt.TargetRMSE > 0 && rmse <= r.opt.TargetRMSE {
			r.done.Store(true)
		}
	}
	if r.observer != nil {
		loss := rmse
		if r.opt.Test == nil {
			loss = model.RMSE(r.f, r.lossSample)
		}
		r.observer.Observe(loss)
	}
	if ep >= r.opt.Params.Iters {
		r.done.Store(true)
	}
	// The final epoch is always checkpointed (even off the CheckpointEvery
	// stride, and on TargetRMSE early stops): the checkpoint file is the
	// published model for watchers and resumes, so it must not lag the
	// returned factors.
	if r.ckptEvery > 0 && (ep%r.ckptEvery == 0 || r.done.Load()) {
		if err := r.checkpoint(); err != nil {
			r.err = err
			r.done.Store(true)
		} else {
			r.report.Checkpoints++
			r.emitRMSE(progress.KindCheckpoint, rmse)
		}
	}
	r.emitRMSE(progress.KindEpoch, rmse)
	r.setGamma(r.schedule.Rate(ep))
	if r.epochHook != nil && !r.done.Load() {
		r.epochHook(ep)
	}
	// Arm/disarm the single-epoch trace at the boundary: the target epoch's
	// own barrier, eval and checkpoint spans above were still recorded
	// before this disarms it.
	if tr := r.opt.Trace; tr != nil {
		switch {
		case ep == r.traceTarget:
			tr.Stop()
		case ep+1 == r.traceTarget:
			tr.Start()
		}
	}
}

// checkpoint writes the atomic snapshot, accumulating its duration for
// progress events and recording a trace span.
func (r *run) checkpoint() error {
	start := time.Now()
	err := r.f.SaveFileAtomic(r.opt.CheckpointPath)
	dur := time.Since(start)
	r.ckptNs.Add(dur.Nanoseconds())
	if r.opt.Trace != nil {
		r.opt.Trace.Span(0, "checkpoint", start, dur, 0)
	}
	return err
}

// wireTrace hands the run's span recorder to every executor that can use
// one, labels the timeline tracks, and arms the recorder immediately when
// the traced epoch is the first one this run executes.
func (r *run) wireTrace(execs []device.Executor) {
	tr := r.opt.Trace
	if tr == nil {
		return
	}
	tr.SetThreadName(0, "engine")
	counts := make(map[device.Class]int)
	for i, ex := range execs {
		tid := i + 1
		n := counts[ex.Class()]
		counts[ex.Class()]++
		name := fmt.Sprintf("%s-%d", ex.Class(), n)
		tr.SetThreadName(tid, name)
		if t, ok := ex.(interface {
			SetTrace(*obs.Trace, int)
		}); ok {
			t.SetTrace(tr, tid)
		}
		if ex.Class() == device.ClassBatched {
			tr.SetThreadName(tid+device.PackTrackOffset, name+"/pack")
		}
	}
	if r.traceTarget == int(r.epoch.Load())+1 {
		tr.Start()
	}
}

package engine

import (
	"context"
	"sync"
	"time"

	"hsgd/internal/cost"
	"hsgd/internal/device"
	"hsgd/internal/grid"
	"hsgd/internal/model"
	"hsgd/internal/obs"
	"hsgd/internal/progress"
	"hsgd/internal/sched"
	"hsgd/internal/sparse"
)

// HeteroOptions configures the heterogeneous executor engine.
type HeteroOptions struct {
	Options

	// BatchedWorkers is the number of throughput-optimized batched
	// executors (the GPU stand-ins); <1 means 1. CPU executors fill the
	// rest of the Options.Threads worker budget (at least one), so a
	// hetero run at Threads=T and the striped engine at Threads=T spend
	// the same number of worker goroutines.
	BatchedWorkers int

	// Superblock overrides the column-band count of the nonuniform layout
	// (the super-block granularity knob); values at or below the paper's
	// nc+2·ng+1 floor (and 0) keep the default.
	Superblock int

	// StaticOnly disables the dynamic work-stealing phase — the HSGD*-M
	// ablation on real hardware.
	StaticOnly bool

	// Alpha fixes the fraction of the rating mass assigned to the batched
	// class. <=0 (the default) starts from an equal-speed split and lets
	// the online cost models drive it: executors report per-task cost
	// samples, the engine fits per-class models over the first epochs
	// (piecewise with a detected τ when the sizes support it), solves
	// Equation 8 for α, and repartitions at epoch boundaries until the
	// profiling window closes. A positive Alpha skips all repartitioning —
	// the deterministic escape hatch.
	Alpha float64
}

const (
	// profileEpochs is the online profiling window: boundaries at which the
	// cost models are refitted and the split may be repartitioned.
	profileEpochs = 3
	// repartitionDelta is the minimum |Δα| worth rebuilding the grid for —
	// below it the O(nnz) repartition outweighs the balance gain.
	repartitionDelta = 0.04
	// alphaMin/alphaMax keep both regions non-degenerate regardless of how
	// lopsided the measured speeds are; the dynamic phase absorbs the rest.
	alphaMin = 0.02
	alphaMax = 0.98
)

// TrainHetero runs the paper's HSGD* on real hardware: CPU executors over
// the nonuniform layout's CPU region and batched executors streaming
// whole-band super-blocks from the GPU region, scheduled by the adapted
// two-region Hetero policy with one epoch of lookahead and (unless
// StaticOnly) dynamic cross-class stealing. The α split starts from an
// equal-speed guess and is re-solved from measured per-class cost models at
// the first epoch boundaries (see HeteroOptions.Alpha).
//
// Interruption, checkpointing, schedules, early stop and resume behave
// exactly as in Train.
func TrainHetero(ctx context.Context, train *sparse.Matrix, opt HeteroOptions) (*Report, *model.Factors, error) {
	r, err := newRun(ctx, train, &opt.Options)
	if err != nil {
		return nil, nil, err
	}
	nb := opt.BatchedWorkers
	if nb < 1 {
		nb = 1
	}
	nc := opt.Options.Threads - nb
	if nc < 1 {
		nc = 1
	}
	hr := &heteroRun{
		train:      train,
		nc:         nc,
		nb:         nb,
		superblock: opt.Superblock,
		dynamic:    !opt.StaticOnly,
		adaptive:   opt.Alpha <= 0,
		cpuSamples: cost.NewOnlineSamples(),
		batSamples: cost.NewOnlineSamples(),
		cpuHist:    obs.NewHistogram(nil),
		batHist:    obs.NewHistogram(nil),
	}
	alpha := opt.Alpha
	if hr.adaptive {
		// Equal-speed prior: the profiling window corrects it from
		// measurements within the first boundaries.
		alpha = float64(nb) / float64(nb+nc)
	}
	h, err := hr.build(clampAlpha(alpha))
	if err != nil {
		return nil, nil, err
	}
	hr.sch = sched.NewHeteroScheduler(h)
	hr.run = r
	r.st = hr.sch
	r.algorithm = "hetero"
	r.epochHook = hr.boundary
	r.classStats = hr.stats

	sink := func(c device.Class, nnz int, secs float64) {
		if c == device.ClassCPU {
			hr.cpuSamples.Observe(nnz, secs)
			hr.cpuHist.Observe(secs)
		} else {
			hr.batSamples.Observe(nnz, secs)
			hr.batHist.Observe(secs)
		}
	}
	execs := make([]device.Executor, 0, nc+nb)
	for w := 0; w < nc; w++ {
		execs = append(execs, device.NewCPU(w, hr.sch, sink))
	}
	for g := 0; g < nb; g++ {
		bx := device.NewBatched(g, hr.sch, sink)
		hr.batched = append(hr.batched, bx)
		execs = append(execs, bx)
	}
	return r.execute(execs)
}

// heteroRun is the heterogeneous path's extra state around the shared run:
// the live partition, the online cost samples, and the fitted models.
type heteroRun struct {
	train      *sparse.Matrix
	run        *run
	sch        *sched.HeteroScheduler
	nc, nb     int
	superblock int
	dynamic    bool
	adaptive   bool

	cpuSamples *cost.OnlineSamples
	batSamples *cost.OnlineSamples

	// cpuHist/batHist are per-class task-latency histograms (seconds)
	// backing the p50/p99 on progress events; batched holds the executor
	// refs whose pipeline counters yield the pack/kernel overlap ratio.
	cpuHist *obs.Histogram
	batHist *obs.Histogram
	batched []*device.Batched

	mu         sync.Mutex // guards alpha/models/settled against stats readers
	alpha      float64
	cpuModel   *cost.OnlineModel
	batModel   *cost.OnlineModel
	settled    int // boundaries handled so far (the profiling-window clock)
	reparts    int
	lastHetero *sched.Hetero
}

func clampAlpha(a float64) float64 {
	if a < alphaMin {
		return alphaMin
	}
	if a > alphaMax {
		return alphaMax
	}
	return a
}

// build partitions the training matrix at the given split and wraps it in a
// fresh Hetero policy, with steal thresholds derived from the current cost
// models (zero — filters off — until the first fit lands).
func (hr *heteroRun) build(alpha float64) (*sched.Hetero, error) {
	layout, err := grid.NewHeteroLayout(hr.nc, hr.nb, alpha)
	if err != nil {
		return nil, err
	}
	if hr.superblock > 0 {
		layout = layout.WithCols(hr.superblock)
	}
	hg, err := grid.PartitionHetero(hr.train, layout)
	if err != nil {
		return nil, err
	}
	hg.GPU.PackSOA()
	hg.CPU.PackSOA()
	h := sched.NewHetero(hg, hr.dynamic)
	hr.alpha = alpha
	hr.lastHetero = h
	hr.applyThresholds(h, hg)
	return h, nil
}

// applyThresholds derives the dynamic phase's break-even filters from the
// fitted cost models (Section VI-A: steals below the models' break-even
// point lengthen the epoch tail instead of shortening it).
func (hr *heteroRun) applyThresholds(h *sched.Hetero, hg *grid.HeteroGrid) {
	if hr.cpuModel == nil || hr.batModel == nil {
		return
	}
	tc, tb := hr.cpuModel.Time, hr.batModel.Time
	nnz := hr.train.NNZ()

	// A batched steal must beat the CPU on the stolen block's size.
	h.MinGPUSteal = cost.BreakEven(tb, tc, nnz)

	// CPU threads join the GPU region only while it holds more eligible
	// work than the batched class drains in the time one CPU thread needs
	// for one sub-block — otherwise the "help" just fragments super-blocks.
	layout := hg.Layout
	if gpuBlocks := layout.GPURows * layout.SubRows * layout.Cols; gpuBlocks > 0 && hg.GPUNNZ > 0 {
		avgSub := float64(hg.GPUNNZ) / float64(gpuBlocks)
		avgSuper := avgSub * float64(layout.SubRows)
		if bt := tb(avgSuper); bt > 0 {
			batRate := avgSuper / bt
			h.MinCPUStealRemaining = int64(batRate * tc(avgSub))
		}
	}

	// A batched steal holds a CPU-region row band for its whole span; it
	// only pays while the CPU class cannot drain its own region faster.
	if cpuBlocks := layout.CPURows * layout.Cols; cpuBlocks > 0 && hg.CPUNNZ > 0 {
		avgBlk := float64(hg.CPUNNZ) / float64(cpuBlocks)
		if ct := tc(avgBlk); ct > 0 {
			cpuRate := float64(hr.nc) * avgBlk / ct
			h.MinGPUStealRemaining = int64(cpuRate * tb(4*avgBlk))
		}
	}

	// Bound concurrent CPU thieves to the sub-row fan-out one band offers,
	// so stolen sub-blocks cannot starve the batched class of columns.
	h.MaxCPUThieves = layout.SubRows * layout.GPURows
}

// boundary is the engine's per-epoch hook, run under the quiescence
// barrier: refit the cost models and re-solve α inside the profiling
// window (repartitioning when the solution moved), otherwise just open the
// next epoch's quota.
func (hr *heteroRun) boundary(ep int) {
	if hr.adaptive && hr.profiling() {
		if hr.refit(ep) {
			return // fresh scheduler generation: its quota starts open
		}
	}
	hr.sch.AdvanceEpoch()
}

func (hr *heteroRun) profiling() bool {
	hr.mu.Lock()
	defer hr.mu.Unlock()
	hr.settled++
	return hr.settled <= profileEpochs
}

// refit fits both classes' models from the run's samples, solves Equation 8
// for α, and swaps in a repartitioned scheduler when the split moved by
// more than repartitionDelta. It reports whether a swap happened.
func (hr *heteroRun) refit(ep int) bool {
	cpuM, okC := hr.cpuSamples.Fit(cost.KindKernel)
	batM, okB := hr.batSamples.Fit(cost.KindKernel)
	if !okC || !okB {
		return false // a class has not processed anything measurable yet
	}
	hr.mu.Lock()
	hr.cpuModel, hr.batModel = &cpuM, &batM
	prev := hr.alpha
	hr.mu.Unlock()

	alpha := clampAlpha(cost.SolveAlpha(batM.Time, cpuM.Time, float64(hr.train.NNZ()), hr.nc, hr.nb))
	delta := alpha - prev
	if delta < 0 {
		delta = -delta
	}
	if delta <= repartitionDelta {
		// Split holds; refresh the steal thresholds in place (the workers
		// are quiesced under the barrier, and Tune takes the adapter lock).
		var tmp sched.Hetero
		hr.applyThresholds(&tmp, hr.lastHetero.HG)
		hr.sch.Tune(tmp.MinGPUSteal, tmp.MinCPUStealRemaining, tmp.MinGPUStealRemaining, tmp.MaxCPUThieves)
		return false
	}
	h, err := hr.build(alpha)
	if err != nil {
		// Degenerate split on this dataset; keep the current partition.
		return false
	}
	hr.sch.Swap(h)
	hr.mu.Lock()
	hr.reparts++
	hr.mu.Unlock()
	// Re-anchor the epoch boundary at the swap point: the new grid's quota
	// starts at zero, so the next boundary is exactly one epoch of updates
	// away (lookahead work done on the retired grid stays in the factors
	// but is not carried into the new quota).
	hr.run.boundBase.Store(hr.run.st.Updates())
	hr.run.boundEpoch.Store(int64(ep))
	return true
}

// stats implements the run's classStats hook: per-executor-class
// throughput, steal counts, and the current split for progress events,
// /statsz and the final report.
func (hr *heteroRun) stats(elapsed time.Duration) ([]progress.ClassStat, float64) {
	s := hr.sch.Stats()
	secs := elapsed.Seconds()
	rate := func(n int64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(n) / secs
	}
	hr.mu.Lock()
	alpha := hr.alpha
	hr.mu.Unlock()
	return []progress.ClassStat{
		{Class: string(device.ClassCPU), Workers: hr.nc, Updates: s.CPUUpdates,
			UpdatesPerSec: rate(s.CPUUpdates), Steals: s.StolenByCPU,
			Tasks:     s.CPUTasks,
			TaskP50MS: hr.cpuHist.Quantile(0.5) * 1e3,
			TaskP99MS: hr.cpuHist.Quantile(0.99) * 1e3},
		{Class: string(device.ClassBatched), Workers: hr.nb, Updates: s.BatchedUpdates,
			UpdatesPerSec: rate(s.BatchedUpdates), Steals: s.StolenByGPU,
			Tasks:        s.BatchedTasks,
			TaskP50MS:    hr.batHist.Quantile(0.5) * 1e3,
			TaskP99MS:    hr.batHist.Quantile(0.99) * 1e3,
			OverlapRatio: hr.overlap()},
	}, alpha
}

// overlap aggregates the batched executors' pipeline counters into the
// fraction of total pack time hidden behind kernels: 1 − stall/pack, where
// stall is the residual pack wait run() saw on the critical path. No packs
// yet reports 0.
func (hr *heteroRun) overlap() float64 {
	var pack, stall int64
	for _, b := range hr.batched {
		pack += b.PackNanos.Load()
		stall += b.StallNanos.Load()
	}
	if pack <= 0 {
		return 0
	}
	ratio := 1 - float64(stall)/float64(pack)
	if ratio < 0 {
		return 0
	}
	if ratio > 1 {
		return 1
	}
	return ratio
}

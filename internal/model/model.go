// Package model holds the dense factor matrices P and Q produced by matrix
// factorization and the quality metrics (RMSE, regularised loss) used to
// evaluate them.
//
// P is m×k and Q is k×n (Equation 1 of the paper). Both are stored row-major
// with one row per user/item: P[u] is the k-vector p_u and Q[v] is the
// k-vector q_v (i.e. Q is stored transposed, which makes the inner product
// p_u·q_v a contiguous dot product — the same trick LIBMF and cuMF use).
package model

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"hsgd/internal/sparse"
)

// Factors is the trained model: the pair (P, Q).
type Factors struct {
	M, N, K int
	P       []float32 // len M*K, P[u*K:(u+1)*K] = p_u
	Q       []float32 // len N*K, Q[v*K:(v+1)*K] = q_v (column v of the paper's Q)
}

// NewFactors allocates P and Q and initialises every entry uniformly in
// [0, 1/sqrt(k)), which makes the initial prediction E[p_u·q_v] ≈ 0.25 —
// appropriate for ratings on a small scale. For arbitrary rating scales use
// NewFactorsMean. The paper's init_model "initializes two resulting
// matrices P and Q with values generated randomly".
func NewFactors(m, n, k int, rng *rand.Rand) *Factors {
	return NewFactorsMean(m, n, k, 0.25, rng)
}

// NewFactorsMean initialises factors so the expected initial prediction
// equals the given mean rating: entries are uniform in [0, 2√(mean/k)).
// Starting predictions near the data mean keeps the first SGD steps small —
// without it, wide rating scales (the 0–100 Yahoo datasets) diverge — the
// same mean-aware initialisation LIBMF applies.
func NewFactorsMean(m, n, k int, mean float64, rng *rand.Rand) *Factors {
	f := &Factors{M: m, N: n, K: k,
		P: make([]float32, m*k),
		Q: make([]float32, n*k),
	}
	if mean <= 0 {
		mean = 0.25
	}
	scale := float32(2 * math.Sqrt(mean/float64(k)))
	for i := range f.P {
		f.P[i] = rng.Float32() * scale
	}
	for i := range f.Q {
		f.Q[i] = rng.Float32() * scale
	}
	return f
}

// Row returns the factor vector p_u.
func (f *Factors) Row(u int32) []float32 { return f.P[int(u)*f.K : (int(u)+1)*f.K] }

// Colvec returns the factor vector q_v.
func (f *Factors) Colvec(v int32) []float32 { return f.Q[int(v)*f.K : (int(v)+1)*f.K] }

// Predict returns the estimated rating p_u · q_v.
func (f *Factors) Predict(u, v int32) float32 {
	return Dot(f.Row(u), f.Colvec(v))
}

// Dot is the dense inner product of two equal-length vectors. The 4-way
// unrolled loop is the scalar stand-in for the AVX kernel the paper links
// against; Go's compiler keeps the accumulators in registers.
func Dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// rmseMinChunk is the rating count per worker below which the goroutine
// fan-out costs more than the scan it parallelizes; small test sets stay on
// the serial (and bitwise-stable) path.
const rmseMinChunk = 32768

// RMSE computes the root-mean-square error of the model on the given rating
// set — the paper's training-quality metric (Section VII-A). The scan is
// chunked across GOMAXPROCS workers with per-chunk partial sums: it runs
// inside the engine's quiescence barrier every epoch, where a
// single-threaded pass stalls every training worker for the whole test-set
// sweep. Partials are combined in chunk order, so the result is
// deterministic for a fixed GOMAXPROCS.
func RMSE(f *Factors, test *sparse.Matrix) float64 {
	n := test.NNZ()
	if n == 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if max := (n + rmseMinChunk - 1) / rmseMinChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		return math.Sqrt(sqErrSum(f, test.Ratings) / float64(n))
	}
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = sqErrSum(f, test.Ratings[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return math.Sqrt(sum / float64(n))
}

func sqErrSum(f *Factors, ratings []sparse.Rating) float64 {
	var sum float64
	for _, r := range ratings {
		d := float64(r.Value - f.Predict(r.Row, r.Col))
		sum += d * d
	}
	return sum
}

// Loss computes the full regularised objective of Equation 2:
// Σ (r_uv − p_u q_v)² + λP‖p_u‖² + λQ‖q_v‖² over observed ratings.
func Loss(f *Factors, train *sparse.Matrix, lambdaP, lambdaQ float32) float64 {
	var sum float64
	for _, r := range train.Ratings {
		d := float64(r.Value - f.Predict(r.Row, r.Col))
		sum += d * d
		sum += float64(lambdaP) * sqNorm(f.Row(r.Row))
		sum += float64(lambdaQ) * sqNorm(f.Colvec(r.Col))
	}
	return sum
}

func sqNorm(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return s
}

// Clone returns a deep copy of the factors.
func (f *Factors) Clone() *Factors {
	out := &Factors{M: f.M, N: f.N, K: f.K,
		P: make([]float32, len(f.P)),
		Q: make([]float32, len(f.Q)),
	}
	copy(out.P, f.P)
	copy(out.Q, f.Q)
	return out
}

// Validate checks internal consistency of the dimensions.
func (f *Factors) Validate() error {
	if f.K <= 0 || f.M <= 0 || f.N <= 0 {
		return fmt.Errorf("model: invalid dimensions m=%d n=%d k=%d", f.M, f.N, f.K)
	}
	if len(f.P) != f.M*f.K {
		return fmt.Errorf("model: len(P)=%d, want %d", len(f.P), f.M*f.K)
	}
	if len(f.Q) != f.N*f.K {
		return fmt.Errorf("model: len(Q)=%d, want %d", len(f.Q), f.N*f.K)
	}
	return nil
}

// TopN returns the n items with the highest predicted rating for user u,
// excluding the items listed in seen. It is the serial counterpart of the
// sharded scorer in internal/serve (which backs /v1/recommend); both share
// the bounded min-heap of topk.go and the serve tests hold them equal.
//
// The scan uses the bounded min-heap of topk.go, so the cost is
// O(N + H·log n) where H is the number of items that beat the running
// floor, instead of the old O(N·n) insertion scan. Entries in seen that
// fall outside [0, N) are ignored, and a u outside [0, M) returns nil
// rather than panicking — snapshot-serving callers pass ids straight from
// untrusted requests.
func (f *Factors) TopN(u int32, n int, seen map[int32]bool) []int32 {
	if n <= 0 || int(u) < 0 || int(u) >= f.M {
		return nil
	}
	p := f.Row(u)
	t := NewTopK(n)
	for v := 0; v < f.N; v++ {
		if seen[int32(v)] {
			continue
		}
		t.Push(int32(v), Dot(p, f.Q[v*f.K:(v+1)*f.K]))
	}
	ranked := t.Sorted()
	out := make([]int32, len(ranked))
	for i, c := range ranked {
		out[i] = c.Item
	}
	return out
}

package model

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"sort"
	"testing"
	"testing/quick"
)

// Property: TopK retains exactly the k best (score desc, item asc) of any
// candidate stream, in sorted order.
func TestQuickTopK(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		k := int(kRaw % 12)
		cands := make([]ScoredItem, n)
		acc := NewTopK(k)
		for i := range cands {
			// Coarse scores so ties actually occur.
			cands[i] = ScoredItem{Item: int32(i), Score: float32(rng.Intn(8))}
			acc.Push(cands[i].Item, cands[i].Score)
		}
		sort.Slice(cands, func(i, j int) bool { return worse(cands[j], cands[i]) })
		want := cands
		if len(want) > k {
			want = want[:k]
		}
		got := acc.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKFloor(t *testing.T) {
	acc := NewTopK(2)
	if _, ok := acc.Floor(); ok {
		t.Fatal("empty accumulator reported a floor")
	}
	acc.Push(1, 5)
	acc.Push(2, 3)
	if fl, ok := acc.Floor(); !ok || fl != 3 {
		t.Fatalf("Floor = %v,%v want 3,true", fl, ok)
	}
	acc.Push(3, 4) // evicts score 3
	if fl, _ := acc.Floor(); fl != 4 {
		t.Fatalf("Floor after eviction = %v want 4", fl)
	}
	zero := NewTopK(0)
	zero.Push(1, 1)
	if zero.Len() != 0 {
		t.Fatal("k=0 accumulator retained a candidate")
	}
	if _, ok := zero.Floor(); ok {
		t.Fatal("k=0 accumulator reported a floor")
	}
}

func TestMergeTopK(t *testing.T) {
	a, b := NewTopK(3), NewTopK(3)
	a.Push(0, 1)
	a.Push(1, 9)
	b.Push(2, 5)
	b.Push(3, 7)
	got := MergeTopK(3, a, b, nil)
	want := []ScoredItem{{1, 9}, {3, 7}, {2, 5}}
	if len(got) != 3 {
		t.Fatalf("merged %d items", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeTopK = %v, want %v", got, want)
		}
	}
}

// TopN must tolerate out-of-range seen ids and out-of-range users — the
// serving path feeds it ids straight from HTTP requests.
func TestTopNOutOfRange(t *testing.T) {
	f := &Factors{M: 1, N: 5, K: 1, P: []float32{1}, Q: []float32{0, 1, 2, 3, 4}}
	seen := map[int32]bool{4: true, -3: true, 99: true}
	top := f.TopN(0, 3, seen)
	if len(top) != 3 || top[0] != 3 || top[1] != 2 || top[2] != 1 {
		t.Fatalf("TopN with out-of-range seen = %v", top)
	}
	if got := f.TopN(7, 3, nil); got != nil {
		t.Fatalf("TopN for out-of-range user = %v, want nil", got)
	}
	if got := f.TopN(-1, 3, nil); got != nil {
		t.Fatalf("TopN for negative user = %v, want nil", got)
	}
	if got := f.TopN(0, 0, nil); got != nil {
		t.Fatalf("TopN with n=0 = %v, want nil", got)
	}
}

func TestSimilarItems(t *testing.T) {
	// Item vectors on a plane: 0 and 2 are parallel, 1 is orthogonal to 0,
	// 3 is at 45°, 4 is the zero vector.
	f := &Factors{M: 1, N: 5, K: 2, P: []float32{1, 0},
		Q: []float32{1, 0 /*0*/, 0, 1 /*1*/, 2, 0 /*2*/, 1, 1 /*3*/, 0, 0 /*4*/}}
	got := f.SimilarItems(0, 2)
	if len(got) != 2 || got[0].Item != 2 || got[1].Item != 3 {
		t.Fatalf("SimilarItems(0) = %v", got)
	}
	if got[0].Score < 0.999 {
		t.Fatalf("parallel item cosine = %v, want ~1", got[0].Score)
	}
	if f.SimilarItems(4, 2) != nil {
		t.Fatal("zero-vector query should return nil")
	}
	if f.SimilarItems(99, 2) != nil {
		t.Fatal("out-of-range item should return nil")
	}
}

// A hostile header must be rejected before any large allocation happens.
func TestLoadRejectsHostileHeader(t *testing.T) {
	cases := map[string][4]uint32{
		"zero m":     {factorsMagic, 0, 10, 4},
		"zero n":     {factorsMagic, 10, 0, 4},
		"zero k":     {factorsMagic, 10, 10, 0},
		"overflow":   {factorsMagic, 1 << 31, 1 << 31, 1 << 31},
		"multi-gig":  {factorsMagic, 1 << 30, 1 << 30, 64},
		"int32 edge": {factorsMagic, ^uint32(0), ^uint32(0), ^uint32(0)},
	}
	for name, header := range cases {
		var buf bytes.Buffer
		if err := binary.Write(&buf, binary.LittleEndian, header); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(&buf); err == nil {
			t.Errorf("%s: hostile header accepted", name)
		}
	}
}

// LoadFile must reject a file whose size disagrees with its header without
// allocating the declared payload.
func TestLoadFileSizeMismatch(t *testing.T) {
	path := t.TempDir() + "/truncated.bin"
	// Header declares 1000×1000 k=8 (~64 MB) but the file is 16 bytes.
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, [4]uint32{factorsMagic, 1000, 1000, 8}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("truncated file accepted")
	}

	// And a trailing-garbage file is rejected too.
	f := NewFactors(3, 3, 2, rand.New(rand.NewSource(1)))
	good := path + ".good"
	if err := f.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, append(raw, 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(good); err == nil {
		t.Fatal("oversized file accepted")
	}
}

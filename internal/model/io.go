package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

const (
	factorsMagic = uint32(0x48464143) // "HFAC"
	ivfMagic     = uint32(0x48495646) // "HIVF": optional IVF section after Q
)

// Save writes the factors in a compact little-endian binary encoding:
// magic, m, n, k (uint32 each) followed by P then Q as raw float32s.
// This is the save_model step of Algorithm 1's post-processing phase.
func (f *Factors) Save(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	header := []uint32{factorsMagic, uint32(f.M), uint32(f.N), uint32(f.K)}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, f.P); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, f.Q); err != nil {
		return err
	}
	return bw.Flush()
}

// MaxSnapshotBytes bounds the factor payload Load is willing to allocate.
// The serving path hot-swaps snapshots straight off disk, so a corrupt or
// hostile header must not be able to trigger an unbounded allocation. The
// default (16 GiB) clears the paper's largest dataset (Yahoo!Music R4:
// (1.8M users + 136K items) × k=128 × 4 B ≈ 1 GiB) with a wide margin.
var MaxSnapshotBytes int64 = 16 << 30

// Load reads factors written by Save. The header dimensions are validated
// (non-zero, non-overflowing m·k and n·k, payload under MaxSnapshotBytes)
// before anything is allocated.
func Load(r io.Reader) (*Factors, error) { return load(r, -1) }

// load is Load with an optional known stream size (-1 when unknown): when
// the size is known the header is cross-checked against it before the
// payload buffers are allocated, so a truncated file fails fast instead of
// allocating gigabytes and then hitting EOF.
func load(r io.Reader, streamSize int64) (*Factors, error) {
	return loadFactors(bufio.NewReader(r), streamSize, false)
}

// loadFactors reads the HFAC factor block from br. When allowTrailing is
// set, a stream larger than the factor payload is accepted (the extra
// bytes are a snapshot section such as the IVF index, read by the caller);
// otherwise the size must match exactly.
func loadFactors(br *bufio.Reader, streamSize int64, allowTrailing bool) (*Factors, error) {
	var header [4]uint32
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("model: reading header: %w", err)
	}
	if header[0] != factorsMagic {
		return nil, fmt.Errorf("model: bad magic %#x", header[0])
	}
	m, n, k := header[1], header[2], header[3]
	if m == 0 || n == 0 || k == 0 {
		return nil, fmt.Errorf("model: header has zero dimension m=%d n=%d k=%d", m, n, k)
	}
	// All arithmetic in uint64: the worst-case products of uint32 headers
	// overflow int64 element counts multiplied by 4.
	maxElems := uint64(MaxSnapshotBytes) / 4
	pElems := uint64(m) * uint64(k)
	qElems := uint64(n) * uint64(k)
	const maxInt = uint64(^uint(0) >> 1)
	if pElems > maxElems || qElems > maxElems || pElems+qElems > maxElems ||
		pElems > maxInt || qElems > maxInt {
		return nil, fmt.Errorf("model: header m=%d n=%d k=%d implies %d factor bytes, over the %d-byte limit",
			m, n, k, 4*(pElems+qElems), MaxSnapshotBytes)
	}
	if streamSize >= 0 {
		expected := int64(16 + 4*(pElems+qElems))
		if streamSize != expected && !(allowTrailing && streamSize > expected) {
			return nil, fmt.Errorf("model: file is %d bytes but header m=%d n=%d k=%d requires %d",
				streamSize, m, n, k, expected)
		}
	}
	f := &Factors{M: int(m), N: int(n), K: int(k)}
	f.P = make([]float32, pElems)
	f.Q = make([]float32, qElems)
	if err := binary.Read(br, binary.LittleEndian, f.P); err != nil {
		return nil, fmt.Errorf("model: reading P: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, f.Q); err != nil {
		return nil, fmt.Errorf("model: reading Q: %w", err)
	}
	return f, nil
}

// Save writes the index as the HIVF snapshot section: magic, n, k, nlist
// (uint32 each) followed by the centroids, list offsets, ids, codes and
// scales as raw little-endian payloads. Appended after the factor block by
// SaveFileAtomicWithIVF so a server loading the snapshot skips the
// publish-time k-means rebuild.
func (ix *IVFIndex) Save(w io.Writer) error {
	if err := ix.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	header := []uint32{ivfMagic, uint32(ix.N), uint32(ix.K), uint32(ix.NList)}
	for _, part := range []any{header, ix.Centroids, ix.Starts, ix.IDs, ix.Codes, ix.Scales} {
		if err := binary.Write(bw, binary.LittleEndian, part); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadIVF reads an HIVF section written by IVFIndex.Save. Header
// dimensions are bounded against MaxSnapshotBytes before anything is
// allocated, and the loaded index is fully validated (offsets monotone,
// ids in range) before it is returned — it feeds the serving hot path.
func LoadIVF(r io.Reader) (*IVFIndex, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var header [4]uint32
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("model: reading IVF header: %w", err)
	}
	if header[0] != ivfMagic {
		return nil, fmt.Errorf("model: bad IVF magic %#x", header[0])
	}
	n, k, nlist := header[1], header[2], header[3]
	if n == 0 || k == 0 || nlist == 0 || nlist > n {
		return nil, fmt.Errorf("model: IVF header has bad dimensions n=%d k=%d nlist=%d", n, k, nlist)
	}
	maxElems := uint64(MaxSnapshotBytes) / 4
	codeElems := uint64(n) * uint64(k)
	centElems := uint64(nlist) * uint64(k)
	const maxInt = uint64(^uint(0) >> 1)
	if codeElems > maxElems || centElems > maxElems || codeElems > maxInt {
		return nil, fmt.Errorf("model: IVF header n=%d k=%d nlist=%d over the %d-byte limit",
			n, k, nlist, MaxSnapshotBytes)
	}
	ix := &IVFIndex{
		N: int(n), K: int(k), NList: int(nlist),
		Centroids: make([]float32, centElems),
		Starts:    make([]int32, nlist+1),
		IDs:       make([]int32, n),
		Codes:     make([]int8, codeElems),
		Scales:    make([]float32, n),
	}
	for _, part := range []any{ix.Centroids, ix.Starts, ix.IDs, ix.Codes, ix.Scales} {
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, fmt.Errorf("model: reading IVF payload: %w", err)
		}
	}
	if err := ix.Validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

// SaveFile writes the factors to a file.
func (f *Factors) SaveFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return f.Save(file)
}

// SaveFileAtomic writes the factors to path via a temp file in the same
// directory plus rename, so a concurrent reader — the serve snapshot
// watcher, in particular — never observes a torn half-written snapshot.
// This is the publish step of the train → checkpoint → hot-swap pipeline:
// the training engine calls it at epoch boundaries while workers are
// quiesced.
func (f *Factors) SaveFileAtomic(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := f.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SaveFileAtomicWithIVF writes the factors plus the IVF index to path with
// the same temp-file-plus-rename discipline as SaveFileAtomic. A server
// loading the snapshot in IVF retrieval mode reuses the persisted index
// instead of re-running k-means at publish time.
func SaveFileAtomicWithIVF(path string, f *Factors, ix *IVFIndex) error {
	if ix == nil {
		return f.SaveFileAtomic(path)
	}
	if ix.N != f.N || ix.K != f.K {
		return fmt.Errorf("model: IVF index is %dx%d but factors are %dx%d", ix.N, ix.K, f.N, f.K)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := f.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := ix.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads factors from a file written by SaveFile. The file size is
// checked against the header before the factor buffers are allocated; a
// trailing IVF section, if present, is ignored.
func LoadFile(path string) (*Factors, error) {
	f, _, err := LoadFileWithIVF(path)
	return f, err
}

// LoadFileWithIVF reads an HFAC snapshot plus, when the file carries one,
// its HIVF index section. Files written by Factors.SaveFile load with a
// nil index; a present-but-corrupt section fails the whole load (a snapshot
// is one atomic publish unit, and serving half of one is worse than
// retrying the watch tick).
func LoadFileWithIVF(path string) (*Factors, *IVFIndex, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer file.Close()
	info, err := file.Stat()
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReader(file)
	f, err := loadFactors(br, info.Size(), true)
	if err != nil {
		return nil, nil, err
	}
	if _, err := br.Peek(1); err == io.EOF {
		return f, nil, nil // factor-only snapshot
	}
	ix, err := LoadIVF(br)
	if err != nil {
		return nil, nil, err
	}
	if ix.N != f.N || ix.K != f.K {
		return nil, nil, fmt.Errorf("model: IVF section is %dx%d but factors are %dx%d", ix.N, ix.K, f.N, f.K)
	}
	return f, ix, nil
}

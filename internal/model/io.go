package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

const factorsMagic = uint32(0x48464143) // "HFAC"

// Save writes the factors in a compact little-endian binary encoding:
// magic, m, n, k (uint32 each) followed by P then Q as raw float32s.
// This is the save_model step of Algorithm 1's post-processing phase.
func (f *Factors) Save(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	header := []uint32{factorsMagic, uint32(f.M), uint32(f.N), uint32(f.K)}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, f.P); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, f.Q); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads factors written by Save.
func Load(r io.Reader) (*Factors, error) {
	br := bufio.NewReader(r)
	var header [4]uint32
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("model: reading header: %w", err)
	}
	if header[0] != factorsMagic {
		return nil, fmt.Errorf("model: bad magic %#x", header[0])
	}
	f := &Factors{M: int(header[1]), N: int(header[2]), K: int(header[3])}
	f.P = make([]float32, f.M*f.K)
	f.Q = make([]float32, f.N*f.K)
	if err := binary.Read(br, binary.LittleEndian, f.P); err != nil {
		return nil, fmt.Errorf("model: reading P: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, f.Q); err != nil {
		return nil, fmt.Errorf("model: reading Q: %w", err)
	}
	return f, nil
}

// SaveFile writes the factors to a file.
func (f *Factors) SaveFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return f.Save(file)
}

// LoadFile reads factors from a file written by SaveFile.
func LoadFile(path string) (*Factors, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return Load(file)
}

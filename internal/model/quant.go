package model

import "fmt"

// QuantizedFactors is the int8 view of the item matrix Q used by the
// serving tier's quantized retrieval scan. Each item row is quantized
// symmetrically on its own scale ("Matrix Factorization on GPUs with Memory
// Optimization and Approximate Computing" shows MF factors tolerate reduced
// precision; cuMF_SGD makes the same bandwidth argument for half-precision
// storage): the full-catalog scan is memory-bandwidth-bound, and int8 rows
// move 4× fewer bytes than float32 ones.
//
// Encoding: Data[v*K+j] = round(Q[v*K+j] / Scales[v]) with
// Scales[v] = maxAbs(q_v)/127, so values span [-127, 127] and the
// dequantized entry is Data[v*K+j]·Scales[v] with absolute error at most
// Scales[v]/2. An all-zero row has Scales[v] = 0 and all-zero data.
type QuantizedFactors struct {
	N, K   int
	Data   []int8    // len N*K, row-major: Data[v*K:(v+1)*K] ≈ q_v / Scales[v]
	Scales []float32 // per-item dequantization scale; 0 for all-zero rows
}

// QuantizeItems builds the per-item symmetric int8 quantization of f.Q.
// It is called once per published snapshot (not on the request path), so it
// favors exact rounding over speed.
func QuantizeItems(f *Factors) *QuantizedFactors {
	q := &QuantizedFactors{N: f.N, K: f.K,
		Data:   make([]int8, f.N*f.K),
		Scales: make([]float32, f.N),
	}
	for v := 0; v < f.N; v++ {
		row := f.Q[v*f.K : (v+1)*f.K]
		q.Scales[v] = QuantizeVectorInto(q.Data[v*f.K:(v+1)*f.K], row)
	}
	return q
}

// Row returns item v's quantized vector.
func (q *QuantizedFactors) Row(v int32) []int8 {
	return q.Data[int(v)*q.K : (int(v)+1)*q.K]
}

// Bytes reports the size of the quantized payload actually streamed by a
// full-catalog scan — what /statsz and the serve benchmark report against
// the float32 baseline's N·K·4.
func (q *QuantizedFactors) Bytes() int64 { return int64(len(q.Data)) }

// Validate checks internal consistency of the dimensions.
func (q *QuantizedFactors) Validate() error {
	if q.N <= 0 || q.K <= 0 {
		return fmt.Errorf("model: invalid quantized dimensions n=%d k=%d", q.N, q.K)
	}
	if len(q.Data) != q.N*q.K {
		return fmt.Errorf("model: len(Data)=%d, want %d", len(q.Data), q.N*q.K)
	}
	if len(q.Scales) != q.N {
		return fmt.Errorf("model: len(Scales)=%d, want %d", len(q.Scales), q.N)
	}
	return nil
}

// QuantizeVectorInto symmetrically quantizes src into dst (equal lengths)
// and returns the scale, such that dst[j]·scale ≈ src[j] with error at most
// scale/2. It is shared by the snapshot build (one call per item row) and
// the request hot path (one call per query vector), so it allocates nothing
// and dst is caller-owned — the serving scratch pools reuse it across
// requests. A zero vector yields scale 0 and all-zero dst.
func QuantizeVectorInto(dst []int8, src []float32) float32 {
	if len(src) == 0 {
		return 0
	}
	_ = dst[len(src)-1] // one bounds check for both loops
	var maxAbs float32
	for _, x := range src {
		if x < 0 {
			x = -x
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	if maxAbs == 0 {
		for i := range src {
			dst[i] = 0
		}
		return 0
	}
	inv := 127 / maxAbs
	for i, x := range src {
		// Round half away from zero; |x|·inv ≤ 127 by construction, and the
		// clamp guards the one case where float rounding lands on 127.5.
		r := x * inv
		if r >= 0 {
			r += 0.5
		} else {
			r -= 0.5
		}
		v := int32(r)
		if v > 127 {
			v = 127
		} else if v < -127 {
			v = -127
		}
		dst[i] = int8(v)
	}
	return maxAbs / 127
}

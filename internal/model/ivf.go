package model

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// IVFIndex is the inverted-file retrieval index built once per published
// snapshot, next to the int8 QuantizedFactors. Both the exact and int8
// full-catalog scans are memory-bandwidth-bound (~9 GB/s measured), so at
// 10-100× catalog sizes no kernel can save a linear scan — the index fixes
// it algorithmically by touching fewer bytes per query: k-means clusters
// the item factors into NList coarse cells, a query scores only the
// centroids (float32) plus the posting lists of the top-nprobe cells
// (int8), and the small surviving candidate set is reranked exactly. Same
// recall-guarantee structure as the quantized path: approximation picks
// candidates, returned scores stay exact.
type IVFIndex struct {
	N, K  int // catalog size and factor dimension
	NList int // coarse centroids / posting lists

	// Centroids is the k-means codebook, NList rows of K float32s; queries
	// score against every row to choose the lists to probe.
	Centroids []float32

	// The posting lists. Items are bucketed by nearest centroid: list l owns
	// positions Starts[l] to Starts[l+1] of IDs/Codes/Scales, and Codes
	// holds the int8-quantized item rows contiguously in list order, so
	// probing a list streams sequential bytes exactly like the linear
	// quantized scan does — the layout is what keeps the probe at the same
	// effective bandwidth as the full scan while reading 10-100× less.
	Starts []int32   // len NList+1, prefix offsets into the arrays below
	IDs    []int32   // len N: item id at each position
	Codes  []int8    // len N*K: Codes[pos*K:(pos+1)*K] is IDs[pos]'s int8 row
	Scales []float32 // len N: dequantization scale at each position
}

// k-means build parameters. Lloyd runs on a bounded training sample
// (classic codebook practice: assignment cost is S·NList·K per iteration,
// and a 32·NList sample estimates 32-point cluster means well), then every
// item is assigned once against the final codebook.
const (
	kmeansIters         = 6
	kmeansSamplePerList = 32
	kmeansMinSample     = 4096
)

// DefaultNList is the default coarse-cell count for an n-item catalog:
// 4·√n balances the two per-query costs, the centroid scan (∝ nlist) and
// the probed posting lists (∝ nprobe·n/nlist).
func DefaultNList(n int) int {
	nl := int(4 * math.Sqrt(float64(n)))
	if nl < 1 {
		nl = 1
	}
	if nl > n {
		nl = n
	}
	return nl
}

// BuildIVF clusters f's item factors into nlist cells (k-means++ seeding,
// Lloyd iterations parallel across GOMAXPROCS) and buckets qf's int8 codes
// into per-cell posting lists. nlist <= 0 picks DefaultNList. The build is
// deterministic for a fixed (factors, nlist, seed, GOMAXPROCS): sampling
// and seeding consume the seeded rng serially, and the parallel phases
// merge per-worker partials in worker order. Called once per published
// snapshot, never on the request path.
func BuildIVF(f *Factors, qf *QuantizedFactors, nlist int, seed int64) *IVFIndex {
	n, k := f.N, f.K
	if nlist <= 0 {
		nlist = DefaultNList(n)
	}
	if nlist > n {
		nlist = n
	}
	rng := rand.New(rand.NewSource(seed))
	cents := kmeansCodebook(f.Q, n, k, nlist, rng)

	// Assign every item to its nearest centroid against the final codebook.
	assign := make([]int32, n)
	negHalf := centroidNegHalfNorms(cents, nlist, k)
	parallelFor(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			assign[v] = nearestCentroid(f.Q[v*k:(v+1)*k], cents, negHalf, k)
		}
	})

	// Counting-sort the items into lists, laying each list's codes
	// contiguously for sequential streaming at probe time.
	ix := &IVFIndex{
		N: n, K: k, NList: nlist,
		Centroids: cents,
		Starts:    make([]int32, nlist+1),
		IDs:       make([]int32, n),
		Codes:     make([]int8, n*k),
		Scales:    make([]float32, n),
	}
	for _, a := range assign {
		ix.Starts[a+1]++
	}
	for l := 0; l < nlist; l++ {
		ix.Starts[l+1] += ix.Starts[l]
	}
	next := make([]int32, nlist)
	copy(next, ix.Starts[:nlist])
	for v := 0; v < n; v++ {
		a := assign[v]
		p := int(next[a])
		next[a]++
		ix.IDs[p] = int32(v)
		copy(ix.Codes[p*k:(p+1)*k], qf.Data[v*k:(v+1)*k])
		ix.Scales[p] = qf.Scales[v]
	}
	return ix
}

// ListLen returns the number of items in posting list l.
func (ix *IVFIndex) ListLen(l int) int { return int(ix.Starts[l+1] - ix.Starts[l]) }

// CentroidBytes is the float32 codebook payload every query streams.
func (ix *IVFIndex) CentroidBytes() int64 { return int64(len(ix.Centroids)) * 4 }

// Bytes reports the total index payload (codebook + codes + ids + scales +
// offsets) for /statsz and the serve benchmark.
func (ix *IVFIndex) Bytes() int64 {
	return ix.CentroidBytes() + int64(len(ix.Codes)) +
		int64(len(ix.IDs))*4 + int64(len(ix.Scales))*4 + int64(len(ix.Starts))*4
}

// Validate checks internal consistency of the index against its own
// dimensions — the same defensive gate the snapshot loader runs before an
// index read off disk is allowed near the hot path.
func (ix *IVFIndex) Validate() error {
	if ix.N <= 0 || ix.K <= 0 || ix.NList <= 0 || ix.NList > ix.N {
		return fmt.Errorf("model: invalid IVF dimensions n=%d k=%d nlist=%d", ix.N, ix.K, ix.NList)
	}
	if len(ix.Centroids) != ix.NList*ix.K {
		return fmt.Errorf("model: len(Centroids)=%d, want %d", len(ix.Centroids), ix.NList*ix.K)
	}
	if len(ix.Starts) != ix.NList+1 {
		return fmt.Errorf("model: len(Starts)=%d, want %d", len(ix.Starts), ix.NList+1)
	}
	if ix.Starts[0] != 0 || ix.Starts[ix.NList] != int32(ix.N) {
		return fmt.Errorf("model: Starts spans [%d,%d], want [0,%d]", ix.Starts[0], ix.Starts[ix.NList], ix.N)
	}
	for l := 0; l < ix.NList; l++ {
		if ix.Starts[l+1] < ix.Starts[l] {
			return fmt.Errorf("model: Starts not monotone at list %d", l)
		}
	}
	if len(ix.IDs) != ix.N || len(ix.Scales) != ix.N {
		return fmt.Errorf("model: len(IDs)=%d len(Scales)=%d, want %d", len(ix.IDs), len(ix.Scales), ix.N)
	}
	if len(ix.Codes) != ix.N*ix.K {
		return fmt.Errorf("model: len(Codes)=%d, want %d", len(ix.Codes), ix.N*ix.K)
	}
	for _, id := range ix.IDs {
		if id < 0 || int(id) >= ix.N {
			return fmt.Errorf("model: posting-list id %d outside [0,%d)", id, ix.N)
		}
	}
	return nil
}

// kmeansCodebook runs k-means++ seeding plus Lloyd iterations over a
// bounded training sample of the item rows and returns the nlist×k
// codebook.
func kmeansCodebook(q []float32, n, k, nlist int, rng *rand.Rand) []float32 {
	s := kmeansSamplePerList * nlist
	if s < kmeansMinSample {
		s = kmeansMinSample
	}
	if s > n {
		s = n
	}
	// Gather the training sample into a contiguous block so the assignment
	// loops stream it like the scorer streams Q.
	pts := make([]float32, s*k)
	for i, id := range rng.Perm(n)[:s] {
		copy(pts[i*k:(i+1)*k], q[id*k:(id+1)*k])
	}

	cents := seedPlusPlus(pts, s, k, nlist, rng)
	assign := make([]int32, s)
	for iter := 0; iter < kmeansIters; iter++ {
		negHalf := centroidNegHalfNorms(cents, nlist, k)
		parallelFor(s, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				assign[i] = nearestCentroid(pts[i*k:(i+1)*k], cents, negHalf, k)
			}
		})
		// Per-worker partial sums merged in worker order: deterministic for
		// a fixed GOMAXPROCS, and no mutex on the accumulation path.
		w := workerCount(s)
		sums := make([][]float32, w)
		counts := make([][]int32, w)
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			lo, hi := s*wi/w, s*(wi+1)/w
			sums[wi] = make([]float32, nlist*k)
			counts[wi] = make([]int32, nlist)
			wg.Add(1)
			go func(wi, lo, hi int) {
				defer wg.Done()
				sum, cnt := sums[wi], counts[wi]
				for i := lo; i < hi; i++ {
					a := int(assign[i])
					cnt[a]++
					row := pts[i*k : (i+1)*k]
					acc := sum[a*k : (a+1)*k]
					for j, x := range row {
						acc[j] += x
					}
				}
			}(wi, lo, hi)
		}
		wg.Wait()
		for wi := 1; wi < w; wi++ {
			for j, x := range sums[wi] {
				sums[0][j] += x
			}
			for l, c := range counts[wi] {
				counts[0][l] += c
			}
		}
		for l := 0; l < nlist; l++ {
			if counts[0][l] == 0 {
				continue // empty cell: keep the previous centroid
			}
			inv := 1 / float32(counts[0][l])
			row := cents[l*k : (l+1)*k]
			acc := sums[0][l*k : (l+1)*k]
			for j := range row {
				row[j] = acc[j] * inv
			}
		}
	}
	return cents
}

// seedPlusPlus is k-means++ D² seeding: each new centroid is sampled
// proportional to a point's squared distance to the nearest already-chosen
// centroid. The rng draws run serially (deterministic); the per-point
// distance refresh after each pick is the heavy part and runs parallel.
func seedPlusPlus(pts []float32, s, k, nlist int, rng *rand.Rand) []float32 {
	cents := make([]float32, nlist*k)
	copy(cents[:k], pts[rng.Intn(s)*k:][:k])
	minD := make([]float32, s)
	parallelFor(s, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			minD[i] = sqDist(pts[i*k:(i+1)*k], cents[:k])
		}
	})
	cum := make([]float64, s)
	for c := 1; c < nlist; c++ {
		var total float64
		for i, d := range minD {
			total += float64(d)
			cum[i] = total
		}
		var pick int
		if total <= 0 {
			// Degenerate sample (all points already coincide with a
			// centroid): fall back to uniform.
			pick = rng.Intn(s)
		} else {
			r := rng.Float64() * total
			pick = sort.SearchFloat64s(cum, r)
			if pick >= s {
				pick = s - 1
			}
		}
		row := cents[c*k : (c+1)*k]
		copy(row, pts[pick*k:(pick+1)*k])
		parallelFor(s, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := sqDist(pts[i*k:(i+1)*k], row); d < minD[i] {
					minD[i] = d
				}
			}
		})
	}
	return cents
}

// nearestCentroid returns the index of the centroid minimizing ‖x−c‖²,
// computed as argmax (x·c − ‖c‖²/2) so the scan is pure dot products —
// four centroid rows share one register-blocked pass over x, mirroring the
// scorer's dot4 kernel. Ties break to the lower index for determinism.
func nearestCentroid(x, cents, negHalf []float32, k int) int32 {
	best := int32(0)
	bestScore := float32(math.Inf(-1))
	nc := len(negHalf)
	consider := func(l int, s float32) {
		if s > bestScore {
			bestScore, best = s, int32(l)
		}
	}
	l := 0
	for ; l+4 <= nc; l += 4 {
		quad := cents[l*k : (l+4)*k]
		sa, sb, sc, sd := dot4x(x, quad[:k], quad[k:2*k], quad[2*k:3*k], quad[3*k:])
		consider(l, sa+negHalf[l])
		consider(l+1, sb+negHalf[l+1])
		consider(l+2, sc+negHalf[l+2])
		consider(l+3, sd+negHalf[l+3])
	}
	for ; l < nc; l++ {
		consider(l, Dot(x, cents[l*k:(l+1)*k])+negHalf[l])
	}
	return best
}

// centroidNegHalfNorms precomputes −‖c‖²/2 per centroid so assignment is a
// dot product plus one add.
func centroidNegHalfNorms(cents []float32, nlist, k int) []float32 {
	out := make([]float32, nlist)
	for l := 0; l < nlist; l++ {
		row := cents[l*k : (l+1)*k]
		var s float64
		for _, x := range row {
			s += float64(x) * float64(x)
		}
		out[l] = float32(-s / 2)
	}
	return out
}

func sqDist(a, b []float32) float32 {
	b = b[:len(a)]
	var s float32
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// dot4x is the model-side copy of the scorer's register-blocked 4-row dot:
// four rows share one streaming pass over q, keeping the accumulators in
// registers.
func dot4x(q, a, b, c, d []float32) (sa, sb, sc, sd float32) {
	a = a[:len(q)]
	b = b[:len(q)]
	c = c[:len(q)]
	d = d[:len(q)]
	for j, x := range q {
		sa += x * a[j]
		sb += x * b[j]
		sc += x * c[j]
		sd += x * d[j]
	}
	return
}

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor splits [0,n) into contiguous ranges across GOMAXPROCS
// goroutines. Used only by publish-time builds; the serving hot path never
// takes this fan-out.
func parallelFor(n int, fn func(lo, hi int)) {
	w := workerCount(n)
	if w == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := n*i/w, n*(i+1)/w
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ExpandCatalog returns a copy of f whose item catalog is replicated mult×
// with relative gaussian perturbation eps on every replica entry — the
// serve-benchmark knob for synthesizing 10-100× catalogs from a trained
// model without retraining. Replica r of item v lands at id r·N+v (replica
// 0 is the untouched original), user factors are shared unchanged, and the
// perturbation is relative so each replica keeps its source row's scale
// and the catalog's score distribution.
func ExpandCatalog(f *Factors, mult int, eps float64, seed int64) *Factors {
	if mult <= 1 {
		return f
	}
	n, k := f.N, f.K
	out := &Factors{M: f.M, N: n * mult, K: k,
		P: f.P,
		Q: make([]float32, n*mult*k),
	}
	copy(out.Q[:n*k], f.Q)
	rng := rand.New(rand.NewSource(seed))
	for r := 1; r < mult; r++ {
		dst := out.Q[r*n*k : (r+1)*n*k]
		for j, x := range f.Q {
			dst[j] = x * (1 + float32(rng.NormFloat64()*eps))
		}
	}
	return out
}

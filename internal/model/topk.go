package model

import "math"

// ScoredItem is one (item, predicted score) candidate produced by a top-K
// retrieval.
type ScoredItem struct {
	Item  int32
	Score float32
}

// TopK accumulates the K highest-scoring items seen so far using a bounded
// min-heap: the root is always the worst retained candidate, so a new item
// is admitted in O(log K) only when it beats the current floor and every
// rejected item costs a single comparison. This replaces the O(n·K)
// insertion scan the recommender example used and is shared by Factors.TopN
// and the sharded scorer in internal/serve.
//
// Ties are broken toward the lower item id (matching the old scan, which
// kept the first item encountered), so results are deterministic.
type TopK struct {
	k    int
	heap []ScoredItem // min-heap on (Score, then Item descending)
}

// NewTopK returns an accumulator that retains the k best items. k <= 0 is
// treated as an empty accumulator that rejects everything.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	cap := k
	if cap > 4096 {
		cap = 4096 // don't pre-allocate huge heaps for absurd k
	}
	return &TopK{k: k, heap: make([]ScoredItem, 0, cap)}
}

// Reset reconfigures the accumulator to retain the k best items and drops
// any retained candidates, keeping the underlying storage. The serving
// scratch pools reuse one TopK per shard across requests, which is what
// keeps the steady-state quantized recommend path allocation-free.
func (t *TopK) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.heap = t.heap[:0]
}

// worse reports whether candidate a ranks below b (a should be evicted
// before b). Lower score is worse; on equal scores the higher item id is
// worse.
func worse(a, b ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

// Push offers one candidate to the accumulator.
func (t *TopK) Push(item int32, score float32) {
	c := ScoredItem{Item: item, Score: score}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, c)
		t.siftUp(len(t.heap) - 1)
		return
	}
	if t.k == 0 || !worse(t.heap[0], c) {
		return // floor is at least as good; reject
	}
	t.heap[0] = c
	t.siftDown(0)
}

// Len returns the number of retained candidates.
func (t *TopK) Len() int { return len(t.heap) }

// Floor returns the worst retained score and whether the accumulator is
// full (only a full accumulator has a meaningful floor to prune against).
func (t *TopK) Floor() (float32, bool) {
	if len(t.heap) < t.k || t.k == 0 {
		return 0, false
	}
	return t.heap[0].Score, true
}

// Items returns the retained candidates in heap (arbitrary) order. The
// slice aliases the accumulator's storage; it is valid until the next Push.
func (t *TopK) Items() []ScoredItem { return t.heap }

// Sorted drains the accumulator and returns the candidates ordered best
// first (score descending, item id ascending on ties). The accumulator is
// empty afterwards.
func (t *TopK) Sorted() []ScoredItem {
	// Heap-sort in place: repeatedly move the root (worst) to the tail,
	// which leaves the slice ordered best-first.
	h := t.heap
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		t.heap = h[:n]
		t.siftDown(0)
	}
	t.heap = h[:0]
	return h
}

func (t *TopK) siftUp(i int) {
	h := t.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	h := t.heap
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && worse(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && worse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// MergeTopK combines per-shard accumulators into one globally sorted top-k
// list. The inputs are drained.
func MergeTopK(k int, shards ...*TopK) []ScoredItem {
	merged := NewTopK(k)
	for _, s := range shards {
		if s == nil {
			continue
		}
		for _, c := range s.Items() {
			merged.Push(c.Item, c.Score)
		}
	}
	return merged.Sorted()
}

// SimilarItems returns the n items whose factor vectors have the highest
// cosine similarity to item v's, excluding v itself. Items with a zero
// vector are skipped (cosine similarity is undefined for them). This is
// the serial reference implementation; the serving API's /v1/similar-items
// endpoint uses the sharded equivalent (serve.Scorer.SimilarItems), which
// must stay behaviorally in lockstep with this one — the serve tests
// compare the two.
func (f *Factors) SimilarItems(v int32, n int) []ScoredItem {
	if int(v) < 0 || int(v) >= f.N || n <= 0 {
		return nil
	}
	qv := f.Colvec(v)
	nv := norm(qv)
	if nv == 0 {
		return nil
	}
	t := NewTopK(n)
	for w := 0; w < f.N; w++ {
		if int32(w) == v {
			continue
		}
		qw := f.Q[w*f.K : (w+1)*f.K]
		nw := norm(qw)
		if nw == 0 {
			continue
		}
		t.Push(int32(w), Dot(qv, qw)/(nv*nw))
	}
	return t.Sorted()
}

func norm(v []float32) float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

package model

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func buildTestIVF(t *testing.T, n, k, nlist int, seed int64) (*Factors, *IVFIndex) {
	t.Helper()
	f := centeredFactors(4, n, k, seed)
	qf := QuantizeItems(f)
	ix := BuildIVF(f, qf, nlist, seed)
	if err := ix.Validate(); err != nil {
		t.Fatalf("built index fails Validate: %v", err)
	}
	return f, ix
}

func TestDefaultNList(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {4, 4}, {10000, 400}, {177700, 1686},
	}
	for _, c := range cases {
		if got := DefaultNList(c.n); got != c.want {
			t.Errorf("DefaultNList(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// Every item must land in exactly one posting list, carrying its own int8
// codes and scale from the quantized view.
func TestBuildIVFPartition(t *testing.T) {
	f := centeredFactors(4, 5000, 16, 1)
	qf := QuantizeItems(f)
	ix := BuildIVF(f, qf, 0, 1)
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.NList != DefaultNList(5000) {
		t.Fatalf("NList = %d, want default %d", ix.NList, DefaultNList(5000))
	}
	seen := make(map[int32]bool, ix.N)
	for pos, id := range ix.IDs {
		if seen[id] {
			t.Fatalf("item %d appears in two posting lists", id)
		}
		seen[id] = true
		if !bytes.Equal(i8(ix.Codes[pos*ix.K:(pos+1)*ix.K]), i8(qf.Data[int(id)*ix.K:(int(id)+1)*ix.K])) {
			t.Fatalf("codes at position %d do not match item %d's quantized row", pos, id)
		}
		if ix.Scales[pos] != qf.Scales[id] {
			t.Fatalf("scale at position %d = %v, want item %d's %v", pos, ix.Scales[pos], id, qf.Scales[id])
		}
	}
	if len(seen) != ix.N {
		t.Fatalf("posting lists cover %d items, want %d", len(seen), ix.N)
	}
}

func i8(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}

// The build is deterministic for a fixed (factors, nlist, seed): two builds
// must agree bit-for-bit, and a different seed must actually change the
// codebook (otherwise the determinism check is vacuous).
func TestBuildIVFDeterministic(t *testing.T) {
	_, a := buildTestIVF(t, 6000, 24, 64, 7)
	_, b := buildTestIVF(t, 6000, 24, 64, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two builds with the same seed differ")
	}
	_, c := buildTestIVF(t, 6000, 24, 64, 8)
	if reflect.DeepEqual(a.Centroids, c.Centroids) {
		t.Fatal("different seeds produced identical codebooks")
	}
}

func TestIVFValidateRejectsCorruption(t *testing.T) {
	_, ix := buildTestIVF(t, 2000, 8, 32, 3)
	mutations := []struct {
		name string
		mut  func(*IVFIndex)
	}{
		{"id out of range", func(ix *IVFIndex) { ix.IDs[5] = int32(ix.N) }},
		{"starts not monotone", func(ix *IVFIndex) { ix.Starts[1] = ix.Starts[2] + 1; ix.Starts[2] = 0 }},
		{"starts wrong span", func(ix *IVFIndex) { ix.Starts[ix.NList] = int32(ix.N - 1) }},
		{"codes truncated", func(ix *IVFIndex) { ix.Codes = ix.Codes[:len(ix.Codes)-1] }},
		{"nlist over n", func(ix *IVFIndex) { ix.NList = ix.N + 1 }},
	}
	for _, m := range mutations {
		cp := *ix
		cp.Starts = append([]int32(nil), ix.Starts...)
		cp.IDs = append([]int32(nil), ix.IDs...)
		m.mut(&cp)
		if cp.Validate() == nil {
			t.Errorf("%s: Validate accepted a corrupt index", m.name)
		}
	}
}

func TestIVFSaveLoadRoundTrip(t *testing.T) {
	_, ix := buildTestIVF(t, 3000, 16, 48, 5)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadIVF(&buf)
	if err != nil {
		t.Fatalf("LoadIVF: %v", err)
	}
	if !reflect.DeepEqual(ix, got) {
		t.Fatal("loaded index differs from saved")
	}
}

// The snapshot file contract: with an index the file round-trips both
// sections; without one LoadFileWithIVF returns a nil index; and plain
// LoadFile tolerates (ignores) a trailing index section.
func TestSaveFileAtomicWithIVFRoundTrip(t *testing.T) {
	f, ix := buildTestIVF(t, 2500, 12, 40, 11)
	path := filepath.Join(t.TempDir(), "snap.hfac")
	if err := SaveFileAtomicWithIVF(path, f, ix); err != nil {
		t.Fatalf("SaveFileAtomicWithIVF: %v", err)
	}
	gf, gix, err := LoadFileWithIVF(path)
	if err != nil {
		t.Fatalf("LoadFileWithIVF: %v", err)
	}
	if !reflect.DeepEqual(f, gf) {
		t.Fatal("factors differ after round trip")
	}
	if !reflect.DeepEqual(ix, gix) {
		t.Fatal("index differs after round trip")
	}
	// Plain LoadFile must still read the factor block.
	lf, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile on a file with an IVF section: %v", err)
	}
	if !reflect.DeepEqual(f, lf) {
		t.Fatal("LoadFile factors differ")
	}
	// A factor-only file loads with a nil index.
	plain := filepath.Join(t.TempDir(), "plain.hfac")
	if err := f.SaveFileAtomic(plain); err != nil {
		t.Fatalf("SaveFileAtomic: %v", err)
	}
	_, gix, err = LoadFileWithIVF(plain)
	if err != nil {
		t.Fatalf("LoadFileWithIVF on factor-only file: %v", err)
	}
	if gix != nil {
		t.Fatal("factor-only file produced a non-nil index")
	}
}

func TestSaveFileAtomicWithIVFDimMismatch(t *testing.T) {
	f, _ := buildTestIVF(t, 2000, 8, 32, 3)
	_, other := buildTestIVF(t, 1000, 8, 32, 3)
	path := filepath.Join(t.TempDir(), "bad.hfac")
	if err := SaveFileAtomicWithIVF(path, f, other); err == nil {
		t.Fatal("mismatched index accepted")
	}
}

func TestLoadFileWithIVFRejectsCorruptSection(t *testing.T) {
	f, ix := buildTestIVF(t, 2000, 8, 32, 3)
	path := filepath.Join(t.TempDir(), "snap.hfac")
	if err := SaveFileAtomicWithIVF(path, f, ix); err != nil {
		t.Fatalf("SaveFileAtomicWithIVF: %v", err)
	}
	// Truncate into the IVF payload: the whole load must fail, not fall back
	// to a factor-only snapshot.
	data := readFileT(t, path)
	trunc := filepath.Join(t.TempDir(), "trunc.hfac")
	writeFileT(t, trunc, data[:len(data)-8])
	if _, _, err := LoadFileWithIVF(trunc); err == nil {
		t.Fatal("truncated IVF section loaded without error")
	}
}

// ExpandCatalog contract: replica 0 is the untouched original, users are
// shared, and each replica entry stays within a few eps of its source.
func TestExpandCatalog(t *testing.T) {
	f := centeredFactors(6, 500, 8, 2)
	g := ExpandCatalog(f, 3, 0.01, 9)
	if g.M != f.M || g.K != f.K || g.N != 3*f.N {
		t.Fatalf("expanded dims = %dx%dx%d", g.M, g.N, g.K)
	}
	if &g.P[0] != &f.P[0] {
		t.Fatal("user factors were copied, want shared")
	}
	if !reflect.DeepEqual(g.Q[:f.N*f.K], f.Q) {
		t.Fatal("replica 0 was perturbed")
	}
	for r := 1; r < 3; r++ {
		dst := g.Q[r*f.N*f.K : (r+1)*f.N*f.K]
		same := true
		for j, x := range f.Q {
			d := dst[j] - x
			if d != 0 {
				same = false
			}
			if d < 0 {
				d = -d
			}
			mag := x
			if mag < 0 {
				mag = -mag
			}
			if d > mag*0.01*8 { // 8 sigma: effectively never for a correct impl
				t.Fatalf("replica %d entry %d drifted %v from %v", r, j, dst[j], x)
			}
		}
		if same {
			t.Fatalf("replica %d is identical to the original", r)
		}
	}
	if ExpandCatalog(f, 1, 0.01, 9) != f {
		t.Fatal("mult=1 should return f unchanged")
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFileT(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hsgd/internal/sparse"
)

func TestNewFactorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewFactors(5, 7, 4, rng)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.P) != 20 || len(f.Q) != 28 {
		t.Fatalf("P/Q lengths %d/%d", len(f.P), len(f.Q))
	}
	for _, v := range f.P {
		if v < 0 || v >= 1 {
			t.Fatalf("P entry %v outside init range", v)
		}
	}
}

func TestNewFactorsMeanPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mean := 50.0
	f := NewFactorsMean(200, 200, 16, mean, rng)
	var sum float64
	n := 0
	for u := int32(0); u < 50; u++ {
		for v := int32(0); v < 50; v++ {
			sum += float64(f.Predict(u, v))
			n++
		}
	}
	avg := sum / float64(n)
	if avg < mean*0.7 || avg > mean*1.3 {
		t.Fatalf("mean prediction %v, want near %v", avg, mean)
	}
}

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{2, 0, 1, 1, 3}
	if got := Dot(a, b); got != 24 {
		t.Fatalf("Dot = %v, want 24", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil) = %v", got)
	}
}

// Property: the unrolled Dot matches the naive product.
func TestQuickDot(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%33) + 1
		a := make([]float32, k)
		b := make([]float32, k)
		var want float64
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		return math.Abs(got-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSE(t *testing.T) {
	f := &Factors{M: 2, N: 2, K: 1, P: []float32{1, 2}, Q: []float32{3, 4}}
	m := sparse.New(2, 2)
	m.Add(0, 0, 3)  // predict 1*3=3, error 0
	m.Add(1, 1, 10) // predict 2*4=8, error 2
	got := RMSE(f, m)
	want := math.Sqrt((0*0 + 2*2) / 2.0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if RMSE(f, sparse.New(2, 2)) != 0 {
		t.Fatal("empty test set should give 0")
	}
}

func TestLoss(t *testing.T) {
	f := &Factors{M: 1, N: 1, K: 1, P: []float32{2}, Q: []float32{3}}
	m := sparse.New(1, 1)
	m.Add(0, 0, 5) // error 1, ||p||²=4, ||q||²=9
	got := Loss(f, m, 0.5, 1)
	want := 1.0 + 0.5*4 + 1*9
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Loss = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFactors(3, 3, 2, rand.New(rand.NewSource(3)))
	c := f.Clone()
	c.P[0] = 42
	if f.P[0] == 42 {
		t.Fatal("Clone shares P")
	}
}

func TestValidate(t *testing.T) {
	f := NewFactors(3, 3, 2, rand.New(rand.NewSource(4)))
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	f.P = f.P[:len(f.P)-1]
	if err := f.Validate(); err == nil {
		t.Fatal("short P accepted")
	}
	bad := &Factors{M: 0, N: 1, K: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero M accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := NewFactors(4, 6, 3, rand.New(rand.NewSource(5)))
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != f.M || back.N != f.N || back.K != f.K {
		t.Fatal("shape mismatch after load")
	}
	for i := range f.P {
		if back.P[i] != f.P[i] {
			t.Fatal("P mismatch after load")
		}
	}
	for i := range f.Q {
		if back.Q[i] != f.Q[i] {
			t.Fatal("Q mismatch after load")
		}
	}
	// Bad magic rejected.
	raw := append([]byte(nil), bufBytes(f)...)
	raw[0] ^= 0xff
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func bufBytes(f *Factors) []byte {
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestSaveLoadFile(t *testing.T) {
	f := NewFactors(2, 2, 2, rand.New(rand.NewSource(6)))
	path := t.TempDir() + "/factors.bin"
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Predict(1, 1) != f.Predict(1, 1) {
		t.Fatal("prediction changed after file round trip")
	}
}

func TestTopN(t *testing.T) {
	// One user, clear score ordering: q_v = v so bigger item id wins.
	f := &Factors{M: 1, N: 5, K: 1, P: []float32{1}, Q: []float32{0, 1, 2, 3, 4}}
	top := f.TopN(0, 3, nil)
	if len(top) != 3 || top[0] != 4 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopN = %v", top)
	}
	top = f.TopN(0, 3, map[int32]bool{4: true})
	if top[0] != 3 || top[1] != 2 || top[2] != 1 {
		t.Fatalf("TopN with seen = %v", top)
	}
	if got := f.TopN(0, 10, nil); len(got) != 5 {
		t.Fatalf("TopN larger than N returned %d items", len(got))
	}
}

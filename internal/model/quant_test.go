package model

import (
	"math"
	"math/rand"
	"testing"

	"hsgd/internal/sparse"
)

// centeredFactors builds factors whose entries span [-0.5, 0.5) — unlike
// NewFactors (non-negative init), this exercises the signed half of the
// int8 range.
func centeredFactors(m, n, k int, seed int64) *Factors {
	rng := rand.New(rand.NewSource(seed))
	f := &Factors{M: m, N: n, K: k,
		P: make([]float32, m*k), Q: make([]float32, n*k)}
	for i := range f.P {
		f.P[i] = rng.Float32() - 0.5
	}
	for i := range f.Q {
		f.Q[i] = rng.Float32() - 0.5
	}
	return f
}

// The quantization contract: per item, every dequantized entry is within
// scale/2 of the original, the row's max-magnitude entry maps to ±127, and
// zero rows get scale 0.
func TestQuantizeRoundTripBound(t *testing.T) {
	f := centeredFactors(1, 300, 48, 1)
	// Plant edge-case rows: all zeros, a single spike, and a constant row.
	for j := 0; j < f.K; j++ {
		f.Q[0*f.K+j] = 0
		f.Q[1*f.K+j] = 0
		f.Q[2*f.K+j] = -0.75
	}
	f.Q[1*f.K+3] = 2.5

	q := QuantizeItems(f)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Scales[0] != 0 {
		t.Fatalf("zero row got scale %v", q.Scales[0])
	}
	for v := 0; v < f.N; v++ {
		row := f.Q[v*f.K : (v+1)*f.K]
		qrow := q.Row(int32(v))
		scale := q.Scales[v]
		var maxAbs float32
		sawFull := false
		for j, x := range row {
			if a := float32(math.Abs(float64(x))); a > maxAbs {
				maxAbs = a
			}
			if qrow[j] == 127 || qrow[j] == -127 {
				sawFull = true
			}
			deq := float64(qrow[j]) * float64(scale)
			if err := math.Abs(deq - float64(x)); err > float64(scale)/2*(1+1e-5) {
				t.Fatalf("item %d entry %d: |deq-orig| = %v > scale/2 = %v",
					v, j, err, scale/2)
			}
		}
		if maxAbs == 0 {
			continue
		}
		if got, want := scale, maxAbs/127; math.Abs(float64(got-want)) > 1e-12 {
			t.Fatalf("item %d: scale %v, want maxAbs/127 = %v", v, got, want)
		}
		if !sawFull {
			t.Fatalf("item %d: max-magnitude entry did not map to ±127", v)
		}
	}
}

func TestQuantizeVectorInto(t *testing.T) {
	dst := make([]int8, 4)
	if s := QuantizeVectorInto(dst, []float32{0, 0, 0, 0}); s != 0 {
		t.Fatalf("zero vector scale %v", s)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("zero vector data %v", dst)
		}
	}
	src := []float32{-1, 0.5, 0.25, 1}
	s := QuantizeVectorInto(dst, src)
	if s != 1.0/127 {
		t.Fatalf("scale %v, want 1/127", s)
	}
	if dst[0] != -127 || dst[3] != 127 {
		t.Fatalf("extremes %v, want ±127", dst)
	}
	if QuantizeVectorInto(nil, nil) != 0 {
		t.Fatal("empty vector should quantize to scale 0")
	}
}

// Quantized dot products must approximate exact ones well enough to rank:
// correlation of errors is what the serve-level recall test checks; here we
// just bound the per-score relative error.
func TestQuantizedScoreError(t *testing.T) {
	f := centeredFactors(16, 512, 64, 2)
	q := QuantizeItems(f)
	qq := make([]int8, f.K)
	for u := int32(0); u < 16; u++ {
		query := f.Row(u)
		qs := QuantizeVectorInto(qq, query)
		for v := int32(0); v < 512; v++ {
			exact := f.Predict(u, v)
			var acc int32
			for j, x := range qq {
				acc += int32(x) * int32(q.Row(v)[j])
			}
			approx := float32(acc) * qs * q.Scales[v]
			// Error per term ≤ scale_q·|r_j| + scale_r·|q_j| + scale_q·scale_r;
			// a loose but sufficient global bound for these magnitudes:
			if math.Abs(float64(approx-exact)) > 0.05 {
				t.Fatalf("u=%d v=%d: approx %v vs exact %v", u, v, approx, exact)
			}
		}
	}
}

func TestTopKReset(t *testing.T) {
	tk := NewTopK(3)
	for i := int32(0); i < 10; i++ {
		tk.Push(i, float32(i))
	}
	if tk.Len() != 3 {
		t.Fatalf("len %d", tk.Len())
	}
	tk.Reset(2)
	if tk.Len() != 0 {
		t.Fatalf("reset left %d items", tk.Len())
	}
	tk.Push(1, 1)
	tk.Push(2, 2)
	tk.Push(3, 3)
	got := tk.Sorted()
	if len(got) != 2 || got[0].Item != 3 || got[1].Item != 2 {
		t.Fatalf("after reset: %v", got)
	}
	tk.Reset(-1)
	tk.Push(1, 1)
	if tk.Len() != 0 {
		t.Fatal("negative k accepted items")
	}
}

// Parallel RMSE must agree with a serial reference sum on a set large
// enough to trigger the chunked path.
func TestRMSEParallelMatchesSerial(t *testing.T) {
	f := centeredFactors(200, 200, 8, 3)
	rng := rand.New(rand.NewSource(4))
	m := sparse.New(200, 200)
	for i := 0; i < 100000; i++ {
		m.Add(rng.Int31n(200), rng.Int31n(200), rng.Float32()*5)
	}
	var sum float64
	for _, r := range m.Ratings {
		d := float64(r.Value - f.Predict(r.Row, r.Col))
		sum += d * d
	}
	want := math.Sqrt(sum / float64(m.NNZ()))
	got := RMSE(f, m)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("RMSE %v, want %v", got, want)
	}
}

package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hsgd/internal/model"
	olog "hsgd/internal/obs/log"
	"hsgd/internal/sparse"
)

// WorkerConfig tunes one worker process. The zero value is usable.
type WorkerConfig struct {
	// SendTimeout bounds each outbound frame write; 0 means 10s.
	SendTimeout time.Duration
	// SendRetries is the bounded retry budget for transient send timeouts
	// that fire before any byte is written; 0 means 3.
	SendRetries int
	// DialAttempts bounds the connect retry loop (the coordinator may not
	// be up yet); 0 means 30. DialBackoff is the initial backoff between
	// attempts, doubling up to 5s; 0 means 250ms.
	DialAttempts int
	DialBackoff  time.Duration
	// ReadTimeout is how long the worker tolerates total coordinator
	// silence before declaring it dead; 0 means 2 minutes. The coordinator
	// is silent while it evaluates RMSE and writes checkpoints at epoch
	// boundaries, so this is deliberately generous.
	ReadTimeout time.Duration
	// Rejoins bounds how many times a broken coordinator link is re-dialed
	// before the worker gives up; 0 means 5, negative disables rejoining.
	// Each attempt gets the full DialAttempts ladder — that window is what
	// rides out a coordinator restart without losing the worker fleet.
	Rejoins int
	// Metrics receives the node's hsgd_dist_* series; nil disables export.
	Metrics *Metrics
	// Log receives structured worker logs; every record is bound with the
	// run id and slot once the welcome assigns them. Nil disables logging.
	Log *olog.Logger

	// onColumn, when set, is called before each column visit is processed —
	// test instrumentation for deterministic fault injection (package-
	// internal on purpose).
	onColumn func(col int32)
}

func (c *WorkerConfig) fill() {
	if c.SendTimeout <= 0 {
		c.SendTimeout = 10 * time.Second
	}
	if c.SendRetries <= 0 {
		c.SendRetries = 3
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 30
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 250 * time.Millisecond
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.Rejoins == 0 {
		c.Rejoins = 5
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(nil, "worker")
	}
}

// Work runs one worker process against the coordinator at addr: dial (with
// bounded retry and backoff — process launch order is arbitrary), receive
// the row partition and hyperparameters, then serve column visits until
// the coordinator sends Done. Every process loads the same ratings file;
// the worker trains only the rows of its assigned partition, re-indexing
// when a re-Assign moves the partition boundary.
//
// A broken link is not fatal: the worker remembers the run id and slot it
// was welcomed into and re-dials up to cfg.Rejoins times, presenting both
// in the next hello so the (possibly restarted) coordinator re-admits it as
// the same worker and re-Assigns its partition. Only transport failures are
// retried this way — protocol violations, decode errors, and an exhausted
// dial ladder are terminal.
//
// Work returns nil on a clean Done, the context error when ctx fires, and
// the final transport error when the rejoin budget runs out.
func Work(ctx context.Context, d Dialer, addr string, train *sparse.Matrix, cfg WorkerConfig) error {
	cfg.fill()
	if train.NNZ() == 0 {
		return sparse.ErrEmpty
	}
	runID, prevID := uint64(0), noPrevID
	for attempt := 0; ; attempt++ {
		err := workSession(ctx, d, addr, train, &cfg, &runID, &prevID)
		var le *linkError
		if !errors.As(err, &le) {
			return err // clean Done (nil) or a terminal failure
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		if cfg.Rejoins < 0 || attempt >= cfg.Rejoins {
			return le.err
		}
		cfg.Metrics.Rejoins.Inc()
		cfg.Log.Warn("coordinator link lost; rejoining",
			"attempt", fmt.Sprint(attempt+1), "err", le.err.Error())
		// A brief pause before re-dialing gives the coordinator time to
		// notice the dead link and free the slot this worker asks for.
		select {
		case <-time.After(cfg.DialBackoff):
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
}

// linkError marks a transport failure underneath a healthy protocol — the
// one class of session error a re-dial can fix.
type linkError struct{ err error }

func (e *linkError) Error() string { return e.err.Error() }
func (e *linkError) Unwrap() error { return e.err }

// workSession runs one dial → handshake → serve session against the
// coordinator. runID and prevID carry the worker's identity across
// sessions: zero-valued on the first dial, they are set from the welcome so
// a later rejoin can prove continuity.
func workSession(ctx context.Context, d Dialer, addr string, train *sparse.Matrix, cfg *WorkerConfig, runID *uint64, prevID *uint32) error {
	conn, err := dialRetry(ctx, d, addr, cfg.DialAttempts, cfg.DialBackoff)
	if err != nil {
		return err // the full dial ladder failed: the coordinator is gone
	}
	// sessionDone tears the session down: it unblocks the heartbeat ticker
	// and any writeFrame retry backoff, and the watcher below turns a ctx
	// cancellation into a closed connection to unblock the read loop.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	l := &link{c: conn, m: cfg.Metrics, sendTimeout: cfg.SendTimeout, retries: cfg.SendRetries, done: sessionDone}
	defer l.close()
	go func() {
		select {
		case <-ctx.Done():
			l.close()
		case <-sessionDone:
		}
	}()

	if err := l.send(mHello, hello{Version: protocolVersion, RunID: *runID, PrevID: *prevID}.encode()); err != nil {
		return &linkError{err}
	}
	t, payload, err := l.recv(cfg.ReadTimeout)
	if err != nil {
		return &linkError{wrapCtx(ctx, fmt.Errorf("dist: waiting for welcome: %w", err))}
	}
	if t != mWelcome {
		return fmt.Errorf("dist: expected welcome, got %s", t)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return err
	}
	// Remember the run and slot for any future rejoin hello.
	*runID = w.RunID
	*prevID = w.ID
	lg := cfg.Log.With("run", fmt.Sprintf("%016x", w.RunID), "slot", fmt.Sprint(w.ID))
	lg.Info("joined run")

	st := &workerRun{train: train, cfg: cfg, link: l, log: lg}

	// Heartbeats keep the coordinator's liveness window open while the
	// worker has no column in hand (idle tail of an epoch, slow peers).
	// Each one carries the session's metric snapshot plus any spans that
	// had no ColDone frame to ride.
	if w.HeartbeatMilli > 0 {
		hb := time.NewTicker(time.Duration(w.HeartbeatMilli) * time.Millisecond)
		defer hb.Stop()
		go func() {
			for {
				select {
				case <-hb.C:
					if l.send(mHeartbeat, st.heartbeat().encode()) != nil {
						return
					}
					cfg.Metrics.Heartbeats.Inc()
				case <-sessionDone:
					return
				}
			}
		}()
	}

	for {
		t, payload, err := l.recv(cfg.ReadTimeout)
		if err != nil {
			return &linkError{wrapCtx(ctx, fmt.Errorf("dist: coordinator link: %w", err))}
		}
		recvAt := time.Now()
		switch t {
		case mAssign:
			a, err := decodeAssign(payload)
			if err != nil {
				return err
			}
			if err := st.adopt(a); err != nil {
				return err
			}
		case mColTask:
			task, err := decodeColTask(payload)
			if err != nil {
				return err
			}
			if err := st.visit(task, recvAt); err != nil {
				// The return send failed — the ctx watcher closed the link,
				// or the link itself broke mid-send. Either way a transport
				// problem: rejoinable (the rejoin loop re-checks ctx first).
				return &linkError{wrapCtx(ctx, err)}
			}
		case mEpochSync:
			es, err := decodeEpochSync(payload)
			if err != nil {
				return err
			}
			if err := st.sync(es); err != nil {
				return &linkError{wrapCtx(ctx, err)}
			}
		case mDone:
			return nil
		case mHeartbeat:
			// Coordinators do not heartbeat today; tolerate it anyway.
		default:
			return fmt.Errorf("dist: unexpected %s frame from coordinator", t)
		}
	}
}

// wrapCtx prefers the context error over the transport error it caused:
// cancelling the worker closes the connection, and callers should see
// context.Canceled, not "use of closed network connection".
func wrapCtx(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return err
}

// workerRun is the single-goroutine training state: the current assignment
// plus the rows-by-column index over the worker's partition.
type workerRun struct {
	train *sparse.Matrix
	cfg   *WorkerConfig
	link  *link
	log   *olog.Logger

	k                int
	lambdaP, lambdaQ float32
	gamma            float32
	lo, hi           int       // row partition [lo,hi)
	p                []float32 // (hi-lo)·k local row factors
	byCol            [][]sparse.Rating

	// Session totals, read by the heartbeat goroutine for the hbStat
	// snapshot while the main loop keeps training.
	cols    atomic.Uint64
	ratings atomic.Uint64
	kernel  atomic.Uint64 // nanoseconds in the SGD loop

	// pending buffers spans with no ColDone frame of their own (reply and
	// psync phases); the next heartbeat drains and ships them.
	pendMu  sync.Mutex
	pending []pendingSpan
}

// pendingSpan is a span awaiting a carrying frame; Age is computed against
// the frame's send instant at encode time.
type pendingSpan struct {
	kind  uint8
	start time.Time
	dur   time.Duration
}

// pend queues one span for the next heartbeat, dropping the oldest past the
// per-frame cap (tracing covers one epoch; overflow means the link is far
// behind and the tail is the interesting part).
func (s *workerRun) pend(kind uint8, start time.Time, dur time.Duration) {
	s.pendMu.Lock()
	if len(s.pending) >= maxSpansPerFrame {
		s.pending = s.pending[1:]
	}
	s.pending = append(s.pending, pendingSpan{kind: kind, start: start, dur: dur})
	s.pendMu.Unlock()
}

// heartbeat snapshots the session totals and drains pending spans into a
// wire batch, aging them against now (the frame is sent immediately after).
func (s *workerRun) heartbeat() hbStat {
	stat := hbStat{
		Cols:        s.cols.Load(),
		Ratings:     s.ratings.Load(),
		KernelNanos: s.kernel.Load(),
	}
	s.pendMu.Lock()
	pend := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	if len(pend) > 0 {
		now := time.Now()
		stat.Spans = make([]wireSpan, len(pend))
		for i, p := range pend {
			stat.Spans[i] = wireSpan{Kind: p.kind, Age: spanAge(now, p.start), Dur: uint64(p.dur)}
		}
	}
	return stat
}

// spanAge is the wireSpan age encoding: nanoseconds between a span's start
// and the carrying frame's send instant, clamped at zero.
func spanAge(send, start time.Time) uint64 {
	if d := send.Sub(start); d > 0 {
		return uint64(d)
	}
	return 0
}

// adopt installs an assignment: hyperparameters, the partition's P rows,
// and a fresh column index over the partition's ratings.
func (s *workerRun) adopt(a assign) error {
	if a.K == 0 || int(a.RowHi) > s.train.Rows {
		return fmt.Errorf("dist: assign k=%d rows [%d,%d) outside matrix with %d rows", a.K, a.RowLo, a.RowHi, s.train.Rows)
	}
	s.k = int(a.K)
	s.lambdaP, s.lambdaQ, s.gamma = a.LambdaP, a.LambdaQ, a.Gamma
	s.lo, s.hi = int(a.RowLo), int(a.RowHi)
	s.p = a.P
	s.byCol = make([][]sparse.Rating, s.train.Cols)
	for _, r := range s.train.Ratings {
		if int(r.Row) >= s.lo && int(r.Row) < s.hi {
			s.byCol[r.Col] = append(s.byCol[r.Col], r)
		}
	}
	s.log.Debug("assignment adopted",
		"rows", fmt.Sprintf("[%d,%d)", s.lo, s.hi), "epoch", fmt.Sprint(a.Epoch))
	return nil
}

// visit applies one column visit: SGD over this partition's ratings of the
// column, against the circulating q vector, then returns the updated
// column with its cost sample. Conflict-free by construction: p rows are
// only ever touched by their owning worker, q only by the current holder.
//
// A traced task (nonzero TraceID) additionally ships the visit's recv and
// kernel phases on the ColDone frame itself; the reply phase cannot know
// its own send duration, so it rides the next heartbeat instead. recvAt is
// the frame's receive instant, stamped by the session loop.
func (s *workerRun) visit(t colTask, recvAt time.Time) error {
	if s.p == nil {
		return errors.New("dist: column task before assignment")
	}
	if int(t.Col) >= len(s.byCol) || len(t.Q) != s.k {
		return fmt.Errorf("dist: column task col=%d k=%d outside assignment", t.Col, len(t.Q))
	}
	s.cfg.Metrics.ColumnsRecv.Inc()
	if s.cfg.onColumn != nil {
		s.cfg.onColumn(int32(t.Col))
	}
	ratings := s.byCol[t.Col]
	start := time.Now()
	q := t.Q
	for _, r := range ratings {
		pu := s.p[(int(r.Row)-s.lo)*s.k : (int(r.Row)-s.lo+1)*s.k]
		e := r.Value - model.Dot(pu, q)
		for i := range pu {
			pi := pu[i]
			qi := q[i]
			pu[i] = pi + s.gamma*(e*qi-s.lambdaP*pi)
			q[i] = qi + s.gamma*(e*pi-s.lambdaQ*qi)
		}
	}
	kernelEnd := time.Now()
	nanos := kernelEnd.Sub(start).Nanoseconds()
	s.cols.Add(1)
	s.ratings.Add(uint64(len(ratings)))
	s.kernel.Add(uint64(nanos))
	done := colDone{
		Epoch: t.Epoch, Col: t.Col,
		NRatings: uint32(len(ratings)), Nanos: uint64(nanos), Q: q,
	}
	if t.TraceID != 0 {
		sendAt := time.Now() // the frame leaves right after encoding
		done.Spans = []wireSpan{
			{Kind: wspanRecv, Age: spanAge(sendAt, recvAt), Dur: uint64(start.Sub(recvAt))},
			{Kind: wspanKernel, Age: spanAge(sendAt, start), Dur: uint64(kernelEnd.Sub(start))},
		}
	}
	if err := s.link.send(mColDone, done.encode()); err != nil {
		return err
	}
	if t.TraceID != 0 {
		s.pend(wspanReply, kernelEnd, time.Since(kernelEnd))
	}
	s.cfg.Metrics.ColumnsSent.Inc()
	return nil
}

// sync ships the partition's P rows back for the coordinator's merge.
// Frames are processed in order, so every column visit dispatched before
// the EpochSync has already been applied and returned. On a traced epoch
// the build+send phase is recorded and rides the next heartbeat.
func (s *workerRun) sync(e epochSync) error {
	start := time.Now()
	msg := pSync{Epoch: e.Epoch, RowLo: uint32(s.lo), RowHi: uint32(s.hi), P: s.p}
	err := s.link.send(mPSync, msg.encode())
	if err == nil && e.TraceID != 0 {
		s.pend(wspanPSync, start, time.Since(start))
	}
	return err
}

package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Frames are [uint32 length][uint8 type][payload]; length covers the type
// byte plus payload. maxFrameBytes bounds what a reader will allocate for
// one frame — generous enough for a P partition of millions of rows at
// k=128, small enough that a corrupt length prefix cannot trigger a
// gigantic allocation.
const (
	frameHeader   = 5
	maxFrameBytes = 256 << 20
)

// writeFrame sends one frame within timeout (0 disables the deadline). The
// header and payload are assembled into a single buffer so one Write call
// carries the whole frame. A timeout or temporary error that fires before
// any byte reached the wire is retried with exponential backoff up to
// retries times; once a partial frame is on the wire the stream framing is
// unrecoverable, so the error is final. The backoff wait is cancellable:
// when done (nil allowed) closes mid-wait the send aborts immediately
// instead of serving out the rest of the ladder — a cancelled run must
// not hang on a retry sleep. Returns the frame size on success.
func writeFrame(c net.Conn, t msgType, payload []byte, timeout time.Duration, retries int, done <-chan struct{}) (int, error) {
	if len(payload)+1 > maxFrameBytes {
		return 0, fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte cap", len(payload)+1, maxFrameBytes)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)+1))
	buf[4] = byte(t)
	copy(buf[frameHeader:], payload)

	backoff := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		if timeout > 0 {
			c.SetWriteDeadline(time.Now().Add(timeout))
		}
		n, err := c.Write(buf)
		if timeout > 0 {
			c.SetWriteDeadline(time.Time{})
		}
		if err == nil {
			return len(buf), nil
		}
		// Retry is only sound while the frame boundary is intact: nothing
		// written yet, and the error is transient (a deadline firing under
		// momentary backpressure, not a closed connection).
		nerr, ok := err.(net.Error)
		transient := n == 0 && attempt < retries && ok && nerr.Timeout()
		if !transient {
			return 0, fmt.Errorf("dist: sending %s frame: %w", t, err)
		}
		wait := time.NewTimer(backoff)
		select {
		case <-wait.C:
		case <-done: // a nil done never fires; the wait is then a plain sleep
			wait.Stop()
			return 0, fmt.Errorf("dist: sending %s frame: %w", t, net.ErrClosed)
		}
		backoff *= 2
	}
}

// readFrame reads one frame within timeout (0 disables the deadline) and
// returns its type, payload, and total size in bytes.
func readFrame(c net.Conn, timeout time.Duration) (msgType, []byte, int, error) {
	if timeout > 0 {
		c.SetReadDeadline(time.Now().Add(timeout))
		defer c.SetReadDeadline(time.Time{})
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	if size < 1 || size > maxFrameBytes {
		return 0, nil, 0, fmt.Errorf("dist: frame length %d outside [1,%d]", size, maxFrameBytes)
	}
	payload := make([]byte, size-1)
	if _, err := io.ReadFull(c, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("dist: reading %d-byte frame body: %w", size-1, err)
	}
	return msgType(hdr[4]), payload, frameHeader + int(size) - 1, nil
}

// link wraps one connection with the send discipline both roles share: a
// mutex serialising writers (the coordinator's dispatcher and epoch logic;
// the worker's processing loop and heartbeat ticker), the per-send timeout
// and bounded retry, and byte accounting into the role's metrics. done,
// when non-nil, aborts in-progress retry backoffs the moment the owning
// run winds down.
type link struct {
	c           net.Conn
	m           *Metrics
	sendTimeout time.Duration
	retries     int
	done        <-chan struct{}

	wmu sync.Mutex
}

func (l *link) send(t msgType, payload []byte) error {
	l.wmu.Lock()
	n, err := writeFrame(l.c, t, payload, l.sendTimeout, l.retries, l.done)
	l.wmu.Unlock()
	if err == nil {
		l.m.BytesSent.Add(int64(n))
	}
	return err
}

// recv reads one frame, counting its bytes. timeout 0 means no deadline.
func (l *link) recv(timeout time.Duration) (msgType, []byte, error) {
	t, payload, n, err := readFrame(l.c, timeout)
	if err == nil {
		l.m.BytesRecv.Add(int64(n))
	}
	return t, payload, err
}

func (l *link) close() { l.c.Close() }

package dist

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hsgd/internal/model"
	"hsgd/internal/nomad"
	"hsgd/internal/obs"
	"hsgd/internal/sparse"
)

func planted(m, n, nnz int, seed int64) (*sparse.Matrix, *sparse.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	const rank = 2
	p := make([]float32, m*rank)
	q := make([]float32, n*rank)
	for i := range p {
		p[i] = rng.Float32()
	}
	for i := range q {
		q[i] = rng.Float32()
	}
	gen := func(count int) *sparse.Matrix {
		out := sparse.New(m, n)
		for i := 0; i < count; i++ {
			u := rng.Intn(m)
			v := rng.Intn(n)
			var dot float32
			for j := 0; j < rank; j++ {
				dot += p[u*rank+j] * q[v*rank+j]
			}
			out.Add(int32(u), int32(v), dot+float32(rng.NormFloat64()*0.05))
		}
		return out
	}
	return gen(nnz), gen(nnz / 5)
}

// testConfig returns cluster settings tightened for test latency: fast
// heartbeats, short liveness windows.
func testConfig(workers, epochs int) Config {
	return Config{
		K: 8, LambdaP: 0.01, LambdaQ: 0.01, Gamma: 0.05,
		Epochs: epochs, Seed: 1, Workers: workers,
		HeartbeatEvery:  20 * time.Millisecond,
		LivenessTimeout: 3 * time.Second,
		StallTimeout:    5 * time.Second,
		SendTimeout:     3 * time.Second,
	}
}

func testWorkerConfig() WorkerConfig {
	return WorkerConfig{
		SendTimeout: 3 * time.Second,
		// Five fast dial attempts keep failure-path tests quick: a worker
		// whose coordinator is gone for good exhausts the ladder in ~150ms
		// instead of the production-scale wait.
		DialAttempts: 5,
		DialBackoff:  10 * time.Millisecond,
		ReadTimeout:  10 * time.Second,
	}
}

// cluster runs a coordinator plus workers over the given transport and
// returns the coordinator's results and each worker's error.
func cluster(t *testing.T, d Dialer, ln net.Listener, train *sparse.Matrix, cfg Config, wcfgs []WorkerConfig, wctxs []context.Context) (*Report, *model.Factors, error, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	errs := make([]error, len(wcfgs))
	var wg sync.WaitGroup
	for i := range wcfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wctx := ctx
			if wctxs != nil && wctxs[i] != nil {
				wctx = wctxs[i]
			}
			errs[i] = Work(wctx, d, ln.Addr().String(), train, wcfgs[i])
		}(i)
	}
	rep, f, err := Coordinate(ctx, ln, train, cfg)
	wg.Wait()
	return rep, f, err, errs
}

func TestCoordinateThreeWorkersMatchesSimulator(t *testing.T) {
	train, test := planted(60, 50, 3000, 1)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 20
	cfg := testConfig(3, epochs)
	cfg.Test = test
	rep, f, err, errs := cluster(t, pn, ln, train, cfg,
		[]WorkerConfig{testWorkerConfig(), testWorkerConfig(), testWorkerConfig()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if rep.Epochs != epochs {
		t.Fatalf("epochs = %d, want %d", rep.Epochs, epochs)
	}
	// Every rating is applied exactly once per epoch; nothing failed, so the
	// update count is exact.
	if want := int64(epochs) * int64(train.NNZ()); rep.TotalUpdates != want {
		t.Fatalf("TotalUpdates = %d, want %d", rep.TotalUpdates, want)
	}
	if len(rep.History) != epochs {
		t.Fatalf("history has %d points, want %d", len(rep.History), epochs)
	}
	if rep.BytesSent == 0 || rep.BytesRecv == 0 {
		t.Fatalf("wire byte counters empty: sent=%d recv=%d", rep.BytesSent, rep.BytesRecv)
	}
	if rep.WorkerFailures != 0 || rep.ColumnsReclaimed != 0 {
		t.Fatalf("unexpected failures: %d workers, %d columns", rep.WorkerFailures, rep.ColumnsReclaimed)
	}
	if rep.LiveWorkers != 3 {
		t.Fatalf("LiveWorkers = %d, want 3", rep.LiveWorkers)
	}
	distRMSE := model.RMSE(f, test)
	if distRMSE > 0.3 {
		t.Fatalf("distributed RMSE %v too high on planted rank-2 data", distRMSE)
	}

	// Same seed, same epoch accounting: the single-process simulator from
	// the same init must land at an equivalent RMSE (update order differs,
	// so equality is statistical, not bitwise).
	sim := model.NewFactors(train.Rows, train.Cols, cfg.K, rand.New(rand.NewSource(cfg.Seed)))
	for e := 0; e < epochs; e++ {
		if err := nomad.Train(train, sim, nomad.Params{
			K: cfg.K, LambdaP: cfg.LambdaP, LambdaQ: cfg.LambdaQ, Gamma: cfg.Gamma,
			Workers: 3, Rounds: 1, Seed: cfg.Seed + int64(e),
		}); err != nil {
			t.Fatal(err)
		}
	}
	simRMSE := model.RMSE(sim, test)
	if diff := distRMSE - simRMSE; diff > 0.02 || diff < -0.02 {
		t.Fatalf("distributed RMSE %v vs simulator RMSE %v: outside ±0.02", distRMSE, simRMSE)
	}
}

func TestCoordinateCheckpointAndMetrics(t *testing.T) {
	train, test := planted(40, 30, 1500, 2)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "model.hfac")
	cfg := testConfig(2, 4)
	cfg.Test = test
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 2
	cfg.Metrics = NewMetrics(reg, "coordinator")
	rep, f, err, errs := cluster(t, pn, ln, train, cfg,
		[]WorkerConfig{testWorkerConfig(), testWorkerConfig()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if rep.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2", rep.Checkpoints)
	}
	loaded, err := model.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.M != f.M || loaded.N != f.N || loaded.K != f.K {
		t.Fatalf("checkpoint shape %dx%dx%d, want %dx%dx%d", loaded.M, loaded.N, loaded.K, f.M, f.N, f.K)
	}
	// The final checkpoint is the final merged model.
	if lr, fr := model.RMSE(loaded, test), model.RMSE(f, test); lr != fr {
		t.Fatalf("checkpoint RMSE %v != returned factors RMSE %v", lr, fr)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, series := range []string{
		"hsgd_dist_columns_sent_total", "hsgd_dist_bytes_sent_total",
		"hsgd_dist_circulation_seconds", "hsgd_dist_epochs_total",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("/metricz output missing %s:\n%s", series, text)
		}
	}
	if cfg.Metrics.ColumnsSent.Value() == 0 {
		t.Fatal("hsgd_dist_columns_sent_total is zero after a full run")
	}
	if cfg.Metrics.Circulation.Count() == 0 {
		t.Fatal("circulation histogram empty after a full run")
	}
}

// TestWorkerHardKillMidEpoch: one of three workers dies abruptly (context
// cancelled → connection closed) partway through an epoch. The coordinator
// must reclaim its in-flight columns, re-shard its rows to the survivors,
// and still converge without hanging.
func TestWorkerHardKillMidEpoch(t *testing.T) {
	train, test := planted(60, 50, 3000, 3)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	victimCtx, kill := context.WithCancel(context.Background())
	defer kill()
	var visits int
	victim := testWorkerConfig()
	victim.onColumn = func(int32) {
		visits++
		if visits == 15 {
			kill() // die mid-epoch, columns in flight
		}
	}
	cfg := testConfig(3, 15)
	cfg.Test = test
	rep, f, err, errs := cluster(t, pn, ln, train, cfg,
		[]WorkerConfig{testWorkerConfig(), victim, testWorkerConfig()},
		[]context.Context{nil, victimCtx, nil})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("surviving workers errored: %v / %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], context.Canceled) {
		t.Fatalf("victim returned %v, want context.Canceled", errs[1])
	}
	if rep.WorkerFailures != 1 {
		t.Fatalf("WorkerFailures = %d, want 1", rep.WorkerFailures)
	}
	if rep.LiveWorkers != 2 {
		t.Fatalf("LiveWorkers = %d, want 2", rep.LiveWorkers)
	}
	if rep.Epochs != 15 {
		t.Fatalf("epochs = %d, want 15 (training must not stall on a death)", rep.Epochs)
	}
	if rmse := model.RMSE(f, test); rmse > 0.35 {
		t.Fatalf("RMSE %v too high after surviving a worker death", rmse)
	}
}

// TestWorkerStallDetection: a worker that keeps heartbeating but stops
// returning columns (hung, not dead) must be caught by the stall timeout
// and evicted so the epoch completes.
func TestWorkerStallDetection(t *testing.T) {
	train, test := planted(50, 40, 2000, 4)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	unblock := make(chan struct{})
	var visits int
	stalled := testWorkerConfig()
	stalled.onColumn = func(int32) {
		visits++
		if visits == 5 {
			<-unblock // hang with a column in flight; heartbeats keep flowing
		}
	}
	cfg := testConfig(3, 8)
	cfg.Test = test
	cfg.StallTimeout = 500 * time.Millisecond
	// Window 1 keeps the dispatcher from blocking on a send to the hung
	// worker, so the stall detector — not a send timeout — is what fires.
	cfg.Window = 1

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wcfgs := []WorkerConfig{testWorkerConfig(), testWorkerConfig(), stalled}
	errs := make([]error, len(wcfgs))
	var wg sync.WaitGroup
	for i := range wcfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Work(ctx, pn, ln.Addr().String(), train, wcfgs[i])
		}(i)
	}
	rep, f, err := Coordinate(ctx, ln, train, cfg)
	close(unblock) // release the hung worker so its goroutine can exit
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("healthy workers errored: %v / %v", errs[0], errs[1])
	}
	if rep.WorkerFailures != 1 {
		t.Fatalf("WorkerFailures = %d, want 1 (stall not detected)", rep.WorkerFailures)
	}
	if rep.ColumnsReclaimed == 0 {
		t.Fatal("no columns reclaimed from the stalled worker")
	}
	if rep.Epochs != 8 {
		t.Fatalf("epochs = %d, want 8", rep.Epochs)
	}
	if rmse := model.RMSE(f, test); rmse > 0.4 {
		t.Fatalf("RMSE %v too high after evicting a stalled worker", rmse)
	}
}

// TestCoordinateCancellation: cancelling the run returns promptly with a
// partial Interrupted report, usable factors, and the context error.
func TestCoordinateCancellation(t *testing.T) {
	train, test := planted(50, 40, 2000, 5)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	cfg := testConfig(2, 1_000_000)
	cfg.Test = test
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Work(context.Background(), pn, "coord", train, testWorkerConfig())
		}(i)
	}
	start := time.Now()
	rep, f, err := Coordinate(ctx, ln, train, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 15*time.Second {
		t.Fatalf("cancellation took %v", took)
	}
	if rep == nil || !rep.Interrupted {
		t.Fatalf("report %+v, want Interrupted", rep)
	}
	if f == nil {
		t.Fatal("no factors returned on interrupt")
	}
	wg.Wait() // workers see Done (or a closed link) and exit
	_ = errs
}

func TestCoordinateOverTCP(t *testing.T) {
	train, test := planted(40, 30, 1500, 6)
	ln, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, 3)
	cfg.Test = test
	rep, f, err, errs := cluster(t, TCP{}, ln, train, cfg,
		[]WorkerConfig{testWorkerConfig(), testWorkerConfig()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if rep.Epochs != 3 || f == nil {
		t.Fatalf("TCP run: epochs=%d factors=%v", rep.Epochs, f != nil)
	}
}

// --- wire format ---

func TestWireRoundTrips(t *testing.T) {
	a := assign{
		Epoch: 3, K: 2, Epochs: 9, LambdaP: 0.01, LambdaQ: 0.02, Gamma: 0.05,
		RowLo: 4, RowHi: 7, P: []float32{1, 2, 3, 4, 5, 6},
	}
	gotA, err := decodeAssign(a.encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotA.RowLo != 4 || gotA.RowHi != 7 || gotA.K != 2 || len(gotA.P) != 6 || gotA.P[5] != 6 {
		t.Fatalf("assign round trip: %+v", gotA)
	}

	d := colDone{Epoch: 1, Col: 42, NRatings: 17, Nanos: 123456789, Q: []float32{0.5, -0.5}}
	gotD, err := decodeColDone(d.encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotD.Col != 42 || gotD.NRatings != 17 || gotD.Nanos != 123456789 || gotD.Q[1] != -0.5 {
		t.Fatalf("coldone round trip: %+v", gotD)
	}

	p := pSync{Epoch: 2, RowLo: 10, RowHi: 12, P: []float32{9, 8, 7, 6}}
	gotP, err := decodePSync(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotP.RowLo != 10 || len(gotP.P) != 4 {
		t.Fatalf("psync round trip: %+v", gotP)
	}

	ct := colTask{Epoch: 5, Col: 7, Q: []float32{1.5}}
	gotT, err := decodeColTask(ct.encode())
	if err != nil || gotT.Col != 7 || gotT.Q[0] != 1.5 {
		t.Fatalf("coltask round trip: %+v err=%v", gotT, err)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	// Truncated payloads must error, not panic or return garbage.
	full := colDone{Epoch: 1, Col: 2, NRatings: 3, Nanos: 4, Q: []float32{1, 2, 3}}.encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeColDone(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing bytes must be rejected (a framing bug, not forward compat).
	if _, err := decodeHello(append(hello{Version: 1}.encode(), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A slice length prefix larger than the payload must not allocate.
	bad := appendU32(appendU32(appendU32(nil, 1), 2), 1<<30)
	if _, err := decodeColTask(bad); err == nil {
		t.Fatal("oversized slice prefix accepted")
	}
	// Assign with an inconsistent P length must be rejected.
	a := assign{K: 4, RowLo: 0, RowHi: 2, P: []float32{1, 2, 3}} // want 8
	if _, err := decodeAssign(a.encode()); err == nil {
		t.Fatal("assign with wrong P length accepted")
	}
}

func TestFrameRoundTripAndLimits(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		writeFrame(client, mColTask, []byte{1, 2, 3}, time.Second, 0, nil)
	}()
	typ, payload, n, err := readFrame(server, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if typ != mColTask || len(payload) != 3 || n != frameHeader+3 {
		t.Fatalf("frame round trip: type=%v len=%d n=%d", typ, len(payload), n)
	}

	// A frame over the cap is refused before touching the wire.
	if _, err := writeFrame(client, mColTask, make([]byte, maxFrameBytes), time.Second, 0, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}

	// A reader facing silence times out rather than blocking forever.
	if _, _, _, err := readFrame(server, 50*time.Millisecond); err == nil {
		t.Fatal("read with no data did not time out")
	}
}

// --- transport ---

func TestPipeNet(t *testing.T) {
	pn := NewPipeNet()
	ln, err := pn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pn.Listen("a"); err == nil {
		t.Fatal("double bind accepted")
	}
	if _, err := pn.DialContext(context.Background(), "missing"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = writeFrame(conn, mHeartbeat, nil, time.Second, 0, nil)
		done <- err
	}()
	conn, err := pn.DialContext(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	typ, _, _, err := readFrame(conn, time.Second)
	if err != nil || typ != mHeartbeat {
		t.Fatalf("pipe frame: type=%v err=%v", typ, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if _, err := pn.DialContext(context.Background(), "a"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestDialRetryWaitsForListener(t *testing.T) {
	pn := NewPipeNet()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ln, err := pn.Listen("late")
		if err != nil {
			return
		}
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	conn, err := dialRetry(context.Background(), pn, "late", 30, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("dialRetry did not survive a late listener: %v", err)
	}
	conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dialRetry(ctx, pn, "never", 100, 10*time.Millisecond); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled dialRetry returned %v", err)
	}
}

// --- routing ---

func TestPartitionRows(t *testing.T) {
	// Equal (unmeasured) weights split evenly.
	b := PartitionRows(10, make([]float64, 3))
	if b[0] != 0 || b[3] != 10 {
		t.Fatalf("bounds %v do not cover [0,10)", b)
	}
	for i := 0; i < 3; i++ {
		if size := b[i+1] - b[i]; size < 3 || size > 4 {
			t.Fatalf("equal split gave partition %d size %d: %v", i, size, b)
		}
	}
	// A 3:1 throughput ratio gives a 3:1 row split.
	b = PartitionRows(100, []float64{3, 1})
	if b[1] != 75 {
		t.Fatalf("3:1 weights split at %d, want 75", b[1])
	}
	// Broken measurements (zero, NaN) fall back to the mean share.
	b = PartitionRows(90, []float64{1, 0, 1})
	for i := 0; i < 3; i++ {
		if size := b[i+1] - b[i]; size != 30 {
			t.Fatalf("mean-fallback split gave %v", b)
		}
	}
	// Boundaries are monotone and total even under extreme skew.
	b = PartitionRows(7, []float64{1e9, 1e-9, 1e-9})
	last := 0
	for _, x := range b[1:] {
		if x < last || x > 7 {
			t.Fatalf("non-monotone bounds %v", b)
		}
		last = x
	}
	if b[3] != 7 {
		t.Fatalf("bounds %v do not end at 7", b)
	}
}

func TestImbalance(t *testing.T) {
	if got := imbalance([]float64{2, 2, 2}); got != 1 {
		t.Fatalf("balanced imbalance = %v", got)
	}
	if got := imbalance([]float64{4, 1}); got != 4 {
		t.Fatalf("4:1 imbalance = %v", got)
	}
	if got := imbalance([]float64{0, 5}); got != 1 {
		t.Fatalf("single measurement imbalance = %v", got)
	}
}

package dist

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// WorkerStatus is one slot's row in the federated cluster view. The
// coordinator builds it from its own routing state plus the metric
// snapshot each worker piggybacks on its heartbeats, so /clusterz shows
// worker-side truth (columns processed, kernel seconds) without a second
// scrape fan-out.
type WorkerStatus struct {
	Slot       int  `json:"slot"`
	Alive      bool `json:"alive"`
	Generation int  `json:"generation"` // bumps on every re-admission

	RowLo    int `json:"row_lo"`
	RowHi    int `json:"row_hi"`
	InFlight int `json:"in_flight_cols"`

	// ThroughputRPS is the fitted routing throughput (ratings/s); 0 until
	// the cost model has enough samples.
	ThroughputRPS float64 `json:"throughput_rps"`

	// Heartbeat-carried worker-side session totals.
	ColsDone       uint64  `json:"cols_done"`
	RatingsApplied uint64  `json:"ratings_applied"`
	KernelSeconds  float64 `json:"kernel_seconds"`

	// Coordinator-measured circulation latency quantiles for hops routed to
	// this slot (dispatch → ColDone), milliseconds.
	CircP50Milli float64 `json:"circulation_p50_ms"`
	CircP99Milli float64 `json:"circulation_p99_ms"`

	// LastSeenMilli is how long ago the slot's last frame arrived; -1 for a
	// dead slot.
	LastSeenMilli float64 `json:"last_seen_ms"`
}

// ClusterStatus is the coordinator's aggregated cluster snapshot served on
// /clusterz.
type ClusterStatus struct {
	RunID       uint64 `json:"run_id"`
	Epoch       int    `json:"epoch"` // completed epochs
	TotalEpochs int    `json:"total_epochs"`
	Syncing     bool   `json:"syncing"`
	ColsLeft    int    `json:"cols_left"`

	LiveWorkers      int   `json:"live_workers"`
	TotalUpdates     int64 `json:"total_updates"`
	WorkerFailures   int   `json:"worker_failures"`
	WorkerRejoins    int   `json:"worker_rejoins"`
	ColumnsReclaimed int64 `json:"columns_reclaimed"`

	Workers []WorkerStatus `json:"workers"`
}

// StatusBoard publishes ClusterStatus snapshots from the coordinator's main
// loop to HTTP readers with one atomic pointer swap — the debug listener
// never touches coordinator state.
type StatusBoard struct {
	cur atomic.Pointer[ClusterStatus]
}

// NewStatusBoard returns an empty board.
func NewStatusBoard() *StatusBoard { return &StatusBoard{} }

// Publish replaces the current snapshot. Nil-safe on both sides — a nil
// board ignores publishes, and a nil snapshot is dropped rather than
// regressing /clusterz to 503 mid-run.
func (b *StatusBoard) Publish(s *ClusterStatus) {
	if b == nil || s == nil {
		return
	}
	b.cur.Store(s)
}

// Current returns the latest snapshot, nil before the first publish.
func (b *StatusBoard) Current() *ClusterStatus {
	if b == nil {
		return nil
	}
	return b.cur.Load()
}

// Handler serves the latest snapshot as JSON — the /clusterz endpoint.
func (b *StatusBoard) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := b.Current()
		if s == nil {
			http.Error(w, "no cluster snapshot yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}

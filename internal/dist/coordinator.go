package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"hsgd/internal/cost"
	"hsgd/internal/model"
	"hsgd/internal/obs"
	olog "hsgd/internal/obs/log"
	"hsgd/internal/progress"
	"hsgd/internal/sparse"
)

// maxWorkers bounds the worker count so per-column visit sets fit in one
// uint64 bitmask. Far above any sane deployment of this protocol — the
// coordinator routes every column hop, so fan-in saturates long before 64
// nodes.
const maxWorkers = 64

// Config tunes a coordinated distributed run.
type Config struct {
	// K, LambdaP/LambdaQ, Gamma, Epochs are the SGD hyperparameters; the
	// learning rate is fixed per run (the paper's setting).
	K                int
	LambdaP, LambdaQ float32
	Gamma            float32
	Epochs           int
	Seed             int64

	// Workers is how many worker connections to wait for before training
	// starts. Must be in [1, 64].
	Workers int

	// Test, when non-nil, is evaluated at every epoch boundary on the
	// merged factors for the report history and progress events.
	Test *sparse.Matrix

	// Init warm-starts from existing factors; nil initialises fresh from
	// Seed (identical to the single-process nomad trainer's init, so
	// same-seed runs start from the same model).
	Init *model.Factors

	// CheckpointPath, when set, makes the coordinator merge per-worker
	// partitions and write an atomic model snapshot every CheckpointEvery
	// epochs (default 1) — the format hsgd-serve's watcher hot-swaps.
	CheckpointPath  string
	CheckpointEvery int

	// Progress receives one epoch event per boundary plus checkpoint and
	// final events, exactly like the in-process trainers.
	Progress progress.Func

	// Metrics receives the node's hsgd_dist_* series; nil disables export.
	Metrics *Metrics

	// Trace, when non-nil, records the configured epoch as a cluster-wide
	// Chrome trace: every column hop on every worker (with worker-side
	// recv/kernel/reply phases), deaths, rejoins, and the coordinator's
	// barrier/eval/checkpoint track. Owned by the coordinator main loop
	// during the run; read it after Coordinate returns.
	Trace *ClusterTrace

	// Status, when non-nil, receives periodic ClusterStatus snapshots — the
	// federation feed behind the debug listener's /clusterz endpoint.
	Status *StatusBoard

	// Log receives structured coordinator logs; every record carries the
	// run id. Nil disables logging (all call sites are nil-safe).
	Log *olog.Logger

	// Window is the maximum in-flight columns per worker (default 8):
	// enough pipelining to hide one round trip, small enough that a dead
	// worker forfeits little work.
	Window int

	// SendTimeout bounds each outbound frame write (default 10s);
	// SendRetries is the transient-timeout retry budget (default 3).
	SendTimeout time.Duration
	SendRetries int

	// HeartbeatEvery is the idle-heartbeat cadence pushed to workers
	// (default 500ms). LivenessTimeout is how long a worker may stay
	// completely silent before it is declared dead (default 5s).
	// StallTimeout declares a worker dead when it holds in-flight columns
	// but has returned none for this long (default 30s) — the hung-but-
	// heartbeating case.
	HeartbeatEvery  time.Duration
	LivenessTimeout time.Duration
	StallTimeout    time.Duration

	// NoRepartition disables throughput-proportional row re-sharding at
	// epoch boundaries. The live set shrinking still forces a re-shard —
	// a dead worker's rows must find a new owner either way.
	NoRepartition bool

	// RunID names the run in the handshake; 0 (the default) generates a
	// fresh id. A resumed coordinator passes the manifest's RunID so
	// rejoining workers of the previous incarnation are recognised as
	// members rather than strangers.
	RunID uint64

	// StartEpoch resumes a run with StartEpoch epochs already completed:
	// training covers [StartEpoch, Epochs) on top of Init (the restored
	// checkpoint). Partial-epoch work after that checkpoint is discarded by
	// design — the durably merged epoch is the exactly-once unit.
	StartEpoch int

	// ResumeBounds restores the manifest's row split when it describes
	// exactly Workers partitions covering every row; otherwise the initial
	// split is even, as for a fresh run. Only placement is affected — the
	// factor values come from Init either way.
	ResumeBounds []int

	// RejoinWindow is how long the coordinator tolerates zero live workers
	// before aborting the run, giving crashed or partitioned workers time
	// to re-dial and rejoin (default 4× LivenessTimeout).
	RejoinWindow time.Duration

	// crash, when non-nil, makes the coordinator drop dead the moment the
	// channel closes: no Done frames, no checkpoint, links and listener
	// simply closed. Test-only (unexported) — the SIGKILL the fault
	// tolerance story has to survive, injectable without a subprocess.
	crash chan struct{}
}

func (c *Config) fill() error {
	if c.K <= 0 || c.Epochs <= 0 {
		return fmt.Errorf("dist: invalid params (k=%d epochs=%d)", c.K, c.Epochs)
	}
	if c.Workers < 1 || c.Workers > maxWorkers {
		return fmt.Errorf("dist: workers must be in [1,%d], got %d", maxWorkers, c.Workers)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 10 * time.Second
	}
	if c.SendRetries <= 0 {
		c.SendRetries = 3
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.LivenessTimeout <= 0 {
		c.LivenessTimeout = 5 * time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.RejoinWindow <= 0 {
		c.RejoinWindow = 4 * c.LivenessTimeout
	}
	if c.StartEpoch < 0 || c.StartEpoch >= c.Epochs {
		if c.StartEpoch != 0 {
			return fmt.Errorf("dist: start epoch %d outside [0,%d)", c.StartEpoch, c.Epochs)
		}
	}
	if c.RunID == 0 {
		r := rand.New(rand.NewSource(time.Now().UnixNano()))
		for c.RunID == 0 {
			c.RunID = r.Uint64()
		}
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(nil, "coordinator")
	}
	return nil
}

// EvalPoint is one (wall-clock seconds, epoch, RMSE) measurement.
type EvalPoint struct {
	Time  float64 `json:"time"`
	Epoch int     `json:"epoch"`
	RMSE  float64 `json:"rmse"`
}

// Report summarises a coordinated run.
type Report struct {
	Epochs       int
	Seconds      float64
	FinalRMSE    float64
	History      []EvalPoint
	TotalUpdates int64 // ratings applied across all workers
	Checkpoints  int
	Interrupted  bool

	// BytesSent/BytesRecv are the coordinator's wire totals; dividing by
	// Epochs gives the per-epoch transfer volume the bench reports.
	BytesSent, BytesRecv int64
	// ColumnsReclaimed counts column hops re-circulated after worker
	// failures; WorkerFailures counts workers declared dead.
	ColumnsReclaimed int64
	WorkerFailures   int
	// LiveWorkers is the surviving worker count at the end of the run.
	LiveWorkers int
	// Resumed marks a run restarted from a manifest; WorkerRejoins counts
	// workers re-admitted after their link broke.
	Resumed       bool
	WorkerRejoins int
}

// ErrCrashed is returned by an injected coordinator crash (test-only).
var ErrCrashed = errors.New("dist: coordinator crashed (injected fault)")

// event is one message from a worker reader goroutine to the main loop.
type event struct {
	worker int
	gen    int // incarnation the reader belongs to; stale ones are dropped
	t      msgType
	b      []byte
	err    error // non-nil: the link broke (read error or liveness timeout)
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	id    int
	gen   int // bumped on every (re)admission into this slot
	link  *link
	alive bool

	lo, hi   int     // current row partition [lo,hi)
	colCount []int32 // ratings per column inside the partition

	inFlight      map[int32]time.Time // column → dispatch time
	inFlightSpan  map[int32]uint64    // column → hop span id (traced epoch only)
	queuedRatings int64
	lastReturn    time.Time // last ColDone (stall detection)
	lastSeen      time.Time // last frame of any kind (for /clusterz)

	// circ accumulates this slot's hop latencies (dispatch → ColDone) so
	// /clusterz can show per-worker circulation quantiles next to the
	// registry's cluster-wide histogram.
	circ *obs.Histogram
	// hb is the latest heartbeat-carried worker-side metric snapshot.
	hb hbStat

	samples *cost.OnlineSamples
	// tput is the fitted throughput (ratings/s) used for routing and the
	// α-split re-shard; 0 until enough samples exist.
	tput float64
}

func (w *workerState) bit() uint64 { return 1 << uint(w.id) }

// eta estimates seconds until this worker would finish its queue plus one
// more visit of n ratings — the routing objective. A worker without a
// fitted throughput borrows fallback (its measured peers' mean rate) so
// both sides of every comparison are in seconds; only while no worker is
// measured does the raw rating count stand in, which is then a consistent
// constant-rate assumption across all candidates.
func (w *workerState) eta(n int32, fallback float64) float64 {
	load := float64(w.queuedRatings + int64(n) + 1)
	tput := w.tput
	if tput <= 0 {
		tput = fallback
	}
	if tput > 0 {
		return load / tput
	}
	return load
}

// Coordinate runs the coordinator role: accept cfg.Workers connections on
// ln, partition rows, circulate columns, account epochs, and merge the
// final factors. Returns the merged model together with the run report;
// like the in-process trainers, a cancelled run returns the best-so-far
// factors, a partial report flagged Interrupted, and the context error.
func Coordinate(ctx context.Context, ln net.Listener, train *sparse.Matrix, cfg Config) (*Report, *model.Factors, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	if train.NNZ() == 0 {
		return nil, nil, sparse.ErrEmpty
	}
	c := &coordinator{
		cfg:   &cfg,
		train: train,
		rep:   &Report{Epochs: cfg.StartEpoch, Resumed: cfg.StartEpoch > 0},
		start: time.Now(),
		epoch: cfg.StartEpoch,
		ct:    ctrace{trc: cfg.Trace},
		log:   cfg.Log.With("run", fmt.Sprintf("%016x", cfg.RunID)),
	}
	if cfg.Init != nil {
		if cfg.Init.M != train.Rows || cfg.Init.N != train.Cols || cfg.Init.K != cfg.K {
			return nil, nil, fmt.Errorf("dist: init factors %dx%dx%d do not match %dx%d k=%d",
				cfg.Init.M, cfg.Init.N, cfg.Init.K, train.Rows, train.Cols, cfg.K)
		}
		c.f = cfg.Init.Clone()
	} else {
		c.f = model.NewFactors(train.Rows, train.Cols, cfg.K, rand.New(rand.NewSource(cfg.Seed)))
	}
	return c.run(ctx, ln)
}

type coordinator struct {
	cfg   *Config
	train *sparse.Matrix
	f     *model.Factors // authoritative merged model (P stale intra-epoch)
	rep   *Report
	start time.Time

	workers  []*workerState
	events   chan event
	joins    chan joinConn // greeted late connections awaiting re-admission
	done     chan struct{} // closed by finish; unblocks reader goroutines
	finished bool          // finish already broadcast (main loop only)
	live     uint64        // bitmask of alive workers
	// zeroSince is when the live set last hit zero; the run aborts only
	// after RejoinWindow passes with no worker coming back.
	zeroSince time.Time

	epoch    int // 0-based current epoch
	needs    []uint64
	holder   []int32 // worker currently visiting the column, -1 if parked
	pending  []int32 // columns awaiting dispatch
	colsLeft int     // columns not yet finished this epoch

	syncing  bool
	awaiting uint64 // workers owing a PSync
	stopping bool   // interrupt in progress: no new epochs

	ct  ctrace       // cluster-trace recording state (main loop only)
	log *olog.Logger // run-id-bound structured logger (nil-safe)
	// statusAt throttles StatusBoard publishes (main loop only).
	statusAt time.Time
}

func (c *coordinator) run(ctx context.Context, ln net.Listener) (*Report, *model.Factors, error) {
	c.events = make(chan event, 4*c.cfg.Workers*c.cfg.Window)
	c.joins = make(chan joinConn, maxWorkers)
	c.done = make(chan struct{})
	// One watcher owns closing the listener: ctx firing cancels the accept
	// phase; finish (or an injected crash) closing c.done ends admission.
	go func() {
		select {
		case <-ctx.Done():
		case <-c.done:
		}
		ln.Close()
	}()
	if err := c.accept(ctx, ln); err != nil {
		c.finished = true
		close(c.done)
		return nil, nil, wrapCtx(ctx, err)
	}
	// Admission stays open for the rest of the run: a worker whose link
	// broke re-dials and is re-admitted into its old slot by the main loop.
	go c.admit(ln)
	for _, w := range c.workers {
		go c.reader(w.id, w.gen, w.link)
	}
	c.startEpoch()

	stall := time.NewTicker(c.cfg.StallTimeout / 4)
	defer stall.Stop()
	for {
		select {
		case <-ctx.Done():
			return c.interrupt(ctx)
		case <-c.cfg.crash: // nil in production: never fires
			return c.crashNow()
		case <-stall.C:
			c.checkStalls()
		case j := <-c.joins:
			c.handleJoin(j)
		case ev := <-c.events:
			c.handle(ev)
		}
		c.publishStatus(false)
		// A kill may have reclaimed columns into pending with no further
		// ColDone coming to trigger their re-dispatch; drain here.
		if !c.syncing && len(c.pending) > 0 {
			c.drainPending()
		}
		if c.rep.Epochs >= c.cfg.Epochs {
			return c.finish(nil)
		}
		if c.live == 0 && time.Since(c.zeroSince) > c.cfg.RejoinWindow {
			_, _, _ = c.finish(nil) // best-effort close of surviving links
			return nil, nil, fmt.Errorf("dist: all %d workers died and none rejoined within %v (%d reclaimed column hops)",
				len(c.workers), c.cfg.RejoinWindow, c.rep.ColumnsReclaimed)
		}
	}
}

// crashNow is the injected-fault teardown: everything dropped on the floor,
// exactly as a killed process would leave it. Workers find out the way they
// would in production — a broken pipe, then dial retries.
func (c *coordinator) crashNow() (*Report, *model.Factors, error) {
	c.finished = true
	close(c.done) // the watcher closes the listener
	for _, w := range c.workers {
		if w.alive {
			w.link.close()
		}
	}
	return nil, nil, ErrCrashed
}

// accept waits for the configured number of workers and completes the
// handshake (Hello → Welcome → initial Assign) with each. A resumed run's
// workers may arrive carrying the previous incarnation's run id; they are
// admitted like fresh joiners — the Assign fully replaces their state.
func (c *coordinator) accept(ctx context.Context, ln net.Listener) error {
	bounds := c.initialBounds()
	for id := 0; id < c.cfg.Workers; {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: accepting worker %d/%d: %w", id, c.cfg.Workers, err)
		}
		l := &link{c: conn, m: c.cfg.Metrics, sendTimeout: c.cfg.SendTimeout, retries: c.cfg.SendRetries, done: c.done}
		t, payload, err := l.recv(c.cfg.LivenessTimeout)
		if err != nil {
			return fmt.Errorf("dist: worker %d handshake: %w", id, err)
		}
		if t != mHello {
			return fmt.Errorf("dist: worker %d opened with %s, want hello", id, t)
		}
		h, err := decodeHello(payload)
		if err != nil {
			return err
		}
		if h.Version != protocolVersion {
			return fmt.Errorf("dist: worker %d speaks protocol %d, coordinator %d", id, h.Version, protocolVersion)
		}
		if h.RunID != 0 && h.RunID != c.cfg.RunID {
			l.close() // a straggler from some other run; keep waiting
			continue
		}
		if err := l.send(mWelcome, welcome{
			ID:             uint32(id),
			HeartbeatMilli: uint32(c.cfg.HeartbeatEvery.Milliseconds()),
			RunID:          c.cfg.RunID,
		}.encode()); err != nil {
			return err
		}
		w := &workerState{
			id: id, link: l, alive: true,
			inFlight:     make(map[int32]time.Time),
			inFlightSpan: make(map[int32]uint64),
			lastSeen:     time.Now(),
			circ:         obs.NewHistogram(nil),
			samples:      cost.NewOnlineSamples(),
		}
		c.workers = append(c.workers, w)
		c.live |= w.bit()
		c.log.Info("worker joined", "slot", fmt.Sprint(id), "addr", conn.RemoteAddr().String())
		if err := c.assignRows(w, bounds[id], bounds[id+1]); err != nil {
			return err
		}
		id++
	}
	c.cfg.Metrics.WorkersLive.Set(float64(len(c.workers)))
	return nil
}

// initialBounds is the starting row split: the manifest's partition when a
// resume restored one of matching shape, an even split otherwise.
func (c *coordinator) initialBounds() []int {
	b := c.cfg.ResumeBounds
	if len(b) == c.cfg.Workers+1 && b[0] == 0 && b[len(b)-1] == c.train.Rows {
		ok := true
		for i := 1; i < len(b); i++ {
			ok = ok && b[i] >= b[i-1]
		}
		if ok {
			return b
		}
	}
	return PartitionRows(c.train.Rows, make([]float64, c.cfg.Workers))
}

// joinConn is a late connection that already passed the hello exchange in
// the admission goroutine and awaits a slot decision on the main loop.
type joinConn struct {
	conn net.Conn
	h    hello
}

// admit accepts connections for the rest of the run — workers re-dialing
// after a link break, or a previous incarnation's workers reaching a
// restarted coordinator. The blocking hello read happens out here so a slow
// (or silent) joiner cannot stall training; everything stateful happens in
// handleJoin on the main goroutine.
func (c *coordinator) admit(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: run over or cancelled
		}
		go func(conn net.Conn) {
			t, payload, n, err := readFrame(conn, c.cfg.LivenessTimeout)
			if err != nil || t != mHello {
				conn.Close()
				return
			}
			c.cfg.Metrics.BytesRecv.Add(int64(n))
			h, err := decodeHello(payload)
			if err != nil || h.Version != protocolVersion {
				conn.Close()
				return
			}
			select {
			case c.joins <- joinConn{conn: conn, h: h}:
			case <-c.done:
				conn.Close()
			}
		}(conn)
	}
}

// handleJoin re-admits a worker into a dead slot. The rejoiner gets an
// empty row range first: mid-epoch, the column visit sets were seeded from
// the live set at epoch start, and admitting new ratings mid-flight would
// break the exactly-once accounting. The next epoch boundary re-shards (an
// empty live range forces it) and the worker earns real rows again.
func (c *coordinator) handleJoin(j joinConn) {
	if (j.h.RunID != 0 && j.h.RunID != c.cfg.RunID) || c.stopping {
		j.conn.Close() // stranger from another run, or winding down
		return
	}
	var w *workerState
	if id := j.h.PrevID; id != noPrevID && int(id) < len(c.workers) && !c.workers[id].alive {
		w = c.workers[id] // the slot it held is free again: same worker
	} else {
		for _, cand := range c.workers {
			if !cand.alive {
				w = cand
				break
			}
		}
	}
	if w == nil {
		j.conn.Close() // no dead slot to fill
		return
	}
	l := &link{c: j.conn, m: c.cfg.Metrics, sendTimeout: c.cfg.SendTimeout, retries: c.cfg.SendRetries, done: c.done}
	if err := l.send(mWelcome, welcome{
		ID:             uint32(w.id),
		HeartbeatMilli: uint32(c.cfg.HeartbeatEvery.Milliseconds()),
		RunID:          c.cfg.RunID,
	}.encode()); err != nil {
		l.close()
		return
	}
	w.gen++
	w.link = l
	w.alive = true
	w.inFlight = make(map[int32]time.Time)
	w.inFlightSpan = make(map[int32]uint64)
	w.queuedRatings = 0
	w.lastReturn = time.Now()
	w.lastSeen = w.lastReturn
	c.live |= w.bit()
	c.zeroSince = time.Time{}
	c.rep.WorkerRejoins++
	c.cfg.Metrics.Rejoins.Inc()
	c.cfg.Metrics.WorkersLive.Set(float64(popcount(c.live)))
	c.log.Info("worker rejoined", "slot", fmt.Sprint(w.id), "gen", fmt.Sprint(w.gen))
	if c.ct.started() {
		c.ct.instant(workerTrack(w.id), "rejoin", obs.Labels{"gen": fmt.Sprint(w.gen)})
	}
	if err := c.assignRows(w, 0, 0); err != nil {
		c.kill(w, fmt.Sprintf("rejoin assign: %v", err))
		return
	}
	go c.reader(w.id, w.gen, w.link)

	// If every worker died at an awkward moment the run is parked with no
	// epoch in progress; this join is what restarts the machinery.
	if c.syncing && c.awaiting == 0 {
		c.endEpoch() // the sync barrier had stalled with zero live workers
	} else if !c.syncing && c.colsLeft == 0 && c.epoch < c.cfg.Epochs {
		c.reshard()
		c.startEpoch()
	}
}

// assignRows sends worker w the partition [lo,hi) with its current P rows
// and rebuilds the coordinator's per-column rating counts for the range.
func (c *coordinator) assignRows(w *workerState, lo, hi int) error {
	w.lo, w.hi = lo, hi
	w.colCount = make([]int32, c.train.Cols)
	for _, r := range c.train.Ratings {
		if int(r.Row) >= lo && int(r.Row) < hi {
			w.colCount[r.Col]++
		}
	}
	msg := assign{
		Epoch: uint32(c.epoch), K: uint32(c.cfg.K), Epochs: uint32(c.cfg.Epochs),
		LambdaP: c.cfg.LambdaP, LambdaQ: c.cfg.LambdaQ, Gamma: c.cfg.Gamma,
		RowLo: uint32(lo), RowHi: uint32(hi),
		P: c.f.P[lo*c.cfg.K : hi*c.cfg.K],
	}
	return w.link.send(mAssign, msg.encode())
}

// reader pumps one worker incarnation's frames into the main loop. The
// per-read deadline is the liveness window: heartbeats arrive well inside
// it, so a timeout means the worker is silent-dead even if TCP has not
// noticed. The link is passed in, not read from the slot — the main loop
// swaps w.link on rejoin, and each reader must stay bound to its own
// generation's connection.
func (c *coordinator) reader(id, gen int, l *link) {
	for {
		t, payload, err := l.recv(c.cfg.LivenessTimeout)
		if err != nil {
			c.deliver(event{worker: id, gen: gen, err: err})
			return
		}
		if t == mDone {
			return // echo of session teardown; nothing to deliver
		}
		if !c.deliver(event{worker: id, gen: gen, t: t, b: payload}) {
			return
		}
	}
}

// deliver hands one event to the main loop, giving up when the run is over
// (finish closed c.done) so readers never block on a drained channel.
func (c *coordinator) deliver(ev event) bool {
	select {
	case c.events <- ev:
		return true
	case <-c.done:
		return false
	}
}

func (c *coordinator) handle(ev event) {
	w := c.workers[ev.worker]
	if !w.alive || ev.gen != w.gen {
		return // late frames from a dead or superseded incarnation
	}
	if ev.err != nil {
		c.kill(w, fmt.Sprintf("link error: %v", ev.err))
		return
	}
	w.lastSeen = time.Now()
	switch ev.t {
	case mHeartbeat:
		// Receipt already refreshed the read deadline; the payload carries
		// the worker's metric snapshot plus any spans that had no ColDone
		// frame to ride (psync phases, mostly).
		hb, err := decodeHBStat(ev.b)
		if err != nil {
			c.kill(w, fmt.Sprintf("bad heartbeat: %v", err))
			return
		}
		if hb.Cols > 0 || hb.Ratings > 0 {
			w.hb = hb
		}
		c.ct.heartbeatSpans(w.id, w.lastSeen, hb.Spans)
	case mColDone:
		d, err := decodeColDone(ev.b)
		if err != nil {
			c.kill(w, fmt.Sprintf("bad coldone: %v", err))
			return
		}
		c.onColDone(w, d)
	case mPSync:
		p, err := decodePSync(ev.b)
		if err != nil {
			c.kill(w, fmt.Sprintf("bad psync: %v", err))
			return
		}
		c.onPSync(w, p)
	default:
		c.kill(w, fmt.Sprintf("unexpected %s frame", ev.t))
	}
}

// --- column circulation ---

// startEpoch seeds every column with the set of live workers holding
// ratings for it and dispatches the initial wave.
func (c *coordinator) startEpoch() {
	if c.ct.arm(c.epoch + 1) {
		c.log.Info("tracing epoch", "epoch", fmt.Sprint(c.epoch+1),
			"trace", fmt.Sprintf("%016x", c.ct.trc.TraceID()))
	}
	c.log.Debug("epoch started", "epoch", fmt.Sprint(c.epoch+1), "live", fmt.Sprint(popcount(c.live)))
	cols := c.train.Cols
	if c.needs == nil {
		c.needs = make([]uint64, cols)
		c.holder = make([]int32, cols)
	}
	c.colsLeft = 0
	c.pending = c.pending[:0]
	for v := 0; v < cols; v++ {
		var mask uint64
		for _, w := range c.workers {
			if w.alive && w.colCount[v] > 0 {
				mask |= w.bit()
			}
		}
		c.needs[v] = mask
		c.holder[v] = -1
		if mask != 0 {
			c.colsLeft++
			c.pending = append(c.pending, int32(v))
		}
	}
	c.drainPending()
}

// dispatch routes column v to the live unvisited worker with the lowest
// cost-model ETA, if any has window capacity. Reports whether the column
// left the pending state.
func (c *coordinator) dispatch(v int32) bool {
	fallback := c.meanThroughput()
	var best *workerState
	var bestETA float64
	for _, w := range c.workers {
		if !w.alive || c.needs[v]&w.bit() == 0 || len(w.inFlight) >= c.cfg.Window {
			continue
		}
		if eta := w.eta(w.colCount[v], fallback); best == nil || eta < bestETA {
			best, bestETA = w, eta
		}
	}
	if best == nil {
		return false
	}
	task := colTask{Epoch: uint32(c.epoch), Col: uint32(v), Q: c.f.Colvec(v)}
	if c.ct.active() {
		// The hop span id travels with the task; the worker parents its
		// recv/kernel/reply phases under it and ships them back on ColDone.
		task.TraceID = c.ct.trc.TraceID()
		task.SpanID = obs.NewSpanID()
	}
	if err := best.link.send(mColTask, task.encode()); err != nil {
		c.kill(best, fmt.Sprintf("send error: %v", err))
		return c.dispatch(v) // try the remaining workers
	}
	if task.SpanID != 0 {
		best.inFlightSpan[v] = task.SpanID
	}
	c.cfg.Metrics.ColumnsSent.Inc()
	best.inFlight[v] = time.Now()
	best.queuedRatings += int64(best.colCount[v])
	c.holder[v] = int32(best.id)
	return true
}

// meanThroughput is the mean fitted rate (ratings/s) across measured live
// workers — the ETA fallback for workers not yet measured. Zero while no
// worker has a fit.
func (c *coordinator) meanThroughput() float64 {
	var sum float64
	var n int
	for _, w := range c.workers {
		if w.alive && w.tput > 0 {
			sum += w.tput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// drainPending re-attempts dispatch of parked columns until every worker's
// window is full or the list is empty. It owns c.pending for the duration:
// a dispatch failure can kill a worker, whose reclaimed columns land in
// c.pending mid-loop — those are folded into this drain rather than lost.
func (c *coordinator) drainPending() {
	work := c.pending
	c.pending = nil
	var parked []int32
	for i := 0; i < len(work); i++ {
		v := work[i]
		if c.needs[v]&c.live == 0 {
			// Every remaining required worker died while the column was
			// parked; it is finished for this epoch.
			c.finishColumn(v)
		} else if !c.dispatch(v) {
			parked = append(parked, v)
		}
		if len(c.pending) > 0 {
			work = append(work, c.pending...)
			c.pending = nil
		}
	}
	c.pending = parked
}

func (c *coordinator) finishColumn(v int32) {
	c.holder[v] = -1
	c.colsLeft--
	if c.colsLeft == 0 {
		c.beginSync()
	}
}

func (c *coordinator) onColDone(w *workerState, d colDone) {
	v := int32(d.Col)
	sentAt, ok := w.inFlight[v]
	if !ok || int(d.Epoch) != c.epoch || len(d.Q) != c.cfg.K {
		c.kill(w, fmt.Sprintf("coldone for col %d epoch %d not in flight", v, d.Epoch))
		return
	}
	delete(w.inFlight, v)
	w.queuedRatings -= int64(w.colCount[v])
	w.lastReturn = time.Now()
	c.cfg.Metrics.ColumnsRecv.Inc()
	c.cfg.Metrics.Circulation.ObserveSince(sentAt)
	w.circ.Observe(w.lastReturn.Sub(sentAt).Seconds())
	if hopSpan, traced := w.inFlightSpan[v]; traced {
		delete(w.inFlightSpan, v)
		c.ct.hop(w.id, hopSpan, v, d.NRatings, sentAt, w.lastReturn, d.Spans)
	}
	copy(c.f.Colvec(v), d.Q)
	c.rep.TotalUpdates += int64(d.NRatings)
	if d.Nanos > 0 && d.NRatings > 0 {
		w.samples.Observe(int(d.NRatings), float64(d.Nanos)/1e9)
	}

	c.needs[v] &^= w.bit()
	if c.needs[v]&c.live == 0 {
		c.finishColumn(v)
	} else if !c.dispatch(v) {
		c.holder[v] = -1
		c.pending = append(c.pending, v)
	}
	// The freed window slot may unpark a column.
	c.drainPending()
}

// --- failure handling ---

// kill declares a worker dead, closes its link, and re-circulates the
// columns it held from their last-returned state. The epoch keeps running
// on the survivors; the dead worker's rows rejoin at the next re-shard.
func (c *coordinator) kill(w *workerState, why string) {
	if !w.alive {
		return
	}
	w.alive = false
	c.live &^= w.bit()
	if c.live == 0 {
		c.zeroSince = time.Now() // the rejoin grace window starts now
	}
	w.link.close()
	c.rep.WorkerFailures++
	c.cfg.Metrics.WorkersLive.Set(float64(popcount(c.live)))

	reclaimed := 0
	for v := range w.inFlight {
		reclaimed++
		// Its in-flight updates are lost; the coordinator's cached q (from
		// the previous hop) re-enters circulation.
		c.needs[v] &^= w.bit()
		c.holder[v] = -1
		if c.needs[v]&c.live == 0 {
			c.finishColumn(v)
		} else {
			c.pending = append(c.pending, v)
		}
	}
	w.inFlight = map[int32]time.Time{}
	w.inFlightSpan = map[int32]uint64{}
	w.queuedRatings = 0
	c.rep.ColumnsReclaimed += int64(reclaimed)
	c.cfg.Metrics.ColumnsReclaimed.Add(int64(reclaimed))
	c.log.Warn("worker dead", "slot", fmt.Sprint(w.id), "why", why,
		"reclaimed", fmt.Sprint(reclaimed), "live", fmt.Sprint(popcount(c.live)))
	if c.ct.started() {
		c.ct.instant(workerTrack(w.id), "dead",
			obs.Labels{"why": why, "reclaimed": fmt.Sprint(reclaimed)})
	}

	// Columns parked or held elsewhere that still listed the dead worker
	// finish naturally: parked ones at the next drainPending (which checks
	// needs against the shrunken live set), held ones when their ColDone
	// arrives. Only the sync barrier needs attention here.
	if c.syncing {
		c.awaiting &^= w.bit()
		if c.awaiting == 0 {
			c.endEpoch()
		}
	}
}

// checkStalls kills workers that hold in-flight columns but have returned
// nothing for StallTimeout — alive at the TCP level, dead for training.
func (c *coordinator) checkStalls() {
	now := time.Now()
	for _, w := range c.workers {
		if !w.alive || len(w.inFlight) == 0 {
			continue
		}
		// The stall clock is the later of the last return and the earliest
		// in-flight dispatch: a stale lastReturn from before a long epoch
		// boundary (eval + checkpoint) must not count against columns the
		// coordinator only just dispatched.
		var minDispatch time.Time
		for _, t := range w.inFlight {
			if minDispatch.IsZero() || t.Before(minDispatch) {
				minDispatch = t
			}
		}
		oldest := w.lastReturn
		if minDispatch.After(oldest) {
			oldest = minDispatch
		}
		if now.Sub(oldest) > c.cfg.StallTimeout {
			c.kill(w, fmt.Sprintf("stalled: %d columns in flight, none returned in %v", len(w.inFlight), c.cfg.StallTimeout))
		}
	}
}

// --- epoch boundary ---

// beginSync requests every live worker's P partition; the epoch ends when
// the last PSync (or death) arrives.
func (c *coordinator) beginSync() {
	c.syncing = true
	c.awaiting = 0
	traceID, barrierID := c.ct.beginBarrier()
	msg := epochSync{Epoch: uint32(c.epoch), TraceID: traceID, SpanID: barrierID}.encode()
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		if err := w.link.send(mEpochSync, msg); err != nil {
			c.kill(w, fmt.Sprintf("epoch sync send: %v", err))
			continue
		}
		c.awaiting |= w.bit()
	}
	if c.awaiting == 0 && c.live != 0 {
		c.endEpoch()
	}
}

func (c *coordinator) onPSync(w *workerState, p pSync) {
	if !c.syncing || c.awaiting&w.bit() == 0 {
		c.kill(w, "unsolicited psync")
		return
	}
	lo, hi := int(p.RowLo), int(p.RowHi)
	if lo != w.lo || hi != w.hi || len(p.P) != (hi-lo)*c.cfg.K {
		c.kill(w, fmt.Sprintf("psync rows [%d,%d) do not match assignment [%d,%d)", lo, hi, w.lo, w.hi))
		return
	}
	copy(c.f.P[lo*c.cfg.K:hi*c.cfg.K], p.P)
	c.awaiting &^= w.bit()
	if c.awaiting == 0 {
		c.endEpoch()
	}
}

// endEpoch closes the books on one epoch: evaluate, report, checkpoint,
// re-fit the cost models, possibly re-shard, and launch the next epoch.
func (c *coordinator) endEpoch() {
	c.syncing = false
	if c.stopping {
		return // interrupt drain: the partial epoch is merged, not counted
	}
	barrierEnd := time.Now()
	c.epoch++
	c.rep.Epochs = c.epoch
	c.cfg.Metrics.Epochs.Inc()

	var evalDur time.Duration
	if c.cfg.Test != nil {
		evalStart := time.Now()
		rmse := model.RMSE(c.f, c.cfg.Test)
		evalDur = time.Since(evalStart)
		c.rep.FinalRMSE = rmse
		c.rep.History = append(c.rep.History, EvalPoint{
			Time: time.Since(c.start).Seconds(), Epoch: c.epoch, RMSE: rmse,
		})
	}
	c.emit(progress.KindEpoch)
	c.log.Info("epoch complete", "epoch", fmt.Sprint(c.epoch),
		"rmse", fmt.Sprintf("%.4f", c.rep.FinalRMSE),
		"updates", fmt.Sprint(c.rep.TotalUpdates), "live", fmt.Sprint(popcount(c.live)))

	var ckptDur time.Duration
	if c.cfg.CheckpointPath != "" && (c.epoch%c.cfg.CheckpointEvery == 0 || c.epoch == c.cfg.Epochs) {
		ckptStart := time.Now()
		if err := c.f.SaveFileAtomic(c.cfg.CheckpointPath); err == nil {
			c.rep.Checkpoints++
			// The manifest rides behind its checkpoint: written after, so
			// a crash between the two leaves a manifest one epoch older
			// than the model — a resume then retrains that epoch rather
			// than skipping one.
			_ = c.manifest().SaveAtomic(ManifestPath(c.cfg.CheckpointPath))
			ckptDur = time.Since(ckptStart)
			c.emit(progress.KindCheckpoint)
			c.log.Info("checkpoint written", "epoch", fmt.Sprint(c.epoch), "path", c.cfg.CheckpointPath)
		}
	}
	c.ct.seal(c.epoch, barrierEnd, evalDur, ckptDur)
	c.publishStatus(true)
	if c.epoch >= c.cfg.Epochs || c.live == 0 {
		return
	}
	c.reshard()
	c.startEpoch()
}

// reshard re-solves the row partition over the live workers. Rows move
// when the live set changed (a dead worker's rows must find an owner) or
// when fitted throughput diverged enough to pay for the P re-send — the
// α-split re-solve of the paper's two-region scheme, applied across
// machines.
func (c *coordinator) reshard() {
	liveWorkers := make([]*workerState, 0, len(c.workers))
	for _, w := range c.workers {
		if w.alive {
			liveWorkers = append(liveWorkers, w)
		}
	}
	if len(liveWorkers) == 0 {
		return
	}
	weights := make([]float64, len(liveWorkers))
	for i, w := range liveWorkers {
		w.tput = fittedThroughput(w)
		weights[i] = w.tput
	}
	coverage := liveWorkers[0].lo == 0
	for i := 1; coverage && i < len(liveWorkers); i++ {
		coverage = liveWorkers[i].lo == liveWorkers[i-1].hi
	}
	coverage = coverage && liveWorkers[len(liveWorkers)-1].hi == c.train.Rows
	// A rejoined worker idling on an empty range must get rows now — an
	// empty partition never trains, whatever the balance check says.
	for _, w := range liveWorkers {
		if w.hi == w.lo {
			coverage = false
		}
	}
	balanced := c.cfg.NoRepartition || imbalance(weights) < 1.1
	if coverage && balanced {
		return // partition still covers every row and is worth keeping
	}
	if c.cfg.NoRepartition {
		weights = make([]float64, len(liveWorkers)) // equal shares
	}
	bounds := PartitionRows(c.train.Rows, weights)
	for i, w := range liveWorkers {
		if err := c.assignRows(w, bounds[i], bounds[i+1]); err != nil {
			c.kill(w, fmt.Sprintf("reassign send: %v", err))
		}
	}
}

// fittedThroughput turns a worker's accumulated cost samples into a
// routing weight (ratings/s), probing the fitted model at the worker's
// mean observed task size.
func fittedThroughput(w *workerState) float64 {
	m, ok := w.samples.Fit(cost.KindKernel)
	if !ok {
		return 0
	}
	mean := meanTaskSize(w)
	if t := m.Time(mean); t > 0 {
		return mean / t
	}
	return 0
}

func meanTaskSize(w *workerState) float64 {
	var total, cols float64
	for _, n := range w.colCount {
		if n > 0 {
			total += float64(n)
			cols++
		}
	}
	if cols == 0 {
		return 1
	}
	return total / cols
}

// --- status federation ---

// publishStatus snapshots the cluster for /clusterz. Unforced publishes are
// throttled so the per-event call in the main loop stays cheap; forced ones
// (epoch boundaries, teardown) always go out.
func (c *coordinator) publishStatus(force bool) {
	if c.cfg.Status == nil {
		return
	}
	now := time.Now()
	if !force && now.Sub(c.statusAt) < 250*time.Millisecond {
		return
	}
	c.statusAt = now
	s := &ClusterStatus{
		RunID: c.cfg.RunID, Epoch: c.rep.Epochs, TotalEpochs: c.cfg.Epochs,
		Syncing: c.syncing, ColsLeft: c.colsLeft,
		LiveWorkers: popcount(c.live), TotalUpdates: c.rep.TotalUpdates,
		WorkerFailures: c.rep.WorkerFailures, WorkerRejoins: c.rep.WorkerRejoins,
		ColumnsReclaimed: c.rep.ColumnsReclaimed,
		Workers:          make([]WorkerStatus, len(c.workers)),
	}
	for i, w := range c.workers {
		ws := WorkerStatus{
			Slot: w.id, Alive: w.alive, Generation: w.gen,
			RowLo: w.lo, RowHi: w.hi, InFlight: len(w.inFlight),
			ThroughputRPS:  w.tput,
			ColsDone:       w.hb.Cols,
			RatingsApplied: w.hb.Ratings,
			KernelSeconds:  float64(w.hb.KernelNanos) / 1e9,
			LastSeenMilli:  -1,
		}
		if w.circ.Count() > 0 {
			ws.CircP50Milli = w.circ.Quantile(0.50) * 1e3
			ws.CircP99Milli = w.circ.Quantile(0.99) * 1e3
		}
		if w.alive && !w.lastSeen.IsZero() {
			ws.LastSeenMilli = float64(now.Sub(w.lastSeen).Nanoseconds()) / 1e6
		}
		s.Workers[i] = ws
	}
	c.cfg.Status.Publish(s)
}

// --- teardown ---

func (c *coordinator) emit(kind progress.Kind) {
	if c.cfg.Progress == nil {
		return
	}
	elapsed := time.Since(c.start)
	var rate float64
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(c.rep.TotalUpdates) / s
	}
	c.cfg.Progress(progress.Event{
		Kind: kind, Algorithm: "dist", Time: time.Now(),
		RunID: c.cfg.RunID,
		Epoch: c.rep.Epochs, TotalEpochs: c.cfg.Epochs,
		RMSE:          c.rep.FinalRMSE,
		TotalUpdates:  c.rep.TotalUpdates,
		UpdatesPerSec: rate,
		Elapsed:       elapsed,
		Checkpoints:   c.rep.Checkpoints,
		CheckpointPath: func() string {
			if kind == progress.KindCheckpoint {
				return c.cfg.CheckpointPath
			}
			return ""
		}(),
	})
}

// finish seals a completed run: stop the workers, stamp the report.
func (c *coordinator) finish(err error) (*Report, *model.Factors, error) {
	// Broadcast once via close; c.done must never be reassigned — reader
	// goroutines select on it concurrently, and a nil store would race and
	// leave late readers blocked on a nil channel forever.
	if !c.finished {
		c.finished = true
		close(c.done)
	}
	// Late joiners already greeted but not yet admitted get their
	// connections closed rather than leaked.
	for {
		select {
		case j := <-c.joins:
			j.conn.Close()
			continue
		default:
		}
		break
	}
	for _, w := range c.workers {
		if w.alive {
			_ = w.link.send(mDone, nil)
			w.link.close()
		}
	}
	c.rep.Seconds = time.Since(c.start).Seconds()
	c.rep.BytesSent = c.cfg.Metrics.BytesSent.Value()
	c.rep.BytesRecv = c.cfg.Metrics.BytesRecv.Value()
	c.rep.LiveWorkers = popcount(c.live)
	c.publishStatus(true)
	c.log.Info("run finished", "epochs", fmt.Sprint(c.rep.Epochs),
		"rmse", fmt.Sprintf("%.4f", c.rep.FinalRMSE),
		"failures", fmt.Sprint(c.rep.WorkerFailures), "rejoins", fmt.Sprint(c.rep.WorkerRejoins))
	if err == nil {
		c.emit(progress.KindDone)
	}
	return c.rep, c.f, err
}

// interrupt winds down a cancelled run: best-effort final P collection so
// the returned factors include the most recent partial epoch, one final
// checkpoint, and the partial report together with the context error.
func (c *coordinator) interrupt(ctx context.Context) (*Report, *model.Factors, error) {
	c.rep.Interrupted = true
	c.stopping = true
	if !c.syncing && c.live != 0 {
		// Ask for P now: frames are ordered, so each worker's PSync carries
		// every update it applied before seeing the sync request.
		c.beginSync()
	}
	deadline := time.After(c.cfg.LivenessTimeout)
drain:
	for c.syncing {
		select {
		case ev := <-c.events:
			if ev.err != nil || ev.t == mPSync {
				c.handle(ev)
			}
			// Column completions from the draining epoch are dropped: the
			// epoch is abandoned, only the P rows matter now.
		case <-deadline:
			break drain
		}
	}
	if c.cfg.Test != nil && len(c.rep.History) == 0 {
		c.rep.FinalRMSE = model.RMSE(c.f, c.cfg.Test)
	}
	if c.cfg.CheckpointPath != "" {
		if err := c.f.SaveFileAtomic(c.cfg.CheckpointPath); err == nil {
			c.rep.Checkpoints++
		}
	}
	rep, f, _ := c.finish(context.Cause(ctx))
	c.emit(progress.KindInterrupted)
	return rep, f, context.Cause(ctx)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Dialer abstracts outbound connections so tests can swap real TCP for
// in-memory pipes. The coordinator side takes a net.Listener directly (the
// caller binds it, so a busy port fails fast and tests learn the ephemeral
// address before starting workers).
type Dialer interface {
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

// TCP is the production transport: plain TCP with Nagle left on (frames
// are batched writes already).
type TCP struct{}

// DialContext dials addr over TCP.
func (TCP) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Listen binds a TCP listener on addr.
func (TCP) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// dialRetry dials with bounded retry and exponential backoff — the
// coordinator may not be listening yet when workers start (the localhost
// quickstart launches processes in arbitrary order).
func dialRetry(ctx context.Context, d Dialer, addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		c, err := d.DialContext(ctx, addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if i < attempts-1 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
		}
	}
	return nil, fmt.Errorf("dist: dialing %s failed after %d attempts: %w", addr, attempts, lastErr)
}

// PipeNet is an in-memory transport over net.Pipe for deterministic unit
// tests: Listen registers an address, DialContext connects a synchronous
// pipe to it. Pipe conns honor deadlines, so the timeout and liveness
// machinery is exercised exactly as over TCP — minus the kernel.
type PipeNet struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener
}

// NewPipeNet returns an empty in-memory network.
func NewPipeNet() *PipeNet {
	return &PipeNet{listeners: make(map[string]*pipeListener)}
}

// Listen registers addr and returns its listener.
func (p *PipeNet) Listen(addr string) (net.Listener, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.listeners[addr]; ok {
		return nil, fmt.Errorf("dist: pipe address %q already bound", addr)
	}
	l := &pipeListener{net: p, addr: addr, ch: make(chan net.Conn), done: make(chan struct{})}
	p.listeners[addr] = l
	return l, nil
}

// DialContext connects to a listener registered under addr.
func (p *PipeNet) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	p.mu.Lock()
	l := p.listeners[addr]
	p.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("dist: pipe address %q not listening", addr)
	}
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		return nil, fmt.Errorf("dist: pipe address %q closed", addr)
	case <-ctx.Done():
		client.Close()
		return nil, context.Cause(ctx)
	}
}

type pipeListener struct {
	net  *PipeNet
	addr string
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr(l.addr) }

type pipeAddr string

func (a pipeAddr) Network() string { return "pipe" }
func (a pipeAddr) String() string  { return string(a) }

package dist

import "math"

// PartitionRows splits m rows into len(weights) contiguous ranges with
// sizes proportional to the weights — the paper's α-split logic (Equation
// 8) generalised from two executor classes to N machines: under the linear
// per-node cost models internal/cost fits online, the makespan-balancing
// split assigns each node a share of the rows proportional to its measured
// throughput. Returns len(weights)+1 boundaries with b[0]=0 and b[n]=m;
// partition i is [b[i], b[i+1]). Non-positive weights are treated as the
// mean weight (an unmeasured node gets an average share, not zero rows).
func PartitionRows(m int, weights []float64) []int {
	n := len(weights)
	b := make([]int, n+1)
	if n == 0 {
		return b
	}
	w := make([]float64, n)
	var total float64
	positive := 0
	for _, x := range weights {
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			total += x
			positive++
		}
	}
	mean := 1.0
	if positive > 0 {
		mean = total / float64(positive)
	}
	total = 0
	for i, x := range weights {
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			w[i] = x
		} else {
			w[i] = mean
		}
		total += w[i]
	}
	var cum float64
	for i := 0; i < n; i++ {
		cum += w[i]
		b[i+1] = int(math.Round(cum / total * float64(m)))
		if b[i+1] < b[i] {
			b[i+1] = b[i]
		}
		if b[i+1] > m {
			b[i+1] = m
		}
	}
	b[n] = m
	return b
}

// imbalance returns max(weight)/min(weight) over positive weights, or 1
// when fewer than two nodes have measurements — the repartition trigger:
// re-sharding costs a full P re-send, so the coordinator only moves rows
// when measured throughput actually diverged.
func imbalance(weights []float64) float64 {
	lo, hi := math.Inf(1), 0.0
	n := 0
	for _, w := range weights {
		if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			continue
		}
		n++
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if n < 2 || lo <= 0 {
		return 1
	}
	return hi / lo
}

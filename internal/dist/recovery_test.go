package dist

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hsgd/internal/chaos"
	"hsgd/internal/model"
)

// tappedDialer records every connection it hands out so a test can cut one
// mid-run and watch the worker rejoin.
type tappedDialer struct {
	d  Dialer
	mu sync.Mutex
	cs []net.Conn
}

func (td *tappedDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	c, err := td.d.DialContext(ctx, addr)
	if err == nil {
		td.mu.Lock()
		td.cs = append(td.cs, c)
		td.mu.Unlock()
	}
	return c, err
}

func (td *tappedDialer) cutLatest() {
	td.mu.Lock()
	defer td.mu.Unlock()
	if n := len(td.cs); n > 0 {
		td.cs[n-1].Close()
	}
}

func (td *tappedDialer) dials() int {
	td.mu.Lock()
	defer td.mu.Unlock()
	return len(td.cs)
}

// TestWorkerRejoinAfterLinkFlap: one worker's connection is cut mid-epoch.
// The worker must re-dial, be re-admitted into its old slot (no process
// restart), and earn rows back at the next re-shard; the run completes with
// every epoch accounted for.
func TestWorkerRejoinAfterLinkFlap(t *testing.T) {
	train, test := planted(60, 50, 3000, 7)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	td := &tappedDialer{d: pn}
	var visits int
	flappy := testWorkerConfig()
	flappy.onColumn = func(int32) {
		visits++
		if visits == 8 {
			td.cutLatest() // the link dies with a column in hand
		}
	}
	const epochs = 12
	cfg := testConfig(2, epochs)
	cfg.Test = test
	m := NewMetrics(nil, "coordinator")
	cfg.Metrics = m

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = Work(ctx, pn, "coord", train, testWorkerConfig())
	}()
	go func() {
		defer wg.Done()
		errs[1] = Work(ctx, td, "coord", train, flappy)
	}()
	rep, f, err := Coordinate(ctx, ln, train, cfg)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d did not recover: %v", i, werr)
		}
	}
	if rep.WorkerRejoins == 0 || m.Rejoins.Value() == 0 {
		t.Fatalf("no rejoin recorded (rejoins=%d metric=%d)", rep.WorkerRejoins, m.Rejoins.Value())
	}
	if td.dials() < 2 {
		t.Fatalf("flapped worker dialed %d times, want ≥ 2", td.dials())
	}
	if rep.Epochs != epochs {
		t.Fatalf("epochs = %d, want %d (run stalled after the flap)", rep.Epochs, epochs)
	}
	if rmse := model.RMSE(f, test); rmse > 0.35 {
		t.Fatalf("RMSE %v too high after a link flap", rmse)
	}
	// Both workers end the run live: the flapper rejoined the same slot.
	if rep.LiveWorkers != 2 {
		t.Fatalf("LiveWorkers = %d, want 2", rep.LiveWorkers)
	}
}

// TestCoordinatorCrashAndResume: the coordinator is killed mid-epoch
// (injected crash — links dropped, no Done, no final checkpoint), then a
// new coordinator resumes from the manifest and checkpoint. The same worker
// processes must ride out the restart via their rejoin loop — no worker is
// restarted — and the run must complete exactly the configured number of
// epochs with the already-checkpointed ones never retrained.
func TestCoordinatorCrashAndResume(t *testing.T) {
	train, test := planted(60, 50, 3000, 8)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "model.hfac")
	const epochs = 8

	cfg := testConfig(3, epochs)
	cfg.Test = test
	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = 1
	m := NewMetrics(nil, "coordinator")
	cfg.Metrics = m
	crash := make(chan struct{})
	cfg.crash = crash

	// Workers get a dial ladder generous enough to span the restart and a
	// rejoin budget to match; each Work call below is the only one its
	// worker ever makes.
	wcfg := func() WorkerConfig {
		w := testWorkerConfig()
		w.DialAttempts = 12
		w.Rejoins = 10
		return w
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Work(ctx, pn, "coord", train, wcfg())
		}(i)
	}

	// Pull the trigger once at least two epochs are durable and the next
	// epoch has columns in flight — a mid-epoch kill, the worst case.
	go func() {
		for m.Epochs.Value() < 2 {
			time.Sleep(2 * time.Millisecond)
		}
		base := m.ColumnsSent.Value()
		for m.ColumnsSent.Value() < base+5 {
			time.Sleep(time.Millisecond)
		}
		close(crash)
	}()
	_, _, err = Coordinate(ctx, ln, train, cfg)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed coordinator returned %v, want ErrCrashed", err)
	}

	man, err := LoadManifest(ManifestPath(ckpt))
	if err != nil {
		t.Fatalf("no usable manifest after the crash: %v", err)
	}
	if man.Epoch < 2 || man.Epoch >= epochs {
		t.Fatalf("manifest epoch %d outside [2,%d)", man.Epoch, epochs)
	}
	if man.RunID == 0 || man.Workers != 3 || man.Rows != train.Rows || man.Cols != train.Cols {
		t.Fatalf("manifest incomplete: %+v", man)
	}
	restored, err := model.LoadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint unreadable after the crash: %v", err)
	}

	// Restart: same address, identity and progress from the manifest. The
	// old listener's close races with Coordinate returning, so rebinding
	// may need a moment.
	var ln2 net.Listener
	for {
		ln2, err = pn.Listen("coord")
		if err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cfg2 := testConfig(3, epochs)
	cfg2.Test = test
	cfg2.CheckpointPath = ckpt
	cfg2.CheckpointEvery = 1
	cfg2.RunID = man.RunID
	cfg2.StartEpoch = man.Epoch
	cfg2.ResumeBounds = man.Bounds
	cfg2.Init = restored
	rep, f, err := Coordinate(ctx, ln2, train, cfg2)
	wg.Wait()
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d did not survive the coordinator restart: %v", i, werr)
		}
	}
	if !rep.Resumed {
		t.Fatal("resumed run not flagged Resumed")
	}
	if rep.Epochs != epochs {
		t.Fatalf("resumed run ended at epoch %d, want %d", rep.Epochs, epochs)
	}
	// Exactly-once per epoch: the resumed run trains only the epochs after
	// the manifest's durable count (when nothing else failed, the update
	// count is exact).
	if want := int64(epochs-man.Epoch) * int64(train.NNZ()); rep.WorkerFailures == 0 && rep.TotalUpdates != want {
		t.Fatalf("resumed run applied %d updates, want %d (epochs %d..%d exactly once)",
			rep.TotalUpdates, want, man.Epoch, epochs)
	}
	if len(rep.History) != epochs-man.Epoch {
		t.Fatalf("resumed history has %d points, want %d", len(rep.History), epochs-man.Epoch)
	}
	if rmse := model.RMSE(f, test); rmse > 0.35 {
		t.Fatalf("RMSE %v too high after crash and resume", rmse)
	}
	// The resumed run re-checkpointed; its manifest now marks completion.
	man2, err := LoadManifest(ManifestPath(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if man2.Epoch != epochs || man2.RunID != man.RunID {
		t.Fatalf("final manifest epoch=%d run=%#x, want epoch=%d run=%#x", man2.Epoch, man2.RunID, epochs, man.RunID)
	}
}

// TestChaosSoak: three workers on a seeded flaky transport — injected
// latency, transient timeouts, and mid-frame resets — must converge to the
// clean run's RMSE within ±0.02, riding the rejoin path through every cut.
func TestChaosSoak(t *testing.T) {
	train, test := planted(60, 50, 3000, 11)
	const epochs = 20

	run := func(wrap func(Dialer) Dialer, wcfg func() WorkerConfig) (*Report, float64) {
		t.Helper()
		pn := NewPipeNet()
		ln, err := pn.Listen("coord")
		if err != nil {
			t.Fatal(err)
		}
		var d Dialer = pn
		if wrap != nil {
			d = wrap(pn)
		}
		cfg := testConfig(3, epochs)
		cfg.Test = test
		rep, f, err, errs := cluster(t, d, ln, train, cfg,
			[]WorkerConfig{wcfg(), wcfg(), wcfg()}, nil)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		for i, werr := range errs {
			// A worker cut in the run's final moments keeps re-dialing a
			// coordinator that already finished and exits with a dial
			// failure — a benign straggler, not a lost worker mid-run.
			if werr != nil && !strings.Contains(werr.Error(), "failed after") {
				t.Fatalf("worker %d gave up mid-run: %v", i, werr)
			}
		}
		return rep, model.RMSE(f, test)
	}

	_, cleanRMSE := run(nil, testWorkerConfig)

	h := chaos.New(chaos.Config{
		Seed:     42,
		PLatency: 0.05, LatencyMin: 200 * time.Microsecond, LatencyMax: 2 * time.Millisecond,
		PTimeout: 0.001,
		PReset:   0.0005,
	})
	soakCfg := func() WorkerConfig {
		w := testWorkerConfig()
		w.DialAttempts = 10
		w.Rejoins = 1000 // the soak must never lose a worker for good
		return w
	}
	rep, soakRMSE := run(func(d Dialer) Dialer { return h.Dialer(d) }, soakCfg)

	st := h.Stats()
	if st.Latencies == 0 && st.Timeouts == 0 && st.Resets == 0 {
		t.Fatal("chaos harness injected nothing; the soak proved nothing")
	}
	if rep.Epochs != epochs {
		t.Fatalf("soak ended at epoch %d, want %d", rep.Epochs, epochs)
	}
	if diff := soakRMSE - cleanRMSE; diff > 0.02 || diff < -0.02 {
		t.Fatalf("soak RMSE %v vs clean RMSE %v: outside ±0.02 (faults: %+v)", soakRMSE, cleanRMSE, st)
	}
	t.Logf("soak: rmse=%.4f clean=%.4f rejoins=%d failures=%d reclaimed=%d faults=%+v",
		soakRMSE, cleanRMSE, rep.WorkerRejoins, rep.WorkerFailures, rep.ColumnsReclaimed, st)
}

// --- manifest ---

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.hfac.manifest")
	man := &Manifest{
		RunID: 0xabcdef, Epoch: 3, Epochs: 10,
		K: 8, LambdaP: 0.01, LambdaQ: 0.02, Gamma: 0.05, Seed: 7,
		Workers: 3, Rows: 60, Cols: 50, Bounds: []int{0, 20, 40, 60},
	}
	if err := man.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != man.RunID || got.Epoch != 3 || got.Workers != 3 || len(got.Bounds) != 4 {
		t.Fatalf("round trip: %+v", got)
	}

	if _, err := LoadManifest(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing manifest loaded")
	}
	bad := *man
	bad.RunID = 0
	if err := bad.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("manifest without a run id accepted")
	}
	bad = *man
	bad.Epoch = 11 // beyond Epochs
	if err := bad.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("manifest with epoch beyond the run accepted")
	}
}

// --- cancellable send backoff ---

type stuckWriteConn struct{ net.Conn }

func (stuckWriteConn) Write([]byte) (int, error) { return 0, stuckErr{} }

type stuckErr struct{}

func (stuckErr) Error() string   { return "injected write timeout" }
func (stuckErr) Timeout() bool   { return true }
func (stuckErr) Temporary() bool { return true }

// TestWriteFrameBackoffCancellable: a send stuck in its retry ladder must
// abort the moment the owning run's done channel closes, instead of serving
// out the full exponential backoff.
func TestWriteFrameBackoffCancellable(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan struct{})
	ret := make(chan error, 1)
	go func() {
		// 30 retries ≈ many minutes of doubling backoff if uncancelled.
		_, err := writeFrame(stuckWriteConn{Conn: a}, mHeartbeat, nil, time.Second, 30, done)
		ret <- err
	}()
	time.Sleep(25 * time.Millisecond) // let it enter the ladder
	close(done)
	select {
	case err := <-ret:
		if err == nil || !strings.Contains(err.Error(), net.ErrClosed.Error()) {
			t.Fatalf("cancelled send returned %v, want wrapped net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writeFrame ignored the done channel")
	}
}

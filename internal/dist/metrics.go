package dist

import "hsgd/internal/obs"

// Metrics are the per-node distributed-training series, exported through
// internal/obs into /metricz on each node's -debug-addr listener. Both
// roles share the schema; the role label tells a coordinator scrape from a
// worker scrape. A nil registry yields live but unregistered handles, so
// the training paths never branch on whether observability is wired up.
type Metrics struct {
	// ColumnsSent counts column hops leaving this node (dispatches on the
	// coordinator, returns on a worker); ColumnsRecv counts hops arriving.
	ColumnsSent *obs.Counter
	ColumnsRecv *obs.Counter
	// ColumnsReclaimed counts columns the coordinator re-entered into
	// circulation after their holder dropped (always 0 on workers).
	ColumnsReclaimed *obs.Counter
	// BytesSent/BytesRecv count every framed byte on the wire, heartbeats
	// included — the transfer volume the bench reports per epoch.
	BytesSent *obs.Counter
	BytesRecv *obs.Counter
	// WorkersLive is the coordinator's current live-worker count.
	WorkersLive *obs.Gauge
	// Circulation observes the full hop latency per column visit as the
	// coordinator sees it: dispatch → ColDone received (queueing, transfer
	// both ways, and the SGD updates at the worker).
	Circulation *obs.Histogram
	// Heartbeats counts idle-liveness frames sent (worker role).
	Heartbeats *obs.Counter
	// Epochs counts completed distributed epochs (coordinator role).
	Epochs *obs.Counter
	// Rejoins counts link recoveries: re-dials after a broken coordinator
	// link (worker role), re-admissions into a dead slot (coordinator role).
	Rejoins *obs.Counter
}

// NewMetrics returns handles registered under hsgd_dist_* with the given
// role label ("coordinator" or "worker"); reg == nil returns working
// unregistered handles.
func NewMetrics(reg *obs.Registry, role string) *Metrics {
	if reg == nil {
		return &Metrics{
			ColumnsSent: &obs.Counter{}, ColumnsRecv: &obs.Counter{},
			ColumnsReclaimed: &obs.Counter{},
			BytesSent:        &obs.Counter{}, BytesRecv: &obs.Counter{},
			WorkersLive: &obs.Gauge{},
			Circulation: obs.NewHistogram(nil),
			Heartbeats:  &obs.Counter{}, Epochs: &obs.Counter{},
			Rejoins: &obs.Counter{},
		}
	}
	labels := obs.Labels{"role": role}
	return &Metrics{
		ColumnsSent: reg.Counter("hsgd_dist_columns_sent_total",
			"Column hops sent by this node (coordinator dispatches, worker returns).", labels),
		ColumnsRecv: reg.Counter("hsgd_dist_columns_recv_total",
			"Column hops received by this node.", labels),
		ColumnsReclaimed: reg.Counter("hsgd_dist_columns_reclaimed_total",
			"Columns re-entered into circulation after their holder dropped.", labels),
		BytesSent: reg.Counter("hsgd_dist_bytes_sent_total",
			"Framed bytes sent on the distributed-training transport.", labels),
		BytesRecv: reg.Counter("hsgd_dist_bytes_recv_total",
			"Framed bytes received on the distributed-training transport.", labels),
		WorkersLive: reg.Gauge("hsgd_dist_workers_live",
			"Live workers as seen by the coordinator.", labels),
		Circulation: reg.Histogram("hsgd_dist_circulation_seconds",
			"Column hop latency: coordinator dispatch to ColDone received.", labels, nil),
		Heartbeats: reg.Counter("hsgd_dist_heartbeats_total",
			"Idle-liveness heartbeat frames sent.", labels),
		Epochs: reg.Counter("hsgd_dist_epochs_total",
			"Completed distributed training epochs.", labels),
		Rejoins: reg.Counter("hsgd_dist_rejoins_total",
			"Worker link recoveries: re-dials (worker) or re-admissions (coordinator).", labels),
	}
}

package dist

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// --- protocol v3 wire: trace context and span batches ---

func TestWireRoundTripsTraceContext(t *testing.T) {
	ct := colTask{Epoch: 5, Col: 7, TraceID: 0xaaaa, SpanID: 0xbbbb, Q: []float32{1.5, -2}}
	gotT, err := decodeColTask(ct.encode())
	if err != nil || gotT.TraceID != 0xaaaa || gotT.SpanID != 0xbbbb || gotT.Q[1] != -2 {
		t.Fatalf("coltask trace round trip: %+v err=%v", gotT, err)
	}

	d := colDone{
		Epoch: 1, Col: 42, NRatings: 17, Nanos: 123,
		Spans: []wireSpan{
			{Kind: wspanRecv, Age: 5000, Dur: 100},
			{Kind: wspanKernel, Age: 4000, Dur: 3500},
		},
		Q: []float32{0.5},
	}
	gotD, err := decodeColDone(d.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotD.Spans) != 2 || gotD.Spans[0].Kind != wspanRecv || gotD.Spans[1].Age != 4000 ||
		gotD.Spans[1].Dur != 3500 || gotD.Q[0] != 0.5 {
		t.Fatalf("coldone span round trip: %+v", gotD)
	}

	hb := hbStat{
		Cols: 9, Ratings: 900, KernelNanos: 777,
		Spans: []wireSpan{{Kind: wspanPSync, Age: 100, Dur: 50}},
	}
	gotH, err := decodeHBStat(hb.encode())
	if err != nil || gotH.Cols != 9 || gotH.Ratings != 900 || gotH.KernelNanos != 777 ||
		len(gotH.Spans) != 1 || gotH.Spans[0].Kind != wspanPSync {
		t.Fatalf("hbstat round trip: %+v err=%v", gotH, err)
	}

	es := epochSync{Epoch: 3, TraceID: 0x11, SpanID: 0x22}
	gotE, err := decodeEpochSync(es.encode())
	if err != nil || gotE.Epoch != 3 || gotE.TraceID != 0x11 || gotE.SpanID != 0x22 {
		t.Fatalf("epochsync round trip: %+v err=%v", gotE, err)
	}
}

func TestWireHeartbeatToleratesEmptyPayload(t *testing.T) {
	// A v2-style empty heartbeat must decode to a zero snapshot, not error:
	// that keeps the liveness path compatible during mixed-version moments.
	hb, err := decodeHBStat(nil)
	if err != nil || hb.Cols != 0 || len(hb.Spans) != 0 {
		t.Fatalf("empty heartbeat: %+v err=%v", hb, err)
	}
}

func TestWireRejectsOversizedSpanBatch(t *testing.T) {
	// A span-count prefix past the cap must be rejected before allocating.
	good := colDone{Epoch: 1, Col: 2, NRatings: 3, Nanos: 4,
		Spans: []wireSpan{{Kind: wspanRecv, Age: 1, Dur: 1}}}.encode()
	// The span count lives after Epoch+Col+NRatings (3×u32) + Nanos (u64).
	off := 4 + 4 + 4 + 8
	bad := append([]byte(nil), good...)
	bad[off] = 0xff
	bad[off+1] = 0xff
	bad[off+2] = 0xff
	bad[off+3] = 0x7f
	if _, err := decodeColDone(bad); err == nil {
		t.Fatal("oversized span batch accepted")
	}

	// Truncation anywhere inside the span batch errors rather than panics.
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeColDone(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestWspanNames(t *testing.T) {
	if wspanName(wspanRecv) != "recv" || wspanName(wspanKernel) != "kernel" ||
		wspanName(wspanReply) != "reply" || wspanName(wspanPSync) != "psync" {
		t.Fatal("span kind names drifted from the trace vocabulary")
	}
	if wspanName(99) != "span(99)" {
		t.Fatalf("unknown kind rendered %q", wspanName(99))
	}
}

// --- cluster trace merge ---

// TestClusterTraceMergesAllWorkers runs a 2-worker pipe cluster with an
// epoch traced and checks the acceptance shape: one valid JSON document
// holding spans from every worker slot plus the coordinator's barrier track.
func TestClusterTraceMergesAllWorkers(t *testing.T) {
	train, _ := planted(40, 30, 1500, 3)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, 4)
	trc := NewClusterTrace(2)
	board := NewStatusBoard()
	cfg.Trace = trc
	cfg.Status = board

	rep, _, err, errs := cluster(t, pn, ln, train, cfg,
		[]WorkerConfig{testWorkerConfig(), testWorkerConfig()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if rep.Epochs != 4 {
		t.Fatalf("epochs = %d", rep.Epochs)
	}

	if trc.TraceID() == 0 {
		t.Fatal("trace never armed")
	}
	tracks := map[string]bool{}
	for _, tr := range trc.Tracks() {
		tracks[tr] = true
	}
	for _, want := range []string{"coordinator", "worker 0", "worker 1"} {
		if !tracks[want] {
			t.Fatalf("merged trace lacks track %q (have %v)", want, trc.Tracks())
		}
	}

	var buf bytes.Buffer
	if err := trc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err := dec.Decode(&file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// One document: nothing but whitespace may follow.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		t.Fatal("trace file holds more than one JSON document")
	}

	tids := map[string]int{}
	for _, e := range file.TraceEvents {
		if e.Ph == "M" {
			tids[e.Args["name"].(string)] = e.TID
		}
	}
	spansOn := map[int]int{}
	names := map[string]int{}
	for _, e := range file.TraceEvents {
		if e.Ph == "X" {
			spansOn[e.TID]++
			names[e.Name]++
		}
	}
	for _, want := range []string{"coordinator", "worker 0", "worker 1"} {
		if spansOn[tids[want]] == 0 {
			t.Fatalf("no spans on track %q (names: %v)", want, names)
		}
	}
	if names["epoch 2"] != 1 || names["barrier"] != 1 {
		t.Fatalf("coordinator barrier track malformed: %v", names)
	}
	if names["hop"] == 0 || names["recv"] == 0 || names["kernel"] == 0 {
		t.Fatalf("worker hop spans missing: %v", names)
	}

	// The status board federated heartbeat snapshots for both slots.
	st := board.Current()
	if st == nil || len(st.Workers) != 2 {
		t.Fatalf("cluster status = %+v", st)
	}
	if st.LiveWorkers != 2 || st.TotalUpdates == 0 {
		t.Fatalf("cluster status totals = %+v", st)
	}
}

// TestClusterTraceEpochOutOfRange asks for an epoch past the run's end: the
// trace must simply stay empty rather than derail the run.
func TestClusterTraceUntracedRunUnaffected(t *testing.T) {
	train, _ := planted(30, 20, 800, 5)
	pn := NewPipeNet()
	ln, err := pn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, 2)
	trc := NewClusterTrace(99) // never reached
	cfg.Trace = trc
	rep, _, err, errs := cluster(t, pn, ln, train, cfg,
		[]WorkerConfig{testWorkerConfig(), testWorkerConfig()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if rep.Epochs != 2 {
		t.Fatalf("epochs = %d", rep.Epochs)
	}
	if trc.Len() != 0 {
		t.Fatalf("untraced run produced %d spans", trc.Len())
	}
}

// TestStatusBoardHandler drives the HTTP surface directly.
func TestStatusBoardHandler(t *testing.T) {
	board := NewStatusBoard()
	h := board.Handler()

	// Before the first publish /clusterz answers 503, not an empty object.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/clusterz", nil))
	if rec.Code != 503 {
		t.Fatalf("pre-publish status %d, want 503", rec.Code)
	}

	board.Publish(&ClusterStatus{RunID: 7, Epoch: 2, LiveWorkers: 1,
		Workers: []WorkerStatus{{Slot: 0, Alive: true}}})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/clusterz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var got ClusterStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.RunID != 7 || got.Epoch != 2 || len(got.Workers) != 1 || !got.Workers[0].Alive {
		t.Fatalf("clusterz = %+v", got)
	}

	// Publish(nil) is a no-op, not a panic or a wipe.
	board.Publish(nil)
	if board.Current() == nil {
		t.Fatal("nil publish wiped the snapshot")
	}
}

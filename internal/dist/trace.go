package dist

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"hsgd/internal/obs"
)

// ClusterTrace collects one epoch of a distributed run as a single
// multi-track Chrome trace: the coordinator's own track (dispatch windows,
// the sync barrier, evaluation, checkpoint writes, worker deaths and
// rejoins) plus one track per worker slot carrying every column hop
// (coordinator-measured dispatch→return interval) with the worker's own
// recv/kernel/reply phases nested inside it.
//
// Worker clocks are never trusted: workers ship span offsets relative to
// their frame-send instant (wireSpan.Age) and the coordinator anchors each
// batch on its own clock using the hop's measured round trip — transit is
// estimated as half the non-working remainder (the RTT-midpoint rule), so
// a skewed worker clock cannot misplace spans on the merged timeline.
//
// The coordinator's single-threaded main loop is the only writer during a
// run; reading (WriteFile, Len) is safe once Coordinate returned.
type ClusterTrace struct {
	epoch  int // 1-based epoch to record
	merged *obs.MergedTrace

	traceID uint64 // nonzero once the traced epoch started
	rootID  uint64 // the epoch span every hop hangs under
}

// NewClusterTrace returns a recorder armed for the given 1-based epoch
// (values below 1 trace the first epoch).
func NewClusterTrace(epoch int) *ClusterTrace {
	if epoch < 1 {
		epoch = 1
	}
	return &ClusterTrace{epoch: epoch, merged: obs.NewMergedTrace()}
}

// Epoch returns the 1-based epoch the recorder captures.
func (t *ClusterTrace) Epoch() int { return t.epoch }

// TraceID returns the trace id of the recorded epoch (0 until it starts).
func (t *ClusterTrace) TraceID() uint64 { return t.traceID }

// Len returns the number of recorded spans.
func (t *ClusterTrace) Len() int { return t.merged.Len() }

// Tracks returns the recorded track names in tid order.
func (t *ClusterTrace) Tracks() []string { return t.merged.Tracks() }

// WriteJSON writes the merged timeline as Chrome trace-event JSON.
func (t *ClusterTrace) WriteJSON(w io.Writer) error { return t.merged.WriteJSON(w) }

// WriteFile writes the merged timeline JSON to path.
func (t *ClusterTrace) WriteFile(path string) error { return t.merged.WriteFile(path) }

// --- coordinator-side recording (main-loop only) ---

// ctrace is the coordinator's per-run tracing state over a ClusterTrace.
type ctrace struct {
	trc   *ClusterTrace
	armed bool // the traced epoch is in flight
	// barrier context: set by beginSync on the traced epoch so worker psync
	// spans (arriving on later heartbeats) can hang under the barrier span.
	barrierID    uint64
	barrierStart time.Time
	epochStart   time.Time
}

const coordTrack = "coordinator"

func workerTrack(id int) string { return fmt.Sprintf("worker %d", id) }

// arm starts recording if the epoch about to run (1-based) is the traced
// one. Reports whether tracing is now active.
func (ct *ctrace) arm(epoch1 int) bool {
	if ct.trc == nil || epoch1 != ct.trc.epoch {
		ct.armed = false
		return false
	}
	ct.armed = true
	ct.trc.traceID = obs.NewTraceID()
	ct.trc.rootID = obs.NewSpanID()
	ct.epochStart = time.Now()
	return true
}

// active reports whether the current epoch's hops should carry trace
// context.
func (ct *ctrace) active() bool { return ct.armed }

// started reports whether the traced epoch has begun — late spans (worker
// psync phases riding post-epoch heartbeats) are still accepted after the
// epoch sealed.
func (ct *ctrace) started() bool { return ct.trc != nil && ct.trc.traceID != 0 }

// span records one interval on the merged timeline.
func (ct *ctrace) span(track, name string, start time.Time, dur time.Duration, parent uint64, labels obs.Labels) uint64 {
	id := obs.NewSpanID()
	ct.trc.merged.Add(obs.Span{
		Trace: ct.trc.traceID, ID: id, Parent: parent,
		Name: name, Track: track, Start: start, Dur: dur, Labels: labels,
	})
	return id
}

// instant records a zero-duration marker (rejoins, deaths, reclaims).
func (ct *ctrace) instant(track, name string, labels obs.Labels) {
	ct.span(track, name, time.Now(), 0, ct.trc.rootID, labels)
}

// hop records one traced column visit: the coordinator-measured
// dispatch→return envelope on the worker's track, with the worker's shipped
// phases anchored inside it. sentAt/recvAt are the coordinator's own
// timestamps for the ColTask send and ColDone receipt.
func (ct *ctrace) hop(workerID int, hopSpan uint64, col int32, n uint32, sentAt, recvAt time.Time, spans []wireSpan) {
	track := workerTrack(workerID)
	ct.trc.merged.Add(obs.Span{
		Trace: ct.trc.traceID, ID: hopSpan, Parent: ct.trc.rootID,
		Name: "hop", Track: track, Start: sentAt, Dur: recvAt.Sub(sentAt),
		Labels: obs.Labels{"col": strconv.Itoa(int(col)), "nratings": strconv.Itoa(int(n))},
	})
	if len(spans) == 0 {
		return
	}
	// The worker's oldest span starts at its frame receipt, so the largest
	// Age is its recv→send wall time; what the round trip measured beyond
	// that was transit, split evenly between the two directions.
	var wall uint64
	for _, s := range spans {
		if s.Age > wall {
			wall = s.Age
		}
	}
	transit := recvAt.Sub(sentAt) - time.Duration(wall)
	if transit < 0 {
		transit = 0
	}
	anchor := recvAt.Add(-transit / 2) // the worker's send instant, our clock
	ct.anchorSpans(track, anchor, ct.trc.traceID, hopSpan, spans)
}

// heartbeatSpans places spans carried by a heartbeat. With no round trip to
// split, the batch is anchored at the receive instant — at worst one-way
// transit early, which on a training link is far below span durations.
func (ct *ctrace) heartbeatSpans(workerID int, recvAt time.Time, spans []wireSpan) {
	if !ct.started() || len(spans) == 0 {
		return
	}
	parent := ct.trc.rootID
	if ct.barrierID != 0 {
		parent = ct.barrierID
	}
	ct.anchorSpans(workerTrack(workerID), recvAt, ct.trc.traceID, parent, spans)
}

// anchorSpans converts a wire batch into merged spans against the given
// frame-send anchor.
func (ct *ctrace) anchorSpans(track string, anchor time.Time, traceID, parent uint64, spans []wireSpan) {
	for _, s := range spans {
		ct.trc.merged.Add(obs.Span{
			Trace: traceID, ID: obs.NewSpanID(), Parent: parent,
			Name:  wspanName(s.Kind),
			Track: track,
			Start: anchor.Add(-time.Duration(s.Age)),
			Dur:   time.Duration(s.Dur),
		})
	}
}

// beginBarrier opens the merge-barrier span on the traced epoch.
func (ct *ctrace) beginBarrier() (traceID, spanID uint64) {
	if !ct.armed {
		return 0, 0
	}
	ct.barrierID = obs.NewSpanID()
	ct.barrierStart = time.Now()
	return ct.trc.traceID, ct.barrierID
}

// seal closes the traced epoch: the barrier span (beginSync → all PSyncs
// merged), the eval and checkpoint spans measured by endEpoch, and the
// root epoch span. Tracing then disarms, but late heartbeat spans are
// still accepted (started() stays true).
func (ct *ctrace) seal(epoch1 int, barrierEnd time.Time, evalDur, ckptDur time.Duration) {
	if !ct.armed {
		return
	}
	if ct.barrierID != 0 {
		ct.trc.merged.Add(obs.Span{
			Trace: ct.trc.traceID, ID: ct.barrierID, Parent: ct.trc.rootID,
			Name: "barrier", Track: coordTrack,
			Start: ct.barrierStart, Dur: barrierEnd.Sub(ct.barrierStart),
		})
	}
	at := barrierEnd
	if evalDur > 0 {
		ct.span(coordTrack, "eval", at, evalDur, ct.trc.rootID, nil)
		at = at.Add(evalDur)
	}
	if ckptDur > 0 {
		ct.span(coordTrack, "checkpoint", at, ckptDur, ct.trc.rootID, nil)
		at = at.Add(ckptDur)
	}
	ct.trc.merged.Add(obs.Span{
		Trace: ct.trc.traceID, ID: ct.trc.rootID,
		Name: fmt.Sprintf("epoch %d", epoch1), Track: coordTrack,
		Start: ct.epochStart, Dur: at.Sub(ct.epochStart),
	})
	ct.armed = false
}

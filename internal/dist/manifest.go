package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Manifest is the small durable record that makes a coordinator crash
// recoverable: written atomically next to every merged epoch checkpoint,
// it names the run and pins everything a restarted coordinator needs to
// rebuild the cluster state the checkpoint belongs to — the completed
// epoch, the hyperparameters, and the row-partition boundaries in force
// when the checkpoint was cut. Workers hold the rest (their rating
// partitions are re-derived from the shared input file on re-Assign), so
// manifest + checkpoint together are a full resume point with exactly-once
// per-epoch semantics: anything after the recorded epoch is discarded by
// design.
type Manifest struct {
	RunID  uint64 `json:"run_id"`
	Epoch  int    `json:"epoch"`  // completed (durably checkpointed) epochs
	Epochs int    `json:"epochs"` // total epochs the run is configured for

	K       int     `json:"k"`
	LambdaP float32 `json:"lambda_p"`
	LambdaQ float32 `json:"lambda_q"`
	Gamma   float32 `json:"gamma"`
	Seed    int64   `json:"seed"`

	Workers int   `json:"workers"`
	Rows    int   `json:"rows"`
	Cols    int   `json:"cols"`
	Bounds  []int `json:"bounds"` // live row-partition boundaries, len Workers'+1

	SavedAt string `json:"saved_at_utc"`
}

// ManifestPath is where the manifest for a checkpoint file lives.
func ManifestPath(checkpoint string) string { return checkpoint + ".manifest" }

// SaveAtomic writes the manifest to path with the same temp-file-plus-
// rename discipline as the model checkpoints, so a crash mid-write leaves
// the previous manifest intact rather than a torn one.
func (m *Manifest) SaveAtomic(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadManifest reads and validates a run manifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dist: parsing manifest %s: %w", path, err)
	}
	if m.RunID == 0 || m.K <= 0 || m.Epochs <= 0 || m.Workers < 1 {
		return nil, fmt.Errorf("dist: manifest %s is incomplete (run_id=%d k=%d epochs=%d workers=%d)",
			path, m.RunID, m.K, m.Epochs, m.Workers)
	}
	if m.Epoch < 0 || m.Epoch > m.Epochs {
		return nil, fmt.Errorf("dist: manifest %s epoch %d outside [0,%d]", path, m.Epoch, m.Epochs)
	}
	return &m, nil
}

// manifest snapshots the coordinator's current durable state. Bounds are
// the live workers' partitions in row order; a worker idling with an empty
// range (a mid-epoch rejoin that has not been re-sharded yet) contributes
// nothing.
func (c *coordinator) manifest() *Manifest {
	var bounds []int
	lo := -1
	for {
		var next *workerState
		for _, w := range c.workers {
			if !w.alive || w.hi == w.lo || w.lo <= lo {
				continue
			}
			if next == nil || w.lo < next.lo {
				next = w
			}
		}
		if next == nil {
			break
		}
		if len(bounds) == 0 {
			bounds = append(bounds, next.lo)
		}
		bounds = append(bounds, next.hi)
		lo = next.lo
	}
	return &Manifest{
		RunID: c.cfg.RunID, Epoch: c.epoch, Epochs: c.cfg.Epochs,
		K: c.cfg.K, LambdaP: c.cfg.LambdaP, LambdaQ: c.cfg.LambdaQ,
		Gamma: c.cfg.Gamma, Seed: c.cfg.Seed,
		Workers: c.cfg.Workers, Rows: c.train.Rows, Cols: c.train.Cols,
		Bounds:  bounds,
		SavedAt: time.Now().UTC().Format(time.RFC3339),
	}
}

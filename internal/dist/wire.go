// Package dist is the multi-node NOMAD trainer: users (P rows) are
// statically partitioned across worker processes and item-column (Q)
// ownership circulates over a real transport. One coordinator assigns row
// partitions, seeds initial column ownership, routes circulating columns
// with online-fitted per-node cost models (internal/cost), runs epoch
// accounting, and merges per-worker factor partitions into a single
// model.SaveFileAtomic snapshot the serving layer hot-swaps live.
//
// The topology is hub-and-spoke: workers dial the coordinator and every
// column hop passes through it (dispatch → worker → return). Compared to
// NOMAD's peer-to-peer hand-off this doubles the messages per hop, but it
// gives the coordinator an always-current copy of Q and exact ownership
// knowledge — which is what makes fault tolerance tractable: when a worker
// drops (connection error, heartbeat silence, or a stalled in-flight
// column), the coordinator reclaims the columns it held from their
// last-returned state and re-routes them to the surviving workers instead
// of stalling the epoch. Within one epoch every column visits every live
// worker that holds ratings for it exactly once, so each rating is applied
// once per epoch — the same accounting as one round of internal/nomad.
//
// The wire format is deliberately tiny: length-prefixed frames of
// little-endian fields (encoding/binary, no external dependencies). See
// frame.go for the framing and retry discipline and transport.go for the
// TCP and in-memory transports.
package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// protocolVersion is checked at handshake; coordinator and workers must be
// built from the same protocol generation. Version 2 added run identity to
// the handshake (hello.RunID/PrevID, welcome.RunID) for worker rejoin and
// coordinator resume. Version 3 added cluster observability: trace context
// on ColTask and EpochSync, span batches on ColDone and Heartbeat, and a
// per-worker metric snapshot on every Heartbeat.
const protocolVersion = 3

// maxSpansPerFrame bounds the span batch a frame may carry, so a corrupt
// count cannot trigger a giant allocation and a traced worker cannot drown
// the coordinator in spans (a column visit records a handful).
const maxSpansPerFrame = 256

// noPrevID is hello.PrevID's sentinel for a worker that has never held a
// slot in this run (a fresh join rather than a rejoin).
const noPrevID = ^uint32(0)

// msgType discriminates frames. The handshake is Hello → Welcome → Assign;
// training is ColTask/ColDone with interleaved Heartbeats; epoch boundaries
// are EpochSync → PSync (and possibly a re-Assign when the row partition
// moved); Done ends the session.
type msgType uint8

const (
	mHello     msgType = 1 + iota // worker → coordinator: version check
	mWelcome                      // coordinator → worker: id + heartbeat cadence
	mAssign                       // coordinator → worker: hypers + row range + P rows
	mColTask                      // coordinator → worker: one column visit
	mColDone                      // worker → coordinator: updated column + cost sample
	mEpochSync                    // coordinator → worker: request the P partition
	mPSync                        // worker → coordinator: the P partition
	mHeartbeat                    // worker → coordinator: liveness when idle
	mDone                         // coordinator → worker: training finished, exit
)

func (t msgType) String() string {
	switch t {
	case mHello:
		return "hello"
	case mWelcome:
		return "welcome"
	case mAssign:
		return "assign"
	case mColTask:
		return "coltask"
	case mColDone:
		return "coldone"
	case mEpochSync:
		return "epochsync"
	case mPSync:
		return "psync"
	case mHeartbeat:
		return "heartbeat"
	case mDone:
		return "done"
	}
	return fmt.Sprintf("msgType(%d)", uint8(t))
}

// hello opens a worker session. RunID is 0 on a fresh join; a rejoining
// worker echoes the run it was welcomed into, and PrevID the slot it held,
// so a (possibly restarted) coordinator can treat it as the same worker
// instead of a stranger. PrevID is noPrevID when the worker never had one.
type hello struct {
	Version uint32
	RunID   uint64
	PrevID  uint32
}

// welcome acknowledges a worker, sets its heartbeat cadence, and names the
// run so the worker can identify itself if it ever has to rejoin.
type welcome struct {
	ID             uint32
	HeartbeatMilli uint32
	RunID          uint64
}

// assign hands a worker its hyperparameters and row partition [RowLo,RowHi)
// together with the current P rows of that range. Sent once at handshake
// and again whenever the coordinator re-solves the partition (the α-split
// across machines); Epoch is the first epoch the assignment applies to.
type assign struct {
	Epoch            uint32
	K                uint32
	Epochs           uint32
	LambdaP, LambdaQ float32
	Gamma            float32
	RowLo, RowHi     uint32
	P                []float32 // (RowHi-RowLo)·K row factors
}

// colTask hands ownership of column Col (and its factor vector Q) to the
// receiving worker for one visit. TraceID/SpanID carry the coordinator's
// trace context for the hop: nonzero while the epoch is being traced, in
// which case the worker times the visit's phases and returns them as spans
// on the ColDone (SpanID is the parent they hang under).
type colTask struct {
	Epoch   uint32
	Col     uint32
	TraceID uint64
	SpanID  uint64
	Q       []float32
}

// wireSpan is one worker-side timed phase shipped back for trace merging.
// Clocks are never compared across machines: Age is how many nanoseconds
// before the carrying frame's send instant the phase started, and the
// coordinator anchors the batch against its own send/receive timestamps
// (RTT-midpoint transit estimate), so skewed wall clocks cannot misplace
// spans on the merged timeline.
type wireSpan struct {
	Kind uint8
	Age  uint64 // ns between span start and the carrying frame's send
	Dur  uint64 // ns
}

// Worker span kinds. Names are rendered by the coordinator's trace merge.
const (
	wspanRecv   = 1 + iota // frame receipt + decode, up to kernel start
	wspanKernel            // the SGD loop over the column's ratings
	wspanReply             // kernel end to the ColDone send
	wspanPSync             // building + sending the epoch-boundary P sync
)

func wspanName(kind uint8) string {
	switch kind {
	case wspanRecv:
		return "recv"
	case wspanKernel:
		return "kernel"
	case wspanReply:
		return "reply"
	case wspanPSync:
		return "psync"
	}
	return fmt.Sprintf("span(%d)", kind)
}

// colDone returns an updated column to the coordinator, together with the
// cost sample (ratings applied, processing nanoseconds) that feeds the
// per-node online cost model, and — on traced hops — the visit's phase
// spans.
type colDone struct {
	Epoch    uint32
	Col      uint32
	NRatings uint32
	Nanos    uint64
	Spans    []wireSpan
	Q        []float32
}

// hbStat is the metric snapshot every heartbeat carries: the worker's
// session totals, from which the coordinator federates whole-cluster
// throughput on /clusterz without a scrape fan-out. Spans carries phases
// that had no ColDone to ride on (the epoch-boundary P sync).
type hbStat struct {
	Cols        uint64 // column visits completed this session
	Ratings     uint64 // ratings applied this session
	KernelNanos uint64 // cumulative SGD kernel time
	Spans       []wireSpan
}

// epochSync asks a worker for its P partition at a quiesced epoch boundary.
// TraceID/SpanID carry the barrier's trace context on traced epochs so the
// worker's psync span can hang under the coordinator's barrier span.
type epochSync struct {
	Epoch   uint32
	TraceID uint64
	SpanID  uint64
}

// pSync carries a worker's P partition back for merging.
type pSync struct {
	Epoch        uint32
	RowLo, RowHi uint32
	P            []float32
}

// --- encoding ---
//
// Fields are appended little-endian in declaration order; float32 slices
// are length-prefixed with a uint32 element count. Decoding validates the
// length prefix against the remaining payload before allocating.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF32(b []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
}

func appendF32s(b []byte, v []float32) []byte {
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(x))
	}
	return b
}

// appendSpans encodes a count-prefixed span batch (17 bytes per span).
func appendSpans(b []byte, spans []wireSpan) []byte {
	b = appendU32(b, uint32(len(spans)))
	for _, s := range spans {
		b = append(b, s.Kind)
		b = appendU64(b, s.Age)
		b = appendU64(b, s.Dur)
	}
	return b
}

// dec is a cursor over one frame payload; the first malformed field poisons
// it and every later read returns zero values.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.err = fmt.Errorf("dist: truncated frame at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.err = fmt.Errorf("dist: truncated frame at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f32() float32 { return math.Float32frombits(d.u32()) }

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.err = fmt.Errorf("dist: truncated frame at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) spans() []wireSpan {
	n := d.u32()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > maxSpansPerFrame {
		d.err = fmt.Errorf("dist: span batch of %d exceeds the %d cap", n, maxSpansPerFrame)
		return nil
	}
	if d.off+17*int(n) > len(d.b) {
		d.err = fmt.Errorf("dist: span batch of %d entries overruns frame", n)
		return nil
	}
	v := make([]wireSpan, n)
	for i := range v {
		v[i] = wireSpan{Kind: d.u8(), Age: d.u64(), Dur: d.u64()}
	}
	return v
}

func (d *dec) f32s() []float32 {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if d.off+4*int(n) > len(d.b) {
		d.err = fmt.Errorf("dist: float32 slice of %d elements overruns frame", n)
		return nil
	}
	v := make([]float32, n)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return v
}

func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("dist: %d trailing bytes in frame", len(d.b)-d.off)
	}
	return nil
}

func (m hello) encode() []byte {
	return appendU32(appendU64(appendU32(nil, m.Version), m.RunID), m.PrevID)
}

func decodeHello(b []byte) (hello, error) {
	d := &dec{b: b}
	m := hello{Version: d.u32(), RunID: d.u64(), PrevID: d.u32()}
	return m, d.finish()
}

func (m welcome) encode() []byte {
	return appendU64(appendU32(appendU32(nil, m.ID), m.HeartbeatMilli), m.RunID)
}

func decodeWelcome(b []byte) (welcome, error) {
	d := &dec{b: b}
	m := welcome{ID: d.u32(), HeartbeatMilli: d.u32(), RunID: d.u64()}
	return m, d.finish()
}

func (m assign) encode() []byte {
	b := make([]byte, 0, 32+4+4*len(m.P))
	b = appendU32(b, m.Epoch)
	b = appendU32(b, m.K)
	b = appendU32(b, m.Epochs)
	b = appendF32(b, m.LambdaP)
	b = appendF32(b, m.LambdaQ)
	b = appendF32(b, m.Gamma)
	b = appendU32(b, m.RowLo)
	b = appendU32(b, m.RowHi)
	b = appendF32s(b, m.P)
	return b
}

func decodeAssign(b []byte) (assign, error) {
	d := &dec{b: b}
	m := assign{
		Epoch: d.u32(), K: d.u32(), Epochs: d.u32(),
		LambdaP: d.f32(), LambdaQ: d.f32(), Gamma: d.f32(),
		RowLo: d.u32(), RowHi: d.u32(),
		P: d.f32s(),
	}
	if err := d.finish(); err != nil {
		return m, err
	}
	if m.RowHi < m.RowLo || len(m.P) != int(m.RowHi-m.RowLo)*int(m.K) {
		return m, fmt.Errorf("dist: assign rows [%d,%d) k=%d but %d P values", m.RowLo, m.RowHi, m.K, len(m.P))
	}
	return m, nil
}

func (m colTask) encode() []byte {
	b := make([]byte, 0, 28+4*len(m.Q))
	b = appendU32(b, m.Epoch)
	b = appendU32(b, m.Col)
	b = appendU64(b, m.TraceID)
	b = appendU64(b, m.SpanID)
	b = appendF32s(b, m.Q)
	return b
}

func decodeColTask(b []byte) (colTask, error) {
	d := &dec{b: b}
	m := colTask{Epoch: d.u32(), Col: d.u32(), TraceID: d.u64(), SpanID: d.u64(), Q: d.f32s()}
	return m, d.finish()
}

func (m colDone) encode() []byte {
	b := make([]byte, 0, 28+17*len(m.Spans)+4*len(m.Q))
	b = appendU32(b, m.Epoch)
	b = appendU32(b, m.Col)
	b = appendU32(b, m.NRatings)
	b = appendU64(b, m.Nanos)
	b = appendSpans(b, m.Spans)
	b = appendF32s(b, m.Q)
	return b
}

func decodeColDone(b []byte) (colDone, error) {
	d := &dec{b: b}
	m := colDone{Epoch: d.u32(), Col: d.u32(), NRatings: d.u32(), Nanos: d.u64(), Spans: d.spans(), Q: d.f32s()}
	return m, d.finish()
}

func (m hbStat) encode() []byte {
	b := make([]byte, 0, 28+17*len(m.Spans))
	b = appendU64(b, m.Cols)
	b = appendU64(b, m.Ratings)
	b = appendU64(b, m.KernelNanos)
	b = appendSpans(b, m.Spans)
	return b
}

// decodeHBStat tolerates an empty payload (a bare liveness heartbeat, the
// v2 form) so heartbeats degrade to pure liveness if a sender skips the
// snapshot.
func decodeHBStat(b []byte) (hbStat, error) {
	if len(b) == 0 {
		return hbStat{}, nil
	}
	d := &dec{b: b}
	m := hbStat{Cols: d.u64(), Ratings: d.u64(), KernelNanos: d.u64(), Spans: d.spans()}
	return m, d.finish()
}

func (m epochSync) encode() []byte {
	return appendU64(appendU64(appendU32(nil, m.Epoch), m.TraceID), m.SpanID)
}

func decodeEpochSync(b []byte) (epochSync, error) {
	d := &dec{b: b}
	m := epochSync{Epoch: d.u32(), TraceID: d.u64(), SpanID: d.u64()}
	return m, d.finish()
}

func (m pSync) encode() []byte {
	b := make([]byte, 0, 16+4*len(m.P))
	b = appendU32(b, m.Epoch)
	b = appendU32(b, m.RowLo)
	b = appendU32(b, m.RowHi)
	b = appendF32s(b, m.P)
	return b
}

func decodePSync(b []byte) (pSync, error) {
	d := &dec{b: b}
	m := pSync{Epoch: d.u32(), RowLo: d.u32(), RowHi: d.u32(), P: d.f32s()}
	if err := d.finish(); err != nil {
		return m, err
	}
	if m.RowHi < m.RowLo {
		return m, fmt.Errorf("dist: psync rows [%d,%d)", m.RowLo, m.RowHi)
	}
	return m, nil
}

// Package dataset generates the synthetic benchmark datasets the
// experiments run on. The paper evaluates on MovieLens, Netflix, R1 and
// Yahoo!Music (Table I); those corpora are not redistributable and their
// full sizes (up to 252.8M ratings) exceed this environment, so each is
// replaced by a scaled-down synthetic equivalent that preserves what the
// experiments actually depend on: the relative size ordering, row/column
// popularity skew, a genuine low-rank structure (so RMSE trajectories are
// meaningful), and the paper's hyperparameters and target losses.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

// Spec describes one synthetic benchmark dataset.
type Spec struct {
	Name         string
	Rows, Cols   int
	TrainRatings int
	TestRatings  int

	MinRating, MaxRating float32
	TrueRank             int     // rank of the planted ground truth
	NoiseStd             float64 // gaussian noise added to planted ratings
	ZipfS                float64 // popularity skew exponent of rows and columns
	// ZipfVFrac sets the Zipf offset v as a fraction of the dimension; it
	// flattens the head so the most popular row/column holds a realistic
	// share (<1%) of the ratings rather than a double-digit percentage.
	// Zero means the default of 2%.
	ZipfVFrac float64

	// Paper hyperparameters (Table I) and the predefined target loss used
	// by the time-to-target experiments (Section VII-A).
	K          int
	LambdaP    float32
	LambdaQ    float32
	Gamma      float32
	TargetRMSE float64
}

// Params returns the paper's hyperparameters for this dataset as SGD
// training parameters (with a default 20-iteration budget).
func (s Spec) Params() sgd.Params {
	return sgd.Params{K: s.K, LambdaP: s.LambdaP, LambdaQ: s.LambdaQ, Gamma: s.Gamma, Iters: 20}
}

// Scale returns a copy with the rating counts multiplied by f and the
// dimensions by √f, preserving density. Used by tests and benches to shrink
// workloads further.
func (s Spec) Scale(f float64) Spec {
	if f <= 0 || f == 1 {
		return s
	}
	dim := sqrt(f)
	s.Rows = maxInt(8, int(float64(s.Rows)*dim))
	s.Cols = maxInt(8, int(float64(s.Cols)*dim))
	s.TrainRatings = maxInt(64, int(float64(s.TrainRatings)*f))
	s.TestRatings = maxInt(16, int(float64(s.TestRatings)*f))
	return s
}

// MovieLens returns the MovieLens-shaped dataset (paper: 71,567×65,133,
// 9.3M train ratings on a 1–5 scale; here 1/100 of the rating count).
func MovieLens() Spec {
	return Spec{
		Name: "MovieLens", Rows: 3600, Cols: 3250,
		TrainRatings: 93000, TestRatings: 7000,
		MinRating: 1, MaxRating: 5, TrueRank: 12, NoiseStd: 0.55, ZipfS: 1.05,
		K: 128, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.005, TargetRMSE: 0.66,
	}
}

// Netflix returns the Netflix-shaped dataset (paper: 2,649,429×17,770,
// 99.1M train ratings on a 1–5 scale).
func Netflix() Spec {
	return Spec{
		Name: "Netflix", Rows: 26500, Cols: 1780,
		TrainRatings: 990000, TestRatings: 14000,
		MinRating: 1, MaxRating: 5, TrueRank: 12, NoiseStd: 0.72, ZipfS: 1.05,
		K: 128, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.005, TargetRMSE: 0.82,
	}
}

// R1 returns the Yahoo R1-shaped dataset (paper: 1,948,883×1,101,750,
// 104.2M train ratings on a 0–100 scale).
func R1() Spec {
	return Spec{
		Name: "R1", Rows: 19500, Cols: 11000,
		TrainRatings: 1040000, TestRatings: 113000,
		MinRating: 0, MaxRating: 100, TrueRank: 12, NoiseStd: 17, ZipfS: 1.05,
		K: 128, LambdaP: 1, LambdaQ: 1, Gamma: 0.002, TargetRMSE: 20,
	}
}

// YahooMusic returns the Yahoo!Music-shaped dataset (paper:
// 1,000,990×624,961, 252.8M train ratings on a 0–100 scale — the largest).
func YahooMusic() Spec {
	return Spec{
		Name: "Yahoo!Music", Rows: 10000, Cols: 6250,
		TrainRatings: 2528000, TestRatings: 40000,
		MinRating: 0, MaxRating: 100, TrueRank: 12, NoiseStd: 16, ZipfS: 1.05,
		K: 128, LambdaP: 1, LambdaQ: 1, Gamma: 0.002, TargetRMSE: 19,
	}
}

// Benchmarks returns the four paper datasets in Table I order.
func Benchmarks() []Spec {
	return []Spec{MovieLens(), Netflix(), R1(), YahooMusic()}
}

// ByName resolves a benchmark spec from a user-facing name
// (case-insensitive prefix: "movielens", "netflix", "r1", "yahoo") — the
// single lookup the CLI commands share.
func ByName(name string) (Spec, error) {
	want := strings.ToLower(name)
	for _, s := range Benchmarks() {
		full := strings.ToLower(s.Name)
		if want != "" && strings.HasPrefix(strings.Map(alnum, full), strings.Map(alnum, want)) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown name %q (want movielens|netflix|r1|yahoo)", name)
}

// alnum drops punctuation so "yahoo" matches "Yahoo!Music".
func alnum(r rune) rune {
	if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
		return r
	}
	return -1
}

// Generate plants a rank-TrueRank ground truth, samples Zipf-distributed
// (row, col) pairs, and emits noisy planted ratings clamped to the rating
// range. Train and test sets are disjoint samples from the same
// distribution.
func Generate(s Spec, seed int64) (train, test *sparse.Matrix, err error) {
	if s.Rows < 2 || s.Cols < 2 {
		return nil, nil, fmt.Errorf("dataset: %s: dimensions too small (%dx%d)", s.Name, s.Rows, s.Cols)
	}
	if s.TrueRank < 1 {
		return nil, nil, fmt.Errorf("dataset: %s: TrueRank must be >= 1", s.Name)
	}
	if s.ZipfS <= 1 {
		return nil, nil, fmt.Errorf("dataset: %s: ZipfS must be > 1 for rand.Zipf", s.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	g := newPlanted(s, rng)
	train = g.sample(s.TrainRatings, rng)
	test = g.sample(s.TestRatings, rng)
	return train, test, nil
}

// planted holds the ground-truth factors and samplers.
type planted struct {
	spec    Spec
	p, q    []float32 // row-major TrueRank vectors
	rowZipf *rand.Zipf
	colZipf *rand.Zipf
	rowShuf []int32 // random relabeling so Zipf mass is not id-ordered
	colShuf []int32
}

func newPlanted(s Spec, rng *rand.Rand) *planted {
	g := &planted{spec: s}
	// Scale factor entries so the expected dot product sits mid-range.
	mid := float64(s.MinRating) + 0.5*float64(s.MaxRating-s.MinRating)
	amp := float32(sqrt(4 * mid / float64(s.TrueRank))) // E[dot] = rank·(amp/2)² = mid
	g.p = make([]float32, s.Rows*s.TrueRank)
	g.q = make([]float32, s.Cols*s.TrueRank)
	for i := range g.p {
		g.p[i] = rng.Float32() * amp
	}
	for i := range g.q {
		g.q[i] = rng.Float32() * amp
	}
	vfrac := s.ZipfVFrac
	if vfrac <= 0 {
		vfrac = 0.02
	}
	g.rowZipf = rand.NewZipf(rng, s.ZipfS, zipfV(vfrac, s.Rows), uint64(s.Rows-1))
	g.colZipf = rand.NewZipf(rng, s.ZipfS, zipfV(vfrac, s.Cols), uint64(s.Cols-1))
	g.rowShuf = shuffledIDs(s.Rows, rng)
	g.colShuf = shuffledIDs(s.Cols, rng)
	return g
}

func (g *planted) sample(n int, rng *rand.Rand) *sparse.Matrix {
	s := g.spec
	m := &sparse.Matrix{Rows: s.Rows, Cols: s.Cols, Ratings: make([]sparse.Rating, 0, n)}
	for i := 0; i < n; i++ {
		u := g.rowShuf[g.rowZipf.Uint64()]
		v := g.colShuf[g.colZipf.Uint64()]
		val := g.rating(u, v, rng)
		m.Ratings = append(m.Ratings, sparse.Rating{Row: u, Col: v, Value: val})
	}
	return m
}

func (g *planted) rating(u, v int32, rng *rand.Rand) float32 {
	k := g.spec.TrueRank
	var dot float32
	pu := g.p[int(u)*k : (int(u)+1)*k]
	qv := g.q[int(v)*k : (int(v)+1)*k]
	for i := 0; i < k; i++ {
		dot += pu[i] * qv[i]
	}
	val := dot + float32(rng.NormFloat64()*g.spec.NoiseStd)
	if val < g.spec.MinRating {
		val = g.spec.MinRating
	}
	if val > g.spec.MaxRating {
		val = g.spec.MaxRating
	}
	return val
}

func zipfV(frac float64, n int) float64 {
	v := frac * float64(n)
	if v < 1 {
		return 1
	}
	return v
}

func shuffledIDs(n int, rng *rand.Rand) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package dataset

import (
	"testing"
	"testing/quick"
)

func TestGenerateShapes(t *testing.T) {
	for _, spec := range Benchmarks() {
		spec := spec.Scale(0.01)
		train, test, err := Generate(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if train.NNZ() != spec.TrainRatings || test.NNZ() != spec.TestRatings {
			t.Fatalf("%s sizes %d/%d", spec.Name, train.NNZ(), test.NNZ())
		}
		if err := train.Validate(); err != nil {
			t.Fatalf("%s train invalid: %v", spec.Name, err)
		}
		if err := test.Validate(); err != nil {
			t.Fatalf("%s test invalid: %v", spec.Name, err)
		}
		stats := train.ComputeStats()
		if stats.MinValue < spec.MinRating || stats.MaxValue > spec.MaxRating {
			t.Fatalf("%s ratings outside [%v,%v]: [%v,%v]",
				spec.Name, spec.MinRating, spec.MaxRating, stats.MinValue, stats.MaxValue)
		}
	}
}

func TestSizeOrderingMatchesPaper(t *testing.T) {
	specs := Benchmarks()
	// Table I ordering: MovieLens < Netflix < R1 < Yahoo!Music.
	for i := 1; i < len(specs); i++ {
		if specs[i].TrainRatings <= specs[i-1].TrainRatings {
			t.Fatalf("%s (%d) not larger than %s (%d)",
				specs[i].Name, specs[i].TrainRatings, specs[i-1].Name, specs[i-1].TrainRatings)
		}
	}
}

func TestPopularityHeadBounded(t *testing.T) {
	spec := MovieLens().Scale(0.2)
	train, _, err := Generate(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	nnz := float64(train.NNZ())
	for _, c := range train.RowCounts() {
		if float64(c)/nnz > 0.02 {
			t.Fatalf("one row holds %.1f%% of ratings", 100*float64(c)/nnz)
		}
	}
	for _, c := range train.ColCounts() {
		if float64(c)/nnz > 0.02 {
			t.Fatalf("one column holds %.1f%% of ratings", 100*float64(c)/nnz)
		}
	}
}

func TestPopularitySkewExists(t *testing.T) {
	spec := Netflix().Scale(0.05)
	train, _, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := train.ColCounts()
	maxC, sum, active := 0, 0, 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		sum += c
		if c > 0 {
			active++
		}
	}
	mean := float64(sum) / float64(active)
	if float64(maxC) < 3*mean {
		t.Fatalf("no skew: max %d vs mean %.1f", maxC, mean)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	spec := MovieLens().Scale(0.02)
	a, _, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatal("sizes differ")
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c, _, err := Generate(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Ratings {
		if a.Ratings[i] != c.Ratings[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestScale(t *testing.T) {
	s := MovieLens()
	half := s.Scale(0.25)
	if half.TrainRatings != s.TrainRatings/4 {
		t.Fatalf("ratings scaled to %d", half.TrainRatings)
	}
	if half.Rows >= s.Rows || half.Cols >= s.Cols {
		t.Fatal("dims not scaled")
	}
	if got := s.Scale(1); got.Rows != s.Rows {
		t.Fatal("Scale(1) changed the spec")
	}
	tiny := s.Scale(1e-9)
	if tiny.Rows < 8 || tiny.TrainRatings < 64 {
		t.Fatalf("floors not applied: %+v", tiny)
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := MovieLens()
	bad.Rows = 1
	if _, _, err := Generate(bad, 1); err == nil {
		t.Fatal("1-row matrix accepted")
	}
	bad = MovieLens()
	bad.TrueRank = 0
	if _, _, err := Generate(bad, 1); err == nil {
		t.Fatal("rank 0 accepted")
	}
	bad = MovieLens()
	bad.ZipfS = 1.0
	if _, _, err := Generate(bad, 1); err == nil {
		t.Fatal("ZipfS=1 accepted")
	}
}

func TestParams(t *testing.T) {
	p := YahooMusic().Params()
	if p.K != 128 || p.LambdaP != 1 || p.Iters != 20 {
		t.Fatalf("params = %+v", p)
	}
}

// Property: generation respects the declared rating bounds and dimensions
// for arbitrary scales.
func TestQuickGenerateInBounds(t *testing.T) {
	f := func(seed int64, scalePct uint8) bool {
		scale := (float64(scalePct%50) + 1) / 1000 // 0.001 .. 0.05
		spec := R1().Scale(scale)
		train, _, err := Generate(spec, seed)
		if err != nil {
			return false
		}
		for _, r := range train.Ratings {
			if r.Row < 0 || int(r.Row) >= spec.Rows || r.Col < 0 || int(r.Col) >= spec.Cols {
				return false
			}
			if r.Value < spec.MinRating || r.Value > spec.MaxRating {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

package serve

import (
	"container/list"
	"sync"
)

// resultCache is a small mutex-guarded LRU for rendered responses
// (recommend, similar-items). The server's keys carry the snapshot version
// — that is what makes a stale entry unreachable, including one Put by a
// request racing a hot-swap — and the purge on swap is memory reclamation
// on top, so old-version entries don't linger until LRU eviction.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// newResultCache returns a cache holding up to capacity entries; a
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *resultCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) Put(key string, val []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Purge drops every entry — called on snapshot hot-swap.
func (c *resultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

package serve

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"hsgd/internal/model"
)

func randomFactors(m, n, k int, seed int64) *model.Factors {
	return model.NewFactors(m, n, k, rand.New(rand.NewSource(seed)))
}

// The sharded scan must return exactly the items of the serial TopN scan,
// for any shard count, including shard counts that don't divide the item
// space evenly.
func TestScorerMatchesSerialTopN(t *testing.T) {
	f := randomFactors(6, 9001, 16, 1) // above serialCutoff, odd size
	seen := map[int32]bool{3: true, 700: true, 8999: true, -5: true, 99999: true}
	for _, shards := range []int{1, 2, 3, 8, 16} {
		s := &Scorer{Shards: shards}
		for u := int32(0); u < 6; u++ {
			got := s.Recommend(f, u, 20, seen)
			want := f.TopN(u, 20, seen)
			if len(got) != len(want) {
				t.Fatalf("shards=%d user=%d: %d items, want %d", shards, u, len(got), len(want))
			}
			for i := range want {
				if got[i].Item != want[i] {
					t.Fatalf("shards=%d user=%d rank %d: item %d, want %d",
						shards, u, i, got[i].Item, want[i])
				}
				if math.Abs(float64(got[i].Score-f.Predict(u, got[i].Item))) > 1e-5 {
					t.Fatalf("score %v != predict %v", got[i].Score, f.Predict(u, got[i].Item))
				}
			}
		}
	}
}

func TestScorerEdgeCases(t *testing.T) {
	f := randomFactors(3, 50, 8, 2)
	s := &Scorer{Shards: 4}
	if got := s.Recommend(f, 99, 5, nil); got != nil {
		t.Fatalf("out-of-range user returned %v", got)
	}
	if got := s.Recommend(f, 0, 0, nil); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := s.RecommendVector(f, make([]float32, 3), 5, nil); got != nil {
		t.Fatalf("wrong-length query returned %v", got)
	}
	// k larger than the item count returns everything, ranked.
	got := s.Recommend(f, 0, 500, nil)
	if len(got) != 50 {
		t.Fatalf("k>N returned %d items", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("results not sorted at %d", i)
		}
	}
	// All items seen -> empty.
	all := make(map[int32]bool)
	for v := int32(0); v < 50; v++ {
		all[v] = true
	}
	if got := s.Recommend(f, 0, 5, all); len(got) != 0 {
		t.Fatalf("all-seen returned %v", got)
	}
}

// RecommendVector with the user's own trained row must agree with Recommend.
func TestRecommendVectorConsistent(t *testing.T) {
	f := randomFactors(2, 6000, 12, 3)
	s := &Scorer{Shards: 3}
	a := s.Recommend(f, 1, 10, nil)
	b := s.RecommendVector(f, f.Row(1), 10, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v != %v", i, a[i], b[i])
		}
	}
}

// The sharded cosine retrieval must agree with the serial reference in
// internal/model.
func TestScorerSimilarItemsMatchesModel(t *testing.T) {
	f := randomFactors(1, 7001, 16, 4)
	snapInv := invNorms(f)
	s := &Scorer{Shards: 5}
	for _, v := range []int32{0, 1234, 7000} {
		got := s.SimilarItems(f, snapInv, v, 15)
		want := f.SimilarItems(v, 15)
		if len(got) != len(want) {
			t.Fatalf("item %d: %d results, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i].Item != want[i].Item {
				t.Fatalf("item %d rank %d: %d, want %d", v, i, got[i].Item, want[i].Item)
			}
			if math.Abs(float64(got[i].Score-want[i].Score)) > 1e-4 {
				t.Fatalf("item %d rank %d: cos %v, want %v", v, i, got[i].Score, want[i].Score)
			}
		}
	}
	if got := s.SimilarItems(f, snapInv, 9999, 5); got != nil {
		t.Fatalf("out-of-range item returned %v", got)
	}
}

// BenchmarkTopKSharded measures full-catalog top-10 retrieval at the
// Netflix item count (n=17770, the paper's Table I) with k=64 factors,
// across shard counts, against the serial Factors.TopN scan as baseline.
// Run with: go test -bench TopK -benchtime 2s ./internal/serve
// BenchmarkTopKQuantized compares the exact float32 scan against the int8
// quantized scan with exact rerank on the Netflix item count (n=17770) with
// k=128 factors — the configuration where the float32 matrix (9.1 MB)
// spills out of L2 and the scan is bandwidth-bound, which is exactly what
// quantization attacks (2.3 MB scanned instead). Run with:
// go test -bench TopKQuantized -benchtime 2s ./internal/serve
func BenchmarkTopKQuantized(b *testing.B) {
	const (
		nItems = 17770
		kDim   = 128
		topK   = 10
	)
	f := centeredFactors(64, nItems, kDim, 7)
	qf := model.QuantizeItems(f)
	exactMB := float64(nItems*kDim*4) / 1e6
	quantMB := float64(nItems*kDim) / 1e6
	for _, shards := range []int{1, runtime.GOMAXPROCS(0)} {
		s := &Scorer{Shards: shards}
		b.Run(fmt.Sprintf("exact-shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Recommend(f, int32(i%f.M), topK, nil)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
			b.ReportMetric(exactMB, "MBscanned/op")
		})
		b.Run(fmt.Sprintf("quantized-shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.RecommendQuantized(f, qf, int32(i%f.M), topK, nil)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
			b.ReportMetric(quantMB, "MBscanned/op")
		})
	}
}

func BenchmarkTopKSharded(b *testing.B) {
	const (
		nItems = 17770
		kDim   = 64
		topK   = 10
	)
	f := randomFactors(64, nItems, kDim, 7)
	b.Run("serial-TopN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.TopN(int32(i%f.M), topK, nil)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
	for _, shards := range []int{1, 2, 4, 8, 16} {
		s := &Scorer{Shards: shards}
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Recommend(f, int32(i%f.M), topK, nil)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}

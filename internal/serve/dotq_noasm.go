//go:build !amd64

package serve

// Non-amd64 builds use the portable scalar kernel only.
const useDotQ4Asm = false

// dotQ4Asm is never called when useDotQ4Asm is false; this stub keeps the
// dispatch in dotQ4 compiling on every GOARCH.
func dotQ4Asm(q, a, b, c, d *int8, n int) (sa, sb, sc, sd int32) {
	panic("serve: dotQ4Asm unavailable on this architecture")
}

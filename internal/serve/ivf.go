package serve

import (
	"sync"

	"hsgd/internal/model"
)

// The IVF retrieval path: probe-and-rerank over the inverted-file index
// built at snapshot publish (model.BuildIVF). The linear scans — exact and
// int8 alike — are memory-bandwidth-bound, so past ~10× the Netflix
// catalog no kernel tweak helps; the IVF path touches fewer bytes instead.
// Per query: score the float32 centroid codebook, probe the posting lists
// of the top-nprobe centroids, int8-score only those lists' candidates
// through the same dotQ4 kernel as the quantized scan, and exact-rerank
// the float32 finalists. Returned scores are exact; the recall knob is
// nprobe (lists probed), stacked on the quantized path's rerank factor
// (candidates reranked).
//
// The probe scan runs on the calling goroutine: at default parameters it
// reads ~2% of the catalog, so a goroutine fan-out would cost more than
// the scan — and serving throughput comes from request-level concurrency.

// DefaultNProbeFraction sets the default probed share of the coarse lists:
// nprobe = nlist/16. At nlist = 4·√N that reads roughly a sixteenth of the
// catalog's int8 codes plus the full centroid codebook — measured
// recall@10 ≥ 0.95 with a ≥5× QPS win over the int8 linear scan at 10×
// Netflix scale (see BENCH_serve.json; recall saturates well before this
// probe depth on clustered factors, so the default keeps margin).
const DefaultNProbeFraction = 16

// DefaultNProbe returns the default probe count for an nlist-list index.
func DefaultNProbe(nlist int) int {
	p := nlist / DefaultNProbeFraction
	if p < 1 {
		p = 1
	}
	return p
}

// EffectiveNProbe resolves a configured probe count against an index's
// list count (<= 0 selects the default) — shared by the scan, /statsz and
// hsgd-serve's startup log.
func EffectiveNProbe(nprobe, nlist int) int {
	if nprobe <= 0 {
		nprobe = DefaultNProbe(nlist)
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	return nprobe
}

// ivfScratch is the reusable per-request state of the IVF path: the
// quantized query, the top-nprobe centroid heap, the candidate heap and
// the exact rerank heap. Pooled (and never allocated inside rankIVF) so
// the steady-state IVF recommend path stays allocation-free like the
// quantized scan.
type ivfScratch struct {
	qquery []int8
	probes *model.TopK // top-nprobe centroids by query·centroid
	cands  *model.TopK // approximate candidate heap (rerank·k entries)
	final  *model.TopK // exact rerank heap
}

var ivfPool = sync.Pool{New: func() any { return new(ivfScratch) }}

func (sc *ivfScratch) query(k int) []int8 {
	if cap(sc.qquery) < k {
		sc.qquery = make([]int8, k)
	}
	return sc.qquery[:k]
}

func (sc *ivfScratch) heap(h **model.TopK, k int) *model.TopK {
	if *h == nil {
		*h = model.NewTopK(k)
	} else {
		(*h).Reset(k)
	}
	return *h
}

// RecommendIVF is Recommend through the IVF probe-and-rerank path.
// Returns nil when u is out of range.
func (s *Scorer) RecommendIVF(f *model.Factors, ix *model.IVFIndex, u int32, k int, seen map[int32]bool) []model.ScoredItem {
	if int(u) < 0 || int(u) >= f.M {
		return nil
	}
	return s.recommendIVFAlloc(f, ix, f.Row(u), k, seen)
}

// RecommendVectorIVF ranks items for an arbitrary query vector (the
// fold-in entry point) through the IVF path. query must have length f.K.
func (s *Scorer) RecommendVectorIVF(f *model.Factors, ix *model.IVFIndex, query []float32, k int, seen map[int32]bool) []model.ScoredItem {
	if len(query) != f.K {
		return nil
	}
	return s.recommendIVFAlloc(f, ix, query, k, seen)
}

// RecommendIVFCounted is RecommendIVF returning the measured probe work
// too: the number of posting lists probed and the number of candidates
// int8-scored. The serve benchmark uses it to report bytes actually
// touched per query rather than an estimate.
func (s *Scorer) RecommendIVFCounted(f *model.Factors, ix *model.IVFIndex, u int32, k int, seen map[int32]bool) (res []model.ScoredItem, probed, cands int) {
	if int(u) < 0 || int(u) >= f.M {
		return nil, 0, 0
	}
	sc := ivfPool.Get().(*ivfScratch)
	r, probed, cands := s.rankIVF(f, ix, f.Row(u), k, seen, nil, -1, sc)
	res = append([]model.ScoredItem(nil), r...)
	ivfPool.Put(sc)
	return res, probed, cands
}

// SimilarItemsIVF is SimilarItems through the IVF candidate path: probed
// candidates are ranked by approximate cosine (approximate dot times the
// precomputed inverse norm) and the survivors rescored as exact float32
// cosines.
func (s *Scorer) SimilarItemsIVF(f *model.Factors, ix *model.IVFIndex, invNorms []float32, v int32, k int) []model.ScoredItem {
	if int(v) < 0 || int(v) >= f.N || len(invNorms) != f.N || invNorms[v] == 0 {
		return nil
	}
	qv := f.Colvec(v)
	query := make([]float32, f.K)
	for i, x := range qv {
		query[i] = x * invNorms[v]
	}
	sc := ivfPool.Get().(*ivfScratch)
	r, _, _ := s.rankIVF(f, ix, query, k, nil, invNorms, v, sc)
	out := append([]model.ScoredItem(nil), r...)
	ivfPool.Put(sc)
	return out
}

func (s *Scorer) recommendIVFAlloc(f *model.Factors, ix *model.IVFIndex, query []float32, k int, seen map[int32]bool) []model.ScoredItem {
	sc := ivfPool.Get().(*ivfScratch)
	r, _, _ := s.rankIVF(f, ix, query, k, seen, nil, -1, sc)
	out := append([]model.ScoredItem(nil), r...)
	ivfPool.Put(sc)
	return out
}

// rankIVF is the zero-allocation core of the IVF path. A non-nil scale
// (inverse norms, for similar-items) multiplies both the approximate and
// exact scores per item with zero-scale items skipped; exclude drops one
// id (-1 for none). The returned slice aliases sc and is valid until sc is
// reused; probed and cands report the lists probed and candidates
// int8-scored (the measured probe work /statsz and /metricz export). The
// caller must have checked len(query) == f.K.
func (s *Scorer) rankIVF(f *model.Factors, ix *model.IVFIndex, query []float32, k int, seen map[int32]bool, scale []float32, exclude int32, sc *ivfScratch) (res []model.ScoredItem, probed, cands int) {
	n := ix.N
	if k <= 0 || n == 0 {
		return nil, 0, 0
	}
	nprobe := EffectiveNProbe(s.NProbe, ix.NList)

	// Coarse stage: float32 scores of the query against every centroid,
	// keeping the top-nprobe lists. Same register-blocked scan shape as
	// scoreRange, with the centroid heap in place of the result heap.
	probes := sc.heap(&sc.probes, nprobe)
	kdim := ix.K
	var scores [scoreBlockItems]float32
	for b := 0; b < ix.NList; b += scoreBlockItems {
		e := min(b+scoreBlockItems, ix.NList)
		rows := ix.Centroids[b*kdim : e*kdim]
		cnt := e - b
		i := 0
		for ; i+4 <= cnt; i += 4 {
			quad := rows[i*kdim : (i+4)*kdim]
			scores[i], scores[i+1], scores[i+2], scores[i+3] = dot4(query,
				quad[:kdim], quad[kdim:2*kdim], quad[2*kdim:3*kdim], quad[3*kdim:])
		}
		for ; i < cnt; i++ {
			scores[i] = model.Dot(query, rows[i*kdim:(i+1)*kdim])
		}
		for i := 0; i < cnt; i++ {
			probes.Push(int32(b+i), scores[i])
		}
	}

	// Fine stage: stream the probed posting lists' contiguous int8 codes
	// through the quantized kernel into one bounded candidate heap. The
	// quantized query's scale cancels across items (it is a positive
	// constant), so only the per-item scale is applied — identical ranking
	// semantics to the linear quantized scan.
	qq := sc.query(kdim)
	model.QuantizeVectorInto(qq, query)
	candHeap := sc.heap(&sc.cands, k*EffectiveRerankFactor(s.RerankFactor))
	for _, p := range probes.Items() {
		lo, hi := int(ix.Starts[p.Item]), int(ix.Starts[p.Item+1])
		cands += hi - lo
		for b := lo; b < hi; b += scoreBlockItems {
			e := min(b+scoreBlockItems, hi)
			rows := ix.Codes[b*kdim : e*kdim]
			cnt := e - b
			i := 0
			for ; i+4 <= cnt; i += 4 {
				quad := rows[i*kdim : (i+4)*kdim]
				sa, sb, scc, sd := dotQ4(qq,
					quad[:kdim], quad[kdim:2*kdim], quad[2*kdim:3*kdim], quad[3*kdim:])
				scores[i] = float32(sa) * ix.Scales[b+i]
				scores[i+1] = float32(sb) * ix.Scales[b+i+1]
				scores[i+2] = float32(scc) * ix.Scales[b+i+2]
				scores[i+3] = float32(sd) * ix.Scales[b+i+3]
			}
			for ; i < cnt; i++ {
				scores[i] = float32(dotQ(qq, rows[i*kdim:(i+1)*kdim])) * ix.Scales[b+i]
			}
			for i := 0; i < cnt; i++ {
				id := ix.IDs[b+i]
				if id == exclude || seen[id] {
					continue
				}
				score := scores[i]
				if scale != nil {
					s := scale[id]
					if s == 0 {
						continue // zero-norm item: cosine undefined, skip
					}
					score *= s
				}
				candHeap.Push(id, score)
			}
		}
	}

	// Exact rerank: the few surviving candidates are rescored against the
	// float32 rows, so returned scores are exact — a recall miss requires a
	// true top-k item to live in an unprobed list or fall below the
	// approximate rerank·k floor.
	final := sc.heap(&sc.final, k)
	for _, c := range candHeap.Items() {
		exact := model.Dot(query, f.Colvec(c.Item))
		if scale != nil {
			exact *= scale[c.Item]
		}
		final.Push(c.Item, exact)
	}
	return final.Sorted(), nprobe, cands
}

package serve

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// overloadServer builds a Server (not just its handler) so tests can reach
// the semaphore and drain switch directly.
func overloadServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		store := NewStore()
		if _, err := store.Publish(uniformFactors(2, 8, 2, 1, 1), "overload"); err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestShedAtInFlightCap(t *testing.T) {
	srv, ts := overloadServer(t, Config{Shards: 1, MaxInFlight: 1})

	// Occupy the single slot directly; the next /v1 request must shed.
	srv.limiter <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/predict?user=0&item=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated predict: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	if got := srv.nShed.Load(); got != 1 {
		t.Fatalf("nShed = %d, want 1", got)
	}

	// Operational endpoints are exempt from the cap.
	for _, path := range []string{"/healthz", "/readyz", "/statsz", "/metricz"} {
		getBody(t, ts.URL+path, http.StatusOK, nil)
	}

	// Freeing the slot restores service.
	<-srv.limiter
	getBody(t, ts.URL+"/v1/predict?user=0&item=0", http.StatusOK, nil)

	// The shed shows up on the scrape.
	mresp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), "hsgd_http_shed_total 1") {
		t.Fatalf("metricz missing hsgd_http_shed_total 1:\n%s", raw)
	}
}

func TestPanicRecovery(t *testing.T) {
	srv, _ := overloadServer(t, Config{Shards: 1})
	log.SetOutput(io.Discard) // the recovery path logs the stack on purpose
	defer log.SetOutput(os.Stderr)

	h := srv.protect(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("scorer exploded")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/predict", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if got := srv.nPanics.Load(); got != 1 {
		t.Fatalf("nPanics = %d, want 1", got)
	}
	// The in-flight slot must have been released despite the panic.
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("InFlight after panic = %d, want 0", got)
	}
}

func TestRequestDeadline(t *testing.T) {
	srv, _ := overloadServer(t, Config{Shards: 1, RequestTimeout: 20 * time.Millisecond})

	release := make(chan struct{})
	defer close(release)
	h := srv.protect(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done(): // TimeoutHandler cancels the request ctx
		}
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/recommend", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overrunning handler: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("timeout body = %q", rec.Body.String())
	}
}

func TestReadyzDrain(t *testing.T) {
	// Before any snapshot: alive but not ready.
	store := NewStore()
	srv, err := New(Config{Store: store, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	getBody(t, ts.URL+"/readyz", http.StatusServiceUnavailable, nil)

	if _, err := store.Publish(uniformFactors(2, 8, 2, 1, 1), "v1"); err != nil {
		t.Fatal(err)
	}
	getBody(t, ts.URL+"/readyz", http.StatusOK, nil)

	// Draining flips readiness only: health and live traffic keep working.
	srv.BeginDrain()
	var ready map[string]string
	getBody(t, ts.URL+"/readyz", http.StatusServiceUnavailable, &ready)
	if ready["status"] != "draining" {
		t.Fatalf("readyz status = %q, want draining", ready["status"])
	}
	getBody(t, ts.URL+"/healthz", http.StatusOK, nil)
	getBody(t, ts.URL+"/v1/predict?user=0&item=0", http.StatusOK, nil)
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
}

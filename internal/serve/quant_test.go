package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"hsgd/internal/dataset"
	"hsgd/internal/model"
)

// centeredFactors builds factors with entries in [-0.5, 0.5) so the signed
// half of the int8 range is exercised (NewFactors inits non-negative).
func centeredFactors(m, n, k int, seed int64) *model.Factors {
	rng := rand.New(rand.NewSource(seed))
	f := &model.Factors{M: m, N: n, K: k,
		P: make([]float32, m*k), Q: make([]float32, n*k)}
	for i := range f.P {
		f.P[i] = rng.Float32() - 0.5
	}
	for i := range f.Q {
		f.Q[i] = rng.Float32() - 0.5
	}
	return f
}

// Exact-vs-quantized recall@10 on a MovieLens-spec snapshot must stay
// ≈1: the int8 scan only picks candidates, the exact rerank restores true
// scores, so a miss requires a true top-10 item to fall below the
// rerankFactor·k approximate floor. Published through the Store so the
// test exercises the same quantized view the server scans.
func TestQuantizedRecallAt10(t *testing.T) {
	spec := dataset.MovieLens()
	f := centeredFactors(256, spec.Cols, 32, 42)
	store := NewStore()
	snap, err := store.Publish(f, "recall-test")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Quantized == nil {
		t.Fatal("store did not build the quantized view by default")
	}
	s := &Scorer{Shards: 4}
	const topK = 10
	var hit, total int
	for u := int32(0); u < 256; u++ {
		exact := s.Recommend(f, u, topK, nil)
		quant := s.RecommendQuantized(f, snap.Quantized, u, topK, nil)
		if len(quant) != len(exact) {
			t.Fatalf("user %d: quantized returned %d items, exact %d", u, len(quant), len(exact))
		}
		want := make(map[int32]bool, topK)
		for _, c := range exact {
			want[c.Item] = true
		}
		for _, c := range quant {
			if want[c.Item] {
				hit++
			}
			// Rerank guarantee: every returned score is the exact float32
			// prediction, not a dequantized approximation.
			if got, exact := c.Score, f.Predict(u, c.Item); math.Abs(float64(got-exact)) > 1e-6 {
				t.Fatalf("user %d item %d: score %v != exact %v", u, c.Item, got, exact)
			}
		}
		total += topK
	}
	recall := float64(hit) / float64(total)
	t.Logf("recall@10 over 256 users on %d items: %.4f", spec.Cols, recall)
	if recall < 0.99 {
		t.Fatalf("recall@10 = %.4f, want >= 0.99", recall)
	}
}

// The quantized path must honor seen-set exclusions and edge cases exactly
// like the exact path.
func TestQuantizedEdgeCases(t *testing.T) {
	f := centeredFactors(4, 6000, 16, 7)
	qf := model.QuantizeItems(f)
	s := &Scorer{Shards: 3}

	if got := s.RecommendQuantized(f, qf, 99, 5, nil); got != nil {
		t.Fatalf("out-of-range user returned %v", got)
	}
	if got := s.RecommendQuantized(f, qf, 0, 0, nil); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := s.RecommendVectorQuantized(f, qf, make([]float32, 3), 5, nil); got != nil {
		t.Fatalf("wrong-length query returned %v", got)
	}

	seen := map[int32]bool{0: true, 17: true, 5999: true}
	for _, c := range s.RecommendQuantized(f, qf, 1, 50, seen) {
		if seen[c.Item] {
			t.Fatalf("seen item %d returned", c.Item)
		}
	}

	// All items seen -> empty.
	all := make(map[int32]bool, 6000)
	for v := int32(0); v < 6000; v++ {
		all[v] = true
	}
	if got := s.RecommendQuantized(f, qf, 0, 5, all); len(got) != 0 {
		t.Fatalf("all-seen returned %v", got)
	}

	// The trained row and the same vector through the fold-in entry point
	// must agree.
	a := s.RecommendQuantized(f, qf, 2, 10, nil)
	b := s.RecommendVectorQuantized(f, qf, f.Row(2), 10, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v != %v", i, a[i], b[i])
		}
	}

	// Zero query: all scores 0, ties break to the lowest ids — identical
	// item sets on both paths.
	zero := make([]float32, f.K)
	za := s.RecommendVector(f, zero, 5, nil)
	zb := s.RecommendVectorQuantized(f, qf, zero, 5, nil)
	for i := range za {
		if za[i] != zb[i] {
			t.Fatalf("zero query rank %d: exact %v quantized %v", i, za[i], zb[i])
		}
	}
}

// The AVX2 kernel (when present) must produce bit-identical sums to the
// scalar kernel for every length, including non-multiple-of-16 tails.
// Integer arithmetic is associative, so this is exact equality, not a
// tolerance check.
func TestDotQ4AsmMatchesGeneric(t *testing.T) {
	if !useDotQ4Asm {
		t.Skip("no SIMD kernel on this architecture")
	}
	rng := rand.New(rand.NewSource(21))
	for _, k := range []int{16, 17, 31, 32, 48, 64, 100, 128, 333} {
		q := make([]int8, k)
		rows := make([]int8, 4*k)
		for i := range q {
			q[i] = int8(rng.Intn(255) - 127)
		}
		for i := range rows {
			rows[i] = int8(rng.Intn(255) - 127)
		}
		a, b, c, d := rows[:k], rows[k:2*k], rows[2*k:3*k], rows[3*k:]
		ga, gb, gc, gd := dotQ4Generic(q, a, b, c, d)
		sa, sb, sc, sd := dotQ4(q, a, b, c, d)
		if sa != ga || sb != gb || sc != gc || sd != gd {
			t.Fatalf("k=%d: asm (%d,%d,%d,%d) != generic (%d,%d,%d,%d)",
				k, sa, sb, sc, sd, ga, gb, gc, gd)
		}
	}
}

// The steady-state quantized scan must not allocate: scratch is reused
// across requests, heaps are Reset not rebuilt, and the kernel works in
// stack blocks. This is the acceptance gate for the serving hot loop.
func TestQuantizedScanZeroAllocs(t *testing.T) {
	f := centeredFactors(8, 9001, 64, 9)
	qf := model.QuantizeItems(f)
	s := &Scorer{Shards: 1} // single shard: no goroutine fan-out in the loop
	sc := new(quantScratch)
	query := f.Row(3)
	if res, _ := s.rankQuantized(f, qf, query, 10, nil, nil, -1, sc); len(res) != 10 {
		t.Fatalf("warm-up returned %d items", len(res))
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.rankQuantized(f, qf, query, 10, nil, nil, -1, sc)
	})
	if allocs != 0 {
		t.Fatalf("quantized scan allocated %v per op, want 0", allocs)
	}
}

// Hot-swap under concurrent quantized load (run with -race): readers
// hammer the quantized view through Store.Current while publishes rotate
// two models. Every response must be internally consistent with a single
// version.
func TestQuantizedHotSwapRace(t *testing.T) {
	const users, items, kDim = 4, 6000, 8
	a := uniformFactors(users, items, kDim, 1, 1) // every score 8
	b := uniformFactors(users, items, kDim, 2, 2) // every score 32

	store := NewStore()
	if _, err := store.Publish(a, "a"); err != nil {
		t.Fatal(err)
	}
	s := &Scorer{Shards: 2}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 100; i++ {
			src := a
			if i%2 == 0 {
				src = b
			}
			if _, err := store.Publish(src.Clone(), "swap"); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i >= 50 {
						return
					}
				default:
				}
				snap := store.Current()
				if snap.Quantized == nil {
					t.Error("published snapshot missing quantized view")
					return
				}
				got := s.RecommendQuantized(snap.Factors, snap.Quantized, int32((r+i)%users), 5, nil)
				if len(got) != 5 {
					t.Errorf("reader %d: %d items", r, len(got))
					return
				}
				for _, c := range got {
					if c.Score != got[0].Score || (c.Score != 8 && c.Score != 32) {
						t.Errorf("reader %d: torn scores %v", r, got)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// End-to-end: a server over a quantized store reports the quantized mode,
// build time, and measured rerank depth in /statsz, and flipping the store
// to exact mode flips the reporting.
func TestServerQuantizedStatsz(t *testing.T) {
	store := NewStore()
	ts := newTestServer(t, store)
	if _, err := store.Publish(centeredFactors(4, 500, 8, 11), "q"); err != nil {
		t.Fatal(err)
	}
	getBody(t, ts.URL+"/v1/recommend?user=1&k=7", http.StatusOK, nil)

	var stats statsResponse
	getBody(t, ts.URL+"/statsz", http.StatusOK, &stats)
	if stats.Retrieval == nil || stats.Retrieval.Mode != "quantized" {
		t.Fatalf("retrieval stats = %+v, want quantized mode", stats.Retrieval)
	}
	if stats.Retrieval.RerankFactor != DefaultRerankFactor {
		t.Fatalf("rerank factor %d", stats.Retrieval.RerankFactor)
	}
	if stats.Retrieval.QuantizedScans != 1 || stats.Retrieval.MeanRerankDepth <= 0 {
		t.Fatalf("scan counters = %+v", stats.Retrieval)
	}
	// Depth is bounded by rerankFactor·k per shard times the shard count.
	if maxDepth := float64(DefaultRerankFactor * 7 * 2); stats.Retrieval.MeanRerankDepth > maxDepth {
		t.Fatalf("mean rerank depth %v > bound %v", stats.Retrieval.MeanRerankDepth, maxDepth)
	}

	store.SetQuantize(false)
	if _, err := store.Publish(centeredFactors(4, 500, 8, 12), "e"); err != nil {
		t.Fatal(err)
	}
	getBody(t, ts.URL+"/statsz", http.StatusOK, &stats)
	if stats.Retrieval == nil || stats.Retrieval.Mode != "exact" {
		t.Fatalf("retrieval stats after SetQuantize(false) = %+v", stats.Retrieval)
	}
}

// The quantized and exact paths must return the same ranking through the
// HTTP layer with float32-exact scores either way; this pins the rerank
// guarantee at the API boundary. Scores may differ in the last ulp because
// the exact scan accumulates via dot4's sequential order while the rerank
// uses model.Dot's 4-way unrolled order.
func TestServerQuantizedMatchesExactHTTP(t *testing.T) {
	f := centeredFactors(8, 3000, 16, 13)

	quantStore := NewStore()
	exactStore := NewStore()
	exactStore.SetQuantize(false)
	if _, err := quantStore.Publish(f.Clone(), "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := exactStore.Publish(f.Clone(), "e"); err != nil {
		t.Fatal(err)
	}
	qs := newTestServer(t, quantStore)
	es := newTestServer(t, exactStore)

	for u := 0; u < 8; u++ {
		url := fmt.Sprintf("/v1/recommend?user=%d&k=10&exclude=3,999", u)
		var qr, er recommendResponse
		getBody(t, qs.URL+url, http.StatusOK, &qr)
		getBody(t, es.URL+url, http.StatusOK, &er)
		if len(qr.Items) != len(er.Items) {
			t.Fatalf("user %d: %d vs %d items", u, len(qr.Items), len(er.Items))
		}
		for i := range er.Items {
			if qr.Items[i].Item != er.Items[i].Item {
				t.Fatalf("user %d rank %d: quantized %+v vs exact %+v",
					u, i, qr.Items[i], er.Items[i])
			}
			if d := math.Abs(float64(qr.Items[i].Score - er.Items[i].Score)); d > 1e-6 {
				t.Fatalf("user %d rank %d: score gap %v beyond ulp tolerance", u, i, d)
			}
		}
	}

	// Fold-in POSTs go through the quantized scan too.
	body := []byte(`{"k":5,"ratings":[{"item":3,"value":5},{"item":9,"value":4}]}`)
	for _, ts := range []string{qs.URL, es.URL} {
		resp, err := http.Post(ts+"/v1/recommend", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST: %d: %s", resp.StatusCode, raw)
		}
		var rec recommendResponse
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if !rec.FoldIn || len(rec.Items) != 5 {
			t.Fatalf("fold-in response %+v", rec)
		}
		for _, it := range rec.Items {
			if it.Item == 3 || it.Item == 9 {
				t.Fatalf("rated item leaked: %+v", rec.Items)
			}
		}
	}
}

package serve

import (
	"sync"

	"hsgd/internal/model"
)

// The quantized retrieval path: the full-catalog scan is memory-bandwidth-
// bound, so scanning int8 rows instead of float32 moves 4× fewer bytes. The
// scan ranks items by approximate int8 scores into per-shard candidate
// heaps of rerankFactor·k entries, then the small surviving candidate set
// is rescored exactly against the float32 rows — returned scores are exact
// and recall@k stays ≈1, the tradeoff knob being the rerank factor.

// DefaultRerankFactor is the candidate-pool multiplier for the quantized
// scan: each shard keeps RerankFactor·k approximately-scored candidates
// before the exact float32 rerank. 4 keeps recall@10 ≈ 1 on every dataset
// spec while the rerank stays a negligible fraction of the scan.
const DefaultRerankFactor = 4

// EffectiveRerankFactor resolves a configured rerank factor to the one the
// scan actually uses (<= 0 selects the default) — the single place the
// rule lives, shared by the scan, /statsz, and hsgd-serve's startup log.
func EffectiveRerankFactor(rf int) int {
	if rf <= 0 {
		return DefaultRerankFactor
	}
	return rf
}

// quantScratch is the reusable per-request state of the quantized scan: the
// int8-quantized query, one candidate heap per shard, and the final rerank
// heap. Pooling it (and never allocating inside rankQuantized) is what
// makes the steady-state recommend path allocation-free.
type quantScratch struct {
	qquery []int8
	shards []*model.TopK // per-shard candidate heaps (approximate scores)
	final  *model.TopK   // exact float32 rerank heap
}

var quantPool = sync.Pool{New: func() any { return new(quantScratch) }}

// query returns the int8 query buffer resized to k.
func (sc *quantScratch) query(k int) []int8 {
	if cap(sc.qquery) < k {
		sc.qquery = make([]int8, k)
	}
	return sc.qquery[:k]
}

// heaps returns w candidate heaps, each reset to retain cand items.
func (sc *quantScratch) heaps(w, cand int) []*model.TopK {
	for len(sc.shards) < w {
		sc.shards = append(sc.shards, model.NewTopK(cand))
	}
	hs := sc.shards[:w]
	for _, h := range hs {
		h.Reset(cand)
	}
	return hs
}

func (sc *quantScratch) finalHeap(k int) *model.TopK {
	if sc.final == nil {
		sc.final = model.NewTopK(k)
	} else {
		sc.final.Reset(k)
	}
	return sc.final
}

// RecommendQuantized is Recommend through the quantized scan: candidates
// are collected from the int8 view and reranked exactly, so the returned
// scores equal the float32 path's. Returns nil when u is out of range.
func (s *Scorer) RecommendQuantized(f *model.Factors, qf *model.QuantizedFactors, u int32, k int, seen map[int32]bool) []model.ScoredItem {
	if int(u) < 0 || int(u) >= f.M {
		return nil
	}
	return s.recommendQuantizedAlloc(f, qf, f.Row(u), k, seen)
}

// RecommendVectorQuantized ranks items for an arbitrary query vector (the
// fold-in entry point) through the quantized scan. query must have length
// f.K.
func (s *Scorer) RecommendVectorQuantized(f *model.Factors, qf *model.QuantizedFactors, query []float32, k int, seen map[int32]bool) []model.ScoredItem {
	if len(query) != f.K {
		return nil
	}
	return s.recommendQuantizedAlloc(f, qf, query, k, seen)
}

// recommendQuantizedAlloc wraps the zero-allocation core for callers
// without a scratch of their own: results are copied out so the pooled
// scratch can be released before returning.
func (s *Scorer) recommendQuantizedAlloc(f *model.Factors, qf *model.QuantizedFactors, query []float32, k int, seen map[int32]bool) []model.ScoredItem {
	sc := quantPool.Get().(*quantScratch)
	res, _ := s.rankQuantized(f, qf, query, k, seen, nil, -1, sc)
	out := append([]model.ScoredItem(nil), res...)
	quantPool.Put(sc)
	return out
}

// SimilarItemsQuantized is SimilarItems through the quantized candidate
// scan: the int8 view nominates rerank·k candidates per shard ranked by
// approximate cosine (approximate dot times the item's precomputed inverse
// norm), and the survivors are rescored as exact float32 cosines — the
// same candidate/rerank structure recommend uses, so the returned scores
// match the exact path's.
func (s *Scorer) SimilarItemsQuantized(f *model.Factors, qf *model.QuantizedFactors, invNorms []float32, v int32, k int) []model.ScoredItem {
	if int(v) < 0 || int(v) >= f.N || len(invNorms) != f.N || invNorms[v] == 0 {
		return nil
	}
	qv := f.Colvec(v)
	query := make([]float32, f.K)
	for i, x := range qv {
		query[i] = x * invNorms[v]
	}
	sc := quantPool.Get().(*quantScratch)
	res, _ := s.rankQuantized(f, qf, query, k, nil, invNorms, v, sc)
	out := append([]model.ScoredItem(nil), res...)
	quantPool.Put(sc)
	return out
}

// rankQuantized is the zero-allocation core of the quantized path: scan the
// int8 rows into per-shard candidate heaps, then rescore every surviving
// candidate exactly in float32. A non-nil scale (the snapshot's inverse
// norms, for similar-items cosine ranking) multiplies both the approximate
// and the exact scores per item, with zero-scale items skipped; exclude
// drops one item id (-1 for none). The returned slice aliases sc and is
// valid until sc is reused; the int is the number of candidates rescored
// (the measured rerank depth /statsz reports). The caller must have
// checked len(query) == f.K.
func (s *Scorer) rankQuantized(f *model.Factors, qf *model.QuantizedFactors, query []float32, k int, seen map[int32]bool, scale []float32, exclude int32, sc *quantScratch) ([]model.ScoredItem, int) {
	n := qf.N
	if k <= 0 || n == 0 {
		return nil, 0
	}
	cand := k * EffectiveRerankFactor(s.RerankFactor)
	qq := sc.query(qf.K)
	// A zero query quantizes to scale 0 and all-zero data; every approximate
	// score is then 0 and the id-ascending tie-break keeps the same
	// candidates the exact all-zero-score scan would rank first.
	model.QuantizeVectorInto(qq, query)

	w := s.workers(n)
	heaps := sc.heaps(w, cand)
	if w == 1 {
		scoreRangeQ(qf, qq, 0, n, seen, scale, exclude, heaps[0])
	} else {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			lo, hi := n*i/w, n*(i+1)/w
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				scoreRangeQ(qf, qq, lo, hi, seen, scale, exclude, heaps[i])
			}(i, lo, hi)
		}
		wg.Wait()
	}

	// Exact rerank. Every shard's candidates are rescored rather than
	// merge-pruned to cand first: the extra dots are few (w·cand total) and
	// a candidate dropped by an approximate merge could have been a true
	// top-k item.
	final := sc.finalHeap(k)
	depth := 0
	for _, h := range heaps {
		for _, c := range h.Items() {
			exact := model.Dot(query, f.Colvec(c.Item))
			if scale != nil {
				exact *= scale[c.Item]
			}
			final.Push(c.Item, exact)
		}
		depth += h.Len()
	}
	return final.Sorted(), depth
}

// scoreRangeQ scans quantized items [lo, hi) in blocks, pushing approximate
// scores into the shard's candidate heap. The pushed score is the int32
// accumulator times the item's scale only — the query's scale is a positive
// constant across items, so it cancels for ranking and is never applied.
// A non-nil cosine scale further multiplies each score (zero-scale items
// skipped); exclude drops one id.
func scoreRangeQ(qf *model.QuantizedFactors, qq []int8, lo, hi int, seen map[int32]bool, scale []float32, exclude int32, t *model.TopK) {
	var scores [scoreBlockItems]float32
	kdim := qf.K
	for b := lo; b < hi; b += scoreBlockItems {
		e := min(b+scoreBlockItems, hi)
		rows := qf.Data[b*kdim : e*kdim]
		cnt := e - b
		// Register-blocked like the float32 scan: 4 contiguous int8 rows
		// share one pass over the quantized query, amortising the query
		// loads and loop overhead 4×.
		i := 0
		for ; i+4 <= cnt; i += 4 {
			quad := rows[i*kdim : (i+4)*kdim]
			sa, sb, sc, sd := dotQ4(qq,
				quad[:kdim], quad[kdim:2*kdim], quad[2*kdim:3*kdim], quad[3*kdim:])
			scores[i] = float32(sa) * qf.Scales[b+i]
			scores[i+1] = float32(sb) * qf.Scales[b+i+1]
			scores[i+2] = float32(sc) * qf.Scales[b+i+2]
			scores[i+3] = float32(sd) * qf.Scales[b+i+3]
		}
		for ; i < cnt; i++ {
			scores[i] = float32(dotQ(qq, rows[i*kdim:(i+1)*kdim])) * qf.Scales[b+i]
		}
		for i := 0; i < cnt; i++ {
			v := int32(b + i)
			if v == exclude || seen[v] {
				continue
			}
			sc := scores[i]
			if scale != nil {
				s := scale[b+i]
				if s == 0 {
					continue // zero-norm item: cosine undefined, skip
				}
				sc *= s
			}
			t.Push(v, sc)
		}
	}
}

// HasAVX2 reports whether the quantized scoring kernel runs its AVX2
// assembly path on this machine — the CPUID detection the bench reports'
// run metadata records (always false off amd64).
func HasAVX2() bool { return useDotQ4Asm }

// dotQ4 accumulates four int8 rows against the int8 query into int32
// accumulators in one pass — the quantized mirror of dot4. Products are at
// most 127² and k is far below 2³¹/127², so int32 never overflows. On
// amd64 with AVX2 the bulk of the row runs through the VPMADDWD kernel
// (dotq_amd64.s) with a scalar tail; integer SIMD gives bit-identical sums,
// so both paths rank identically.
func dotQ4(q, a, b, c, d []int8) (sa, sb, sc, sd int32) {
	if useDotQ4Asm && len(q) >= 16 {
		n := len(q) &^ 15
		sa, sb, sc, sd = dotQ4Asm(&q[0], &a[0], &b[0], &c[0], &d[0], n)
		for j := n; j < len(q); j++ {
			xv := int32(q[j])
			sa += xv * int32(a[j])
			sb += xv * int32(b[j])
			sc += xv * int32(c[j])
			sd += xv * int32(d[j])
		}
		return
	}
	return dotQ4Generic(q, a, b, c, d)
}

// dotQ4Generic is the portable scalar kernel, register-blocked like dot4.
// Slicing every row to len(q) up front drops the bounds checks in the loop.
func dotQ4Generic(q, a, b, c, d []int8) (sa, sb, sc, sd int32) {
	a = a[:len(q)]
	b = b[:len(q)]
	c = c[:len(q)]
	d = d[:len(q)]
	for j, x := range q {
		xv := int32(x)
		sa += xv * int32(a[j])
		sb += xv * int32(b[j])
		sc += xv * int32(c[j])
		sd += xv * int32(d[j])
	}
	return
}

// dotQ is the single-row int8 dot for the block tail.
func dotQ(q, a []int8) int32 {
	a = a[:len(q)]
	var s int32
	for j, x := range q {
		s += int32(x) * int32(a[j])
	}
	return s
}

package serve

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// Overload protection defaults. The in-flight cap is deliberately generous —
// it exists to convert collapse into fast 429s when the scorer saturates,
// not to police well-behaved traffic.
const (
	DefaultMaxInFlight    = 256
	DefaultRequestTimeout = 5 * time.Second
)

// protect wraps a /v1 handler in the overload stack, innermost first:
//
//	deadline   — http.TimeoutHandler answers 503 when handling overruns
//	             RequestTimeout, so one slow ranking cannot hold a client
//	             (or an in-flight slot) forever
//	shedding   — a semaphore caps concurrent requests; arrivals past the
//	             cap get an immediate 429 + Retry-After instead of queueing
//	             behind a saturated scorer
//	recovery   — a panicking handler answers 500 and increments
//	             hsgd_http_panics_total instead of silently resetting the
//	             connection
//
// Recovery is outermost so it also catches panics re-raised by the timeout
// handler's goroutine plumbing.
func (s *Server) protect(h http.Handler) http.Handler {
	if s.requestTimeout > 0 {
		h = http.TimeoutHandler(h, s.requestTimeout, `{"error":"request deadline exceeded"}`+"\n")
	}
	h = s.shed(h)
	return s.recoverPanics(h)
}

// shed admits the request if an in-flight slot is free and answers 429
// otherwise. The semaphore spans the whole downstream stack, deadline
// included, so a pile-up of timed-out-but-still-running rankings counts
// against the cap like any other work.
func (s *Server) shed(h http.Handler) http.Handler {
	if s.limiter == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
			h.ServeHTTP(w, r)
		default:
			s.nShed.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeJSON(w, http.StatusTooManyRequests,
				errorResponse{Error: "server overloaded: in-flight request cap reached"})
		}
	})
}

// recoverPanics turns a handler panic into a 500 response and a counted
// event. http.ErrAbortHandler is re-raised — it is net/http's sanctioned
// way to abort a response, not a bug to report.
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.nPanics.Add(1)
			s.logger.Error("panic recovered",
				"method", r.Method, "path", r.URL.Path,
				"request_id", w.Header().Get("X-Request-Id"),
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote headers this is a
			// no-op on the status line, but the client still sees the
			// connection complete instead of resetting.
			s.fail(w, http.StatusInternalServerError, "internal error")
		}()
		h.ServeHTTP(w, r)
	})
}

// handleReady is the routing check, distinct from handleHealth's liveness
// check: 200 only while the server holds a snapshot AND is not draining.
// Load balancers should gate on /readyz; process supervisors on /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.store.Current() == nil:
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no snapshot"})
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// BeginDrain flips /readyz to 503 while /healthz and in-flight requests
// keep answering. Call it before http.Server.Shutdown and give the load
// balancer a probe interval to pull this instance; Shutdown then drains
// only stragglers instead of racing live traffic.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight is the current number of admitted-and-running /v1 requests
// (0 when shedding is disabled).
func (s *Server) InFlight() int {
	if s.limiter == nil {
		return 0
	}
	return len(s.limiter)
}

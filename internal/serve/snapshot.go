package serve

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hsgd/internal/model"
)

// RetrievalMode selects which scan answers rankings: the exact float32
// scan, the int8 quantized scan with exact rerank (the default), or the
// IVF probe-and-rerank index.
type RetrievalMode int32

const (
	RetrievalQuant RetrievalMode = iota // int8 linear scan + exact rerank
	RetrievalExact                      // float32 linear scan
	RetrievalIVF                        // inverted-file probe + int8 scan + exact rerank
)

// String returns the mode's flag/statsz spelling.
func (m RetrievalMode) String() string {
	switch m {
	case RetrievalExact:
		return "exact"
	case RetrievalIVF:
		return "ivf"
	default:
		return "quant"
	}
}

// ParseRetrievalMode resolves hsgd-serve's -retrieval flag value.
func ParseRetrievalMode(s string) (RetrievalMode, error) {
	switch s {
	case "exact":
		return RetrievalExact, nil
	case "quant", "quantized":
		return RetrievalQuant, nil
	case "ivf":
		return RetrievalIVF, nil
	}
	return 0, fmt.Errorf("serve: unknown retrieval mode %q (want exact|quant|ivf)", s)
}

// Snapshot is one immutable published model version. Queries hold a
// *Snapshot for their whole lifetime, so a concurrent hot-swap never
// changes the data under a request — the old snapshot stays reachable (and
// alive) until the last in-flight request drops it.
type Snapshot struct {
	Factors *model.Factors
	// Quantized is the per-item symmetric int8 view of the item factors,
	// built once at publish time for the quantized retrieval scan. nil when
	// the store runs in exact mode; the server falls back to the exact
	// float32 scan then.
	Quantized *model.QuantizedFactors
	// IVF is the inverted-file index over the item factors, built (or
	// loaded from the snapshot file's HIVF section) at publish time in IVF
	// retrieval mode; nil in the other modes.
	IVF *model.IVFIndex
	// InvNorms[v] = 1/‖q_v‖ (0 for a zero vector), precomputed once per
	// publish so cosine similar-items scoring costs one multiply per item.
	InvNorms []float32
	Version  uint64
	LoadedAt time.Time
	// QuantBuild is how long the quantized view took to build at publish
	// time (0 when quantization is off) — surfaced in /statsz.
	QuantBuild time.Duration
	// IVFBuild is the k-means + posting-list build time at publish (0 when
	// the index came prebuilt from the snapshot file) — surfaced in /statsz.
	IVFBuild time.Duration
	// Source is where the snapshot came from: a file path for LoadFile, or
	// a caller-chosen label for in-process Publish.
	Source string
}

// Mode reports which retrieval path this snapshot serves.
func (s *Snapshot) Mode() RetrievalMode {
	switch {
	case s.IVF != nil:
		return RetrievalIVF
	case s.Quantized != nil:
		return RetrievalQuant
	default:
		return RetrievalExact
	}
}

// Store holds the live snapshot behind an atomic pointer. Swaps are
// zero-downtime: readers call Current with no locks on the hot path, and a
// background retrain (or the disk watcher) publishes a new version without
// dropping queries.
type Store struct {
	cur     atomic.Pointer[Snapshot]
	version atomic.Uint64
	// mode selects what derived retrieval data Publish builds (zero value =
	// RetrievalQuant, matching hsgd-serve's default).
	mode atomic.Int32
	// ivfNList is the coarse-cell count IVF-mode publishes build (0 =
	// model.DefaultNList) and ivfSeed the k-means seed.
	ivfNList atomic.Int64
	ivfSeed  atomic.Int64

	mu      sync.Mutex
	onSwap  []func(*Snapshot)
	lastErr atomic.Pointer[string]
	// loadedStat is the (path, mtime, size) observed by the last LoadFile,
	// used to seed Watch's change detector — statting when the watch loop
	// starts instead would silently absorb a snapshot written between
	// LoadFile and Watch.
	loadedStat atomic.Pointer[fileStat]

	// now is stubbed in tests.
	now func() time.Time
}

type fileStat struct {
	path string
	mod  time.Time
	size int64
}

// NewStore returns an empty store; Current returns nil until the first
// Publish or LoadFile.
func NewStore() *Store {
	return &Store{now: time.Now}
}

// Current returns the live snapshot, or nil if nothing has been published.
// It is safe for any number of concurrent callers and never blocks.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// SetQuantize controls whether subsequent publishes build the int8
// quantized view (on by default). Already-published snapshots keep
// whatever view they were built with. Kept as the -quantize flag's shim:
// it toggles between the quant and exact modes and never selects IVF.
func (s *Store) SetQuantize(on bool) {
	if on {
		s.SetRetrieval(RetrievalQuant)
	} else {
		s.SetRetrieval(RetrievalExact)
	}
}

// SetRetrieval selects which derived retrieval data subsequent publishes
// build: nothing (exact), the int8 view (quant), or the int8 view plus the
// IVF index (ivf). Already-published snapshots keep what they were built
// with.
func (s *Store) SetRetrieval(m RetrievalMode) { s.mode.Store(int32(m)) }

// Retrieval reports the mode subsequent publishes will build.
func (s *Store) Retrieval() RetrievalMode { return RetrievalMode(s.mode.Load()) }

// SetIVF configures the IVF builds of subsequent publishes: nlist coarse
// cells (<= 0 means model.DefaultNList of the catalog size) and the
// k-means seed.
func (s *Store) SetIVF(nlist int, seed int64) {
	s.ivfNList.Store(int64(nlist))
	s.ivfSeed.Store(seed)
}

// Publish validates f, precomputes the item norms, and atomically swaps it
// in as the live snapshot. The previous snapshot is untouched, so requests
// that already picked it up finish against consistent data. Registered
// OnSwap hooks run synchronously before Publish returns.
func (s *Store) Publish(f *model.Factors, source string) (*Snapshot, error) {
	return s.publish(f, source, nil)
}

// publish is Publish with an optional prebuilt IVF index (from a snapshot
// file's HIVF section): when it matches the factors it replaces the
// k-means build, so a watcher hot-swap pays only the load, not the
// clustering.
func (s *Store) publish(f *model.Factors, source string, prebuilt *model.IVFIndex) (*Snapshot, error) {
	if f == nil {
		return nil, fmt.Errorf("serve: cannot publish nil factors")
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("serve: refusing to publish: %w", err)
	}
	inv := invNorms(f)
	// The derived views are built outside the mutex alongside the invNorms
	// precompute: all of it is per-snapshot data the hot path must never
	// pay for.
	mode := s.Retrieval()
	var qf *model.QuantizedFactors
	var ix *model.IVFIndex
	var qdur, ixdur time.Duration
	if mode != RetrievalExact {
		start := time.Now()
		qf = model.QuantizeItems(f)
		qdur = time.Since(start)
	}
	if mode == RetrievalIVF {
		if prebuilt != nil && prebuilt.N == f.N && prebuilt.K == f.K {
			ix = prebuilt
		} else {
			start := time.Now()
			ix = model.BuildIVF(f, qf, int(s.ivfNList.Load()), s.ivfSeed.Load())
			ixdur = time.Since(start)
		}
	}
	// Version assignment and the pointer store happen under the mutex so
	// two concurrent publishers (e.g. the disk watcher racing an in-process
	// retrain) can't interleave and leave an older snapshot live after a
	// newer one was stored. Readers never take this lock.
	s.mu.Lock()
	snap := &Snapshot{
		Factors:    f,
		Quantized:  qf,
		IVF:        ix,
		InvNorms:   inv,
		Version:    s.version.Add(1),
		LoadedAt:   s.now(),
		QuantBuild: qdur,
		IVFBuild:   ixdur,
		Source:     source,
	}
	s.cur.Store(snap)
	s.lastErr.Store(nil)
	hooks := append([]func(*Snapshot){}, s.onSwap...)
	s.mu.Unlock()
	for _, h := range hooks {
		h(snap)
	}
	return snap, nil
}

// LoadFile reads an HFAC snapshot file (as written by Factors.Save /
// cmd/hsgd-train -out, optionally carrying an HIVF index section) and
// publishes it.
func (s *Store) LoadFile(path string) (*Snapshot, error) {
	// Stat before reading: if the file is replaced mid-load, the recorded
	// stat disagrees with the new file and the watcher reloads next tick.
	info, statErr := os.Stat(path)
	f, ix, err := model.LoadFileWithIVF(path)
	if err != nil {
		s.setErr(err)
		return nil, err
	}
	snap, err := s.publish(f, path, ix)
	if err == nil && statErr == nil {
		s.loadedStat.Store(&fileStat{path: path, mod: info.ModTime(), size: info.Size()})
	}
	return snap, err
}

// OnSwap registers a hook called synchronously after every successful
// publish — the server uses it to invalidate its result cache.
func (s *Store) OnSwap(fn func(*Snapshot)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onSwap = append(s.onSwap, fn)
}

// LastError reports the most recent load failure ("" when the last load
// succeeded) — surfaced in /statsz so a bad snapshot push is visible.
func (s *Store) LastError() string {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

func (s *Store) setErr(err error) {
	msg := err.Error()
	s.lastErr.Store(&msg)
}

// Watch polls path every interval and republishes whenever the file's
// (mtime, size) changes, until ctx is cancelled. This is how a background
// retrain hands off: train, Save to a temp file, rename over the watched
// path (rename keeps readers from seeing a torn write; a mid-write read
// fails the loader's size cross-check and is retried on the next tick).
// Load failures are recorded in LastError and do not disturb the live
// snapshot.
func (s *Store) Watch(ctx context.Context, path string, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	var lastMod time.Time
	var lastSize int64 = -1
	if st := s.loadedStat.Load(); st != nil && st.path == path {
		// The caller already loaded this file; seed the change detector
		// from the stat taken at load time so we neither reload the same
		// bytes nor miss a write that landed since.
		lastMod, lastSize = st.mod, st.size
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		info, err := os.Stat(path)
		if err != nil {
			s.setErr(err)
			continue
		}
		if info.ModTime().Equal(lastMod) && info.Size() == lastSize {
			continue
		}
		if _, err := s.LoadFile(path); err != nil {
			// Torn or corrupt write: keep serving the old snapshot and
			// retry next tick (don't update lastMod, so a slow writer is
			// picked up once it finishes).
			continue
		}
		lastMod, lastSize = info.ModTime(), info.Size()
	}
}

func invNorms(f *model.Factors) []float32 {
	inv := make([]float32, f.N)
	for v := 0; v < f.N; v++ {
		row := f.Q[v*f.K : (v+1)*f.K]
		var s float64
		for _, x := range row {
			s += float64(x) * float64(x)
		}
		if s > 0 {
			inv[v] = float32(1 / math.Sqrt(s))
		}
	}
	return inv
}

//go:build amd64

package serve

// The int8 scan kernel has an AVX2 path: the scalar loop is limited to
// ~1 element/cycle by the integer-multiply port, which would squander the
// 4× bandwidth saving quantization buys. VPMOVSXBW widens 16 int8 lanes to
// int16 and VPMADDWD multiply-accumulates them into int32 — the same
// instruction pair the paper's AVX SGD kernels build on — for ~16
// elements/cycle, putting the quantized scan back at the memory wall where
// it wins. Feature detection is done once at init via CPUID/XGETBV
// (AVX2 requires the OS to save YMM state); everything falls back to the
// portable scalar kernel.

// dotQ4Asm accumulates four int8 rows of length n against the int8 query q
// into int32 sums. n must be a positive multiple of 16; callers handle the
// tail in Go.
//
//go:noescape
func dotQ4Asm(q, a, b, c, d *int8, n int) (sa, sb, sc, sd int32)

func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var useDotQ4Asm = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if c&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return false // OS does not save XMM+YMM state
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}()

package serve

import (
	"fmt"
	"sync"

	"hsgd/internal/als"
	"hsgd/internal/model"
)

// DefaultFoldInLambda is the ridge strength used when a caller doesn't
// specify one — the paper's default regularisation (λ = 0.05).
const DefaultFoldInLambda = 0.05

// foldInScratch holds the solve buffers one cold-start request needs: the
// k×k ridge normal-equation matrix and RHS, plus the in-range rating
// filter's copies. They are pooled because a busy fold-in endpoint would
// otherwise re-allocate the matrix (32 KiB at k=64) on every request.
type foldInScratch struct {
	a, b  []float64
	items []int32
	vals  []float32
}

var foldInPool = sync.Pool{New: func() any { return new(foldInScratch) }}

// FoldIn produces a factor vector for a cold-start user from a handful of
// (item, rating) pairs by solving the ridge least-squares system against
// the snapshot's frozen Q (one row of the ALS P-step):
//
//	min_p Σ (value_i − p·q_item_i)² + λ·|ratings|·‖p‖²
//
// Items outside the snapshot's range are dropped (the client may be ahead
// of the model); at least one in-range rating is required. The returned
// vector feeds Scorer.RecommendVector, so an unseen user gets
// recommendations immediately, without waiting for the next retrain.
func FoldIn(f *model.Factors, items []int32, values []float32, lambda float32) ([]float32, error) {
	if len(items) != len(values) {
		return nil, fmt.Errorf("serve: fold-in got %d items but %d values", len(items), len(values))
	}
	if lambda <= 0 {
		lambda = DefaultFoldInLambda
	}
	sc := foldInPool.Get().(*foldInScratch)
	defer foldInPool.Put(sc)
	// Fast path: every rating is in range (the norm for live clients), so
	// the caller's slices are used as-is; the filtered copy is only built
	// when a stale client actually sent out-of-range ids.
	inRange := 0
	for _, v := range items {
		if v >= 0 && int(v) < f.N {
			inRange++
		}
	}
	if inRange == 0 {
		return nil, fmt.Errorf("serve: fold-in has no in-range ratings (model has %d items)", f.N)
	}
	inItems, inVals := items, values
	if inRange < len(items) {
		inItems = sc.items[:0]
		inVals = sc.vals[:0]
		for i, v := range items {
			if v >= 0 && int(v) < f.N {
				inItems = append(inItems, v)
				inVals = append(inVals, values[i])
			}
		}
		sc.items, sc.vals = inItems, inVals // keep grown capacity pooled
	}
	k := f.K
	if cap(sc.a) < k*k {
		sc.a = make([]float64, k*k)
	}
	if cap(sc.b) < k {
		sc.b = make([]float64, k)
	}
	// p is handed to the caller (it outlives the request scratch), so it is
	// the one allocation left on this path — k floats next to the pooled
	// k² matrix.
	p := make([]float32, k)
	if err := als.FoldInUserInto(p, f, inItems, inVals, lambda, sc.a[:k*k], sc.b[:k]); err != nil {
		return nil, err
	}
	return p, nil
}

package serve

import (
	"fmt"

	"hsgd/internal/als"
	"hsgd/internal/model"
)

// DefaultFoldInLambda is the ridge strength used when a caller doesn't
// specify one — the paper's default regularisation (λ = 0.05).
const DefaultFoldInLambda = 0.05

// FoldIn produces a factor vector for a cold-start user from a handful of
// (item, rating) pairs by solving the ridge least-squares system against
// the snapshot's frozen Q (one row of the ALS P-step):
//
//	min_p Σ (value_i − p·q_item_i)² + λ·|ratings|·‖p‖²
//
// Items outside the snapshot's range are dropped (the client may be ahead
// of the model); at least one in-range rating is required. The returned
// vector feeds Scorer.RecommendVector, so an unseen user gets
// recommendations immediately, without waiting for the next retrain.
func FoldIn(f *model.Factors, items []int32, values []float32, lambda float32) ([]float32, error) {
	if len(items) != len(values) {
		return nil, fmt.Errorf("serve: fold-in got %d items but %d values", len(items), len(values))
	}
	if lambda <= 0 {
		lambda = DefaultFoldInLambda
	}
	inItems := make([]int32, 0, len(items))
	inVals := make([]float32, 0, len(values))
	for i, v := range items {
		if v >= 0 && int(v) < f.N {
			inItems = append(inItems, v)
			inVals = append(inVals, values[i])
		}
	}
	if len(inItems) == 0 {
		return nil, fmt.Errorf("serve: fold-in has no in-range ratings (model has %d items)", f.N)
	}
	return als.FoldInUser(f, inItems, inVals, lambda)
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, store *Store) *httptest.Server {
	t.Helper()
	srv, err := New(Config{Store: store, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getBody(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, raw)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, raw, err)
		}
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	store := NewStore()
	ts := newTestServer(t, store)

	// Before any snapshot: health and queries are 503.
	getBody(t, ts.URL+"/healthz", http.StatusServiceUnavailable, nil)
	getBody(t, ts.URL+"/v1/recommend?user=0", http.StatusServiceUnavailable, nil)

	// Publish a model with a transparent structure: q_v = v, p_u = u+1,
	// k=1, so predict(u,v) = (u+1)·v and the best item is always the
	// largest unseen id.
	f := uniformFactors(3, 6, 1, 0, 0)
	for u := 0; u < 3; u++ {
		f.P[u] = float32(u + 1)
	}
	for v := 0; v < 6; v++ {
		f.Q[v] = float32(v)
	}
	if _, err := store.Publish(f, "test"); err != nil {
		t.Fatal(err)
	}

	getBody(t, ts.URL+"/healthz", http.StatusOK, nil)

	var pred predictResponse
	getBody(t, ts.URL+"/v1/predict?user=2&item=4", http.StatusOK, &pred)
	if pred.Score != 12 || pred.SnapshotVersion != 1 {
		t.Fatalf("predict = %+v, want score 12 v1", pred)
	}

	var rec recommendResponse
	getBody(t, ts.URL+"/v1/recommend?user=1&k=3&exclude=5,4", http.StatusOK, &rec)
	if len(rec.Items) != 3 || rec.Items[0].Item != 3 || rec.Items[0].Score != 6 {
		t.Fatalf("recommend = %+v", rec)
	}

	// Cold-start POST: ratings say "loves item 5" (q=5), fold-in yields a
	// positive vector, rated item excluded from results.
	body, _ := json.Marshal(map[string]any{
		"k": 2, "ratings": []map[string]any{{"item": 5, "value": 5}},
	})
	resp, err := http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST recommend: %d: %s", resp.StatusCode, raw)
	}
	var cold recommendResponse
	if err := json.Unmarshal(raw, &cold); err != nil {
		t.Fatal(err)
	}
	if !cold.FoldIn || len(cold.Items) != 2 {
		t.Fatalf("fold-in response = %+v", cold)
	}
	for _, it := range cold.Items {
		if it.Item == 5 {
			t.Fatal("rated item leaked into fold-in recommendations")
		}
	}
	if cold.Items[0].Item != 4 {
		t.Fatalf("fold-in top item %d, want 4 (largest unrated q)", cold.Items[0].Item)
	}

	var sim similarResponse
	getBody(t, ts.URL+"/v1/similar-items?item=2&k=2", http.StatusOK, &sim)
	// k=1 vectors: every non-zero item has cosine 1 with every other; ties
	// break to the lowest id, and item 0 (zero vector) is skipped.
	if len(sim.Items) != 2 || sim.Items[0].Item != 1 || sim.Items[0].Score != 1 {
		t.Fatalf("similar = %+v", sim)
	}

	// Bad inputs are 400s.
	for _, bad := range []string{
		"/v1/predict?user=0&item=999",
		"/v1/predict?user=xyz&item=1",
		"/v1/recommend?user=99",
		"/v1/recommend?user=0&k=99999",
		"/v1/recommend?user=0&exclude=a,b",
		"/v1/similar-items?item=-2",
	} {
		getBody(t, ts.URL+bad, http.StatusBadRequest, nil)
	}
	// POST with neither user nor ratings.
	resp, err = http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader([]byte(`{"k":3}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty POST: %d", resp.StatusCode)
	}

	var stats statsResponse
	getBody(t, ts.URL+"/statsz", http.StatusOK, &stats)
	if stats.Snapshot == nil || stats.Snapshot.Users != 3 || stats.Snapshot.Items != 6 {
		t.Fatalf("statsz snapshot = %+v", stats.Snapshot)
	}
	if stats.Requests.FoldIn != 1 || stats.Requests.Errors == 0 {
		t.Fatalf("statsz requests = %+v", stats.Requests)
	}
}

// Repeating a recommend request must hit the LRU cache; a hot-swap must
// invalidate it so the next response reflects the new model.
func TestCacheHitAndSwapInvalidation(t *testing.T) {
	store := NewStore()
	ts := newTestServer(t, store)
	if _, err := store.Publish(uniformFactors(2, 8, 2, 1, 1), "v1"); err != nil {
		t.Fatal(err)
	}

	url := ts.URL + "/v1/recommend?user=0&k=3"
	var rec recommendResponse
	getBody(t, url, http.StatusOK, &rec)
	getBody(t, url, http.StatusOK, &rec)
	if rec.Items[0].Score != 2 { // k·1·1
		t.Fatalf("score %v, want 2", rec.Items[0].Score)
	}
	var stats statsResponse
	getBody(t, ts.URL+"/statsz", http.StatusOK, &stats)
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", stats.Cache)
	}

	// Swap in a model with doubled factors; the cached result must not
	// survive.
	if _, err := store.Publish(uniformFactors(2, 8, 2, 2, 2), "v2"); err != nil {
		t.Fatal(err)
	}
	getBody(t, url, http.StatusOK, &rec)
	if rec.Items[0].Score != 8 || rec.SnapshotVersion != 2 {
		t.Fatalf("post-swap response = %+v, want score 8 v2", rec)
	}
}

// Hot-swap under concurrent load: hammer /v1/recommend while the store
// flips between two models whose predictions are exactly 8 and 32. Every
// response must be internally consistent — all scores from one version —
// and the server must never 5xx. Run with -race this doubles as the
// snapshot-store race test.
func TestHotSwapUnderConcurrentLoad(t *testing.T) {
	const (
		users, items, kDim = 4, 5000, 8 // items > serialCutoff: sharded path
		readers            = 4
		requestsPerReader  = 60
		swaps              = 120
	)
	a := uniformFactors(users, items, kDim, 1, 1) // every score 8
	b := uniformFactors(users, items, kDim, 2, 2) // every score 32

	store := NewStore()
	if _, err := store.Publish(a, "a"); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, store)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < swaps; i++ {
			src := a
			if i%2 == 0 {
				src = b
			}
			if _, err := store.Publish(src.Clone(), "swap"); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i >= requestsPerReader {
						return
					}
				default:
				}
				resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&k=5", ts.URL, (r+i)%users))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d: %s", r, resp.StatusCode, raw)
					return
				}
				var rec recommendResponse
				if err := json.Unmarshal(raw, &rec); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if len(rec.Items) != 5 {
					t.Errorf("reader %d: %d items", r, len(rec.Items))
					return
				}
				for _, it := range rec.Items {
					if it.Score != 8 && it.Score != 32 {
						t.Errorf("reader %d: impossible score %v (torn snapshot?)", r, it.Score)
						return
					}
					if it.Score != rec.Items[0].Score {
						t.Errorf("reader %d: mixed versions in one response: %v vs %v",
							r, it.Score, rec.Items[0].Score)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

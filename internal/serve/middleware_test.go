package serve

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"hsgd/internal/obs"
	olog "hsgd/internal/obs/log"
)

// observedServer builds a server whose logger mirrors into a ring the test
// can inspect, with the slow-request threshold set low enough that every
// request trips it.
func observedServer(t *testing.T, slow time.Duration) (string, *olog.Ring) {
	t.Helper()
	store := NewStore()
	f := uniformFactors(4, 8, 2, 0.5, 0.5)
	if _, err := store.Publish(f, "test"); err != nil {
		t.Fatal(err)
	}
	ring := olog.NewRing(64)
	srv, err := New(Config{
		Store:       store,
		Shards:      2,
		Logger:      olog.New(nil, olog.LevelDebug, ring),
		SlowRequest: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, ring
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	url, _ := observedServer(t, 0)

	// No inbound id: the server mints one.
	resp, err := http.Get(url + "/v1/recommend?user=1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{1,16}$`).MatchString(id) {
		t.Fatalf("generated request id %q is not lowercase hex", id)
	}

	// An inbound id is echoed verbatim so the caller can correlate.
	req, _ := http.NewRequest("GET", url+"/v1/predict?user=1&item=2", nil)
	req.Header.Set("X-Request-Id", "caller-chose-this")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chose-this" {
		t.Fatalf("request id not echoed: %q", got)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	url, _ := observedServer(t, 0)

	// Without an inbound traceparent the response starts a fresh trace.
	resp, err := http.Get(url + "/v1/recommend?user=0&k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	trace, span, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || trace == 0 || span == 0 {
		t.Fatalf("response traceparent %q invalid", resp.Header.Get("Traceparent"))
	}

	// An inbound traceparent keeps its trace id; the span id is this hop's.
	inbound := obs.FormatTraceparent(0xfeedface, 0xbead)
	req, _ := http.NewRequest("GET", url+"/v1/recommend?user=0&k=2", nil)
	req.Header.Set("Traceparent", inbound)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	trace, span, ok = obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || trace != 0xfeedface {
		t.Fatalf("trace id not propagated: %q", resp.Header.Get("Traceparent"))
	}
	if span == 0xbead {
		t.Fatal("server reused the caller's span id instead of minting its own")
	}
}

func TestSlowRequestLogged(t *testing.T) {
	url, ring := observedServer(t, time.Nanosecond) // everything is "slow"

	req, _ := http.NewRequest("GET", url+"/v1/recommend?user=2&k=3", nil)
	req.Header.Set("X-Request-Id", "slowtest")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var found bool
	for _, rec := range ring.Snapshot() {
		if rec.Msg != "slow request" {
			continue
		}
		line := strings.Join(rec.KV, " ")
		if strings.Contains(line, "slowtest") && strings.Contains(line, "recommend") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-request record with the request id; ring: %v", ring.Snapshot())
	}
}

func TestSlowRequestDisabledByDefault(t *testing.T) {
	url, ring := observedServer(t, 0)
	resp, err := http.Get(url + "/v1/recommend?user=2&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, rec := range ring.Snapshot() {
		if rec.Msg == "slow request" {
			t.Fatal("slow-request logging fired with a zero threshold")
		}
	}
}

// TestErrorResponseCarriesCorrelationHeaders checks that observe wraps the
// whole protect stack: even a request rejected before its handler runs
// answers with the request-id and traceparent headers, so failures stay
// correlatable.
func TestErrorResponseCarriesCorrelationHeaders(t *testing.T) {
	url, _ := observedServer(t, 0)
	resp, err := http.Get(url + "/v1/predict?user=notanumber&item=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" || resp.Header.Get("Traceparent") == "" {
		t.Fatal("error response lost its correlation headers")
	}
}

package serve

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"hsgd/internal/dataset"
	"hsgd/internal/model"
)

// clusteredFactors builds item factors with cluster structure — items drawn
// as gaussian perturbations of shared cluster centers, the shape trained MF
// factors actually take (items co-cluster by latent genre/popularity
// directions). Uniform-random factors are the adversarial case for a coarse
// quantizer (no structure to exploit) and are covered by the monotone test;
// the recall gate runs on data shaped like what the index serves in
// practice.
func clusteredFactors(m, n, k, nClusters int, noise float64, seed int64) *model.Factors {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float32, nClusters*k)
	for i := range centers {
		centers[i] = rng.Float32() - 0.5
	}
	f := &model.Factors{M: m, N: n, K: k,
		P: make([]float32, m*k), Q: make([]float32, n*k)}
	for i := range f.P {
		f.P[i] = rng.Float32() - 0.5
	}
	for v := 0; v < n; v++ {
		c := centers[(v%nClusters)*k : (v%nClusters+1)*k]
		row := f.Q[v*k : (v+1)*k]
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64()*noise)
		}
	}
	return f
}

// publishIVF publishes f through a Store in IVF mode and returns the
// snapshot — the same build path the server serves from.
func publishIVF(t *testing.T, f *model.Factors, seed int64) *Snapshot {
	t.Helper()
	store := NewStore()
	store.SetRetrieval(RetrievalIVF)
	store.SetIVF(0, seed)
	snap, err := store.Publish(f, "ivf-test")
	if err != nil {
		t.Fatal(err)
	}
	if snap.IVF == nil || snap.Quantized == nil {
		t.Fatal("IVF-mode publish missing derived views")
	}
	if snap.Mode() != RetrievalIVF {
		t.Fatalf("snapshot mode = %v, want ivf", snap.Mode())
	}
	return snap
}

// ivfFixture publishes a seeded uniform-random snapshot in IVF mode.
func ivfFixture(t *testing.T, users, items, kDim int, seed int64) (*model.Factors, *Snapshot) {
	t.Helper()
	f := centeredFactors(users, items, kDim, seed)
	return f, publishIVF(t, f, seed)
}

func recallAt(t *testing.T, f *model.Factors, snap *Snapshot, s *Scorer, users, topK int) float64 {
	t.Helper()
	var hit, total int
	for u := int32(0); u < int32(users); u++ {
		exact := s.Recommend(f, u, topK, nil)
		got := s.RecommendIVF(f, snap.IVF, u, topK, nil)
		want := make(map[int32]bool, topK)
		for _, c := range exact {
			want[c.Item] = true
		}
		for _, c := range got {
			if want[c.Item] {
				hit++
			}
			// Rerank guarantee: every returned score is the exact float32
			// prediction, not a dequantized approximation.
			if gotS, exactS := c.Score, f.Predict(u, c.Item); math.Abs(float64(gotS-exactS)) > 1e-6 {
				t.Fatalf("user %d item %d: score %v != exact %v", u, c.Item, gotS, exactS)
			}
		}
		total += topK
	}
	return float64(hit) / float64(total)
}

// Recall@10 at the default nprobe must clear 0.95 on a MovieLens-spec
// snapshot — the acceptance gate for shipping IVF as a serving mode.
func TestIVFRecallAt10(t *testing.T) {
	spec := dataset.MovieLens()
	f := clusteredFactors(256, spec.Cols, 32, 64, 0.08, 42)
	snap := publishIVF(t, f, 42)
	s := &Scorer{Shards: 4}
	recall := recallAt(t, f, snap, s, 256, 10)
	t.Logf("recall@10 over 256 users on %d items (nlist=%d, nprobe=%d): %.4f",
		spec.Cols, snap.IVF.NList, EffectiveNProbe(0, snap.IVF.NList), recall)
	if recall < 0.95 {
		t.Fatalf("recall@10 = %.4f, want >= 0.95", recall)
	}
}

// Recall must grow (to within noise) as nprobe grows, reaching the
// quantized scan's level once every list is probed — nprobe is the knob and
// this pins its direction.
func TestIVFRecallMonotoneInNProbe(t *testing.T) {
	f, snap := ivfFixture(t, 128, 8000, 24, 7)
	nlist := snap.IVF.NList
	probes := []int{1, nlist / 16, nlist / 4, nlist}
	var prev float64
	for i, p := range probes {
		if p < 1 {
			p = 1
		}
		s := &Scorer{Shards: 4, NProbe: p}
		r := recallAt(t, f, snap, s, 128, 10)
		t.Logf("nprobe=%d recall@10=%.4f", p, r)
		// The candidate heap is bounded, so per-user recall is not strictly
		// monotone; aggregate recall gets a small noise allowance.
		if i > 0 && r < prev-0.005 {
			t.Fatalf("recall dropped from %.4f to %.4f as nprobe grew to %d", prev, r, p)
		}
		prev = r
	}
	if prev < 0.99 {
		t.Fatalf("recall@10 with every list probed = %.4f, want >= 0.99 (rerank-limited)", prev)
	}
}

// The IVF edge cases must mirror the quantized path's.
func TestIVFEdgeCases(t *testing.T) {
	f, snap := ivfFixture(t, 4, 6000, 16, 7)
	ix := snap.IVF
	s := &Scorer{Shards: 3}

	if got := s.RecommendIVF(f, ix, 99, 5, nil); got != nil {
		t.Fatalf("out-of-range user returned %v", got)
	}
	if got := s.RecommendIVF(f, ix, 0, 0, nil); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := s.RecommendVectorIVF(f, ix, make([]float32, 3), 5, nil); got != nil {
		t.Fatalf("wrong-length query returned %v", got)
	}

	seen := map[int32]bool{0: true, 17: true, 5999: true}
	for _, c := range s.RecommendIVF(f, ix, 1, 50, seen) {
		if seen[c.Item] {
			t.Fatalf("seen item %d returned", c.Item)
		}
	}

	// All items seen -> empty even with every list probed.
	all := make(map[int32]bool, 6000)
	for v := int32(0); v < 6000; v++ {
		all[v] = true
	}
	full := &Scorer{Shards: 3, NProbe: ix.NList}
	if got := full.RecommendIVF(f, ix, 0, 5, all); len(got) != 0 {
		t.Fatalf("all-seen returned %v", got)
	}

	// The trained row and the same vector through the fold-in entry point
	// must agree.
	a := s.RecommendIVF(f, ix, 2, 10, nil)
	b := s.RecommendVectorIVF(f, ix, f.Row(2), 10, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v != %v", i, a[i], b[i])
		}
	}

	// Counted variant returns the same ranking plus plausible work counts.
	c, probed, cands := s.RecommendIVFCounted(f, ix, 2, 10, nil)
	if probed != EffectiveNProbe(0, ix.NList) || cands <= 0 || cands > ix.N {
		t.Fatalf("counted: probed=%d cands=%d", probed, cands)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("counted rank %d: %v != %v", i, a[i], c[i])
		}
	}
}

// With every list probed, similar-items through the IVF candidate path must
// reproduce the exact path's ranking with exact cosine scores — the probe
// only nominates candidates, it never changes scoring semantics.
func TestSimilarItemsIVFMatchesExact(t *testing.T) {
	f, snap := ivfFixture(t, 4, 4000, 16, 5)
	inv := snap.InvNorms
	s := &Scorer{Shards: 2, NProbe: snap.IVF.NList}
	for _, v := range []int32{0, 17, 3999} {
		want := s.SimilarItems(f, inv, v, 12)
		got := s.SimilarItemsIVF(f, snap.IVF, inv, v, 12)
		if len(got) != len(want) {
			t.Fatalf("item %d: %d vs %d results", v, len(got), len(want))
		}
		for i := range want {
			if got[i].Item != want[i].Item {
				t.Fatalf("item %d rank %d: ivf %+v vs exact %+v", v, i, got[i], want[i])
			}
			if d := math.Abs(float64(got[i].Score - want[i].Score)); d > 1e-6 {
				t.Fatalf("item %d rank %d: score gap %v", v, i, d)
			}
		}
	}
	if got := s.SimilarItemsIVF(f, snap.IVF, inv, 9999, 5); got != nil {
		t.Fatalf("out-of-range item returned %v", got)
	}
}

// The steady-state IVF scan must not allocate: scratch is pooled, heaps are
// Reset not rebuilt, and both scan stages work in stack blocks. This is the
// acceptance gate for the IVF serving hot loop.
func TestIVFScanZeroAllocs(t *testing.T) {
	f, snap := ivfFixture(t, 8, 9001, 64, 9)
	ix := snap.IVF
	s := &Scorer{}
	sc := new(ivfScratch)
	query := f.Row(3)
	if res, _, _ := s.rankIVF(f, ix, query, 10, nil, nil, -1, sc); len(res) != 10 {
		t.Fatalf("warm-up returned %d items", len(res))
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.rankIVF(f, ix, query, 10, nil, nil, -1, sc)
	})
	if allocs != 0 {
		t.Fatalf("IVF scan allocated %v per op, want 0", allocs)
	}
}

// Hot-swap under concurrent IVF load (run with -race): readers hammer the
// index through Store.Current while publishes rotate two models. Every
// response must be internally consistent with a single version.
func TestIVFHotSwapRace(t *testing.T) {
	const users, items, kDim = 4, 6000, 8
	a := uniformFactors(users, items, kDim, 1, 1) // every score 8
	b := uniformFactors(users, items, kDim, 2, 2) // every score 32

	store := NewStore()
	store.SetRetrieval(RetrievalIVF)
	store.SetIVF(32, 1)
	if _, err := store.Publish(a, "a"); err != nil {
		t.Fatal(err)
	}
	s := &Scorer{Shards: 2}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 50; i++ {
			src := a
			if i%2 == 0 {
				src = b
			}
			if _, err := store.Publish(src.Clone(), "swap"); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i >= 50 {
						return
					}
				default:
				}
				snap := store.Current()
				if snap.IVF == nil {
					t.Error("published snapshot missing IVF index")
					return
				}
				got := s.RecommendIVF(snap.Factors, snap.IVF, int32((r+i)%users), 5, nil)
				if len(got) != 5 {
					t.Errorf("reader %d: %d items", r, len(got))
					return
				}
				for _, c := range got {
					if c.Score != got[0].Score || (c.Score != 8 && c.Score != 32) {
						t.Errorf("reader %d: torn scores %v", r, got)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// End-to-end: a server over an IVF store reports the ivf mode, index shape
// and measured probe work in /statsz, recommend and similar-items both run
// through the probe path, and the probe counters reach /metricz.
func TestServerIVFStatsz(t *testing.T) {
	store := NewStore()
	store.SetRetrieval(RetrievalIVF)
	store.SetIVF(0, 3)
	ts := newTestServer(t, store)
	if _, err := store.Publish(centeredFactors(4, 2000, 8, 11), "q"); err != nil {
		t.Fatal(err)
	}
	getBody(t, ts.URL+"/v1/recommend?user=1&k=7", http.StatusOK, nil)
	getBody(t, ts.URL+"/v1/similar-items?item=3&k=5", http.StatusOK, nil)

	var stats statsResponse
	getBody(t, ts.URL+"/statsz", http.StatusOK, &stats)
	rt := stats.Retrieval
	if rt == nil || rt.Mode != "ivf" {
		t.Fatalf("retrieval stats = %+v, want ivf mode", rt)
	}
	if rt.NList != model.DefaultNList(2000) || rt.NProbe != DefaultNProbe(rt.NList) {
		t.Fatalf("index shape = %+v", rt)
	}
	if rt.IVFScans != 2 || rt.MeanProbed <= 0 || rt.MeanCandidates <= 0 {
		t.Fatalf("probe counters = %+v", rt)
	}

	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, metric := range []string{"hsgd_ivf_scans_total 2", "hsgd_ivf_probes_total", "hsgd_ivf_candidates_total"} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metricz missing %q", metric)
		}
	}
}

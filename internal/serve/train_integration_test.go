package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hsgd/internal/dataset"
	"hsgd/internal/engine"
	"hsgd/internal/sgd"
)

// gatedSchedule holds each epoch boundary open until the watcher has
// performed at least one hot-swap (bounded by a deadline so a broken watcher
// fails the test instead of hanging it). The engine calls Rate after writing
// the epoch's checkpoint, so waiting here guarantees the swap happened
// mid-train.
type gatedSchedule struct {
	swaps *atomic.Int32
}

func (s gatedSchedule) Rate(it int) float32 {
	if it == 0 {
		return 0.01 // setup call, before any checkpoint exists
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.swaps.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	return 0.01
}

// TestWatcherHotSwapsMidTrainCheckpoint closes the train → checkpoint →
// hot-swap → serve loop: the engine writes atomic snapshots at epoch
// boundaries while the store's disk watcher polls the same path, and the
// watcher must publish a new serving snapshot before training finishes.
func TestWatcherHotSwapsMidTrainCheckpoint(t *testing.T) {
	train, _, err := dataset.Generate(dataset.MovieLens().Scale(0.03), 21)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hfac")

	store := NewStore()
	var swaps atomic.Int32
	store.OnSwap(func(*Snapshot) { swaps.Add(1) })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go store.Watch(ctx, path, 2*time.Millisecond)

	// The server's training sink closes the loop on observability: the
	// engine's progress stream must surface through /statsz while the
	// watcher hot-swaps the checkpoints the same engine writes.
	server, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}

	rep, f, err := engine.Train(context.Background(), train, engine.Options{
		Threads:        4,
		Params:         sgd.Params{K: 8, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01, Iters: 3},
		Seed:           1,
		Schedule:       gatedSchedule{swaps: &swaps},
		CheckpointPath: path,
		Progress:       server.TrainingSink(),
	})
	if err != nil {
		t.Fatal(err)
	}
	swapsDuringTraining := swaps.Load()
	if rep.Checkpoints != 3 {
		t.Fatalf("engine wrote %d checkpoints, want 3", rep.Checkpoints)
	}
	if swapsDuringTraining == 0 {
		t.Fatal("watcher never hot-swapped a mid-train checkpoint")
	}

	// The served snapshot must be a valid model of the training shape and
	// answer queries.
	snap := store.Current()
	if snap == nil {
		t.Fatal("no live snapshot after training")
	}
	if snap.Factors.M != f.M || snap.Factors.N != f.N || snap.Factors.K != f.K {
		t.Fatalf("served snapshot %dx%d k=%d, trained %dx%d k=%d",
			snap.Factors.M, snap.Factors.N, snap.Factors.K, f.M, f.N, f.K)
	}
	var sc Scorer
	if recs := sc.Recommend(snap.Factors, 0, 5, nil); len(recs) == 0 {
		t.Fatal("served snapshot returned no recommendations")
	}
	if err := store.LastError(); err != "" {
		t.Fatalf("watcher recorded error: %s", err)
	}

	// /statsz must carry the training stream's final state.
	rr := httptest.NewRecorder()
	server.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	var stats struct {
		Training *struct {
			State       string `json:"state"`
			Algorithm   string `json:"algorithm"`
			Epoch       int    `json:"epoch"`
			TotalEpochs int    `json:"total_epochs"`
			Checkpoints int    `json:"checkpoints"`
		} `json:"training"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Training == nil {
		t.Fatal("/statsz has no training block despite a wired sink")
	}
	if stats.Training.State != "done" || stats.Training.Algorithm != "fpsgd" ||
		stats.Training.Epoch != 3 || stats.Training.Checkpoints != rep.Checkpoints {
		t.Fatalf("/statsz training block %+v (report %+v)", stats.Training, rep)
	}
}

// TestStatszHeteroClassBreakdown: a heterogeneous training run surfaces its
// per-executor-class throughput, steal counts, and current split through
// /statsz's training block.
func TestStatszHeteroClassBreakdown(t *testing.T) {
	train, _, err := dataset.Generate(dataset.MovieLens().Scale(0.03), 23)
	if err != nil {
		t.Fatal(err)
	}
	server, err := New(Config{Store: NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = engine.TrainHetero(context.Background(), train, engine.HeteroOptions{
		Options: engine.Options{
			Threads:  3,
			Params:   sgd.Params{K: 8, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01, Iters: 3},
			Seed:     3,
			Progress: server.TrainingSink(),
		},
		BatchedWorkers: 1,
		// Pin the split and disable stealing so each class verifiably works
		// its own region even on this tiny, milliseconds-long run.
		Alpha:      0.5,
		StaticOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	server.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	var stats struct {
		Training *struct {
			Algorithm  string  `json:"algorithm"`
			SplitAlpha float64 `json:"split_alpha"`
			Classes    []struct {
				Class         string  `json:"class"`
				Workers       int     `json:"workers"`
				Updates       int64   `json:"updates"`
				UpdatesPerSec float64 `json:"updates_per_sec"`
			} `json:"classes"`
		} `json:"training"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Training == nil || stats.Training.Algorithm != "hetero" {
		t.Fatalf("/statsz training block %+v, want hetero", stats.Training)
	}
	if stats.Training.SplitAlpha <= 0 || stats.Training.SplitAlpha >= 1 {
		t.Fatalf("split_alpha %v outside (0,1)", stats.Training.SplitAlpha)
	}
	if len(stats.Training.Classes) != 2 {
		t.Fatalf("%d classes in /statsz, want 2", len(stats.Training.Classes))
	}
	for _, c := range stats.Training.Classes {
		if c.Class != "cpu" && c.Class != "batched" {
			t.Fatalf("unknown class %q", c.Class)
		}
		if c.Workers < 1 || c.Updates <= 0 {
			t.Fatalf("class %q did no work: %+v", c.Class, c)
		}
	}
}

// TestCancelledTrainingCheckpointServes is the acceptance loop for the
// cancellation contract: a deadline stops the engine mid-run, the final
// atomic checkpoint it writes on the way out must load through the store's
// watcher, hot-swap into serving, and answer queries — interrupted work is
// published, not abandoned.
func TestCancelledTrainingCheckpointServes(t *testing.T) {
	train, _, err := dataset.Generate(dataset.MovieLens().Scale(0.05), 22)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hfac")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, f, err := engine.Train(ctx, train, engine.Options{
		Threads:        4,
		Params:         sgd.Params{K: 8, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01, Iters: 1 << 20},
		Seed:           2,
		CheckpointPath: path,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if rep == nil || !rep.Interrupted || f == nil {
		t.Fatalf("interrupted run returned rep=%+v f=%v", rep, f != nil)
	}
	if rep.Checkpoints == 0 {
		t.Fatal("interrupted run wrote no final checkpoint")
	}

	// The watcher must pick the final checkpoint up and serve it.
	store := NewStore()
	swapped := make(chan *Snapshot, 1)
	store.OnSwap(func(s *Snapshot) {
		select {
		case swapped <- s:
		default:
		}
	})
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	go store.Watch(wctx, path, 2*time.Millisecond)
	select {
	case <-swapped:
	case <-time.After(2 * time.Second):
		t.Fatal("watcher never hot-swapped the post-cancellation checkpoint")
	}
	snap := store.Current()
	if snap == nil {
		t.Fatal("no live snapshot")
	}
	if snap.Factors.M != f.M || snap.Factors.N != f.N || snap.Factors.K != f.K {
		t.Fatalf("served %dx%d k=%d, trained %dx%d k=%d",
			snap.Factors.M, snap.Factors.N, snap.Factors.K, f.M, f.N, f.K)
	}
	var sc Scorer
	if recs := sc.Recommend(snap.Factors, 0, 5, nil); len(recs) == 0 {
		t.Fatal("snapshot from cancelled run returned no recommendations")
	}
	// The file on disk is the returned model, byte for byte.
	for i := range f.P {
		if snap.Factors.P[i] != f.P[i] {
			t.Fatalf("checkpoint lags returned model at P[%d]", i)
		}
	}
}

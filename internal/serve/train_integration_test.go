package serve

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hsgd/internal/dataset"
	"hsgd/internal/engine"
	"hsgd/internal/sgd"
)

// gatedSchedule holds each epoch boundary open until the watcher has
// performed at least one hot-swap (bounded by a deadline so a broken watcher
// fails the test instead of hanging it). The engine calls Rate after writing
// the epoch's checkpoint, so waiting here guarantees the swap happened
// mid-train.
type gatedSchedule struct {
	swaps *atomic.Int32
}

func (s gatedSchedule) Rate(it int) float32 {
	if it == 0 {
		return 0.01 // setup call, before any checkpoint exists
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.swaps.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	return 0.01
}

// TestWatcherHotSwapsMidTrainCheckpoint closes the train → checkpoint →
// hot-swap → serve loop: the engine writes atomic snapshots at epoch
// boundaries while the store's disk watcher polls the same path, and the
// watcher must publish a new serving snapshot before training finishes.
func TestWatcherHotSwapsMidTrainCheckpoint(t *testing.T) {
	train, _, err := dataset.Generate(dataset.MovieLens().Scale(0.03), 21)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hfac")

	store := NewStore()
	var swaps atomic.Int32
	store.OnSwap(func(*Snapshot) { swaps.Add(1) })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go store.Watch(ctx, path, 2*time.Millisecond)

	rep, f, err := engine.Train(train, engine.Options{
		Threads:        4,
		Params:         sgd.Params{K: 8, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.01, Iters: 3},
		Seed:           1,
		Schedule:       gatedSchedule{swaps: &swaps},
		CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	swapsDuringTraining := swaps.Load()
	if rep.Checkpoints != 3 {
		t.Fatalf("engine wrote %d checkpoints, want 3", rep.Checkpoints)
	}
	if swapsDuringTraining == 0 {
		t.Fatal("watcher never hot-swapped a mid-train checkpoint")
	}

	// The served snapshot must be a valid model of the training shape and
	// answer queries.
	snap := store.Current()
	if snap == nil {
		t.Fatal("no live snapshot after training")
	}
	if snap.Factors.M != f.M || snap.Factors.N != f.N || snap.Factors.K != f.K {
		t.Fatalf("served snapshot %dx%d k=%d, trained %dx%d k=%d",
			snap.Factors.M, snap.Factors.N, snap.Factors.K, f.M, f.N, f.K)
	}
	var sc Scorer
	if recs := sc.Recommend(snap.Factors, 0, 5, nil); len(recs) == 0 {
		t.Fatal("served snapshot returned no recommendations")
	}
	if err := store.LastError(); err != "" {
		t.Fatalf("watcher recorded error: %s", err)
	}
}

package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hsgd/internal/model"
)

// uniformFactors returns factors where every P entry is pv and every Q
// entry is qv, so every prediction is exactly k·pv·qv — handy for telling
// model versions apart.
func uniformFactors(m, n, k int, pv, qv float32) *model.Factors {
	f := &model.Factors{M: m, N: n, K: k,
		P: make([]float32, m*k), Q: make([]float32, n*k)}
	for i := range f.P {
		f.P[i] = pv
	}
	for i := range f.Q {
		f.Q[i] = qv
	}
	return f
}

func TestPublishValidates(t *testing.T) {
	s := NewStore()
	if _, err := s.Publish(nil, "x"); err == nil {
		t.Fatal("nil factors accepted")
	}
	bad := &model.Factors{M: 2, N: 2, K: 2, P: make([]float32, 1)}
	if _, err := s.Publish(bad, "x"); err == nil {
		t.Fatal("invalid factors accepted")
	}
	if s.Current() != nil {
		t.Fatal("failed publish left a snapshot behind")
	}
	snap, err := s.Publish(uniformFactors(2, 3, 4, 1, 1), "good")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || s.Current() != snap {
		t.Fatalf("snapshot not live: %+v", snap)
	}
	if len(snap.InvNorms) != 3 || snap.InvNorms[0] != 0.5 {
		t.Fatalf("InvNorms = %v, want [0.5 0.5 0.5] (‖q‖=2)", snap.InvNorms)
	}
}

func TestOnSwapHookAndVersions(t *testing.T) {
	s := NewStore()
	var swaps []uint64
	s.OnSwap(func(snap *Snapshot) { swaps = append(swaps, snap.Version) })
	for i := 0; i < 3; i++ {
		if _, err := s.Publish(uniformFactors(1, 1, 1, 1, 1), "x"); err != nil {
			t.Fatal(err)
		}
	}
	if len(swaps) != 3 || swaps[0] != 1 || swaps[2] != 3 {
		t.Fatalf("swap hook saw %v", swaps)
	}
}

// Snapshots must hot-swap off disk: the watcher picks up a renamed-in
// snapshot, survives a corrupt write without dropping the live model, and
// recovers once the file is fixed.
func TestWatchHotSwap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.hfac")
	writeSnapshot := func(f *model.Factors) {
		t.Helper()
		tmp := path + ".tmp"
		if err := f.SaveFile(tmp); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	writeSnapshot(uniformFactors(2, 4, 2, 1, 1))

	s := NewStore()
	if _, err := s.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); s.Watch(ctx, path, 5*time.Millisecond) }()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// A new snapshot (different shape, so the size must change) swaps in.
	writeSnapshot(uniformFactors(3, 5, 2, 2, 2))
	waitFor(func() bool { return s.Current().Version >= 2 }, "hot-swap")
	if f := s.Current().Factors; f.M != 3 || f.N != 5 {
		t.Fatalf("swapped factors are %dx%d", f.M, f.N)
	}

	// A corrupt write must not disturb the live snapshot, only LastError.
	liveVersion := s.Current().Version
	if err := os.WriteFile(path, []byte("garbage that is not HFAC"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(func() bool { return s.LastError() != "" }, "load error")
	if s.Current().Version != liveVersion {
		t.Fatal("corrupt file displaced the live snapshot")
	}

	// Recovery: a good snapshot lands and the error clears.
	writeSnapshot(uniformFactors(4, 6, 2, 3, 3))
	waitFor(func() bool { return s.Current().Factors.M == 4 }, "recovery swap")
	if s.LastError() != "" {
		t.Fatalf("LastError still set after recovery: %q", s.LastError())
	}

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Watch did not stop on cancel")
	}
}

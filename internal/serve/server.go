package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hsgd/internal/model"
	"hsgd/internal/obs"
	olog "hsgd/internal/obs/log"
	"hsgd/internal/progress"
)

// Config configures a Server.
type Config struct {
	// Store supplies the live snapshot; required.
	Store *Store
	// Shards is the scorer's worker count; <= 0 means GOMAXPROCS.
	Shards int
	// CacheSize is the LRU result-cache capacity in entries. 0 picks the
	// default (1024); negative disables caching.
	CacheSize int
	// FoldInLambda is the cold-start ridge strength; <= 0 picks
	// DefaultFoldInLambda.
	FoldInLambda float32
	// MaxK caps the k a request may ask for; <= 0 picks 1000.
	MaxK int
	// RerankFactor is the quantized scan's candidate-pool multiplier;
	// <= 0 picks DefaultRerankFactor. Ignored while the snapshot carries no
	// quantized view.
	RerankFactor int
	// NProbe is the IVF path's probed-list count; <= 0 picks DefaultNProbe
	// of the live index's list count. Ignored while the snapshot carries no
	// IVF index.
	NProbe int
	// Metrics is the registry /metricz exports; nil makes the server create
	// a private one. Pass a shared registry when the process also runs a
	// trainer (or a -debug-addr listener) so one scrape sees everything.
	Metrics *obs.Registry
	// MaxInFlight caps concurrently-handled /v1 requests; arrivals beyond
	// the cap are shed immediately with 429 + Retry-After instead of piling
	// onto an already-saturated scorer. 0 picks DefaultMaxInFlight; negative
	// disables shedding. Operational endpoints (/healthz, /readyz, /statsz,
	// /metricz) are never shed.
	MaxInFlight int
	// RequestTimeout bounds each /v1 request's total handling time; a
	// request over the deadline answers 503. 0 picks DefaultRequestTimeout;
	// negative disables the deadline.
	RequestTimeout time.Duration
	// Logger receives the server's structured logs (panics, slow requests);
	// nil falls back to a plain stderr logger so panics are never silent.
	Logger *olog.Logger
	// SlowRequest is the latency threshold above which a /v1 request logs
	// one structured line with its request and trace ids; 0 disables.
	SlowRequest time.Duration
}

// Server is the HTTP JSON API over a snapshot store:
//
//	GET  /v1/predict?user=U&item=V          one score
//	GET  /v1/recommend?user=U&k=10          top-k for a trained user
//	POST /v1/recommend                      cold-start fold-in from ratings
//	GET  /v1/similar-items?item=V&k=10      item-to-item cosine retrieval
//	GET  /healthz                           200 once a snapshot is live
//	GET  /readyz                            200 while taking traffic; 503 draining
//	GET  /statsz                            counters + snapshot metadata
//	GET  /metricz                           Prometheus text-format metrics
//
// Every request pins the snapshot once, so a concurrent hot-swap never
// mixes two model versions inside one response.
type Server struct {
	store        *Store
	scorer       Scorer
	cache        *resultCache
	foldInLambda float32
	maxK         int
	start        time.Time

	nPredict, nRecommend, nFoldIn, nSimilar atomic.Int64
	nErrors, nCacheHit, nCacheMiss          atomic.Int64
	// nShed counts /v1 requests answered 429 at the in-flight cap; nPanics
	// counts handler panics recovered into 500s.
	nShed, nPanics atomic.Int64
	// nQuantScans counts rankings served by the quantized path and
	// nRerankDepth the candidates it rescored exactly — their ratio is the
	// measured rerank depth /statsz reports.
	nQuantScans, nRerankDepth atomic.Int64
	// nIVFScans counts rankings served by the IVF path, nIVFProbes the
	// posting lists it probed and nIVFCands the candidates it int8-scored —
	// the measured probe work /statsz and /metricz export.
	nIVFScans, nIVFProbes, nIVFCands atomic.Int64

	// limiter is the in-flight /v1 semaphore (nil disables shedding);
	// requestTimeout is the per-request deadline (0 disables); draining
	// flips /readyz to 503 ahead of a graceful shutdown.
	limiter        chan struct{}
	requestTimeout time.Duration
	draining       atomic.Bool

	// logger receives panic and slow-request records; slowThreshold is the
	// latency above which a /v1 request logs one line (0 disables).
	logger        *olog.Logger
	slowThreshold time.Duration

	m *serverMetrics

	trainMu    sync.Mutex
	trainEvent *progress.Event
	trainSeen  time.Time
	trainSink  progress.Func // mirrors events into the metrics registry
}

// TrainingSink returns a progress.Func that records the latest training
// event for /statsz and mirrors it into the metrics registry for /metricz —
// the wiring for a process that trains and serves in one binary (the
// checkpoint hot-swap loop): pass it as the trainer's Progress option and
// /statsz grows a "training" block with the live epoch, RMSE, update rate,
// and checkpoint count, while a scrape sees the hsgd_train_* gauges.
func (s *Server) TrainingSink() progress.Func {
	return func(e progress.Event) {
		s.trainMu.Lock()
		s.trainEvent = &e
		s.trainSeen = time.Now()
		s.trainMu.Unlock()
		s.trainSink.Emit(e)
	}
}

// Metrics returns the registry /metricz exports — the hook for mounting
// the same metrics on an auxiliary debug listener.
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

// New builds a Server over the given store and registers the cache
// invalidation hook: every hot-swap purges the result cache.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = 1024
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = 1000
	}
	s := &Server{
		store:        cfg.Store,
		scorer:       Scorer{Shards: cfg.Shards, RerankFactor: cfg.RerankFactor, NProbe: cfg.NProbe},
		cache:        newResultCache(cacheSize),
		foldInLambda: cfg.FoldInLambda,
		maxK:         maxK,
		start:        time.Now(),
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if maxInFlight > 0 {
		s.limiter = make(chan struct{}, maxInFlight)
	}
	s.requestTimeout = cfg.RequestTimeout
	if s.requestTimeout == 0 {
		s.requestTimeout = DefaultRequestTimeout
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = olog.Default()
	}
	s.slowThreshold = cfg.SlowRequest
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.m = newServerMetrics(reg, s)
	s.trainSink = progress.MetricsSink(reg)
	cfg.Store.OnSwap(func(*Snapshot) {
		s.cache.Purge()
		s.m.swaps.Inc()
	})
	return s, nil
}

// reqScratch is the pooled per-request state of the recommend handlers:
// the seen-id set, the quantized-scan scratch, and the fold-in rating
// buffers. Pooling it keeps the steady-state request path from allocating
// query-sized scratch on every call.
type reqScratch struct {
	seen  map[int32]bool
	quant quantScratch
	ivf   ivfScratch
	items []int32
	vals  []float32
	// query is the scratch float32 vector similar-items scales its item row
	// into before the candidate scan.
	query []float32
}

var reqPool = sync.Pool{New: func() any {
	return &reqScratch{seen: make(map[int32]bool)}
}}

func getReqScratch() *reqScratch { return reqPool.Get().(*reqScratch) }

func (sc *reqScratch) release() {
	clear(sc.seen)
	reqPool.Put(sc)
}

// recommend routes one ranking through the snapshot's retrieval mode: the
// IVF probe-and-rerank when the snapshot carries an index, the quantized
// scan with exact rerank when it carries an int8 view, the exact float32
// scan otherwise. IVF and quantized results alias sc and must be consumed
// before sc is released.
func (s *Server) recommend(snap *Snapshot, query []float32, k int, seen map[int32]bool, sc *reqScratch) []model.ScoredItem {
	if snap.IVF != nil {
		ranked, probed, cands := s.scorer.rankIVF(snap.Factors, snap.IVF, query, k, seen, nil, -1, &sc.ivf)
		s.nIVFScans.Add(1)
		s.nIVFProbes.Add(int64(probed))
		s.nIVFCands.Add(int64(cands))
		return ranked
	}
	if snap.Quantized != nil {
		ranked, depth := s.scorer.rankQuantized(snap.Factors, snap.Quantized, query, k, seen, nil, -1, &sc.quant)
		s.nQuantScans.Add(1)
		s.nRerankDepth.Add(int64(depth))
		return ranked
	}
	return s.scorer.rank(snap.Factors, query, k, seen, nil, -1)
}

// similar routes one similar-items ranking through the snapshot's
// retrieval mode with the same candidate/rerank structure as recommend:
// probed (or int8-scanned) candidates are ranked by approximate cosine and
// the survivors rescored as exact float32 cosines. Results alias sc and
// must be consumed before sc is released.
func (s *Server) similar(snap *Snapshot, v int32, k int, sc *reqScratch) []model.ScoredItem {
	f, inv := snap.Factors, snap.InvNorms
	if int(v) < 0 || int(v) >= f.N || len(inv) != f.N || inv[v] == 0 {
		return nil
	}
	if snap.IVF == nil && snap.Quantized == nil {
		return s.scorer.SimilarItems(f, inv, v, k)
	}
	// Scale the query by its own inverse norm so the reported scores are
	// true cosines, not just rank-equivalent.
	if cap(sc.query) < f.K {
		sc.query = make([]float32, f.K)
	}
	query := sc.query[:f.K]
	for i, x := range f.Colvec(v) {
		query[i] = x * inv[v]
	}
	if snap.IVF != nil {
		ranked, probed, cands := s.scorer.rankIVF(f, snap.IVF, query, k, nil, inv, v, &sc.ivf)
		s.nIVFScans.Add(1)
		s.nIVFProbes.Add(int64(probed))
		s.nIVFCands.Add(int64(cands))
		return ranked
	}
	ranked, depth := s.scorer.rankQuantized(f, snap.Quantized, query, k, nil, inv, v, &sc.quant)
	s.nQuantScans.Add(1)
	s.nRerankDepth.Add(int64(depth))
	return ranked
}

// seenSet fills the pooled seen map from the exclude list; the map is
// always non-nil (lookups on an empty map are free) and cleared on release.
func (sc *reqScratch) seenSet(exclude []int32) map[int32]bool {
	for _, id := range exclude {
		sc.seen[id] = true
	}
	return sc.seen
}

// Handler returns the route mux. It is what cmd/hsgd-serve mounts and what
// the tests drive through httptest. The /v1 routes run behind the observe
// wrapper (request-id + traceparent headers, slow-request logging) and the
// overload stack (panic recovery, in-flight shedding, per-request
// deadline); the operational endpoints stay bare so a saturated scorer
// never blinds probes or scrapes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statsz", s.handleStats)
	mux.Handle("GET /metricz", obs.Handler(s.m.reg))
	mux.Handle("GET /v1/predict", s.observe("predict", s.protect(timed(s.m.predict, s.handlePredict))))
	mux.Handle("GET /v1/recommend", s.observe("recommend", s.protect(timed(s.m.recommendGet, s.handleRecommendGet))))
	mux.Handle("POST /v1/recommend", s.observe("recommend", s.protect(timed(s.m.recommendPost, s.handleRecommendPost))))
	mux.Handle("GET /v1/similar-items", s.observe("similar_items", s.protect(timed(s.m.similar, s.handleSimilar))))
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.nErrors.Add(1)
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// snapshot pins the live snapshot for the request, failing 503 while no
// model has been published yet.
func (s *Server) snapshot(w http.ResponseWriter) (*Snapshot, bool) {
	snap := s.store.Current()
	if snap == nil {
		s.fail(w, http.StatusServiceUnavailable, "no model snapshot loaded yet")
		return nil, false
	}
	return snap, true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.store.Current() == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no snapshot"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Snapshot      *snapshotStats  `json:"snapshot,omitempty"`
	Retrieval     *retrievalStats `json:"retrieval,omitempty"`
	Training      *trainingStats  `json:"training,omitempty"`
	LastLoadError string          `json:"last_load_error,omitempty"`
	Requests      requestStats    `json:"requests"`
	Cache         cacheStats      `json:"cache"`
}

// retrievalStats reports which scoring path the live snapshot serves and
// its tradeoff knobs: the configured rerank factor, what the int8 view (and
// IVF index) cost to build at swap time, the measured mean rerank depth
// (candidates rescored exactly per quantized ranking), and — in IVF mode —
// the index shape plus the measured probe work per ranking.
type retrievalStats struct {
	Mode            string  `json:"mode"` // ivf | quantized | exact
	RerankFactor    int     `json:"rerank_factor,omitempty"`
	QuantBuildMS    float64 `json:"quant_build_ms,omitempty"`
	QuantizedScans  int64   `json:"quantized_scans,omitempty"`
	MeanRerankDepth float64 `json:"mean_rerank_depth,omitempty"`
	// IVF-mode fields: the index's list count, the resolved probe count, the
	// publish-time k-means cost (0 when the index came prebuilt from the
	// snapshot file), and the measured per-ranking probe work.
	NList          int     `json:"nlist,omitempty"`
	NProbe         int     `json:"nprobe,omitempty"`
	IVFBuildMS     float64 `json:"ivf_build_ms,omitempty"`
	IVFScans       int64   `json:"ivf_scans,omitempty"`
	MeanProbed     float64 `json:"mean_probed_lists,omitempty"`
	MeanCandidates float64 `json:"mean_candidates,omitempty"`
}

// trainingStats mirrors the latest progress event recorded through
// TrainingSink; State is "training" until a final done/interrupted event
// arrives. Heterogeneous runs additionally carry the current nonuniform
// split and one entry per executor class.
type trainingStats struct {
	State     string `json:"state"` // training | done | interrupted
	Algorithm string `json:"algorithm"`
	// RunID identifies the distributed run feeding this process's events
	// (hex, matching the dist log lines and manifest); absent for
	// single-process trainers.
	RunID         string  `json:"run_id,omitempty"`
	Epoch         int     `json:"epoch"`
	TotalEpochs   int     `json:"total_epochs"`
	RMSE          float64 `json:"rmse,omitempty"`
	TotalUpdates  int64   `json:"total_updates,omitempty"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
	Checkpoints   int     `json:"checkpoints,omitempty"`
	UpdatedAt     string  `json:"updated_at"`
	// LastEventAgeMS is how stale the block is: milliseconds since the
	// newest event was emitted (its trainer-stamped Time, falling back to
	// arrival time for events without one). A growing age on a run still in
	// state "training" means the feeder stalled or died.
	LastEventAgeMS float64 `json:"last_event_age_ms"`

	// SplitAlpha is the fraction of the rating mass owned by the
	// throughput (batched) class; Classes breaks the update totals down
	// per executor class (progress.ClassStat carries its own JSON tags).
	// Both absent for single-class trainers.
	SplitAlpha float64              `json:"split_alpha,omitempty"`
	Classes    []progress.ClassStat `json:"classes,omitempty"`
}

type snapshotStats struct {
	Version  uint64 `json:"version"`
	Source   string `json:"source"`
	LoadedAt string `json:"loaded_at"`
	Users    int    `json:"users"`
	Items    int    `json:"items"`
	K        int    `json:"k"`
}

type requestStats struct {
	Predict   int64 `json:"predict"`
	Recommend int64 `json:"recommend"`
	FoldIn    int64 `json:"fold_in"`
	Similar   int64 `json:"similar_items"`
	Errors    int64 `json:"errors"`
	Shed      int64 `json:"shed"`
	Panics    int64 `json:"panics"`
	InFlight  int   `json:"in_flight"`
}

type cacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		LastLoadError: s.store.LastError(),
		Requests: requestStats{
			Predict:   s.nPredict.Load(),
			Recommend: s.nRecommend.Load(),
			FoldIn:    s.nFoldIn.Load(),
			Similar:   s.nSimilar.Load(),
			Errors:    s.nErrors.Load(),
			Shed:      s.nShed.Load(),
			Panics:    s.nPanics.Load(),
			InFlight:  s.InFlight(),
		},
		Cache: cacheStats{
			Hits:    s.nCacheHit.Load(),
			Misses:  s.nCacheMiss.Load(),
			Entries: s.cache.Len(),
		},
	}
	if snap := s.store.Current(); snap != nil {
		resp.Snapshot = &snapshotStats{
			Version:  snap.Version,
			Source:   snap.Source,
			LoadedAt: snap.LoadedAt.UTC().Format(time.RFC3339),
			Users:    snap.Factors.M,
			Items:    snap.Factors.N,
			K:        snap.Factors.K,
		}
		resp.Retrieval = &retrievalStats{Mode: "exact"}
		if snap.Quantized != nil {
			resp.Retrieval.Mode = "quantized"
			resp.Retrieval.RerankFactor = EffectiveRerankFactor(s.scorer.RerankFactor)
			resp.Retrieval.QuantBuildMS = float64(snap.QuantBuild.Nanoseconds()) / 1e6
			scans := s.nQuantScans.Load()
			resp.Retrieval.QuantizedScans = scans
			if scans > 0 {
				resp.Retrieval.MeanRerankDepth = float64(s.nRerankDepth.Load()) / float64(scans)
			}
		}
		if snap.IVF != nil {
			resp.Retrieval.Mode = "ivf"
			resp.Retrieval.NList = snap.IVF.NList
			resp.Retrieval.NProbe = EffectiveNProbe(s.scorer.NProbe, snap.IVF.NList)
			resp.Retrieval.IVFBuildMS = float64(snap.IVFBuild.Nanoseconds()) / 1e6
			scans := s.nIVFScans.Load()
			resp.Retrieval.IVFScans = scans
			if scans > 0 {
				resp.Retrieval.MeanProbed = float64(s.nIVFProbes.Load()) / float64(scans)
				resp.Retrieval.MeanCandidates = float64(s.nIVFCands.Load()) / float64(scans)
			}
		}
	}
	s.trainMu.Lock()
	if e := s.trainEvent; e != nil {
		state := "training"
		switch e.Kind {
		case progress.KindDone:
			state = "done"
		case progress.KindInterrupted:
			state = "interrupted"
		}
		stamp := e.Time
		if stamp.IsZero() {
			stamp = s.trainSeen
		}
		var runID string
		if e.RunID != 0 {
			runID = fmt.Sprintf("%016x", e.RunID)
		}
		resp.Training = &trainingStats{
			State:          state,
			Algorithm:      e.Algorithm,
			RunID:          runID,
			Epoch:          e.Epoch,
			TotalEpochs:    e.TotalEpochs,
			RMSE:           e.RMSE,
			TotalUpdates:   e.TotalUpdates,
			UpdatesPerSec:  e.UpdatesPerSec,
			Checkpoints:    e.Checkpoints,
			UpdatedAt:      s.trainSeen.UTC().Format(time.RFC3339),
			LastEventAgeMS: float64(time.Since(stamp).Nanoseconds()) / 1e6,
			SplitAlpha:     e.SplitAlpha,
			Classes:        e.Classes,
		}
	}
	s.trainMu.Unlock()
	s.writeJSON(w, http.StatusOK, resp)
}

type predictResponse struct {
	User            int32   `json:"user"`
	Item            int32   `json:"item"`
	Score           float32 `json:"score"`
	SnapshotVersion uint64  `json:"snapshot_version"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.nPredict.Add(1)
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	f := snap.Factors
	u, err := parseID(r.URL.Query().Get("user"), "user", f.M)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := parseID(r.URL.Query().Get("item"), "item", f.N)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, predictResponse{
		User: u, Item: v, Score: f.Predict(u, v), SnapshotVersion: snap.Version,
	})
}

type recommendRequest struct {
	// User is the trained user id; omit (or set to -1) for a pure
	// cold-start request that carries Ratings instead.
	User *int32 `json:"user,omitempty"`
	K    int    `json:"k"`
	// Ratings triggers fold-in: the user's vector is solved against the
	// frozen item factors before scoring.
	Ratings []ratingJSON `json:"ratings,omitempty"`
	// Exclude lists item ids to drop from the results (e.g. already-seen
	// items). Rated items in a fold-in request are always excluded.
	Exclude []int32 `json:"exclude,omitempty"`
}

type ratingJSON struct {
	Item  int32   `json:"item"`
	Value float32 `json:"value"`
}

type recommendResponse struct {
	User            *int32       `json:"user,omitempty"`
	FoldIn          bool         `json:"fold_in,omitempty"`
	SnapshotVersion uint64       `json:"snapshot_version"`
	Items           []scoredItem `json:"items"`
}

type scoredItem struct {
	Item  int32   `json:"item"`
	Score float32 `json:"score"`
}

func (s *Server) handleRecommendGet(w http.ResponseWriter, r *http.Request) {
	s.nRecommend.Add(1)
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	u, err := parseID(q.Get("user"), "user", snap.Factors.M)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := s.parseK(q.Get("k"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	exclude, err := parseIDList(q.Get("exclude"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The key carries the snapshot version: a request racing a hot-swap may
	// Put a result computed from the old snapshot after the purge, and the
	// version keeps such an entry unreachable (the purge is just memory
	// reclamation).
	key := fmt.Sprintf("r/%d/%d/%d/%s", snap.Version, u, k, q.Get("exclude"))
	if body, ok := s.cache.Get(key); ok {
		s.nCacheHit.Add(1)
		writeCached(w, body)
		return
	}
	s.nCacheMiss.Add(1)
	sc := getReqScratch()
	ranked := s.recommend(snap, snap.Factors.Row(u), k, sc.seenSet(exclude), sc)
	body := mustMarshal(recommendResponse{
		User: &u, SnapshotVersion: snap.Version, Items: toScored(ranked),
	})
	sc.release()
	s.cache.Put(key, body)
	writeCached(w, body)
}

func (s *Server) handleRecommendPost(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.nRecommend.Add(1)
		s.fail(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	snap, okSnap := s.snapshot(w)
	if !okSnap {
		s.nRecommend.Add(1)
		return
	}
	k, err := s.clampK(req.K)
	if err != nil {
		s.nRecommend.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	sc := getReqScratch()
	defer sc.release()
	seen := sc.seenSet(req.Exclude)

	if len(req.Ratings) == 0 {
		// No ratings: behaves like the GET form for a trained user.
		s.nRecommend.Add(1)
		if req.User == nil || int(*req.User) < 0 || int(*req.User) >= snap.Factors.M {
			s.fail(w, http.StatusBadRequest, "user missing or out of range and no ratings for fold-in given")
			return
		}
		ranked := s.recommend(snap, snap.Factors.Row(*req.User), k, seen, sc)
		s.writeJSON(w, http.StatusOK, recommendResponse{
			User: req.User, SnapshotVersion: snap.Version, Items: toScored(ranked),
		})
		return
	}

	// Cold-start fold-in: solve a vector from the supplied ratings, then
	// rank with it, excluding what the user just told us they rated.
	s.nFoldIn.Add(1)
	items := sc.items[:0]
	vals := sc.vals[:0]
	for _, rt := range req.Ratings {
		items = append(items, rt.Item)
		vals = append(vals, rt.Value)
		seen[rt.Item] = true
	}
	sc.items, sc.vals = items, vals // keep grown capacity pooled
	vec, err := FoldIn(snap.Factors, items, vals, s.foldInLambda)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "fold-in: %v", err)
		return
	}
	ranked := s.recommend(snap, vec, k, seen, sc)
	s.writeJSON(w, http.StatusOK, recommendResponse{
		User: req.User, FoldIn: true, SnapshotVersion: snap.Version, Items: toScored(ranked),
	})
}

type similarResponse struct {
	Item            int32        `json:"item"`
	SnapshotVersion uint64       `json:"snapshot_version"`
	Items           []scoredItem `json:"items"`
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	s.nSimilar.Add(1)
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	v, err := parseID(q.Get("item"), "item", snap.Factors.N)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := s.parseK(q.Get("k"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := fmt.Sprintf("s/%d/%d/%d", snap.Version, v, k)
	if body, ok := s.cache.Get(key); ok {
		s.nCacheHit.Add(1)
		writeCached(w, body)
		return
	}
	s.nCacheMiss.Add(1)
	sc := getReqScratch()
	ranked := s.similar(snap, v, k, sc)
	body := mustMarshal(similarResponse{
		Item: v, SnapshotVersion: snap.Version, Items: toScored(ranked),
	})
	sc.release()
	s.cache.Put(key, body)
	writeCached(w, body)
}

// --- small helpers ---

func parseID(raw, name string, limit int) (int32, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", name)
	}
	id, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter %q", name, raw)
	}
	if id < 0 || int(id) >= limit {
		return 0, fmt.Errorf("%s %d outside [0,%d)", name, id, limit)
	}
	return int32(id), nil
}

func (s *Server) parseK(raw string) (int, error) {
	if raw == "" {
		return s.clampK(0)
	}
	k, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad k %q", raw)
	}
	return s.clampK(k)
}

// clampK applies the default page size (k=0, the JSON zero value and the
// unset query parameter alike) and the configured ceiling.
func (s *Server) clampK(k int) (int, error) {
	if k == 0 {
		return 10, nil
	}
	if k < 0 {
		return 0, fmt.Errorf("bad k %d", k)
	}
	if k > s.maxK {
		return 0, fmt.Errorf("k %d over limit %d", k, s.maxK)
	}
	return k, nil
}

func parseIDList(raw string) ([]int32, error) {
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]int32, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad exclude entry %q", p)
		}
		out = append(out, int32(id))
	}
	return out, nil
}

func toScored(ranked []model.ScoredItem) []scoredItem {
	out := make([]scoredItem, len(ranked))
	for i, c := range ranked {
		out[i] = scoredItem{Item: c.Item, Score: c.Score}
	}
	return out
}

func mustMarshal(v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		panic(err) // all response types are marshalable
	}
	return append(body, '\n')
}

func writeCached(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hsgd/internal/progress"
)

// scrapeMetricz fetches /metricz and returns the Prometheus text body.
func scrapeMetricz(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metricz: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metricz: content-type %q", ct)
	}
	return string(raw)
}

// metricValue returns the sample value of the first line whose name+labels
// prefix matches, or -1 when the family is absent.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	return -1
}

// TestMetriczScrapeUnderHotSwapLoad (run with -race): scrapers pull
// /metricz while readers hammer /v1/recommend and a publisher hot-swaps
// the snapshot underneath both. Every scrape must return well-formed
// Prometheus text, and the final scrape must account for the traffic:
// request histogram counts, cache activity, and one swap increment per
// publish.
func TestMetriczScrapeUnderHotSwapLoad(t *testing.T) {
	const users, items, kDim, swapsWanted = 4, 3000, 8, 40
	store := NewStore()
	ts := newTestServer(t, store)
	if _, err := store.Publish(uniformFactors(users, items, kDim, 1, 1), "a"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // publisher: hot-swap the snapshot swapsWanted more times
		defer wg.Done()
		defer close(stop)
		for i := 0; i < swapsWanted; i++ {
			f := uniformFactors(users, items, kDim, 1, float32(1+i%3))
			if _, err := store.Publish(f, "swap"); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ { // readers: recommend traffic across the swaps
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i >= 30 {
						return
					}
				default:
				}
				getBody(t, ts.URL+"/v1/recommend?user="+strconv.Itoa((r+i)%users)+"&k=5", http.StatusOK, nil)
			}
		}(r)
	}
	wg.Add(1)
	go func() { // scraper: every concurrent scrape must be well-formed
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				if i >= 10 {
					return
				}
			default:
			}
			body := scrapeMetricz(t, ts.URL)
			if !strings.Contains(body, "# TYPE hsgd_request_duration_seconds histogram") {
				t.Error("scrape missing request histogram family")
				return
			}
		}
	}()
	wg.Wait()

	body := scrapeMetricz(t, ts.URL)
	if n := metricValue(t, body, `hsgd_request_duration_seconds_count{endpoint="recommend_get"}`); n < 90 {
		t.Fatalf("recommend_get histogram count %v, want >= 90 (3 readers x 30)", n)
	}
	if n := metricValue(t, body, `hsgd_snapshot_swaps_total`); n < swapsWanted {
		t.Fatalf("snapshot swaps %v, want >= %d", n, swapsWanted)
	}
	hits := metricValue(t, body, `hsgd_cache_hits_total`)
	misses := metricValue(t, body, `hsgd_cache_misses_total`)
	if hits < 0 || misses <= 0 {
		t.Fatalf("cache counters hits=%v misses=%v, want both exported and misses > 0", hits, misses)
	}
	if v := metricValue(t, body, `hsgd_snapshot_version`); v < 1 {
		t.Fatalf("snapshot version gauge %v, want >= 1", v)
	}
	// The histogram's sum and +Inf bucket must agree with the count —
	// torn scrapes under concurrent Observe would show up here first.
	inf := metricValue(t, body, `hsgd_request_duration_seconds_bucket{endpoint="recommend_get",le="+Inf"}`)
	cnt := metricValue(t, body, `hsgd_request_duration_seconds_count{endpoint="recommend_get"}`)
	if inf != cnt {
		t.Fatalf("+Inf bucket %v != count %v", inf, cnt)
	}
}

// TestMetriczTrainingMetrics: progress events delivered through
// TrainingSink surface as hsgd_train_* gauges on /metricz, including the
// per-class labeled series, and /statsz reports how stale the last event
// is.
func TestMetriczTrainingMetrics(t *testing.T) {
	store := NewStore()
	if _, err := store.Publish(uniformFactors(2, 100, 4, 1, 1), "m"); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	sink := srv.TrainingSink()
	sink.Emit(progress.Event{
		Kind: progress.KindEpoch, Algorithm: "hetero",
		Time:  time.Now().Add(-250 * time.Millisecond),
		Epoch: 2, TotalEpochs: 5, RMSE: 1.25, TotalUpdates: 1000, UpdatesPerSec: 5e6,
		Classes: []progress.ClassStat{
			{Class: "cpu", Workers: 3, Updates: 800, UpdatesPerSec: 4e6, Steals: 2, Tasks: 40, TaskP50MS: 0.5, TaskP99MS: 2},
			{Class: "batched", Workers: 1, Updates: 200, UpdatesPerSec: 1e6, Tasks: 10, OverlapRatio: 0.75},
		},
	})

	body := scrapeMetricz(t, ts.URL)
	for prefix, want := range map[string]float64{
		`hsgd_train_epoch`:                                2,
		`hsgd_train_total_epochs`:                         5,
		`hsgd_train_rmse`:                                 1.25,
		`hsgd_train_updates`:                              1000,
		`hsgd_train_class_updates{class="cpu"}`:           800,
		`hsgd_train_class_steals{class="cpu"}`:            2,
		`hsgd_train_class_tasks{class="cpu"}`:             40,
		`hsgd_train_class_task_p50_seconds{class="cpu"}`:  0.0005,
		`hsgd_train_class_overlap_ratio{class="batched"}`: 0.75,
	} {
		if got := metricValue(t, body, prefix); got != want {
			t.Errorf("%s = %v, want %v", prefix, got, want)
		}
	}
	if v := metricValue(t, body, `hsgd_train_last_event_timestamp_seconds`); v <= 0 {
		t.Errorf("last event timestamp gauge %v, want > 0", v)
	}

	var statsz struct {
		Training *struct {
			State          string  `json:"state"`
			LastEventAgeMS float64 `json:"last_event_age_ms"`
		} `json:"training"`
	}
	getBody(t, ts.URL+"/statsz", http.StatusOK, &statsz)
	if statsz.Training == nil {
		t.Fatal("/statsz missing training block after sink event")
	}
	if age := statsz.Training.LastEventAgeMS; age < 250 || age > 60_000 {
		t.Fatalf("last_event_age_ms = %v, want >= 250 (event stamped 250ms ago)", age)
	}
}

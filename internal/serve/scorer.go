// Package serve is the online half of the system: it turns factors trained
// by TrainParallel (or loaded from an HFAC snapshot file) into a queryable,
// continuously-refreshable recommendation service. cuMF_SGD and "Faster and
// Cheaper" both frame fast factorization as the feeder for low-latency
// serving; this package is that consumer.
//
// The pieces:
//
//   - Scorer: a sharded parallel top-K retriever over the item factors
//     (scorer.go).
//   - Store: the live snapshot behind an atomic pointer, with zero-downtime
//     hot-swap and a disk watcher (snapshot.go).
//   - FoldIn: ridge least-squares cold-start so unseen users get
//     recommendations from a handful of ratings (foldin.go).
//   - Server: the HTTP JSON API tying them together, with an LRU result
//     cache invalidated on swap (server.go, cache.go).
package serve

import (
	"runtime"
	"sync"

	"hsgd/internal/model"
)

// scoreBlockItems is the number of contiguous Q rows scored per inner
// block: dot products are computed for the whole block into a small
// on-stack buffer first, then offered to the heap. Separating the streaming
// arithmetic from the branchy heap bookkeeping keeps the hot loop over the
// contiguous rows tight, the same reason the trainer processes grid blocks
// rather than single ratings.
const scoreBlockItems = 512

// serialCutoff is the item count below which sharding is pure overhead and
// the scorer runs on the calling goroutine.
const serialCutoff = 4096

// Scorer ranks the item space for a query vector by partitioning items
// across worker goroutines, each scanning its contiguous shard of Q with a
// per-shard bounded min-heap, followed by a final merge. A zero Scorer is
// usable: it shards across GOMAXPROCS workers.
//
// The scorer has three modes. Recommend/RecommendVector scan the exact
// float32 rows; RecommendQuantized/RecommendVectorQuantized (quant.go) scan
// an int8-quantized view 4× smaller and rerank the surviving candidates
// exactly, which is faster whenever the catalog outgrows the cache and
// returns the same scores; RecommendIVF/RecommendVectorIVF (ivf.go) probe
// an inverted-file index so only the top-NProbe coarse cells' candidates
// are scored at all — the path that survives catalogs where even the int8
// linear scan is bandwidth-bound.
type Scorer struct {
	// Shards is the number of worker goroutines; <= 0 means GOMAXPROCS.
	Shards int
	// RerankFactor scales the quantized scan's per-shard candidate pool
	// (RerankFactor·k items survive to the exact rerank); <= 0 means
	// DefaultRerankFactor. Exact-mode scans ignore it.
	RerankFactor int
	// NProbe is the IVF path's probed-list count (ivf.go); <= 0 means
	// DefaultNProbe of the index's list count. The other modes ignore it.
	NProbe int
}

func (s *Scorer) workers(nItems int) int {
	w := s.Shards
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if nItems < serialCutoff {
		return 1
	}
	if w > nItems {
		w = nItems
	}
	return w
}

// Recommend returns the k items with the highest predicted rating for the
// trained user u, excluding the ids in seen (out-of-range ids are ignored).
// Returns nil when u is outside the snapshot's user range.
func (s *Scorer) Recommend(f *model.Factors, u int32, k int, seen map[int32]bool) []model.ScoredItem {
	if int(u) < 0 || int(u) >= f.M {
		return nil
	}
	return s.rank(f, f.Row(u), k, seen, nil, -1)
}

// RecommendVector ranks items for an arbitrary user vector — the entry
// point for cold-start users whose vector came from FoldIn rather than
// training. query must have length f.K.
func (s *Scorer) RecommendVector(f *model.Factors, query []float32, k int, seen map[int32]bool) []model.ScoredItem {
	if len(query) != f.K {
		return nil
	}
	return s.rank(f, query, k, seen, nil, -1)
}

// SimilarItems returns the k items most cosine-similar to item v,
// excluding v itself. invNorms must hold 1/‖q_w‖ per item (0 for zero
// vectors) — the Store precomputes it once per snapshot so the hot loop
// pays one multiply instead of a norm.
func (s *Scorer) SimilarItems(f *model.Factors, invNorms []float32, v int32, k int) []model.ScoredItem {
	if int(v) < 0 || int(v) >= f.N || len(invNorms) != f.N || invNorms[v] == 0 {
		return nil
	}
	// Scale the query by its own inverse norm so the reported scores are
	// true cosines, not just rank-equivalent.
	qv := f.Colvec(v)
	query := make([]float32, f.K)
	for i, x := range qv {
		query[i] = x * invNorms[v]
	}
	return s.rank(f, query, k, nil, invNorms, v)
}

// rank is the shared scan: score = query·q_v (times scale[v] if scale is
// non-nil), skipping seen ids and the excluded item.
func (s *Scorer) rank(f *model.Factors, query []float32, k int, seen map[int32]bool, scale []float32, exclude int32) []model.ScoredItem {
	n := f.N
	if k <= 0 || n == 0 {
		return nil
	}
	w := s.workers(n)
	if w == 1 {
		return scoreRange(f, query, 0, n, k, seen, scale, exclude).Sorted()
	}
	heaps := make([]*model.TopK, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := n*i/w, n*(i+1)/w
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			heaps[i] = scoreRange(f, query, lo, hi, k, seen, scale, exclude)
		}(i, lo, hi)
	}
	wg.Wait()
	return model.MergeTopK(k, heaps...)
}

// scoreRange scans items [lo, hi) in blocks and returns the shard's local
// top-k heap.
func scoreRange(f *model.Factors, query []float32, lo, hi, k int, seen map[int32]bool, scale []float32, exclude int32) *model.TopK {
	t := model.NewTopK(k)
	var scores [scoreBlockItems]float32
	kdim := f.K
	for b := lo; b < hi; b += scoreBlockItems {
		e := min(b+scoreBlockItems, hi)
		rows := f.Q[b*kdim : e*kdim]
		cnt := e - b
		// Register-blocked scoring: 4 contiguous rows share one streaming
		// pass over the query, so the query loads (and loop overhead)
		// amortise 4× versus a row-at-a-time Dot — this is what makes the
		// scorer faster than the serial TopN scan even on one shard.
		i := 0
		for ; i+4 <= cnt; i += 4 {
			quad := rows[i*kdim : (i+4)*kdim]
			scores[i], scores[i+1], scores[i+2], scores[i+3] = dot4(query,
				quad[:kdim], quad[kdim:2*kdim], quad[2*kdim:3*kdim], quad[3*kdim:])
		}
		for ; i < cnt; i++ {
			scores[i] = model.Dot(query, rows[i*kdim:(i+1)*kdim])
		}
		for i := 0; i < cnt; i++ {
			v := int32(b + i)
			if v == exclude || seen[v] {
				continue
			}
			sc := scores[i]
			if scale != nil {
				s := scale[b+i]
				if s == 0 {
					continue // zero-norm item: cosine undefined, skip
				}
				sc *= s
			}
			t.Push(v, sc)
		}
	}
	return t
}

// dot4 computes the dot product of q against four equal-length rows in one
// pass. Slicing every row to len(q) up front lets the compiler drop the
// bounds checks in the loop and keep the four accumulators in registers.
func dot4(q, a, b, c, d []float32) (sa, sb, sc, sd float32) {
	a = a[:len(q)]
	b = b[:len(q)]
	c = c[:len(q)]
	d = d[:len(q)]
	for j, x := range q {
		sa += x * a[j]
		sb += x * b[j]
		sc += x * c[j]
		sd += x * d[j]
	}
	return
}

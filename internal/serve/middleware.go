package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hsgd/internal/obs"
)

// observe is the outermost /v1 wrapper: every response carries an
// X-Request-ID (echoed from the client when it sent one, generated
// otherwise) and a W3C traceparent — the incoming trace id propagated under
// a fresh server span id, or a new trace when the client sent none — and a
// request slower than the configured -slow-request threshold produces one
// structured log line carrying both ids. It runs outside the overload
// stack so even shed (429) and timed-out (503) responses are correlatable.
func (s *Server) observe(endpoint string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = strconv.FormatUint(obs.NewSpanID(), 16)
		}
		trace, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			trace = obs.NewTraceID()
		}
		hdr := w.Header()
		hdr.Set("X-Request-Id", id)
		hdr.Set("Traceparent", obs.FormatTraceparent(trace, obs.NewSpanID()))
		start := time.Now()
		h.ServeHTTP(w, r)
		if s.slowThreshold > 0 {
			if dur := time.Since(start); dur >= s.slowThreshold {
				s.logger.Warn("slow request",
					"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
					"dur_ms", fmt.Sprintf("%.1f", float64(dur.Nanoseconds())/1e6),
					"request_id", id, "trace", fmt.Sprintf("%016x", trace))
			}
		}
	})
}

package serve

import (
	"context"
	"math"
	"testing"

	"hsgd/internal/core"
	"hsgd/internal/dataset"
	"hsgd/internal/model"
	"hsgd/internal/sgd"
	"hsgd/internal/sparse"
)

func TestFoldInValidation(t *testing.T) {
	f := uniformFactors(2, 4, 2, 1, 1)
	if _, err := FoldIn(f, []int32{1}, []float32{1, 2}, 0.05); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := FoldIn(f, []int32{99, -1}, []float32{1, 2}, 0.05); err == nil {
		t.Fatal("all-out-of-range ratings accepted")
	}
	// lambda <= 0 falls back to the default instead of failing.
	vec, err := FoldIn(f, []int32{0, 99}, []float32{2, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 2 {
		t.Fatalf("fold-in vector length %d", len(vec))
	}
}

// With ratings that are exact inner products against Q, fold-in with tiny
// regularisation must recover a vector reproducing them.
func TestFoldInExactRecovery(t *testing.T) {
	f := &model.Factors{M: 1, N: 3, K: 2, P: []float32{0, 0},
		Q: []float32{1, 0, 0, 1, 1, 1}}
	truth := []float32{2, 3} // ratings: q0·t=2, q1·t=3, q2·t=5
	vec, err := FoldIn(f, []int32{0, 1, 2}, []float32{2, 3, 5}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(float64(vec[i]-truth[i])) > 1e-3 {
			t.Fatalf("recovered %v, want %v", vec, truth)
		}
	}
}

// Fold-in accuracy: for users the trainer did see, solving their vector
// from their training ratings against frozen Q must predict their held-out
// test ratings about as well as the fully trained P row does — that is the
// whole premise of serving cold-start users without a retrain.
func TestFoldInAccuracyVsFullTraining(t *testing.T) {
	spec := dataset.MovieLens().Scale(0.1)
	train, test, err := dataset.Generate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	params := sgd.Params{K: 16, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.005, Iters: 12}
	_, f, err := core.TrainReal(context.Background(), train, core.RealOptions{Threads: 4, Params: params, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Collect per-user train and test ratings.
	trainBy := make(map[int32][]sparse.Rating)
	for _, r := range train.Ratings {
		trainBy[r.Row] = append(trainBy[r.Row], r)
	}
	testBy := make(map[int32][]sparse.Rating)
	for _, r := range test.Ratings {
		testBy[r.Row] = append(testBy[r.Row], r)
	}

	var nUsers int
	var seTrained, seFold float64
	var nRatings int
	for u, testRs := range testBy {
		trainRs := trainBy[u]
		if len(trainRs) < 5 || len(testRs) < 3 {
			continue
		}
		items := make([]int32, len(trainRs))
		vals := make([]float32, len(trainRs))
		for i, r := range trainRs {
			items[i], vals[i] = r.Col, r.Value
		}
		vec, err := FoldIn(f, items, vals, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range testRs {
			q := f.Colvec(r.Col)
			dTrained := float64(r.Value - model.Dot(f.Row(u), q))
			dFold := float64(r.Value - model.Dot(vec, q))
			seTrained += dTrained * dTrained
			seFold += dFold * dFold
			nRatings++
		}
		nUsers++
		if nUsers >= 200 {
			break
		}
	}
	if nUsers < 20 {
		t.Fatalf("only %d usable users in the generated split", nUsers)
	}
	rmseTrained := math.Sqrt(seTrained / float64(nRatings))
	rmseFold := math.Sqrt(seFold / float64(nRatings))
	t.Logf("held-out RMSE over %d users / %d ratings: trained %.4f, fold-in %.4f",
		nUsers, nRatings, rmseTrained, rmseFold)
	if rmseFold > rmseTrained*1.25+0.05 {
		t.Fatalf("fold-in RMSE %.4f too far above trained %.4f", rmseFold, rmseTrained)
	}
}

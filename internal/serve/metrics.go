package serve

import (
	"net/http"
	"time"

	"hsgd/internal/obs"
)

// serverMetrics is the server's pre-registered handle set for /metricz.
// Everything the hot path touches is registered once at construction —
// request latencies observe a *obs.Histogram field directly (atomic adds,
// no map lookup, no boxing), and the existing request/cache atomics are
// exported through CounterFunc/GaugeFunc closures that read them only at
// scrape time, so enabling metrics costs the serving loop nothing it was
// not already paying.
type serverMetrics struct {
	reg *obs.Registry

	// Per-endpoint request latency histograms, observed by the timing
	// wrapper around each handler.
	predict       *obs.Histogram
	recommendGet  *obs.Histogram
	recommendPost *obs.Histogram
	similar       *obs.Histogram

	// swaps counts snapshot hot-swaps; incremented from the store's OnSwap
	// hook.
	swaps *obs.Counter
}

// newServerMetrics registers the serving metric families on reg and wires
// the scrape-time readers to the server's existing counters.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	const reqHelp = "request latency by endpoint"
	m := &serverMetrics{
		reg:           reg,
		predict:       reg.Histogram("hsgd_request_duration_seconds", reqHelp, obs.Labels{"endpoint": "predict"}, nil),
		recommendGet:  reg.Histogram("hsgd_request_duration_seconds", reqHelp, obs.Labels{"endpoint": "recommend_get"}, nil),
		recommendPost: reg.Histogram("hsgd_request_duration_seconds", reqHelp, obs.Labels{"endpoint": "recommend_post"}, nil),
		similar:       reg.Histogram("hsgd_request_duration_seconds", reqHelp, obs.Labels{"endpoint": "similar_items"}, nil),
		swaps:         reg.Counter("hsgd_snapshot_swaps_total", "snapshot hot-swaps since start", nil),
	}
	obs.RegisterBuildInfo(reg, obs.CollectRunMeta(HasAVX2()))

	const cntHelp = "requests served by endpoint"
	reg.CounterFunc("hsgd_requests_total", cntHelp, obs.Labels{"endpoint": "predict"}, s.nPredict.Load)
	reg.CounterFunc("hsgd_requests_total", cntHelp, obs.Labels{"endpoint": "recommend"}, s.nRecommend.Load)
	reg.CounterFunc("hsgd_requests_total", cntHelp, obs.Labels{"endpoint": "similar_items"}, s.nSimilar.Load)
	reg.CounterFunc("hsgd_request_errors_total", "requests answered with an error status", nil, s.nErrors.Load)
	reg.CounterFunc("hsgd_http_shed_total", "requests answered 429 at the in-flight cap", nil, s.nShed.Load)
	reg.CounterFunc("hsgd_http_panics_total", "handler panics recovered into 500 responses", nil, s.nPanics.Load)
	reg.GaugeFunc("hsgd_http_inflight", "admitted /v1 requests currently being handled", nil, func() float64 {
		return float64(s.InFlight())
	})
	reg.CounterFunc("hsgd_fold_ins_total", "cold-start fold-in rankings served", nil, s.nFoldIn.Load)
	reg.CounterFunc("hsgd_cache_hits_total", "result-cache hits", nil, s.nCacheHit.Load)
	reg.CounterFunc("hsgd_cache_misses_total", "result-cache misses", nil, s.nCacheMiss.Load)
	reg.GaugeFunc("hsgd_cache_entries", "live result-cache entries", nil, func() float64 {
		return float64(s.cache.Len())
	})
	reg.CounterFunc("hsgd_quantized_scans_total", "rankings served by the int8 quantized path", nil, s.nQuantScans.Load)
	reg.CounterFunc("hsgd_rerank_depth_total", "candidates rescored exactly after quantized scans (divide by hsgd_quantized_scans_total for the mean depth)", nil, s.nRerankDepth.Load)
	reg.CounterFunc("hsgd_ivf_scans_total", "rankings served by the IVF probe-and-rerank path", nil, s.nIVFScans.Load)
	reg.CounterFunc("hsgd_ivf_probes_total", "posting lists probed by IVF rankings (divide by hsgd_ivf_scans_total for the mean)", nil, s.nIVFProbes.Load)
	reg.CounterFunc("hsgd_ivf_candidates_total", "candidates int8-scored by IVF rankings (divide by hsgd_ivf_scans_total for the mean)", nil, s.nIVFCands.Load)
	reg.GaugeFunc("hsgd_uptime_seconds", "seconds since the server started", nil, func() float64 {
		return time.Since(s.start).Seconds()
	})
	reg.GaugeFunc("hsgd_snapshot_version", "version counter of the live snapshot (0 = none loaded)", nil, func() float64 {
		if snap := s.store.Current(); snap != nil {
			return float64(snap.Version)
		}
		return 0
	})
	reg.GaugeFunc("hsgd_snapshot_age_seconds", "seconds since the live snapshot was loaded (-1 = none loaded)", nil, func() float64 {
		if snap := s.store.Current(); snap != nil {
			return time.Since(snap.LoadedAt).Seconds()
		}
		return -1
	})
	return m
}

// timed wraps a handler so its wall-clock duration lands in hist. The
// closure is built once at mux-construction time; per request it costs two
// time reads and the histogram's atomic adds.
func timed(hist *obs.Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.ObserveSince(start)
	}
}

//go:build amd64

#include "textflag.h"

// func dotQ4Asm(q, a, b, c, d *int8, n int) (sa, sb, sc, sd int32)
//
// Four int8 rows dotted against one int8 query in a single streaming pass,
// 16 lanes per step: VPMOVSXBW sign-extends 16 int8 to int16 and VPMADDWD
// multiply-accumulates int16 pairs into 8 int32 lanes. Products are at
// most 127², so the pairwise int16 multiply-add and the int32 lane
// accumulators are exact for any realistic k. n must be a positive
// multiple of 16.
TEXT ·dotQ4Asm(SB), NOSPLIT, $0-64
	MOVQ q+0(FP), SI
	MOVQ a+8(FP), R8
	MOVQ b+16(FP), R9
	MOVQ c+24(FP), R10
	MOVQ d+32(FP), R11
	MOVQ n+40(FP), CX

	VPXOR Y0, Y0, Y0 // accumulator for row a
	VPXOR Y1, Y1, Y1 // accumulator for row b
	VPXOR Y2, Y2, Y2 // accumulator for row c
	VPXOR Y3, Y3, Y3 // accumulator for row d
	XORQ  DX, DX

loop:
	VPMOVSXBW (SI)(DX*1), Y4  // 16 query lanes, shared by all four rows
	VPMOVSXBW (R8)(DX*1), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVSXBW (R9)(DX*1), Y6
	VPMADDWD  Y4, Y6, Y6
	VPADDD    Y6, Y1, Y1
	VPMOVSXBW (R10)(DX*1), Y7
	VPMADDWD  Y4, Y7, Y7
	VPADDD    Y7, Y2, Y2
	VPMOVSXBW (R11)(DX*1), Y8
	VPMADDWD  Y4, Y8, Y8
	VPADDD    Y8, Y3, Y3
	ADDQ      $16, DX
	CMPQ      DX, CX
	JL        loop

	// Horizontal reduction of each 8-lane accumulator to one int32.
	VEXTRACTI128 $1, Y0, X4
	VPADDD       X4, X0, X0
	VPSHUFD      $0x4E, X0, X4
	VPADDD       X4, X0, X0
	VPSHUFD      $0xB1, X0, X4
	VPADDD       X4, X0, X0
	VMOVD        X0, AX
	MOVL         AX, sa+48(FP)

	VEXTRACTI128 $1, Y1, X4
	VPADDD       X4, X1, X1
	VPSHUFD      $0x4E, X1, X4
	VPADDD       X4, X1, X1
	VPSHUFD      $0xB1, X1, X4
	VPADDD       X4, X1, X1
	VMOVD        X1, AX
	MOVL         AX, sb+52(FP)

	VEXTRACTI128 $1, Y2, X4
	VPADDD       X4, X2, X2
	VPSHUFD      $0x4E, X2, X4
	VPADDD       X4, X2, X2
	VPSHUFD      $0xB1, X2, X4
	VPADDD       X4, X2, X2
	VMOVD        X2, AX
	MOVL         AX, sc+56(FP)

	VEXTRACTI128 $1, Y3, X4
	VPADDD       X4, X3, X3
	VPSHUFD      $0x4E, X3, X4
	VPADDD       X4, X3, X3
	VPSHUFD      $0xB1, X3, X4
	VPADDD       X4, X3, X3
	VMOVD        X3, AX
	MOVL         AX, sd+60(FP)

	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// Package cd implements the coordinate-descent baseline for matrix
// factorization (Yu, Hsieh, Si, Dhillon [17]; Section III-C of the paper),
// in the CCD++ style: one latent dimension at a time, updating u-side then
// v-side scalars with closed-form ridge solutions against the current
// residual matrix.
package cd

import (
	"context"
	"fmt"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

// Params configures coordinate-descent training.
type Params struct {
	K      int
	Lambda float32
	Iters  int // outer iterations (each sweeps all k dimensions)
	Inner  int // per-dimension inner refinement sweeps (CCD++ uses ~1-5)

	// Progress, when non-nil, is called after each completed outer
	// iteration with the 1-based iteration and the cumulative scalar
	// coordinate-update count.
	Progress func(iter int, updates int64)
}

// Train runs CCD++-style coordinate descent on the given pre-initialised
// factors and returns the number of scalar coordinate updates performed
// (one per non-empty row or column, per dimension, per inner sweep) — the
// CD counterpart of an SGD trainer's rating-update count.
//
// Cancellation is observed between latent dimensions, where the residual
// bookkeeping leaves the factors consistent: when ctx fires, Train stops
// there and returns the updates done so far with the context error.
func Train(ctx context.Context, train *sparse.Matrix, f *model.Factors, p Params) (int64, error) {
	if p.K != f.K {
		return 0, fmt.Errorf("cd: params K=%d but factors K=%d", p.K, f.K)
	}
	if train.NNZ() == 0 {
		return 0, sparse.ErrEmpty
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Inner < 1 {
		p.Inner = 1
	}
	rows := train.ToCSR()
	cols := train.ToCSC()

	// residual[i] tracks r_uv − p_u·q_v for the rating at CSR position i.
	// We maintain it in CSR order and keep a CSC→CSR position map.
	residual := make([]float32, train.NNZ())
	pos := 0
	csrIndex := make(map[[2]int32]int, train.NNZ())
	for u := 0; u < rows.Rows; u++ {
		cs, vs := rows.Row(u)
		for i, v := range cs {
			residual[pos] = vs[i] - f.Predict(int32(u), v)
			csrIndex[[2]int32{int32(u), v}] = pos
			pos++
		}
	}
	cscToCsr := make([]int, train.NNZ())
	pos = 0
	for v := 0; v < cols.Rows; v++ {
		rs, _ := cols.Row(v)
		for _, u := range rs {
			cscToCsr[pos] = csrIndex[[2]int32{u, int32(v)}]
			pos++
		}
	}

	k := p.K
	var updates int64
	for it := 0; it < p.Iters; it++ {
		for d := 0; d < k; d++ {
			if ctx.Err() != nil {
				return updates, context.Cause(ctx)
			}
			// Add this dimension's contribution back into the residual.
			addDimension(rows, cscToCsr, residual, f, d, +1)
			for inner := 0; inner < p.Inner; inner++ {
				updates += updateUSide(rows, residual, f, d, p.Lambda)
				updates += updateVSide(cols, cscToCsr, residual, f, d, p.Lambda)
			}
			// Remove the refreshed contribution again.
			addDimension(rows, cscToCsr, residual, f, d, -1)
		}
		if p.Progress != nil {
			p.Progress(it+1, updates)
		}
	}
	return updates, nil
}

// addDimension adds sign·p_u[d]·q_v[d] to every residual.
func addDimension(rows *sparse.CSR, cscToCsr []int, residual []float32, f *model.Factors, d int, sign float32) {
	pos := 0
	for u := 0; u < rows.Rows; u++ {
		cs, _ := rows.Row(u)
		pu := f.P[u*f.K+d]
		for _, v := range cs {
			residual[pos] += sign * pu * f.Q[int(v)*f.K+d]
			pos++
		}
	}
	_ = cscToCsr
}

// updateUSide solves the scalar ridge problem for every p_u[d] against the
// residual (which currently includes dimension d), returning the update
// count.
func updateUSide(rows *sparse.CSR, residual []float32, f *model.Factors, d int, lambda float32) int64 {
	pos := 0
	var n int64
	for u := 0; u < rows.Rows; u++ {
		cs, _ := rows.Row(u)
		if len(cs) == 0 {
			continue
		}
		var num, den float64
		for i, v := range cs {
			q := float64(f.Q[int(v)*f.K+d])
			num += float64(residual[pos+i]) * q
			den += q * q
		}
		den += float64(lambda) * float64(len(cs))
		if den > 0 {
			f.P[u*f.K+d] = float32(num / den)
			n++
		}
		pos += len(cs)
	}
	return n
}

// updateVSide solves the scalar ridge problem for every q_v[d], returning
// the update count.
func updateVSide(cols *sparse.CSR, cscToCsr []int, residual []float32, f *model.Factors, d int, lambda float32) int64 {
	pos := 0
	var n int64
	for v := 0; v < cols.Rows; v++ {
		rs, _ := cols.Row(v)
		if len(rs) == 0 {
			continue
		}
		var num, den float64
		for i, u := range rs {
			p := float64(f.P[int(u)*f.K+d])
			num += float64(residual[cscToCsr[pos+i]]) * p
			den += p * p
		}
		den += float64(lambda) * float64(len(rs))
		if den > 0 {
			f.Q[v*f.K+d] = float32(num / den)
			n++
		}
		pos += len(rs)
	}
	return n
}

package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text format:
//
//	rows cols nnz
//	row col value
//	...
//
// one rating per line, whitespace separated. Lines starting with '#' and
// blank lines are ignored. This is the interchange format of the cmd/ tools.

// WriteText writes the matrix in the text interchange format. Lines are
// rendered with strconv.Append* into one reused buffer instead of per-line
// fmt.Fprintf: hsgd-datagen writes millions of lines for the YahooMusic-
// scale spec and fmt's reflection dominated its profile. AppendFloat with
// bitSize 32 emits the same shortest float32 representation %g did, so the
// format is byte-identical.
func (m *Matrix) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 64)
	buf = strconv.AppendInt(buf, int64(m.Rows), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(m.Cols), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(len(m.Ratings)), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, r := range m.Ratings {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(r.Row), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(r.Col), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendFloat(buf, float64(r.Value), 'g', -1, 32)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text interchange format.
func ReadText(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var m *Matrix
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if m == nil {
			if len(fields) != 3 {
				return nil, fmt.Errorf("sparse: line %d: want header 'rows cols nnz', got %q", line, text)
			}
			rows, err1 := strconv.Atoi(fields[0])
			cols, err2 := strconv.Atoi(fields[1])
			nnz, err3 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("sparse: line %d: bad header %q", line, text)
			}
			m = &Matrix{Rows: rows, Cols: cols, Ratings: make([]Rating, 0, nnz)}
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("sparse: line %d: want 'row col value', got %q", line, text)
		}
		row, err1 := strconv.ParseInt(fields[0], 10, 32)
		col, err2 := strconv.ParseInt(fields[1], 10, 32)
		val, err3 := strconv.ParseFloat(fields[2], 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sparse: line %d: bad rating %q", line, text)
		}
		m.Ratings = append(m.Ratings, Rating{Row: int32(row), Col: int32(col), Value: float32(val)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("sparse: empty input")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

const binaryMagic = uint32(0x48534744) // "HSGD"

// WriteBinary writes a compact little-endian binary encoding:
// magic, rows, cols, nnz (uint32 each) followed by nnz (int32,int32,float32)
// triples.
func (m *Matrix) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []uint32{binaryMagic, uint32(m.Rows), uint32(m.Cols), uint32(len(m.Ratings))}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Ratings); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads the encoding produced by WriteBinary.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var header [4]uint32
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("sparse: reading header: %w", err)
	}
	if header[0] != binaryMagic {
		return nil, fmt.Errorf("sparse: bad magic %#x", header[0])
	}
	m := &Matrix{Rows: int(header[1]), Cols: int(header[2]), Ratings: make([]Rating, header[3])}
	if err := binary.Read(br, binary.LittleEndian, m.Ratings); err != nil {
		return nil, fmt.Errorf("sparse: reading %d ratings: %w", header[3], err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadFile reads a matrix from path, choosing the decoder by extension:
// ".bin" uses the binary format, anything else the text format.
func LoadFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadText(f)
}

// SaveFile writes a matrix to path, choosing the encoder by extension the
// same way LoadFile does.
func (m *Matrix) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return m.WriteBinary(f)
	}
	return m.WriteText(f)
}

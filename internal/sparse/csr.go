package sparse

// CSR is a compressed-sparse-row view of a Matrix. RowPtr has Rows+1
// entries; the ratings of row u live at indices [RowPtr[u], RowPtr[u+1]) of
// Col/Val. The ALS and coordinate-descent baselines iterate rows and columns
// repeatedly and need this layout.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	Col        []int32
	Val        []float32
}

// ToCSR builds a CSR view. The input order of ratings within a row is
// preserved. O(NNZ).
func (m *Matrix) ToCSR() *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: make([]int32, m.Rows+1),
		Col:    make([]int32, len(m.Ratings)),
		Val:    make([]float32, len(m.Ratings)),
	}
	for _, r := range m.Ratings {
		c.RowPtr[r.Row+1]++
	}
	for i := 0; i < m.Rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	next := make([]int32, m.Rows)
	copy(next, c.RowPtr[:m.Rows])
	for _, r := range m.Ratings {
		p := next[r.Row]
		c.Col[p] = r.Col
		c.Val[p] = r.Value
		next[r.Row]++
	}
	return c
}

// ToCSC builds a compressed-sparse-column view, expressed as the CSR of the
// transpose: RowPtr indexes columns of the original matrix and Col holds the
// original row ids.
func (m *Matrix) ToCSC() *CSR {
	t := &Matrix{Rows: m.Cols, Cols: m.Rows, Ratings: make([]Rating, len(m.Ratings))}
	for i, r := range m.Ratings {
		t.Ratings[i] = Rating{Row: r.Col, Col: r.Row, Value: r.Value}
	}
	return t.ToCSR()
}

// Row returns the column indices and values of row u.
func (c *CSR) Row(u int) ([]int32, []float32) {
	lo, hi := c.RowPtr[u], c.RowPtr[u+1]
	return c.Col[lo:hi], c.Val[lo:hi]
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Val) }

// Package sparse provides the sparse rating-matrix representation used by
// every other package in this repository.
//
// A rating matrix R (m×n) is stored in coordinate (COO) form: a flat slice
// of (row, col, value) triples, exactly the "triadic tuple" storage the
// paper's Algorithm 1 takes as input. Compressed views (CSR/CSC) are built
// on demand for the ALS and coordinate-descent baselines.
package sparse

import (
	"errors"
	"fmt"
	"math/rand"
)

// Rating is a single observed entry r_{u,v} of the rating matrix.
type Rating struct {
	Row   int32
	Col   int32
	Value float32
}

// Matrix is a sparse matrix in coordinate form. Rows and Cols are the
// dimensions m and n; Ratings holds the observed entries in arbitrary order.
type Matrix struct {
	Rows    int
	Cols    int
	Ratings []Rating
}

// New returns an empty matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols}
}

// NNZ returns the number of observed entries.
func (m *Matrix) NNZ() int { return len(m.Ratings) }

// Bytes returns the in-memory size of the rating payload in bytes,
// as transferred over the simulated PCIe bus (12 bytes per triple).
func (m *Matrix) Bytes() int { return len(m.Ratings) * 12 }

// Add appends one rating. It does not check for duplicates.
func (m *Matrix) Add(row, col int32, value float32) {
	m.Ratings = append(m.Ratings, Rating{Row: row, Col: col, Value: value})
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Ratings: make([]Rating, len(m.Ratings))}
	copy(out.Ratings, m.Ratings)
	return out
}

// Validate checks that every entry is inside the declared dimensions.
func (m *Matrix) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("sparse: invalid dimensions %dx%d", m.Rows, m.Cols)
	}
	for i, r := range m.Ratings {
		if r.Row < 0 || int(r.Row) >= m.Rows {
			return fmt.Errorf("sparse: rating %d: row %d out of range [0,%d)", i, r.Row, m.Rows)
		}
		if r.Col < 0 || int(r.Col) >= m.Cols {
			return fmt.Errorf("sparse: rating %d: col %d out of range [0,%d)", i, r.Col, m.Cols)
		}
	}
	return nil
}

// Shuffle permutes the rating order in place using rng. The paper shuffles
// the input dataset before cost-model sampling "to avoid uneven data
// distribution" (Section V-A).
func (m *Matrix) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(m.Ratings), func(i, j int) {
		m.Ratings[i], m.Ratings[j] = m.Ratings[j], m.Ratings[i]
	})
}

// Split partitions the ratings into a training and a test matrix. testFrac
// of the entries (rounded down) go to the test set. The receiver is not
// modified; the split follows the current rating order, so callers that want
// a random split should Shuffle first.
func (m *Matrix) Split(testFrac float64) (train, test *Matrix, err error) {
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("sparse: testFrac %v outside [0,1)", testFrac)
	}
	nTest := int(float64(len(m.Ratings)) * testFrac)
	nTrain := len(m.Ratings) - nTest
	train = &Matrix{Rows: m.Rows, Cols: m.Cols, Ratings: append([]Rating(nil), m.Ratings[:nTrain]...)}
	test = &Matrix{Rows: m.Rows, Cols: m.Cols, Ratings: append([]Rating(nil), m.Ratings[nTrain:]...)}
	return train, test, nil
}

// Stats summarises a matrix for reporting (Table I of the paper).
type Stats struct {
	Rows, Cols  int
	NNZ         int
	MinValue    float32
	MaxValue    float32
	MeanValue   float64
	Density     float64 // NNZ / (Rows*Cols)
	ActiveRows  int     // rows with at least one rating
	ActiveCols  int     // cols with at least one rating
	MaxRowCount int     // heaviest row
	MaxColCount int     // heaviest column
}

// ComputeStats scans the matrix once and returns summary statistics.
func (m *Matrix) ComputeStats() Stats {
	s := Stats{Rows: m.Rows, Cols: m.Cols, NNZ: len(m.Ratings)}
	if len(m.Ratings) == 0 {
		return s
	}
	rowCount := make([]int, m.Rows)
	colCount := make([]int, m.Cols)
	s.MinValue = m.Ratings[0].Value
	s.MaxValue = m.Ratings[0].Value
	var sum float64
	for _, r := range m.Ratings {
		rowCount[r.Row]++
		colCount[r.Col]++
		if r.Value < s.MinValue {
			s.MinValue = r.Value
		}
		if r.Value > s.MaxValue {
			s.MaxValue = r.Value
		}
		sum += float64(r.Value)
	}
	s.MeanValue = sum / float64(len(m.Ratings))
	s.Density = float64(len(m.Ratings)) / (float64(m.Rows) * float64(m.Cols))
	for _, c := range rowCount {
		if c > 0 {
			s.ActiveRows++
		}
		if c > s.MaxRowCount {
			s.MaxRowCount = c
		}
	}
	for _, c := range colCount {
		if c > 0 {
			s.ActiveCols++
		}
		if c > s.MaxColCount {
			s.MaxColCount = c
		}
	}
	return s
}

// RowCounts returns the number of ratings in each row.
func (m *Matrix) RowCounts() []int {
	counts := make([]int, m.Rows)
	for _, r := range m.Ratings {
		counts[r.Row]++
	}
	return counts
}

// ColCounts returns the number of ratings in each column.
func (m *Matrix) ColCounts() []int {
	counts := make([]int, m.Cols)
	for _, r := range m.Ratings {
		counts[r.Col]++
	}
	return counts
}

// ErrEmpty is returned by operations that need at least one rating.
var ErrEmpty = errors.New("sparse: matrix has no ratings")

// Permutation relabels rows and columns. FPSGD randomises row and column
// identities before uniform range blocking so that block element counts are
// roughly balanced; PermuteLabels applies that transformation and returns
// the permutations used (new = perm[old]) so predictions can be mapped back.
func (m *Matrix) PermuteLabels(rng *rand.Rand) (rowPerm, colPerm []int32) {
	rowPerm = randomPerm(m.Rows, rng)
	colPerm = randomPerm(m.Cols, rng)
	for i := range m.Ratings {
		m.Ratings[i].Row = rowPerm[m.Ratings[i].Row]
		m.Ratings[i].Col = colPerm[m.Ratings[i].Col]
	}
	return rowPerm, colPerm
}

// ApplyPerm relabels this matrix with permutations produced by PermuteLabels
// on another matrix (e.g. relabel the test set consistently with the train
// set).
func (m *Matrix) ApplyPerm(rowPerm, colPerm []int32) error {
	if len(rowPerm) != m.Rows || len(colPerm) != m.Cols {
		return fmt.Errorf("sparse: permutation sizes %d/%d do not match %dx%d",
			len(rowPerm), len(colPerm), m.Rows, m.Cols)
	}
	for i := range m.Ratings {
		m.Ratings[i].Row = rowPerm[m.Ratings[i].Row]
		m.Ratings[i].Col = colPerm[m.Ratings[i].Col]
	}
	return nil
}

func randomPerm(n int, rng *rand.Rand) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func testMatrix() *Matrix {
	m := New(4, 5)
	m.Add(0, 0, 1)
	m.Add(0, 3, 2.5)
	m.Add(1, 1, 3)
	m.Add(2, 4, 4)
	m.Add(3, 2, 5)
	m.Add(3, 4, 0.5)
	return m
}

func TestNNZAndBytes(t *testing.T) {
	m := testMatrix()
	if m.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", m.NNZ())
	}
	if m.Bytes() != 72 {
		t.Fatalf("Bytes = %d, want 72", m.Bytes())
	}
}

func TestValidate(t *testing.T) {
	m := testMatrix()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	bad := New(2, 2)
	bad.Add(2, 0, 1)
	if err := bad.Validate(); err == nil {
		t.Fatal("row out of range accepted")
	}
	bad = New(2, 2)
	bad.Add(0, -1, 1)
	if err := bad.Validate(); err == nil {
		t.Fatal("negative col accepted")
	}
	bad = &Matrix{Rows: 0, Cols: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := testMatrix()
	c := m.Clone()
	c.Ratings[0].Value = 99
	if m.Ratings[0].Value == 99 {
		t.Fatal("Clone shares backing storage")
	}
	if c.Rows != m.Rows || c.Cols != m.Cols || c.NNZ() != m.NNZ() {
		t.Fatal("Clone changed shape")
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	m := testMatrix()
	orig := m.Clone()
	m.Shuffle(rand.New(rand.NewSource(1)))
	if m.NNZ() != orig.NNZ() {
		t.Fatal("Shuffle changed count")
	}
	count := func(ms *Matrix) map[Rating]int {
		c := make(map[Rating]int)
		for _, r := range ms.Ratings {
			c[r]++
		}
		return c
	}
	if !reflect.DeepEqual(count(m), count(orig)) {
		t.Fatal("Shuffle changed the rating multiset")
	}
}

func TestSplit(t *testing.T) {
	m := testMatrix()
	train, test, err := m.Split(0.34)
	if err != nil {
		t.Fatal(err)
	}
	if test.NNZ() != 2 || train.NNZ() != 4 {
		t.Fatalf("split sizes %d/%d, want 4/2", train.NNZ(), test.NNZ())
	}
	if _, _, err := m.Split(1.0); err == nil {
		t.Fatal("testFrac=1 accepted")
	}
	if _, _, err := m.Split(-0.1); err == nil {
		t.Fatal("negative testFrac accepted")
	}
}

func TestComputeStats(t *testing.T) {
	s := testMatrix().ComputeStats()
	if s.NNZ != 6 || s.MinValue != 0.5 || s.MaxValue != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ActiveRows != 4 || s.ActiveCols != 5 {
		t.Fatalf("active rows/cols = %d/%d", s.ActiveRows, s.ActiveCols)
	}
	if s.MaxRowCount != 2 || s.MaxColCount != 2 {
		t.Fatalf("max row/col = %d/%d", s.MaxRowCount, s.MaxColCount)
	}
	if got := (16.0 / 6.0); s.MeanValue != 16.0/6.0 && (s.MeanValue-got) > 1e-9 {
		t.Fatalf("mean = %v", s.MeanValue)
	}
	empty := New(3, 3).ComputeStats()
	if empty.NNZ != 0 || empty.Density != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestRowColCounts(t *testing.T) {
	m := testMatrix()
	rows := m.RowCounts()
	want := []int{2, 1, 1, 2}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("RowCounts = %v, want %v", rows, want)
	}
	cols := m.ColCounts()
	wantC := []int{1, 1, 1, 1, 2}
	if !reflect.DeepEqual(cols, wantC) {
		t.Fatalf("ColCounts = %v, want %v", cols, wantC)
	}
}

func TestPermuteLabelsRoundTrip(t *testing.T) {
	m := testMatrix()
	orig := m.Clone()
	rowPerm, colPerm := m.PermuteLabels(rand.New(rand.NewSource(7)))
	if err := m.Validate(); err != nil {
		t.Fatalf("permuted matrix invalid: %v", err)
	}
	// Values must follow their entries: r'(perm(u),perm(v)) == r(u,v).
	pos := make(map[[2]int32]float32)
	for _, r := range m.Ratings {
		pos[[2]int32{r.Row, r.Col}] = r.Value
	}
	for _, r := range orig.Ratings {
		got, ok := pos[[2]int32{rowPerm[r.Row], colPerm[r.Col]}]
		if !ok || got != r.Value {
			t.Fatalf("rating (%d,%d) lost after permutation", r.Row, r.Col)
		}
	}
	// ApplyPerm with the same permutations must reproduce the same labels.
	again := orig.Clone()
	if err := again.ApplyPerm(rowPerm, colPerm); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Ratings, m.Ratings) {
		t.Fatal("ApplyPerm disagrees with PermuteLabels")
	}
	if err := again.ApplyPerm(rowPerm[:1], colPerm); err == nil {
		t.Fatal("short permutation accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	m := testMatrix()
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || !reflect.DeepEqual(back.Ratings, m.Ratings) {
		t.Fatal("text round trip mismatch")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                  // empty
		"1 2\n",             // short header
		"x 2 1\n",           // bad header
		"2 2 1\n0 0\n",      // short rating line
		"2 2 1\n0 zz 1.5\n", // bad rating
		"2 2 1\n5 0 1.5\n",  // out of range
	}
	for _, in := range cases {
		if _, err := ReadText(bytes.NewBufferString(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
	// Comments and blank lines are fine.
	ok := "# header\n\n2 2 1\n# rating\n1 1 2.5\n"
	m, err := ReadText(bytes.NewBufferString(ok))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 || m.Ratings[0].Value != 2.5 {
		t.Fatalf("parsed %+v", m)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := testMatrix()
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Fatal("binary round trip mismatch")
	}
	// Corrupt magic.
	raw := buf.Bytes()
	var buf2 bytes.Buffer
	if err := m.WriteBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	_ = raw
	corrupted := buf2.Bytes()
	corrupted[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated payload.
	var buf3 bytes.Buffer
	if err := m.WriteBinary(&buf3); err != nil {
		t.Fatal(err)
	}
	trunc := buf3.Bytes()[:buf3.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := testMatrix()
	for _, name := range []string{"m.txt", "m.bin"} {
		path := t.TempDir() + "/" + name
		if err := m.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.Ratings, m.Ratings) {
			t.Fatalf("%s round trip mismatch", name)
		}
	}
	if _, err := LoadFile(t.TempDir() + "/missing.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: text and binary round trips preserve arbitrary matrices.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(1+rng.Intn(50), 1+rng.Intn(50))
		for i := 0; i < int(n); i++ {
			m.Add(int32(rng.Intn(m.Rows)), int32(rng.Intn(m.Cols)), rng.Float32()*10-5)
		}
		var tb, bb bytes.Buffer
		if err := m.WriteText(&tb); err != nil {
			return false
		}
		if err := m.WriteBinary(&bb); err != nil {
			return false
		}
		fromText, err := ReadText(&tb)
		if err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		if len(fromText.Ratings) != m.NNZ() || len(fromBin.Ratings) != m.NNZ() {
			return false
		}
		for i, r := range m.Ratings {
			if fromBin.Ratings[i] != r {
				return false
			}
			// Text encodes via %g: exact for float32 values.
			if fromText.Ratings[i] != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSR(t *testing.T) {
	m := testMatrix()
	c := m.ToCSR()
	if c.NNZ() != m.NNZ() {
		t.Fatalf("CSR NNZ = %d", c.NNZ())
	}
	cols, vals := c.Row(3)
	if len(cols) != 2 || cols[0] != 2 || vals[0] != 5 || cols[1] != 4 || vals[1] != 0.5 {
		t.Fatalf("row 3 = %v %v", cols, vals)
	}
	if cols, _ := c.Row(1); len(cols) != 1 || cols[0] != 1 {
		t.Fatalf("row 1 = %v", cols)
	}
}

func TestCSC(t *testing.T) {
	m := testMatrix()
	c := m.ToCSC()
	if c.Rows != m.Cols || c.Cols != m.Rows {
		t.Fatalf("CSC dims %dx%d", c.Rows, c.Cols)
	}
	rows, vals := c.Row(4) // column 4 of the original: (2,4,4) and (3,4,0.5)
	if len(rows) != 2 || rows[0] != 2 || vals[0] != 4 || rows[1] != 3 || vals[1] != 0.5 {
		t.Fatalf("col 4 = %v %v", rows, vals)
	}
}

// Property: every rating appears exactly once in a CSR view, in its row.
func TestQuickCSRComplete(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(1+rng.Intn(20), 1+rng.Intn(20))
		for i := 0; i < int(n); i++ {
			m.Add(int32(rng.Intn(m.Rows)), int32(rng.Intn(m.Cols)), rng.Float32())
		}
		c := m.ToCSR()
		if c.NNZ() != m.NNZ() {
			return false
		}
		seen := 0
		for u := 0; u < m.Rows; u++ {
			cols, _ := c.Row(u)
			seen += len(cols)
		}
		return seen == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "requests served", Labels{"endpoint": "predict"})
	c2 := reg.Counter("test_requests_total", "", Labels{"endpoint": "recommend"})
	g := reg.Gauge("test_temperature", "gauge help", nil)
	reg.GaugeFunc("test_uptime_seconds", "uptime", nil, func() float64 { return 12.5 })
	reg.CounterFunc("test_swaps_total", "swaps", nil, func() int64 { return 7 })

	c.Add(3)
	c.Inc()
	c2.Inc()
	g.Set(-1.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total requests served\n",
		"# TYPE test_requests_total counter\n",
		`test_requests_total{endpoint="predict"} 4` + "\n",
		`test_requests_total{endpoint="recommend"} 1` + "\n",
		"# TYPE test_temperature gauge\n",
		"test_temperature -1.5\n",
		"test_uptime_seconds 12.5\n",
		"test_swaps_total 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per family even with two series.
	if n := strings.Count(out, "# TYPE test_requests_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "latency", Labels{"endpoint": "x"}, []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket 0
	h.Observe(0.05)  // bucket 1
	h.Observe(0.05)  // bucket 1
	h.Observe(5)     // overflow

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{endpoint="x",le="0.01"} 1` + "\n",
		`test_latency_seconds_bucket{endpoint="x",le="0.1"} 3` + "\n",
		`test_latency_seconds_bucket{endpoint="x",le="1"} 3` + "\n",
		`test_latency_seconds_bucket{endpoint="x",le="+Inf"} 4` + "\n",
		`test_latency_seconds_count{endpoint="x"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+5; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
}

func TestDuplicateAndConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "", nil)
	mustPanic(t, "duplicate series", func() { reg.Counter("dup_total", "", nil) })
	mustPanic(t, "type conflict", func() { reg.Gauge("dup_total", "", nil) })
	mustPanic(t, "bad name", func() { reg.Counter("0bad", "", nil) })
	mustPanic(t, "bad bounds", func() { NewHistogram([]float64{1, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", Labels{"path": `a"b\c` + "\n"})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{path="a\"b\\c\n"} 0`; !strings.Contains(b.String(), want) {
		t.Errorf("missing %q in %q", want, b.String())
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("handler_total", "", nil).Inc()
	rr := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metricz", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "handler_total 1") {
		t.Fatalf("body %q", rr.Body.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	c := &Counter{}
	g := &Gauge{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.005)
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("histogram count %d, want 8000", h.Count())
	}
	if c.Value() != 8000 {
		t.Errorf("counter %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge %v, want 8000", g.Value())
	}
	if s := h.Sum(); s < 39.9 || s > 40.1 {
		t.Errorf("sum %v, want 40", s)
	}
}

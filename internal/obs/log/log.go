// Package log is the repo's structured logger: leveled key=value records
// written to one io.Writer and mirrored into a lock-free ring buffer that
// both binaries expose as /logz on their debug listeners. It replaces the
// ad-hoc log.Printf scatter so every line carries its context — run id and
// worker slot on distributed-training lines, request id on serving lines —
// and the last N records are inspectable over HTTP without grepping stderr.
//
// The package is dependency-free and nil-safe: every method on a nil
// *Logger is a no-op, so library code logs unconditionally and callers that
// never wire a logger pay one nil check per call site.
package log

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders record severities.
type Level int8

// The four severities. Debug records are suppressed by the default logger.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return "LEVEL(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel maps a flag string to a Level (case-insensitive); unknown
// strings map to LevelInfo.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	}
	return LevelInfo
}

// Record is one emitted log entry. KV alternates key, value; bound fields
// (Logger.With) come first. Seq is the ring's global sequence number,
// assigned at append time.
type Record struct {
	Seq   uint64
	Time  time.Time
	Level Level
	Msg   string
	KV    []string
}

// text renders the record in the one-line key=value form both the writer
// and /logz use.
func (r *Record) text(b *bytes.Buffer) {
	b.WriteString(r.Time.UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	b.WriteString(r.Msg)
	for i := 0; i+1 < len(r.KV); i += 2 {
		b.WriteByte(' ')
		b.WriteString(r.KV[i])
		b.WriteByte('=')
		v := r.KV[i+1]
		if strings.ContainsAny(v, " \t\n\"") {
			b.WriteString(strconv.Quote(v))
		} else {
			b.WriteString(v)
		}
	}
	b.WriteByte('\n')
}

// Ring is a fixed-capacity lock-free log buffer: writers claim a slot with
// one atomic add and publish the record with one atomic pointer store, so
// appending never contends on a mutex even under concurrent writers. A
// reader takes a best-effort snapshot — a record being written concurrently
// may be missing from its slot (nil) or already overwritten by a lapping
// writer; both are tolerated, this is a debugging window, not a journal.
type Ring struct {
	slots []atomic.Pointer[Record]
	head  atomic.Uint64 // total records ever appended
	mask  uint64
}

// NewRing returns a ring of at least n slots (rounded up to a power of two;
// n <= 0 picks 1024).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Record], size), mask: uint64(size - 1)}
}

// Append publishes one record, stamping its Seq.
func (r *Ring) Append(rec *Record) {
	if r == nil {
		return
	}
	seq := r.head.Add(1) - 1
	rec.Seq = seq
	r.slots[seq&r.mask].Store(rec)
}

// Snapshot returns the most recent records, oldest first. Slots raced by
// in-flight writers are skipped; records from a lapping writer (Seq ahead
// of the snapshot window) are kept — they are newer, not wrong.
func (r *Ring) Snapshot() []*Record {
	if r == nil {
		return nil
	}
	head := r.head.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]*Record, 0, head-start)
	for seq := start; seq < head; seq++ {
		rec := r.slots[seq&r.mask].Load()
		// The slot may hold an older generation (writer claimed seq but has
		// not stored yet) or a newer one (a writer lapped between our head
		// load and this read). Keep anything inside or ahead of the window.
		if rec != nil && rec.Seq >= start {
			out = append(out, rec)
		}
	}
	// Lapping can leave records slightly out of order; one insertion pass
	// restores it (snapshots are small and rare).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Total returns how many records were ever appended (not the retained
// count).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Logger writes leveled key=value lines to one writer and mirrors every
// record into an optional Ring. With derives children carrying bound
// fields; children share the parent's writer, level, and ring.
type Logger struct {
	mu   *sync.Mutex // serialises writes; shared by all children
	w    io.Writer
	min  Level
	ring *Ring
	kv   []string // bound fields, first in every record
}

// New returns a logger writing records at or above min to w (nil w
// discards), mirroring into ring (nil disables the /logz window).
func New(w io.Writer, min Level, ring *Ring) *Logger {
	if w == nil {
		w = io.Discard
	}
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, ring: ring}
}

// Default returns a stderr logger at LevelInfo with no ring — the fallback
// for packages handed a nil logger but still needing to report panics.
func Default() *Logger { return New(os.Stderr, LevelInfo, nil) }

// With returns a child logger whose records carry the given key-value
// pairs before any per-call pairs. With on a nil logger returns nil.
func (l *Logger) With(kv ...string) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	child := *l
	child.kv = append(append(make([]string, 0, len(l.kv)+len(kv)), l.kv...), kv...)
	return &child
}

// Ring returns the logger's ring buffer (nil when none was attached).
func (l *Logger) Ring() *Ring {
	if l == nil {
		return nil
	}
	return l.ring
}

// Debug emits a LevelDebug record.
func (l *Logger) Debug(msg string, kv ...string) { l.log(LevelDebug, msg, kv) }

// Info emits a LevelInfo record.
func (l *Logger) Info(msg string, kv ...string) { l.log(LevelInfo, msg, kv) }

// Warn emits a LevelWarn record.
func (l *Logger) Warn(msg string, kv ...string) { l.log(LevelWarn, msg, kv) }

// Error emits a LevelError record.
func (l *Logger) Error(msg string, kv ...string) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []string) {
	if l == nil || lv < l.min {
		return
	}
	rec := &Record{Time: time.Now(), Level: lv, Msg: msg}
	if len(l.kv) > 0 || len(kv) > 0 {
		rec.KV = append(append(make([]string, 0, len(l.kv)+len(kv)), l.kv...), kv...)
	}
	l.ring.Append(rec)
	var buf bytes.Buffer
	rec.text(&buf)
	l.mu.Lock()
	_, _ = l.w.Write(buf.Bytes())
	l.mu.Unlock()
}

// recordJSON is the /logz?format=json shape of one record.
type recordJSON struct {
	Seq   uint64            `json:"seq"`
	Time  string            `json:"time"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	KV    map[string]string `json:"kv,omitempty"`
}

// Handler returns the /logz HTTP handler over ring: the retained records as
// text lines, or as a JSON array with ?format=json. A nil ring serves an
// empty window.
func Handler(ring *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		recs := ring.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			out := make([]recordJSON, len(recs))
			for i, r := range recs {
				rj := recordJSON{
					Seq: r.Seq, Time: r.Time.UTC().Format(time.RFC3339Nano),
					Level: r.Level.String(), Msg: r.Msg,
				}
				if len(r.KV) > 0 {
					rj.KV = make(map[string]string, len(r.KV)/2)
					for j := 0; j+1 < len(r.KV); j += 2 {
						rj.KV[r.KV[j]] = r.KV[j+1]
					}
				}
				out[i] = rj
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(out)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var buf bytes.Buffer
		for _, r := range recs {
			r.text(&buf)
			if buf.Len() > 1<<16 {
				_, _ = w.Write(buf.Bytes())
				buf.Reset()
			}
		}
		_, _ = w.Write(buf.Bytes())
	})
}

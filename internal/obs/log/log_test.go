package log

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestLoggerTextAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo, nil)
	l.Debug("hidden")
	l.Info("model loaded", "path", "m.hfac", "k", "16")
	l.Warn("slow request", "dur", "1.2 s") // value with a space gets quoted
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug record leaked past LevelInfo")
	}
	if !strings.Contains(out, "INFO model loaded path=m.hfac k=16") {
		t.Fatalf("info line malformed: %q", out)
	}
	if !strings.Contains(out, `dur="1.2 s"`) {
		t.Fatalf("spacey value not quoted: %q", out)
	}
}

func TestLoggerWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug, nil).With("run", "abc", "slot", "2")
	l.Info("joined", "gen", "1")
	if !strings.Contains(buf.String(), "joined run=abc slot=2 gen=1") {
		t.Fatalf("bound fields missing or misordered: %q", buf.String())
	}
	// Children must not share the parent's bound slice backing array.
	l2 := l.With("extra", "x")
	l2.Info("second")
	l.Info("third")
	if strings.Contains(lastLine(buf.String()), "extra") {
		t.Fatalf("child fields leaked into parent: %q", buf.String())
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing")
	l.Error("nothing", "k", "v")
	if l.With("a", "b") != nil {
		t.Fatal("With on nil should stay nil")
	}
	if l.Ring() != nil {
		t.Fatal("Ring on nil should be nil")
	}
	var r *Ring
	r.Append(&Record{})
	if r.Snapshot() != nil || r.Total() != 0 {
		t.Fatal("nil ring should be inert")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, " warn ": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestRingRetainsRecentRecords(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.Append(&Record{Msg: fmt.Sprintf("m%d", i)})
	}
	recs := r.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("retained %d records, want 8", len(recs))
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("m%d", 12+i); rec.Msg != want {
			t.Fatalf("slot %d = %q, want %q", i, rec.Msg, want)
		}
	}
	if r.Total() != 20 {
		t.Fatalf("total = %d, want 20", r.Total())
	}
}

// TestRingConcurrentWriters hammers one ring from many goroutines while a
// reader snapshots continuously — run under -race this is the lock-free
// publication proof. Snapshots must never contain nils, never exceed the
// capacity, and always come back ordered by sequence.
func TestRingConcurrentWriters(t *testing.T) {
	const writers = 8
	const perWriter = 2000
	r := NewRing(64)
	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			recs := r.Snapshot()
			if len(recs) > 64 {
				t.Errorf("snapshot of %d exceeds capacity", len(recs))
				return
			}
			for i, rec := range recs {
				if rec == nil {
					t.Error("nil record in snapshot")
					return
				}
				if i > 0 && recs[i-1].Seq > rec.Seq {
					t.Errorf("snapshot out of order: %d after %d", rec.Seq, recs[i-1].Seq)
					return
				}
			}
		}
	}()
	lg := New(nil, LevelDebug, r) // nil writer: ring-only logging
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			bound := lg.With("writer", fmt.Sprint(w))
			for i := 0; i < perWriter; i++ {
				bound.Info("tick", "i", fmt.Sprint(i))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perWriter)
	}
}

func TestLogzHandler(t *testing.T) {
	r := NewRing(16)
	lg := New(nil, LevelDebug, r)
	lg.Info("first", "k", "v")
	lg.Warn("second")

	h := Handler(r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/logz", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "INFO first k=v") || !strings.Contains(body, "WARN second") {
		t.Fatalf("text /logz missing records: %q", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/logz?format=json", nil))
	var out []struct {
		Seq   uint64            `json:"seq"`
		Level string            `json:"level"`
		Msg   string            `json:"msg"`
		KV    map[string]string `json:"kv"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("json /logz: %v", err)
	}
	if len(out) != 2 || out[0].Msg != "first" || out[0].KV["k"] != "v" || out[1].Level != "WARN" {
		t.Fatalf("json /logz = %+v", out)
	}

	// A nil ring serves an empty window rather than panicking.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/logz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil-ring /logz status %d", rec.Code)
	}
}

package obs

import (
	"math"
	"testing"
)

// Quantile estimation: uniform fill of one bucket interpolates linearly,
// ranks resolve to the covering bucket, and the overflow bucket returns
// the last finite bound as a lower-bound estimate.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40, 80})

	// 100 observations uniform in (0,10]: p50 interpolates to ~5.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("p50 of single-bucket fill = %v, want 5", got)
	}
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("p100 of single-bucket fill = %v, want 10", got)
	}

	// Add 100 in (10,20] and 100 in (20,40]: p50 lands at the end of the
	// second bucket (rank 150 of 300 → halfway through bucket 2? rank
	// 150 with cum 100 before → 10 + 10*(50/100) = 15).
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	for i := 0; i < 100; i++ {
		h.Observe(30)
	}
	if got := h.Quantile(0.5); math.Abs(got-15) > 1e-9 {
		t.Errorf("p50 = %v, want 15", got)
	}
	// p99: rank 297 of 300 → third bucket, 20 + 20*(97/100) = 39.4.
	if got := h.Quantile(0.99); math.Abs(got-39.4) > 1e-9 {
		t.Errorf("p99 = %v, want 39.4", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	h.Observe(100) // overflow bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only p50 = %v, want last bound 2", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 = %v, want 0", got)
	}
	if got := h.Quantile(2); got != 2 {
		t.Errorf("q>1 clamps to max, got %v", got)
	}
}

// p999 on a realistic latency shape: 999 fast observations and one slow
// outlier must push p999 into the outlier's bucket while p50 stays in the
// fast bucket.
func TestHistogramTailQuantile(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	for i := 0; i < 999; i++ {
		h.Observe(200e-6) // within the 250µs bucket
	}
	h.Observe(0.2) // lands in the 250ms bucket

	if p50 := h.Quantile(0.5); p50 > 250e-6 {
		t.Errorf("p50 = %v, want <= 250µs", p50)
	}
	if p999 := h.Quantile(0.999); p999 > 250e-6 {
		// rank 999 of 1000 is the last fast observation: still fast.
		t.Errorf("p999 = %v, want <= 250µs", p999)
	}
	if p9999 := h.Quantile(0.9999); p9999 < 0.1 {
		// rank 1000 is the outlier: the estimate must leave the fast bucket.
		t.Errorf("p9999 = %v, want >= 0.1", p9999)
	}
}

func TestDefaultBucketsOrdering(t *testing.T) {
	h := NewHistogram(nil)
	if len(h.bounds) != len(DefLatencyBuckets) {
		t.Fatalf("default bounds not applied")
	}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i] <= h.bounds[i-1] {
			t.Fatalf("DefLatencyBuckets not increasing at %d", i)
		}
	}
}

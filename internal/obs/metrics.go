// Package obs is the repository's dependency-free observability layer:
// a metrics registry (counters, gauges, fixed-bucket latency histograms)
// with Prometheus text-format exposition, a Chrome trace-event span
// recorder for epoch timelines, and run-metadata collection for bench
// reports. Everything is stdlib-only.
//
// The design premium is on the producer side: every metric is a
// pre-registered handle the hot path updates with plain atomic operations —
// no map lookups, no interface boxing, no allocation per observation — so
// the serving layer's zero-alloc recommend loop stays zero-alloc with
// metrics enabled. Registration (New, Registry.Counter, ...) takes a
// mutex and may allocate; it happens once at startup. Exposition
// (WritePrometheus) walks the registry at scrape time and reads the same
// atomics the producers write, so a scrape never blocks a producer.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are the constant label set attached to one metric series at
// registration time. They are rendered into the exposition string once, at
// registration, never per observation or per scrape.
type Labels map[string]string

// Counter is a monotonically increasing metric handle. The zero value is
// usable but unregistered; obtain exported counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable metric handle holding one float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (CAS loop; lock-free).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one exported time series: a pre-rendered label body plus the
// value source (exactly one of the fields is set).
type series struct {
	labelBody string // `a="b",c="d"` without braces; "" for unlabeled
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() int64
	gaugeFn   func() float64
}

// family groups every series registered under one metric name; HELP and
// TYPE are emitted once per family.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration methods panic on a duplicate (name, labels) pair or
// a type conflict — both are programmer errors, caught at startup.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, &series{counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, &series{gauge: g})
	return g
}

// Histogram registers and returns a fixed-bucket histogram series.
// buckets are the upper bounds in increasing order; nil picks
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	h := NewHistogram(buckets)
	r.register(name, help, "histogram", labels, &series{hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters (e.g. the serving
// layer's request totals) that must not be double-counted.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	r.register(name, help, "counter", labels, &series{counterFn: fn})
}

// GaugeFunc registers a gauge computed by fn at scrape time (snapshot age,
// uptime, cache occupancy, ...).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, &series{gaugeFn: fn})
}

func (r *Registry) register(name, help, typ string, labels Labels, s *series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	s.labelBody = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	for _, existing := range f.series {
		if existing.labelBody == s.labelBody {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, s.labelBody))
		}
	}
	f.series = append(f.series, s)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels produces the sorted, escaped `k="v",...` body once at
// registration.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

package obs

import (
	"runtime"
	"time"
)

// RunMeta is the machine-shape stamp embedded in every BENCH_*.json so a
// perf number is attributable: the same benchmark on a 1-core CI runner
// and a 32-core dev box are different experiments, and the reports must
// say which one they were.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// AVX2 reports whether the int8 scoring kernel's AVX2 path is active
	// (detected via CPUID by the caller; always false off amd64).
	AVX2      bool   `json:"avx2"`
	Timestamp string `json:"timestamp_utc"`
}

// CollectRunMeta snapshots the current process's machine shape. AVX2 is
// passed in by the caller (obs stays dependency-free; the serving package
// owns the CPUID detection).
func CollectRunMeta(avx2 bool) RunMeta {
	return RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		AVX2:       avx2,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

package obs

import (
	"runtime"
	"time"
)

// RunMeta is the machine-shape stamp embedded in every BENCH_*.json so a
// perf number is attributable: the same benchmark on a 1-core CI runner
// and a 32-core dev box are different experiments, and the reports must
// say which one they were.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// AVX2 reports whether the int8 scoring kernel's AVX2 path is active
	// (detected via CPUID by the caller; always false off amd64).
	AVX2      bool   `json:"avx2"`
	Timestamp string `json:"timestamp_utc"`
}

// RegisterBuildInfo exports meta as the info-style gauge
// hsgd_build_info{goversion,goos,goarch,avx2} = 1 — the Prometheus idiom
// for constant build/machine facts, so one scrape attributes a node's
// series to the binary and hardware that produced them.
func RegisterBuildInfo(reg *Registry, meta RunMeta) {
	if reg == nil {
		return
	}
	avx2 := "false"
	if meta.AVX2 {
		avx2 = "true"
	}
	reg.Gauge("hsgd_build_info",
		"Constant 1; the labels carry the binary's build and machine shape.",
		Labels{
			"goversion": meta.GoVersion,
			"goos":      meta.GOOS,
			"goarch":    meta.GOARCH,
			"avx2":      avx2,
		}).Set(1)
}

// CollectRunMeta snapshots the current process's machine shape. AVX2 is
// passed in by the caller (obs stays dependency-free; the serving package
// owns the CPUID detection).
func CollectRunMeta(avx2 bool) RunMeta {
	return RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		AVX2:       avx2,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

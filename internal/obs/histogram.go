package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram bounds (seconds), spanning
// the microsecond-scale quantized scan through multi-second training
// stalls. 16 buckets keep the per-observation scan short and the
// exposition compact while still resolving p999 at serving latencies.
var DefLatencyBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram with lock-free atomic buckets.
// Observe is wait-free on the bucket counter (one atomic add after a short
// linear scan over the bounds) plus a lock-free CAS on the running sum —
// no allocation, no map, no mutex, so it is safe on zero-alloc hot paths.
//
// Quantiles are estimated by linear interpolation inside the bucket that
// contains the requested rank — the standard Prometheus-side estimation,
// computed here so /statsz and tests can read p50/p99/p999 without a
// scrape round-trip.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given upper bounds (seconds
// for latency use); nil or empty picks DefLatencyBuckets. The bounds must
// be strictly increasing; an overflow bucket is added implicitly.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start — the hot-path
// helper for latency timing.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket. Ranks landing in the overflow bucket
// return the largest finite bound — the estimate is then a lower bound.
// An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	// Snapshot the buckets; concurrent observations may tear across
	// buckets, which shifts the estimate by at most the in-flight count.
	snap := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	return quantileFrom(h.bounds, snap, total, q)
}

// quantileFrom is the pure estimation core, shared with tests.
func quantileFrom(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1] // overflow bucket: lower bound
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

package obs

import (
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation inside a distributed trace: a trace id tying
// every hop of one logical operation together, its own span id, the parent
// span that caused it, and a (start, duration) interval placed on a named
// track of the merged timeline. It is the cross-process sibling of Trace's
// in-process spans — the dist wire protocol carries the (Trace, ID, Parent)
// triple across machines and the coordinator reassembles the intervals into
// one Chrome trace.
type Span struct {
	Trace  uint64 // trace id shared by every span of one operation; 0 = untraced
	ID     uint64 // this span's id
	Parent uint64 // causing span's id; 0 = root

	Name  string // rendered event name ("hop", "kernel", "barrier", ...)
	Track string // timeline track ("coordinator", "worker 2", ...)

	Start time.Time
	Dur   time.Duration

	// Labels are small trace annotations rendered into the event's args
	// block (column id, rating count, reclaim reason). Nil is the common
	// case and costs nothing.
	Labels Labels
}

var spanSeq atomic.Uint64

// idRand seeds the per-process high bits of generated ids so two processes
// of one cluster never collide even though each counts from zero.
var idRand = func() uint64 {
	r := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())<<21))
	return r.Uint64()
}()

// NewTraceID returns a process-unique nonzero trace id.
func NewTraceID() uint64 { return NewSpanID() }

// NewSpanID returns a process-unique nonzero span id: random per-process
// high bits plus an atomic counter, so allocation is one atomic add.
func NewSpanID() uint64 {
	for {
		id := idRand ^ spanSeq.Add(1)
		if id != 0 {
			return id
		}
	}
}

// SpanRecorder accumulates spans on one node for batched shipping — the
// worker side of cross-process tracing. Record is a mutex append (spans are
// per-column-visit, milliseconds apart); Drain takes the batch for
// piggybacking on the next outbound frame.
type SpanRecorder struct {
	mu    sync.Mutex
	spans []Span
}

// Record appends one span.
func (r *SpanRecorder) Record(s Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Drain returns the accumulated spans and clears the recorder.
func (r *SpanRecorder) Drain() []Span {
	r.mu.Lock()
	out := r.spans
	r.spans = nil
	r.mu.Unlock()
	return out
}

// Len returns the number of recorded spans.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// MergedTrace assembles spans from many nodes into one multi-track Chrome
// trace-event timeline: each distinct Track becomes a tid with a
// thread_name metadata record, and every span becomes a complete ("X")
// event stamped with its trace/span/parent ids. The zero value is unusable;
// use NewMergedTrace.
type MergedTrace struct {
	mu     sync.Mutex
	spans  []Span
	tids   map[string]int
	tracks []string // in first-seen order, for deterministic tids
}

// NewMergedTrace returns an empty merged timeline.
func NewMergedTrace() *MergedTrace {
	return &MergedTrace{tids: make(map[string]int)}
}

// Add appends spans to the timeline, assigning each new track the next tid.
func (m *MergedTrace) Add(spans ...Span) {
	m.mu.Lock()
	for _, s := range spans {
		if _, ok := m.tids[s.Track]; !ok {
			m.tids[s.Track] = len(m.tracks)
			m.tracks = append(m.tracks, s.Track)
		}
		m.spans = append(m.spans, s)
	}
	m.mu.Unlock()
}

// Len returns the number of merged spans.
func (m *MergedTrace) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.spans)
}

// Tracks returns the track names in tid order.
func (m *MergedTrace) Tracks() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.tracks))
	copy(out, m.tracks)
	return out
}

// Events renders the merged spans as trace-event entries. The timeline
// origin is the earliest span start, so cross-node spans (already aligned
// to the coordinator's clock by the caller) land on one consistent axis.
// Events are emitted in start order, which chrome://tracing prefers.
func (m *MergedTrace) Events() []traceEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	events := make([]traceEvent, 0, len(m.spans)+len(m.tracks))
	for i, name := range m.tracks {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: i,
			Args: map[string]any{"name": name},
		})
	}
	var base time.Time
	for _, s := range m.spans {
		if base.IsZero() || s.Start.Before(base) {
			base = s.Start
		}
	}
	ordered := make([]Span, len(m.spans))
	copy(ordered, m.spans)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start.Before(ordered[j].Start) })
	for _, s := range ordered {
		e := traceEvent{
			Name: s.Name, Ph: "X", PID: 0, TID: m.tids[s.Track],
			TS:  float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur: float64(s.Dur.Nanoseconds()) / 1e3,
		}
		if s.Trace != 0 || len(s.Labels) > 0 {
			args := make(map[string]any, len(s.Labels)+3)
			if s.Trace != 0 {
				args["trace"] = s.Trace
				args["span"] = s.ID
				if s.Parent != 0 {
					args["parent"] = s.Parent
				}
			}
			for k, v := range s.Labels {
				args[k] = v
			}
			e.Args = args
		}
		events = append(events, e)
	}
	return events
}

// WriteJSON writes the merged timeline in Chrome trace-event JSON form.
func (m *MergedTrace) WriteJSON(w io.Writer) error {
	return writeTraceFile(w, m.Events())
}

// WriteFile writes the merged timeline JSON to path.
func (m *MergedTrace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

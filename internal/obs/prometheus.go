package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE pair per family, then
// each series. Histograms expand into cumulative _bucket series plus _sum
// and _count. Scraping reads the producers' atomics directly — values
// observed mid-scrape may tear across series, which Prometheus tolerates
// by design.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, s := range f.series {
			writeSeries(bw, f.name, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, name string, s *series) {
	switch {
	case s.hist != nil:
		writeHistogram(bw, name, s)
	case s.counter != nil:
		writeSample(bw, name, "", s.labelBody, "", float64(s.counter.Value()))
	case s.counterFn != nil:
		writeSample(bw, name, "", s.labelBody, "", float64(s.counterFn()))
	case s.gauge != nil:
		writeSample(bw, name, "", s.labelBody, "", s.gauge.Value())
	case s.gaugeFn != nil:
		writeSample(bw, name, "", s.labelBody, "", s.gaugeFn())
	}
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.hist
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		writeSample(bw, name, "_bucket", s.labelBody, le, float64(cum))
	}
	writeSample(bw, name, "_sum", s.labelBody, "", h.Sum())
	writeSample(bw, name, "_count", s.labelBody, "", float64(cum))
}

// writeSample emits one line: name[suffix]{labels[,le="..."]} value.
func writeSample(bw *bufio.Writer, name, suffix, labelBody, le string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labelBody != "" || le != "" {
		bw.WriteByte('{')
		bw.WriteString(labelBody)
		if le != "" {
			if labelBody != "" {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the /metricz HTTP handler: the registry in Prometheus
// text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugMux returns the mux both commands mount on -debug-addr: the full
// net/http/pprof suite under /debug/pprof/ plus /metricz over the given
// registry — profiles and metrics reachable during long runs without
// touching the serving mux or the default mux.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metricz", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

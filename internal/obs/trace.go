package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a lightweight span recorder that dumps a Chrome trace-event
// JSON file (the chrome://tracing / Perfetto "trace event format"). The
// engine arms it for exactly one epoch, each executor records its
// processed tasks as complete ("X") spans on its own track, and the result
// is the epoch's block-schedule timeline: CPU blocks, batched super-block
// kernels, the background packs overlapping them, steals, the quiescence
// barrier, evaluation and checkpoint writes.
//
// Span is cheap when the trace is disarmed — one atomic load — so
// executors call it unconditionally; while armed it takes a mutex, which
// is acceptable for the one traced epoch (tasks are milliseconds, the
// critical section appends one struct).
type Trace struct {
	active atomic.Bool

	mu     sync.Mutex
	base   time.Time
	spans  []span
	names  map[int]string
	nameID []int // tids in naming order, for deterministic output
}

type span struct {
	name  string
	tid   int
	start time.Time
	dur   time.Duration
	nnz   int
}

// NewTrace returns a disarmed recorder.
func NewTrace() *Trace {
	return &Trace{names: make(map[int]string)}
}

// SetThreadName labels a track in the rendered timeline ("cpu-3",
// "batched-0/pack", "engine").
func (t *Trace) SetThreadName(tid int, name string) {
	t.mu.Lock()
	if _, seen := t.names[tid]; !seen {
		t.nameID = append(t.nameID, tid)
	}
	t.names[tid] = name
	t.mu.Unlock()
}

// Start arms the recorder; the first Start stamps the timeline origin.
func (t *Trace) Start() {
	t.mu.Lock()
	if t.base.IsZero() {
		t.base = time.Now()
	}
	t.mu.Unlock()
	t.active.Store(true)
}

// Stop disarms the recorder; recorded spans are kept.
func (t *Trace) Stop() { t.active.Store(false) }

// Active reports whether spans are being recorded.
func (t *Trace) Active() bool { return t.active.Load() }

// Span records one complete slice on track tid. It is a no-op while the
// recorder is disarmed. nnz <= 0 omits the args block.
func (t *Trace) Span(tid int, name string, start time.Time, dur time.Duration, nnz int) {
	if !t.active.Load() {
		return
	}
	t.mu.Lock()
	if t.base.IsZero() || start.Before(t.base) {
		// A span can straddle the arming instant (it started before the
		// epoch boundary armed the trace); clamp rather than emit negative
		// timestamps, which chrome://tracing silently drops.
		if t.base.IsZero() {
			t.base = start
		} else {
			dur -= t.base.Sub(start)
			start = t.base
			if dur < 0 {
				dur = 0
			}
		}
	}
	t.spans = append(t.spans, span{name: name, tid: tid, start: start, dur: dur, nnz: nnz})
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// traceEvent is one entry of the Chrome trace-event format. TS and Dur are
// microseconds relative to the trace origin.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Events renders the recorded spans (plus thread-name metadata) as
// trace-event entries.
func (t *Trace) Events() []traceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	events := make([]traceEvent, 0, len(t.spans)+len(t.names))
	for _, tid := range t.nameID {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": t.names[tid]},
		})
	}
	for _, s := range t.spans {
		e := traceEvent{
			Name: s.name, Ph: "X", PID: 0, TID: s.tid,
			TS:  float64(s.start.Sub(t.base).Nanoseconds()) / 1e3,
			Dur: float64(s.dur.Nanoseconds()) / 1e3,
		}
		if s.nnz > 0 {
			e.Args = map[string]any{"nnz": s.nnz}
		}
		events = append(events, e)
	}
	return events
}

// WriteJSON writes the trace in Chrome trace-event JSON form, loadable by
// chrome://tracing and ui.perfetto.dev.
func (t *Trace) WriteJSON(w io.Writer) error {
	return writeTraceFile(w, t.Events())
}

// writeTraceFile wraps rendered events in the trace-event envelope — shared
// by the single-process Trace and the cluster-wide MergedTrace.
func writeTraceFile(w io.Writer, events []traceEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace JSON to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

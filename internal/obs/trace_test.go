package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestTraceWriteFileValidChromeJSON(t *testing.T) {
	tr := NewTrace()
	tr.SetThreadName(0, "engine")
	tr.SetThreadName(1, "cpu-0")

	// Disarmed: spans are dropped.
	tr.Span(1, "block", time.Now(), time.Millisecond, 10)
	if tr.Len() != 0 {
		t.Fatalf("disarmed trace recorded %d spans", tr.Len())
	}

	tr.Start()
	base := time.Now()
	tr.Span(1, "block", base, 2*time.Millisecond, 128)
	tr.Span(0, "barrier", base.Add(3*time.Millisecond), time.Millisecond, 0)
	tr.Stop()
	tr.Span(1, "block", time.Now(), time.Millisecond, 10) // dropped again

	path := filepath.Join(t.TempDir(), "epoch.trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", parsed.DisplayTimeUnit)
	}
	var meta, complete int
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "thread_name" || e.Args["name"] == nil {
				t.Errorf("bad metadata event %+v", e)
			}
		case "X":
			complete++
			if e.TS < 0 || e.Dur < 0 {
				t.Errorf("negative timestamp in %+v", e)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 2", meta, complete)
	}
	// The nnz arg must round-trip on the block span.
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" && e.Name == "block" {
			if v, ok := e.Args["nnz"].(float64); !ok || v != 128 {
				t.Errorf("block span args = %v", e.Args)
			}
		}
	}
}

// A span that started before the trace was armed is clamped to the
// timeline origin instead of rendering at a negative timestamp.
func TestTraceClampsPreArmSpans(t *testing.T) {
	tr := NewTrace()
	early := time.Now()
	time.Sleep(2 * time.Millisecond)
	tr.Start()
	tr.Span(1, "straddler", early, 10*time.Millisecond, 0)
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	if events[0].TS < 0 {
		t.Fatalf("clamped span has ts %v", events[0].TS)
	}
	if events[0].Dur > 10_000 { // µs
		t.Fatalf("clamped span kept full duration %v", events[0].Dur)
	}
}

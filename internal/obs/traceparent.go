package obs

import "strconv"

// W3C traceparent support (https://www.w3.org/TR/trace-context/): the
// header form is
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// This repo's trace ids are 64-bit, so they occupy the low half of the
// 128-bit trace-id field with the high half zero; incoming 128-bit ids are
// folded to their low 64 bits so external traces still correlate.

const hexDigits = "0123456789abcdef"

func appendHex(b []byte, v uint64, width int) []byte {
	for i := width - 1; i >= 0; i-- {
		b = append(b, hexDigits[(v>>(uint(i)*4))&0xf])
	}
	return b
}

// FormatTraceparent renders a traceparent header value for the given trace
// and span ids with the sampled flag set.
func FormatTraceparent(trace, span uint64) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-0000000000000000"...)
	b = appendHex(b, trace, 16)
	b = append(b, '-')
	b = appendHex(b, span, 16)
	b = append(b, "-01"...)
	return string(b)
}

// ParseTraceparent extracts the trace id and parent span id from a
// traceparent header value. Returns ok=false for malformed headers, unknown
// versions, or an all-zero trace id (which the spec declares invalid).
func ParseTraceparent(h string) (trace, span uint64, ok bool) {
	if len(h) < 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return 0, 0, false
	}
	hi, err := strconv.ParseUint(h[3:19], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	lo, err := strconv.ParseUint(h[19:35], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	span, err = strconv.ParseUint(h[36:52], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	trace = lo
	if trace == 0 {
		trace = hi // 128-bit id with a zero low half: keep what's nonzero
	}
	if trace == 0 {
		return 0, 0, false
	}
	return trace, span, true
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNewSpanIDNonzeroAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("zero span id")
		}
		if seen[id] {
			t.Fatalf("duplicate span id %x", id)
		}
		seen[id] = true
	}
}

func TestSpanRecorderDrain(t *testing.T) {
	var r SpanRecorder
	r.Record(Span{Name: "a"})
	r.Record(Span{Name: "b"})
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	got := r.Drain()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("drain = %+v", got)
	}
	if r.Len() != 0 || r.Drain() != nil {
		t.Fatal("drain did not clear the recorder")
	}
}

func TestMergedTraceEventsAndJSON(t *testing.T) {
	m := NewMergedTrace()
	base := time.Unix(100, 0)
	m.Add(
		Span{Trace: 7, ID: 1, Name: "epoch", Track: "coordinator", Start: base, Dur: 10 * time.Millisecond},
		Span{Trace: 7, ID: 2, Parent: 1, Name: "hop", Track: "worker 0",
			Start: base.Add(time.Millisecond), Dur: 2 * time.Millisecond,
			Labels: Labels{"col": "3"}},
		Span{Trace: 7, ID: 3, Parent: 1, Name: "hop", Track: "worker 1",
			Start: base.Add(2 * time.Millisecond), Dur: time.Millisecond},
	)
	if got := m.Tracks(); len(got) != 3 || got[0] != "coordinator" || got[1] != "worker 0" {
		t.Fatalf("tracks = %v", got)
	}
	if m.Len() != 3 {
		t.Fatalf("len = %d", m.Len())
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not one valid JSON document: %v", err)
	}
	var metas, complete int
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			complete++
			if e.TS < 0 {
				t.Fatalf("negative timestamp on %q", e.Name)
			}
			if e.Args["trace"] == nil || e.Args["span"] == nil {
				t.Fatalf("event %q lost its trace context: %v", e.Name, e.Args)
			}
		}
	}
	if metas != 3 || complete != 3 {
		t.Fatalf("got %d thread_name metas and %d complete events, want 3 and 3", metas, complete)
	}
	// The hop carried its label through rendering.
	found := false
	for _, e := range file.TraceEvents {
		if e.Ph == "X" && e.Args["col"] == "3" {
			found = true
		}
	}
	if !found {
		t.Fatal("span label did not survive into the event args")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	h := FormatTraceparent(0xdeadbeef12345678, 0xabcdef)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q has the wrong shape", h)
	}
	trace, span, ok := ParseTraceparent(h)
	if !ok || trace != 0xdeadbeef12345678 || span != 0xabcdef {
		t.Fatalf("parse(%q) = %x %x %v", h, trace, span, ok)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-short-01",
		"ff-00000000000000000000000000000001-0000000000000001-01", // unknown version
		"00-0000000000000000000000000000000g-0000000000000001-01", // non-hex
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero ids
		strings.Repeat("0", 55),                                   // right length, no dashes
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestTraceparentHighBitsFallback(t *testing.T) {
	// A remote peer with a 128-bit trace id whose low half is zero must not
	// be treated as untraced: the high half is used instead.
	h := "00-123456789abcdef00000000000000000-0000000000000001-01"
	trace, span, ok := ParseTraceparent(h)
	if !ok || trace != 0x123456789abcdef0 || span != 1 {
		t.Fatalf("parse(%q) = %x %x %v", h, trace, span, ok)
	}
}

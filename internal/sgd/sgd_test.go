package sgd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

// syntheticLowRank plants a rank-2 matrix with light noise.
func syntheticLowRank(m, n, nnz int, seed int64) (*sparse.Matrix, *sparse.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	const rank = 2
	p := make([]float32, m*rank)
	q := make([]float32, n*rank)
	for i := range p {
		p[i] = rng.Float32()
	}
	for i := range q {
		q[i] = rng.Float32()
	}
	gen := func(count int) *sparse.Matrix {
		out := sparse.New(m, n)
		for i := 0; i < count; i++ {
			u := rng.Intn(m)
			v := rng.Intn(n)
			var dot float32
			for j := 0; j < rank; j++ {
				dot += p[u*rank+j] * q[v*rank+j]
			}
			out.Add(int32(u), int32(v), dot+float32(rng.NormFloat64()*0.05))
		}
		return out
	}
	return gen(nnz), gen(nnz / 5)
}

func TestUpdateOneReducesPointLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := model.NewFactors(4, 4, 3, rng)
	r := sparse.Rating{Row: 1, Col: 2, Value: 4}
	before := math.Abs(float64(r.Value - f.Predict(r.Row, r.Col)))
	for i := 0; i < 50; i++ {
		UpdateOne(f, r, 0.01, 0.01, 0.1)
	}
	after := math.Abs(float64(r.Value - f.Predict(r.Row, r.Col)))
	if after >= before {
		t.Fatalf("pointwise error rose: %v -> %v", before, after)
	}
	if after > 0.5 {
		t.Fatalf("error %v did not approach zero", after)
	}
}

func TestUpdateOneTouchesOnlyItsVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := model.NewFactors(4, 4, 3, rng)
	snapshot := f.Clone()
	UpdateOne(f, sparse.Rating{Row: 1, Col: 2, Value: 4}, 0.01, 0.01, 0.1)
	for u := int32(0); u < 4; u++ {
		for i := 0; i < 3; i++ {
			changed := f.P[int(u)*3+i] != snapshot.P[int(u)*3+i]
			if u == 1 && !changed {
				t.Fatal("p_1 not updated")
			}
			if u != 1 && changed {
				t.Fatalf("p_%d modified", u)
			}
		}
	}
	for v := int32(0); v < 4; v++ {
		changed := f.Colvec(v)[0] != snapshot.Colvec(v)[0]
		if v == 2 && !changed {
			t.Fatal("q_2 not updated")
		}
		if v != 2 && changed {
			t.Fatalf("q_%d modified", v)
		}
	}
}

func TestUpdateBlockCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := model.NewFactors(4, 4, 2, rng)
	m := sparse.New(4, 4)
	m.Add(0, 0, 1)
	m.Add(1, 1, 2)
	if got := UpdateBlock(f, m.Ratings, 0.01, 0.01, 0.05); got != 2 {
		t.Fatalf("UpdateBlock = %d, want 2", got)
	}
}

func TestTrainSerialConverges(t *testing.T) {
	train, test := syntheticLowRank(60, 50, 3000, 4)
	rng := rand.New(rand.NewSource(4))
	f := model.NewFactors(60, 50, 8, rng)
	before := model.RMSE(f, test)
	TrainSerial(train, f, Params{K: 8, LambdaP: 0.01, LambdaQ: 0.01, Gamma: 0.05, Iters: 30})
	after := model.RMSE(f, test)
	if after >= before {
		t.Fatalf("RMSE did not improve: %v -> %v", before, after)
	}
	if after > 0.25 {
		t.Fatalf("RMSE %v too high for planted rank-2 data", after)
	}
}

func TestTrainSerialLossMonotoneEarly(t *testing.T) {
	train, _ := syntheticLowRank(40, 40, 2000, 5)
	rng := rand.New(rand.NewSource(5))
	f := model.NewFactors(40, 40, 8, rng)
	p := Params{K: 8, LambdaP: 0.01, LambdaQ: 0.01, Gamma: 0.02, Iters: 1}
	prev := model.Loss(f, train, p.LambdaP, p.LambdaQ)
	for it := 0; it < 5; it++ {
		TrainSerial(train, f, p)
		cur := model.Loss(f, train, p.LambdaP, p.LambdaQ)
		if cur > prev*1.001 {
			t.Fatalf("training loss rose at iter %d: %v -> %v", it, prev, cur)
		}
		prev = cur
	}
}

func TestHogwildConverges(t *testing.T) {
	if raceEnabled {
		t.Skip("Hogwild's lock-free updates race on P/Q by design; multi-worker run skipped under -race")
	}
	train, test := syntheticLowRank(60, 50, 3000, 6)
	rng := rand.New(rand.NewSource(6))
	f := model.NewFactors(60, 50, 8, rng)
	TrainHogwild(train, f, Params{K: 8, LambdaP: 0.01, LambdaQ: 0.01, Gamma: 0.05, Iters: 30}, 4)
	if rmse := model.RMSE(f, test); rmse > 0.3 {
		t.Fatalf("Hogwild RMSE %v too high", rmse)
	}
}

func TestHogwildSingleWorkerMatchesSerialShape(t *testing.T) {
	train, test := syntheticLowRank(40, 40, 1500, 7)
	p := Params{K: 4, LambdaP: 0.01, LambdaQ: 0.01, Gamma: 0.05, Iters: 10}
	fs := model.NewFactors(40, 40, 4, rand.New(rand.NewSource(7)))
	fh := model.NewFactors(40, 40, 4, rand.New(rand.NewSource(7)))
	TrainSerial(train, fs, p)
	TrainHogwild(train, fh, p, 1)
	if got, want := model.RMSE(fh, test), model.RMSE(fs, test); math.Abs(got-want) > 1e-6 {
		t.Fatalf("1-worker Hogwild RMSE %v != serial %v", got, want)
	}
}

func TestFixedSchedule(t *testing.T) {
	s := FixedSchedule(0.01)
	if s.Rate(0) != 0.01 || s.Rate(100) != 0.01 {
		t.Fatal("fixed schedule not constant")
	}
}

func TestInverseDecay(t *testing.T) {
	s := InverseDecay{Gamma0: 0.1, Beta: 1}
	if s.Rate(0) != 0.1 {
		t.Fatalf("Rate(0) = %v", s.Rate(0))
	}
	if got := s.Rate(9); math.Abs(float64(got-0.01)) > 1e-7 {
		t.Fatalf("Rate(9) = %v, want 0.01", got)
	}
}

func TestChinScheduleMonotone(t *testing.T) {
	s := ChinSchedule{Gamma0: 0.1, Alpha: 10}
	if s.Rate(0) != 0.1 {
		t.Fatalf("Rate(0) = %v", s.Rate(0))
	}
	prev := s.Rate(0)
	for it := 1; it < 50; it++ {
		cur := s.Rate(it)
		if cur > prev {
			t.Fatalf("Chin schedule rose at %d", it)
		}
		prev = cur
	}
}

func TestBoldDriver(t *testing.T) {
	s := NewBoldDriver(0.1)
	s.Observe(10) // first observation: no change
	if s.Rate(0) != 0.1 {
		t.Fatal("first Observe changed rate")
	}
	s.Observe(9) // improved: +5%
	if math.Abs(float64(s.Rate(0))-0.105) > 1e-6 {
		t.Fatalf("after improvement rate = %v", s.Rate(0))
	}
	s.Observe(12) // worsened: halve
	if math.Abs(float64(s.Rate(0))-0.0525) > 1e-6 {
		t.Fatalf("after regression rate = %v", s.Rate(0))
	}
}

// Property: an SGD step never produces NaN/Inf on bounded inputs with a
// small learning rate.
func TestQuickUpdateStaysFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fac := model.NewFactors(8, 8, 4, rng)
		for i := 0; i < 200; i++ {
			r := sparse.Rating{
				Row:   int32(rng.Intn(8)),
				Col:   int32(rng.Intn(8)),
				Value: rng.Float32() * 5,
			}
			UpdateOne(fac, r, 0.05, 0.05, 0.01)
		}
		for _, v := range fac.P {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
		for _, v := range fac.Q {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFusedKernelMatchesUpdateBlock pins the fused SoA kernel to the
// reference: identical inputs must produce bitwise-identical factors (the
// unrolling preserves float32 rounding order), for k both divisible by 4 and
// not.
func TestFusedKernelMatchesUpdateBlock(t *testing.T) {
	for _, k := range []int{3, 4, 16, 37, 128} {
		train, _ := syntheticLowRank(40, 30, 600, int64(k))
		ref := model.NewFactors(40, 30, k, rand.New(rand.NewSource(9)))
		fused := ref.Clone()

		UpdateBlock(ref, train.Ratings, 0.05, 0.07, 0.01)

		rows := make([]int32, train.NNZ())
		cols := make([]int32, train.NNZ())
		vals := make([]float32, train.NNZ())
		for i, r := range train.Ratings {
			rows[i], cols[i], vals[i] = r.Row, r.Col, r.Value
		}
		if n := UpdateBlockSOA(fused, rows, cols, vals, 0.05, 0.07, 0.01); n != train.NNZ() {
			t.Fatalf("k=%d: UpdateBlockSOA returned %d, want %d", k, n, train.NNZ())
		}

		for i := range ref.P {
			if ref.P[i] != fused.P[i] {
				t.Fatalf("k=%d: P[%d] fused %v != reference %v", k, i, fused.P[i], ref.P[i])
			}
		}
		for i := range ref.Q {
			if ref.Q[i] != fused.Q[i] {
				t.Fatalf("k=%d: Q[%d] fused %v != reference %v", k, i, fused.Q[i], ref.Q[i])
			}
		}
	}
}

// BenchmarkUpdateBlock / BenchmarkUpdateBlockSOA compare the AoS reference
// kernel against the fused SoA kernel on identical data (k=32, the bench
// shape; k=128, the paper's default).
func benchKernelData(b *testing.B, k int) (*model.Factors, *sparse.Matrix, []int32, []int32, []float32) {
	b.Helper()
	train, _ := syntheticLowRank(2000, 1500, 100_000, 3)
	f := model.NewFactors(2000, 1500, k, rand.New(rand.NewSource(4)))
	rows := make([]int32, train.NNZ())
	cols := make([]int32, train.NNZ())
	vals := make([]float32, train.NNZ())
	for i, r := range train.Ratings {
		rows[i], cols[i], vals[i] = r.Row, r.Col, r.Value
	}
	return f, train, rows, cols, vals
}

func BenchmarkUpdateBlock32(b *testing.B) {
	f, train, _, _, _ := benchKernelData(b, 32)
	b.SetBytes(int64(train.NNZ()))
	for i := 0; i < b.N; i++ {
		UpdateBlock(f, train.Ratings, 0.05, 0.05, 0.005)
	}
}

func BenchmarkUpdateBlockSOA32(b *testing.B) {
	f, train, rows, cols, vals := benchKernelData(b, 32)
	b.SetBytes(int64(train.NNZ()))
	for i := 0; i < b.N; i++ {
		UpdateBlockSOA(f, rows, cols, vals, 0.05, 0.05, 0.005)
	}
}

func BenchmarkUpdateBlock128(b *testing.B) {
	f, train, _, _, _ := benchKernelData(b, 128)
	b.SetBytes(int64(train.NNZ()))
	for i := 0; i < b.N; i++ {
		UpdateBlock(f, train.Ratings, 0.05, 0.05, 0.005)
	}
}

func BenchmarkUpdateBlockSOA128(b *testing.B) {
	f, train, rows, cols, vals := benchKernelData(b, 128)
	b.SetBytes(int64(train.NNZ()))
	for i := 0; i < b.N; i++ {
		UpdateBlockSOA(f, rows, cols, vals, 0.05, 0.05, 0.005)
	}
}

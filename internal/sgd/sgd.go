// Package sgd implements the stochastic-gradient-descent update rule for
// matrix factorization (Algorithm 1 of the paper) and its learning-rate
// schedules. Every trainer in this repository — serial, Hogwild, FPSGD,
// the simulated GPU kernel, HSGD and HSGD* — funnels through UpdateOne /
// UpdateBlock, so the arithmetic is identical across devices, exactly the
// property the paper needs when "embedding the core part of LIBMF and
// CuMF_SGD and making the stochastic gradient methods consistent"
// (Section VII).
package sgd

import (
	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

// Params collects the hyperparameters of Algorithm 1.
type Params struct {
	K       int     // number of latent factors
	LambdaP float32 // regularisation for P (λP)
	LambdaQ float32 // regularisation for Q (λQ)
	Gamma   float32 // learning rate (γ)
	Iters   int     // number of iterations (t): effective passes over R
}

// DefaultParams mirrors the paper's Table I settings for the MovieLens /
// Netflix family: k=128, λ=0.05, γ=0.005, and a generous iteration budget.
func DefaultParams() Params {
	return Params{K: 128, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.005, Iters: 20}
}

// UpdateOne applies the SGD step of Equations 4-6 to a single rating:
//
//	e    = r_uv − p_u·q_v
//	p_u += γ (e·q_v − λP·p_u)
//	q_v += γ (e·p_u − λQ·q_v)
//
// using the pre-update p_u on the q_v line, like LIBMF. The caller is
// responsible for conflict freedom (no concurrent writer of row u or
// column v).
func UpdateOne(f *model.Factors, r sparse.Rating, lp, lq, gamma float32) {
	p := f.Row(r.Row)
	q := f.Colvec(r.Col)
	e := r.Value - model.Dot(p, q)
	for i := range p {
		pi := p[i]
		qi := q[i]
		p[i] = pi + gamma*(e*qi-lp*pi)
		q[i] = qi + gamma*(e*pi-lq*qi)
	}
}

// UpdateBlock applies UpdateOne to every rating in the slice, in order, and
// returns the number of updates performed. This is the unit of work a worker
// (CPU thread or simulated GPU kernel) performs on one matrix block.
func UpdateBlock(f *model.Factors, ratings []sparse.Rating, lp, lq, gamma float32) int {
	for _, r := range ratings {
		UpdateOne(f, r, lp, lq, gamma)
	}
	return len(ratings)
}

// TrainSerial runs Algorithm 1 verbatim: t passes over the ratings in their
// stored order, no parallelism. It is the semantic reference the parallel
// trainers are tested against, and the building block of the throughput
// profiler (Algorithm 3's test_cpu_kernel).
func TrainSerial(train *sparse.Matrix, f *model.Factors, p Params) {
	sched := FixedSchedule(p.Gamma)
	TrainSerialSchedule(train, f, p, sched)
}

// TrainSerialSchedule is TrainSerial with an explicit learning-rate
// schedule.
func TrainSerialSchedule(train *sparse.Matrix, f *model.Factors, p Params, sched Schedule) {
	for it := 0; it < p.Iters; it++ {
		gamma := sched.Rate(it)
		UpdateBlock(f, train.Ratings, p.LambdaP, p.LambdaQ, gamma)
	}
}

// Package sgd implements the stochastic-gradient-descent update rule for
// matrix factorization (Algorithm 1 of the paper) and its learning-rate
// schedules. Every trainer in this repository — serial, Hogwild, FPSGD,
// the simulated GPU kernel, HSGD and HSGD* — funnels through UpdateOne /
// UpdateBlock, so the arithmetic is identical across devices, exactly the
// property the paper needs when "embedding the core part of LIBMF and
// CuMF_SGD and making the stochastic gradient methods consistent"
// (Section VII).
package sgd

import (
	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

// Params collects the hyperparameters of Algorithm 1.
type Params struct {
	K       int     // number of latent factors
	LambdaP float32 // regularisation for P (λP)
	LambdaQ float32 // regularisation for Q (λQ)
	Gamma   float32 // learning rate (γ)
	Iters   int     // number of iterations (t): effective passes over R
}

// DefaultParams mirrors the paper's Table I settings for the MovieLens /
// Netflix family: k=128, λ=0.05, γ=0.005, and a generous iteration budget.
func DefaultParams() Params {
	return Params{K: 128, LambdaP: 0.05, LambdaQ: 0.05, Gamma: 0.005, Iters: 20}
}

// UpdateOne applies the SGD step of Equations 4-6 to a single rating:
//
//	e    = r_uv − p_u·q_v
//	p_u += γ (e·q_v − λP·p_u)
//	q_v += γ (e·p_u − λQ·q_v)
//
// using the pre-update p_u on the q_v line, like LIBMF. The caller is
// responsible for conflict freedom (no concurrent writer of row u or
// column v).
func UpdateOne(f *model.Factors, r sparse.Rating, lp, lq, gamma float32) {
	p := f.Row(r.Row)
	q := f.Colvec(r.Col)
	e := r.Value - model.Dot(p, q)
	for i := range p {
		pi := p[i]
		qi := q[i]
		p[i] = pi + gamma*(e*qi-lp*pi)
		q[i] = qi + gamma*(e*pi-lq*qi)
	}
}

// UpdateBlock applies UpdateOne to every rating in the slice, in order, and
// returns the number of updates performed. This is the unit of work a worker
// (CPU thread or simulated GPU kernel) performs on one matrix block.
func UpdateBlock(f *model.Factors, ratings []sparse.Rating, lp, lq, gamma float32) int {
	for _, r := range ratings {
		UpdateOne(f, r, lp, lq, gamma)
	}
	return len(ratings)
}

// UpdateBlockSOA is the fused-kernel counterpart of UpdateBlock, consuming a
// block in structure-of-arrays form (grid.BlockSOA). Per rating it runs the
// same two k-length passes as UpdateOne — dot product, then the coupled
// p/q update — but both passes are 4-way unrolled with the accumulators and
// temporaries held in registers, the same register-blocking the serve
// scorer's dot4 kernel uses and the scalar analogue of cuMF_SGD's fused
// update. The arithmetic (including float32 rounding order) is identical to
// UpdateOne, so trainers can switch kernels without changing results.
func UpdateBlockSOA(f *model.Factors, rows, cols []int32, vals []float32, lp, lq, gamma float32) int {
	k := f.K
	for i, u := range rows {
		p := f.P[int(u)*k : int(u)*k+k]
		q := f.Q[int(cols[i])*k : int(cols[i])*k+k]
		fusedUpdate(p, q, vals[i], lp, lq, gamma)
	}
	return len(rows)
}

// fusedUpdate applies Equations 4-6 to one rating with both k-passes
// unrolled 4-way. Re-slicing q to len(p) up front drops the bounds checks
// from both loops.
func fusedUpdate(p, q []float32, r, lp, lq, gamma float32) {
	q = q[:len(p)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(p); i += 4 {
		s0 += p[i] * q[i]
		s1 += p[i+1] * q[i+1]
		s2 += p[i+2] * q[i+2]
		s3 += p[i+3] * q[i+3]
	}
	for ; i < len(p); i++ {
		s0 += p[i] * q[i]
	}
	e := r - (s0 + s1 + s2 + s3)
	i = 0
	for ; i+4 <= len(p); i += 4 {
		p0, q0 := p[i], q[i]
		p1, q1 := p[i+1], q[i+1]
		p2, q2 := p[i+2], q[i+2]
		p3, q3 := p[i+3], q[i+3]
		p[i] = p0 + gamma*(e*q0-lp*p0)
		q[i] = q0 + gamma*(e*p0-lq*q0)
		p[i+1] = p1 + gamma*(e*q1-lp*p1)
		q[i+1] = q1 + gamma*(e*p1-lq*q1)
		p[i+2] = p2 + gamma*(e*q2-lp*p2)
		q[i+2] = q2 + gamma*(e*p2-lq*q2)
		p[i+3] = p3 + gamma*(e*q3-lp*p3)
		q[i+3] = q3 + gamma*(e*p3-lq*q3)
	}
	for ; i < len(p); i++ {
		pi, qi := p[i], q[i]
		p[i] = pi + gamma*(e*qi-lp*pi)
		q[i] = qi + gamma*(e*pi-lq*qi)
	}
}

// TrainSerial runs Algorithm 1 verbatim: t passes over the ratings in their
// stored order, no parallelism. It is the semantic reference the parallel
// trainers are tested against, and the building block of the throughput
// profiler (Algorithm 3's test_cpu_kernel).
func TrainSerial(train *sparse.Matrix, f *model.Factors, p Params) {
	sched := FixedSchedule(p.Gamma)
	TrainSerialSchedule(train, f, p, sched)
}

// TrainSerialSchedule is TrainSerial with an explicit learning-rate
// schedule.
func TrainSerialSchedule(train *sparse.Matrix, f *model.Factors, p Params, sched Schedule) {
	for it := 0; it < p.Iters; it++ {
		gamma := sched.Rate(it)
		UpdateBlock(f, train.Ratings, p.LambdaP, p.LambdaQ, gamma)
	}
}

package sgd

import "math"

// Schedule produces the learning rate for each iteration. The paper trains
// with a fixed γ; reference [43] (Chin et al., PAKDD 2015) — which the paper
// takes its hyperparameters from — proposes a per-iteration decay. Both are
// provided, plus two classic alternatives, so the ablation bench can compare
// them.
type Schedule interface {
	// Rate returns γ for iteration it (0-based).
	Rate(it int) float32
}

// FixedSchedule returns γ unchanged every iteration — the paper's setting.
type fixedSchedule float32

// FixedSchedule builds the constant schedule used throughout the paper.
func FixedSchedule(gamma float32) Schedule { return fixedSchedule(gamma) }

func (s fixedSchedule) Rate(int) float32 { return float32(s) }

// IsFixed reports whether s is nil or the constant schedule — i.e. carries
// no per-iteration behavior a gamma-only trainer would lose by ignoring it.
func IsFixed(s Schedule) bool {
	if s == nil {
		return true
	}
	_, ok := s.(fixedSchedule)
	return ok
}

// InverseDecay implements γ_t = γ0 / (1 + β·t), the standard Robbins-Monro
// style decay.
type InverseDecay struct {
	Gamma0 float32
	Beta   float32
}

// Rate implements Schedule.
func (s InverseDecay) Rate(it int) float32 {
	return s.Gamma0 / (1 + s.Beta*float32(it))
}

// ChinSchedule implements the monotone decreasing schedule of Chin et al.
// [43]: γ_t = γ0 · α / (α + t^1.5). It decays slowly at first and then
// roughly like t^-1.5, the regime [43] reports as robust for MF.
type ChinSchedule struct {
	Gamma0 float32
	Alpha  float32 // decay offset; larger = slower decay. [43] suggests ~O(10).
}

// Rate implements Schedule.
func (s ChinSchedule) Rate(it int) float32 {
	t := float64(it)
	return s.Gamma0 * float32(float64(s.Alpha)/(float64(s.Alpha)+math.Pow(t, 1.5)))
}

// BoldDriver adapts γ from observed training loss: increase by 5% after an
// improving iteration, halve after a worsening one. The caller feeds losses
// via Observe between iterations.
type BoldDriver struct {
	gamma    float32
	prevLoss float64
	started  bool
}

// NewBoldDriver returns a bold-driver schedule starting at gamma0.
func NewBoldDriver(gamma0 float32) *BoldDriver {
	return &BoldDriver{gamma: gamma0}
}

// Rate implements Schedule.
func (s *BoldDriver) Rate(int) float32 { return s.gamma }

// Observe feeds the training loss measured after an iteration.
func (s *BoldDriver) Observe(loss float64) {
	if s.started {
		if loss < s.prevLoss {
			s.gamma *= 1.05
		} else {
			s.gamma *= 0.5
		}
	}
	s.prevLoss = loss
	s.started = true
}

package sgd

import (
	"sync"

	"hsgd/internal/model"
	"hsgd/internal/sparse"
)

// TrainHogwild runs the lock-free parallel SGD of Recht et al. [19]: every
// worker updates ratings from its shard of R with no synchronisation at all,
// racing on P and Q. With sparse data the races are rare and the algorithm
// converges; it is the classic shared-memory baseline that FPSGD's
// block-scheduling (and hence this paper) improves on.
//
// The ratings slice is sharded contiguously; callers should Shuffle first so
// shards are unbiased. Races on float32 cells are benign for convergence but
// are data races in the Go memory model, so this function is the documented
// exception: it must not run under -race expectations. Tests exercise it
// with workers=1 plus a separate convergence check.
func TrainHogwild(train *sparse.Matrix, f *model.Factors, p Params, workers int) {
	if workers < 1 {
		workers = 1
	}
	n := train.NNZ()
	var wg sync.WaitGroup
	for it := 0; it < p.Iters; it++ {
		for w := 0; w < workers; w++ {
			lo := n * w / workers
			hi := n * (w + 1) / workers
			wg.Add(1)
			go func(shard []sparse.Rating) {
				defer wg.Done()
				UpdateBlock(f, shard, p.LambdaP, p.LambdaQ, p.Gamma)
			}(train.Ratings[lo:hi])
		}
		wg.Wait()
	}
}

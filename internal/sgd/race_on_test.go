//go:build race

package sgd

// raceEnabled reports that this binary was built with the race detector.
// TrainHogwild races on P and Q by design (Recht et al. [19]), so the
// multi-worker convergence test is skipped under -race; the single-worker
// equivalence test still runs.
const raceEnabled = true

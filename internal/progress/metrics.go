package progress

import (
	"sync"

	"hsgd/internal/obs"
)

// MetricsSink returns a progress Func that mirrors every training event
// into gauges on reg, so a Prometheus scrape of /metricz sees the same
// training state that /statsz reports as JSON. The values are absolute
// readings of the run (current epoch, cumulative updates), not
// monotonically owned by the sink, so everything is a gauge: a resumed or
// restarted run may legitimately move them backwards.
//
// Per-class series are registered lazily the first time a class name
// appears, since single-class trainers never emit them. The returned Func
// is safe for use from one trainer goroutine at a time (the delivery
// contract of this package); the lazy registration map is still locked
// because a server may swap trainers across the life of one registry.
func MetricsSink(reg *obs.Registry) Func {
	epoch := reg.Gauge("hsgd_train_epoch", "completed training epochs (absolute, includes resume offset)", nil)
	totalEpochs := reg.Gauge("hsgd_train_total_epochs", "epoch budget of the current run", nil)
	rmse := reg.Gauge("hsgd_train_rmse", "test RMSE at the last quiescent point (0 = no test set)", nil)
	updates := reg.Gauge("hsgd_train_updates", "cumulative updates in the trainer's own unit", nil)
	ups := reg.Gauge("hsgd_train_updates_per_sec", "update throughput over the run so far", nil)
	checkpoints := reg.Gauge("hsgd_train_checkpoints", "model snapshots written so far", nil)
	alpha := reg.Gauge("hsgd_train_split_alpha", "fraction of rating mass owned by the batched class", nil)
	barrier := reg.Gauge("hsgd_train_barrier_wait_seconds", "cumulative engine quiescence-barrier wait", nil)
	ckptWrite := reg.Gauge("hsgd_train_checkpoint_write_seconds", "cumulative atomic snapshot write time", nil)
	lastTS := reg.Gauge("hsgd_train_last_event_timestamp_seconds", "unix time of the newest progress event", nil)

	type classSeries struct {
		updates *obs.Gauge
		ups     *obs.Gauge
		steals  *obs.Gauge
		tasks   *obs.Gauge
		p50     *obs.Gauge
		p99     *obs.Gauge
		overlap *obs.Gauge
	}
	var mu sync.Mutex
	classes := make(map[string]*classSeries)

	return func(e Event) {
		epoch.Set(float64(e.Epoch))
		totalEpochs.Set(float64(e.TotalEpochs))
		rmse.Set(e.RMSE)
		updates.Set(float64(e.TotalUpdates))
		ups.Set(e.UpdatesPerSec)
		checkpoints.Set(float64(e.Checkpoints))
		alpha.Set(e.SplitAlpha)
		barrier.Set(e.BarrierWait.Seconds())
		ckptWrite.Set(e.CheckpointWrite.Seconds())
		if !e.Time.IsZero() {
			lastTS.Set(float64(e.Time.UnixNano()) / 1e9)
		}
		for _, cs := range e.Classes {
			mu.Lock()
			s := classes[cs.Class]
			if s == nil {
				l := obs.Labels{"class": cs.Class}
				s = &classSeries{
					updates: reg.Gauge("hsgd_train_class_updates", "cumulative updates per executor class", l),
					ups:     reg.Gauge("hsgd_train_class_updates_per_sec", "per-class update throughput", l),
					steals:  reg.Gauge("hsgd_train_class_steals", "Rule-1 steals performed by the class", l),
					tasks:   reg.Gauge("hsgd_train_class_tasks", "scheduler tasks released to the class", l),
					p50:     reg.Gauge("hsgd_train_class_task_p50_seconds", "per-task latency p50 for the class", l),
					p99:     reg.Gauge("hsgd_train_class_task_p99_seconds", "per-task latency p99 for the class", l),
					overlap: reg.Gauge("hsgd_train_class_overlap_ratio", "fraction of pack time hidden behind kernels (batched class)", l),
				}
				classes[cs.Class] = s
			}
			mu.Unlock()
			s.updates.Set(float64(cs.Updates))
			s.ups.Set(cs.UpdatesPerSec)
			s.steals.Set(float64(cs.Steals))
			s.tasks.Set(float64(cs.Tasks))
			s.p50.Set(cs.TaskP50MS / 1e3)
			s.p99.Set(cs.TaskP99MS / 1e3)
			s.overlap.Set(cs.OverlapRatio)
		}
	}
}

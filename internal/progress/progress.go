// Package progress defines the training progress-event stream shared by
// every trainer in this repository. The engine (FPSGD), the hogwild/ALS/CD
// baselines, and the simulated heterogeneous pipelines all emit the same
// Event type at epoch boundaries, so consumers — the live progress line in
// cmd/hsgd-train, the bench reporter, and the serving layer's /statsz
// training block — observe any training run through one vocabulary.
//
// Events are delivered synchronously from inside the trainer, at points
// where the factors are quiescent (after an epoch's barrier, between ALS
// half-solves, between hogwild passes). A slow callback therefore pauses
// training; consumers that need decoupling should hand the event to a
// channel or goroutine themselves.
package progress

import "time"

// Kind discriminates progress events.
type Kind string

// The event kinds every trainer can emit.
const (
	// KindEpoch fires after each completed epoch (outer iteration), with
	// the factors quiescent.
	KindEpoch Kind = "epoch"
	// KindCheckpoint fires after an atomic model snapshot has been renamed
	// into place.
	KindCheckpoint Kind = "checkpoint"
	// KindDone is the final event of a run that completed its budget (or
	// reached its early-stop target).
	KindDone Kind = "done"
	// KindInterrupted is the final event of a run stopped by context
	// cancellation or deadline; the carried totals describe the partial
	// run.
	KindInterrupted Kind = "interrupted"
)

// Event is one observation of a training run.
type Event struct {
	Kind      Kind
	Algorithm string // trainer name: fpsgd|hogwild|als|cd|sim|...

	// Time is the wall-clock instant the event was emitted, stamped by the
	// trainer. Consumers use it to detect a stalled or dead feeder: the
	// serving layer surfaces the age of the newest event as
	// last_event_age_ms in /statsz and as a timestamp gauge in /metricz.
	Time time.Time

	Epoch       int // absolute completed epochs (includes resumed offset)
	TotalEpochs int // the run's epoch budget

	// RunID identifies a distributed run (the handshake id workers rejoin
	// with); 0 for single-process trainers. The serving layer surfaces it in
	// /statsz so a dashboard can tie a model's training feed to the cluster
	// that produced it.
	RunID uint64

	// RMSE is the test RMSE measured at this boundary; 0 when the run has
	// no test set (RMSE of a real model is strictly positive).
	RMSE float64

	// TotalUpdates counts the work done so far in the trainer's own unit:
	// ratings processed (SGD family), ridge solves (ALS), or scalar
	// coordinate updates (CD).
	TotalUpdates  int64
	UpdatesPerSec float64

	// Elapsed is the time since training started — wall clock for the real
	// trainers, virtual time for the simulated pipelines.
	Elapsed time.Duration

	// Checkpoints is the number of snapshots written so far;
	// CheckpointPath is set on KindCheckpoint events.
	Checkpoints    int
	CheckpointPath string

	// BarrierWait is the cumulative time the engine's quiescence barrier
	// spent draining in-flight work at epoch boundaries — the serialized
	// cost the paper's conflict-free scheduling tries to minimize. Zero
	// for trainers without an engine barrier.
	BarrierWait time.Duration
	// CheckpointWrite is the cumulative time spent writing atomic model
	// snapshots (temp file + rename), so slow disks feeding the serve
	// watcher are visible.
	CheckpointWrite time.Duration

	// Classes breaks TotalUpdates down per executor class for
	// heterogeneous runs (nil for single-class trainers), and SplitAlpha
	// is the current nonuniform split: the fraction of the rating mass
	// owned by the throughput (batched) class.
	Classes    []ClassStat
	SplitAlpha float64
}

// ClassStat is one executor class's share of a heterogeneous training run.
// The JSON tags serve the bench reports that embed it verbatim.
type ClassStat struct {
	Class         string  `json:"class"`   // "cpu" | "batched"
	Workers       int     `json:"workers"` // executors of this class
	Updates       int64   `json:"updates"` // ratings processed by the class
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// Steals counts tasks this class took from the other class's region
	// during the dynamic phase.
	Steals int64 `json:"steals"`
	// Tasks counts scheduler tasks this class released (super-blocks for
	// batched, small blocks for cpu).
	Tasks int64 `json:"tasks,omitempty"`
	// TaskP50MS/TaskP99MS are per-task latency quantiles (milliseconds)
	// estimated from the class's measured cost samples.
	TaskP50MS float64 `json:"task_p50_ms,omitempty"`
	TaskP99MS float64 `json:"task_p99_ms,omitempty"`
	// OverlapRatio is the fraction of the batched class's pack ("transfer")
	// time hidden behind its kernels by the double-buffered pipeline —
	// 1 means the Equation 9 overlap is perfect, 0 means packs run fully
	// on the critical path. Zero for the cpu class, which stages nothing.
	OverlapRatio float64 `json:"overlap_ratio,omitempty"`
}

// Func receives progress events. A nil Func is always legal and means "no
// observer".
type Func func(Event)

// Emit calls f with e when f is non-nil — the nil-safe send every trainer
// uses.
func (f Func) Emit(e Event) {
	if f != nil {
		f(e)
	}
}

package hsgd

import (
	"errors"
	"fmt"

	"hsgd/internal/sgd"
)

// Capabilities declares which TrainOptions a Trainer can honor. Callers can
// branch on it before constructing options (e.g. a CLI graying out flags);
// the Train methods enforce it uniformly — an option the trainer cannot
// honor fails with an *UnsupportedError (errors.Is ErrUnsupported) instead
// of being silently dropped.
type Capabilities struct {
	// Algorithm is the trainer name accepted by NewTrainer.
	Algorithm string
	// Schedules: honors non-fixed learning-rate schedules
	// (TrainOptions.Schedule beyond the constant one), feeding adaptive
	// schedules the per-epoch loss.
	Schedules bool
	// EarlyStop: honors TrainOptions.TargetRMSE.
	EarlyStop bool
	// Checkpoint: writes atomic mid-train snapshots
	// (TrainOptions.CheckpointPath / CheckpointEvery).
	Checkpoint bool
	// Resume: warm-starts from TrainOptions.Resume / StartEpoch.
	Resume bool
	// SplitLambda: honors Params.LambdaP != Params.LambdaQ. Trainers whose
	// ridge solvers take one shared λ (ALS, CD) cannot.
	SplitLambda bool
	// InnerSweeps: honors TrainOptions.InnerSweeps (CCD++ refinement).
	InnerSweeps bool
	// History: records the per-epoch RMSE trajectory in
	// TrainReport.History when a Test set is supplied.
	History bool
	// Simulated: trains on the simulated heterogeneous system and honors
	// TrainOptions.Sim; reported times are virtual seconds.
	Simulated bool
	// Heterogeneous: trains through the real two-class executor engine and
	// honors TrainOptions.Hetero (batched workers, super-block granularity,
	// static-only, fixed α).
	Heterogeneous bool
	// Trace: records one epoch's block-schedule timeline into
	// TrainOptions.Trace (Chrome trace-event spans per executor).
	Trace bool
}

// ErrUnsupported is the sentinel wrapped by every option-rejection error:
//
//	_, _, err := trainer.Train(ctx, train, opt)
//	if errors.Is(err, hsgd.ErrUnsupported) { ... }
var ErrUnsupported = errors.New("option not supported by this trainer")

// UnsupportedError reports a TrainOptions field the selected trainer cannot
// honor. It unwraps to ErrUnsupported.
type UnsupportedError struct {
	Trainer string // trainer name
	Option  string // the offending TrainOptions field
	Hint    string // which trainer(s) support it, or how to avoid it
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("hsgd: trainer %q does not support %s (%s)", e.Trainer, e.Option, e.Hint)
}

func (e *UnsupportedError) Unwrap() error { return ErrUnsupported }

// validateOptions is the single, capability-driven options gate every
// trainer runs before touching data — it replaces the per-trainer reject*
// guards of API v1.
func validateOptions(c Capabilities, opt TrainOptions) error {
	if opt.Params.K <= 0 || opt.Params.Iters <= 0 {
		return fmt.Errorf("hsgd: invalid params (k=%d iters=%d)", opt.Params.K, opt.Params.Iters)
	}
	if opt.TargetRMSE > 0 && opt.Test == nil {
		return fmt.Errorf("hsgd: TargetRMSE requires a Test set to evaluate against")
	}
	checks := []struct {
		used    bool
		capable bool
		option  string
		hint    string
	}{
		{!sgd.IsFixed(opt.Schedule), c.Schedules, "Schedule",
			"non-fixed schedules need fpsgd, hetero, hogwild, nomad or sim"},
		{opt.TargetRMSE > 0, c.EarlyStop, "TargetRMSE",
			"early stopping needs fpsgd, hetero, nomad or sim"},
		{opt.CheckpointPath != "", c.Checkpoint, "CheckpointPath",
			"mid-train checkpoints need fpsgd or hetero"},
		{opt.Resume != nil || opt.StartEpoch != 0, c.Resume, "Resume/StartEpoch",
			"warm-start resume needs fpsgd or hetero"},
		{opt.Params.LambdaP != opt.Params.LambdaQ, c.SplitLambda, "Params.LambdaP != Params.LambdaQ",
			"this trainer solves with a single regulariser; set LambdaP == LambdaQ or use fpsgd/hetero"},
		{opt.InnerSweeps != 0, c.InnerSweeps, "InnerSweeps",
			"CCD++ inner refinement sweeps need cd"},
		{opt.Sim != nil, c.Simulated, "Sim",
			"simulated device configuration needs sim"},
		{opt.Hetero != nil, c.Heterogeneous, "Hetero",
			"heterogeneous executor configuration needs hetero"},
		{opt.Trace != nil, c.Trace, "Trace",
			"epoch trace capture needs fpsgd or hetero"},
	}
	for _, chk := range checks {
		if chk.used && !chk.capable {
			return &UnsupportedError{Trainer: c.Algorithm, Option: chk.option, Hint: chk.hint}
		}
	}
	return nil
}

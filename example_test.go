package hsgd_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"hsgd"
)

// ExampleNewTrainer shows the unified training session: pick an algorithm,
// inspect its capabilities, and train with a context.
func ExampleNewTrainer() {
	train, test, err := hsgd.GenerateDataset(hsgd.BenchmarkDatasets()[0].Scale(0.03), 1)
	if err != nil {
		log.Fatal(err)
	}
	params := hsgd.DefaultParams()
	params.K = 8
	params.Iters = 3

	trainer, err := hsgd.NewTrainer("fpsgd")
	if err != nil {
		log.Fatal(err)
	}
	caps := trainer.Capabilities()
	fmt.Printf("%s: checkpoint=%v resume=%v early-stop=%v\n",
		caps.Algorithm, caps.Checkpoint, caps.Resume, caps.EarlyStop)

	report, factors, err := trainer.Train(context.Background(), train, hsgd.TrainOptions{
		Threads: 2,
		Params:  params,
		Seed:    1,
		Test:    test,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d epochs: %v\n", report.Epochs, report.Epochs == params.Iters)
	fmt.Printf("model usable: %v\n", factors.Predict(0, 0) == factors.Predict(0, 0))
	// Output:
	// fpsgd: checkpoint=true resume=true early-stop=true
	// completed 3 epochs: true
	// model usable: true
}

// ExampleTrainer_cancellation shows the interruption contract: a deadlined
// context stops training at the next safe boundary, and the session still
// yields usable factors, a partial report, and a final atomic checkpoint
// that a serving process can load.
func ExampleTrainer_cancellation() {
	train, _, err := hsgd.GenerateDataset(hsgd.BenchmarkDatasets()[0].Scale(0.05), 2)
	if err != nil {
		log.Fatal(err)
	}
	params := hsgd.DefaultParams()
	params.K = 16
	params.Iters = 1 << 20 // far more epochs than the deadline allows

	dir, err := os.MkdirTemp("", "hsgd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "model.hfac")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	trainer, _ := hsgd.NewTrainer("fpsgd")
	report, factors, err := trainer.Train(ctx, train, hsgd.TrainOptions{
		Threads:        2,
		Params:         params,
		Seed:           2,
		CheckpointPath: ckpt,
	})
	fmt.Printf("deadline exceeded: %v\n", errors.Is(err, context.DeadlineExceeded))
	fmt.Printf("partial report: %v, factors usable: %v\n",
		report != nil && report.Interrupted, factors != nil)

	// The final checkpoint was written on the way out; a serve process
	// watching this path would hot-swap it.
	loaded, err := hsgd.LoadFactors(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint on disk matches: %v\n", loaded.K == params.K)
	// Output:
	// deadline exceeded: true
	// partial report: true, factors usable: true
	// checkpoint on disk matches: true
}

// Recommender: the use case the paper's introduction motivates — train a
// rating model, publish it into the online serving subsystem, and fetch
// top-N recommendations over the HTTP API, including a cold-start fold-in
// for a user the trainer never saw.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"hsgd"
	"hsgd/internal/serve"
)

func main() {
	spec := hsgd.BenchmarkDatasets()[0].Scale(0.3) // MovieLens-shaped
	train, test, err := hsgd.GenerateDataset(spec, 7)
	if err != nil {
		log.Fatal(err)
	}

	params := hsgd.DefaultParams()
	params.K = 32
	params.Iters = 20

	trainer, err := hsgd.NewTrainer("fpsgd")
	if err != nil {
		log.Fatal(err)
	}
	report, factors, err := trainer.Train(context.Background(), train, hsgd.TrainOptions{
		Threads: 8,
		Params:  params,
		Seed:    7,
		Test:    test,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: k=%d, RMSE %.4f after %d epochs (%.2fs)\n",
		params.K, report.FinalRMSE, report.Epochs, report.Seconds)

	// Publish the freshly trained factors into a snapshot store and mount
	// the serving API on a loopback listener — the same stack cmd/hsgd-serve
	// runs, minus the snapshot file.
	store := serve.NewStore()
	if _, err := store.Publish(factors, "in-process"); err != nil {
		log.Fatal(err)
	}
	server, err := serve.New(serve.Config{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: server.Handler()}
	go func() { _ = httpServer.Serve(ln) }()
	defer httpServer.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// Index each user's seen items so recommendations are novel.
	seen := make(map[int32][]int32)
	for _, r := range train.Ratings {
		seen[r.Row] = append(seen[r.Row], r.Col)
	}

	// Recommend for the three heaviest users via GET /v1/recommend.
	counts := train.RowCounts()
	for rank := 0; rank < 3; rank++ {
		best := 0
		for u, c := range counts {
			if c > counts[best] {
				best = u
			}
		}
		u := int32(best)
		counts[best] = -1 // exclude from the next pass
		var resp struct {
			Items []struct {
				Item  int32   `json:"item"`
				Score float32 `json:"score"`
			} `json:"items"`
		}
		url := fmt.Sprintf("%s/v1/recommend?user=%d&k=5&exclude=%s", base, u, idList(seen[u]))
		getJSON(url, &resp)
		fmt.Printf("user %d (%d ratings) -> recommended items: ", u, len(seen[u]))
		for i, it := range resp.Items {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%d (%.2f)", it.Item, it.Score)
		}
		fmt.Println()
	}

	// A brand-new user rates a handful of items; POST /v1/recommend folds
	// them into a factor vector against the frozen item matrix and serves
	// recommendations immediately — no retrain.
	coldRatings := []map[string]any{}
	for i, r := range train.Ratings[:4] {
		coldRatings = append(coldRatings, map[string]any{"item": r.Col, "value": r.Value + float32(i%2)})
	}
	body, _ := json.Marshal(map[string]any{"k": 5, "ratings": coldRatings})
	resp, err := http.Post(base+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var cold struct {
		FoldIn bool `json:"fold_in"`
		Items  []struct {
			Item  int32   `json:"item"`
			Score float32 `json:"score"`
		} `json:"items"`
	}
	decode(resp, &cold)
	fmt.Printf("cold-start user (fold_in=%v) -> recommended items: ", cold.FoldIn)
	for i, it := range cold.Items {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%d (%.2f)", it.Item, it.Score)
	}
	fmt.Println()

	// Item-to-item: what resembles the cold-start user's first pick?
	if len(cold.Items) > 0 {
		var sim struct {
			Items []struct {
				Item  int32   `json:"item"`
				Score float32 `json:"score"`
			} `json:"items"`
		}
		getJSON(fmt.Sprintf("%s/v1/similar-items?item=%d&k=3", base, cold.Items[0].Item), &sim)
		fmt.Printf("items similar to %d: ", cold.Items[0].Item)
		for i, it := range sim.Items {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%d (cos %.2f)", it.Item, it.Score)
		}
		fmt.Println()
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = httpServer.Shutdown(shutdownCtx)
}

func getJSON(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, into)
}

func decode(resp *http.Response, into any) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}

func idList(ids []int32) string {
	var buf bytes.Buffer
	for i, id := range ids {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%d", id)
	}
	return buf.String()
}

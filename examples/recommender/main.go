// Recommender: the use case the paper's introduction motivates — train a
// rating model, then produce top-N item recommendations per user, excluding
// items they have already rated.
package main

import (
	"fmt"
	"log"

	"hsgd"
)

func main() {
	spec := hsgd.BenchmarkDatasets()[0].Scale(0.3) // MovieLens-shaped
	train, test, err := hsgd.GenerateDataset(spec, 7)
	if err != nil {
		log.Fatal(err)
	}

	params := hsgd.DefaultParams()
	params.K = 32
	params.Iters = 20

	report, factors, err := hsgd.TrainParallel(train, hsgd.ParallelOptions{
		Threads: 8,
		Params:  params,
		Seed:    7,
		Test:    test,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: k=%d, RMSE %.4f after %d epochs (%.2fs)\n",
		params.K, report.FinalRMSE, report.Epochs, report.Seconds)

	// Index each user's seen items so recommendations are novel.
	seen := make(map[int32]map[int32]bool)
	for _, r := range train.Ratings {
		if seen[r.Row] == nil {
			seen[r.Row] = make(map[int32]bool)
		}
		seen[r.Row][r.Col] = true
	}

	// Recommend for the three heaviest users.
	counts := train.RowCounts()
	for rank := 0; rank < 3; rank++ {
		best := 0
		for u, c := range counts {
			if c > counts[best] {
				best = u
			}
		}
		u := int32(best)
		counts[best] = -1 // exclude from the next pass
		top := factors.TopN(u, 5, seen[u])
		fmt.Printf("user %d (%d ratings) -> recommended items: ", u, len(seen[u]))
		for i, v := range top {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%d (%.2f)", v, factors.Predict(u, v))
		}
		fmt.Println()
	}
}

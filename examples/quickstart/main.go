// Quickstart: factorize a small synthetic rating matrix with the
// goroutine-parallel FPSGD trainer and evaluate it — the 15-line path a new
// user of the library takes first.
package main

import (
	"fmt"
	"log"

	"hsgd"
)

func main() {
	// A small MovieLens-shaped synthetic dataset (disjoint train/test).
	spec := hsgd.BenchmarkDatasets()[0].Scale(0.2)
	train, test, err := hsgd.GenerateDataset(spec, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users x %d items, %d train / %d test ratings\n",
		train.Rows, train.Cols, train.NNZ(), test.NNZ())

	params := hsgd.DefaultParams()
	params.K = 32
	params.Iters = 15

	report, factors, err := hsgd.TrainParallel(train, hsgd.ParallelOptions{
		Threads: 8,
		Params:  params,
		Seed:    42,
		Test:    test,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d epochs in %.3fs: test RMSE %.4f\n",
		report.Epochs, report.Seconds, report.FinalRMSE)

	// Use the model: predicted score for one (user, item) pair.
	fmt.Printf("predicted rating for user 3, item 7: %.2f\n", factors.Predict(3, 7))
}

// Quickstart: factorize a small synthetic rating matrix with the unified
// training API and evaluate it — the 20-line path a new user of the
// library takes first: NewTrainer, a context, a progress callback, Train.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"hsgd"
)

func main() {
	// A small MovieLens-shaped synthetic dataset (disjoint train/test).
	spec := hsgd.BenchmarkDatasets()[0].Scale(0.2)
	train, test, err := hsgd.GenerateDataset(spec, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users x %d items, %d train / %d test ratings\n",
		train.Rows, train.Cols, train.NNZ(), test.NNZ())

	params := hsgd.DefaultParams()
	params.K = 32
	params.Iters = 15

	// Ctrl-C cancels the session gracefully: Train still returns the
	// best-so-far factors and a partial report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	trainer, err := hsgd.NewTrainer("fpsgd")
	if err != nil {
		log.Fatal(err)
	}
	report, factors, err := trainer.Train(ctx, train, hsgd.TrainOptions{
		Threads: 8,
		Params:  params,
		Seed:    42,
		Test:    test,
		Progress: func(e hsgd.ProgressEvent) {
			if e.Kind == hsgd.ProgressEpoch {
				fmt.Printf("  epoch %2d/%d  rmse %.4f  %.1f Mupd/s\n",
					e.Epoch, e.TotalEpochs, e.RMSE, e.UpdatesPerSec/1e6)
			}
		},
	})
	if err != nil && report == nil {
		log.Fatal(err) // hard failure; an interruption still yields a model
	}
	fmt.Printf("trained %d epochs in %.3fs: test RMSE %.4f (interrupted=%v)\n",
		report.Epochs, report.Seconds, report.FinalRMSE, report.Interrupted)

	// Use the model: predicted score for one (user, item) pair.
	fmt.Printf("predicted rating for user 3, item 7: %.2f\n", factors.Predict(3, 7))
}

// Heterogeneous: the paper's headline experiment in miniature — train the
// same dataset with CPU-Only (FPSGD), GPU-Only (cuMF_SGD-style) and HSGD*
// on the simulated CPU+GPU system and compare time-to-target-RMSE, printing
// the cost-model split and the speedups (Figures 10–12).
package main

import (
	"fmt"
	"log"

	"hsgd"
)

func main() {
	spec := hsgd.BenchmarkDatasets()[2].Scale(0.1) // R1-shaped
	spec.K = 32
	train, test, err := hsgd.GenerateDataset(spec, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s-shaped, %d ratings; fixed 30-epoch budget\n",
		spec.Name, train.NNZ())

	const deviceScale = 0.001 // device constants matched to the dataset scale
	times := map[hsgd.Algorithm]float64{}
	for _, alg := range []hsgd.Algorithm{hsgd.CPUOnly, hsgd.GPUOnly, hsgd.HSGDStar} {
		params := spec.Params()
		params.K = spec.K
		params.Iters = 30
		report, _, err := hsgd.Train(train, test, hsgd.Options{
			Algorithm:  alg,
			CPUThreads: 16,
			GPUs:       1,
			Params:     params,
			GPU:        hsgd.DefaultGPU().Scaled(deviceScale), // 128 parallel workers
			CPU:        hsgd.DefaultCPU().Scaled(deviceScale),
			Seed:       42,
		})
		if err != nil {
			log.Fatal(err)
		}
		times[alg] = report.VirtualSeconds
		extra := ""
		if report.Alpha > 0 {
			extra = fmt.Sprintf("  [alpha=%.3f -> GPU %.0f%%]", report.Alpha, 100*report.GPUShare)
		}
		fmt.Printf("%-9s %d epochs in %.4fs virtual time, final RMSE %.3f%s\n",
			alg, report.Epochs, report.VirtualSeconds, report.FinalRMSE, extra)
	}
	fmt.Printf("\nHSGD* speedup: %.2fx over CPU-Only, %.2fx over GPU-Only\n",
		times[hsgd.CPUOnly]/times[hsgd.HSGDStar],
		times[hsgd.GPUOnly]/times[hsgd.HSGDStar])
}

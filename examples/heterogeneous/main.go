// Heterogeneous: the paper's headline experiment in miniature — train the
// same dataset with CPU-Only (FPSGD), GPU-Only (cuMF_SGD-style) and HSGD*
// through the unified "sim" trainer and compare time-to-target-RMSE,
// printing the speedups (Figures 10–12). The simulated pipelines sit behind
// the same Trainer interface as the real ones: only TrainOptions.Sim and
// the meaning of report.Seconds (virtual, not wall clock) differ.
package main

import (
	"context"
	"fmt"
	"log"

	"hsgd"
)

func main() {
	spec := hsgd.BenchmarkDatasets()[2].Scale(0.1) // R1-shaped
	spec.K = 32
	train, test, err := hsgd.GenerateDataset(spec, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s-shaped, %d ratings; fixed 30-epoch budget\n",
		spec.Name, train.NNZ())

	trainer, err := hsgd.NewTrainer("sim")
	if err != nil {
		log.Fatal(err)
	}
	const deviceScale = 0.001 // device constants matched to the dataset scale
	times := map[hsgd.Algorithm]float64{}
	for _, alg := range []hsgd.Algorithm{hsgd.CPUOnly, hsgd.GPUOnly, hsgd.HSGDStar} {
		params := spec.Params()
		params.K = spec.K
		params.Iters = 30
		report, _, err := trainer.Train(context.Background(), train, hsgd.TrainOptions{
			Threads: 16,
			Params:  params,
			Seed:    42,
			Test:    test,
			Sim: &hsgd.SimConfig{
				Algorithm:   alg,
				GPUs:        1,
				DeviceScale: deviceScale, // 128 parallel workers (the default GPU)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		times[alg] = report.Seconds
		fmt.Printf("%-9s %d epochs in %.4fs virtual time, final RMSE %.3f\n",
			alg, report.Epochs, report.Seconds, report.FinalRMSE)
	}
	fmt.Printf("\nHSGD* speedup: %.2fx over CPU-Only, %.2fx over GPU-Only\n",
		times[hsgd.CPUOnly]/times[hsgd.HSGDStar],
		times[hsgd.GPUOnly]/times[hsgd.HSGDStar])
}

// Costmodel: the offline phase of Algorithm 2 — profile the machine,
// inspect the fitted Section V models against the Qilin linear baseline,
// and see where the workload split α lands for different dataset sizes.
package main

import (
	"fmt"
	"log"

	"hsgd"
	"hsgd/internal/cost"
)

func main() {
	const deviceScale = 0.01
	gcfg := hsgd.DefaultGPU().Scaled(deviceScale)
	ccfg := hsgd.DefaultCPU().Scaled(deviceScale)

	nnz := 1_000_000
	profile, err := hsgd.ProfileMachine(nnz, gcfg, ccfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fitted cost models (offline phase, Algorithm 3):")
	fmt.Printf("  CPU (linear):   time(n) = %.3e*n + %.3e\n", profile.CPU.A, profile.CPU.B)
	fmt.Printf("  GPU kernel:     tau=%.3g, log-speed fit below, linear above\n", profile.GPU.Kernel.Tau)
	fmt.Printf("  H2D transfer:   tau=%.3g, sqrt-log-speed fit below, linear above\n", profile.GPU.H2D.Tau)
	fmt.Printf("  Qilin baseline: time(n) = %.3e*n + %.3e\n\n", profile.QilinGPU.A, profile.QilinGPU.B)

	fmt.Println("estimates vs workload (seconds; fg = max(transfer, kernel), Eq. 9):")
	for _, n := range []float64{50_000, 200_000, 500_000, 1_000_000} {
		kernel, h2d, _ := profile.GPU.Breakdown(n)
		fmt.Printf("  n=%9.0f  kernel=%.5f  h2d=%.5f  fg=%.5f  fc(1 thread)=%.5f\n",
			n, kernel, h2d, profile.GPU.Time(n), profile.CPU.Time(n))
	}

	fmt.Println("\nworkload split alpha (Eq. 8) for 16 CPU threads + 1 GPU:")
	for _, n := range []float64{100_000, 500_000, 1_000_000, 2_500_000} {
		aM := cost.SolveAlpha(profile.GPU.Time, profile.CPU.Time, n, 16, 1)
		aQ := cost.SolveAlpha(profile.QilinGPU.Time, profile.CPU.Time, n, 16, 1)
		fmt.Printf("  nnz=%9.0f  ours: GPU %.1f%%   Qilin: GPU %.1f%%\n", n, 100*aM, 100*aQ)
	}
}

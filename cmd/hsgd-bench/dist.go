package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"

	"hsgd"
	"hsgd/internal/dataset"
	"hsgd/internal/dist"
	"hsgd/internal/obs"
	"hsgd/internal/progress"
)

// distResult is one contender's showing in the single-node vs distributed
// NOMAD comparison.
type distResult struct {
	Seconds      float64 `json:"seconds"`
	Epochs       int     `json:"epochs"`
	Updates      int64   `json:"updates"`
	MUpdPerS     float64 `json:"mupd_per_s"`
	FinalRMSE    float64 `json:"final_rmse"`
	TimeToTarget float64 `json:"time_to_target_s"` // earliest wall-clock reach of TargetRMSE
}

type distReport struct {
	Dataset  string `json:"dataset"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	NNZ      int    `json:"nnz"`
	K        int    `json:"k"`
	Iters    int    `json:"iters"`
	Workers  int    `json:"workers"` // distributed worker processes = single-node goroutines
	MaxProcs int    `json:"maxprocs"`
	Seed     int64  `json:"seed"`

	// TargetRMSE is the worse of the two contenders' final RMSEs — the
	// level both demonstrably reach, so time-to-target compares equal
	// model quality rather than raw epoch throughput.
	TargetRMSE float64 `json:"target_rmse"`

	Single distResult `json:"single_node"` // in-process nomad trainer
	Dist   distResult `json:"distributed"` // coordinator + workers over TCP loopback

	// Wire volume per epoch from the coordinator's totals: the circulation
	// traffic a real deployment pays per pass over the ratings.
	BytesSentPerEpoch int64 `json:"bytes_sent_per_epoch"`
	BytesRecvPerEpoch int64 `json:"bytes_recv_per_epoch"`

	// Speedup is single-node / distributed time-to-target. On one box the
	// loopback cluster buys no extra compute, so this measures pure
	// protocol overhead (values below 1 are expected); across real
	// machines the same harness measures scale-out.
	Speedup float64 `json:"speedup"`

	Meta obs.RunMeta `json:"meta"`
}

// runDist benchmarks the in-process nomad trainer against a full
// coordinator-plus-workers cluster over TCP loopback at the same worker
// budget and seed: equal-quality wall-clock (time to the common reachable
// RMSE) plus the wire bytes each epoch of column circulation costs.
func runDist(ctx context.Context, name string, scale float64, k, iters, workers int, seed int64, runs int, out string, verbose bool) error {
	if runs < 1 {
		runs = 1
	}
	if workers < 1 {
		workers = 3
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	spec = spec.Scale(scale)
	train, test, err := dataset.Generate(spec, seed)
	if err != nil {
		return err
	}
	rep := distReport{
		Dataset: spec.Name, Rows: spec.Rows, Cols: spec.Cols, NNZ: train.NNZ(),
		K: k, Iters: iters, Workers: workers,
		MaxProcs: runtime.GOMAXPROCS(0), Seed: seed,
	}

	var prog progress.Func
	if verbose {
		prog = func(e progress.Event) {
			if e.Kind == progress.KindEpoch {
				fmt.Fprintf(os.Stderr, "  %s epoch %d/%d  rmse %.4f  %.1f Mupd/s\n",
					e.Algorithm, e.Epoch, e.TotalEpochs, e.RMSE, e.UpdatesPerSec/1e6)
			}
		}
	}
	opts := hsgd.TrainOptions{
		Threads: workers,
		Params: hsgd.Params{
			K: k, LambdaP: spec.LambdaP, LambdaQ: spec.LambdaQ,
			Gamma: spec.Gamma, Iters: iters,
		},
		Seed: seed, Test: test, Progress: prog,
	}
	tr, err := hsgd.NewTrainer("nomad")
	if err != nil {
		return err
	}

	// One distributed trial: listener on an ephemeral loopback port, the
	// worker processes as goroutines speaking real TCP, the coordinator in
	// the foreground. Workers exit on the coordinator's Done frame; the
	// cancel covers coordinator error paths.
	distTrial := func() (*dist.Report, error) {
		ln, err := dist.TCP{}.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer ln.Close()
		wctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = dist.Work(wctx, dist.TCP{}, ln.Addr().String(), train, dist.WorkerConfig{})
			}()
		}
		dRep, _, err := dist.Coordinate(ctx, ln, train, dist.Config{
			K: k, LambdaP: spec.LambdaP, LambdaQ: spec.LambdaQ, Gamma: spec.Gamma,
			Epochs: iters, Seed: seed, Workers: workers,
			Test: test, Progress: prog,
		})
		cancel()
		wg.Wait()
		return dRep, err
	}

	// Warm-up so neither contender pays first-touch costs, then alternate
	// trials keeping every report: the headline metric is time-to-target,
	// so selection happens on that metric once the common target is fixed.
	warm := opts
	warm.Params.Iters = 1
	warm.Test, warm.Progress = nil, nil
	if _, _, err := tr.Train(ctx, train, warm); err != nil {
		return err
	}
	var singleTrials []*hsgd.TrainReport
	var distTrials []*dist.Report
	for i := 0; i < runs; i++ {
		sRep, _, err := tr.Train(ctx, train, opts)
		if err != nil {
			return err
		}
		singleTrials = append(singleTrials, sRep)
		dRep, err := distTrial()
		if err != nil {
			return err
		}
		distTrials = append(distTrials, dRep)
	}

	// Equal-RMSE comparison against the worst final RMSE over every trial
	// of both contenders — a level each trial demonstrably reached.
	for _, r := range singleTrials {
		if r.FinalRMSE > rep.TargetRMSE {
			rep.TargetRMSE = r.FinalRMSE
		}
	}
	for _, r := range distTrials {
		if r.FinalRMSE > rep.TargetRMSE {
			rep.TargetRMSE = r.FinalRMSE
		}
	}
	bestSingle, bestSingleTTT := singleTrials[0], 0.0
	for i, r := range singleTrials {
		ttt := crossing(singleTraj(r), rep.TargetRMSE)
		if i == 0 || ttt < bestSingleTTT {
			bestSingle, bestSingleTTT = r, ttt
		}
	}
	bestDist, bestDistTTT := distTrials[0], 0.0
	for i, r := range distTrials {
		ttt := crossing(distTraj(r), rep.TargetRMSE)
		if i == 0 || ttt < bestDistTTT {
			bestDist, bestDistTTT = r, ttt
		}
	}
	rep.Single = distResult{
		Seconds: bestSingle.Seconds, Epochs: bestSingle.Epochs,
		Updates:   bestSingle.TotalUpdates,
		MUpdPerS:  float64(bestSingle.TotalUpdates) / bestSingle.Seconds / 1e6,
		FinalRMSE: bestSingle.FinalRMSE, TimeToTarget: bestSingleTTT,
	}
	rep.Dist = distResult{
		Seconds: bestDist.Seconds, Epochs: bestDist.Epochs,
		Updates:   bestDist.TotalUpdates,
		MUpdPerS:  float64(bestDist.TotalUpdates) / bestDist.Seconds / 1e6,
		FinalRMSE: bestDist.FinalRMSE, TimeToTarget: bestDistTTT,
	}
	if bestDist.Epochs > 0 {
		rep.BytesSentPerEpoch = bestDist.BytesSent / int64(bestDist.Epochs)
		rep.BytesRecvPerEpoch = bestDist.BytesRecv / int64(bestDist.Epochs)
	}
	if rep.Dist.TimeToTarget > 0 {
		rep.Speedup = rep.Single.TimeToTarget / rep.Dist.TimeToTarget
	}
	rep.Meta = runMeta()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: single-node nomad %.3fs to rmse %.4f vs %d-worker TCP cluster %.3fs — ratio %.2fx, %d KB sent + %d KB received per epoch\n",
		spec.Name, rep.Single.TimeToTarget, rep.TargetRMSE, workers, rep.Dist.TimeToTarget,
		rep.Speedup, rep.BytesSentPerEpoch/1024, rep.BytesRecvPerEpoch/1024)
	fmt.Printf("report written to %s\n", out)
	return nil
}

// trajPoint is one (wall-clock, RMSE) measurement, the common shape of both
// contenders' histories.
type trajPoint struct{ t, rmse float64 }

func singleTraj(r *hsgd.TrainReport) []trajPoint {
	out := make([]trajPoint, len(r.History))
	for i, p := range r.History {
		out[i] = trajPoint{p.Time, p.RMSE}
	}
	return out
}

func distTraj(r *dist.Report) []trajPoint {
	out := make([]trajPoint, len(r.History))
	for i, p := range r.History {
		out[i] = trajPoint{p.Time, p.RMSE}
	}
	return out
}

// crossing returns the earliest wall-clock time the trajectory reached the
// target (0 when it never did — the caller's target is chosen so both
// histories cross it).
func crossing(hist []trajPoint, target float64) float64 {
	for _, p := range hist {
		if p.rmse <= target {
			return p.t
		}
	}
	return 0
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hsgd/internal/obs"
)

// The closed-loop load harness (-mode load) drives a live hsgd-serve over
// real HTTP at a fixed concurrency: every worker goroutine issues one
// request, waits for the full response, observes the latency client-side,
// and immediately issues the next — so the offered load adapts to what the
// server sustains instead of overrunning it open-loop. The request mix is
// weighted across the four /v1 surfaces (predict, recommend, similar-items,
// and cold-start fold-in POSTs), query ids are drawn from the live
// snapshot's own shape (probed from /statsz), and the report lands in
// BENCH_load.json with per-endpoint p50/p99/p999, total throughput, and the
// shed/error counts that show whether the server was degrading under the
// offered load.

// loadEndpointStats is one endpoint's client-side view of the run.
type loadEndpointStats struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"` // non-2xx answers other than 429, plus transport failures
	Shed     uint64  `json:"shed_429"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
}

type loadReport struct {
	Target      string  `json:"target"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`
	Mix         string  `json:"mix"`
	Users       int     `json:"users"` // snapshot shape probed from /statsz
	Items       int     `json:"items"`
	Seed        int64   `json:"seed"`

	TotalRequests uint64  `json:"total_requests"`
	Throughput    float64 `json:"throughput_rps"`
	TotalShed     uint64  `json:"total_shed_429"`
	TotalErrors   uint64  `json:"total_errors"`

	Endpoints map[string]loadEndpointStats `json:"endpoints"`

	Meta obs.RunMeta `json:"meta"`
}

// loadCounters is one endpoint's shared hot-path state: a lock-free
// histogram for latencies plus three atomic counters the workers bump.
type loadCounters struct {
	hist *obs.Histogram
	n    atomic.Uint64
	errs atomic.Uint64
	shed atomic.Uint64
}

// parseMix turns "predict=30,recommend=50,similar=15,foldin=5" into a
// cumulative-weight table for O(log n) weighted draws.
func parseMix(s string) (names []string, cum []int, total int, err error) {
	known := map[string]bool{"predict": true, "recommend": true, "similar": true, "foldin": true}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, nil, 0, fmt.Errorf("bad -mix entry %q (want name=weight)", part)
		}
		if !known[name] {
			return nil, nil, 0, fmt.Errorf("unknown -mix endpoint %q (want predict|recommend|similar|foldin)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, nil, 0, fmt.Errorf("bad -mix weight %q", val)
		}
		if w == 0 {
			continue
		}
		total += w
		names = append(names, name)
		cum = append(cum, total)
	}
	if total == 0 {
		return nil, nil, 0, fmt.Errorf("-mix %q has no positive weights", s)
	}
	return names, cum, total, nil
}

// probeShape asks the target's /statsz for the live snapshot's user and item
// counts so the generated queries hit real ids.
func probeShape(ctx context.Context, client *http.Client, target string) (users, items int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/statsz", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("probing %s/statsz: %w", target, err)
	}
	defer resp.Body.Close()
	var stats struct {
		Snapshot *struct {
			Users int `json:"users"`
			Items int `json:"items"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, 0, fmt.Errorf("decoding /statsz: %w", err)
	}
	if stats.Snapshot == nil || stats.Snapshot.Users <= 0 || stats.Snapshot.Items <= 0 {
		return 0, 0, fmt.Errorf("target %s has no loaded snapshot", target)
	}
	return stats.Snapshot.Users, stats.Snapshot.Items, nil
}

// runLoad drives the closed loop and writes the BENCH_load.json report.
func runLoad(ctx context.Context, target string, duration time.Duration, concurrency int, mix string, seed int64, out string) error {
	if concurrency < 1 {
		concurrency = 1
	}
	target = strings.TrimRight(target, "/")
	names, cum, total, err := parseMix(mix)
	if err != nil {
		return err
	}
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency * 2,
			MaxIdleConnsPerHost: concurrency * 2,
		},
	}
	users, items, err := probeShape(ctx, client, target)
	if err != nil {
		return err
	}

	counters := map[string]*loadCounters{}
	for _, n := range names {
		counters[n] = &loadCounters{hist: obs.NewHistogram(nil)}
	}

	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(worker)*7919))
			for runCtx.Err() == nil {
				name := names[sort.SearchInts(cum, rng.Intn(total)+1)]
				c := counters[name]
				reqStart := time.Now()
				status, err := fireRequest(runCtx, client, target, name, rng, users, items)
				if runCtx.Err() != nil && err != nil {
					return // the deadline cut this request short; don't count it
				}
				c.hist.ObserveSince(reqStart)
				c.n.Add(1)
				switch {
				case err != nil:
					c.errs.Add(1)
				case status == http.StatusTooManyRequests:
					c.shed.Add(1)
				case status < 200 || status > 299:
					c.errs.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := loadReport{
		Target: target, DurationS: elapsed, Concurrency: concurrency, Mix: mix,
		Users: users, Items: items, Seed: seed,
		Endpoints: map[string]loadEndpointStats{},
	}
	for _, n := range names {
		c := counters[n]
		st := loadEndpointStats{
			Requests: c.n.Load(), Errors: c.errs.Load(), Shed: c.shed.Load(),
			QPS:    float64(c.n.Load()) / elapsed,
			P50Ms:  c.hist.Quantile(0.50) * 1e3,
			P99Ms:  c.hist.Quantile(0.99) * 1e3,
			P999Ms: c.hist.Quantile(0.999) * 1e3,
		}
		rep.Endpoints[n] = st
		rep.TotalRequests += st.Requests
		rep.TotalShed += st.Shed
		rep.TotalErrors += st.Errors
	}
	rep.Throughput = float64(rep.TotalRequests) / elapsed
	rep.Meta = runMeta()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("load %s: %d requests in %.1fs at concurrency %d — %.0f rps, %d shed, %d errors\n",
		target, rep.TotalRequests, elapsed, concurrency, rep.Throughput, rep.TotalShed, rep.TotalErrors)
	for _, n := range names {
		st := rep.Endpoints[n]
		fmt.Printf("  %-9s %7d reqs  %7.0f qps  p50 %6.2f ms  p99 %6.2f ms  p99.9 %6.2f ms\n",
			n, st.Requests, st.QPS, st.P50Ms, st.P99Ms, st.P999Ms)
	}
	fmt.Printf("report written to %s\n", out)
	if rep.TotalRequests == 0 {
		return fmt.Errorf("no requests completed against %s", target)
	}
	return nil
}

// fireRequest issues one request of the named kind and fully drains the
// response, so the measured latency covers the body and the connection goes
// back to the pool.
func fireRequest(ctx context.Context, client *http.Client, target, name string, rng *rand.Rand, users, items int) (int, error) {
	var req *http.Request
	var err error
	switch name {
	case "predict":
		url := fmt.Sprintf("%s/v1/predict?user=%d&item=%d", target, rng.Intn(users), rng.Intn(items))
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	case "recommend":
		url := fmt.Sprintf("%s/v1/recommend?user=%d&k=10", target, rng.Intn(users))
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	case "similar":
		url := fmt.Sprintf("%s/v1/similar-items?item=%d&k=10", target, rng.Intn(items))
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	case "foldin":
		n := 3 + rng.Intn(6)
		type rating struct {
			Item  int32   `json:"item"`
			Value float32 `json:"value"`
		}
		body := struct {
			K       int      `json:"k"`
			Ratings []rating `json:"ratings"`
		}{K: 10}
		for j := 0; j < n; j++ {
			body.Ratings = append(body.Ratings, rating{
				Item: int32(rng.Intn(items)), Value: 1 + rng.Float32()*4,
			})
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/recommend", &buf)
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	default:
		return 0, fmt.Errorf("unknown endpoint %q", name)
	}
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

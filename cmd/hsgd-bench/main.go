// Command hsgd-bench runs the repo's smoke benchmarks and writes
// machine-readable JSON reports CI tracks across PRs:
//
//   - -mode train (default): engine-vs-legacy training throughput
//     (BENCH_train.json). "engine" is the lock-striped trainer
//     (internal/engine) behind hsgd.TrainParallel; "legacy" is the
//     pre-engine global-mutex FPSGD loop (core.TrainRealLegacy) kept as
//     the regression baseline.
//   - -mode serve: exact float32 vs int8-quantized vs IVF probe-and-rerank
//     top-K retrieval on the Netflix-item-count snapshot, optionally
//     expanded -catalog× by replicate-and-perturb (BENCH_serve.json), with
//     measured bytes touched per query, per-mode effective bandwidth,
//     recall@10 per approximate mode, and the IVF recall-vs-QPS curve
//     across nprobe.
//   - -mode hetero: striped (homogeneous) vs heterogeneous two-class
//     executor engine at the same worker budget (BENCH_hetero.json), with
//     each contender's wall-clock time to the common reachable RMSE.
//   - -mode dist: single-process nomad trainer vs a coordinator-plus-workers
//     NOMAD cluster over TCP loopback at the same worker budget
//     (BENCH_dist.json), with time to the common reachable RMSE and the
//     wire bytes per epoch of column circulation.
//   - -mode load: closed-loop HTTP load against a live hsgd-serve (-target)
//     at fixed -concurrency for -duration, with a weighted -mix of predict,
//     recommend, similar-items, and cold-start fold-in requests
//     (BENCH_load.json), reporting client-side p50/p99/p999 per endpoint,
//     total throughput, and shed/429 counts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"hsgd/internal/core"
	"hsgd/internal/dataset"
	"hsgd/internal/engine"
	"hsgd/internal/model"
	"hsgd/internal/obs"
	"hsgd/internal/progress"
	"hsgd/internal/serve"
	"hsgd/internal/sgd"
)

// runMeta stamps the machine shape into every report so a perf number is
// attributable to the hardware that produced it.
func runMeta() obs.RunMeta { return obs.CollectRunMeta(serve.HasAVX2()) }

type result struct {
	Seconds   float64 `json:"seconds"`
	Epochs    int     `json:"epochs"`
	Updates   int64   `json:"updates"`
	MUpdPerS  float64 `json:"mupd_per_s"`
	FinalRMSE float64 `json:"final_rmse"`
}

type report struct {
	Dataset  string `json:"dataset"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	NNZ      int    `json:"nnz"`
	K        int    `json:"k"`
	Iters    int    `json:"iters"`
	Threads  int    `json:"threads"`
	MaxProcs int    `json:"maxprocs"`
	Seed     int64  `json:"seed"`

	Engine  result  `json:"engine"`
	Legacy  result  `json:"legacy"`
	Speedup float64 `json:"speedup"` // legacy seconds / engine seconds

	Meta obs.RunMeta `json:"meta"`
}

func main() {
	var (
		mode     = flag.String("mode", "train", "train|serve|hetero|dist: which smoke benchmark to run")
		name     = flag.String("dataset", "netflix", "movielens|netflix|r1|yahoo")
		scale    = flag.Float64("scale", 0.1, "size multiplier on the dataset spec")
		k        = flag.Int("k", 32, "latent factors (train mode)")
		iters    = flag.Int("iters", 10, "training epochs")
		threads  = flag.Int("threads", 8, "worker goroutines")
		seed     = flag.Int64("seed", 42, "random seed")
		runs     = flag.Int("runs", 3, "trials per contender; the fastest is reported")
		batched  = flag.Int("batched", 1, "batched executors inside the worker budget (hetero mode)")
		catalog  = flag.Int("catalog", 1, "item-catalog multiplier for serve mode (replicate-and-perturb)")
		nprobe   = flag.Int("nprobe", 0, "IVF probed-list override for serve mode; 0 means nlist/16")
		dworkers = flag.Int("dist-workers", 3, "worker count for dist mode (processes and goroutines alike)")
		target   = flag.String("target", "http://localhost:8080", "live hsgd-serve base URL for load mode")
		duration = flag.Duration("duration", 10*time.Second, "closed-loop driving time for load mode")
		conc     = flag.Int("concurrency", 16, "concurrent closed-loop clients for load mode")
		mix      = flag.String("mix", "predict=30,recommend=45,similar=15,foldin=10", "weighted endpoint mix for load mode (predict|recommend|similar|foldin)")
		out      = flag.String("out", "", "JSON report path (default BENCH_<mode>.json)")
		verbose  = flag.Bool("v", false, "stream per-epoch engine progress to stderr")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the in-flight trial; a partially benchmarked
	// report is useless, so the bench exits with the context error rather
	// than writing misleading numbers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch *mode {
	case "train":
		if *out == "" {
			*out = "BENCH_train.json"
		}
		err = run(ctx, *name, *scale, *k, *iters, *threads, *seed, *runs, *out, *verbose)
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		err = runServe(ctx, *seed, *runs, *catalog, *nprobe, *out)
	case "hetero":
		if *out == "" {
			*out = "BENCH_hetero.json"
		}
		err = runHetero(ctx, *name, *scale, *k, *iters, *threads, *batched, *seed, *runs, *out, *verbose)
	case "dist":
		if *out == "" {
			*out = "BENCH_dist.json"
		}
		err = runDist(ctx, *name, *scale, *k, *iters, *dworkers, *seed, *runs, *out, *verbose)
	case "load":
		if *out == "" {
			*out = "BENCH_load.json"
		}
		err = runLoad(ctx, *target, *duration, *conc, *mix, *seed, *out)
	default:
		err = fmt.Errorf("unknown -mode %q (want train|serve|hetero|dist|load)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-bench: %v\n", err)
		os.Exit(1)
	}
}

// serveResult is one contender's retrieval cost on the benchmark snapshot.
// BytesScannedOp is the memory actually touched per query (measured probe
// work for IVF, the full view plus rerank rows for the scans), and
// EffectiveGBPerS = bytes/elapsed — the effective memory bandwidth the
// retrieval mode sustains.
type serveResult struct {
	NsPerOp         float64 `json:"ns_per_op"`
	QPS             float64 `json:"qps"`
	BytesScannedOp  int64   `json:"bytes_scanned_per_op"`
	EffectiveGBPerS float64 `json:"effective_gb_per_s"`
}

// curvePoint is one nprobe setting on the IVF recall-vs-QPS tradeoff curve.
type curvePoint struct {
	NProbe     int     `json:"nprobe"`
	RecallAt10 float64 `json:"recall_at_10"`
	QPS        float64 `json:"qps"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type serveReport struct {
	Items        int     `json:"items"`
	Catalog      int     `json:"catalog"` // item-catalog multiplier over the Netflix base
	K            int     `json:"k"`
	TopK         int     `json:"top_k"`
	Shards       int     `json:"shards"`
	RerankFactor int     `json:"rerank_factor"`
	MaxProcs     int     `json:"maxprocs"`
	Seed         int64   `json:"seed"`
	QuantBuildMS float64 `json:"quant_build_ms"`
	IVFBuildMS   float64 `json:"ivf_build_ms"`
	NList        int     `json:"nlist"`
	NProbe       int     `json:"nprobe"`
	RecallAt10   float64 `json:"recall_at_10"`     // exact vs quantized
	IVFRecall10  float64 `json:"ivf_recall_at_10"` // exact vs IVF at NProbe

	Exact      serveResult  `json:"exact"`
	Quantized  serveResult  `json:"quantized"`
	IVF        serveResult  `json:"ivf"`
	Speedup    float64      `json:"speedup"`     // exact ns / quantized ns
	IVFSpeedup float64      `json:"ivf_speedup"` // quantized ns / ivf ns
	Curve      []curvePoint `json:"ivf_curve"`

	Meta obs.RunMeta `json:"meta"`
}

// benchFactors builds the serve-benchmark snapshot: item factors drawn as
// gaussian perturbations of shared cluster centers — the co-clustered shape
// trained MF factors take — with one row per query user. Uniform-random
// items would be the structureless adversarial case no coarse quantizer
// (and no real catalog) exhibits.
func benchFactors(m, n, k int, rng *rand.Rand) *model.Factors {
	const nClusters = 256
	const noise = 0.08
	centers := make([]float32, nClusters*k)
	for i := range centers {
		centers[i] = rng.Float32() - 0.5
	}
	f := &model.Factors{M: m, N: n, K: k,
		P: make([]float32, m*k), Q: make([]float32, n*k)}
	for i := range f.P {
		f.P[i] = rng.Float32() - 0.5
	}
	for v := 0; v < n; v++ {
		c := centers[(v%nClusters)*k : (v%nClusters+1)*k]
		row := f.Q[v*k : (v+1)*k]
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64()*noise)
		}
	}
	return f
}

// runServe measures full-catalog top-10 retrieval at the Netflix item count
// (n=17770, the paper's Table I; -catalog multiplies it by replicate-and-
// perturb) with k=128 factors — the configuration where the linear scans
// are memory-bandwidth-bound — for the exact scorer, the int8-quantized
// scorer with exact rerank, and the IVF probe-and-rerank index, plus the
// IVF recall-vs-QPS curve across nprobe.
func runServe(ctx context.Context, seed int64, runs, catalog, nprobe int, out string) error {
	const (
		baseItems = 17770
		kDim      = 128
		topK      = 10
		queries   = 256
	)
	if runs < 1 {
		runs = 1
	}
	if catalog < 1 {
		catalog = 1
	}
	rng := rand.New(rand.NewSource(seed))
	f := benchFactors(queries, baseItems, kDim, rng)
	f = model.ExpandCatalog(f, catalog, 0.01, seed)
	nItems := f.N

	buildStart := time.Now()
	qf := model.QuantizeItems(f)
	quantBuildMS := float64(time.Since(buildStart).Nanoseconds()) / 1e6
	buildStart = time.Now()
	ix := model.BuildIVF(f, qf, 0, seed)
	ivfBuildMS := float64(time.Since(buildStart).Nanoseconds()) / 1e6
	nprobe = serve.EffectiveNProbe(nprobe, ix.NList)

	s := &serve.Scorer{NProbe: nprobe}
	rep := serveReport{
		Items: nItems, Catalog: catalog, K: kDim, TopK: topK,
		Shards: runtime.GOMAXPROCS(0), RerankFactor: serve.DefaultRerankFactor,
		MaxProcs: runtime.GOMAXPROCS(0), Seed: seed,
		QuantBuildMS: quantBuildMS, IVFBuildMS: ivfBuildMS,
		NList: ix.NList, NProbe: nprobe,
	}

	// Exact top-10 per query is the recall baseline for every approximate
	// contender and every curve point.
	exactTop := make([]map[int32]bool, queries)
	for u := int32(0); u < queries; u++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		want := make(map[int32]bool, topK)
		for _, c := range s.Recommend(f, u, topK, nil) {
			want[c.Item] = true
		}
		exactTop[u] = want
	}
	recall := func(get func(u int32) []model.ScoredItem) float64 {
		var hit int
		for u := int32(0); u < queries; u++ {
			for _, c := range get(u) {
				if exactTop[u][c.Item] {
					hit++
				}
			}
		}
		return float64(hit) / float64(queries*topK)
	}
	rep.RecallAt10 = recall(func(u int32) []model.ScoredItem {
		return s.RecommendQuantized(f, qf, u, topK, nil)
	})
	rep.IVFRecall10 = recall(func(u int32) []model.ScoredItem {
		return s.RecommendIVF(f, ix, u, topK, nil)
	})

	measure := func(scan func(u int32)) (float64, error) {
		best := 0.0
		for r := 0; r < runs; r++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			start := time.Now()
			for u := int32(0); u < queries; u++ {
				scan(u)
			}
			if sec := time.Since(start).Seconds(); r == 0 || sec < best {
				best = sec
			}
		}
		return best, nil
	}
	// Warm every path once so no contender pays first-touch costs.
	s.Recommend(f, 0, topK, nil)
	s.RecommendQuantized(f, qf, 0, topK, nil)
	s.RecommendIVF(f, ix, 0, topK, nil)

	exactSec, err := measure(func(u int32) { s.Recommend(f, u, topK, nil) })
	if err != nil {
		return err
	}
	quantSec, err := measure(func(u int32) { s.RecommendQuantized(f, qf, u, topK, nil) })
	if err != nil {
		return err
	}
	ivfSec, err := measure(func(u int32) { s.RecommendIVF(f, ix, u, topK, nil) })
	if err != nil {
		return err
	}

	mk := func(sec float64, bytes int64) serveResult {
		ns := sec / queries * 1e9
		return serveResult{
			NsPerOp: ns, QPS: float64(queries) / sec, BytesScannedOp: bytes,
			EffectiveGBPerS: float64(bytes) / (sec / queries) / 1e9,
		}
	}
	exactBytes := int64(nItems) * kDim * 4
	// The quantized path scans the int8 view plus the float32 rows of the
	// reranked candidates: every shard's heap fills (items/shard far
	// exceeds rerank·k here), so the rerank depth is shards·rerank·topK.
	quantBytes := qf.Bytes() + int64(rep.Shards*serve.DefaultRerankFactor*topK)*kDim*4
	rep.Exact = mk(exactSec, exactBytes)
	rep.Quantized = mk(quantSec, quantBytes)
	rep.IVF = mk(ivfSec, ivfBytes(s, f, ix, topK, queries))
	if quantSec > 0 {
		rep.Speedup = exactSec / quantSec
	}
	if ivfSec > 0 {
		rep.IVFSpeedup = quantSec / ivfSec
	}

	// The recall-vs-QPS tradeoff curve: the knob is nprobe, swept from one
	// probed list to a quarter of them around the default.
	for _, p := range curveProbes(ix.NList, nprobe) {
		ps := &serve.Scorer{NProbe: p}
		ps.RecommendIVF(f, ix, 0, topK, nil) // warm
		r := recall(func(u int32) []model.ScoredItem {
			return ps.RecommendIVF(f, ix, u, topK, nil)
		})
		sec, err := measure(func(u int32) { ps.RecommendIVF(f, ix, u, topK, nil) })
		if err != nil {
			return err
		}
		rep.Curve = append(rep.Curve, curvePoint{
			NProbe: p, RecallAt10: r,
			QPS: float64(queries) / sec, NsPerOp: sec / queries * 1e9,
		})
	}
	rep.Meta = runMeta()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("serve n=%d (catalog %d×) k=%d top%d: exact %.0f qps (%.2f GB/s) vs quantized %.0f qps (%.2f GB/s) vs ivf %.0f qps (%.2f GB/s)\n",
		nItems, catalog, kDim, topK, rep.Exact.QPS, rep.Exact.EffectiveGBPerS,
		rep.Quantized.QPS, rep.Quantized.EffectiveGBPerS, rep.IVF.QPS, rep.IVF.EffectiveGBPerS)
	fmt.Printf("quantized: %.2fx over exact, recall@10 %.4f; ivf: %.2fx over quantized (nlist=%d nprobe=%d), recall@10 %.4f; builds quant %.1f ms, ivf %.1f ms\n",
		rep.Speedup, rep.RecallAt10, rep.IVFSpeedup, rep.NList, rep.NProbe, rep.IVFRecall10, quantBuildMS, ivfBuildMS)
	for _, p := range rep.Curve {
		fmt.Printf("  nprobe %4d: recall@10 %.4f at %.0f qps\n", p.NProbe, p.RecallAt10, p.QPS)
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}

// ivfBytes estimates the memory one IVF query touches from the measured
// probe work: the full centroid codebook, the probed lists' int8 codes with
// their ids and scales, and the float32 rows of the reranked survivors.
func ivfBytes(s *serve.Scorer, f *model.Factors, ix *model.IVFIndex, topK, queries int) int64 {
	var cands int64
	sample := queries
	if sample > 32 {
		sample = 32
	}
	for u := int32(0); u < int32(sample); u++ {
		_, _, c := s.RecommendIVFCounted(f, ix, u, topK, nil)
		cands += int64(c)
	}
	meanCands := cands / int64(sample)
	reranked := int64(topK * serve.DefaultRerankFactor)
	if meanCands < reranked {
		reranked = meanCands
	}
	return ix.CentroidBytes() + meanCands*int64(ix.K+8) + reranked*int64(ix.K)*4
}

// curveProbes picks the swept nprobe values: powers of two up to nlist/4,
// with the configured default always included.
func curveProbes(nlist, def int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(p int) {
		if p < 1 {
			p = 1
		}
		if p > nlist {
			p = nlist
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for p := 1; p <= nlist/4; p *= 2 {
		add(p)
	}
	add(def)
	sort.Ints(out)
	return out
}

// heteroResult is one engine's showing in the striped-vs-hetero comparison.
type heteroResult struct {
	Seconds      float64 `json:"seconds"`
	Epochs       int     `json:"epochs"`
	Updates      int64   `json:"updates"`
	MUpdPerS     float64 `json:"mupd_per_s"`
	FinalRMSE    float64 `json:"final_rmse"`
	TimeToTarget float64 `json:"time_to_target_s"` // earliest wall-clock reach of TargetRMSE
}

type heteroReport struct {
	Dataset        string `json:"dataset"`
	Rows           int    `json:"rows"`
	Cols           int    `json:"cols"`
	NNZ            int    `json:"nnz"`
	K              int    `json:"k"`
	Iters          int    `json:"iters"`
	Threads        int    `json:"threads"` // total worker budget, both engines
	BatchedWorkers int    `json:"batched_workers"`
	MaxProcs       int    `json:"maxprocs"`
	Seed           int64  `json:"seed"`

	// TargetRMSE is the worse of the two contenders' final RMSEs — the
	// level both demonstrably reach, so time-to-target compares equal
	// model quality rather than raw epoch throughput.
	TargetRMSE float64 `json:"target_rmse"`

	Striped heteroResult `json:"striped"`
	Hetero  heteroResult `json:"hetero"`

	SplitAlpha float64              `json:"split_alpha"` // hetero's final nonuniform split
	Classes    []progress.ClassStat `json:"classes,omitempty"`

	Speedup float64 `json:"speedup"` // striped time-to-target / hetero time-to-target

	Meta obs.RunMeta `json:"meta"`
}

// runHetero benchmarks the striped engine against the heterogeneous
// executor engine at the same worker-goroutine budget and reports, besides
// raw epoch throughput, each contender's wall-clock time to the common
// reachable RMSE — the equal-quality comparison the paper's Figure 10 runs.
func runHetero(ctx context.Context, name string, scale float64, k, iters, threads, batched int, seed int64, runs int, out string, verbose bool) error {
	if runs < 1 {
		runs = 1
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	spec = spec.Scale(scale)
	train, test, err := dataset.Generate(spec, seed)
	if err != nil {
		return err
	}
	params := sgd.Params{K: k, LambdaP: spec.LambdaP, LambdaQ: spec.LambdaQ, Gamma: spec.Gamma, Iters: iters}
	rep := heteroReport{
		Dataset: spec.Name, Rows: spec.Rows, Cols: spec.Cols, NNZ: train.NNZ(),
		K: k, Iters: iters, Threads: threads, BatchedWorkers: batched,
		MaxProcs: runtime.GOMAXPROCS(0), Seed: seed,
	}

	var prog progress.Func
	if verbose {
		prog = func(e progress.Event) {
			if e.Kind == progress.KindEpoch {
				fmt.Fprintf(os.Stderr, "  %s epoch %d/%d  rmse %.4f  %.1f Mupd/s\n",
					e.Algorithm, e.Epoch, e.TotalEpochs, e.RMSE, e.UpdatesPerSec/1e6)
			}
		}
	}

	// Warm-up, then alternate trials keeping every report: the headline
	// metric is time-to-target, so selection happens on that metric once
	// the common target is fixed across all trials — picking "fastest
	// total seconds" first would let an unrelated trial decide the number.
	warm := params
	warm.Iters = 1
	if _, _, err := engine.Train(ctx, train, engine.Options{Threads: threads, Params: warm, Seed: seed}); err != nil {
		return err
	}
	var stripedTrials, heteroTrials []*engine.Report
	for i := 0; i < runs; i++ {
		sRep, _, err := engine.Train(ctx, train, engine.Options{
			Threads: threads, Params: params, Seed: seed, Test: test, Progress: prog,
		})
		if err != nil {
			return err
		}
		stripedTrials = append(stripedTrials, sRep)
		hRep, _, err := engine.TrainHetero(ctx, train, engine.HeteroOptions{
			Options: engine.Options{
				Threads: threads, Params: params, Seed: seed, Test: test, Progress: prog,
			},
			BatchedWorkers: batched,
		})
		if err != nil {
			return err
		}
		heteroTrials = append(heteroTrials, hRep)
	}

	// Equal-RMSE comparison: the target is the worst final RMSE over every
	// trial of both engines — a level each trial demonstrably reached —
	// and each contender reports the trial with the earliest crossing.
	for _, r := range append(append([]*engine.Report{}, stripedTrials...), heteroTrials...) {
		if r.FinalRMSE > rep.TargetRMSE {
			rep.TargetRMSE = r.FinalRMSE
		}
	}
	bestStriped := fastestToTarget(stripedTrials, rep.TargetRMSE)
	bestHetero := fastestToTarget(heteroTrials, rep.TargetRMSE)
	mk := func(r *engine.Report) heteroResult {
		return heteroResult{
			Seconds: r.Seconds, Epochs: r.Epochs, Updates: r.TotalUpdates,
			MUpdPerS: float64(r.TotalUpdates) / r.Seconds / 1e6, FinalRMSE: r.FinalRMSE,
			TimeToTarget: timeToRMSE(r.History, rep.TargetRMSE),
		}
	}
	rep.Striped = mk(bestStriped)
	rep.Hetero = mk(bestHetero)
	rep.SplitAlpha = bestHetero.SplitAlpha
	rep.Classes = bestHetero.Classes
	if rep.Hetero.TimeToTarget > 0 {
		rep.Speedup = rep.Striped.TimeToTarget / rep.Hetero.TimeToTarget
	}
	rep.Meta = runMeta()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: striped %.3fs to rmse %.4f vs hetero %.3fs (α %.2f, %d cpu + %d batched) — speedup %.2fx at equal RMSE\n",
		spec.Name, rep.Striped.TimeToTarget, rep.TargetRMSE, rep.Hetero.TimeToTarget,
		rep.SplitAlpha, threads-batched, batched, rep.Speedup)
	fmt.Printf("report written to %s\n", out)
	return nil
}

// fastestToTarget returns the trial with the earliest target crossing.
func fastestToTarget(trials []*engine.Report, target float64) *engine.Report {
	best := trials[0]
	for _, r := range trials[1:] {
		if timeToRMSE(r.History, target) < timeToRMSE(best.History, target) {
			best = r
		}
	}
	return best
}

// timeToRMSE returns the earliest wall-clock time the trajectory reached
// the target (0 when it never did — the caller's target is chosen so both
// histories cross it).
func timeToRMSE(hist []engine.EvalPoint, target float64) float64 {
	for _, p := range hist {
		if p.RMSE <= target {
			return p.Time
		}
	}
	return 0
}

func run(ctx context.Context, name string, scale float64, k, iters, threads int, seed int64, runs int, out string, verbose bool) error {
	if runs < 1 {
		runs = 1
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	spec = spec.Scale(scale)
	train, test, err := dataset.Generate(spec, seed)
	if err != nil {
		return err
	}
	params := sgd.Params{K: k, LambdaP: spec.LambdaP, LambdaQ: spec.LambdaQ, Gamma: spec.Gamma, Iters: iters}

	rep := report{
		Dataset: spec.Name, Rows: spec.Rows, Cols: spec.Cols, NNZ: train.NNZ(),
		K: k, Iters: iters, Threads: threads, MaxProcs: runtime.GOMAXPROCS(0), Seed: seed,
	}

	var prog progress.Func
	if verbose {
		prog = func(e progress.Event) {
			if e.Kind == progress.KindEpoch {
				fmt.Fprintf(os.Stderr, "  %s epoch %d/%d  rmse %.4f  %.1f Mupd/s\n",
					e.Algorithm, e.Epoch, e.TotalEpochs, e.RMSE, e.UpdatesPerSec/1e6)
			}
		}
	}

	// Warm-up pass so neither contender pays first-touch costs, then
	// alternate trials and keep each contender's fastest — wall-clock on a
	// shared box is noisy and the minimum is the stable estimator.
	warm := params
	warm.Iters = 1
	if _, _, err := engine.Train(ctx, train, engine.Options{Threads: threads, Params: warm, Seed: seed}); err != nil {
		return err
	}
	for i := 0; i < runs; i++ {
		eRep, _, err := engine.Train(ctx, train, engine.Options{Threads: threads, Params: params, Seed: seed, Test: test, Progress: prog})
		if err != nil {
			return err
		}
		if i == 0 || eRep.Seconds < rep.Engine.Seconds {
			rep.Engine = result{
				Seconds: eRep.Seconds, Epochs: eRep.Epochs, Updates: eRep.TotalUpdates,
				MUpdPerS: float64(eRep.TotalUpdates) / eRep.Seconds / 1e6, FinalRMSE: eRep.FinalRMSE,
			}
		}
		lRep, _, err := core.TrainRealLegacy(train, core.RealOptions{Threads: threads, Params: params, Seed: seed, Test: test})
		if err != nil {
			return err
		}
		if i == 0 || lRep.Seconds < rep.Legacy.Seconds {
			rep.Legacy = result{
				Seconds: lRep.Seconds, Epochs: lRep.Epochs, Updates: lRep.TotalUpdates,
				MUpdPerS: float64(lRep.TotalUpdates) / lRep.Seconds / 1e6, FinalRMSE: lRep.FinalRMSE,
			}
		}
	}
	if rep.Engine.Seconds > 0 {
		rep.Speedup = rep.Legacy.Seconds / rep.Engine.Seconds
	}
	rep.Meta = runMeta()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: engine %.3fs (%.1f Mupd/s, RMSE %.4f) vs legacy %.3fs (%.1f Mupd/s, RMSE %.4f) — speedup %.2fx\n",
		spec.Name, rep.Engine.Seconds, rep.Engine.MUpdPerS, rep.Engine.FinalRMSE,
		rep.Legacy.Seconds, rep.Legacy.MUpdPerS, rep.Legacy.FinalRMSE, rep.Speedup)
	fmt.Printf("report written to %s\n", out)
	return nil
}

// Command hsgd-bench runs the engine-vs-legacy training benchmark on a
// synthetic dataset and writes a machine-readable JSON report — the smoke
// benchmark CI runs to track the training-path perf trajectory
// (BENCH_train.json).
//
// "engine" is the lock-striped trainer (internal/engine) behind
// hsgd.TrainParallel; "legacy" is the pre-engine global-mutex FPSGD loop
// (core.TrainRealLegacy) kept as the regression baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"hsgd/internal/core"
	"hsgd/internal/dataset"
	"hsgd/internal/engine"
	"hsgd/internal/progress"
	"hsgd/internal/sgd"
)

type result struct {
	Seconds   float64 `json:"seconds"`
	Epochs    int     `json:"epochs"`
	Updates   int64   `json:"updates"`
	MUpdPerS  float64 `json:"mupd_per_s"`
	FinalRMSE float64 `json:"final_rmse"`
}

type report struct {
	Dataset  string `json:"dataset"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	NNZ      int    `json:"nnz"`
	K        int    `json:"k"`
	Iters    int    `json:"iters"`
	Threads  int    `json:"threads"`
	MaxProcs int    `json:"maxprocs"`
	Seed     int64  `json:"seed"`

	Engine  result  `json:"engine"`
	Legacy  result  `json:"legacy"`
	Speedup float64 `json:"speedup"` // legacy seconds / engine seconds
}

func main() {
	var (
		name    = flag.String("dataset", "netflix", "movielens|netflix|r1|yahoo")
		scale   = flag.Float64("scale", 0.1, "size multiplier on the dataset spec")
		k       = flag.Int("k", 32, "latent factors")
		iters   = flag.Int("iters", 10, "training epochs")
		threads = flag.Int("threads", 8, "worker goroutines")
		seed    = flag.Int64("seed", 42, "random seed")
		runs    = flag.Int("runs", 3, "trials per contender; the fastest is reported")
		out     = flag.String("out", "BENCH_train.json", "JSON report path")
		verbose = flag.Bool("v", false, "stream per-epoch engine progress to stderr")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the in-flight trial; a partially benchmarked
	// report is useless, so the bench exits with the context error rather
	// than writing misleading numbers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *name, *scale, *k, *iters, *threads, *seed, *runs, *out, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, name string, scale float64, k, iters, threads int, seed int64, runs int, out string, verbose bool) error {
	if runs < 1 {
		runs = 1
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	spec = spec.Scale(scale)
	train, test, err := dataset.Generate(spec, seed)
	if err != nil {
		return err
	}
	params := sgd.Params{K: k, LambdaP: spec.LambdaP, LambdaQ: spec.LambdaQ, Gamma: spec.Gamma, Iters: iters}

	rep := report{
		Dataset: spec.Name, Rows: spec.Rows, Cols: spec.Cols, NNZ: train.NNZ(),
		K: k, Iters: iters, Threads: threads, MaxProcs: runtime.GOMAXPROCS(0), Seed: seed,
	}

	var prog progress.Func
	if verbose {
		prog = func(e progress.Event) {
			if e.Kind == progress.KindEpoch {
				fmt.Fprintf(os.Stderr, "  %s epoch %d/%d  rmse %.4f  %.1f Mupd/s\n",
					e.Algorithm, e.Epoch, e.TotalEpochs, e.RMSE, e.UpdatesPerSec/1e6)
			}
		}
	}

	// Warm-up pass so neither contender pays first-touch costs, then
	// alternate trials and keep each contender's fastest — wall-clock on a
	// shared box is noisy and the minimum is the stable estimator.
	warm := params
	warm.Iters = 1
	if _, _, err := engine.Train(ctx, train, engine.Options{Threads: threads, Params: warm, Seed: seed}); err != nil {
		return err
	}
	for i := 0; i < runs; i++ {
		eRep, _, err := engine.Train(ctx, train, engine.Options{Threads: threads, Params: params, Seed: seed, Test: test, Progress: prog})
		if err != nil {
			return err
		}
		if i == 0 || eRep.Seconds < rep.Engine.Seconds {
			rep.Engine = result{
				Seconds: eRep.Seconds, Epochs: eRep.Epochs, Updates: eRep.TotalUpdates,
				MUpdPerS: float64(eRep.TotalUpdates) / eRep.Seconds / 1e6, FinalRMSE: eRep.FinalRMSE,
			}
		}
		lRep, _, err := core.TrainRealLegacy(train, core.RealOptions{Threads: threads, Params: params, Seed: seed, Test: test})
		if err != nil {
			return err
		}
		if i == 0 || lRep.Seconds < rep.Legacy.Seconds {
			rep.Legacy = result{
				Seconds: lRep.Seconds, Epochs: lRep.Epochs, Updates: lRep.TotalUpdates,
				MUpdPerS: float64(lRep.TotalUpdates) / lRep.Seconds / 1e6, FinalRMSE: lRep.FinalRMSE,
			}
		}
	}
	if rep.Engine.Seconds > 0 {
		rep.Speedup = rep.Legacy.Seconds / rep.Engine.Seconds
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: engine %.3fs (%.1f Mupd/s, RMSE %.4f) vs legacy %.3fs (%.1f Mupd/s, RMSE %.4f) — speedup %.2fx\n",
		spec.Name, rep.Engine.Seconds, rep.Engine.MUpdPerS, rep.Engine.FinalRMSE,
		rep.Legacy.Seconds, rep.Legacy.MUpdPerS, rep.Legacy.FinalRMSE, rep.Speedup)
	fmt.Printf("report written to %s\n", out)
	return nil
}

// Command hsgd-serve exposes a trained factor snapshot as an HTTP JSON
// recommendation service — the online half of the pipeline whose offline
// half is cmd/hsgd-train.
//
// Quickstart:
//
//	hsgd-datagen -out ratings.txt
//	hsgd-train -k 64 -out model.hfac ratings.txt
//	hsgd-serve -model model.hfac -addr :8080
//
//	curl 'localhost:8080/v1/recommend?user=42&k=10'
//	curl 'localhost:8080/v1/similar-items?item=7&k=5'
//	curl -d '{"k":5,"ratings":[{"item":3,"value":5},{"item":9,"value":4}]}' \
//	     localhost:8080/v1/recommend        # cold-start fold-in
//
// The model file is watched (-watch): retrain in the background, write the
// new snapshot to a temp file and rename it over -model, and the server
// hot-swaps it in without dropping queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsgd/internal/obs"
	olog "hsgd/internal/obs/log"
	"hsgd/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPth  = flag.String("model", "", "HFAC snapshot file written by hsgd-train -out (required)")
		watch     = flag.Duration("watch", 2*time.Second, "poll interval for snapshot hot-swap; 0 disables watching")
		shards    = flag.Int("shards", 0, "top-K scorer shards; 0 means GOMAXPROCS")
		cacheSz   = flag.Int("cache", 1024, "result-cache entries; negative disables")
		lambda    = flag.Float64("foldin-lambda", serve.DefaultFoldInLambda, "ridge strength for cold-start fold-in")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		drainWait = flag.Duration("drain-grace", time.Second, "pause between flipping /readyz to 503 and starting the drain, so load balancers stop routing here first")
		inflight  = flag.Int("max-in-flight", 0, "concurrent /v1 requests before shedding with 429; 0 picks the default, negative disables")
		reqTmout  = flag.Duration("request-timeout", 0, "per-request handling deadline on /v1 (503 past it); 0 picks the default, negative disables")
		quantize  = flag.Bool("quantize", true, "serve /v1/recommend from the int8-quantized scan with exact float32 rerank (shorthand for -retrieval quant/exact)")
		retrieval = flag.String("retrieval", "", "retrieval mode: exact, quant, or ivf (inverted-file probe-and-rerank); empty defers to -quantize")
		nlist     = flag.Int("nlist", 0, "IVF coarse-cell count; 0 means 4·√items")
		nprobe    = flag.Int("nprobe", 0, "IVF posting lists probed per query; 0 means nlist/16")
		ivfSeed   = flag.Int64("ivf-seed", 1, "k-means seed for the IVF build")
		rerank    = flag.Int("rerank", 0, "candidate multiplier for quant/ivf scans (rerank·k survive to the exact rerank); 0 means the default")
		debug     = flag.String("debug-addr", "", "auxiliary listen address serving /metricz, /logz and /debug/pprof/ (e.g. localhost:6060); empty disables")
		slowReq   = flag.Duration("slow-request", 0, "log one structured line (with request and trace ids) for /v1 requests slower than this; 0 disables")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()
	if *modelPth == "" {
		fmt.Fprintln(os.Stderr, "usage: hsgd-serve -model <file.hfac> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	mode := serve.RetrievalQuant
	if !*quantize {
		mode = serve.RetrievalExact
	}
	if *retrieval != "" {
		var err error
		if mode, err = serve.ParseRetrievalMode(*retrieval); err != nil {
			fmt.Fprintf(os.Stderr, "hsgd-serve: %v\n", err)
			os.Exit(2)
		}
	}
	cfg := serveConfig{
		addr: *addr, modelPath: *modelPth, watch: *watch, shards: *shards,
		cacheSize: *cacheSz, lambda: float32(*lambda), drain: *drain,
		drainGrace: *drainWait, maxInFlight: *inflight, requestTimeout: *reqTmout,
		mode: mode, nlist: *nlist, nprobe: *nprobe, ivfSeed: *ivfSeed,
		rerank: *rerank, debugAddr: *debug,
		slowRequest: *slowReq, logLevel: *logLevel,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-serve: %v\n", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	addr, modelPath   string
	watch, drain      time.Duration
	drainGrace        time.Duration
	maxInFlight       int
	requestTimeout    time.Duration
	shards, cacheSize int
	lambda            float32
	mode              serve.RetrievalMode
	nlist, nprobe     int
	ivfSeed           int64
	rerank            int
	debugAddr         string
	slowRequest       time.Duration
	logLevel          string
}

func run(cfg serveConfig) error {
	// One process-wide logger: human-readable key=value lines on stderr, and
	// the same records into a lock-free ring served at /logz on the debug
	// listener so "what just happened" is one curl away.
	ring := olog.NewRing(1024)
	logger := olog.New(os.Stderr, olog.ParseLevel(cfg.logLevel), ring)

	store := serve.NewStore()
	store.SetRetrieval(cfg.mode)
	store.SetIVF(cfg.nlist, cfg.ivfSeed)
	snap, err := store.LoadFile(cfg.modelPath)
	if err != nil {
		return fmt.Errorf("loading initial snapshot: %w", err)
	}
	f := snap.Factors
	logger.Info("snapshot loaded",
		"version", fmt.Sprint(snap.Version), "path", cfg.modelPath,
		"users", fmt.Sprint(f.M), "items", fmt.Sprint(f.N), "k", fmt.Sprint(f.K))
	switch {
	case snap.IVF != nil:
		ix := snap.IVF
		src := fmt.Sprintf("built in %v", snap.IVFBuild)
		if snap.IVFBuild == 0 {
			src = "loaded from the snapshot's HIVF section"
		}
		logger.Info("IVF retrieval active",
			"index", src, "nlist", fmt.Sprint(ix.NList), "items", fmt.Sprint(ix.N),
			"mb", fmt.Sprintf("%.1f", float64(ix.Bytes())/1e6),
			"nprobe", fmt.Sprint(serve.EffectiveNProbe(cfg.nprobe, ix.NList)),
			"rerank", fmt.Sprint(serve.EffectiveRerankFactor(cfg.rerank)))
	case snap.Quantized != nil:
		logger.Info("quantized retrieval active",
			"build", snap.QuantBuild.String(),
			"mb", fmt.Sprintf("%.1f", float64(snap.Quantized.Bytes())/1e6),
			"float32_mb", fmt.Sprintf("%.1f", float64(f.N*f.K*4)/1e6),
			"rerank", fmt.Sprint(serve.EffectiveRerankFactor(cfg.rerank)))
	default:
		logger.Info("quantization off: serving the exact float32 scan")
	}

	server, err := serve.New(serve.Config{
		Store:          store,
		Shards:         cfg.shards,
		CacheSize:      cfg.cacheSize,
		FoldInLambda:   cfg.lambda,
		RerankFactor:   cfg.rerank,
		NProbe:         cfg.nprobe,
		MaxInFlight:    cfg.maxInFlight,
		RequestTimeout: cfg.requestTimeout,
		Logger:         logger,
		SlowRequest:    cfg.slowRequest,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.watch > 0 {
		go store.Watch(ctx, cfg.modelPath, cfg.watch)
		logger.Info("watching snapshot for hot-swap", "path", cfg.modelPath, "every", cfg.watch.String())
	}

	if cfg.debugAddr != "" {
		mux := obs.DebugMux(server.Metrics())
		mux.Handle("/logz", olog.Handler(ring))
		debugServer := &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listener up (metricz + logz + pprof)", "addr", cfg.debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		// Drain the debug listener too: an in-flight scrape or pprof profile
		// gets a short window to complete instead of a snapped connection.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := debugServer.Shutdown(sctx); err != nil {
				debugServer.Close()
			}
		}()
	}

	httpServer := &http.Server{
		Addr:              cfg.addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", cfg.addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Shutdown sequence: flip /readyz to 503 so load balancers stop routing
	// new traffic here, give them a probe interval to notice, then drain
	// whatever is still in flight.
	server.BeginDrain()
	if cfg.drainGrace > 0 {
		logger.Info("signal received; /readyz now 503, pausing before drain", "grace", cfg.drainGrace.String())
		time.Sleep(cfg.drainGrace)
	}
	logger.Info("draining", "timeout", cfg.drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained cleanly")
	return nil
}

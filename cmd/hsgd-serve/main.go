// Command hsgd-serve exposes a trained factor snapshot as an HTTP JSON
// recommendation service — the online half of the pipeline whose offline
// half is cmd/hsgd-train.
//
// Quickstart:
//
//	hsgd-datagen -out ratings.txt
//	hsgd-train -k 64 -out model.hfac ratings.txt
//	hsgd-serve -model model.hfac -addr :8080
//
//	curl 'localhost:8080/v1/recommend?user=42&k=10'
//	curl 'localhost:8080/v1/similar-items?item=7&k=5'
//	curl -d '{"k":5,"ratings":[{"item":3,"value":5},{"item":9,"value":4}]}' \
//	     localhost:8080/v1/recommend        # cold-start fold-in
//
// The model file is watched (-watch): retrain in the background, write the
// new snapshot to a temp file and rename it over -model, and the server
// hot-swaps it in without dropping queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsgd/internal/obs"
	"hsgd/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPth  = flag.String("model", "", "HFAC snapshot file written by hsgd-train -out (required)")
		watch     = flag.Duration("watch", 2*time.Second, "poll interval for snapshot hot-swap; 0 disables watching")
		shards    = flag.Int("shards", 0, "top-K scorer shards; 0 means GOMAXPROCS")
		cacheSz   = flag.Int("cache", 1024, "result-cache entries; negative disables")
		lambda    = flag.Float64("foldin-lambda", serve.DefaultFoldInLambda, "ridge strength for cold-start fold-in")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		drainWait = flag.Duration("drain-grace", time.Second, "pause between flipping /readyz to 503 and starting the drain, so load balancers stop routing here first")
		inflight  = flag.Int("max-in-flight", 0, "concurrent /v1 requests before shedding with 429; 0 picks the default, negative disables")
		reqTmout  = flag.Duration("request-timeout", 0, "per-request handling deadline on /v1 (503 past it); 0 picks the default, negative disables")
		quantize  = flag.Bool("quantize", true, "serve /v1/recommend from the int8-quantized scan with exact float32 rerank (shorthand for -retrieval quant/exact)")
		retrieval = flag.String("retrieval", "", "retrieval mode: exact, quant, or ivf (inverted-file probe-and-rerank); empty defers to -quantize")
		nlist     = flag.Int("nlist", 0, "IVF coarse-cell count; 0 means 4·√items")
		nprobe    = flag.Int("nprobe", 0, "IVF posting lists probed per query; 0 means nlist/16")
		ivfSeed   = flag.Int64("ivf-seed", 1, "k-means seed for the IVF build")
		rerank    = flag.Int("rerank", 0, "candidate multiplier for quant/ivf scans (rerank·k survive to the exact rerank); 0 means the default")
		debug     = flag.String("debug-addr", "", "auxiliary listen address serving /metricz and /debug/pprof/ (e.g. localhost:6060); empty disables")
	)
	flag.Parse()
	if *modelPth == "" {
		fmt.Fprintln(os.Stderr, "usage: hsgd-serve -model <file.hfac> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	mode := serve.RetrievalQuant
	if !*quantize {
		mode = serve.RetrievalExact
	}
	if *retrieval != "" {
		var err error
		if mode, err = serve.ParseRetrievalMode(*retrieval); err != nil {
			fmt.Fprintf(os.Stderr, "hsgd-serve: %v\n", err)
			os.Exit(2)
		}
	}
	cfg := serveConfig{
		addr: *addr, modelPath: *modelPth, watch: *watch, shards: *shards,
		cacheSize: *cacheSz, lambda: float32(*lambda), drain: *drain,
		drainGrace: *drainWait, maxInFlight: *inflight, requestTimeout: *reqTmout,
		mode: mode, nlist: *nlist, nprobe: *nprobe, ivfSeed: *ivfSeed,
		rerank: *rerank, debugAddr: *debug,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-serve: %v\n", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	addr, modelPath   string
	watch, drain      time.Duration
	drainGrace        time.Duration
	maxInFlight       int
	requestTimeout    time.Duration
	shards, cacheSize int
	lambda            float32
	mode              serve.RetrievalMode
	nlist, nprobe     int
	ivfSeed           int64
	rerank            int
	debugAddr         string
}

func run(cfg serveConfig) error {
	store := serve.NewStore()
	store.SetRetrieval(cfg.mode)
	store.SetIVF(cfg.nlist, cfg.ivfSeed)
	snap, err := store.LoadFile(cfg.modelPath)
	if err != nil {
		return fmt.Errorf("loading initial snapshot: %w", err)
	}
	f := snap.Factors
	log.Printf("loaded snapshot v%d from %s: %d users × %d items, k=%d",
		snap.Version, cfg.modelPath, f.M, f.N, f.K)
	switch {
	case snap.IVF != nil:
		ix := snap.IVF
		src := fmt.Sprintf("built in %v", snap.IVFBuild)
		if snap.IVFBuild == 0 {
			src = "loaded from the snapshot's HIVF section"
		}
		log.Printf("IVF index %s: %d lists over %d items (%.1f MB), probing %d lists/query, rerank factor %d",
			src, ix.NList, ix.N, float64(ix.Bytes())/1e6,
			serve.EffectiveNProbe(cfg.nprobe, ix.NList), serve.EffectiveRerankFactor(cfg.rerank))
	case snap.Quantized != nil:
		log.Printf("quantized int8 view built in %v (%.1f MB vs %.1f MB float32); rerank factor %d",
			snap.QuantBuild, float64(snap.Quantized.Bytes())/1e6, float64(f.N*f.K*4)/1e6,
			serve.EffectiveRerankFactor(cfg.rerank))
	default:
		log.Printf("quantization off: serving the exact float32 scan")
	}

	server, err := serve.New(serve.Config{
		Store:          store,
		Shards:         cfg.shards,
		CacheSize:      cfg.cacheSize,
		FoldInLambda:   cfg.lambda,
		RerankFactor:   cfg.rerank,
		NProbe:         cfg.nprobe,
		MaxInFlight:    cfg.maxInFlight,
		RequestTimeout: cfg.requestTimeout,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.watch > 0 {
		go store.Watch(ctx, cfg.modelPath, cfg.watch)
		log.Printf("watching %s every %v for hot-swap", cfg.modelPath, cfg.watch)
	}

	if cfg.debugAddr != "" {
		debugServer := &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           obs.DebugMux(server.Metrics()),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("debug listener (metricz + pprof) on %s", cfg.debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		// Drain the debug listener too: an in-flight scrape or pprof profile
		// gets a short window to complete instead of a snapped connection.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := debugServer.Shutdown(sctx); err != nil {
				debugServer.Close()
			}
		}()
	}

	httpServer := &http.Server{
		Addr:              cfg.addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", cfg.addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Shutdown sequence: flip /readyz to 503 so load balancers stop routing
	// new traffic here, give them a probe interval to notice, then drain
	// whatever is still in flight.
	server.BeginDrain()
	if cfg.drainGrace > 0 {
		log.Printf("signal received; /readyz now 503, pausing %v before drain", cfg.drainGrace)
		time.Sleep(cfg.drainGrace)
	}
	log.Printf("draining for up to %v", cfg.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("drained cleanly")
	return nil
}

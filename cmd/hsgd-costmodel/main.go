// Command hsgd-costmodel runs the offline phase of Algorithm 2: it profiles
// the simulated devices (Algorithm 3), fits the Section V cost models and
// the Qilin baseline, prints the fitted coefficients and the workload split
// α for a given dataset size, and optionally stores the profile as JSON for
// reuse via Options.Profile.
package main

import (
	"flag"
	"fmt"
	"os"

	"hsgd"
	"hsgd/internal/cost"
)

func main() {
	var (
		nnz     = flag.Int("nnz", 1_000_000, "dataset size (ratings) to profile against")
		threads = flag.Int("threads", 16, "CPU threads for the alpha computation")
		gpus    = flag.Int("gpus", 1, "GPUs for the alpha computation")
		workers = flag.Int("workers", 128, "GPU parallel workers")
		scale   = flag.Float64("devscale", 0.01, "device constant scale")
		out     = flag.String("out", "", "write the profile JSON to this path")
		seed    = flag.Int64("seed", 42, "measurement noise seed")
	)
	flag.Parse()
	if err := run(*nnz, *threads, *gpus, *workers, *scale, *out, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-costmodel: %v\n", err)
		os.Exit(1)
	}
}

func run(nnz, threads, gpus, workers int, scale float64, out string, seed int64) error {
	gcfg := hsgd.DefaultGPU().WithWorkers(workers).Scaled(scale)
	ccfg := hsgd.DefaultCPU().Scaled(scale)
	p, err := hsgd.ProfileMachine(nnz, gcfg, ccfg, seed)
	if err != nil {
		return err
	}
	fmt.Printf("CPU model:      time(n) = %.3e·n + %.3e   (rmse %.2e)\n", p.CPU.A, p.CPU.B, p.CPU.RMSE)
	printPiecewise("GPU kernel", p.GPU.Kernel)
	printPiecewise("H2D", p.GPU.H2D)
	printPiecewise("D2H", p.GPU.D2H)
	fmt.Printf("Qilin GPU:      time(n) = %.3e·n + %.3e   (rmse %.2e)\n", p.QilinGPU.A, p.QilinGPU.B, p.QilinGPU.RMSE)

	alphaM := cost.SolveAlpha(p.GPU.Time, p.CPU.Time, float64(nnz), threads, gpus)
	alphaQ := cost.SolveAlpha(p.QilinGPU.Time, p.CPU.Time, float64(nnz), threads, gpus)
	fmt.Printf("alpha (our model, Eq. 8):  %.4f  -> GPU %.1f%% / CPU %.1f%%\n", alphaM, 100*alphaM, 100*(1-alphaM))
	fmt.Printf("alpha (Qilin baseline):    %.4f  -> GPU %.1f%% / CPU %.1f%%\n", alphaQ, 100*alphaQ, 100*(1-alphaQ))

	if out != "" {
		if err := p.SaveFile(out); err != nil {
			return err
		}
		fmt.Printf("profile written to %s\n", out)
	}
	return nil
}

func printPiecewise(name string, m cost.PiecewiseModel) {
	fmt.Printf("%-15s tau=%.3g; below: speed = %.3e·%s + %.3e; above: time = %.3e·x + %.3e\n",
		name+":", m.Tau, m.A1, transformName(m.Kind), m.B1, m.A2, m.B2)
}

func transformName(k cost.Kind) string {
	if k == cost.KindTransfer {
		return "sqrt(log x)"
	}
	return "log x"
}

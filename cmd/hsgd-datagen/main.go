// Command hsgd-datagen materialises the synthetic benchmark datasets
// (Table I shapes) as rating files in the text or binary interchange
// format, and expands trained snapshots to catalog-scale for serving
// benchmarks.
//
// Usage:
//
//	hsgd-datagen -dataset yahoo -scale 0.1 -out train.bin -test test.bin
//
//	# replicate-and-perturb a trained snapshot's item catalog 10×:
//	hsgd-datagen -expand model.hfac -catalog 10 -expand-out big.hfac
package main

import (
	"flag"
	"fmt"
	"os"

	"hsgd"
	"hsgd/internal/dataset"
	"hsgd/internal/model"
)

func main() {
	var (
		name  = flag.String("dataset", "movielens", "movielens|netflix|r1|yahoo")
		scale = flag.Float64("scale", 1.0, "size multiplier on the default spec")
		out   = flag.String("out", "train.txt", "training ratings output path")
		test  = flag.String("test", "", "optional test ratings output path")
		seed  = flag.Int64("seed", 42, "random seed")

		expand    = flag.String("expand", "", "HFAC snapshot whose item catalog to expand instead of generating ratings")
		expandOut = flag.String("expand-out", "", "output path for the expanded snapshot (required with -expand)")
		catalog   = flag.Int("catalog", 1, "catalog multiplier for -expand: item factors replicated with perturbation")
		eps       = flag.Float64("catalog-eps", 0.01, "relative gaussian perturbation applied to each replica entry")
	)
	flag.Parse()
	var err error
	if *expand != "" {
		err = runExpand(*expand, *expandOut, *catalog, *eps, *seed)
	} else {
		err = run(*name, *scale, *out, *test, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, scale float64, out, testPath string, seed int64) error {
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	spec = spec.Scale(scale)
	train, test, err := hsgd.GenerateDataset(spec, seed)
	if err != nil {
		return err
	}
	if err := train.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("%s: %d train ratings (%dx%d) -> %s\n", spec.Name, train.NNZ(), train.Rows, train.Cols, out)
	if testPath != "" {
		if err := test.SaveFile(testPath); err != nil {
			return err
		}
		fmt.Printf("%s: %d test ratings -> %s\n", spec.Name, test.NNZ(), testPath)
	}
	return nil
}

// runExpand synthesizes a catalog-scale snapshot from a trained one:
// replica r of item v lands at id r·N+v with relative perturbation eps, so
// the expanded catalog keeps the trained score distribution while growing
// the retrieval problem mult× — the input the serve benchmark's IVF-vs-scan
// comparison needs.
func runExpand(in, out string, mult int, eps float64, seed int64) error {
	if out == "" {
		return fmt.Errorf("-expand requires -expand-out")
	}
	if mult < 1 {
		return fmt.Errorf("-catalog must be >= 1, got %d", mult)
	}
	f, err := model.LoadFile(in)
	if err != nil {
		return fmt.Errorf("loading %s: %w", in, err)
	}
	g := model.ExpandCatalog(f, mult, eps, seed)
	if err := g.SaveFileAtomic(out); err != nil {
		return err
	}
	fmt.Printf("%s: %d items expanded %d× to %d (eps=%g) -> %s\n", in, f.N, mult, g.N, eps, out)
	return nil
}

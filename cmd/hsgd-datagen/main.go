// Command hsgd-datagen materialises the synthetic benchmark datasets
// (Table I shapes) as rating files in the text or binary interchange
// format.
//
// Usage:
//
//	hsgd-datagen -dataset yahoo -scale 0.1 -out train.bin -test test.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"hsgd"
	"hsgd/internal/dataset"
)

func main() {
	var (
		name  = flag.String("dataset", "movielens", "movielens|netflix|r1|yahoo")
		scale = flag.Float64("scale", 1.0, "size multiplier on the default spec")
		out   = flag.String("out", "train.txt", "training ratings output path")
		test  = flag.String("test", "", "optional test ratings output path")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	if err := run(*name, *scale, *out, *test, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, scale float64, out, testPath string, seed int64) error {
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	spec = spec.Scale(scale)
	train, test, err := hsgd.GenerateDataset(spec, seed)
	if err != nil {
		return err
	}
	if err := train.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("%s: %d train ratings (%dx%d) -> %s\n", spec.Name, train.NNZ(), train.Rows, train.Cols, out)
	if testPath != "" {
		if err := test.SaveFile(testPath); err != nil {
			return err
		}
		fmt.Printf("%s: %d test ratings -> %s\n", spec.Name, test.NNZ(), testPath)
	}
	return nil
}

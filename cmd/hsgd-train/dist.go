package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"hsgd"
	"hsgd/internal/dist"
	"hsgd/internal/obs"
)

// distConfig is the multi-node slice of the CLI configuration.
type distConfig struct {
	role    string // "coordinator" | "worker"
	listen  string // coordinator bind address
	peers   string // worker: the coordinator's address
	workers int    // coordinator: worker processes to wait for
}

// runDistributed runs one node of a multi-process NOMAD cluster. Every node
// loads the same ratings file; the coordinator owns evaluation, checkpoints
// and the final model, workers own row partitions and column visits.
func runDistributed(ctx context.Context, path string, cfg config, dc distConfig) error {
	train, err := hsgd.LoadMatrix(path)
	if err != nil {
		return err
	}

	// Each node exports its own hsgd_dist_* series on its own -debug-addr.
	var metrics *dist.Metrics
	if cfg.debugAddr != "" {
		reg := obs.NewRegistry()
		metrics = dist.NewMetrics(reg, dc.role)
		debugServer := &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           obs.DebugMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("debug listener (metricz + pprof) on %s", cfg.debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		defer debugServer.Close()
	}

	switch dc.role {
	case "worker":
		log.Printf("worker: dialing coordinator at %s", dc.peers)
		if err := dist.Work(ctx, dist.TCP{}, dc.peers, train, dist.WorkerConfig{Metrics: metrics}); err != nil {
			return fmt.Errorf("worker: %w", err)
		}
		log.Printf("worker: done")
		return nil

	case "coordinator":
		var test *hsgd.Matrix
		if cfg.testPath != "" {
			if test, err = hsgd.LoadMatrix(cfg.testPath); err != nil {
				return err
			}
		}
		lp, lq := cfg.lambda, cfg.lambda
		if cfg.lambdaP >= 0 {
			lp = cfg.lambdaP
		}
		if cfg.lambdaQ >= 0 {
			lq = cfg.lambdaQ
		}
		ln, err := dist.TCP{}.Listen(dc.listen)
		if err != nil {
			return err
		}
		log.Printf("coordinator: waiting for %d workers on %s", dc.workers, ln.Addr())
		dcfg := dist.Config{
			K: cfg.k, LambdaP: float32(lp), LambdaQ: float32(lq),
			Gamma:  float32(cfg.gamma),
			Epochs: cfg.iters, Seed: cfg.seed,
			Workers:         dc.workers,
			Test:            test,
			CheckpointPath:  cfg.checkpoint,
			CheckpointEvery: cfg.checkpointEvery,
			Metrics:         metrics,
		}
		if cfg.progress {
			dcfg.Progress = progressLine
		}
		rep, f, err := dist.Coordinate(ctx, ln, train, dcfg)
		if cfg.progress {
			fmt.Fprintln(os.Stderr) // seal the \r progress line
		}
		if err != nil && rep == nil {
			return err
		}
		if rep.Interrupted {
			fmt.Printf("interrupted (%v): keeping partial model after %d/%d epochs\n",
				err, rep.Epochs, cfg.iters)
		}
		fmt.Printf("dist: trained %d epochs in %.3fs wall clock (%d updates, %d/%d workers live)\n",
			rep.Epochs, rep.Seconds, rep.TotalUpdates, rep.LiveWorkers, dc.workers)
		fmt.Printf("dist: %d bytes sent, %d received on the wire", rep.BytesSent, rep.BytesRecv)
		if rep.WorkerFailures > 0 {
			fmt.Printf("; %d worker failures, %d column hops reclaimed", rep.WorkerFailures, rep.ColumnsReclaimed)
		}
		fmt.Println()
		if rep.Checkpoints > 0 {
			fmt.Printf("%d checkpoints written to %s\n", rep.Checkpoints, cfg.checkpoint)
		}
		if test != nil {
			fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
		}
		if cfg.out != "" {
			if err := f.SaveFile(cfg.out); err != nil {
				return err
			}
			fmt.Printf("factors written to %s\n", cfg.out)
		}
		if rep.Interrupted && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil

	default:
		return fmt.Errorf("-role must be coordinator or worker, got %q", dc.role)
	}
}

package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"hsgd"
	"hsgd/internal/chaos"
	"hsgd/internal/dist"
	"hsgd/internal/obs"
)

// distConfig is the multi-node slice of the CLI configuration.
type distConfig struct {
	role    string // "coordinator" | "worker"
	listen  string // coordinator bind address
	peers   string // worker: the coordinator's address
	workers int    // coordinator: worker processes to wait for
	// chaos, when non-nil, wraps this node's transport in the deterministic
	// fault injector (-chaos-* flags) — resilience testing only.
	chaos *chaos.Config
}

// runDistributed runs one node of a multi-process NOMAD cluster. Every node
// loads the same ratings file; the coordinator owns evaluation, checkpoints
// and the final model, workers own row partitions and column visits.
func runDistributed(ctx context.Context, path string, cfg config, dc distConfig) error {
	train, err := hsgd.LoadMatrix(path)
	if err != nil {
		return err
	}

	// Each node exports its own hsgd_dist_* series on its own -debug-addr.
	var metrics *dist.Metrics
	if cfg.debugAddr != "" {
		reg := obs.NewRegistry()
		metrics = dist.NewMetrics(reg, dc.role)
		debugServer := &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           obs.DebugMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("debug listener (metricz + pprof) on %s", cfg.debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		defer shutdownDebug(debugServer)
	}

	var harness *chaos.Harness
	if dc.chaos != nil {
		harness = chaos.New(*dc.chaos)
		log.Printf("%s: chaos transport enabled (seed %d)", dc.role, dc.chaos.Seed)
		defer func() {
			st := harness.Stats()
			log.Printf("%s: chaos injected %d latencies, %d timeouts, %d resets, %d blackholes",
				dc.role, st.Latencies, st.Timeouts, st.Resets, st.Blackholes)
		}()
	}

	switch dc.role {
	case "worker":
		var dialer dist.Dialer = dist.TCP{}
		if harness != nil {
			dialer = harness.Dialer(dialer)
		}
		log.Printf("worker: dialing coordinator at %s", dc.peers)
		if err := dist.Work(ctx, dialer, dc.peers, train, dist.WorkerConfig{Metrics: metrics}); err != nil {
			return fmt.Errorf("worker: %w", err)
		}
		log.Printf("worker: done")
		return nil

	case "coordinator":
		var test *hsgd.Matrix
		if cfg.testPath != "" {
			if test, err = hsgd.LoadMatrix(cfg.testPath); err != nil {
				return err
			}
		}
		lp, lq := cfg.lambda, cfg.lambda
		if cfg.lambdaP >= 0 {
			lp = cfg.lambdaP
		}
		if cfg.lambdaQ >= 0 {
			lq = cfg.lambdaQ
		}
		ln, err := dist.TCP{}.Listen(dc.listen)
		if err != nil {
			return err
		}
		if harness != nil {
			ln = harness.Listener(ln)
		}
		log.Printf("coordinator: waiting for %d workers on %s", dc.workers, ln.Addr())
		dcfg := dist.Config{
			K: cfg.k, LambdaP: float32(lp), LambdaQ: float32(lq),
			Gamma:  float32(cfg.gamma),
			Epochs: cfg.iters, Seed: cfg.seed,
			Workers:         dc.workers,
			Test:            test,
			CheckpointPath:  cfg.checkpoint,
			CheckpointEvery: cfg.checkpointEvery,
			Metrics:         metrics,
		}
		if cfg.progress {
			dcfg.Progress = progressLine
		}
		if cfg.resume != "" {
			// Coordinator crash recovery: the checkpoint carries the merged
			// factors, its sibling manifest the run identity and partition
			// shape. Workers that survived the crash are still re-dialing
			// with the old run id and will be re-admitted into their slots.
			man, err := dist.LoadManifest(dist.ManifestPath(cfg.resume))
			if err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
			if man.K != cfg.k {
				return fmt.Errorf("-resume manifest has k=%d, flags say -k %d", man.K, cfg.k)
			}
			init, err := hsgd.LoadFactors(cfg.resume)
			if err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
			dcfg.RunID = man.RunID
			dcfg.StartEpoch = man.Epoch
			dcfg.ResumeBounds = man.Bounds
			dcfg.Init = init
			if man.Workers != dc.workers {
				log.Printf("coordinator: resuming with %d workers (previous run had %d); partitions will be re-cut", dc.workers, man.Workers)
			}
			log.Printf("coordinator: resuming run %#x from %s at epoch %d/%d", man.RunID, cfg.resume, man.Epoch, cfg.iters)
		}
		rep, f, err := dist.Coordinate(ctx, ln, train, dcfg)
		if cfg.progress {
			fmt.Fprintln(os.Stderr) // seal the \r progress line
		}
		if err != nil && rep == nil {
			return err
		}
		if rep.Interrupted {
			fmt.Printf("interrupted (%v): keeping partial model after %d/%d epochs\n",
				err, rep.Epochs, cfg.iters)
		}
		fmt.Printf("dist: trained %d epochs in %.3fs wall clock (%d updates, %d/%d workers live)\n",
			rep.Epochs, rep.Seconds, rep.TotalUpdates, rep.LiveWorkers, dc.workers)
		fmt.Printf("dist: %d bytes sent, %d received on the wire", rep.BytesSent, rep.BytesRecv)
		if rep.WorkerFailures > 0 {
			fmt.Printf("; %d worker failures, %d column hops reclaimed", rep.WorkerFailures, rep.ColumnsReclaimed)
		}
		if rep.WorkerRejoins > 0 {
			fmt.Printf("; %d worker rejoins", rep.WorkerRejoins)
		}
		fmt.Println()
		if rep.Resumed {
			fmt.Printf("dist: resumed run %#x from epoch %d\n", dcfg.RunID, dcfg.StartEpoch)
		}
		if rep.Checkpoints > 0 {
			fmt.Printf("%d checkpoints written to %s\n", rep.Checkpoints, cfg.checkpoint)
		}
		if test != nil {
			fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
		}
		if cfg.out != "" {
			if err := f.SaveFile(cfg.out); err != nil {
				return err
			}
			fmt.Printf("factors written to %s\n", cfg.out)
		}
		if rep.Interrupted && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil

	default:
		return fmt.Errorf("-role must be coordinator or worker, got %q", dc.role)
	}
}

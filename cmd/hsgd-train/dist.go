package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"hsgd"
	"hsgd/internal/chaos"
	"hsgd/internal/dist"
	"hsgd/internal/obs"
	olog "hsgd/internal/obs/log"
)

// distConfig is the multi-node slice of the CLI configuration.
type distConfig struct {
	role    string // "coordinator" | "worker"
	listen  string // coordinator bind address
	peers   string // worker: the coordinator's address
	workers int    // coordinator: worker processes to wait for
	// traceOut/traceEpoch drive -dist-trace-out: the coordinator records one
	// epoch's merged cluster timeline and writes it here as Chrome trace JSON.
	traceOut   string
	traceEpoch int
	// chaos, when non-nil, wraps this node's transport in the deterministic
	// fault injector (-chaos-* flags) — resilience testing only.
	chaos *chaos.Config
}

// runDistributed runs one node of a multi-process NOMAD cluster. Every node
// loads the same ratings file; the coordinator owns evaluation, checkpoints
// and the final model, workers own row partitions and column visits.
func runDistributed(ctx context.Context, path string, cfg config, dc distConfig) error {
	// Structured logs carry the node role on every line; the same records
	// land in a ring served at /logz on this node's -debug-addr.
	ring := olog.NewRing(1024)
	logger := olog.New(os.Stderr, olog.ParseLevel(cfg.logLevel), ring).With("role", dc.role)

	train, err := hsgd.LoadMatrix(path)
	if err != nil {
		return err
	}

	// The coordinator publishes cluster-wide status snapshots regardless of
	// whether a debug listener mounts them — publishing is an atomic pointer
	// swap, and tests/tools can read the board directly.
	var board *dist.StatusBoard
	if dc.role == "coordinator" {
		board = dist.NewStatusBoard()
	}

	// Each node exports its own hsgd_dist_* series on its own -debug-addr;
	// the coordinator's listener additionally serves the federated /clusterz
	// snapshot aggregated from worker heartbeats.
	var metrics *dist.Metrics
	if cfg.debugAddr != "" {
		reg := obs.NewRegistry()
		metrics = dist.NewMetrics(reg, dc.role)
		mux := obs.DebugMux(reg)
		mux.Handle("/logz", olog.Handler(ring))
		surface := "metricz + logz + pprof"
		if board != nil {
			mux.Handle("/clusterz", board.Handler())
			surface = "metricz + logz + clusterz + pprof"
		}
		debugServer := &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listener up ("+surface+")", "addr", cfg.debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		defer shutdownDebug(debugServer)
	}

	var harness *chaos.Harness
	if dc.chaos != nil {
		harness = chaos.New(*dc.chaos)
		logger.Info("chaos transport enabled", "seed", fmt.Sprint(dc.chaos.Seed))
		defer func() {
			st := harness.Stats()
			logger.Info("chaos summary",
				"latencies", fmt.Sprint(st.Latencies), "timeouts", fmt.Sprint(st.Timeouts),
				"resets", fmt.Sprint(st.Resets), "blackholes", fmt.Sprint(st.Blackholes))
		}()
	}

	switch dc.role {
	case "worker":
		var dialer dist.Dialer = dist.TCP{}
		if harness != nil {
			dialer = harness.Dialer(dialer)
		}
		logger.Info("dialing coordinator", "addr", dc.peers)
		if err := dist.Work(ctx, dialer, dc.peers, train, dist.WorkerConfig{Metrics: metrics, Log: logger}); err != nil {
			return fmt.Errorf("worker: %w", err)
		}
		logger.Info("worker done")
		return nil

	case "coordinator":
		var test *hsgd.Matrix
		if cfg.testPath != "" {
			if test, err = hsgd.LoadMatrix(cfg.testPath); err != nil {
				return err
			}
		}
		lp, lq := cfg.lambda, cfg.lambda
		if cfg.lambdaP >= 0 {
			lp = cfg.lambdaP
		}
		if cfg.lambdaQ >= 0 {
			lq = cfg.lambdaQ
		}
		ln, err := dist.TCP{}.Listen(dc.listen)
		if err != nil {
			return err
		}
		if harness != nil {
			ln = harness.Listener(ln)
		}
		logger.Info("waiting for workers",
			"want", fmt.Sprint(dc.workers), "addr", ln.Addr().String())
		var trc *dist.ClusterTrace
		if dc.traceOut != "" {
			trc = dist.NewClusterTrace(dc.traceEpoch)
		}
		dcfg := dist.Config{
			K: cfg.k, LambdaP: float32(lp), LambdaQ: float32(lq),
			Gamma:  float32(cfg.gamma),
			Epochs: cfg.iters, Seed: cfg.seed,
			Workers:         dc.workers,
			Test:            test,
			CheckpointPath:  cfg.checkpoint,
			CheckpointEvery: cfg.checkpointEvery,
			Metrics:         metrics,
			Trace:           trc,
			Status:          board,
			Log:             logger,
		}
		if cfg.progress {
			dcfg.Progress = progressLine
		}
		if cfg.resume != "" {
			// Coordinator crash recovery: the checkpoint carries the merged
			// factors, its sibling manifest the run identity and partition
			// shape. Workers that survived the crash are still re-dialing
			// with the old run id and will be re-admitted into their slots.
			man, err := dist.LoadManifest(dist.ManifestPath(cfg.resume))
			if err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
			if man.K != cfg.k {
				return fmt.Errorf("-resume manifest has k=%d, flags say -k %d", man.K, cfg.k)
			}
			init, err := hsgd.LoadFactors(cfg.resume)
			if err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
			dcfg.RunID = man.RunID
			dcfg.StartEpoch = man.Epoch
			dcfg.ResumeBounds = man.Bounds
			dcfg.Init = init
			if man.Workers != dc.workers {
				logger.Warn("worker count changed across resume; partitions will be re-cut",
					"now", fmt.Sprint(dc.workers), "was", fmt.Sprint(man.Workers))
			}
			logger.Info("resuming run",
				"run", fmt.Sprintf("%016x", man.RunID), "from", cfg.resume,
				"epoch", fmt.Sprintf("%d/%d", man.Epoch, cfg.iters))
		}
		rep, f, err := dist.Coordinate(ctx, ln, train, dcfg)
		if cfg.progress {
			fmt.Fprintln(os.Stderr) // seal the \r progress line
		}
		if err != nil && rep == nil {
			return err
		}
		if rep.Interrupted {
			fmt.Printf("interrupted (%v): keeping partial model after %d/%d epochs\n",
				err, rep.Epochs, cfg.iters)
		}
		fmt.Printf("dist: trained %d epochs in %.3fs wall clock (%d updates, %d/%d workers live)\n",
			rep.Epochs, rep.Seconds, rep.TotalUpdates, rep.LiveWorkers, dc.workers)
		fmt.Printf("dist: %d bytes sent, %d received on the wire", rep.BytesSent, rep.BytesRecv)
		if rep.WorkerFailures > 0 {
			fmt.Printf("; %d worker failures, %d column hops reclaimed", rep.WorkerFailures, rep.ColumnsReclaimed)
		}
		if rep.WorkerRejoins > 0 {
			fmt.Printf("; %d worker rejoins", rep.WorkerRejoins)
		}
		fmt.Println()
		if rep.Resumed {
			fmt.Printf("dist: resumed run %#x from epoch %d\n", dcfg.RunID, dcfg.StartEpoch)
		}
		if rep.Checkpoints > 0 {
			fmt.Printf("%d checkpoints written to %s\n", rep.Checkpoints, cfg.checkpoint)
		}
		if trc != nil {
			// Written even after an interruption: a partial cluster timeline
			// of the traced epoch is still loadable.
			if werr := trc.WriteFile(dc.traceOut); werr != nil {
				return fmt.Errorf("writing -dist-trace-out: %w", werr)
			}
			fmt.Printf("epoch %d cluster trace (%d spans across %d tracks) written to %s\n",
				trc.Epoch(), trc.Len(), len(trc.Tracks()), dc.traceOut)
		}
		if test != nil {
			fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
		}
		if cfg.out != "" {
			if err := f.SaveFile(cfg.out); err != nil {
				return err
			}
			fmt.Printf("factors written to %s\n", cfg.out)
		}
		if rep.Interrupted && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil

	default:
		return fmt.Errorf("-role must be coordinator or worker, got %q", dc.role)
	}
}

// Command hsgd-train trains a matrix-factorization model on a rating file.
//
// Two modes:
//
//	-mode=real (default)  wall-clock training on the lock-striped engine
//	                      (or hogwild/als/cd via -trainer)
//	-mode=sim             one of the paper's pipelines on the simulated
//	                      heterogeneous system; virtual-clock timings.
//
// Real mode supports learning-rate schedules (-schedule), separate P/Q
// regularisation (-lambdaP/-lambdaQ), periodic atomic checkpoints that a
// running hsgd-serve hot-swaps (-checkpoint, -checkpoint-every), and
// resuming an interrupted run from such a checkpoint (-resume,
// -resume-epoch).
//
// The input is the text interchange format of internal/sparse ("rows cols
// nnz" header, then "row col value" lines; ".bin" files use the binary
// format). The trained factors are written with -out.
package main

import (
	"flag"
	"fmt"
	"os"

	"hsgd"
)

func main() {
	var (
		mode    = flag.String("mode", "real", "real (wall-clock training) or sim (heterogeneous simulation)")
		trainer = flag.String("trainer", "fpsgd", "real algorithm: fpsgd|hogwild|als|cd")
		alg     = flag.String("alg", "hsgd*", "sim algorithm: cpu-only|gpu-only|hsgd|hsgd*|hsgd*-m|hsgd*-q")
		k       = flag.Int("k", 128, "latent factors")
		lambda  = flag.Float64("lambda", 0.05, "regularisation (applied to both P and Q)")
		lambdaP = flag.Float64("lambdaP", -1, "P-side regularisation λP (default: -lambda)")
		lambdaQ = flag.Float64("lambdaQ", -1, "Q-side regularisation λQ (default: -lambda)")
		gamma   = flag.Float64("gamma", 0.005, "learning rate")
		schedln = flag.String("schedule", "fixed", "learning-rate schedule: fixed|inverse|chin|bold")
		iters   = flag.Int("iters", 20, "training iterations (epochs)")
		threads = flag.Int("threads", 16, "CPU threads")
		gpus    = flag.Int("gpus", 1, "simulated GPUs (sim mode)")
		workers = flag.Int("workers", 128, "GPU parallel workers (sim mode)")
		scale   = flag.Float64("devscale", 0.01, "device constant scale (sim mode)")
		testPth = flag.String("test", "", "optional test-set file for RMSE evaluation")
		out     = flag.String("out", "", "write trained factors to this file")
		ckpt    = flag.String("checkpoint", "", "write atomic mid-train snapshots to this file (real mode, fpsgd)")
		ckptN   = flag.Int("checkpoint-every", 1, "epochs between checkpoints")
		resume  = flag.String("resume", "", "resume training from this checkpoint file (real mode, fpsgd)")
		resumeE = flag.Int("resume-epoch", 0, "epochs the -resume checkpoint had already completed")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hsgd-train [flags] <ratings-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := config{
		mode: *mode, trainer: *trainer, alg: *alg,
		k: *k, lambda: *lambda, lambdaP: *lambdaP, lambdaQ: *lambdaQ,
		gamma: *gamma, schedule: *schedln, iters: *iters,
		threads: *threads, gpus: *gpus, workers: *workers, scale: *scale,
		testPath: *testPth, out: *out,
		checkpoint: *ckpt, checkpointEvery: *ckptN,
		resume: *resume, resumeEpoch: *resumeE,
		seed: *seed,
	}
	if err := run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-train: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	mode, trainer, alg              string
	k                               int
	lambda, lambdaP, lambdaQ, gamma float64
	schedule                        string
	iters, threads, gpus, workers   int
	scale                           float64
	testPath, out                   string
	checkpoint                      string
	checkpointEvery                 int
	resume                          string
	resumeEpoch                     int
	seed                            int64
}

func run(path string, cfg config) error {
	train, err := hsgd.LoadMatrix(path)
	if err != nil {
		return err
	}
	var test *hsgd.Matrix
	if cfg.testPath != "" {
		if test, err = hsgd.LoadMatrix(cfg.testPath); err != nil {
			return err
		}
	}
	// The single -lambda remains the shared default; -lambdaP/-lambdaQ
	// override each side independently.
	lp, lq := cfg.lambda, cfg.lambda
	if cfg.lambdaP >= 0 {
		lp = cfg.lambdaP
	}
	if cfg.lambdaQ >= 0 {
		lq = cfg.lambdaQ
	}
	params := hsgd.Params{
		K: cfg.k, LambdaP: float32(lp), LambdaQ: float32(lq),
		Gamma: float32(cfg.gamma), Iters: cfg.iters,
	}
	var factors *hsgd.Factors
	switch cfg.mode {
	case "real":
		factors, err = runReal(train, test, params, cfg)
	case "sim":
		factors, err = runSim(train, test, params, cfg)
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
	if err != nil {
		return err
	}
	if cfg.out != "" {
		if err := factors.SaveFile(cfg.out); err != nil {
			return err
		}
		fmt.Printf("factors written to %s\n", cfg.out)
	}
	return nil
}

func runReal(train, test *hsgd.Matrix, params hsgd.Params, cfg config) (*hsgd.Factors, error) {
	tr, err := hsgd.NewTrainer(cfg.trainer)
	if err != nil {
		return nil, err
	}
	schedule, err := hsgd.NewSchedule(cfg.schedule, cfg.gamma)
	if err != nil {
		return nil, err
	}
	opt := hsgd.TrainOptions{
		Threads:         cfg.threads,
		Params:          params,
		Schedule:        schedule,
		Seed:            cfg.seed,
		Test:            test,
		CheckpointPath:  cfg.checkpoint,
		CheckpointEvery: cfg.checkpointEvery,
	}
	if cfg.resume != "" {
		loaded, err := hsgd.LoadFactors(cfg.resume)
		if err != nil {
			return nil, fmt.Errorf("loading -resume checkpoint: %w", err)
		}
		opt.Resume = loaded
		opt.StartEpoch = cfg.resumeEpoch
		fmt.Printf("resuming from %s at epoch %d\n", cfg.resume, cfg.resumeEpoch)
	}
	rep, f, err := tr.Train(train, opt)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%s: trained %d epochs in %.3fs wall clock", rep.Algorithm, rep.Epochs, rep.Seconds)
	if rep.TotalUpdates > 0 {
		fmt.Printf(" (%d updates)", rep.TotalUpdates)
	}
	fmt.Println()
	if rep.Checkpoints > 0 {
		fmt.Printf("%d checkpoints written to %s\n", rep.Checkpoints, cfg.checkpoint)
	}
	if test != nil {
		fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
	}
	return f, nil
}

func runSim(train, test *hsgd.Matrix, params hsgd.Params, cfg config) (*hsgd.Factors, error) {
	rep, f, err := hsgd.Train(train, test, hsgd.Options{
		Algorithm:  hsgd.Algorithm(cfg.alg),
		CPUThreads: cfg.threads,
		GPUs:       cfg.gpus,
		Params:     params,
		GPU:        hsgd.DefaultGPU().WithWorkers(cfg.workers).Scaled(cfg.scale),
		CPU:        hsgd.DefaultCPU().Scaled(cfg.scale),
		Seed:       cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("%s: %d epochs in %.4fs virtual time\n", cfg.alg, rep.Epochs, rep.VirtualSeconds)
	if rep.Alpha > 0 {
		fmt.Printf("cost-model split: alpha=%.3f (GPU %.1f%%, CPU %.1f%%)\n",
			rep.Alpha, 100*rep.GPUShare, 100*rep.CPUShare)
	}
	if test != nil {
		fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
	}
	return f, nil
}

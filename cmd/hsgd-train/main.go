// Command hsgd-train trains a matrix-factorization model on a rating file.
//
// One unified surface: -trainer selects the algorithm (fpsgd — the
// wall-clock lock-striped engine and the default — hogwild, nomad, als, cd,
// or sim, the paper's heterogeneous pipelines on the simulated CPU+GPU
// machine with virtual-clock timings). The legacy -mode=real|sim spelling is
// still accepted and maps onto the same trainers.
//
// -distributed runs one node of a multi-process NOMAD cluster instead of an
// in-process trainer: start one coordinator (-role coordinator -listen
// host:port -dist-workers N) and N workers (-role worker -peers host:port),
// each given the same ratings file. The coordinator partitions users across
// workers, circulates item columns over TCP, survives worker failures by
// reclaiming their in-flight columns, merges per-worker checkpoints into
// -checkpoint snapshots a running hsgd-serve hot-swaps, and writes the final
// merged factors to -out. Per-node transport metrics (hsgd_dist_*) appear on
// each node's -debug-addr /metricz.
//
// The cluster also survives a coordinator crash: every -checkpoint write
// leaves a sibling run manifest (<checkpoint>.manifest), and restarting the
// coordinator with -resume <checkpoint> reloads the merged factors plus the
// manifest, re-opens admission under the same run id, and continues from the
// last completed epoch while the surviving workers re-dial and rejoin.
//
// Training is an interruptible session: SIGINT/SIGTERM (and -timeout)
// cancel the training context, and the run winds down gracefully — a final
// atomic checkpoint (when -checkpoint is set), a partial report, and the
// best-so-far factors written to -out. A live progress line (epoch, RMSE,
// updates/sec, checkpoints) is printed to stderr; disable with
// -progress=false.
//
// The fpsgd and hetero trainers support learning-rate schedules
// (-schedule), separate P/Q regularisation (-lambdaP/-lambdaQ), periodic
// atomic checkpoints that a running hsgd-serve hot-swaps (-checkpoint,
// -checkpoint-every), and resuming an interrupted run from such a
// checkpoint (-resume, -resume-epoch).
//
// -trainer hetero runs the paper's HSGD* on real hardware: CPU executors
// plus -batched-workers throughput-optimized batched executors over the
// nonuniform two-region layout, with the split solved online from measured
// per-class cost models (or pinned with -alpha). -superblock overrides the
// layout's column-band count, -static-only disables the dynamic stealing
// phase, and the live progress line gains per-class throughput.
//
// Observability: -trace-out dumps one epoch's block-schedule timeline
// (every executor's tasks, the batched pipeline's overlapped packs,
// barrier waits, evals, checkpoint writes) as Chrome trace-event JSON —
// open it in chrome://tracing or ui.perfetto.dev; -trace-epoch picks the
// epoch. -debug-addr starts an auxiliary listener with the live
// hsgd_train_* metrics on /metricz and the pprof handlers on
// /debug/pprof/.
//
// The input is the text interchange format of internal/sparse ("rows cols
// nnz" header, then "row col value" lines; ".bin" files use the binary
// format). The trained factors are written with -out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hsgd"
	"hsgd/internal/chaos"
	"hsgd/internal/obs"
	olog "hsgd/internal/obs/log"
	"hsgd/internal/progress"
)

func main() {
	var (
		mode    = flag.String("mode", "", "legacy alias: real (wall-clock) or sim (heterogeneous simulation)")
		trainer = flag.String("trainer", "fpsgd", "algorithm: "+strings.Join(hsgd.TrainerNames(), "|"))
		alg     = flag.String("alg", "hsgd*", "sim pipeline: cpu-only|gpu-only|hsgd|hsgd*|hsgd*-m|hsgd*-q")
		k       = flag.Int("k", 128, "latent factors")
		lambda  = flag.Float64("lambda", 0.05, "regularisation (applied to both P and Q)")
		lambdaP = flag.Float64("lambdaP", -1, "P-side regularisation λP (default: -lambda)")
		lambdaQ = flag.Float64("lambdaQ", -1, "Q-side regularisation λQ (default: -lambda)")
		gamma   = flag.Float64("gamma", 0.005, "learning rate")
		schedln = flag.String("schedule", "fixed", "learning-rate schedule: fixed|inverse|chin|bold")
		iters   = flag.Int("iters", 20, "training iterations (epochs)")
		threads = flag.Int("threads", 16, "CPU threads")
		batched = flag.Int("batched-workers", 1, "throughput-optimized batched executors (hetero trainer); CPU executors fill the rest of -threads")
		superbk = flag.Int("superblock", 0, "column bands of the nonuniform layout (hetero trainer); 0 = the paper's nc+2·ng+1")
		staticO = flag.Bool("static-only", false, "disable the dynamic stealing phase (hetero trainer)")
		alpha   = flag.Float64("alpha", 0, "fixed batched-class share of the rating mass (hetero trainer); <=0 = solve online from measured throughput")
		gpus    = flag.Int("gpus", 1, "simulated GPUs (sim trainer)")
		workers = flag.Int("workers", 128, "GPU parallel workers (sim trainer)")
		scale   = flag.Float64("devscale", 0.01, "device constant scale (sim trainer)")
		testPth = flag.String("test", "", "optional test-set file for RMSE evaluation")
		out     = flag.String("out", "", "write trained factors to this file")
		ckpt    = flag.String("checkpoint", "", "write atomic mid-train snapshots to this file (fpsgd)")
		ckptN   = flag.Int("checkpoint-every", 1, "epochs between checkpoints")
		resume  = flag.String("resume", "", "resume training from this checkpoint file (fpsgd, or a crashed distributed coordinator via the checkpoint's .manifest sibling)")
		resumeE = flag.Int("resume-epoch", 0, "epochs the -resume checkpoint had already completed")
		timeout = flag.Duration("timeout", 0, "cancel training after this duration (0 disables); the run still ends with a final checkpoint and partial report")
		progres = flag.Bool("progress", true, "print a live per-epoch progress line to stderr")
		seed    = flag.Int64("seed", 42, "random seed")
		trcOut  = flag.String("trace-out", "", "write one epoch's block-schedule timeline as Chrome trace-event JSON to this file (fpsgd/hetero; open in chrome://tracing or ui.perfetto.dev)")
		trcEp   = flag.Int("trace-epoch", 1, "which epoch -trace-out records, 1-based relative to the run's start")
		debug   = flag.String("debug-addr", "", "auxiliary listen address serving /metricz, /logz and /debug/pprof/ during training (e.g. localhost:6060); empty disables")
		logLvl  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")

		distTrcOut = flag.String("dist-trace-out", "", "coordinator only: write one epoch's merged cluster timeline (every worker's column hops plus the coordinator's barrier/eval/checkpoint track) as Chrome trace-event JSON to this file")
		distTrcEp  = flag.Int("dist-trace-epoch", 1, "which epoch -dist-trace-out records, 1-based relative to the run's start")

		distributed = flag.Bool("distributed", false, "run one node of a multi-process NOMAD cluster (see -role)")
		role        = flag.String("role", "coordinator", "distributed role: coordinator (binds -listen, waits for -dist-workers) or worker (dials -peers)")
		listen      = flag.String("listen", "localhost:7070", "coordinator bind address (distributed)")
		peers       = flag.String("peers", "localhost:7070", "coordinator address a worker dials (distributed)")
		distWorkers = flag.Int("dist-workers", 2, "worker processes the coordinator waits for (distributed)")

		// Transport fault injection for resilience testing; all no-ops unless
		// -chaos-seed is nonzero. Deliberately undocumented in the README's
		// flag tables — these exist for soak tests and failure drills.
		chaosSeed  = flag.Int64("chaos-seed", 0, "deterministic transport fault-injection seed (distributed, testing); 0 disables")
		chaosLat   = flag.Duration("chaos-latency", 0, "max injected per-op transport latency (testing)")
		chaosLatP  = flag.Float64("chaos-latency-prob", 0, "probability of injected latency per transport op (testing)")
		chaosTo    = flag.Float64("chaos-timeout-prob", 0, "probability a transport op fails with a timeout (testing)")
		chaosReset = flag.Float64("chaos-reset-prob", 0, "probability a connection resets mid-op (testing)")
		chaosBh    = flag.Float64("chaos-blackhole-prob", 0, "probability a connection starts silently dropping everything (testing)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hsgd-train [flags] <ratings-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := config{
		trainer: *trainer, alg: *alg,
		k: *k, lambda: *lambda, lambdaP: *lambdaP, lambdaQ: *lambdaQ,
		gamma: *gamma, schedule: *schedln, iters: *iters,
		threads: *threads, gpus: *gpus, workers: *workers, scale: *scale,
		batchedWorkers: *batched, superblock: *superbk, staticOnly: *staticO, alpha: *alpha,
		testPath: *testPth, out: *out,
		checkpoint: *ckpt, checkpointEvery: *ckptN,
		resume: *resume, resumeEpoch: *resumeE,
		timeout: *timeout, progress: *progres,
		seed:       *seed,
		traceOut:   *trcOut,
		traceEpoch: *trcEp,
		debugAddr:  *debug,
		logLevel:   *logLvl,
	}
	// The legacy -mode spelling maps onto the unified trainer set.
	switch *mode {
	case "", "real":
	case "sim":
		cfg.trainer = "sim"
	default:
		fmt.Fprintf(os.Stderr, "hsgd-train: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the training context for a graceful wind-down
	// (final checkpoint + partial report) instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	if *distributed {
		dc := distConfig{
			role: *role, listen: *listen, peers: *peers, workers: *distWorkers,
			traceOut: *distTrcOut, traceEpoch: *distTrcEp,
		}
		if *chaosSeed != 0 {
			dc.chaos = &chaos.Config{
				Seed:       *chaosSeed,
				PLatency:   *chaosLatP,
				LatencyMax: *chaosLat,
				PTimeout:   *chaosTo,
				PReset:     *chaosReset,
				PBlackhole: *chaosBh,
			}
		}
		if err := runDistributed(ctx, flag.Arg(0), cfg, dc); err != nil {
			fmt.Fprintf(os.Stderr, "hsgd-train: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(ctx, flag.Arg(0), cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-train: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	trainer, alg                    string
	k                               int
	lambda, lambdaP, lambdaQ, gamma float64
	schedule                        string
	iters, threads, gpus, workers   int
	scale                           float64
	batchedWorkers, superblock      int
	staticOnly                      bool
	alpha                           float64
	testPath, out                   string
	checkpoint                      string
	checkpointEvery                 int
	resume                          string
	resumeEpoch                     int
	timeout                         time.Duration
	progress                        bool
	seed                            int64
	traceOut                        string
	traceEpoch                      int
	debugAddr                       string
	logLevel                        string
}

func run(ctx context.Context, path string, cfg config) error {
	train, err := hsgd.LoadMatrix(path)
	if err != nil {
		return err
	}
	var test *hsgd.Matrix
	if cfg.testPath != "" {
		if test, err = hsgd.LoadMatrix(cfg.testPath); err != nil {
			return err
		}
	}
	// The single -lambda remains the shared default; -lambdaP/-lambdaQ
	// override each side independently.
	lp, lq := cfg.lambda, cfg.lambda
	if cfg.lambdaP >= 0 {
		lp = cfg.lambdaP
	}
	if cfg.lambdaQ >= 0 {
		lq = cfg.lambdaQ
	}
	params := hsgd.Params{
		K: cfg.k, LambdaP: float32(lp), LambdaQ: float32(lq),
		Gamma: float32(cfg.gamma), Iters: cfg.iters,
	}

	tr, err := hsgd.NewTrainer(cfg.trainer)
	if err != nil {
		return err
	}
	schedule, err := hsgd.NewSchedule(cfg.schedule, cfg.gamma)
	if err != nil {
		return err
	}
	opt := hsgd.TrainOptions{
		Threads:         cfg.threads,
		Params:          params,
		Schedule:        schedule,
		Seed:            cfg.seed,
		Test:            test,
		CheckpointPath:  cfg.checkpoint,
		CheckpointEvery: cfg.checkpointEvery,
	}
	if cfg.progress {
		opt.Progress = progressLine
	}
	var traceRec *hsgd.Trace
	if cfg.traceOut != "" {
		traceRec = hsgd.NewTrace()
		opt.Trace = traceRec
		opt.TraceEpoch = cfg.traceEpoch
	}
	if cfg.debugAddr != "" {
		// The debug listener exposes the run's live hsgd_train_* gauges, the
		// process log ring, and pprof while training; it dies with the process.
		ring := olog.NewRing(1024)
		logger := olog.New(os.Stderr, olog.ParseLevel(cfg.logLevel), ring)
		reg := obs.NewRegistry()
		sink := progress.MetricsSink(reg)
		prev := opt.Progress
		opt.Progress = func(e hsgd.ProgressEvent) {
			if prev != nil {
				prev(e)
			}
			sink(e)
		}
		mux := obs.DebugMux(reg)
		mux.Handle("/logz", olog.Handler(ring))
		debugServer := &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listener up (metricz + logz + pprof)", "addr", cfg.debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		defer shutdownDebug(debugServer)
	}
	if cfg.trainer == "sim" {
		opt.Sim = &hsgd.SimConfig{
			Algorithm:   hsgd.Algorithm(cfg.alg),
			GPUs:        cfg.gpus,
			GPU:         hsgd.DefaultGPU().WithWorkers(cfg.workers),
			CPU:         hsgd.DefaultCPU(),
			DeviceScale: cfg.scale,
		}
	}
	if cfg.trainer == "hetero" {
		opt.Hetero = &hsgd.HeteroConfig{
			BatchedWorkers: cfg.batchedWorkers,
			Superblock:     cfg.superblock,
			StaticOnly:     cfg.staticOnly,
			Alpha:          cfg.alpha,
		}
	}
	if cfg.resume != "" {
		loaded, err := hsgd.LoadFactors(cfg.resume)
		if err != nil {
			return fmt.Errorf("loading -resume checkpoint: %w", err)
		}
		opt.Resume = loaded
		opt.StartEpoch = cfg.resumeEpoch
		fmt.Printf("resuming from %s at epoch %d\n", cfg.resume, cfg.resumeEpoch)
	}

	rep, f, err := tr.Train(ctx, train, opt)
	if cfg.progress {
		fmt.Fprintln(os.Stderr) // seal the \r progress line
	}
	if err != nil && rep == nil {
		return err // hard failure: no partial results to salvage
	}
	if rep.Interrupted {
		fmt.Printf("interrupted (%v): keeping partial model after %d/%d epochs\n",
			err, rep.Epochs, cfg.iters)
	}
	clock := "wall clock"
	secsFmt := "%.3f"
	if cfg.trainer == "sim" {
		clock = "virtual time"
		secsFmt = "%.4g" // virtual seconds can be far below a millisecond
	}
	fmt.Printf("%s: trained %d epochs in "+secsFmt+"s %s", rep.Algorithm, rep.Epochs, rep.Seconds, clock)
	if rep.TotalUpdates > 0 {
		fmt.Printf(" (%d updates)", rep.TotalUpdates)
	}
	fmt.Println()
	if rep.Checkpoints > 0 {
		fmt.Printf("%d checkpoints written to %s\n", rep.Checkpoints, cfg.checkpoint)
	}
	if traceRec != nil {
		// Written even after an interruption: a partial timeline of the
		// traced epoch is still loadable.
		if werr := traceRec.WriteFile(cfg.traceOut); werr != nil {
			return fmt.Errorf("writing -trace-out: %w", werr)
		}
		fmt.Printf("epoch %d trace (%d spans) written to %s\n", cfg.traceEpoch, traceRec.Len(), cfg.traceOut)
	}
	if test != nil {
		fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
	}
	if cfg.out != "" {
		if err := f.SaveFile(cfg.out); err != nil {
			return err
		}
		fmt.Printf("factors written to %s\n", cfg.out)
	}
	if rep.Interrupted && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		// An unusual cancellation cause (context.WithCancelCause) should
		// still surface, but after the partial results were saved.
		return err
	}
	return nil
}

// shutdownDebug drains the auxiliary debug listener instead of snapping its
// connections: an in-progress /metricz scrape or pprof profile gets a short
// window to finish before the process exits.
func shutdownDebug(s *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		s.Close()
	}
}

// progressLine renders the live training status on one stderr line,
// rewritten in place per epoch. Heterogeneous runs append the per-class
// throughput, steal counts, and the current split.
func progressLine(e hsgd.ProgressEvent) {
	if e.Kind != hsgd.ProgressEpoch {
		return
	}
	line := fmt.Sprintf("epoch %d/%d  %6.1fs", e.Epoch, e.TotalEpochs, e.Elapsed.Seconds())
	if e.RMSE > 0 {
		line += fmt.Sprintf("  rmse %.4f", e.RMSE)
	}
	if e.UpdatesPerSec > 0 {
		line += fmt.Sprintf("  %.1f Mupd/s", e.UpdatesPerSec/1e6)
	}
	if len(e.Classes) > 0 {
		line += fmt.Sprintf("  [α %.2f", e.SplitAlpha)
		for _, c := range e.Classes {
			line += fmt.Sprintf("  %s×%d %.1f Mupd/s", c.Class, c.Workers, c.UpdatesPerSec/1e6)
			if c.Steals > 0 {
				line += fmt.Sprintf(" (%d steals)", c.Steals)
			}
		}
		line += "]"
	}
	if e.Checkpoints > 0 {
		line += fmt.Sprintf("  ckpt %d", e.Checkpoints)
	}
	fmt.Fprintf(os.Stderr, "\r\x1b[K%s", line)
}

// Command hsgd-train trains a matrix-factorization model on a rating file.
//
// Two modes:
//
//	-mode=real (default)  FPSGD on real goroutines; wall-clock timings.
//	-mode=sim             one of the paper's pipelines on the simulated
//	                      heterogeneous system; virtual-clock timings.
//
// The input is the text interchange format of internal/sparse ("rows cols
// nnz" header, then "row col value" lines; ".bin" files use the binary
// format). The trained factors are written with -out.
package main

import (
	"flag"
	"fmt"
	"os"

	"hsgd"
)

func main() {
	var (
		mode    = flag.String("mode", "real", "real (goroutine FPSGD) or sim (heterogeneous simulation)")
		alg     = flag.String("alg", "hsgd*", "sim algorithm: cpu-only|gpu-only|hsgd|hsgd*|hsgd*-m|hsgd*-q")
		k       = flag.Int("k", 128, "latent factors")
		lambda  = flag.Float64("lambda", 0.05, "regularisation (applied to both P and Q)")
		gamma   = flag.Float64("gamma", 0.005, "learning rate")
		iters   = flag.Int("iters", 20, "training iterations (epochs)")
		threads = flag.Int("threads", 16, "CPU threads")
		gpus    = flag.Int("gpus", 1, "simulated GPUs (sim mode)")
		workers = flag.Int("workers", 128, "GPU parallel workers (sim mode)")
		scale   = flag.Float64("devscale", 0.01, "device constant scale (sim mode)")
		testPth = flag.String("test", "", "optional test-set file for RMSE evaluation")
		out     = flag.String("out", "", "write trained factors to this file")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hsgd-train [flags] <ratings-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *mode, *alg, *k, *lambda, *gamma, *iters,
		*threads, *gpus, *workers, *scale, *testPth, *out, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-train: %v\n", err)
		os.Exit(1)
	}
}

func run(path, mode, alg string, k int, lambda, gamma float64, iters,
	threads, gpus, workers int, scale float64, testPath, out string, seed int64) error {
	train, err := hsgd.LoadMatrix(path)
	if err != nil {
		return err
	}
	var test *hsgd.Matrix
	if testPath != "" {
		if test, err = hsgd.LoadMatrix(testPath); err != nil {
			return err
		}
	}
	params := hsgd.Params{
		K: k, LambdaP: float32(lambda), LambdaQ: float32(lambda),
		Gamma: float32(gamma), Iters: iters,
	}
	var factors *hsgd.Factors
	switch mode {
	case "real":
		rep, f, err := hsgd.TrainParallel(train, hsgd.ParallelOptions{
			Threads: threads, Params: params, Seed: seed, Test: test,
		})
		if err != nil {
			return err
		}
		factors = f
		fmt.Printf("trained %d epochs in %.3fs wall clock (%d updates)\n",
			rep.Epochs, rep.Seconds, rep.TotalUpdates)
		if test != nil {
			fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
		}
	case "sim":
		rep, f, err := hsgd.Train(train, test, hsgd.Options{
			Algorithm:  hsgd.Algorithm(alg),
			CPUThreads: threads,
			GPUs:       gpus,
			Params:     params,
			GPU:        hsgd.DefaultGPU().WithWorkers(workers).Scaled(scale),
			CPU:        hsgd.DefaultCPU().Scaled(scale),
			Seed:       seed,
		})
		if err != nil {
			return err
		}
		factors = f
		fmt.Printf("%s: %d epochs in %.4fs virtual time\n", alg, rep.Epochs, rep.VirtualSeconds)
		if rep.Alpha > 0 {
			fmt.Printf("cost-model split: alpha=%.3f (GPU %.1f%%, CPU %.1f%%)\n",
				rep.Alpha, 100*rep.GPUShare, 100*rep.CPUShare)
		}
		if test != nil {
			fmt.Printf("test RMSE: %.4f\n", rep.FinalRMSE)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	if out != "" {
		if err := factors.SaveFile(out); err != nil {
			return err
		}
		fmt.Printf("factors written to %s\n", out)
	}
	return nil
}

// Command hsgd-experiments regenerates the paper's tables and figures on
// the simulated heterogeneous system.
//
// Usage:
//
//	hsgd-experiments [flags] all|fig3|fig6|fig7|fig10|fig11|fig12|fig13|table1|table2|table3
//
// Output is aligned text: one x/y column block per figure, one table per
// table. The -scale flag shrinks the datasets for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"hsgd/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	flag.Float64Var(&cfg.Scale, "scale", 0.1, "dataset scale relative to DESIGN.md sizes")
	flag.IntVar(&cfg.K, "k", 0, "latent factors (0 = per-dataset default of 128)")
	flag.IntVar(&cfg.Iters, "iters", 20, "epoch budget per run")
	flag.IntVar(&cfg.CPUThreads, "threads", 16, "CPU worker threads")
	flag.IntVar(&cfg.GPUs, "gpus", 1, "simulated GPUs")
	flag.IntVar(&cfg.GPUWorkers, "workers", 128, "GPU parallel workers")
	flag.Int64Var(&cfg.Seed, "seed", 42, "random seed")
	flag.Float64Var(&cfg.PerfVariation, "perfvar", 0, "run-time device speed deviation from the offline profile (0 = default)")
	flag.Parse()

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	if err := run(cfg, what); err != nil {
		fmt.Fprintf(os.Stderr, "hsgd-experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, what string) error {
	all := what == "all"
	out := os.Stdout
	if all || what == "fig3" {
		g, c := experiments.Fig3(cfg.GPUWorkers)
		experiments.FprintSeries(out, "Figure 3: update speed vs block size", "block (Kpts)", g, c)
		fmt.Fprintln(out)
	}
	if all || what == "fig6" {
		h2d, d2h := experiments.Fig6()
		experiments.FprintSeries(out, "Figure 6: PCIe transfer speed vs data size", "bytes", h2d, d2h)
		fmt.Fprintln(out)
	}
	if all || what == "fig7" {
		s := experiments.Fig7(cfg.GPUWorkers)
		experiments.FprintSeries(out, "Figure 7: kernel throughput vs block size", "block (Kpts)", s)
		fmt.Fprintln(out)
	}
	if all || what == "table1" {
		t, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		t.Fprint(out)
		fmt.Fprintln(out)
	}
	if all || what == "fig10" {
		res, err := experiments.Fig10(cfg)
		if err != nil {
			return err
		}
		for _, r := range res {
			experiments.FprintSeries(out,
				fmt.Sprintf("Figure 10 (%s): time-to-target vs GPU parallel workers (s)", r.Dataset),
				"workers", r.Series...)
			fmt.Fprintln(out)
		}
	}
	if all || what == "fig11" {
		res, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		for _, r := range res {
			experiments.FprintSeries(out,
				fmt.Sprintf("Figure 11 (%s): time-to-target vs CPU threads (s)", r.Dataset),
				"threads", r.Series...)
			fmt.Fprintln(out)
		}
	}
	if all || what == "fig12" {
		res, err := experiments.Fig12(cfg)
		if err != nil {
			return err
		}
		for _, r := range res {
			// Each algorithm evaluates on its own virtual-time grid, so
			// every curve prints with its own x column.
			for _, s := range r.Series {
				experiments.FprintSeries(out,
					fmt.Sprintf("Figure 12 (%s, %s): test RMSE over training time", r.Dataset, s.Name),
					"time (s)", s)
				fmt.Fprintln(out)
			}
		}
	}
	if all || what == "fig13" {
		res, err := experiments.Fig13(cfg)
		if err != nil {
			return err
		}
		for _, r := range res {
			for _, s := range r.Series {
				experiments.FprintSeries(out,
					fmt.Sprintf("Figure 13 (%s, %s): HSGD vs HSGD* test RMSE over time", r.Dataset, s.Name),
					"time (s)", s)
				fmt.Fprintln(out)
			}
		}
	}
	if all || what == "table2" {
		t, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		t.Fprint(out)
		fmt.Fprintln(out)
	}
	if all || what == "table3" {
		t, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		t.Fprint(out)
		fmt.Fprintln(out)
	}
	switch what {
	case "all", "fig3", "fig6", "fig7", "fig10", "fig11", "fig12", "fig13", "table1", "table2", "table3":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", what)
}
